package vpatch

import (
	"math/rand"
	"testing"

	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

var allAlgorithms = []Algorithm{
	AlgoVPatch, AlgoSPatch, AlgoDFC, AlgoVectorDFC, AlgoAhoCorasick, AlgoWuManber, AlgoFFBF,
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := New(NewPatternSet(), Options{VectorWidth: 5}); err == nil {
		t.Fatal("width 5 accepted")
	}
	if _, err := New(NewPatternSet(), Options{Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	set := PatternSetFromStrings("GET", "attack", "ab", "HTTP/1.1")
	input := []byte("GET /attack HTTP/1.1 abattack")
	want := patterns.FindAllNaive(set, input)
	for _, alg := range allAlgorithms {
		m, err := New(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got, err := FindAll(set, input, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("%v disagrees with naive: %d vs %d matches", alg, len(got), len(want))
		}
		if m.Algorithm() != alg {
			t.Fatalf("Algorithm() = %v, want %v", m.Algorithm(), alg)
		}
		if m.Set() != set {
			t.Fatalf("%v: Set() does not return the source set", alg)
		}
	}
}

func TestAllAlgorithmsAgreeOnRealisticTraffic(t *testing.T) {
	set := patterns.GenerateS1(7).Subset(120, 3)
	input := traffic.Synthesize(traffic.ISCXDay2, 32<<10, 5, set)
	reference, err := FindAll(set, input, Options{Algorithm: AlgoAhoCorasick})
	if err != nil {
		t.Fatal(err)
	}
	if len(reference) == 0 {
		t.Fatal("test needs matches")
	}
	for _, alg := range allAlgorithms {
		got, err := FindAll(set, input, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !patterns.EqualMatches(got, append([]Match(nil), reference...)) {
			t.Fatalf("%v disagrees: %d vs %d matches", alg, len(got), len(reference))
		}
	}
}

func TestVectorWidths(t *testing.T) {
	set := PatternSetFromStrings("needle", "na")
	input := []byte("nanananeedleedle")
	want, _ := FindAll(set, input, Options{Algorithm: AlgoSPatch})
	for _, w := range []int{4, 8, 16} {
		for _, alg := range []Algorithm{AlgoVPatch, AlgoVectorDFC} {
			got, err := FindAll(set, input, Options{Algorithm: alg, VectorWidth: w})
			if err != nil {
				t.Fatalf("%v W=%d: %v", alg, w, err)
			}
			if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
				t.Fatalf("%v W=%d disagrees", alg, w)
			}
		}
	}
}

func TestCount(t *testing.T) {
	set := PatternSetFromStrings("ab")
	m, err := New(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(m, []byte("ababab")); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestCountersAccumulate(t *testing.T) {
	set := PatternSetFromStrings("xy")
	m, _ := New(set, Options{Algorithm: AlgoDFC})
	var c Counters
	m.Scan([]byte("xyxy"), &c, nil)
	first := c.Matches
	m.Scan([]byte("xyxy"), &c, nil)
	if c.Matches != 2*first {
		t.Fatalf("counters must accumulate: %d then %d", first, c.Matches)
	}
	if c.BytesScanned != 8 {
		t.Fatalf("BytesScanned = %d", c.BytesScanned)
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, alg := range allAlgorithms {
		if alg.String() == "" {
			t.Fatalf("algorithm %d has empty name", alg)
		}
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must still format")
	}
}

func TestNocaseThroughPublicAPI(t *testing.T) {
	set := NewPatternSet()
	set.Add([]byte("Select"), true, ProtoHTTP)
	set.Add([]byte("UNION"), false, ProtoHTTP)
	input := []byte("sELECT a UNION select union")
	want := patterns.FindAllNaive(set, input)
	for _, alg := range allAlgorithms {
		got, err := FindAll(set, input, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("%v nocase disagreement", alg)
		}
	}
}

func TestFindAllSorted(t *testing.T) {
	set := PatternSetFromStrings("aa", "a\x80")
	got, err := FindAll(set, []byte("aaa\x80"), Options{Algorithm: AlgoDFC})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Pos < got[i-1].Pos {
			t.Fatal("FindAll output not sorted")
		}
	}
}

func TestFuzzAllAlgorithmsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		set := NewPatternSet()
		for i := 0; i < 1+rng.Intn(10); i++ {
			l := 1 + rng.Intn(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(4) == 0, ProtoGeneric)
		}
		input := make([]byte, 200)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		want := patterns.FindAllNaive(set, input)
		for _, alg := range allAlgorithms {
			got, err := FindAll(set, input, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
				t.Fatalf("trial %d: %v disagrees with naive", trial, alg)
			}
		}
	}
}
