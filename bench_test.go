package vpatch

// Benchmark harness: one benchmark family per figure of the paper's
// evaluation (wall-clock analogues of the cost-model experiments driven
// by cmd/vpatch-bench), plus the ablation benches for the design choices
// listed in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Fixture sizes are kept at 1 MB per dataset so the full suite completes
// in minutes; cmd/vpatch-bench scales to arbitrary sizes.

import (
	"sync"
	"testing"

	"vpatch/internal/core"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

const benchBytes = 1 << 20

type fixtures struct {
	s1web, s2web, s2 *patterns.Set
	data             map[string][]byte // per dataset name, built against s1web
}

var (
	fixOnce sync.Once
	fix     fixtures
)

func benchFixtures() *fixtures {
	fixOnce.Do(func() {
		fix.s1web = patterns.GenerateS1(1).WebSubset()
		s2 := patterns.GenerateS2(1)
		fix.s2 = s2
		fix.s2web = s2.WebSubset()
		fix.data = map[string][]byte{
			"ISCX-day2": traffic.Synthesize(traffic.ISCXDay2, benchBytes, 1, fix.s1web),
			"ISCX-day6": traffic.Synthesize(traffic.ISCXDay6, benchBytes, 1, fix.s1web),
			"DARPA":     traffic.Synthesize(traffic.DARPA2000, benchBytes, 1, fix.s1web),
			"random":    traffic.Random(benchBytes, 1),
		}
	})
	return &fix
}

var benchDatasets = []string{"ISCX-day2", "ISCX-day6", "DARPA", "random"}

func benchScan(b *testing.B, m Matcher, data []byte) {
	b.Helper()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(data, nil, nil)
	}
}

// figThroughput runs the five paper algorithms over the four datasets —
// the Fig 4 (W=8) and Fig 7 (W=16) wall-clock analogues.
func figThroughput(b *testing.B, set *patterns.Set, width int) {
	f := benchFixtures()
	algos := []Algorithm{AlgoAhoCorasick, AlgoDFC, AlgoVectorDFC, AlgoSPatch, AlgoVPatch}
	matchers := make(map[Algorithm]Matcher, len(algos))
	for _, alg := range algos {
		m, err := New(set, Options{Algorithm: alg, VectorWidth: width})
		if err != nil {
			b.Fatal(err)
		}
		matchers[alg] = m
	}
	for _, ds := range benchDatasets {
		for _, alg := range algos {
			b.Run(ds+"/"+alg.String(), func(b *testing.B) {
				benchScan(b, matchers[alg], f.data[ds])
			})
		}
	}
}

// BenchmarkFig4a: overall throughput, 2K web patterns, W=8 (Haswell cfg).
func BenchmarkFig4a(b *testing.B) { figThroughput(b, benchFixtures().s1web, 8) }

// BenchmarkFig4b: overall throughput, 9K web patterns, W=8.
func BenchmarkFig4b(b *testing.B) { figThroughput(b, benchFixtures().s2web, 8) }

// BenchmarkFig5a: S-PATCH vs V-PATCH as the number of patterns grows
// (random subsets of the full 20K set).
func BenchmarkFig5a(b *testing.B) {
	f := benchFixtures()
	for _, n := range []int{1000, 5000, 10000, 20000} {
		sub := f.s2.Subset(n, 1)
		data := traffic.Synthesize(traffic.ISCXDay2, benchBytes, 1, sub)
		for _, alg := range []Algorithm{AlgoSPatch, AlgoVPatch} {
			m, err := New(sub, Options{Algorithm: alg})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(alg.String()+"/"+itoa(n), func(b *testing.B) { benchScan(b, m, data) })
		}
	}
}

// BenchmarkFig5c: S-PATCH vs V-PATCH as the fraction of matching input
// grows (2K-pattern ruleset, injected matches).
func BenchmarkFig5c(b *testing.B) {
	f := benchFixtures()
	set := f.s2.Subset(2000, 1)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		data := traffic.Random(benchBytes, 1)
		traffic.InjectMatches(data, set, frac, 3)
		for _, alg := range []Algorithm{AlgoSPatch, AlgoVPatch} {
			m, err := New(set, Options{Algorithm: alg})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(alg.String()+"/match"+itoa(int(frac*100)), func(b *testing.B) { benchScan(b, m, data) })
		}
	}
}

// BenchmarkFig6: filtering-phase-only throughput — the scalar filtering
// round, the vector round with candidate stores, and the vector round
// with stores suppressed, on the three pattern-set sizes.
func BenchmarkFig6(b *testing.B) {
	f := benchFixtures()
	sets := map[string]*patterns.Set{"2K": f.s1web, "9K": f.s2web, "20K": f.s2}
	data := f.data["ISCX-day2"]
	for name, set := range sets {
		sp := core.NewSPatch(set, core.Options{})
		vp := core.NewVPatch(set, core.VOptions{})
		b.Run(name+"/S-PATCH-filtering", func(b *testing.B) {
			b.SetBytes(benchBytes)
			for i := 0; i < b.N; i++ {
				sp.FilterOnly(data, nil)
			}
		})
		b.Run(name+"/V-PATCH-filtering+stores", func(b *testing.B) {
			b.SetBytes(benchBytes)
			for i := 0; i < b.N; i++ {
				vp.FilterOnly(data, nil, true)
			}
		})
		b.Run(name+"/V-PATCH-filtering", func(b *testing.B) {
			b.SetBytes(benchBytes)
			for i := 0; i < b.N; i++ {
				vp.FilterOnly(data, nil, false)
			}
		})
	}
}

// BenchmarkFig7a: the Xeon-Phi configuration (W=16 lanes), 2K patterns.
// (The Phi's clock/cache behaviour is modeled by cmd/vpatch-bench; the
// wall-clock analogue here shows the width-16 emulation cost.)
func BenchmarkFig7a(b *testing.B) { figThroughput(b, benchFixtures().s1web, 16) }

// BenchmarkFig7b: W=16 lanes, 9K patterns.
func BenchmarkFig7b(b *testing.B) { figThroughput(b, benchFixtures().s2web, 16) }

// --- Ablation benches (DESIGN.md §5) ---
// All variants run through the explicit vector engine (ForceEngine), so
// the comparison isolates the design choice from the fused fast path.

func benchVPatchVariant(b *testing.B, opt core.VOptions) {
	f := benchFixtures()
	opt.ForceEngine = true
	m := core.NewVPatch(f.s1web, opt)
	data := f.data["ISCX-day2"]
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(data, nil, nil)
	}
}

// BenchmarkAblationFilterMerge: one merged gather vs two separate gathers
// for filters 1+2 (the Fig. 3 optimization).
func BenchmarkAblationFilterMerge(b *testing.B) {
	b.Run("merged", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{}) })
	b.Run("separate", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{NoFilterMerge: true}) })
}

// BenchmarkAblationSpeculative: speculative all-lane filter 3 vs
// per-active-lane branching (the alternative the paper rejected).
func BenchmarkAblationSpeculative(b *testing.B) {
	b.Run("speculative", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{}) })
	b.Run("branchy", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{BranchyFilter3: true}) })
}

// BenchmarkAblationUnroll: 2x main-loop unroll on vs off.
func BenchmarkAblationUnroll(b *testing.B) {
	b.Run("unroll2x", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{}) })
	b.Run("nounroll", func(b *testing.B) { benchVPatchVariant(b, core.VOptions{NoUnroll: true}) })
}

// BenchmarkAblationWidth: vector width sweep (SSE/AVX2/AVX-512 lanes).
func BenchmarkAblationWidth(b *testing.B) {
	for _, w := range []int{4, 8, 16} {
		b.Run("W"+itoa(w), func(b *testing.B) { benchVPatchVariant(b, core.VOptions{Width: w}) })
	}
}

// BenchmarkAblationFilter3Size: the filtering-rate vs cache-footprint
// trade-off of filter 3 (8 KB - 128 KB).
func BenchmarkAblationFilter3Size(b *testing.B) {
	f := benchFixtures()
	data := f.data["ISCX-day2"]
	for _, log2bits := range []uint{16, 17, 18, 20} {
		m := core.NewVPatch(f.s2web, core.VOptions{Filter3Log2Bits: log2bits})
		b.Run(itoa(1<<(log2bits-13))+"KB", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				m.Scan(data, nil, nil)
			}
		})
	}
}

// BenchmarkAblationTwoRound: the two-round split's chunk-size dependence
// (cache locality of the candidate arrays) against inline DFC.
func BenchmarkAblationTwoRound(b *testing.B) {
	f := benchFixtures()
	data := f.data["ISCX-day2"]
	for _, chunk := range []int{4 << 10, 64 << 10, 1 << 20} {
		m := core.NewSPatch(f.s1web, core.Options{ChunkSize: chunk})
		b.Run("spatch-chunk"+itoa(chunk>>10)+"K", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				m.Scan(data, nil, nil)
			}
		})
	}
	m, _ := New(f.s1web, Options{Algorithm: AlgoDFC})
	b.Run("dfc-inline", func(b *testing.B) { benchScan(b, m, data) })
}

// BenchmarkStreamScanner: chunked scanning overhead vs whole-buffer.
func BenchmarkStreamScanner(b *testing.B) {
	f := benchFixtures()
	data := f.data["ISCX-day2"]
	m, _ := New(f.s1web, Options{})
	b.Run("whole", func(b *testing.B) { benchScan(b, m, data) })
	b.Run("chunked1500", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			s, _ := NewStreamScanner(m, func(Match) {})
			for pos := 0; pos < len(data); pos += 1500 {
				end := pos + 1500
				if end > len(data) {
					end = len(data)
				}
				s.Write(data[pos:end])
			}
		}
	})
}

// BenchmarkBatchSmallPackets: the small-packet workload (the batch scan
// path's target): per-packet Session.Scan vs one ScanBatch call per 32
// packets, at the sizes real NIDS traffic is dominated by. The
// cmd/vpatch-bench -sizes sweep adds lane-occupancy measurements.
func BenchmarkBatchSmallPackets(b *testing.B) {
	f := benchFixtures()
	eng, err := Compile(f.s1web, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 256, 1514} {
		pkts := traffic.FixedPackets(traffic.ISCXDay2, size, benchBytes/size, 1, f.s1web)
		total := int64(0)
		for _, p := range pkts {
			total += int64(len(p))
		}
		b.Run("serial/"+itoa(size), func(b *testing.B) {
			s := eng.NewSession()
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					s.Scan(p, nil, nil)
				}
			}
		})
		b.Run("batch/"+itoa(size), func(b *testing.B) {
			s := eng.NewSession()
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < len(pkts); lo += 32 {
					hi := lo + 32
					if hi > len(pkts) {
						hi = len(pkts)
					}
					s.ScanBatch(pkts[lo:hi], nil, nil)
				}
			}
		})
	}
}

// --- Acceleration benches (the hot-path skip-loop layer) ---
// Each family runs the accelerated kernel against the plain one on the
// same traffic in the same process, so the accel/plain ratio is
// meaningful even on noisy machines.

// BenchmarkAccelClean is the headline: 0% match density (clean random
// traffic — the encrypted/compressed payload case), 2K web patterns,
// W=8, filtering phase only. The skip loop clears the ~94% of windows
// the union bitmap rejects before the probe chain runs at all.
func BenchmarkAccelClean(b *testing.B) {
	f := benchFixtures()
	data := traffic.Random(benchBytes, 1)
	accel := core.NewVPatch(f.s1web, core.VOptions{})
	plain := core.NewVPatch(f.s1web, core.VOptions{NoAccel: true})
	b.Run("accel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			accel.FilterOnly(data, nil, true)
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			plain.FilterOnly(data, nil, true)
		}
	})
}

// BenchmarkAccelScan is the full-scan (filter + verify) view of the
// same comparison, for S-PATCH, V-PATCH and DFC.
func BenchmarkAccelScan(b *testing.B) {
	f := benchFixtures()
	data := traffic.Random(benchBytes, 1)
	for _, alg := range []Algorithm{AlgoVPatch, AlgoSPatch, AlgoDFC} {
		on, err := Compile(f.s1web, Options{Algorithm: alg})
		if err != nil {
			b.Fatal(err)
		}
		off, err := Compile(f.s1web, Options{Algorithm: alg, NoAccel: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg.String()+"/accel", func(b *testing.B) { benchScan(b, on.NewSession(), data) })
		b.Run(alg.String()+"/plain", func(b *testing.B) { benchScan(b, off.NewSession(), data) })
	}
}

// BenchmarkAccelDense is the governor guard: 100% match density, where
// skipping cannot pay and the span governor must keep the accelerated
// engine within a few percent of the plain one (the Fig.-5c
// high-density acceptance bound).
func BenchmarkAccelDense(b *testing.B) {
	f := benchFixtures()
	set := f.s2.Subset(2000, 1)
	data := traffic.Random(benchBytes, 1)
	traffic.InjectMatches(data, set, 1.0, 3)
	accel := core.NewVPatch(set, core.VOptions{})
	plain := core.NewVPatch(set, core.VOptions{NoAccel: true})
	b.Run("accel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			accel.Scan(data, nil, nil)
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			plain.Scan(data, nil, nil)
		}
	})
}

// BenchmarkAccelIndexByte: a rare-start-byte rule set (every pattern
// opens with the same two bytes), where the skip primitive is the
// runtime's assembly-backed bytes.IndexByte and clean traffic is
// cleared at memchr speed.
func BenchmarkAccelIndexByte(b *testing.B) {
	set := NewPatternSet()
	for _, p := range []string{"\x00\x01BAD", "\x00\x01EVIL", "\x00\x01wormsign", "\x00\x01inject"} {
		set.Add([]byte(p), false, ProtoGeneric)
	}
	data := traffic.Synthesize(traffic.ISCXDay2, benchBytes, 1, nil)
	accel := core.NewVPatch(set, core.VOptions{})
	plain := core.NewVPatch(set, core.VOptions{NoAccel: true})
	b.Run("accel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			accel.Scan(data, nil, nil)
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			plain.Scan(data, nil, nil)
		}
	})
}

// BenchmarkWuManber: the related-work baseline on the same workload.
func BenchmarkWuManber(b *testing.B) {
	f := benchFixtures()
	m, _ := New(f.s1web, Options{Algorithm: AlgoWuManber})
	benchScan(b, m, f.data["ISCX-day2"])
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
