// Command vpatch-match is a miniature IDS matching engine: it compiles a
// rule or pattern file and scans an input file (or stdin) with any of the
// library's algorithms, reporting every match.
//
// Usage:
//
//	vpatch-match -rules web.rules -in capture.bin
//	vpatch-match -patterns strings.txt -algo spatch -count -in big.log
//	cat stream | vpatch-match -rules web.rules -stream
//
// -rules parses Snort-style rules (content/nocase/hex escapes); -patterns
// reads one literal string per line. -stream scans stdin in 64 KB chunks
// through the StreamScanner (matches may span chunk boundaries).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vpatch"
	"vpatch/internal/patterns"
)

func main() {
	rulesPath := flag.String("rules", "", "Snort-style rules file")
	patsPath := flag.String("patterns", "", "plain pattern file, one literal per line")
	inPath := flag.String("in", "", "input file (default stdin)")
	algoName := flag.String("algo", "vpatch", "algorithm: vpatch spatch dfc vectordfc ac wumanber ffbf")
	width := flag.Int("width", 8, "vector width for vectorized algorithms (4, 8, 16)")
	countOnly := flag.Bool("count", false, "print only the match count and throughput")
	stream := flag.Bool("stream", false, "scan stdin/file as a stream in 64 KB chunks")
	maxPrint := flag.Int("max-print", 20, "print at most this many matches (0 = all)")
	flag.Parse()

	set, err := loadPatterns(*rulesPath, *patsPath)
	if err != nil {
		fatal(err)
	}
	if set.Len() == 0 {
		fatal(fmt.Errorf("no patterns loaded (use -rules or -patterns)"))
	}
	alg, err := vpatch.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	eng, err := vpatch.Compile(set, vpatch.Options{Algorithm: alg, VectorWidth: *width})
	if err != nil {
		fatal(err)
	}
	m := eng.NewSession()
	fmt.Fprintf(os.Stderr, "compiled %d patterns for %s\n", set.Len(), alg)

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	printed := 0
	report := func(mm vpatch.Match) {
		if *countOnly {
			return
		}
		if *maxPrint > 0 && printed >= *maxPrint {
			return
		}
		printed++
		p := set.Pattern(mm.PatternID)
		fmt.Printf("offset %10d  pattern %5d  %q\n", mm.Pos, mm.PatternID, truncate(p.Data, 40))
	}

	start := time.Now()
	var scanned int64
	var total uint64
	if *stream {
		s, err := vpatch.NewStreamScanner(m, func(mm vpatch.Match) { total++; report(mm) })
		if err != nil {
			fatal(err)
		}
		buf := make([]byte, 64<<10)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				if _, werr := s.Write(buf[:n]); werr != nil {
					fatal(werr)
				}
				scanned += int64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
		}
	} else {
		data, err := io.ReadAll(in)
		if err != nil {
			fatal(err)
		}
		scanned = int64(len(data))
		m.Scan(data, nil, func(mm vpatch.Match) { total++; report(mm) })
	}
	elapsed := time.Since(start)
	gbps := float64(scanned) * 8 / float64(elapsed.Nanoseconds())
	fmt.Fprintf(os.Stderr, "%d matches in %d bytes (%.3f Gbps, %s)\n",
		total, scanned, gbps, elapsed.Round(time.Millisecond))
	if *countOnly {
		fmt.Println(total)
	}
}

func loadPatterns(rulesPath, patsPath string) (*vpatch.PatternSet, error) {
	switch {
	case rulesPath != "" && patsPath != "":
		return nil, fmt.Errorf("use either -rules or -patterns, not both")
	case rulesPath != "":
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return patterns.ParseRules(f, patterns.ParseOptions{})
	case patsPath != "":
		f, err := os.Open(patsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		set := vpatch.NewPatternSet()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				set.Add([]byte(line), false, vpatch.ProtoGeneric)
			}
		}
		return set, sc.Err()
	}
	return vpatch.NewPatternSet(), nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-match:", err)
	os.Exit(1)
}
