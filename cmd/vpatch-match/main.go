// Command vpatch-match is a miniature IDS matching engine: it compiles a
// rule or pattern file and scans an input file (or stdin) with any of the
// library's algorithms, reporting every match.
//
// Usage:
//
//	vpatch-match -rules web.rules -in capture.bin
//	vpatch-match -patterns strings.txt -algo spatch -count -in big.log
//	vpatch-match -db web.vpdb -in capture.bin
//	cat stream | vpatch-match -rules web.rules -stream
//
// -rules parses Snort-style rules (content/nocase/hex escapes); -patterns
// reads one literal string per line; -db loads a precompiled database
// written by vpatch-compile instead of compiling at startup (the -algo
// and -width flags are then taken from the database). -stream scans
// stdin in 64 KB chunks through the StreamScanner (matches may span
// chunk boundaries).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vpatch"
	"vpatch/internal/patterns"
)

func main() {
	rulesPath := flag.String("rules", "", "Snort-style rules file")
	patsPath := flag.String("patterns", "", "plain pattern file, one literal per line")
	dbPath := flag.String("db", "", "precompiled .vpdb database (instead of -rules/-patterns)")
	inPath := flag.String("in", "", "input file (default stdin)")
	algoName := flag.String("algo", "vpatch", "algorithm: vpatch spatch dfc vectordfc ac wumanber ffbf")
	width := flag.Int("width", 8, "vector width for vectorized algorithms (4, 8, 16)")
	countOnly := flag.Bool("count", false, "print only the match count and throughput")
	stream := flag.Bool("stream", false, "scan stdin/file as a stream in 64 KB chunks")
	maxPrint := flag.Int("max-print", 20, "print at most this many matches (0 = all)")
	flag.Parse()

	var eng *vpatch.Engine
	if *dbPath != "" {
		if *rulesPath != "" || *patsPath != "" {
			fatal(fmt.Errorf("use either -db or -rules/-patterns, not both"))
		}
		start := time.Now()
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		eng, err = vpatch.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d patterns for %s in %s\n",
			eng.Set().Len(), eng.Algorithm(), time.Since(start).Round(time.Microsecond))
	} else {
		set, err := patterns.LoadSetFile(*rulesPath, *patsPath)
		if err != nil {
			fatal(err)
		}
		if set.Len() == 0 {
			fatal(fmt.Errorf("no patterns loaded (use -rules, -patterns or -db)"))
		}
		alg, err := vpatch.ParseAlgorithm(*algoName)
		if err != nil {
			fatal(err)
		}
		eng, err = vpatch.Compile(set, vpatch.Options{Algorithm: alg, VectorWidth: *width})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "compiled %d patterns for %s\n", set.Len(), alg)
	}
	set := eng.Set()
	m := eng.NewSession()

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	printed := 0
	reportAt := func(pos int64, id int32) {
		if *countOnly {
			return
		}
		if *maxPrint > 0 && printed >= *maxPrint {
			return
		}
		printed++
		p := set.Pattern(id)
		fmt.Printf("offset %10d  pattern %5d  %q\n", pos, id, truncate(p.Data, 40))
	}
	report := func(mm vpatch.Match) { reportAt(int64(mm.Pos), mm.PatternID) }
	reportStream := func(mm vpatch.StreamMatch) { reportAt(mm.Pos, mm.PatternID) }

	start := time.Now()
	var scanned int64
	var total uint64
	if *stream {
		// Session-backed scanner: stream offsets are 64-bit, so matches
		// past 2 GiB of stdin report correct positions.
		s, err := m.NewStreamScanner(func(mm vpatch.StreamMatch) {
			total++
			reportStream(mm)
		})
		if err != nil {
			fatal(err)
		}
		buf := make([]byte, 64<<10)
		for {
			n, err := in.Read(buf)
			if n > 0 {
				if _, werr := s.Write(buf[:n]); werr != nil {
					fatal(werr)
				}
				scanned += int64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
		}
	} else {
		data, err := io.ReadAll(in)
		if err != nil {
			fatal(err)
		}
		scanned = int64(len(data))
		m.Scan(data, nil, func(mm vpatch.Match) { total++; report(mm) })
	}
	elapsed := time.Since(start)
	gbps := float64(scanned) * 8 / float64(elapsed.Nanoseconds())
	fmt.Fprintf(os.Stderr, "%d matches in %d bytes (%.3f Gbps, %s)\n",
		total, scanned, gbps, elapsed.Round(time.Millisecond))
	if *countOnly {
		fmt.Println(total)
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-match:", err)
	os.Exit(1)
}
