// Command vpatch-compile is the offline rule compiler: it reads a rule
// or pattern file, compiles it once, and writes a versioned,
// checksummed .vpdb database that vpatch-match, vpatch-ids and
// vpatch-bench (and any program using vpatch.ReadFrom / ids.ReadDB)
// load at startup without recompiling — the way production NIDS deploy
// Snort-scale rule sets.
//
// Usage:
//
//	vpatch-compile -rules web.rules -o web.vpdb
//	vpatch-compile -rules web.rules -algo ac -o web-ac.vpdb
//	vpatch-compile -rules all.rules -ids -o all-groups.vpdb
//	vpatch-compile -patterns strings.txt -algo spatch -o strings.vpdb
//
// The default output is a single-engine database. -ids instead
// compiles the whole per-protocol rule-group database the ids pipeline
// uses (one engine per protocol group plus the generic group, with
// original-rule ID mappings), in one file.
//
// -rule-semantics (with -ids) compiles the full rule tier instead of
// literal extraction: every content keeps its offset/depth/distance/
// within modifiers, nocase contents fold into shared prefilter
// literals, and pcre tails compile into the anchored regex verifier.
// The resulting database makes vpatch-ids and vpatch-serve emit
// rule-level alerts (see the README's "Rule language" section).
//
// After writing, the tool reloads the database and verifies it decodes
// cleanly, printing the compile-vs-load timings.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/patterns"
)

func main() {
	rulesPath := flag.String("rules", "", "Snort-style rules file")
	patsPath := flag.String("patterns", "", "plain pattern file, one literal per line")
	outPath := flag.String("o", "", "output database file (required)")
	algoName := flag.String("algo", "vpatch", "algorithm: vpatch spatch dfc vectordfc ac wumanber ffbf")
	width := flag.Int("width", 8, "vector width for vectorized algorithms (4, 8, 16)")
	idsMode := flag.Bool("ids", false, "compile the per-protocol rule-group database for the ids pipeline")
	ruleSem := flag.Bool("rule-semantics", false, "compile full rule semantics (offsets, nocase, pcre verifier) instead of bare literals; implies -ids")
	window := flag.Int("window", 0, "pcre verifier window in bytes for -rule-semantics (0 = default)")
	flag.Parse()

	if *outPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	alg, err := vpatch.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	opt := vpatch.Options{Algorithm: alg, VectorWidth: *width}

	if *ruleSem {
		if *rulesPath == "" {
			fatal(fmt.Errorf("-rule-semantics needs -rules (pattern files carry no rule options)"))
		}
		compileRuleIDS(*rulesPath, opt, *window, *outPath)
		return
	}
	set, err := patterns.LoadSetFile(*rulesPath, *patsPath)
	if err != nil {
		fatal(err)
	}
	if set.Len() == 0 {
		fatal(fmt.Errorf("no patterns loaded (use -rules or -patterns)"))
	}
	if *idsMode {
		compileIDS(set, opt, *outPath)
		return
	}
	compileEngine(set, opt, *outPath)
}

// compileEngine builds and writes a single-engine database.
func compileEngine(set *vpatch.PatternSet, opt vpatch.Options, outPath string) {
	t0 := time.Now()
	eng, err := vpatch.Compile(set, opt)
	if err != nil {
		fatal(err)
	}
	compileTime := time.Since(t0)

	blob, err := eng.Serialize()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("compiled %s in %s\n", eng.Info(), round(compileTime))
	fmt.Printf("wrote    %s (%d bytes)\n", outPath, len(blob))
	verify(blob, compileTime)
}

// compileIDS builds and writes the whole per-protocol rule-group
// database.
func compileIDS(set *vpatch.PatternSet, opt vpatch.Options, outPath string) {
	t0 := time.Now()
	engine, err := ids.NewEngine(set, opt, func(ids.Alert) {})
	if err != nil {
		fatal(err)
	}
	compileTime := time.Since(t0)

	blob, err := engine.SerializeDB()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("compiled %d rules into %d groups (%s) in %s:\n",
		set.Len(), len(engine.GroupSizes()), opt.Algorithm, round(compileTime))
	sizes := engine.GroupSizes()
	for _, proto := range []vpatch.Protocol{
		vpatch.ProtoGeneric, vpatch.ProtoHTTP, vpatch.ProtoDNS, vpatch.ProtoFTP, vpatch.ProtoSMTP,
	} {
		if n, ok := sizes[proto]; ok {
			fmt.Printf("  %-8s %6d patterns\n", proto, n)
		}
	}
	fmt.Printf("wrote    %s (%d bytes)\n", outPath, len(blob))

	t0 = time.Now()
	if _, err := ids.LoadDB(blob, func(ids.Alert) {}); err != nil {
		fatal(fmt.Errorf("verification reload failed: %w", err))
	}
	fmt.Printf("verified reload in %s (compile was %.1fx slower)\n",
		round(time.Since(t0)), float64(compileTime)/float64(time.Since(t0)))
}

// compileRuleIDS parses the rules file with full rule semantics and
// writes the rule-tier ids database (pattern set + rule section +
// per-protocol prefilter groups).
func compileRuleIDS(rulesPath string, opt vpatch.Options, window int, outPath string) {
	f, err := os.Open(rulesPath)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	rset, err := vpatch.ParseRuleSet(f, vpatch.RuleParseOptions{Window: int64(window)})
	f.Close()
	if err != nil {
		fatal(err)
	}
	engine, err := ids.NewRuleEngine(rset, opt, func(ids.Alert) {})
	if err != nil {
		fatal(err)
	}
	compileTime := time.Since(t0)

	blob, err := engine.SerializeDB()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fatal(err)
	}

	nRegex := 0
	for _, r := range rset.Rules {
		if r.Regex != nil {
			nRegex++
		}
	}
	fmt.Printf("compiled %d rules (%d with pcre verifier) over %d prefilter literals in %d groups (%s) in %s:\n",
		len(rset.Rules), nRegex, rset.Lits.Len(), len(engine.GroupSizes()), opt.Algorithm, round(compileTime))
	sizes := engine.GroupSizes()
	for _, proto := range []vpatch.Protocol{
		vpatch.ProtoGeneric, vpatch.ProtoHTTP, vpatch.ProtoDNS, vpatch.ProtoFTP, vpatch.ProtoSMTP,
	} {
		if n, ok := sizes[proto]; ok {
			fmt.Printf("  %-8s %6d literals\n", proto, n)
		}
	}
	fmt.Printf("wrote    %s (%d bytes)\n", outPath, len(blob))

	t0 = time.Now()
	reloaded, err := ids.LoadDB(blob, func(ids.Alert) {})
	if err != nil {
		fatal(fmt.Errorf("verification reload failed: %w", err))
	}
	if reloaded.Rules() == nil {
		fatal(fmt.Errorf("verification reload lost the rule section"))
	}
	fmt.Printf("verified reload in %s (compile was %.1fx slower)\n",
		round(time.Since(t0)), float64(compileTime)/float64(time.Since(t0)))
}

// verify reloads a single-engine blob and reports load time.
func verify(blob []byte, compileTime time.Duration) {
	t0 := time.Now()
	if _, err := vpatch.Deserialize(blob); err != nil {
		fatal(fmt.Errorf("verification reload failed: %w", err))
	}
	loadTime := time.Since(t0)
	fmt.Printf("verified reload in %s (compile was %.1fx slower)\n",
		round(loadTime), float64(compileTime)/float64(loadTime))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-compile:", err)
	os.Exit(1)
}
