// Command vpatch-serve runs the resident multi-tenant scanning daemon:
// an HTTP/JSON API (one-shot scans, segment streaming, tenant and rule
// management, Prometheus /metrics) plus an optional raw-TCP segment
// ingest port, in front of per-tenant ids pipelines.
//
// Usage:
//
//	vpatch-serve -db all-groups.vpdb
//	vpatch-serve -rules web.rules -algo dfc -listen :8080 -ingest :4789
//	vpatch-serve -db rules.vpdb -shards 4 -quota-bps 104857600
//
// The initial database loads into the "default" tenant. Further tenants
// are created over the API (PUT /v1/tenants/{id}) and rule databases
// hot-swap with zero downtime (POST /v1/tenants/{id}/rules): requests
// in flight finish on the generation they started with, new requests
// use the new rules, and no buffered alert is lost across the swap.
//
// Rule-conditioned databases (vpatch-compile -rule-semantics, or
// -rules with -rule-semantics here) make alerts report completed rules
// instead of raw literal hits. Every alert — rule or literal — streams
// on GET /v1/alerts (?follow=1 for a live tail) and, with -alerts-out,
// appends to a JSONL file.
//
// Overload behavior: ingest batches are scheduled deficit-round-robin
// across tenants (one tenant's flood cannot starve another's lane),
// per-flow verifier budgets degrade match-flood flows to literal-only
// alerting (-verifier-flow-budget; armed by default), and idle or
// stalled ingest connections are torn down (-ingest-idle-timeout). See
// the README's "Failure modes & overload behavior" section.
//
// Signals:
//
//	SIGHUP           re-read -db (or -rules) and hot-swap the default tenant
//	SIGINT, SIGTERM  graceful drain: stop accepting, flush every shard,
//	                 print the residual report, exit 0 (1 on dirty drain)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/patterns"
	"vpatch/internal/resil"
	"vpatch/internal/serve"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	ingest := flag.String("ingest", "", "raw-TCP segment ingest listen address (empty = disabled)")
	dbPath := flag.String("db", "", "initial .vpdb rule database for the default tenant")
	rulesPath := flag.String("rules", "", "Snort-style rules file to compile for the default tenant (instead of -db)")
	algoName := flag.String("algo", "vpatch", "matching engine for -rules: vpatch spatch dfc vectordfc ac wumanber ffbf")
	shards := flag.Int("shards", 2, "default worker shards per tenant generation")
	maxFlows := flag.Int("max-flows", 1<<20, "default per-shard cap on tracked flows (0 = unlimited)")
	flowTimeout := flag.Duration("flow-timeout", 60*time.Second, "default flow idle eviction timeout on the capture clock (0 = never)")
	flowPending := flag.Int("flow-pending", 256<<10, "default per-flow out-of-order byte budget (0 = unlimited)")
	totalPending := flag.Int("total-pending", 64<<20, "default per-shard out-of-order byte budget (0 = unlimited)")
	quotaBps := flag.Int64("quota-bps", 0, "default per-tenant ingest byte quota per second (0 = unlimited)")
	quotaBurst := flag.Int64("quota-burst", 0, "default quota burst bytes (0 = one second of quota)")
	verifierBudget := flag.Int64("verifier-flow-budget", resil.DefaultFlowBudget, "default per-flow verifier budget in modeled cycles; match-flood flows degrade to literal-only past it (negative = unlimited)")
	verifierBudgetPS := flag.Int64("verifier-budget-per-sec", 0, "default per-tenant verifier cycle pool refill per second (0 = no tenant pool)")
	ingestIdle := flag.Duration("ingest-idle-timeout", 5*time.Minute, "tear down raw-TCP ingest connections idle past this (negative = never)")
	queueBytes := flag.Int("ingest-queue-bytes", 0, "per-tenant ingest scheduler queue bound in bytes (0 = default)")
	quantumBytes := flag.Int("sched-quantum-bytes", 0, "deficit-round-robin byte quantum per tenant visit (0 = default)")
	alertsOut := flag.String("alerts-out", "", `append every alert as a JSON line to this file ("-" = stdout); same records as GET /v1/alerts`)
	ruleSem := flag.Bool("rule-semantics", false, "compile -rules with full rule semantics (offsets, nocase, pcre verifier)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	check := flag.String("check", "", "health-probe mode: GET this URL, exit 0 on 200 (container HEALTHCHECK helper)")
	flag.Parse()
	if *check != "" {
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(*check)
		if err != nil {
			fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("probe %s: %s", *check, resp.Status))
		}
		return
	}
	if *dbPath != "" && *rulesPath != "" {
		fmt.Fprintln(os.Stderr, "vpatch-serve: use -db or -rules, not both")
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		TenantDefaults: serve.TenantConfig{
			Shards:               *shards,
			MaxFlows:             *maxFlows,
			FlowTimeout:          *flowTimeout,
			FlowPendingBytes:     *flowPending,
			TotalPendingBytes:    *totalPending,
			QuotaBytesPerSec:     *quotaBps,
			QuotaBurstBytes:      *quotaBurst,
			VerifierFlowBudget:   *verifierBudget,
			VerifierBudgetPerSec: *verifierBudgetPS,
			IngestQueueBytes:     *queueBytes,
		},
		IngestIdleTimeout: *ingestIdle,
		SchedQuantumBytes: *quantumBytes,
	})
	def, err := srv.CreateTenant(serve.DefaultTenant, serve.TenantConfig{})
	if err != nil {
		fatal(err)
	}
	if *alertsOut != "" {
		out := os.Stdout
		if *alertsOut != "-" {
			f, err := os.OpenFile(*alertsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			out = f
		}
		ch, cancel := srv.SubscribeAlerts()
		defer cancel()
		go func() {
			w := bufio.NewWriter(out)
			enc := json.NewEncoder(w)
			for rec := range ch {
				enc.Encode(rec)
				if len(ch) == 0 {
					w.Flush()
				}
			}
		}()
	}

	reload := func() error {
		db, err := loadRuleBlob(*dbPath, *rulesPath, *algoName, *ruleSem)
		if err != nil {
			return err
		}
		if db == nil {
			return nil // no initial rules: the API will provide them
		}
		gen, err := def.Reload(db)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vpatch-serve: default tenant now at generation %d (kernel %s)\n",
			gen, vpatch.ActiveKernel())
		return nil
	}
	if err := reload(); err != nil {
		fatal(err)
	}

	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(httpLn) }()
	fmt.Fprintf(os.Stderr, "vpatch-serve: HTTP on %s\n", httpLn.Addr())

	ingestErr := make(chan error, 1)
	if *ingest != "" {
		ln, err := net.Listen("tcp", *ingest)
		if err != nil {
			fatal(err)
		}
		go func() { ingestErr <- srv.ServeIngest(ln) }()
		fmt.Fprintf(os.Stderr, "vpatch-serve: ingest on %s\n", ln.Addr())
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-httpErr:
			fatal(fmt.Errorf("http server: %w", err))
		case err := <-ingestErr:
			if err != nil {
				fatal(fmt.Errorf("ingest server: %w", err))
			}
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if err := reload(); err != nil {
					fmt.Fprintf(os.Stderr, "vpatch-serve: reload failed, keeping current rules: %v\n", err)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "vpatch-serve: %v, draining (deadline %s)\n", sig, *drainTimeout)
			rep := srv.Drain(*drainTimeout)
			hs.Close()
			out, _ := json.MarshalIndent(rep, "", "  ")
			fmt.Fprintf(os.Stderr, "%s\n", out)
			if !rep.Clean {
				os.Exit(1)
			}
			return
		}
	}
}

// loadRuleBlob produces the serialized .vpdb blob for the startup (and
// SIGHUP) rules: either the -db file verbatim, or -rules compiled in
// process (with full rule semantics when ruleSem is set) and
// round-tripped through the database encoder so reload validation sees
// the same bytes either way. Returns nil when neither flag is set.
func loadRuleBlob(dbPath, rulesPath, algoName string, ruleSem bool) ([]byte, error) {
	if dbPath != "" {
		return os.ReadFile(dbPath)
	}
	if rulesPath == "" {
		return nil, nil
	}
	rf, err := os.Open(rulesPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	alg, err := vpatch.ParseAlgorithm(algoName)
	if err != nil {
		return nil, err
	}
	opt := vpatch.Options{Algorithm: alg}
	var eng *ids.Engine
	if ruleSem {
		rset, err := vpatch.ParseRuleSet(rf, vpatch.RuleParseOptions{})
		if err != nil {
			return nil, err
		}
		eng, err = ids.NewRuleEngine(rset, opt, func(ids.Alert) {})
		if err != nil {
			return nil, err
		}
	} else {
		set, err := patterns.ParseRules(rf, patterns.ParseOptions{})
		if err != nil {
			return nil, err
		}
		eng, err = ids.NewEngine(set, opt, func(ids.Alert) {})
		if err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if _, err := eng.WriteDB(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-serve:", err)
	os.Exit(1)
}
