// Command vpatch-benchgate is the CI bench-regression gate: it compares
// a fresh vpatch-bench -json snapshot against the previously committed
// one and fails (exit 1) when throughput regressed beyond the allowed
// drop.
//
// Usage:
//
//	vpatch-bench -kernels -json new.json
//	vpatch-benchgate -old BENCH_007.json -new new.json -max-drop 0.10
//
// The primary gate is the kernel sweep's speedup-vs-SWAR ratios
// (filter_speedup_vs_swar, scan_speedup_vs_swar): both snapshots
// measure the native kernels and the SWAR baseline on the same host in
// the same process, so the ratio cancels machine speed and is
// comparable across CI runners. A ratio in the new snapshot more than
// -max-drop below the committed one fails the gate. Rows for kernels
// the running host lacks (e.g. an arm64 or pre-AVX2 runner) are
// reported as skipped, not failed — the gate can only pin what the
// host can run.
//
// When the snapshots carry batch_sweep or ingest_sweep sections, their
// speedup ratios are gated the same way: batch-over-serial scan speedup
// per packet size, and batched-over-per-segment dispatch speedup per
// segment size (with its own tolerance, -ingest-max-drop, since
// end-to-end pipeline timings are noisier than scan loops). A
// rule_sweep section gates in the opposite direction: the rule tier's
// verify overhead ratio per anchor-hit rate must not rise past
// -rule-max-rise. Snapshots from before a section existed simply skip
// it — the gate only pins what both snapshots measured.
//
// A flood_sweep section in the new snapshot is gated on the budgets-on
// clean-traffic overhead ratio: -flood-max-overhead is an absolute
// ceiling (default 1.05) on the 0%-flood cell's budget_overhead,
// pinning the claim that arming verifier budgets is free on clean
// traffic. Attack-density rows are informational.
//
// -min-avx2-filter additionally enforces an absolute floor on the AVX2
// clean-random filtering-round speedup (the paper's §VI claim; 0
// disables). -min-ingest-64 enforces an absolute floor on the 64-byte
// batched-dispatch speedup (the batched-handoff claim; 0 disables).
// -abs extends the gate to raw Gbps values for same-machine
// comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// snapshot mirrors the vpatch-bench report fields the gate reads; the
// rest of the document is ignored so the gate tolerates report growth.
type snapshot struct {
	GeneratedAt string      `json:"generated_at"`
	Kernel      string      `json:"kernel"`
	KernelSweep []sweepRow  `json:"kernel_sweep"`
	BatchSweep  []batchRow  `json:"batch_sweep"`
	IngestSweep []ingestRow `json:"ingest_sweep"`
	RuleSweep   []ruleRow   `json:"rule_sweep"`
	FloodSweep  []floodRow  `json:"flood_sweep"`
}

type sweepRow struct {
	Kernel        string  `json:"kernel"`
	Traffic       string  `json:"traffic"`
	FilterGbps    float64 `json:"filter_gbps"`
	ScanGbps      float64 `json:"scan_gbps"`
	FilterSpeedup float64 `json:"filter_speedup_vs_swar"`
	ScanSpeedup   float64 `json:"scan_speedup_vs_swar"`
}

type batchRow struct {
	Label      string  `json:"label"`
	SerialGbps float64 `json:"serial_gbps"`
	BatchGbps  float64 `json:"batch_gbps"`
	Speedup    float64 `json:"speedup"`
}

type ingestRow struct {
	Label             string  `json:"label"`
	PerSegmentSegsSec float64 `json:"per_segment_segs_per_sec"`
	BatchedSegsSec    float64 `json:"batched_segs_per_sec"`
	BatchedSpeedup    float64 `json:"batched_speedup_vs_per_segment"`
}

type ruleRow struct {
	HitRatePct  float64 `json:"hit_rate_pct"`
	LiteralGbps float64 `json:"literal_gbps"`
	RuleGbps    float64 `json:"rule_gbps"`
	Overhead    float64 `json:"verify_overhead"`
}

type floodRow struct {
	FloodPct       float64 `json:"flood_pct"`
	BaseGbps       float64 `json:"base_gbps"`
	BudgetGbps     float64 `json:"budget_gbps"`
	BudgetOverhead float64 `json:"budget_overhead"`
	DegradedFlows  uint64  `json:"degraded_flows"`
}

func load(path string) (*snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	oldPath := flag.String("old", "", "committed baseline snapshot (vpatch-bench -json output)")
	newPath := flag.String("new", "", "freshly measured snapshot to gate")
	maxDrop := flag.Float64("max-drop", 0.10, "maximum allowed fractional drop per gated metric")
	ingestMaxDrop := flag.Float64("ingest-max-drop", 0.25, "maximum allowed fractional drop for ingest-sweep ratios (pipeline timings are noisier)")
	ruleMaxRise := flag.Float64("rule-max-rise", 0.25, "maximum allowed fractional rise in rule-tier verify overhead per hit rate")
	minAVX2 := flag.Float64("min-avx2-filter", 0, "absolute floor on the avx2 clean-random filter speedup (0 = off)")
	floodMaxOverhead := flag.Float64("flood-max-overhead", 1.05, "absolute ceiling on the flood sweep's budgets-on clean-traffic (0%% flood) overhead ratio (0 = off)")
	minIngest64 := flag.Float64("min-ingest-64", 0, "absolute floor on the 64-byte batched-dispatch speedup (0 = off)")
	abs := flag.Bool("abs", false, "also gate absolute Gbps (same-machine comparisons only)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldSnap, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if len(oldSnap.KernelSweep) == 0 {
		fatal(fmt.Errorf("%s has no kernel_sweep rows to gate against", *oldPath))
	}

	newRows := map[string]sweepRow{}
	for _, r := range newSnap.KernelSweep {
		newRows[r.Kernel+"/"+r.Traffic] = r
	}

	failed := false
	checkDrop := func(key, metric string, oldV, newV, drop float64) {
		if oldV <= 0 {
			return // baseline never measured this metric
		}
		floor := oldV * (1 - drop)
		if newV < floor {
			fmt.Printf("FAIL %-24s %-30s %.3f -> %.3f (floor %.3f, -%.1f%%)\n",
				key, metric, oldV, newV, floor, (1-newV/oldV)*100)
			failed = true
			return
		}
		fmt.Printf("ok   %-24s %-30s %.3f -> %.3f\n", key, metric, oldV, newV)
	}
	check := func(key, metric string, oldV, newV float64) {
		checkDrop(key, metric, oldV, newV, *maxDrop)
	}
	for _, o := range oldSnap.KernelSweep {
		key := o.Kernel + "/" + o.Traffic
		n, ok := newRows[key]
		if !ok {
			fmt.Printf("skip %-24s kernel not available on this host\n", key)
			continue
		}
		if o.Kernel != "swar" {
			// Ratios cancel host speed: the cross-runner gate.
			check(key, "filter_speedup_vs_swar", o.FilterSpeedup, n.FilterSpeedup)
			check(key, "scan_speedup_vs_swar", o.ScanSpeedup, n.ScanSpeedup)
		}
		if *abs {
			check(key, "filter_gbps", o.FilterGbps, n.FilterGbps)
			check(key, "scan_gbps", o.ScanGbps, n.ScanGbps)
		}
	}
	// Batch-sweep gate: batch-over-serial scan speedup per packet size.
	// Snapshots from before the section existed have no rows — skip.
	if len(oldSnap.BatchSweep) > 0 {
		newBatch := map[string]batchRow{}
		for _, r := range newSnap.BatchSweep {
			newBatch[r.Label] = r
		}
		for _, o := range oldSnap.BatchSweep {
			key := "batch/" + o.Label
			n, ok := newBatch[o.Label]
			if !ok {
				fmt.Printf("skip %-24s packet size not in new snapshot\n", key)
				continue
			}
			check(key, "batch_speedup_vs_serial", o.Speedup, n.Speedup)
			if *abs {
				check(key, "serial_gbps", o.SerialGbps, n.SerialGbps)
				check(key, "batch_gbps", o.BatchGbps, n.BatchGbps)
			}
		}
	} else {
		fmt.Println("skip batch_sweep: baseline snapshot has no section")
	}

	// Ingest-sweep gate: batched-over-per-segment dispatch speedup per
	// segment size, under its own (looser) tolerance.
	if len(oldSnap.IngestSweep) > 0 {
		newIngest := map[string]ingestRow{}
		for _, r := range newSnap.IngestSweep {
			newIngest[r.Label] = r
		}
		for _, o := range oldSnap.IngestSweep {
			key := "ingest/" + o.Label
			n, ok := newIngest[o.Label]
			if !ok {
				fmt.Printf("skip %-24s segment size not in new snapshot\n", key)
				continue
			}
			checkDrop(key, "batched_speedup_vs_per_segment", o.BatchedSpeedup, n.BatchedSpeedup, *ingestMaxDrop)
			if *abs {
				checkDrop(key, "per_segment_segs_per_sec", o.PerSegmentSegsSec, n.PerSegmentSegsSec, *ingestMaxDrop)
				checkDrop(key, "batched_segs_per_sec", o.BatchedSegsSec, n.BatchedSegsSec, *ingestMaxDrop)
			}
		}
	} else {
		fmt.Println("skip ingest_sweep: baseline snapshot has no section")
	}

	// Rule-sweep gate: the verify overhead ratio (literal-only Gbps over
	// full-rule-tier Gbps, both measured in-process on this host) must
	// not rise past its own tolerance at any anchor-hit rate. Lower is
	// better, so this gate bounds a rise where the others bound a drop.
	if len(oldSnap.RuleSweep) > 0 {
		newRule := map[float64]ruleRow{}
		for _, r := range newSnap.RuleSweep {
			newRule[r.HitRatePct] = r
		}
		for _, o := range oldSnap.RuleSweep {
			key := fmt.Sprintf("rules/%g%%", o.HitRatePct)
			n, ok := newRule[o.HitRatePct]
			if !ok {
				fmt.Printf("skip %-24s hit rate not in new snapshot\n", key)
				continue
			}
			if o.Overhead <= 0 {
				continue
			}
			ceil := o.Overhead * (1 + *ruleMaxRise)
			if n.Overhead > ceil {
				fmt.Printf("FAIL %-24s %-30s %.3f -> %.3f (ceiling %.3f, +%.1f%%)\n",
					key, "verify_overhead", o.Overhead, n.Overhead, ceil, (n.Overhead/o.Overhead-1)*100)
				failed = true
			} else {
				fmt.Printf("ok   %-24s %-30s %.3f -> %.3f\n", key, "verify_overhead", o.Overhead, n.Overhead)
			}
			if *abs {
				checkDrop(key, "rule_gbps", o.RuleGbps, n.RuleGbps, *ruleMaxRise)
				checkDrop(key, "literal_gbps", o.LiteralGbps, n.LiteralGbps, *ruleMaxRise)
			}
		}
	} else {
		fmt.Println("skip rule_sweep: baseline snapshot has no section")
	}

	// Flood-sweep gate: the verifier budget must stay free on clean
	// traffic. The budgets-on/off throughput ratio at 0% flood density
	// is measured fresh in-process (both pipelines on the same host in
	// the same run, so machine speed cancels) and gated against an
	// absolute ceiling rather than the baseline — the overhead claim is
	// "≤1.05x", not "no worse than last time". Attack-density rows are
	// informational: their budget_gbps is the degraded floor, and the
	// relative gates would only pin noise.
	if *floodMaxOverhead > 0 {
		key := "flood/0%"
		var n *floodRow
		for i := range newSnap.FloodSweep {
			if newSnap.FloodSweep[i].FloodPct == 0 {
				n = &newSnap.FloodSweep[i]
				break
			}
		}
		switch {
		case n == nil:
			fmt.Printf("skip %-24s new snapshot has no clean flood row (ceiling %.2f not applicable)\n", key, *floodMaxOverhead)
		case n.BudgetOverhead > *floodMaxOverhead:
			fmt.Printf("FAIL %-24s %-30s %.3f above ceiling %.2f\n",
				key, "budget_overhead", n.BudgetOverhead, *floodMaxOverhead)
			failed = true
		default:
			fmt.Printf("ok   %-24s %-30s %.3f <= ceiling %.2f\n",
				key, "budget_overhead", n.BudgetOverhead, *floodMaxOverhead)
		}
	}

	if *minIngest64 > 0 {
		key := "ingest/64"
		var n *ingestRow
		for i := range newSnap.IngestSweep {
			if newSnap.IngestSweep[i].Label == "64" {
				n = &newSnap.IngestSweep[i]
				break
			}
		}
		switch {
		case n == nil:
			fmt.Printf("skip %-24s new snapshot has no 64-byte ingest row (floor %.2f not applicable)\n", key, *minIngest64)
		case n.BatchedSpeedup < *minIngest64:
			fmt.Printf("FAIL %-24s %-30s %.3f below floor %.2f\n",
				key, "batched_speedup_vs_per_segment", n.BatchedSpeedup, *minIngest64)
			failed = true
		default:
			fmt.Printf("ok   %-24s %-30s %.3f >= floor %.2f\n",
				key, "batched_speedup_vs_per_segment", n.BatchedSpeedup, *minIngest64)
		}
	}
	if *minAVX2 > 0 {
		key := "avx2/clean-random"
		if n, ok := newRows[key]; !ok {
			fmt.Printf("skip %-24s host has no AVX2 (floor %.2f not applicable)\n", key, *minAVX2)
		} else if n.FilterSpeedup < *minAVX2 {
			fmt.Printf("FAIL %-24s %-22s %.3f below floor %.2f\n",
				key, "filter_speedup_vs_swar", n.FilterSpeedup, *minAVX2)
			failed = true
		} else {
			fmt.Printf("ok   %-24s %-22s %.3f >= floor %.2f\n",
				key, "filter_speedup_vs_swar", n.FilterSpeedup, *minAVX2)
		}
	}
	if failed {
		fmt.Println("bench gate: FAILED")
		os.Exit(1)
	}
	fmt.Println("bench gate: passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-benchgate:", err)
	os.Exit(1)
}
