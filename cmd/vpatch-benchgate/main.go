// Command vpatch-benchgate is the CI bench-regression gate: it compares
// a fresh vpatch-bench -json snapshot against the previously committed
// one and fails (exit 1) when throughput regressed beyond the allowed
// drop.
//
// Usage:
//
//	vpatch-bench -kernels -json new.json
//	vpatch-benchgate -old BENCH_007.json -new new.json -max-drop 0.10
//
// The primary gate is the kernel sweep's speedup-vs-SWAR ratios
// (filter_speedup_vs_swar, scan_speedup_vs_swar): both snapshots
// measure the native kernels and the SWAR baseline on the same host in
// the same process, so the ratio cancels machine speed and is
// comparable across CI runners. A ratio in the new snapshot more than
// -max-drop below the committed one fails the gate. Rows for kernels
// the running host lacks (e.g. an arm64 or pre-AVX2 runner) are
// reported as skipped, not failed — the gate can only pin what the
// host can run.
//
// -min-avx2-filter additionally enforces an absolute floor on the AVX2
// clean-random filtering-round speedup (the paper's §VI claim; 0
// disables). -abs extends the gate to raw Gbps values for same-machine
// comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// snapshot mirrors the vpatch-bench report fields the gate reads; the
// rest of the document is ignored so the gate tolerates report growth.
type snapshot struct {
	GeneratedAt string     `json:"generated_at"`
	Kernel      string     `json:"kernel"`
	KernelSweep []sweepRow `json:"kernel_sweep"`
}

type sweepRow struct {
	Kernel        string  `json:"kernel"`
	Traffic       string  `json:"traffic"`
	FilterGbps    float64 `json:"filter_gbps"`
	ScanGbps      float64 `json:"scan_gbps"`
	FilterSpeedup float64 `json:"filter_speedup_vs_swar"`
	ScanSpeedup   float64 `json:"scan_speedup_vs_swar"`
}

func load(path string) (*snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	oldPath := flag.String("old", "", "committed baseline snapshot (vpatch-bench -json output)")
	newPath := flag.String("new", "", "freshly measured snapshot to gate")
	maxDrop := flag.Float64("max-drop", 0.10, "maximum allowed fractional drop per gated metric")
	minAVX2 := flag.Float64("min-avx2-filter", 0, "absolute floor on the avx2 clean-random filter speedup (0 = off)")
	abs := flag.Bool("abs", false, "also gate absolute Gbps (same-machine comparisons only)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	oldSnap, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if len(oldSnap.KernelSweep) == 0 {
		fatal(fmt.Errorf("%s has no kernel_sweep rows to gate against", *oldPath))
	}

	newRows := map[string]sweepRow{}
	for _, r := range newSnap.KernelSweep {
		newRows[r.Kernel+"/"+r.Traffic] = r
	}

	failed := false
	check := func(key, metric string, oldV, newV float64) {
		if oldV <= 0 {
			return // baseline never measured this metric
		}
		floor := oldV * (1 - *maxDrop)
		if newV < floor {
			fmt.Printf("FAIL %-24s %-22s %.3f -> %.3f (floor %.3f, -%.1f%%)\n",
				key, metric, oldV, newV, floor, (1-newV/oldV)*100)
			failed = true
			return
		}
		fmt.Printf("ok   %-24s %-22s %.3f -> %.3f\n", key, metric, oldV, newV)
	}
	for _, o := range oldSnap.KernelSweep {
		key := o.Kernel + "/" + o.Traffic
		n, ok := newRows[key]
		if !ok {
			fmt.Printf("skip %-24s kernel not available on this host\n", key)
			continue
		}
		if o.Kernel != "swar" {
			// Ratios cancel host speed: the cross-runner gate.
			check(key, "filter_speedup_vs_swar", o.FilterSpeedup, n.FilterSpeedup)
			check(key, "scan_speedup_vs_swar", o.ScanSpeedup, n.ScanSpeedup)
		}
		if *abs {
			check(key, "filter_gbps", o.FilterGbps, n.FilterGbps)
			check(key, "scan_gbps", o.ScanGbps, n.ScanGbps)
		}
	}
	if *minAVX2 > 0 {
		key := "avx2/clean-random"
		if n, ok := newRows[key]; !ok {
			fmt.Printf("skip %-24s host has no AVX2 (floor %.2f not applicable)\n", key, *minAVX2)
		} else if n.FilterSpeedup < *minAVX2 {
			fmt.Printf("FAIL %-24s %-22s %.3f below floor %.2f\n",
				key, "filter_speedup_vs_swar", n.FilterSpeedup, *minAVX2)
			failed = true
		} else {
			fmt.Printf("ok   %-24s %-22s %.3f >= floor %.2f\n",
				key, "filter_speedup_vs_swar", n.FilterSpeedup, *minAVX2)
		}
	}
	if failed {
		fmt.Println("bench gate: FAILED")
		os.Exit(1)
	}
	fmt.Println("bench gate: passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-benchgate:", err)
	os.Exit(1)
}
