//go:build linux

package main

import "syscall"

// raiseFileLimit lifts the soft RLIMIT_NOFILE toward need (clamped to
// the hard limit) so the connection soak can hold thousands of
// sockets. Best effort: a failed setrlimit surfaces later as dial
// errors, which the soak reports.
func raiseFileLimit(need uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= need {
		return
	}
	if need > lim.Max {
		need = lim.Max
	}
	lim.Cur = need
	syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
