//go:build !linux

package main

// raiseFileLimit is a no-op off Linux; the connection soak then runs
// within whatever descriptor limit the platform grants.
func raiseFileLimit(uint64) {}
