package main

// The connection-soak mode (-conns N): instead of driving the
// dispatcher in process, it stands up the full resident daemon — fair
// scheduler, tenant generation, raw-TCP ingest listener — and hammers
// it with N concurrent ingest connections, each streaming short flows
// carrying exactly one injected match. The gate is the overload
// layer's whole contract at once: memory stays flat at thousands of
// connections, the scheduler sheds nothing (the load is in-quota), and
// after drain the tenant's alert count equals the flows sent — zero
// alerts lost or duplicated end to end.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/serve"
)

// connSoakPayload carries exactly one occurrence of the first soak
// pattern: one alert per flow, so the loss check is exact arithmetic.
func connSoakPayload() []byte {
	var b bytes.Buffer
	b.Write(bytes.Repeat([]byte{'x'}, 200))
	b.WriteString("attack-sig-001")
	b.Write(bytes.Repeat([]byte{'x'}, 200))
	return b.Bytes()
}

func runConnSoak(duration time.Duration, conns int, maxGrowth float64) {
	// Each connection costs two descriptors (client and server ends live
	// in this process); raise the soft limit before dialing 2000+.
	raiseFileLimit(uint64(4*conns + 256))

	set := patterns.FromStrings(
		"attack-sig-001", "malware-beacon", "exploit-shellcode",
		"/etc/passwd", "cmd.exe /c", "union select",
	)
	eng, err := ids.NewEngine(set, vpatch.Options{}, func(ids.Alert) {})
	if err != nil {
		fatal(err)
	}
	var blob bytes.Buffer
	if _, err := eng.WriteDB(&blob); err != nil {
		fatal(err)
	}

	// The short flow timeout keeps closed-flow tombstones churning:
	// expiry runs on the capture clock, which the senders advance by
	// stamping segments with elapsed time. Without both, 100k+ dead
	// flows' tombstones pile up and read as a leak.
	srv := serve.New(serve.Config{
		TenantDefaults: serve.TenantConfig{
			Shards:           runtime.GOMAXPROCS(0),
			IngestQueueBytes: 64 << 20,
			FlowTimeout:      10 * time.Second,
		},
	})
	tn, err := srv.CreateTenant(serve.DefaultTenant, serve.TenantConfig{})
	if err != nil {
		fatal(err)
	}
	if _, err := tn.Reload(blob.Bytes()); err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go srv.ServeIngest(ln)
	addr := ln.Addr().String()

	payload := connSoakPayload()
	start := time.Now()
	deadline := start.Add(duration)
	var flowsSent, sendErrs atomic.Uint64

	// Pace so the AGGREGATE offered load stays constant as -conns grows:
	// concurrency, not throughput, is the property under soak, and a
	// single-core box must stay comfortably inside the pipeline's
	// capacity or the scheduler (correctly) sheds and voids the
	// exactly-once arithmetic. ~150µs of spacing per connection keeps
	// the fleet near a few thousand flows/s total at any -conns.
	pace := time.Duration(conns) * 150 * time.Microsecond
	if pace < 50*time.Millisecond {
		pace = 50 * time.Millisecond
	}

	fmt.Printf("connection soak %s: %d concurrent ingest connections into %s (%d shards)\n",
		duration, conns, addr, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := serve.DialIngest(addr, serve.DefaultTenant)
			if err != nil {
				sendErrs.Add(1)
				return
			}
			defer c.Close()
			key := netsim.FlowKey{
				SrcIP:   0x0a000000 + uint32(id),
				DstIP:   0xc0a80001,
				DstPort: 80,
			}
			var buf []byte
			for n := 0; time.Now().Before(deadline); n++ {
				// One short flow per burst: a single FIN segment whose
				// payload holds exactly one match.
				key.SrcPort = uint16(40000 + n%20000)
				buf = serve.AppendSegment(buf[:0], netsim.Segment{
					Flow: key, Payload: payload, Flags: netsim.FlagFIN,
					TsMicros: uint64(time.Since(start).Microseconds()),
				})
				if _, err := c.Write(buf); err != nil {
					sendErrs.Add(1)
					return
				}
				flowsSent.Add(1)
				time.Sleep(pace + time.Duration(id%37)*time.Millisecond)
			}
		}(i)
	}

	// Sample memory once a second while the fleet runs; the gate
	// compares post-warmup to final. Warmup is half the duration (the
	// dispatcher soak uses a quarter): the fleet itself ramps — every
	// connection buys descriptors, a server goroutine, and read
	// buffers — and only the post-plateau trend is a leak signal.
	type sample struct{ sys, heapInuse uint64 }
	var samples []sample
	var warm *sample
	warmEnd := start.Add(duration / 2)
	for now := start; now.Before(deadline); now = time.Now() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		samples = append(samples, sample{ms.Sys, ms.HeapInuse})
		if !now.After(warmEnd) {
			warm = &samples[len(samples)-1]
		}
		time.Sleep(time.Second)
	}
	wg.Wait()

	rep := srv.Drain(time.Minute)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	final := sample{ms.Sys, ms.HeapInuse}
	if warm == nil {
		warm = &samples[0]
	}
	sched := srv.SchedStats(serve.DefaultTenant)
	td := rep.Tenants[serve.DefaultTenant]

	fmt.Printf("drove %d flows over %d connections: %d alerts, %d flows closed, %d sched batches (%d MB)\n",
		flowsSent.Load(), conns, td.Alerts, td.FlowsClosed,
		sched.DispatchedBatches, sched.DispatchedBytes>>20)
	fmt.Printf("memstats: warmup-end Sys %d KB / HeapInuse %d KB, final Sys %d KB / HeapInuse %d KB (%d samples)\n",
		warm.sys>>10, warm.heapInuse>>10, final.sys>>10, final.heapInuse>>10, len(samples))

	failed := false
	if n := sendErrs.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d connections hit send errors — alert accounting is void\n", n)
		failed = true
	}
	if !rep.Clean {
		fmt.Fprintln(os.Stderr, "FAIL: drain was dirty — residual pipeline state")
		failed = true
	}
	if td.Alerts != flowsSent.Load() {
		fmt.Fprintf(os.Stderr, "FAIL: %d alerts for %d flows sent — alerts were lost or duplicated\n",
			td.Alerts, flowsSent.Load())
		failed = true
	}
	if sched.DroppedBatches != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: scheduler shed %d batches (%d bytes) of in-quota load\n",
			sched.DroppedBatches, sched.DroppedBytes)
		failed = true
	}
	if g := float64(final.sys) / float64(warm.sys); g > maxGrowth {
		fmt.Fprintf(os.Stderr, "FAIL: Sys grew %.3fx after warmup (limit %.2fx) — memory is not flat under %d connections\n",
			g, maxGrowth, conns)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("PASS: %d connections, zero alert loss, zero shed, memory flat\n", conns)
}
