// Command vpatch-soak is the flat-memory soak gate for the recycled
// ingest path: it drives the full capture→dispatch→reassembly→scan
// pipeline with churning IMIX flows (FIN teardowns, injected matches,
// arena-owned segments through HandleBatch) for a wall-clock duration,
// samples runtime.MemStats throughout, and fails — exit 1 — if memory
// keeps growing after warmup. A leak anywhere in the recycling story
// (arena refcounts, slab pool, reassembler buffers, flow teardown)
// shows up as a rising floor; a correct steady state is flat.
//
// Usage:
//
//	vpatch-soak                      # 30s soak, one shard per core
//	vpatch-soak -duration 5m -shards 4 -flows 512
//	vpatch-soak -max-growth 1.05     # tighten the post-warmup bound
//	vpatch-soak -conns 2000          # connection soak: 2000 concurrent
//	                                 # ingest connections through the
//	                                 # in-process daemon
//
// -conns N switches to the connection soak: the full resident daemon
// (fair scheduler, tenant generation, raw-TCP ingest) is stood up in
// process and N concurrent connections each stream short flows
// carrying exactly one injected match. The gate additionally requires
// a clean drain, zero scheduler sheds of the in-quota load, and a
// final alert count exactly equal to the flows sent — zero alerts
// lost or duplicated end to end.
//
// The first quarter of the duration is warmup (pools and flow tables
// filling toward their plateau); the gate compares the end of the run
// against the end of warmup: Sys (OS-claimed memory) must not grow
// more than -max-growth, and HeapInuse must not trend past the same
// bound. Segment rate, alert count, and arena gauges print either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/arena"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak wall-clock duration")
	shards := flag.Int("shards", 0, "worker shards (0 = one per core)")
	flows := flag.Int("flows", 256, "concurrent flows the churn maintains")
	maxGrowth := flag.Float64("max-growth", 1.10, "allowed Sys/HeapInuse growth factor after warmup")
	seed := flag.Int64("seed", 1, "traffic generator seed")
	conns := flag.Int("conns", 0, "connection-soak mode: drive this many concurrent raw-TCP ingest connections through an in-process daemon instead of the dispatcher loop")
	flag.Parse()
	if *conns > 0 {
		runConnSoak(*duration, *conns, *maxGrowth)
		return
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	if *flows < 1 {
		*flows = 1
	}

	// A small fixed rule set keeps the soak ingest-bound (the property
	// under test is memory, not matcher throughput) while injected
	// matches keep the alert path live.
	set := patterns.FromStrings(
		"attack-sig-001", "malware-beacon", "exploit-shellcode",
		"/etc/passwd", "cmd.exe /c", "union select",
	)
	var alerts atomic.Uint64
	emit := func(ids.Alert) { alerts.Add(1) }
	eng, err := ids.NewEngine(set, vpatch.Options{}, emit)
	if err != nil {
		fatal(err)
	}
	a := arena.New(arena.Config{})
	d := eng.NewDispatcher(*shards, netsim.Limits{
		MaxFlows:          4 * *flows,
		FlowPendingBytes:  64 << 10,
		TotalPendingBytes: 16 << 20,
	}, emit)
	d.SetArena(a)

	// Pre-generate an IMIX payload pool (ISCX-like content with matches
	// injected from the set) and cycle through it; generation cost stays
	// out of the soak loop.
	pool := traffic.Packets(traffic.ISCXDay2, traffic.SimpleIMIX, 4096, *seed, set)

	// Flow churn state: each slot is a live flow that ends with a FIN
	// after its segment budget and is replaced by a fresh five-tuple —
	// the lifecycle that exercises teardown, tombstones, and eviction.
	type flowState struct {
		key  netsim.FlowKey
		seq  uint32
		left int // segments until FIN
	}
	nextID := uint32(0)
	newFlow := func() flowState {
		nextID++
		return flowState{
			key: netsim.FlowKey{
				SrcIP:   0x0a000000 + nextID,
				DstIP:   0xc0a80001,
				SrcPort: uint16(40000 + nextID%20000),
				DstPort: 80,
			},
			left: 16 + int(nextID%48),
		}
	}
	live := make([]flowState, *flows)
	for i := range live {
		live[i] = newFlow()
	}

	const batchSegs = 64
	batch := make([]netsim.Segment, 0, batchSegs)
	var segs, bytes uint64
	poolIdx := 0

	start := time.Now()
	deadline := start.Add(*duration)
	warmEnd := start.Add(*duration / 4)
	nextSample := start.Add(time.Second)

	type sample struct {
		at        time.Duration
		sys       uint64
		heapInuse uint64
	}
	var samples []sample
	var warm *sample // last sample inside the warmup window
	takeSample := func(now time.Time) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s := sample{at: now.Sub(start), sys: ms.Sys, heapInuse: ms.HeapInuse}
		samples = append(samples, s)
		if !now.After(warmEnd) {
			warm = &samples[len(samples)-1]
		}
	}

	fmt.Printf("soaking %s: %d shards, %d churning flows, IMIX traffic, batch %d\n",
		*duration, *shards, *flows, batchSegs)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		if !now.Before(nextSample) {
			takeSample(now)
			nextSample = now.Add(time.Second)
		}
		for i := 0; i < batchSegs; i++ {
			f := &live[int(segs)%len(live)]
			p := pool[poolIdx]
			poolIdx = (poolIdx + 1) % len(pool)
			b := a.Rent(len(p))
			data := b.Data()[:len(p)]
			copy(data, p)
			var seg netsim.Segment
			seg.Flow = f.key
			seg.Seq = f.seq
			seg.TsMicros = uint64(now.Sub(start).Microseconds())
			seg.Payload = data
			seg.SetOwned(b)
			f.seq += uint32(len(p))
			f.left--
			if f.left == 0 {
				seg.Flags = netsim.FlagFIN
				*f = newFlow()
			}
			segs++
			bytes += uint64(len(p))
			batch = append(batch, seg)
		}
		d.HandleBatch(batch)
		batch = batch[:0]
	}
	d.Close()
	takeSample(time.Now())
	elapsed := time.Since(start)

	st := a.Stats()
	final := samples[len(samples)-1]
	rate := float64(segs) / elapsed.Seconds()
	fmt.Printf("drove %d segments (%d MB) in %s: %.0f segments/s, %.3f Gbps, %d alerts\n",
		segs, bytes>>20, elapsed.Round(time.Millisecond), rate,
		float64(bytes)*8/float64(elapsed.Nanoseconds()), alerts.Load())
	fmt.Printf("arena: in-use %d, peak %d chunks, pooled %d KB, overflows %d\n",
		st.InUse, st.Peak, st.PooledBytes>>10, st.Overflows)
	if warm == nil {
		// Degenerate duration: everything landed after warmup; gate
		// against the first sample instead.
		warm = &samples[0]
	}
	fmt.Printf("memstats: warmup-end Sys %d KB / HeapInuse %d KB, final Sys %d KB / HeapInuse %d KB (%d samples)\n",
		warm.sys>>10, warm.heapInuse>>10, final.sys>>10, final.heapInuse>>10, len(samples))

	failed := false
	if st.InUse != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d arena chunks still rented after Close — refcount leak\n", st.InUse)
		failed = true
	}
	if g := float64(final.sys) / float64(warm.sys); g > *maxGrowth {
		fmt.Fprintf(os.Stderr, "FAIL: Sys grew %.3fx after warmup (limit %.2fx) — memory is not flat\n", g, *maxGrowth)
		failed = true
	}
	// HeapInuse swings with GC phase, so single samples can lie in both
	// directions; the floor (minimum over a window) is what a leak
	// raises. Compare the floor of the last quarter against the floor of
	// the quarter right after warmup.
	floorOf := func(lo, hi time.Duration) uint64 {
		min := uint64(0)
		for _, s := range samples {
			if s.at >= lo && s.at <= hi && (min == 0 || s.heapInuse < min) {
				min = s.heapInuse
			}
		}
		return min
	}
	early := floorOf(*duration/4, *duration/2)
	late := floorOf(*duration*3/4, elapsed+time.Second)
	if early > 0 && late > 0 {
		if g := float64(late) / float64(early); g > *maxGrowth {
			fmt.Fprintf(os.Stderr, "FAIL: HeapInuse floor grew %.3fx after warmup (limit %.2fx) — heap is not flat\n", g, *maxGrowth)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("PASS: memory flat after warmup")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-soak:", err)
	os.Exit(1)
}
