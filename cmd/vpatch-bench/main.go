// Command vpatch-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	vpatch-bench -fig 4a            # one figure
//	vpatch-bench -all               # every figure
//	vpatch-bench -fig 4a -size 64   # 64 MB of traffic per dataset
//	vpatch-bench -sizes 64,256,1514,imix -batch 32
//	                                # packet-size sweep: serial vs batch
//	vpatch-bench -accel             # acceleration density sweep
//	vpatch-bench -ingest            # end-to-end ingest sweep:
//	                                # per-segment vs batched dispatch
//	vpatch-bench -rules             # rule-tier overhead sweep:
//	                                # full semantics vs literal-only
//	vpatch-bench -flood             # match-flood adversarial sweep:
//	                                # verifier budgets on vs off
//	vpatch-bench -kernels           # extract-kernel A/B sweep (all kernels)
//	vpatch-bench -kernel avx2       # kernel sweep: avx2 vs the swar baseline
//	vpatch-bench -db web.vpdb      # startup: load vs recompile + scan
//	vpatch-bench -all -json bench.json
//	                                # machine-readable results
//
// Figures: 4a 4b 5a 5b 5c 6a 6b 6c 7a 7b. Output is the same rows/series
// the paper plots: wall-clock Gbps of this Go implementation plus
// cost-model Gbps on the figure's platform (Haswell for Fig 4-6, Xeon-Phi
// for Fig 7); speedups are model-based. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// The -db mode runs the startup benchmark on a precompiled database
// written by vpatch-compile: it times loading the database versus
// recompiling the same pattern set with the same engine, prints the
// engine's Info line, and measures scan throughput over synthesized
// traffic — the compile-once / load-everywhere payoff in one report.
//
// The -sizes mode runs the batch-scanning sweep instead of a figure:
// packets of each given size (or the IMIX mix) scanned one Scan call
// per packet versus one lane-per-packet ScanBatch call per -batch
// packets, reporting wall-clock throughput, the serial scan's vector
// coverage, and the batched scan's lane occupancy per size.
//
// The -accel mode runs the skip-loop acceleration density sweep
// (0-100% match fraction x packet-to-chunk buffer sizes): accelerated
// vs plain fused kernels plus the skip ratio per cell — the crossover
// evidence behind the acceleration layer's governor thresholds.
//
// The -ingest mode runs the end-to-end ingest sweep: a simulated
// capture loop rents arena chunks and drives the sharded dispatcher
// with per-segment Handle calls versus batched HandleBatch slabs,
// reporting segments/s and Gbps per segment size — the evidence behind
// the batched-handoff ingest path, and the section the bench gate pins
// for ingest regressions.
//
// Sweep and startup modes combine: -kernels -sizes 64 -ingest in one
// invocation runs all three and writes one JSON report with every
// section.
//
// The -kernels mode (or -kernel with a specific kernel name and no
// figure selection) runs the extract-kernel A/B sweep: each kernel's
// filtering-round and full-scan throughput over clean-random and
// ISCX-like traffic, with speedups against the always-included SWAR
// reference kernel. This is the snapshot the CI bench-regression gate
// (vpatch-benchgate) pins. -kernel also records the selected kernel in
// the -json report for every mode; the paper figures themselves stay
// pinned to the unaccelerated reference rendition and report kernel
// "reference".
//
// -json writes every result produced by the run as one machine-readable
// JSON document ("-" = stdout): per-figure wall-clock and modeled Gbps
// with full event counters, batch-sweep lane occupancy, and accel-sweep
// skip ratios. CI records it as the bench-trajectory artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vpatch"
	"vpatch/internal/costmodel"
	"vpatch/internal/experiments"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// report accumulates everything the run produced for -json output.
type report struct {
	GeneratedAt string                       `json:"generated_at"`
	Seed        int64                        `json:"seed"`
	TrafficMB   int                          `json:"traffic_mb"`
	Repeats     int                          `json:"repeats"`
	Kernel      string                       `json:"kernel"`
	Figures     map[string]figEntry          `json:"figures,omitempty"`
	KernelSweep []experiments.KernelSweepRow `json:"kernel_sweep,omitempty"`
	BatchSweep  []experiments.BatchSweepRow  `json:"batch_sweep,omitempty"`
	IngestSweep []experiments.IngestSweepRow `json:"ingest_sweep,omitempty"`
	AccelSweep  []experiments.AccelSweepRow  `json:"accel_sweep,omitempty"`
	RuleSweep   []experiments.RuleSweepRow   `json:"rule_sweep,omitempty"`
	FloodSweep  []experiments.FloodSweepRow  `json:"flood_sweep,omitempty"`
	DB          *dbReport                    `json:"db,omitempty"`
}

// figEntry is one figure in the JSON report, tagged with the extract
// kernel its engines resolved to. The paper-figure reproductions are
// pinned to the unaccelerated reference path (no extract kernel runs),
// recorded as "reference"; the sweeps record the real resolved kernel.
type figEntry struct {
	Kernel string `json:"kernel"`
	Rows   any    `json:"rows"`
}

// dbReport is the -db startup benchmark in machine-readable form.
type dbReport struct {
	Path          string  `json:"path"`
	Bytes         int     `json:"bytes"`
	Info          string  `json:"info"`
	LoadMicros    int64   `json:"load_us"`
	CompileMicros int64   `json:"compile_us"`
	ScanGbps      float64 `json:"scan_gbps"`
}

func (r *report) addFigure(name string, rows any) {
	if r.Figures == nil {
		r.Figures = map[string]figEntry{}
	}
	// Paper figures stay pinned to the unaccelerated reference rendition
	// (see experiments.BuildAlgos) — no extract kernel is involved.
	r.Figures[name] = figEntry{Kernel: "reference", Rows: rows}
}

// write emits the report to path ("-" = stdout) when -json was given.
func (r *report) write(path string) {
	if path == "" {
		return
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatalBench(err)
	}
	blob = append(blob, '\n')
	if path == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalBench(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate (4a 4b 5a 5b 5c 6a 6b 6c 7a 7b)")
	all := flag.Bool("all", false, "regenerate every figure")
	sizeMB := flag.Int("size", 4, "traffic size per dataset in MB")
	seed := flag.Int64("seed", 1, "generator seed")
	repeats := flag.Int("repeats", 3, "wall-clock timing repeats")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	sizesFlag := flag.String("sizes", "", "comma-separated packet sizes in bytes (or 'imix'): run the serial-vs-batch packet sweep instead of figures")
	batchN := flag.Int("batch", 32, "buffers per ScanBatch call in the packet sweep")
	dbPath := flag.String("db", "", "precompiled .vpdb database: run the load-vs-compile startup benchmark instead of figures")
	accelSweep := flag.Bool("accel", false, "run the skip-loop acceleration density sweep instead of figures")
	ingestSweep := flag.Bool("ingest", false, "run the end-to-end ingest sweep (per-segment vs batched dispatch) instead of figures")
	rulesSweep := flag.Bool("rules", false, "run the rule-tier overhead sweep (full rule semantics vs literal-only at 0-10% anchor-hit rates) instead of figures")
	floodSweep := flag.Bool("flood", false, "run the match-flood adversarial sweep (verifier budgets on vs off at 0-40% flood-site densities) instead of figures")
	ingestShards := flag.Int("ingest-shards", 0, "worker shards in the ingest sweep (0 = one per core)")
	ingestBatch := flag.Int("ingest-batch", 0, "segments per HandleBatch call in the ingest sweep (0 = dispatcher default)")
	kernelFlag := flag.String("kernel", "auto", "extract kernel to force (auto, avx2, ssse3, swar); with no figure selection, runs the kernel sweep for it vs the swar baseline")
	kernelsMode := flag.Bool("kernels", false, "run the extract-kernel A/B sweep over every kernel available on this host")
	jsonPath := flag.String("json", "", "write all results of this run as JSON to the given path ('-' = stdout)")
	flag.Parse()

	kern, err := vpatch.ParseKernel(*kernelFlag)
	if err != nil {
		fatalBench(err)
	}
	if !vpatch.KernelAvailable(kern) {
		fatalBench(fmt.Errorf("kernel %s is not available on this host (have %v)",
			kern, vpatch.AvailableKernels()))
	}
	resolved := kern
	if resolved == vpatch.KernelAuto {
		resolved = vpatch.ActiveKernel()
	}

	cfg := experiments.Config{
		TrafficBytes: *sizeMB << 20,
		Seed:         *seed,
		Repeats:      *repeats,
	}
	rep := &report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        *seed,
		TrafficMB:   *sizeMB,
		Repeats:     *repeats,
		Kernel:      resolved.String(),
	}

	// The sweep and startup modes combine: one invocation may run any
	// subset of them (e.g. -kernels -sizes ... -ingest) and the -json
	// report carries every section produced — how CI builds the single
	// BENCH snapshot the bench-regression gate pins.
	ranMode := false
	if *kernelsMode || (kern != vpatch.KernelAuto && *fig == "" && !*all &&
		*sizesFlag == "" && *dbPath == "" && !*accelSweep && !*ingestSweep && !*rulesSweep && !*floodSweep) {
		kernels := vpatch.AvailableKernels()
		if !*kernelsMode {
			kernels = []vpatch.Kernel{resolved}
		}
		runKernelSweep(cfg, kernels, *csvDir, rep)
		ranMode = true
	}
	if *dbPath != "" {
		runDBBench(cfg, *dbPath, rep)
		ranMode = true
	}
	if *accelSweep {
		runAccelSweep(cfg, *csvDir, rep)
		ranMode = true
	}
	if *sizesFlag != "" {
		runBatchSweep(cfg, *sizesFlag, *batchN, *csvDir, rep)
		ranMode = true
	}
	if *ingestSweep {
		runIngestSweep(cfg, *ingestShards, *ingestBatch, *csvDir, rep)
		ranMode = true
	}
	if *rulesSweep {
		runRuleSweep(cfg, *csvDir, rep)
		ranMode = true
	}
	if *floodSweep {
		runFloodSweep(cfg, *csvDir, rep)
		ranMode = true
	}
	if ranMode {
		rep.write(*jsonPath)
		return
	}

	var figs []string
	switch {
	case *all:
		figs = []string{"4a", "4b", "5a", "5b", "5c", "6a", "6b", "6c", "7a", "7b"}
	case *fig != "":
		figs = strings.Split(*fig, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Rule sets are built once and shared across figures.
	fmt.Println("generating rule sets (seeded, statistics of Snort v2.9.7 / ET-open 2.9.0)...")
	s1 := patterns.GenerateS1(cfg.Seed)
	s2 := patterns.GenerateS2(cfg.Seed)
	s1web := s1.WebSubset()
	s2web := s2.WebSubset()
	fmt.Println("  " + patterns.DescribeSet("S1", s1))
	fmt.Println("  " + patterns.DescribeSet("S2", s2))
	fmt.Println()

	for _, f := range figs {
		switch strings.TrimSpace(f) {
		case "4a":
			rows := experiments.FigThroughput(cfg, s1web, costmodel.Haswell, 8)
			experiments.PrintThroughputRows(os.Stdout,
				"Fig 4a: overall throughput, Snort web patterns (2K), Haswell (W=8)", rows)
			rep.addFigure("4a", rows)
			writeCSV(*csvDir, func() error { return experiments.WriteThroughputCSV(*csvDir, "fig4a.csv", rows) })
		case "4b":
			rows := experiments.FigThroughput(cfg, s2web, costmodel.Haswell, 8)
			experiments.PrintThroughputRows(os.Stdout,
				"Fig 4b: overall throughput, ET-open web patterns (9K), Haswell (W=8)", rows)
			rep.addFigure("4b", rows)
			writeCSV(*csvDir, func() error { return experiments.WriteThroughputCSV(*csvDir, "fig4b.csv", rows) })
		case "5a":
			pts := experiments.Fig5a(cfg, s2, []int{1000, 2500, 5000, 7500, 10000, 15000, 20000},
				costmodel.Haswell, 8)
			experiments.PrintFig5a(os.Stdout, pts)
			rep.addFigure("5a", pts)
			writeCSV(*csvDir, func() error { return experiments.WriteFig5aCSV(*csvDir, "fig5a.csv", pts) })
		case "5b":
			pts := experiments.Fig5b(cfg, s2, []int{1000, 2500, 5000, 7500, 10000, 15000, 20000}, 8)
			experiments.PrintFig5b(os.Stdout, pts)
			rep.addFigure("5b", pts)
			writeCSV(*csvDir, func() error { return experiments.WriteFig5bCSV(*csvDir, "fig5b.csv", pts) })
		case "5c":
			pts := experiments.Fig5c(cfg, s2.Subset(2000, cfg.Seed),
				[]float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}, costmodel.Haswell, 8)
			experiments.PrintFig5c(os.Stdout, pts)
			rep.addFigure("5c", pts)
			writeCSV(*csvDir, func() error { return experiments.WriteFig5cCSV(*csvDir, "fig5c.csv", pts) })
		case "6a":
			cells := experiments.Fig6(cfg, s1web, costmodel.Haswell, 8)
			experiments.PrintFig6(os.Stdout, "Fig 6a: filtering-only throughput, 2K patterns", cells)
			rep.addFigure("6a", cells)
			writeCSV(*csvDir, func() error { return experiments.WriteFig6CSV(*csvDir, "fig6a.csv", cells) })
		case "6b":
			cells := experiments.Fig6(cfg, s2web, costmodel.Haswell, 8)
			experiments.PrintFig6(os.Stdout, "Fig 6b: filtering-only throughput, 9K patterns", cells)
			rep.addFigure("6b", cells)
			writeCSV(*csvDir, func() error { return experiments.WriteFig6CSV(*csvDir, "fig6b.csv", cells) })
		case "6c":
			cells := experiments.Fig6(cfg, s2, costmodel.Haswell, 8)
			experiments.PrintFig6(os.Stdout, "Fig 6c: filtering-only throughput, 20K patterns", cells)
			rep.addFigure("6c", cells)
			writeCSV(*csvDir, func() error { return experiments.WriteFig6CSV(*csvDir, "fig6c.csv", cells) })
		case "7a":
			rows := experiments.FigThroughput(cfg, s1web, costmodel.XeonPhi, 16)
			experiments.PrintThroughputRows(os.Stdout,
				"Fig 7a: overall throughput, Snort web patterns (2K), Xeon-Phi (W=16)", rows)
			rep.addFigure("7a", rows)
			writeCSV(*csvDir, func() error { return experiments.WriteThroughputCSV(*csvDir, "fig7a.csv", rows) })
		case "7b":
			rows := experiments.FigThroughput(cfg, s2web, costmodel.XeonPhi, 16)
			experiments.PrintThroughputRows(os.Stdout,
				"Fig 7b: overall throughput, ET-open web patterns (9K), Xeon-Phi (W=16)", rows)
			rep.addFigure("7b", rows)
			writeCSV(*csvDir, func() error { return experiments.WriteThroughputCSV(*csvDir, "fig7b.csv", rows) })
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
		fmt.Println()
	}
	rep.write(*jsonPath)
}

// runKernelSweep runs the extract-kernel A/B sweep on the Snort-sized
// web rule set (clean-random + ISCX-like traffic, SWAR baseline always
// included).
func runKernelSweep(cfg experiments.Config, kernels []vpatch.Kernel, csvDir string, rep *report) {
	fmt.Println("generating rule set (seeded, statistics of Snort v2.9.7)...")
	set := patterns.GenerateS1(cfg.Seed).WebSubset()
	fmt.Println("  " + patterns.DescribeSet("S1-web", set))
	fmt.Println()
	rows := experiments.KernelSweep(cfg, set, 8, kernels)
	experiments.PrintKernelSweep(os.Stdout,
		"Kernel sweep: extract-kernel filtering-round and full-scan throughput (V-PATCH W=8)", rows)
	rep.KernelSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteKernelSweepCSV(csvDir, "kernelsweep.csv", rows) })
}

// runAccelSweep runs the acceleration density sweep on the Snort-sized
// web rule set (the BenchmarkAccel* configuration).
func runAccelSweep(cfg experiments.Config, csvDir string, rep *report) {
	fmt.Println("generating rule set (seeded, statistics of Snort v2.9.7)...")
	set := patterns.GenerateS1(cfg.Seed).WebSubset()
	fmt.Println("  " + patterns.DescribeSet("S1-web", set))
	fmt.Println()
	rows := experiments.AccelSweep(cfg, set,
		[]float64{0, 0.25, 0.5, 0.75, 1.0},
		[]int{64, 1514, 64 << 10}, 8)
	experiments.PrintAccelSweep(os.Stdout,
		"Accel sweep: skip-loop acceleration vs plain fused kernels (V-PATCH W=8, random traffic + injected matches)", rows)
	rep.AccelSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteAccelSweepCSV(csvDir, "accelsweep.csv", rows) })
}

// runDBBench is the -db startup benchmark: load the database (timed,
// repeated), recompile the identical pattern set with the identical
// engine for comparison, print the engine Info, and measure scan
// throughput over synthesized traffic.
func runDBBench(cfg experiments.Config, path string, rep *report) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatalBench(err)
	}
	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}

	var eng *vpatch.Engine
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		eng, err = vpatch.Deserialize(blob)
		if err != nil {
			fatalBench(err)
		}
	}
	loadTime := time.Since(t0) / time.Duration(reps)
	info := eng.Info()
	fmt.Printf("database: %s (%d bytes)\n", path, len(blob))
	fmt.Printf("engine:   %s\n", info)

	opt := vpatch.Options{Algorithm: eng.Algorithm(), VectorWidth: eng.VectorWidth()}
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := vpatch.Compile(eng.Set(), opt); err != nil {
			fatalBench(err)
		}
	}
	compileTime := time.Since(t0) / time.Duration(reps)
	fmt.Printf("startup:  load %s vs compile %s (%.1fx)\n",
		loadTime.Round(time.Microsecond), compileTime.Round(time.Microsecond),
		float64(compileTime)/float64(loadTime))
	rep.DB = &dbReport{
		Path: path, Bytes: len(blob), Info: info.String(),
		LoadMicros:    loadTime.Microseconds(),
		CompileMicros: compileTime.Microseconds(),
	}

	data := traffic.Synthesize(traffic.ISCXDay2, cfg.TrafficBytes, cfg.Seed, eng.Set())
	sess := eng.NewSession()
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 = time.Now()
		var n uint64
		sess.Scan(data, nil, func(vpatch.Match) { n++ })
		if gbps := float64(len(data)) * 8 / float64(time.Since(t0).Nanoseconds()); gbps > best {
			best = gbps
		}
	}
	fmt.Printf("scan:     %.3f Gbps over %d MB of ISCX-like traffic (best of %d)\n",
		best, len(data)>>20, reps)
	rep.DB.ScanGbps = best
}

func fatalBench(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-bench:", err)
	os.Exit(1)
}

// runBatchSweep parses the -sizes list and runs the packet-size sweep
// on the Snort-sized web rule set (the Fig. 4a configuration).
func runBatchSweep(cfg experiments.Config, sizesFlag string, batch int, csvDir string, rep *report) {
	var sizes []int
	for _, tok := range strings.Split(sizesFlag, ",") {
		tok = strings.TrimSpace(tok)
		if strings.EqualFold(tok, "imix") {
			sizes = append(sizes, 0)
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad packet size %q (want bytes or 'imix')\n", tok)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	fmt.Println("generating rule set (seeded, statistics of Snort v2.9.7)...")
	set := patterns.GenerateS1(cfg.Seed).WebSubset()
	fmt.Println("  " + patterns.DescribeSet("S1-web", set))
	fmt.Println()
	rows := experiments.BatchSweep(cfg, set, sizes, batch, 8)
	experiments.PrintBatchSweep(os.Stdout,
		fmt.Sprintf("Batch sweep: V-PATCH serial vs lane-per-packet batch (W=8, batch=%d), ISCX-day2 traffic", batch), rows)
	rep.BatchSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteBatchSweepCSV(csvDir, "batchsweep.csv", rows) })
}

// runIngestSweep runs the end-to-end ingest sweep (capture loop →
// arena → dispatcher → reassembly → scan) at 64B, IMIX, and 1514B
// segments. It pins a small fixed rule set on purpose: the sweep's
// subject is the handoff path — rent, ownership transfer, channel
// operations, reassembly — so scan work is kept light enough not to
// drown the signal. Scan-bound throughput at full rule scale is what
// the figures and the kernel sweep measure.
func runIngestSweep(cfg experiments.Config, shards, batch int, csvDir string, rep *report) {
	set := patterns.FromStrings(
		"attack-sig-001", "malware-beacon", "exploit-shellcode",
		"/etc/passwd", "cmd.exe /c", "union select", "../../..",
		"X-Backdoor-Key",
	)
	fmt.Printf("ingest rule set: %d fixed signatures (handoff-bound on purpose)\n\n", set.Len())
	rows := experiments.IngestSweep(cfg, set, []int{64, 0, 1514}, shards, batch)
	title := "Ingest sweep: per-segment vs batched dispatch, ISCX-day2 traffic"
	if len(rows) > 0 {
		title = fmt.Sprintf("Ingest sweep: per-segment vs batched dispatch through %d shard(s), ISCX-day2 traffic", rows[0].Shards)
	}
	experiments.PrintIngestSweep(os.Stdout, title, rows)
	rep.IngestSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteIngestSweepCSV(csvDir, "ingestsweep.csv", rows) })
}

// runRuleSweep runs the rule-tier overhead sweep: the full rule
// semantics pipeline (clause evaluation + anchored lazy-DFA verifier)
// against the literal-only pipeline over the same prefilter literals,
// as injected anchor density sweeps from clean traffic to ~10% of
// bytes. The paper figures stay literal-only; this section is the
// evidence that verification rides on the prefilter instead of taxing
// the fast path, and the bench gate pins its clean-traffic overhead.
func runRuleSweep(cfg experiments.Config, csvDir string, rep *report) {
	rows, err := experiments.RuleSweep(cfg, vpatch.Options{}, nil)
	if err != nil {
		fatalBench(err)
	}
	experiments.PrintRuleSweep(os.Stdout,
		"Rule sweep: full rule semantics vs literal-only prefilter (V-PATCH, random traffic + injected anchors)", rows)
	rep.RuleSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteRuleSweepCSV(csvDir, "rulesweep.csv", rows) })
}

// runFloodSweep runs the match-flood adversarial sweep: the same rule
// pipeline with verifier budgets disarmed versus armed as injected
// always-rejecting anchor sites sweep from clean traffic to attack
// densities. The 0% cell's budgets-on/off ratio is the budget
// bookkeeping's clean-traffic overhead the bench gate pins; the attack
// cells show the throughput floor the budget defends.
func runFloodSweep(cfg experiments.Config, csvDir string, rep *report) {
	rows, err := experiments.FloodSweep(cfg, vpatch.Options{}, nil)
	if err != nil {
		fatalBench(err)
	}
	experiments.PrintFloodSweep(os.Stdout,
		"Flood sweep: verifier budgets on vs off under match-flood anchor injection (V-PATCH, random traffic)", rows)
	rep.FloodSweep = rows
	writeCSV(csvDir, func() error { return experiments.WriteFloodSweepCSV(csvDir, "floodsweep.csv", rows) })
}

// writeCSV runs the export when a CSV directory was requested.
func writeCSV(dir string, fn func() error) {
	if dir == "" {
		return
	}
	if err := fn(); err != nil {
		fmt.Fprintln(os.Stderr, "vpatch-bench: csv:", err)
		os.Exit(1)
	}
}
