// Command vpatch-ids runs the full NIDS pipeline over a pcap capture:
// flow reassembly, per-service rule groups, and multi-pattern matching
// with any of the library's engines.
//
// Usage:
//
//	vpatch-ids -rules web.rules -pcap capture.pcap
//	vpatch-ids -rules web.rules -pcap capture.pcap -algo dfc -top 10
//	vpatch-ids -db all-groups.vpdb -pcap capture.pcap
//
// -db loads a precompiled rule-group database written by
// `vpatch-compile -ids` instead of compiling the rules at startup.
//
// Captures can be produced with `vpatch-gen -pcap` or any tool writing
// classic little-endian libpcap Ethernet captures in the shape netsim
// emits (see internal/netsim).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
)

func main() {
	rulesPath := flag.String("rules", "", "Snort-style rules file")
	dbPath := flag.String("db", "", "precompiled rule-group .vpdb database (instead of -rules)")
	pcapPath := flag.String("pcap", "", "libpcap capture to analyze (required)")
	algoName := flag.String("algo", "vpatch", "matching engine: vpatch spatch dfc vectordfc ac wumanber ffbf")
	top := flag.Int("top", 5, "print the N most-alerting rules")
	flag.Parse()
	if (*rulesPath == "") == (*dbPath == "") || *pcapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pf, err := os.Open(*pcapPath)
	if err != nil {
		fatal(err)
	}
	segs, err := netsim.ReadPcap(pf)
	pf.Close()
	if err != nil {
		fatal(err)
	}

	perRule := map[int32]int{}
	perFlow := map[netsim.FlowKey]int{}
	total := 0
	emit := func(a ids.Alert) {
		total++
		perRule[a.PatternID]++
		perFlow[a.Flow]++
	}

	var engine *ids.Engine
	if *dbPath != "" {
		start := time.Now()
		df, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		engine, err = ids.ReadDB(df, emit)
		df.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded rule-group database in %s\n",
			time.Since(start).Round(time.Microsecond))
	} else {
		rf, err := os.Open(*rulesPath)
		if err != nil {
			fatal(err)
		}
		set, err := patterns.ParseRules(rf, patterns.ParseOptions{})
		rf.Close()
		if err != nil {
			fatal(err)
		}
		alg, err := vpatch.ParseAlgorithm(*algoName)
		if err != nil {
			fatal(err)
		}
		engine, err = ids.NewEngine(set, vpatch.Options{Algorithm: alg}, emit)
		if err != nil {
			fatal(err)
		}
	}
	set := engine.Set()

	bytes := 0
	start := time.Now()
	for _, s := range segs {
		bytes += len(s.Payload)
		engine.HandleSegment(s)
	}
	engine.Flush() // drain partial per-group batches
	elapsed := time.Since(start)

	fmt.Printf("capture: %d segments, %d flows, %d payload bytes\n",
		len(segs), engine.Flows(), bytes)
	fmt.Printf("engine:  %s over %d rules in %d groups\n",
		engine.Algorithm(), set.Len(), len(engine.GroupSizes()))
	fmt.Printf("result:  %d alerts in %s (%.3f Gbps)\n",
		total, elapsed.Round(time.Millisecond),
		float64(bytes)*8/float64(elapsed.Nanoseconds()))
	if n := engine.PendingBytes(); n > 0 {
		fmt.Printf("warning: %d bytes stuck in reassembly (packet loss?)\n", n)
	}

	type rc struct {
		id int32
		n  int
	}
	var rules []rc
	for id, n := range perRule {
		rules = append(rules, rc{id, n})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].n > rules[j].n })
	if len(rules) > *top {
		rules = rules[:*top]
	}
	fmt.Printf("\ntop rules:\n")
	for _, r := range rules {
		p := set.Pattern(r.id)
		fmt.Printf("  sid %5d  %6d alerts  %q\n", r.id+1, r.n, truncate(p.Data, 40))
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-ids:", err)
	os.Exit(1)
}
