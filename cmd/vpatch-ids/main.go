// Command vpatch-ids runs the full NIDS pipeline over a pcap capture:
// flow reassembly with lifecycle management, per-service rule groups,
// and multi-pattern matching with any of the library's engines.
//
// Usage:
//
//	vpatch-ids -rules web.rules -pcap capture.pcap
//	vpatch-ids -rules web.rules -pcap capture.pcap -algo dfc -top 10
//	vpatch-ids -db all-groups.vpdb -pcap capture.pcap
//	vpatch-ids -rules web.rules -pcap capture.pcap -shards 8 -max-flows 65536
//
// -db loads a precompiled rule-group database written by
// `vpatch-compile -ids` instead of compiling the rules at startup.
// Databases compiled with -rule-semantics carry the full rule tier:
// alerts then report completed rules (sid + msg) instead of raw
// literal hits, and -metrics includes the regex-verifier counters.
//
// -alerts-out writes every alert as one JSON object per line ("-" for
// stdout): rule sid/msg or pattern id, the flow 5-tuple, and the
// stream offset — the same shape vpatch-serve's /v1/alerts streams.
//
// -shards N hash-partitions flows across N worker goroutines (each with
// its own reassembler and scan sessions over the shared compiled
// groups); per-shard lifecycle stats are merged at exit. -max-flows,
// -flow-timeout, -flow-pending and -total-pending bound the pipeline's
// memory per shard — flows idle past the timeout (on the capture clock)
// or beyond the cap are evicted, over-budget out-of-order bytes are
// dropped, and the counts are reported.
//
// -verifier-flow-budget arms the match-flood defense: each flow gets a
// lifetime verifier budget in modeled cycles, and a flow that spends it
// (a crafted anchor flood) degrades to literal-only alerting instead of
// monopolizing the regex verifier. The degradation figures print as an
// "overload:" line.
//
// Captures can be produced with `vpatch-gen -pcap` or any tool writing
// classic little-endian libpcap Ethernet captures in the shape netsim
// emits (see internal/netsim).
//
// Truncated captures (a cut-short tcpdump, a capture still being
// written) are analyzed up to the damage: the readable prefix is
// processed normally, a warning goes to stderr, and the process exits
// with code 3 so scripts can tell "partial input" from "failed" (1)
// and "bad usage" (2). SIGINT/SIGTERM stop ingestion early, drain the
// pipeline (flushing all shards so buffered alerts surface), print the
// final stats, and exit with 128+signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/resil"
)

// alertRec is the JSONL alert shape shared with vpatch-serve's
// /v1/alerts stream (which adds a tenant field).
type alertRec struct {
	SID       int64  `json:"sid,omitempty"`
	Msg       string `json:"msg,omitempty"`
	Rule      int32  `json:"rule"`
	Pattern   int32  `json:"pattern"`
	Proto     string `json:"proto"`
	SrcIP     string `json:"src_ip"`
	SrcPort   uint16 `json:"src_port"`
	DstIP     string `json:"dst_ip"`
	DstPort   uint16 `json:"dst_port"`
	StreamOff int64  `json:"stream_off"`
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func main() {
	rulesPath := flag.String("rules", "", "Snort-style rules file")
	dbPath := flag.String("db", "", "precompiled rule-group .vpdb database (instead of -rules)")
	pcapPath := flag.String("pcap", "", "libpcap capture to analyze (required)")
	algoName := flag.String("algo", "vpatch", "matching engine: vpatch spatch dfc vectordfc ac wumanber ffbf")
	top := flag.Int("top", 5, "print the N most-alerting rules")
	shards := flag.Int("shards", 1, "worker shards (flows hash-partitioned across goroutines)")
	maxFlows := flag.Int("max-flows", 1<<20, "per-shard cap on tracked flows (0 = unlimited)")
	flowTimeout := flag.Duration("flow-timeout", 60*time.Second, "evict flows idle this long on the capture clock (0 = never)")
	flowPending := flag.Int("flow-pending", 256<<10, "per-flow out-of-order byte budget (0 = unlimited)")
	totalPending := flag.Int("total-pending", 64<<20, "per-shard out-of-order byte budget (0 = unlimited)")
	showMetrics := flag.Bool("metrics", false, "instrument scans and print the merged matcher+lifecycle counters (costs a few %)")
	alertsOut := flag.String("alerts-out", "", `write every alert as a JSON line to this file ("-" = stdout)`)
	ruleSem := flag.Bool("rule-semantics", false, "compile -rules with full rule semantics (offsets, nocase, pcre verifier)")
	verifierBudget := flag.Int64("verifier-flow-budget", 0, "per-flow verifier budget in modeled cycles; match-flood flows degrade to literal-only alerting past it (0 = unlimited)")
	flag.Parse()
	if (*rulesPath == "") == (*dbPath == "") || *pcapPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	limits := netsim.Limits{
		MaxFlows:          *maxFlows,
		IdleTimeoutMicros: uint64(flowTimeout.Microseconds()),
		FlowPendingBytes:  *flowPending,
		TotalPendingBytes: *totalPending,
	}

	pf, err := os.Open(*pcapPath)
	if err != nil {
		fatal(err)
	}
	segs, err := netsim.ReadPcap(pf)
	pf.Close()
	truncated := err != nil && len(segs) > 0
	if err != nil {
		if !truncated {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vpatch-ids: warning: truncated capture (%v); analyzing the %d readable segments\n",
			err, len(segs))
	}

	var alertW *bufio.Writer
	if *alertsOut != "" {
		out := os.Stdout
		if *alertsOut != "-" {
			f, err := os.Create(*alertsOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		alertW = bufio.NewWriter(out)
		defer alertW.Flush()
	}

	// The emit path must be safe for concurrent use: with -shards > 1
	// every worker goroutine reports through it. engine is assigned
	// before any segment is fed, so the rule lookup below is safe.
	var engine *ids.Engine
	var mu sync.Mutex
	perRule := map[int32]int{}
	perFlow := map[netsim.FlowKey]int{}
	total := 0
	emit := func(a ids.Alert) {
		mu.Lock()
		total++
		if a.RuleID >= 0 {
			perRule[a.RuleID]++
		} else {
			perRule[a.PatternID]++
		}
		perFlow[a.Flow]++
		if alertW != nil {
			rec := alertRec{
				Rule: a.RuleID, Pattern: a.PatternID, Proto: "tcp",
				SrcIP: ip4(a.Flow.SrcIP), SrcPort: a.Flow.SrcPort,
				DstIP: ip4(a.Flow.DstIP), DstPort: a.Flow.DstPort,
				StreamOff: a.StreamOffset,
			}
			if rset := engine.Rules(); rset != nil && a.RuleID >= 0 {
				r := &rset.Rules[a.RuleID]
				rec.SID, rec.Msg = r.SID, r.Msg
			}
			if b, err := json.Marshal(rec); err == nil {
				alertW.Write(b)
				alertW.WriteByte('\n')
			}
		}
		mu.Unlock()
	}
	if *dbPath != "" {
		start := time.Now()
		df, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		engine, err = ids.ReadDB(df, emit)
		df.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded rule-group database in %s\n",
			time.Since(start).Round(time.Microsecond))
	} else {
		rf, err := os.Open(*rulesPath)
		if err != nil {
			fatal(err)
		}
		alg, err := vpatch.ParseAlgorithm(*algoName)
		if err != nil {
			fatal(err)
		}
		opt := vpatch.Options{Algorithm: alg}
		if *ruleSem {
			rset, err := vpatch.ParseRuleSet(rf, vpatch.RuleParseOptions{})
			rf.Close()
			if err != nil {
				fatal(err)
			}
			engine, err = ids.NewRuleEngine(rset, opt, emit)
			if err != nil {
				fatal(err)
			}
		} else {
			set, err := patterns.ParseRules(rf, patterns.ParseOptions{})
			rf.Close()
			if err != nil {
				fatal(err)
			}
			engine, err = ids.NewEngine(set, opt, emit)
			if err != nil {
				fatal(err)
			}
		}
	}
	set := engine.Set()

	// The match-flood defense is opt-in for offline analysis: armed, it
	// also instruments counters so the degradation figures are real.
	var vbudget resil.VerifierBudget
	if *verifierBudget > 0 {
		vbudget = resil.VerifierBudget{PerFlow: *verifierBudget, Price: resil.DefaultPrice()}
	}

	bytes := 0
	for _, s := range segs {
		bytes += len(s.Payload)
	}
	// SIGINT/SIGTERM stop ingestion at the next segment boundary; the
	// pipeline then drains normally so every buffered alert surfaces and
	// the final stats are real.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var gotSig os.Signal
	fed := 0
	var stats netsim.Stats
	var counters vpatch.Counters
	start := time.Now()
	if *shards > 1 {
		d := engine.NewDispatcher(*shards, limits, emit)
		// ReadPcap gives every segment its own payload buffer that stays
		// valid for the run, so the dispatcher may take them by reference
		// instead of defensively copying into arena chunks.
		d.SetZeroCopy(true)
		if vbudget.Armed() {
			d.SetVerifierBudget(vbudget)
		}
		var perShard []*vpatch.Counters
		if *showMetrics || vbudget.Armed() {
			perShard = d.InstrumentCounters()
		}
		// Batched handoff: slab-sized chunks amortize the per-segment
		// channel operations, checking for signals at chunk boundaries.
		for lo := 0; lo < len(segs) && gotSig == nil; lo += ids.DefaultDispatchBatch {
			select {
			case gotSig = <-sigc:
				continue
			default:
			}
			hi := lo + ids.DefaultDispatchBatch
			if hi > len(segs) {
				hi = len(segs)
			}
			d.HandleBatch(segs[lo:hi])
			fed += hi - lo
		}
		stats = d.Close() // drains workers, flushes every shard, merges stats
		for _, c := range perShard {
			counters.Add(c)
		}
	} else {
		engine.SetLimits(limits)
		if vbudget.Armed() {
			engine.SetVerifierBudget(vbudget)
		}
		if *showMetrics || vbudget.Armed() {
			engine.SetCounters(&counters)
		}
		for _, s := range segs {
			select {
			case gotSig = <-sigc:
			default:
			}
			if gotSig != nil {
				break
			}
			engine.HandleSegment(s)
			fed++
		}
		engine.Flush() // drain partial per-group batches
		stats = engine.Stats()
	}
	signal.Stop(sigc)
	elapsed := time.Since(start)
	if gotSig != nil {
		fmt.Fprintf(os.Stderr, "vpatch-ids: %v after %d/%d segments; draining and reporting\n",
			gotSig, fed, len(segs))
	}

	fmt.Printf("capture: %d segments, %d payload bytes\n", len(segs), bytes)
	fmt.Printf("engine:  %s over %d rules in %d groups, %d shard(s)\n",
		engine.Algorithm(), set.Len(), len(engine.GroupSizes()), *shards)
	fmt.Printf("flows:   %d peak, %d closed, %d evicted, %d bytes dropped\n",
		stats.PeakFlows, stats.FlowsClosed, stats.FlowsEvicted, stats.BytesDropped)
	if vbudget.Armed() {
		fmt.Printf("overload: %d flows degraded to literal-only, %d budget denials, %d panics recovered, %d flows quarantined\n",
			counters.DegradedFlows, counters.VerifierBudgetExhausted,
			counters.PanicsRecovered, counters.FlowsQuarantined)
	}
	fmt.Printf("result:  %d alerts in %s (%.3f Gbps)\n",
		total, elapsed.Round(time.Millisecond),
		float64(bytes)*8/float64(elapsed.Nanoseconds()))
	if stats.PendingBytes > 0 {
		fmt.Printf("warning: %d bytes stuck in reassembly (packet loss?)\n", stats.PendingBytes)
	}
	if *showMetrics {
		// One merged line: matcher event counters plus the lifecycle
		// figures folded in (evicted/dropped/peakflows).
		stats.MergeInto(&counters)
		fmt.Printf("metrics: %s\n", &counters)
	}

	type rc struct {
		id int32
		n  int
	}
	var rules []rc
	for id, n := range perRule {
		rules = append(rules, rc{id, n})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].n > rules[j].n })
	if len(rules) > *top {
		rules = rules[:*top]
	}
	fmt.Printf("\ntop rules:\n")
	rset := engine.Rules()
	for _, r := range rules {
		if rset != nil {
			rr := &rset.Rules[r.id]
			msg := rr.Msg
			if msg == "" {
				msg = fmt.Sprintf("rule %d", rr.ID)
			}
			fmt.Printf("  sid %5d  %6d alerts  %s\n", rr.SID, r.n, msg)
			continue
		}
		p := set.Pattern(r.id)
		fmt.Printf("  sid %5d  %6d alerts  %q\n", r.id+1, r.n, truncate(p.Data, 40))
	}

	if gotSig != nil {
		if sig, ok := gotSig.(syscall.Signal); ok {
			os.Exit(128 + int(sig))
		}
		os.Exit(130)
	}
	if truncated {
		os.Exit(3) // results above cover only the readable prefix
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-ids:", err)
	os.Exit(1)
}
