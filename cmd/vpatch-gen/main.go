// Command vpatch-gen writes the synthetic workloads used throughout the
// evaluation to disk, so they can be inspected or fed to vpatch-match and
// external tools.
//
// Usage:
//
//	vpatch-gen -rules s1 -out s1.rules          # Snort-style rule file
//	vpatch-gen -rules s2 -web -out web.rules    # web-applicable subset
//	vpatch-gen -traffic iscx2 -size 64 -out day2.bin
//	vpatch-gen -traffic random -size 16 -out rnd.bin
//
// Rule sets reproduce the published statistics of the paper's sets
// (S1 ~ Snort v2.9.7, S2 ~ ET-open 2.9.0); traffic profiles reproduce the
// filter-hit behaviour of the paper's traces. Everything is seeded.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func main() {
	rules := flag.String("rules", "", "rule set to generate: s1 or s2")
	web := flag.Bool("web", false, "restrict the rule set to the web-applicable subset")
	trafficName := flag.String("traffic", "", "trace to generate: iscx2, iscx6, darpa, random")
	sizeMB := flag.Int("size", 16, "trace size in MB")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (required)")
	withAttacks := flag.String("attacks-from", "", "rule set (s1|s2) whose patterns are embedded as attacks in the trace")
	pcap := flag.Bool("pcap", false, "write the trace as a libpcap capture (multiple interleaved flows) instead of a raw stream")
	flows := flag.Int("flows", 8, "number of flows for -pcap output")
	flag.Parse()

	if *out == "" || (*rules == "") == (*trafficName == "") {
		fmt.Fprintln(os.Stderr, "usage: vpatch-gen (-rules s1|s2 [-web] | -traffic iscx2|iscx6|darpa|random [-size MB]) -out FILE")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *rules != "" {
		set, err := makeSet(*rules, *seed)
		if err != nil {
			fatal(err)
		}
		if *web {
			set = set.WebSubset()
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# synthetic rule set %s (seed %d)\n# %s\n", *rules, *seed,
			patterns.DescribeSet(*rules, set))
		for i := range set.Patterns() {
			fmt.Fprintln(w, patterns.EncodeRule(&set.Patterns()[i], i+1))
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d rules to %s\n", set.Len(), *out)
		return
	}

	var attackSet *patterns.Set
	if *withAttacks != "" {
		s, err := makeSet(*withAttacks, *seed)
		if err != nil {
			fatal(err)
		}
		attackSet = s.WebSubset()
	}
	gen := func(size int, seed int64) []byte {
		switch strings.ToLower(*trafficName) {
		case "iscx2":
			return traffic.Synthesize(traffic.ISCXDay2, size, seed, attackSet)
		case "iscx6":
			return traffic.Synthesize(traffic.ISCXDay6, size, seed, attackSet)
		case "darpa":
			return traffic.Synthesize(traffic.DARPA2000, size, seed, attackSet)
		case "random":
			return traffic.Random(size, seed)
		}
		fatal(fmt.Errorf("unknown traffic profile %q", *trafficName))
		return nil
	}

	if *pcap {
		if *flows < 1 {
			fatal(fmt.Errorf("-flows must be >= 1"))
		}
		streams := make(map[netsim.FlowKey][]byte, *flows)
		per := *sizeMB << 20 / *flows
		for i := 0; i < *flows; i++ {
			key := netsim.FlowKey{
				SrcIP: 0x0A000001 + uint32(i), DstIP: 0xC0A80001,
				SrcPort: uint16(40000 + i), DstPort: 80,
			}
			streams[key] = gen(per, *seed+int64(i))
		}
		// FIN-terminate every flow, as real captures do, so the IDS
		// pipeline's connection teardown runs on generated captures.
		segs := netsim.Packetize(streams, netsim.PacketizeOptions{Seed: *seed, Jitter: 3, FIN: true})
		if err := netsim.WritePcap(f, segs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d segments over %d flows (%d MB %s) to %s\n",
			len(segs), *flows, *sizeMB, *trafficName, *out)
		return
	}

	data := gen(*sizeMB<<20, *seed)
	if _, err := f.Write(data); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d MB of %s traffic to %s\n", *sizeMB, *trafficName, *out)
}

func makeSet(name string, seed int64) (*patterns.Set, error) {
	switch strings.ToLower(name) {
	case "s1":
		return patterns.GenerateS1(seed), nil
	case "s2":
		return patterns.GenerateS2(seed), nil
	}
	return nil, fmt.Errorf("unknown rule set %q (want s1 or s2)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpatch-gen:", err)
	os.Exit(1)
}
