package vpatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func TestFindAllParallelEqualsSequential(t *testing.T) {
	set := patterns.GenerateS1(3).Subset(100, 7)
	input := traffic.Synthesize(traffic.ISCXDay2, 64<<10, 11, set)
	want, err := FindAll(set, input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		got, err := FindAllParallel(set, input, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("workers=%d: %d matches vs sequential %d", workers, len(got), len(want))
		}
	}
}

func TestParallelBoundarySpanningMatches(t *testing.T) {
	// Place a long pattern across every shard boundary for 4 workers.
	set := PatternSetFromStrings("BOUNDARY-SPANNING-PATTERN")
	input := make([]byte, 4096)
	for i := range input {
		input[i] = '.'
	}
	shard := (len(input) + 3) / 4
	for w := 1; w < 4; w++ {
		copy(input[w*shard-10:], "BOUNDARY-SPANNING-PATTERN")
	}
	want, _ := FindAll(set, input, Options{})
	if len(want) != 3 {
		t.Fatalf("setup: %d matches", len(want))
	}
	got, err := FindAllParallel(set, input, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
		t.Fatalf("boundary matches lost or duplicated: %d vs %d", len(got), len(want))
	}
}

func TestParallelEdgeCases(t *testing.T) {
	set := PatternSetFromStrings("ab")
	if _, err := FindAllParallel(nil, []byte("ab"), Options{}, 2); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := FindAllParallel(set, []byte("ab"), Options{VectorWidth: 5}, 2); err == nil {
		t.Fatal("bad options accepted")
	}
	got, err := FindAllParallel(set, nil, Options{}, 4)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %v", got, err)
	}
	// More workers than bytes.
	got, err = FindAllParallel(set, []byte("abab"), Options{}, 64)
	if err != nil || len(got) != 2 {
		t.Fatalf("tiny input: %v %v", got, err)
	}
	// workers <= 0 selects a default.
	if _, err := FindAllParallel(set, []byte("ab"), Options{}, -1); err != nil {
		t.Fatal(err)
	}
}

func TestCountParallel(t *testing.T) {
	set := patterns.GenerateS1(9).Subset(80, 1)
	input := traffic.Synthesize(traffic.ISCXDay6, 32<<10, 5, set)
	m, _ := New(set, Options{})
	want := Count(m, input)
	for _, workers := range []int{1, 4, 9} {
		got, err := CountParallel(set, input, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: count %d vs %d", workers, got, want)
		}
	}
	if _, err := CountParallel(nil, nil, Options{}, 2); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := CountParallel(set, input, Options{Algorithm: Algorithm(77)}, 2); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

// Property: random inputs, random worker counts, random algorithms —
// parallel always equals sequential.
func TestParallelProperty(t *testing.T) {
	set := PatternSetFromStrings("aa", "abc", "cab", "aaaa")
	f := func(seed int64, workersRaw uint8, algRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		input := make([]byte, 200+rng.Intn(2000))
		for i := range input {
			input[i] = byte('a' + rng.Intn(3))
		}
		alg := []Algorithm{AlgoVPatch, AlgoSPatch, AlgoDFC, AlgoAhoCorasick}[algRaw%4]
		workers := 1 + int(workersRaw%8)
		want, err := FindAll(set, input, Options{Algorithm: alg})
		if err != nil {
			return false
		}
		got, err := FindAllParallel(set, input, Options{Algorithm: alg}, workers)
		if err != nil {
			return false
		}
		return patterns.EqualMatches(got, append([]Match(nil), want...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindAllParallel(b *testing.B) {
	f := benchFixtures()
	// A larger buffer than the shared fixtures, so the scan dominates
	// the one-time compilation CountParallel performs.
	data := traffic.Synthesize(traffic.ISCXDay2, 16<<20, 1, f.s1web)
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers"+itoa(workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := CountParallel(f.s1web, data, Options{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
