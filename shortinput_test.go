package vpatch

import (
	"fmt"
	"testing"

	"vpatch/internal/patterns"
)

// Sub-window inputs: every algorithm must handle buffers shorter than
// the 4-byte filter window (and shorter than the 2-byte direct-filter
// window) for every pattern-length mix — the boundary the fused
// kernels' mainEnd = n-3 arithmetic and scalarFilterPos guards protect.
// Each case is checked against the naive reference matcher.
// (allAlgorithms is shared with vpatch_test.go.)

func TestSubWindowInputsAllAlgorithms(t *testing.T) {
	sets := map[string]*PatternSet{
		"len1":  PatternSetFromStrings("a"),
		"len2":  PatternSetFromStrings("ab", "aa"),
		"len3":  PatternSetFromStrings("abc"),
		"len4":  PatternSetFromStrings("abcd"),
		"mixed": PatternSetFromStrings("a", "ab", "abc", "abcd", "bcdef"),
	}
	nocase := NewPatternSet()
	nocase.Add([]byte("a"), true, ProtoGeneric)
	nocase.Add([]byte("ab"), true, ProtoGeneric)
	nocase.Add([]byte("abcd"), true, ProtoGeneric)
	sets["nocase"] = nocase

	inputs := []string{
		"", "a", "b", "ab", "ba", "aa", "abc", "abcd", "abcde",
		"aab", "aba", "bab", "A", "AB", "ABCD", "aB", "Abcd",
		"xyz", "xa", "ax", "aaa", "abab",
	}
	for setName, set := range sets {
		for _, alg := range allAlgorithms {
			eng, err := Compile(set, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", setName, alg, err)
			}
			// Acceleration on and off: the boundary arithmetic differs.
			engPlain, err := Compile(set, Options{Algorithm: alg, NoAccel: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range inputs {
				want := patterns.FindAllNaive(set, []byte(in))
				for variant, e := range map[string]*Engine{"accel": eng, "plain": engPlain} {
					got := e.FindAll([]byte(in))
					if !patterns.EqualMatches(got, want) {
						t.Errorf("%s/%s/%s on %q: got %v, want %v",
							setName, alg, variant, in, got, want)
					}
				}
			}
		}
	}
}

// TestSubWindowBatch drives the same boundary inputs through ScanBatch
// in one call per algorithm (tiny buffers exercise the batch lane
// refill and fallback paths at the same boundaries).
func TestSubWindowBatch(t *testing.T) {
	set := PatternSetFromStrings("a", "ab", "abc", "abcd")
	bufs := [][]byte{{}, []byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"), []byte("xa"), []byte("abcde")}
	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		eng.NewSession().ScanBatch(bufs, nil, func(buf int, m Match) {
			got = append(got, fmt.Sprintf("%d:%d@%d", buf, m.PatternID, m.Pos))
		})
		var want []string
		for bi, b := range bufs {
			for _, m := range patterns.FindAllNaive(set, b) {
				want = append(want, fmt.Sprintf("%d:%d@%d", bi, m.PatternID, m.Pos))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batch %d matches, want %d", alg, len(got), len(want))
		}
		seen := map[string]int{}
		for _, g := range got {
			seen[g]++
		}
		for _, w := range want {
			if seen[w] == 0 {
				t.Fatalf("%s: missing match %s", alg, w)
			}
			seen[w]--
		}
	}
}
