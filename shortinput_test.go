package vpatch

import (
	"fmt"
	"testing"

	"vpatch/internal/patterns"
)

// Sub-window inputs: every algorithm must handle buffers shorter than
// the 4-byte filter window (and shorter than the 2-byte direct-filter
// window) for every pattern-length mix — the boundary the fused
// kernels' mainEnd = n-3 arithmetic and scalarFilterPos guards protect.
// Each case is checked against the naive reference matcher.
// (allAlgorithms is shared with vpatch_test.go.)

func TestSubWindowInputsAllAlgorithms(t *testing.T) {
	sets := map[string]*PatternSet{
		"len1":  PatternSetFromStrings("a"),
		"len2":  PatternSetFromStrings("ab", "aa"),
		"len3":  PatternSetFromStrings("abc"),
		"len4":  PatternSetFromStrings("abcd"),
		"mixed": PatternSetFromStrings("a", "ab", "abc", "abcd", "bcdef"),
	}
	nocase := NewPatternSet()
	nocase.Add([]byte("a"), true, ProtoGeneric)
	nocase.Add([]byte("ab"), true, ProtoGeneric)
	nocase.Add([]byte("abcd"), true, ProtoGeneric)
	sets["nocase"] = nocase

	inputs := []string{
		"", "a", "b", "ab", "ba", "aa", "abc", "abcd", "abcde",
		"aab", "aba", "bab", "A", "AB", "ABCD", "aB", "Abcd",
		"xyz", "xa", "ax", "aaa", "abab",
	}
	for setName, set := range sets {
		for _, alg := range allAlgorithms {
			eng, err := Compile(set, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", setName, alg, err)
			}
			// Acceleration on and off: the boundary arithmetic differs.
			engPlain, err := Compile(set, Options{Algorithm: alg, NoAccel: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range inputs {
				want := patterns.FindAllNaive(set, []byte(in))
				for variant, e := range map[string]*Engine{"accel": eng, "plain": engPlain} {
					got := e.FindAll([]byte(in))
					if !patterns.EqualMatches(got, want) {
						t.Errorf("%s/%s/%s on %q: got %v, want %v",
							setName, alg, variant, in, got, want)
					}
				}
			}
		}
	}
}

// TestSubWindowInputsPerKernel repeats the sub-window sweep through the
// public ForceKernel option for the filtering engines: every available
// extract kernel must agree with the naive reference on buffers shorter
// than (and bracketing) its own block and lookahead geometry.
func TestSubWindowInputsPerKernel(t *testing.T) {
	set := PatternSetFromStrings("a", "ab", "abc", "abcd", "bcdef")
	inputs := []string{
		"", "a", "b", "ab", "ba", "abc", "abcd", "abcde",
		"xyzzyxa", "abababababab",
	}
	// Lengths around the SSSE3 (32/33) and AVX2 (64/72) geometry.
	for _, n := range []int{31, 32, 33, 63, 64, 65, 71, 72, 73, 100} {
		b := make([]byte, n)
		for i := range b {
			b[i] = "abcdex"[i%6]
		}
		inputs = append(inputs, string(b))
	}
	for _, alg := range []Algorithm{AlgoVPatch, AlgoSPatch} {
		for _, k := range AvailableKernels() {
			eng, err := Compile(set, Options{Algorithm: alg, ForceKernel: k})
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, k, err)
			}
			if inf := eng.Info(); inf.Kernel != k.String() {
				t.Fatalf("%s forced %s but Info reports %q", alg, k, inf.Kernel)
			}
			for _, in := range inputs {
				want := patterns.FindAllNaive(set, []byte(in))
				got := eng.FindAll([]byte(in))
				if !patterns.EqualMatches(got, want) {
					t.Errorf("%s/%s on %q: got %v, want %v", alg, k, in, got, want)
				}
			}
		}
	}
	// Forcing a kernel the host lacks must fail at Compile, not degrade
	// silently.
	for _, k := range []Kernel{KernelSSSE3, KernelAVX2} {
		if KernelAvailable(k) {
			continue
		}
		if _, err := Compile(set, Options{ForceKernel: k}); err == nil {
			t.Errorf("Compile accepted unavailable kernel %s", k)
		}
	}
}

// TestSubWindowBatch drives the same boundary inputs through ScanBatch
// in one call per algorithm (tiny buffers exercise the batch lane
// refill and fallback paths at the same boundaries).
func TestSubWindowBatch(t *testing.T) {
	set := PatternSetFromStrings("a", "ab", "abc", "abcd")
	bufs := [][]byte{{}, []byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"), []byte("xa"), []byte("abcde")}
	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		eng.NewSession().ScanBatch(bufs, nil, func(buf int, m Match) {
			got = append(got, fmt.Sprintf("%d:%d@%d", buf, m.PatternID, m.Pos))
		})
		var want []string
		for bi, b := range bufs {
			for _, m := range patterns.FindAllNaive(set, b) {
				want = append(want, fmt.Sprintf("%d:%d@%d", bi, m.PatternID, m.Pos))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: batch %d matches, want %d", alg, len(got), len(want))
		}
		seen := map[string]int{}
		for _, g := range got {
			seen[g]++
		}
		for _, w := range want {
			if seen[w] == 0 {
				t.Fatalf("%s: missing match %s", alg, w)
			}
			seen[w]--
		}
	}
}
