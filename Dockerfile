# vpatch-serve: the resident multi-tenant scanning daemon in a minimal
# two-stage image. The final stage is distroless-style: a static binary
# on an empty base, no shell, non-root. The healthcheck reuses the
# daemon binary in probe mode (-check) since the image carries no curl.
#
#   docker build -t vpatch-serve .
#   docker run -p 8080:8080 -p 4789:4789 \
#     -v $PWD/groups.vpdb:/rules/groups.vpdb:ro \
#     vpatch-serve -db /rules/groups.vpdb -ingest :4789

FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
ENV CGO_ENABLED=0
RUN go build -trimpath -ldflags='-s -w' -o /out/vpatch-serve ./cmd/vpatch-serve && \
    go build -trimpath -ldflags='-s -w' -o /out/vpatch-compile ./cmd/vpatch-compile

FROM scratch
COPY --from=build /out/vpatch-serve /vpatch-serve
# The offline rule compiler rides along so rule updates can be compiled
# with `docker run --entrypoint /vpatch-compile`.
COPY --from=build /out/vpatch-compile /vpatch-compile
USER 65532:65532
EXPOSE 8080 4789
HEALTHCHECK --interval=15s --timeout=5s --start-period=10s --retries=3 \
  CMD ["/vpatch-serve", "-check", "http://127.0.0.1:8080/healthz"]
ENTRYPOINT ["/vpatch-serve"]
CMD ["-listen", ":8080"]
