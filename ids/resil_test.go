package ids

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vpatch"
	"vpatch/internal/arena"
	"vpatch/internal/netsim"
	"vpatch/internal/resil"
)

// floodPayload packs n anchor sites ("token=" + an 8-byte rejecting
// tail) — every site forces a verifier run that can never alert, the
// match-flood shape.
func floodPayload(n int) []byte {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "token=zzzzzzzz pad%04d ", i)
	}
	return []byte(b.String())
}

// TestVerifierBudgetDegradesFlow: a flow spending verifier cycles past
// its budget is demoted to literal-only alerting — later anchors cost
// literal alerts, not DFA work — and the demotion is counted.
func TestVerifierBudgetDegradesFlow(t *testing.T) {
	rset := parseRules(t, 0,
		`alert tcp any any -> any 80 (msg:"tok"; content:"token="; pcre:"/[0-9a-f]{8}/"; sid:1;)`)
	var alerts []Alert
	e, err := NewRuleEngine(rset, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	price := resil.DefaultPrice()
	// Budget covers only a handful of runs.
	e.SetVerifierBudget(resil.VerifierBudget{PerFlow: 3 * price.PerRun, Price: price})
	var c vpatch.Counters
	e.SetCounters(&c)

	k := key(1, 80)
	seq := uint32(0)
	feed := func(data []byte) {
		e.HandleSegment(netsim.Segment{Flow: k, Seq: seq, Payload: data})
		seq += uint32(len(data))
		e.Flush()
	}

	// Phase 1: flood anchors until the budget trips.
	feed(floodPayload(50))
	if c.DegradedFlows != 1 || c.VerifierBudgetExhausted != 1 {
		t.Fatalf("degraded=%d exhausted=%d after flood; want 1/1 (counters: %v)",
			c.DegradedFlows, c.VerifierBudgetExhausted, c.String())
	}
	runsAfterFlood := c.VerifierRuns

	// Phase 2: the degraded flow's anchors surface as literal alerts
	// and buy zero further verifier runs.
	pre := len(alerts)
	feed([]byte("x token=deadbeef y token=deadbeef z"))
	if c.VerifierRuns != runsAfterFlood {
		t.Fatalf("degraded flow still ran the verifier: %d -> %d runs",
			runsAfterFlood, c.VerifierRuns)
	}
	lit := 0
	for _, a := range alerts[pre:] {
		if a.RuleID != -1 {
			t.Fatalf("degraded flow emitted a rule alert: %+v", a)
		}
		if a.PatternID >= 0 {
			lit++
		}
	}
	if lit != 2 {
		t.Fatalf("degraded flow emitted %d literal alerts; want 2", lit)
	}

	// A fresh flow on the same shard gets its own budget: full rule
	// semantics until it, too, overspends.
	pre = len(alerts)
	e.HandleSegment(netsim.Segment{Flow: key(2, 80), Payload: []byte("token=deadbeef")})
	e.Flush()
	found := false
	for _, a := range alerts[pre:] {
		if a.RuleID == 0 && a.Flow == key(2, 80) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh flow lost rule semantics: %+v", alerts[pre:])
	}
}

// TestVerifierBudgetTenantPool: the shared pool degrades flows when the
// tenant-wide spend runs dry, even though each flow is under its
// per-flow cap.
func TestVerifierBudgetTenantPool(t *testing.T) {
	rset := parseRules(t, 0,
		`alert tcp any any -> any 80 (msg:"tok"; content:"token="; pcre:"/[0-9a-f]{8}/"; sid:1;)`)
	e, err := NewRuleEngine(rset, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	price := resil.DefaultPrice()
	// A pool worth a few runs total, refilling too slowly to matter.
	pool := resil.NewPool(1, 4*price.PerRun)
	e.SetVerifierBudget(resil.VerifierBudget{Pool: pool, Price: price})
	var c vpatch.Counters
	e.SetCounters(&c)

	for f := 0; f < 8; f++ {
		e.HandleSegment(netsim.Segment{Flow: key(f, 80), Payload: floodPayload(20)})
		e.Flush()
	}
	if c.DegradedFlows == 0 {
		t.Fatalf("tenant pool never degraded a flow: %s", c.String())
	}
	if pool.Denied() == 0 {
		t.Fatal("pool denied nothing")
	}
}

// TestVerifierBudgetCleanEquivalence: a generous budget must not
// change any alert on ordinary traffic — same rules, same segments,
// identical alert sets with and without the budget armed.
func TestVerifierBudgetCleanEquivalence(t *testing.T) {
	rset := parseRules(t, 0,
		`alert tcp any any -> any 80 (msg:"probe"; content:"GET /"; depth:16; content:"admin"; nocase; distance:0; within:64; sid:1;)`,
		`alert tcp any any -> any 80 (msg:"tok"; content:"token="; pcre:"/[0-9a-f]{8}/"; sid:2;)`)
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("GET /aDmIn HTTP/1.1 token=deadbeef more"),
		key(2, 80): []byte("GET /index.html token=nothexhere"),
		key(3, 80): []byte("nothing interesting at all here"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 16, Jitter: 4, Seed: 3, FIN: true})

	run := func(b resil.VerifierBudget) []Alert {
		var alerts []Alert
		e, err := NewRuleEngine(rset, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
		if err != nil {
			t.Fatal(err)
		}
		e.SetVerifierBudget(b)
		for _, s := range segs {
			e.HandleSegment(s)
		}
		e.Flush()
		sortAlerts(alerts)
		return alerts
	}
	plain := run(resil.VerifierBudget{})
	budgeted := run(resil.VerifierBudget{
		PerFlow: resil.DefaultFlowBudget,
		Pool:    resil.NewPool(1<<30, 1<<30),
		Price:   resil.DefaultPrice(),
	})
	if len(plain) == 0 {
		t.Fatal("no alerts at all — test traffic broken")
	}
	if fmt.Sprint(plain) != fmt.Sprint(budgeted) {
		t.Fatalf("budgeted alerts differ:\nplain:    %v\nbudgeted: %v", plain, budgeted)
	}
}

// TestDispatcherShutdownRaces drives Handle, HandleBatch and FlushAll
// concurrently with Close: no panic, no deadlock, no payload leak —
// the shutdown race every ingest connection of a resident service runs
// against Drain. Race-pinned in CI.
func TestDispatcherShutdownRaces(t *testing.T) {
	set := mixedRuleSet()
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		a := arena.New(arena.Config{})
		d := e.NewDispatcher(2, netsim.Limits{MaxFlows: 128}, func(Alert) {})
		d.SetArena(a)

		payload := []byte("steady state traffic with generic-bad-001 inside")
		rent := func(f int, seq uint32) netsim.Segment {
			b := a.Rent(len(payload))
			data := b.Data()[:len(payload)]
			copy(data, payload)
			seg := netsim.Segment{Flow: key(f, 9999), Seq: seq, Payload: data}
			seg.SetOwned(b)
			return seg
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(4)
		go func() { // batched sender
			defer wg.Done()
			<-start
			var seq uint32
			for i := 0; i < 200; i++ {
				batch := make([]netsim.Segment, 0, 8)
				for f := 0; f < 8; f++ {
					batch = append(batch, rent(f, seq))
				}
				seq += uint32(len(payload))
				d.HandleBatch(batch)
			}
		}()
		go func() { // per-segment sender
			defer wg.Done()
			<-start
			var seq uint32
			for i := 0; i < 400; i++ {
				d.Handle(rent(8+i%4, seq))
				if i%4 == 3 {
					seq += uint32(len(payload))
				}
			}
		}()
		go func() { // flusher
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				d.FlushAll()
			}
		}()
		go func() { // closer, racing everyone
			defer wg.Done()
			<-start
			d.Close()
		}()
		close(start)
		wg.Wait()
		d.Close() // idempotent
		if st := a.Stats(); st.InUse != 0 {
			t.Fatalf("round %d: arena leak after racing shutdown: %d bytes in use",
				round, st.InUse)
		}
	}
}

// TestDispatcherHandleAfterClose: both entry points drop cleanly after
// Close, releasing owned payloads.
func TestDispatcherHandleAfterClose(t *testing.T) {
	e, err := NewEngine(mixedRuleSet(), vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	a := arena.New(arena.Config{})
	d := e.NewDispatcher(2, netsim.Limits{}, func(Alert) {})
	d.SetArena(a)
	d.Close()

	b := a.Rent(32)
	seg := netsim.Segment{Flow: key(1, 80), Payload: b.Data()[:32]}
	seg.SetOwned(b)
	d.Handle(seg)

	b2 := a.Rent(32)
	seg2 := netsim.Segment{Flow: key(2, 80), Payload: b2.Data()[:32]}
	seg2.SetOwned(b2)
	d.HandleBatch([]netsim.Segment{seg2})

	d.FlushAll() // no-op, must not hang
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("post-Close ingest leaked: %d bytes in use", st.InUse)
	}
}
