package ids

// Tests for the resident-service surfaces: concurrent one-shot
// ScanBuffer, the dispatcher's race-safe observer, and FlushAll.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
)

func TestScanBufferRoutesAndMapsIDs(t *testing.T) {
	set := mixedRuleSet()
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("GET / http-attack-xyz and generic-bad-001 plus dns-poison-abc")

	type hit struct {
		id  int32
		pos int64
	}
	scan := func(port uint16) []hit {
		var hits []hit
		n := e.ScanBuffer(port, buf, nil, func(id int32, pos int64) {
			hits = append(hits, hit{id, pos})
		})
		if n != len(hits) {
			t.Fatalf("ScanBuffer returned %d, emitted %d", n, len(hits))
		}
		return hits
	}

	// Port 80: HTTP group = HTTP rules + generic rules. The DNS pattern
	// in the buffer must not match.
	got := map[int32]bool{}
	for _, h := range scan(80) {
		got[h.id] = true
		p := set.Pattern(h.id)
		if string(buf[h.pos:h.pos+int64(p.Len())]) != string(p.Data) {
			t.Fatalf("pattern %d reported at %d does not match buffer", h.id, h.pos)
		}
	}
	if !got[0] || !got[2] || got[1] {
		t.Fatalf("HTTP-port scan hit rules %v, want {0,2} without 1", got)
	}

	// Unclassified port: generic group only.
	got = map[int32]bool{}
	for _, h := range scan(12345) {
		got[h.id] = true
	}
	if len(got) != 1 || !got[2] {
		t.Fatalf("generic scan hit %v, want only generic rule 2", got)
	}
}

// TestScanBufferConcurrent: ScanBuffer must be callable from many
// goroutines against one engine (run under -race).
func TestScanBufferConcurrent(t *testing.T) {
	e, err := NewEngine(mixedRuleSet(), vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("xx http-attack-xyz yy generic-bad-001 zz")
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c vpatch.Counters
			for i := 0; i < 200; i++ {
				total.Add(int64(e.ScanBuffer(80, buf, &c, nil)))
			}
			if c.Matches != 400 {
				t.Errorf("per-goroutine counters saw %d matches, want 400", c.Matches)
			}
		}()
	}
	wg.Wait()
	if total.Load() != 8*200*2 {
		t.Fatalf("total matches %d, want %d", total.Load(), 8*200*2)
	}
}

// TestDispatcherObserver: counters and flow stats published through the
// observer must be scrapeable during ingestion (race-free) and agree
// with the final merged stats after Close.
func TestDispatcherObserver(t *testing.T) {
	set := mixedRuleSet()
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	streams := map[netsim.FlowKey][]byte{}
	for i := 0; i < 40; i++ {
		streams[key(i, 80)] = []byte(fmt.Sprintf("flow %d has http-attack-xyz inside padding padding", i))
	}
	segs := netsim.Packetize(streams, netsim.PacketizeOptions{MTU: 24, Seed: 3, FIN: true})

	var alerts atomic.Int64
	d := e.NewDispatcher(3, netsim.Limits{}, func(Alert) { alerts.Add(1) })
	obs := d.Observe()
	if d.Observe() != obs {
		t.Fatal("Observe must be idempotent")
	}

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		var prev uint64
		for {
			c := obs.Counters()
			if c.BytesScanned < prev {
				t.Errorf("observed BytesScanned went backwards: %d after %d", c.BytesScanned, prev)
			}
			prev = c.BytesScanned
			obs.FlowStats()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for _, s := range segs {
		d.Handle(s)
	}
	st := d.Close()
	close(stop)
	scrapes.Wait()

	if alerts.Load() != 40 {
		t.Fatalf("alerts = %d, want 40", alerts.Load())
	}
	c := obs.Counters()
	if c.Matches == 0 || c.BytesScanned == 0 {
		t.Fatalf("observer saw no scan activity: %+v", c)
	}
	fs := obs.FlowStats()
	if fs.FlowsClosed != st.FlowsClosed {
		t.Fatalf("observer FlowsClosed=%d, Close reported %d", fs.FlowsClosed, st.FlowsClosed)
	}
	// Close is idempotent from any goroutine.
	if st2 := d.Close(); st2.FlowsClosed != st.FlowsClosed {
		t.Fatalf("second Close reported different stats: %+v vs %+v", st2, st)
	}
}

// TestDispatcherFlushAll: alerts held back by batch watermarks must
// surface after FlushAll, without closing the dispatcher.
func TestDispatcherFlushAll(t *testing.T) {
	set := mixedRuleSet()
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	var alerts atomic.Int64
	d := e.NewDispatcher(2, netsim.Limits{}, func(Alert) { alerts.Add(1) })

	// One small in-order segment per flow: far below the default
	// watermarks, so nothing flushes on its own. No FIN, flows stay
	// open.
	for i := 0; i < 6; i++ {
		d.Handle(netsim.Segment{
			Flow:    key(i, 80),
			Payload: []byte("hit http-attack-xyz here"),
		})
	}
	d.FlushAll()
	if alerts.Load() != 6 {
		t.Fatalf("after FlushAll: %d alerts, want 6", alerts.Load())
	}
	// Ingest continues after a flush.
	d.Handle(netsim.Segment{Flow: key(99, 80), Payload: []byte("http-attack-xyz")})
	d.FlushAll()
	if alerts.Load() != 7 {
		t.Fatalf("after second FlushAll: %d alerts, want 7", alerts.Load())
	}
	d.Close()
	if alerts.Load() != 7 {
		t.Fatalf("Close duplicated alerts: %d", alerts.Load())
	}
	d.FlushAll() // no-op after Close, must not hang or panic
}
