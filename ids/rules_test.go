package ids

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/rules"
)

func parseRules(t *testing.T, window int64, lines ...string) *rules.Set {
	t.Helper()
	set, err := rules.ParseRules(strings.NewReader(strings.Join(lines, "\n")), rules.ParseOptions{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func collectRules(t *testing.T, rset *rules.Set, opt vpatch.Options, segs []netsim.Segment) []Alert {
	t.Helper()
	var alerts []Alert
	e, err := NewRuleEngine(rset, opt, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		e.HandleSegment(s)
	}
	e.Flush()
	return alerts
}

func TestRuleEngineBasic(t *testing.T) {
	rset := parseRules(t, 0,
		`alert tcp any any -> any 80 (msg:"probe"; content:"GET /"; depth:16; content:"admin"; nocase; distance:0; within:64; sid:1;)`,
		`alert tcp any any -> any 80 (msg:"tok"; content:"token="; pcre:"/[0-9a-f]{8}/"; sid:2;)`,
	)
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("GET /aDmIn HTTP/1.1 token=deadbeef more"),
		key(2, 80): []byte("GET /index.html token=nothexhere"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 8, Jitter: 4, Seed: 7, FIN: true})
	alerts := collectRules(t, rset, vpatch.Options{}, segs)

	byFlow := map[uint16][]Alert{}
	for _, a := range alerts {
		if a.PatternID != -1 {
			t.Fatalf("rule alert carries PatternID %d, want -1: %+v", a.PatternID, a)
		}
		byFlow[a.Flow.SrcPort] = append(byFlow[a.Flow.SrcPort], a)
	}
	got1 := byFlow[40001]
	sort.Slice(got1, func(i, j int) bool { return got1[i].RuleID < got1[j].RuleID })
	if len(got1) != 2 || got1[0].RuleID != 0 || got1[1].RuleID != 1 {
		t.Fatalf("flow 1 alerts: %+v, want rules 0 and 1", got1)
	}
	if got1[0].StreamOffset != 5 || got1[1].StreamOffset != 20 {
		t.Fatalf("flow 1 offsets: %+v, want final-clause starts 5 and 20", got1)
	}
	if len(byFlow[40002]) != 0 {
		t.Fatalf("flow 2 alerted: %+v", byFlow[40002])
	}
}

// TestRuleAlertsMatchReference is the cross-engine property test: rule
// evaluation over the real pipeline — every algorithm, segmentation
// with reordering, duplicates, overlapping retransmits and FIN
// teardown — must alert exactly like the naive reference (Go regexp +
// scalar clause walk over each flow's contiguous stream).
func TestRuleAlertsMatchReference(t *testing.T) {
	algos := []vpatch.Algorithm{
		vpatch.AlgoVPatch, vpatch.AlgoSPatch, vpatch.AlgoDFC, vpatch.AlgoVectorDFC,
		vpatch.AlgoAhoCorasick, vpatch.AlgoWuManber, vpatch.AlgoFFBF,
	}
	rng := rand.New(rand.NewSource(99))
	words := []string{"ab", "ba", "abc", "AB", "aB", "ca", "cab", "bc"}
	regexes := []string{"/a+b/", "/[ab]{2,4}/i", "/a.b/", "/(a|b)b*a/", "/ab|ba/", "/c[abc]*a/"}
	ports := []uint16{80, 53, 9999}
	alphabet := []byte("abcx")

	iters := 30
	if testing.Short() {
		iters = 6
	}
	for it := 0; it < iters; it++ {
		var lines []string
		for s := 0; s < 1+rng.Intn(4); s++ {
			var b strings.Builder
			fmt.Fprintf(&b, "alert tcp any any -> any %d (", ports[rng.Intn(len(ports))])
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "content:%q; ", words[rng.Intn(len(words))])
				if rng.Intn(3) == 0 {
					b.WriteString("nocase; ")
				}
				if i == 0 {
					if rng.Intn(3) == 0 {
						fmt.Fprintf(&b, "depth:%d; ", 1+rng.Intn(40))
					}
				} else if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "distance:%d; within:%d; ", rng.Intn(4), 1+rng.Intn(24))
				}
			}
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "pcre:\"%s\"; ", regexes[rng.Intn(len(regexes))])
			}
			fmt.Fprintf(&b, "sid:%d;)", s+1)
			lines = append(lines, b.String())
		}
		rset, err := rules.ParseRules(strings.NewReader(strings.Join(lines, "\n")),
			rules.ParseOptions{Window: []int64{0, 8, 32}[rng.Intn(3)]})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", it, err, strings.Join(lines, "\n"))
		}

		flows := map[netsim.FlowKey][]byte{}
		for f := 0; f < 1+rng.Intn(3); f++ {
			stream := make([]byte, 1+rng.Intn(300))
			for i := range stream {
				stream[i] = alphabet[rng.Intn(len(alphabet))]
				if rng.Intn(4) == 0 {
					stream[i] &^= 0x20
				}
			}
			flows[key(f, ports[rng.Intn(len(ports))])] = stream
		}
		segs := netsim.Packetize(flows, netsim.PacketizeOptions{
			MTU:           1 + rng.Intn(40),
			Jitter:        rng.Intn(6),
			DuplicateFrac: 0.1,
			OverlapFrac:   0.1,
			FIN:           true,
			Seed:          rng.Int63(),
		})

		// The reference, per flow.
		type ra struct {
			flow netsim.FlowKey
			rule int32
			off  int64
		}
		var want []ra
		for k, stream := range flows {
			for _, a := range rules.RefEval(rset, stream, patterns.ProtoForPort(k.DstPort)) {
				want = append(want, ra{k, a.Rule, a.StreamOff})
			}
		}

		for _, alg := range algos {
			alerts := collectRules(t, rset, vpatch.Options{Algorithm: alg}, segs)
			var got []ra
			for _, a := range alerts {
				got = append(got, ra{a.Flow, a.RuleID, a.StreamOffset})
			}
			less := func(s []ra) func(i, j int) bool {
				return func(i, j int) bool {
					if s[i].flow != s[j].flow {
						return s[i].flow.SrcPort < s[j].flow.SrcPort
					}
					return s[i].rule < s[j].rule
				}
			}
			sort.Slice(want, less(want))
			sort.Slice(got, less(got))
			ok := len(want) == len(got)
			for i := 0; ok && i < len(want); i++ {
				ok = want[i] == got[i]
			}
			if !ok {
				t.Fatalf("iter %d alg %v:\n got %+v\nwant %+v\nrules:\n%s\nflows: %q",
					it, alg, got, want, strings.Join(lines, "\n"), flows)
			}
		}
	}
}

// TestRuleVerifierAnchorGating pins the prefilter-then-verify
// architecture on the real pipeline: without a literal anchor hit the
// regex verifier never runs, however often the regex itself would
// match the traffic.
func TestRuleVerifierAnchorGating(t *testing.T) {
	rset := parseRules(t, 0,
		`alert tcp any any -> any 80 (content:"needle"; pcre:"/[a-z ]+/"; sid:1;)`)
	var alerts []Alert
	e, err := NewRuleEngine(rset, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	var c vpatch.Counters
	e.SetCounters(&c)

	flows := map[netsim.FlowKey][]byte{
		key(1, 80): bytes.Repeat([]byte("plain lowercase traffic without anchors "), 50),
	}
	for _, s := range netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 100, Seed: 4, FIN: true}) {
		e.HandleSegment(s)
	}
	e.Flush()
	if len(alerts) != 0 || c.VerifierRuns != 0 || c.VerifierStates != 0 {
		t.Fatalf("verifier ran without anchors: alerts %v, counters %+v", alerts, c)
	}

	flows = map[netsim.FlowKey][]byte{key(2, 80): []byte("xx needle in a haystack")}
	for _, s := range netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 6, Seed: 5, FIN: true}) {
		e.HandleSegment(s)
	}
	e.Flush()
	if len(alerts) != 1 || alerts[0].RuleID != 0 {
		t.Fatalf("want one rule alert, got %+v", alerts)
	}
	if c.VerifierRuns != 1 || c.RuleAlerts != 1 {
		t.Fatalf("counters after anchored hit: %+v", c)
	}
}

func TestRuleDBRoundTrip(t *testing.T) {
	rset := parseRules(t, 64,
		`alert tcp any any -> any 80 (msg:"a"; content:"GET /"; depth:32; content:"Admin"; nocase; distance:0; within:40; pcre:"/id=[0-9]{2,6}/"; sid:1;)`,
		`alert udp any any -> any 53 (msg:"b"; content:"abc"; sid:2;)`,
	)
	var alerts1 []Alert
	e, err := NewRuleEngine(rset, vpatch.Options{}, func(a Alert) { alerts1 = append(alerts1, a) })
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.SerializeDB()
	if err != nil {
		t.Fatal(err)
	}
	var alerts2 []Alert
	e2, err := LoadDB(blob, func(a Alert) { alerts2 = append(alerts2, a) })
	if err != nil {
		t.Fatal(err)
	}
	if e2.Rules() == nil || len(e2.Rules().Rules) != 2 {
		t.Fatalf("loaded engine lost its rules: %+v", e2.Rules())
	}
	// serialize(deserialize(x)) == x.
	blob2, err := e2.SerializeDB()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-serialized database differs")
	}
	// Same traffic, same alerts.
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("GET /x admin id=1234 trailing"),
		key(2, 53): []byte("zzabczz"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 5, Jitter: 3, Seed: 11, FIN: true})
	for _, s := range segs {
		e.HandleSegment(s)
		e2.HandleSegment(s)
	}
	e.Flush()
	e2.Flush()
	if len(alerts1) == 0 || len(alerts1) != len(alerts2) {
		t.Fatalf("alert mismatch: compiled %+v, loaded %+v", alerts1, alerts2)
	}
	for i := range alerts1 {
		if alerts1[i] != alerts2[i] {
			t.Fatalf("alert %d: compiled %+v, loaded %+v", i, alerts1[i], alerts2[i])
		}
	}
}

// TestVersion1DatabaseStillLoads pins backward compatibility: a
// version-1 (pre-rules) database — byte-identical to today's layout
// minus the rule section — must still load as a literal engine.
func TestVersion1DatabaseStillLoads(t *testing.T) {
	set := mixedRuleSet()
	var alerts []Alert
	e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.SerializeDB()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header's format version to 1 and fix up the trailing
	// CRC — exactly what a file written by the previous release holds.
	v1 := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(v1[4:], 1)
	cas := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(v1[len(v1)-4:], crc32.Checksum(v1[:len(v1)-4], cas))

	e2, err := LoadDB(v1, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatalf("version-1 database rejected: %v", err)
	}
	if e2.Rules() != nil {
		t.Fatal("version-1 database grew rules out of nowhere")
	}
	flows := map[netsim.FlowKey][]byte{key(1, 80): []byte("x http-attack-xyz y")}
	for _, s := range netsim.Packetize(flows, netsim.PacketizeOptions{Seed: 1, FIN: true}) {
		e2.HandleSegment(s)
	}
	e2.Flush()
	if len(alerts) != 1 || alerts[0].PatternID != 0 || alerts[0].RuleID != -1 {
		t.Fatalf("v1 literal alerts wrong: %+v", alerts)
	}
}
