package ids

// The rule-semantics tier of the pipeline: engines built with
// NewRuleEngine prefilter traffic with the rule set's case-folded
// literals exactly like literal engines do — same groups, same batched
// ScanBatch path, same carry discipline — and then replay the literal
// hits through the clause/regex evaluator (internal/rules) to decide
// which of them complete a rule. Alerts carry RuleID instead of
// PatternID and fire at most once per rule per flow.
//
// The literal engines remain pure prefilters: every byte of traffic is
// still scanned only by the multi-pattern matchers, and the regex
// verifier runs exclusively at literal-hit anchor windows (the
// VerifierRuns counter makes that observable).

import (
	"fmt"
	"sort"

	"vpatch"
	"vpatch/internal/rules"
)

// NewRuleEngine compiles a rule-conditioned engine from a parsed rule
// set: rset's literal set becomes the per-protocol prefilter groups,
// and every shard layers the clause/regex evaluator on top. Alerts are
// rule completions (Alert.RuleID); emit must be non-nil.
func NewRuleEngine(rset *rules.Set, opt vpatch.Options, emit func(Alert)) (*Engine, error) {
	if emit == nil {
		return nil, fmt.Errorf("ids: nil alert sink")
	}
	if rset == nil || len(rset.Rules) == 0 {
		return nil, fmt.Errorf("ids: empty rule set")
	}
	e := &Engine{
		set:    rset.Lits,
		groups: make(map[vpatch.Protocol]*group),
		rules:  rset,
	}
	if g, err := buildGroup(e.set, vpatch.ProtoGeneric, opt); err != nil {
		return nil, err
	} else if g != nil {
		e.groups[vpatch.ProtoGeneric] = g
	}
	for _, proto := range groupedProtocols {
		g, err := buildGroup(e.set, proto, opt)
		if err != nil {
			return nil, err
		}
		if g != nil {
			e.groups[proto] = g
		}
	}
	e.def = e.NewShard(emit)
	return e, nil
}

// Rules returns the engine's rule set, or nil for literal engines.
func (e *Engine) Rules() *rules.Set { return e.rules }

// ruleHit is one literal occurrence queued for rule evaluation during
// a batch flush: the batch buffer it landed in, the original literal
// ID, and its buffer-relative span.
type ruleHit struct {
	buf      int32
	lit      int32
	pos, end int32
}

// ruleEmitter adapts the shard's alert sink to the evaluator's emit
// callback for one flow.
func (s *Shard) ruleEmitter(fs *flowState) rules.EmitFunc {
	return func(rule int32, off int64) {
		s.emit(Alert{
			Flow:         fs.key,
			StreamOffset: off,
			PatternID:    -1,
			RuleID:       rule,
		})
	}
}

// evalRuleHits replays one flushed batch's literal hits through the
// rule evaluator. Hits are ordered per buffer by match end — the
// evaluator's input contract (a flow's buffers already sit in stream
// order in the batch, and carry duplicates were dropped at collection,
// so per-flow hit ends are nondecreasing). Before a buffer's hits, the
// buffer's new bytes advance any regex verification the flow suspended
// at an earlier batch boundary.
func (s *Shard) evalRuleHits(pb *groupBatch, c *vpatch.Counters) {
	hits := s.ruleHits
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].buf != hits[j].buf {
			return hits[i].buf < hits[j].buf
		}
		return hits[i].end < hits[j].end
	})
	// Budget pricing reads verifier-counter deltas around the evaluator
	// calls, so an uninstrumented shard still needs a counter target
	// when a budget is armed (obsScratch doubles as that scratch — it
	// is unobserved exactly when c would be nil).
	budgeted := s.vbudget.Armed()
	if budgeted && c == nil {
		c = &s.obsScratch
	}
	hi := 0
	for b := range pb.meta {
		ent := &pb.meta[b]
		fs := ent.fs
		if fs.rstate == nil {
			if fs.degraded {
				// Budget-degraded flow: the prefilter still sees every
				// byte; its hits surface as plain literal alerts instead
				// of buying verifier work.
				for hi < len(hits) && int(hits[hi].buf) == b {
					h := hits[hi]
					hi++
					s.emit(Alert{
						Flow:         fs.key,
						StreamOffset: ent.base + int64(h.pos),
						PatternID:    h.lit,
						RuleID:       -1,
					})
				}
				continue
			}
			// Flow already settled (closed) — skip its stale hits.
			for hi < len(hits) && int(hits[hi].buf) == b {
				hi++
			}
			continue
		}
		buf := pb.bufs[b]
		emit := s.ruleEmitter(fs)
		var runs0, states0 uint64
		if budgeted {
			runs0, states0 = c.VerifierRuns, c.VerifierStates
		}
		nhits := uint64(0)
		if fs.rstate.HasPending() {
			s.ev.FeedBuffer(fs.rstate, buf, ent.base, c, emit)
		}
		for hi < len(hits) && int(hits[hi].buf) == b {
			h := hits[hi]
			hi++
			nhits++
			s.ev.OnHit(fs.rstate, h.lit,
				ent.base+int64(h.pos), ent.base+int64(h.end), buf, ent.base, c, emit)
		}
		if budgeted && nhits > 0 {
			cost := s.vbudget.Price.Cost(
				c.VerifierRuns-runs0, c.VerifierStates-states0, nhits)
			s.chargeVerifier(fs, cost, c, emit)
		}
	}
	s.ruleHits = hits[:0]
}

// chargeVerifier debits one buffer's verifier work from the flow and
// tenant budgets. An uncovered charge demotes the flow: suspended
// verifications are settled (already-anchored rules still fire or
// reject — no alert is silently lost), the rule state is torn down,
// and the flow continues in literal-only mode for its remaining
// lifetime. Exhaustion trails the work by at most one buffer, whose
// excess is bounded by its hit count times the anchored window.
func (s *Shard) chargeVerifier(fs *flowState, cost int64, c *vpatch.Counters, emit rules.EmitFunc) {
	ok := true
	if s.vbudget.PerFlow > 0 {
		fs.vbudget -= cost
		if fs.vbudget < 0 {
			ok = false
		}
	}
	if ok && !s.vbudget.Pool.TryTake(cost) {
		ok = false
	}
	if ok {
		return
	}
	c.VerifierBudgetExhausted++
	c.DegradedFlows++
	s.ev.FinishFlow(fs.rstate, c, emit)
	fs.rstate = nil
	fs.degraded = true
}
