package ids

// Rule-semantics fuzzing with the adversarial evasion corpus: the same
// stream delivered in-order versus through composed evasion tricks
// (tiny MTU, overlaps, reordering, duplicates) must produce the same
// alert multiset — segmentation is never allowed to create or hide an
// alert. Seeds are the corpus's known attack shapes.

import (
	"fmt"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
	"vpatch/internal/traffic"
)

func FuzzRuleStreamEvasion(f *testing.F) {
	f.Add([]byte("GET /admin HTTP/1.1 token=deadbeef trailer"), int64(1))
	f.Add(traffic.FloodAnchors([]byte("token="), []byte("zzzzzzzz"), 12, 3), int64(2))
	f.Add(traffic.FloodAnchors([]byte("token="), []byte("deadbeef"), 8, 5), int64(3))
	f.Add(traffic.Random(256, 9), int64(4))
	f.Fuzz(func(t *testing.T, payload []byte, seed int64) {
		if len(payload) > 1<<14 {
			return
		}
		rset := parseRules(t, 0,
			`alert tcp any any -> any 80 (msg:"probe"; content:"GET /"; depth:16; content:"admin"; nocase; distance:0; within:64; sid:1;)`,
			`alert tcp any any -> any 80 (msg:"tok"; content:"token="; pcre:"/[0-9a-f]{8}/"; sid:2;)`)
		k := key(1, 80)
		run := func(deliver func(e *Engine)) []Alert {
			var alerts []Alert
			e, err := NewRuleEngine(rset, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
			if err != nil {
				t.Fatal(err)
			}
			deliver(e)
			e.Flush()
			sortAlerts(alerts)
			return alerts
		}
		inOrder := run(func(e *Engine) {
			e.HandleSegment(netsim.Segment{Flow: k, Payload: payload, Flags: netsim.FlagFIN})
		})
		evasive := run(func(e *Engine) {
			for _, c := range traffic.Evasive(payload, seed) {
				seg := netsim.Segment{Flow: k, Seq: uint32(c.Off), Payload: c.Data}
				if c.Fin {
					seg.Flags = netsim.FlagFIN
				}
				e.HandleSegment(seg)
			}
		})
		if fmt.Sprint(inOrder) != fmt.Sprint(evasive) {
			t.Fatalf("alerts diverge under evasive delivery (seed %d):\nin-order: %v\nevasive:  %v",
				seed, inOrder, evasive)
		}
	})
}
