package ids

// Multi-shard dispatch: the capture loop stays single-goroutine (one
// reader per NIC queue), while flows are hash-partitioned across N
// worker shards, each running on its own goroutine. Reassembly and
// scan state is strictly per-shard, so workers never contend on
// anything but the compiled rule groups (immutable) and the caller's
// alert sink.

import (
	"sync"

	"vpatch"
	"vpatch/internal/netsim"
)

// Dispatcher fans captured segments out to N worker shards by flow-key
// hash. Handle is single-goroutine (the capture loop); the shards run
// concurrently. Close drains the workers and merges their stats.
type Dispatcher struct {
	shards []*Shard
	chans  []chan netsim.Segment
	wg     sync.WaitGroup
	closed bool
}

// dispatchQueueLen is each worker's segment-channel buffer: deep enough
// to ride out transient skew toward one shard without stalling the
// capture loop, small enough to bound in-flight segment references.
const dispatchQueueLen = 256

// NewDispatcher starts n worker shards (each with limits armed) fed by
// flow-key hash partitioning, delivering alerts to emit. emit is called
// concurrently from the n worker goroutines and must be safe for
// concurrent use; alerts of one flow always come from one worker, in
// stream order. Close must be called to drain and stop the workers.
func (e *Engine) NewDispatcher(n int, limits netsim.Limits, emit func(Alert)) *Dispatcher {
	if n < 1 {
		n = 1
	}
	if emit == nil {
		panic("ids: nil alert sink")
	}
	d := &Dispatcher{
		shards: make([]*Shard, n),
		chans:  make([]chan netsim.Segment, n),
	}
	for i := 0; i < n; i++ {
		sh := e.NewShard(emit)
		sh.SetLimits(limits)
		ch := make(chan netsim.Segment, dispatchQueueLen)
		d.shards[i] = sh
		d.chans[i] = ch
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for seg := range ch {
				sh.HandleSegment(seg)
			}
			sh.Flush()
		}()
	}
	return d
}

// Handle routes one captured segment to its flow's shard. Segments of
// one flow always land on the same shard, so per-flow stream order is
// preserved. Single-goroutine, like Engine.HandleSegment.
//
// The segment's payload is enqueued by reference: the capture loop must
// not reuse the payload buffer until Close returns. (Replay loops that
// do reuse buffers should copy before Handle; netsim.ReadPcap returns
// per-segment buffers, so the pcap path needs no copy.)
func (d *Dispatcher) Handle(seg netsim.Segment) {
	d.chans[seg.Flow.Hash()%uint32(len(d.chans))] <- seg
}

// Shards returns the number of worker shards.
func (d *Dispatcher) Shards() int { return len(d.shards) }

// InstrumentCounters attaches a fresh scan-counter set to every worker
// shard and returns them, index-aligned with the shards. It must be
// called before the first Handle (the first segment's channel send
// publishes the counters to its worker); read or merge the counters
// only after Close. Instrumented scans cost a few percent of
// throughput.
func (d *Dispatcher) InstrumentCounters() []*vpatch.Counters {
	cs := make([]*vpatch.Counters, len(d.shards))
	for i, sh := range d.shards {
		cs[i] = &vpatch.Counters{}
		sh.SetCounters(cs[i])
	}
	return cs
}

// Close drains every worker (flushing partial batches, so all pending
// alerts surface), stops the goroutines, and returns the per-shard
// lifecycle stats merged. Close is idempotent; Handle must not be
// called after it.
func (d *Dispatcher) Close() netsim.Stats {
	if !d.closed {
		d.closed = true
		for _, ch := range d.chans {
			close(ch)
		}
		d.wg.Wait()
	}
	var st netsim.Stats
	for _, sh := range d.shards {
		st.Add(sh.Stats())
	}
	return st
}
