package ids

// Multi-shard dispatch: the capture loop stays single-goroutine (one
// reader per NIC queue), while flows are hash-partitioned across N
// worker shards, each running on its own goroutine. Reassembly and
// scan state is strictly per-shard, so workers never contend on
// anything but the compiled rule groups (immutable) and the caller's
// alert sink.

import (
	"sync"

	"vpatch"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
)

// Dispatcher fans captured segments out to N worker shards by flow-key
// hash. Handle is single-goroutine (the capture loop); the shards run
// concurrently. Close drains the workers and merges their stats.
type Dispatcher struct {
	shards []*Shard
	chans  []chan netsim.Segment
	flush  []chan chan struct{}
	wg     sync.WaitGroup
	obs    *PipelineObserver

	// mu guards the control plane (FlushAll vs Close); closeOnce makes
	// Close safe from any goroutine, any number of times — the
	// ownership handoff a hot-swapping service needs when the last
	// releaser of an old engine generation, whoever that is, retires
	// its dispatcher.
	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once
}

// dispatchQueueLen is each worker's segment-channel buffer: deep enough
// to ride out transient skew toward one shard without stalling the
// capture loop, small enough to bound in-flight segment references.
const dispatchQueueLen = 256

// NewDispatcher starts n worker shards (each with limits armed) fed by
// flow-key hash partitioning, delivering alerts to emit. emit is called
// concurrently from the n worker goroutines and must be safe for
// concurrent use; alerts of one flow always come from one worker, in
// stream order. Close must be called to drain and stop the workers.
func (e *Engine) NewDispatcher(n int, limits netsim.Limits, emit func(Alert)) *Dispatcher {
	if n < 1 {
		n = 1
	}
	if emit == nil {
		panic("ids: nil alert sink")
	}
	d := &Dispatcher{
		shards: make([]*Shard, n),
		chans:  make([]chan netsim.Segment, n),
		flush:  make([]chan chan struct{}, n),
	}
	for i := 0; i < n; i++ {
		sh := e.NewShard(emit)
		sh.SetLimits(limits)
		ch := make(chan netsim.Segment, dispatchQueueLen)
		fch := make(chan chan struct{})
		d.shards[i] = sh
		d.chans[i] = ch
		d.flush[i] = fch
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case seg, ok := <-ch:
					if !ok {
						sh.Flush()
						return
					}
					sh.HandleSegment(seg)
				case ack := <-fch:
					// Drain segments already queued before flushing:
					// select picks randomly among ready channels, so
					// without this a flush request could overtake
					// segments sent before it and miss their alerts.
					for drained := false; !drained; {
						select {
						case seg, ok := <-ch:
							if !ok {
								sh.Flush()
								close(ack)
								return
							}
							sh.HandleSegment(seg)
						default:
							drained = true
						}
					}
					sh.Flush()
					close(ack)
				}
			}
		}()
	}
	return d
}

// Handle routes one captured segment to its flow's shard. Segments of
// one flow always land on the same shard, so per-flow stream order is
// preserved. Unlike Engine.HandleSegment, Handle may be called from
// multiple goroutines (it is one channel send); per-flow ordering then
// holds per sender, which is what a request-scoped ingest needs.
//
// The segment's payload is enqueued by reference: the capture loop must
// not reuse the payload buffer until Close returns. (Replay loops that
// do reuse buffers should copy before Handle; netsim.ReadPcap returns
// per-segment buffers, so the pcap path needs no copy.)
func (d *Dispatcher) Handle(seg netsim.Segment) {
	d.chans[seg.Flow.Hash()%uint32(len(d.chans))] <- seg
}

// Shards returns the number of worker shards.
func (d *Dispatcher) Shards() int { return len(d.shards) }

// InstrumentCounters attaches a fresh scan-counter set to every worker
// shard and returns them, index-aligned with the shards. It must be
// called before the first Handle (the first segment's channel send
// publishes the counters to its worker); read or merge the counters
// only after Close. Instrumented scans cost a few percent of
// throughput.
func (d *Dispatcher) InstrumentCounters() []*vpatch.Counters {
	cs := make([]*vpatch.Counters, len(d.shards))
	for i, sh := range d.shards {
		cs[i] = &vpatch.Counters{}
		sh.SetCounters(cs[i])
	}
	return cs
}

// PipelineObserver aggregates race-safe views over a dispatcher's
// worker shards: scan counters folded in at batch flushes and
// flow-lifecycle stats published at flushes and segment intervals.
// Counters and FlowStats may be called from any goroutine at any time
// — while the pipeline is ingesting, and after Close (when they report
// the final tallies). This is the scrape surface a resident service
// exposes on /metrics.
type PipelineObserver struct {
	scan []*metrics.Atomic
	flow []*netsim.AtomicStats
}

// Observe attaches (or returns the already-attached) observer for this
// dispatcher. Like InstrumentCounters it must be called before the
// first Handle, so the attachment is published to the workers by the
// first segment send.
func (d *Dispatcher) Observe() *PipelineObserver {
	if d.obs == nil {
		o := &PipelineObserver{
			scan: make([]*metrics.Atomic, len(d.shards)),
			flow: make([]*netsim.AtomicStats, len(d.shards)),
		}
		for i, sh := range d.shards {
			o.scan[i] = &metrics.Atomic{}
			o.flow[i] = &netsim.AtomicStats{}
			sh.SetObserver(o.scan[i], o.flow[i])
		}
		d.obs = o
	}
	return d.obs
}

// Counters returns the merged scan counters published so far (they lag
// the hot path by at most one unflushed batch per shard).
func (o *PipelineObserver) Counters() vpatch.Counters {
	var c vpatch.Counters
	for _, a := range o.scan {
		snap := a.Snapshot()
		c.Add(&snap)
	}
	return c
}

// FlowStats returns the merged flow-lifecycle stats published so far.
func (o *PipelineObserver) FlowStats() netsim.Stats {
	var st netsim.Stats
	for _, f := range o.flow {
		st.Add(f.Load())
	}
	return st
}

// FlushAll makes every worker scan its pending batches now and waits
// until all have done so — the latency-deadline lever of a resident
// pipeline (alerts otherwise wait for a watermark). Safe to call
// concurrently with Handle (from any goroutine) and with Close; after
// Close it is a no-op.
func (d *Dispatcher) FlushAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	acks := make([]chan struct{}, len(d.flush))
	for i, fch := range d.flush {
		ack := make(chan struct{})
		acks[i] = ack
		fch <- ack
	}
	for _, ack := range acks {
		<-ack
	}
}

// Close drains every worker (flushing partial batches, so all pending
// alerts surface), stops the goroutines, and returns the per-shard
// lifecycle stats merged. Close is safe to call from any goroutine and
// any number of times (every call waits for the drain and returns the
// same merged stats); Handle must not be called after it.
func (d *Dispatcher) Close() netsim.Stats {
	d.closeOnce.Do(func() {
		d.mu.Lock()
		d.closed = true
		for _, ch := range d.chans {
			close(ch)
		}
		d.mu.Unlock()
	})
	d.wg.Wait()
	var st netsim.Stats
	for _, sh := range d.shards {
		st.Add(sh.Stats())
	}
	return st
}
