package ids

// Multi-shard dispatch: the capture loop stays single-goroutine (one
// reader per NIC queue), while flows are hash-partitioned across N
// worker shards, each running on its own goroutine. Reassembly and
// scan state is strictly per-shard, so workers never contend on
// anything but the compiled rule groups (immutable) and the caller's
// alert sink.
//
// Handoff is batched: the capture loop accumulates per-shard
// []netsim.Segment slabs (flushed on a size watermark or a linger
// deadline) and workers receive whole slabs, so channel operations —
// the dominant per-segment cost at small-packet rates — are paid once
// per ~DefaultDispatchBatch segments instead of once per segment.
// Slabs are recycled through a bounded pool, and segment payloads ride
// refcounted arena chunks (see internal/arena), so the steady-state
// ingest path allocates nothing.

import (
	"sync"
	"time"

	"vpatch"
	"vpatch/internal/arena"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
	"vpatch/internal/resil"
	"vpatch/internal/resil/chaos"
)

// Dispatcher fans captured segments out to N worker shards by flow-key
// hash. HandleBatch is the fast path (amortized channel sends); Handle
// wraps one segment. Close drains the workers and merges their stats.
type Dispatcher struct {
	shards []*Shard
	chans  []chan []netsim.Segment
	flush  []chan chan struct{}
	wg     sync.WaitGroup
	obs    *PipelineObserver

	// arena backs defensive payload copies and the shard reassemblers;
	// zeroCopy disables the defensive copy for callers whose payload
	// buffers are stable (see SetZeroCopy).
	arena    *arena.Arena
	zeroCopy bool

	batchSegs int           // slab capacity: the size watermark
	linger    time.Duration // max time a segment waits in an accumulator

	// Recycled slab pool: slabCount never exceeds slabMax, so once the
	// pool is warm takeSlab never allocates — and a capture loop that
	// outruns the workers blocks on slab reuse (bounded memory) rather
	// than growing the heap.
	slabMu    sync.Mutex
	slabs     chan []netsim.Segment
	slabCount int
	slabMax   int

	// mu guards the per-shard accumulators and the control plane
	// (FlushAll vs Close); closeOnce makes Close safe from any
	// goroutine, any number of times — the ownership handoff a
	// hot-swapping service needs when the last releaser of an old
	// engine generation, whoever that is, retires its dispatcher.
	mu        sync.Mutex
	acc       [][]netsim.Segment // per-shard pending slabs (HandleBatch)
	accSegs   int                // total segments across acc
	timerOn   bool
	timer     *time.Timer
	closed    bool
	closeOnce sync.Once
}

const (
	// dispatchQueueBatches is each worker's slab-channel buffer: deep
	// enough to ride out transient skew toward one shard without
	// stalling the capture loop, small enough to bound in-flight
	// segment references.
	dispatchQueueBatches = 64

	// DefaultDispatchBatch is the slab size watermark: a shard's
	// accumulator is handed to its worker once it holds this many
	// segments (or the linger deadline fires).
	DefaultDispatchBatch = 64

	// DefaultDispatchLinger bounds how long a segment may sit in an
	// accumulator at low rate before being flushed to its worker.
	DefaultDispatchLinger = 2 * time.Millisecond
)

// NewDispatcher starts n worker shards (each with limits armed) fed by
// flow-key hash partitioning, delivering alerts to emit. emit is called
// concurrently from the n worker goroutines and must be safe for
// concurrent use; alerts of one flow always come from one worker, in
// stream order. Shard reassemblers recycle their buffers through the
// shared arena (override with SetArena). Close must be called to drain
// and stop the workers.
func (e *Engine) NewDispatcher(n int, limits netsim.Limits, emit func(Alert)) *Dispatcher {
	if n < 1 {
		n = 1
	}
	if emit == nil {
		panic("ids: nil alert sink")
	}
	d := &Dispatcher{
		shards:    make([]*Shard, n),
		chans:     make([]chan []netsim.Segment, n),
		flush:     make([]chan chan struct{}, n),
		arena:     arena.Shared(),
		batchSegs: DefaultDispatchBatch,
		linger:    DefaultDispatchLinger,
		acc:       make([][]netsim.Segment, n),
	}
	d.slabMax = n*(dispatchQueueBatches+2) + 16
	d.slabs = make(chan []netsim.Segment, d.slabMax)
	for i := 0; i < n; i++ {
		sh := e.NewShard(emit)
		sh.SetLimits(limits)
		sh.SetArena(d.arena)
		ch := make(chan []netsim.Segment, dispatchQueueBatches)
		fch := make(chan chan struct{})
		d.shards[i] = sh
		d.chans[i] = ch
		d.flush[i] = fch
		worker := i
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			handle := func(bt []netsim.Segment) {
				if chaos.Armed() {
					chaos.Fire(chaos.DispatchBatch, worker)
				}
				for j := range bt {
					// Per-segment panic recovery: a poisoned segment
					// quarantines its flow, never the shard (see
					// Shard.handleSegmentSafe).
					sh.handleSegmentSafe(bt[j])
					bt[j] = netsim.Segment{}
				}
				d.putSlab(bt[:0])
			}
			for {
				select {
				case bt, ok := <-ch:
					if !ok {
						sh.Flush()
						return
					}
					handle(bt)
				case ack := <-fch:
					// Drain slabs already queued before flushing:
					// select picks randomly among ready channels, so
					// without this a flush request could overtake
					// segments sent before it and miss their alerts.
					for drained := false; !drained; {
						select {
						case bt, ok := <-ch:
							if !ok {
								sh.Flush()
								close(ack)
								return
							}
							handle(bt)
						default:
							drained = true
						}
					}
					sh.Flush()
					close(ack)
				}
			}
		}()
	}
	return d
}

// SetArena replaces the arena backing defensive copies and the shard
// reassemblers. Must be called before the first Handle/HandleBatch.
func (d *Dispatcher) SetArena(a *arena.Arena) {
	d.arena = a
	for _, sh := range d.shards {
		sh.SetArena(a)
	}
}

// SetVerifierBudget arms the match-flood defense on every worker shard
// (see Shard.SetVerifierBudget). Must be called before the first
// Handle/HandleBatch, like the other pre-start configuration.
func (d *Dispatcher) SetVerifierBudget(b resil.VerifierBudget) {
	for _, sh := range d.shards {
		sh.SetVerifierBudget(b)
	}
}

// SetZeroCopy disables the defensive copy of unowned payloads. Only
// callers whose payload buffers remain valid and unmodified until the
// pipeline has consumed them (e.g. a replay loop over per-segment
// buffers, like netsim.ReadPcap's) should enable it; a capture loop
// that recycles read buffers must leave it off or rent arena chunks
// itself. Must be called before the first Handle/HandleBatch.
func (d *Dispatcher) SetZeroCopy(v bool) { d.zeroCopy = v }

// SetBatching tunes the slab size watermark and the linger deadline
// (the latency bound for segments waiting in accumulators at low
// rate). Zero keeps the current value. Must be called before the first
// Handle/HandleBatch.
func (d *Dispatcher) SetBatching(segs int, linger time.Duration) {
	if segs > 0 {
		d.batchSegs = segs
	}
	if linger > 0 {
		d.linger = linger
	}
}

// adopt makes seg safe to enqueue: payloads the caller still owns are
// copied into an arena chunk (so later reuse of the caller's buffer
// cannot corrupt queued segments), unless the caller opted into
// zero-copy or the segment already owns its chunk.
func (d *Dispatcher) adopt(seg netsim.Segment) netsim.Segment {
	if seg.Owned() || d.zeroCopy || len(seg.Payload) == 0 {
		return seg
	}
	b := d.arena.Rent(len(seg.Payload))
	data := b.Data()[:len(seg.Payload)]
	copy(data, seg.Payload)
	seg.Payload = data
	seg.SetOwned(b)
	return seg
}

// takeSlab rents an empty slab from the recycled pool, allocating only
// while the pool is below its cap; at the cap it blocks until a worker
// returns one — backpressure instead of heap growth.
func (d *Dispatcher) takeSlab() []netsim.Segment {
	select {
	case s := <-d.slabs:
		return s
	default:
	}
	d.slabMu.Lock()
	if d.slabCount < d.slabMax {
		d.slabCount++
		d.slabMu.Unlock()
		return make([]netsim.Segment, 0, d.batchSegs)
	}
	d.slabMu.Unlock()
	return <-d.slabs
}

func (d *Dispatcher) putSlab(s []netsim.Segment) {
	select {
	case d.slabs <- s:
	default: // pool full (foreign slab): drop for the GC
	}
}

// Handle routes one captured segment to its flow's shard. Segments of
// one flow always land on the same shard, so per-flow stream order is
// preserved. Unlike Engine.HandleSegment, Handle may be called from
// multiple goroutines (it is one slab send); per-flow ordering then
// holds per sender, which is what a request-scoped ingest needs.
//
// Unowned payloads are defensively copied into an arena chunk before
// enqueueing, so callers may reuse their read buffer between calls;
// arena-owned segments (Segment.SetOwned) and zero-copy dispatchers
// (SetZeroCopy) transfer the payload by reference. Do not mix Handle
// and HandleBatch for segments of the same flow: batched segments may
// still be lingering in an accumulator when Handle bypasses it.
//
// After Close, Handle drops the segment (releasing an owned payload)
// instead of panicking — the benign outcome of the shutdown race a
// resident service's ingest connections run against Drain.
func (d *Dispatcher) Handle(seg netsim.Segment) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		seg.ReleasePayload()
		return
	}
	seg = d.adopt(seg)
	slab := append(d.takeSlab(), seg)
	d.chans[seg.Flow.Hash()%uint32(len(d.chans))] <- slab
}

// HandleBatch routes a batch of captured segments — the fast path for
// capture loops. Segments accumulate in per-shard slabs handed to the
// workers when full (SetBatching's size watermark) or when the linger
// deadline fires, so per-segment channel operations amortize away
// while low-rate latency stays bounded. Ownership of owned payloads
// transfers to the pipeline; unowned payloads are defensively copied
// (see Handle). Safe for concurrent use; segments of one flow keep
// their per-sender order relative to other HandleBatch/FlushAll calls.
// After Close the batch is dropped (owned payloads released), like
// Handle.
func (d *Dispatcher) HandleBatch(segs []netsim.Segment) {
	if len(segs) == 0 {
		return
	}
	n := uint32(len(d.chans))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		for i := range segs {
			segs[i].ReleasePayload()
		}
		return
	}
	for _, seg := range segs {
		seg = d.adopt(seg)
		i := seg.Flow.Hash() % n
		slab := d.acc[i]
		if slab == nil {
			slab = d.takeSlab()
		}
		slab = append(slab, seg)
		if len(slab) >= d.batchSegs {
			d.acc[i] = nil
			d.accSegs -= len(slab) - 1
			d.chans[i] <- slab
			continue
		}
		d.acc[i] = slab
		d.accSegs++
	}
	if d.accSegs > 0 && !d.timerOn {
		d.timerOn = true
		if d.timer == nil {
			d.timer = time.AfterFunc(d.linger, d.lingerFlush)
		} else {
			d.timer.Reset(d.linger)
		}
	}
}

// lingerFlush is the timer path: segments waiting in accumulators are
// handed to their workers once the linger deadline passes.
func (d *Dispatcher) lingerFlush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.timerOn = false
	if d.closed {
		return
	}
	d.flushAccLocked()
}

// flushAccLocked hands every non-empty accumulator slab to its worker.
// Caller holds d.mu.
func (d *Dispatcher) flushAccLocked() {
	for i, slab := range d.acc {
		if len(slab) > 0 {
			d.acc[i] = nil
			d.accSegs -= len(slab)
			d.chans[i] <- slab
		}
	}
}

// Shards returns the number of worker shards.
func (d *Dispatcher) Shards() int { return len(d.shards) }

// Arena returns the arena backing the dispatcher's ingest path.
func (d *Dispatcher) Arena() *arena.Arena { return d.arena }

// InstrumentCounters attaches a fresh scan-counter set to every worker
// shard and returns them, index-aligned with the shards. It must be
// called before the first Handle (the first segment's channel send
// publishes the counters to its worker); read or merge the counters
// only after Close. Instrumented scans cost a few percent of
// throughput.
func (d *Dispatcher) InstrumentCounters() []*vpatch.Counters {
	cs := make([]*vpatch.Counters, len(d.shards))
	for i, sh := range d.shards {
		cs[i] = &vpatch.Counters{}
		sh.SetCounters(cs[i])
	}
	return cs
}

// PipelineObserver aggregates race-safe views over a dispatcher's
// worker shards: scan counters folded in at batch flushes and
// flow-lifecycle stats published at flushes and segment intervals.
// Counters and FlowStats may be called from any goroutine at any time
// — while the pipeline is ingesting, and after Close (when they report
// the final tallies). This is the scrape surface a resident service
// exposes on /metrics.
type PipelineObserver struct {
	scan []*metrics.Atomic
	flow []*netsim.AtomicStats
}

// Observe attaches (or returns the already-attached) observer for this
// dispatcher. Like InstrumentCounters it must be called before the
// first Handle, so the attachment is published to the workers by the
// first segment send.
func (d *Dispatcher) Observe() *PipelineObserver {
	if d.obs == nil {
		o := &PipelineObserver{
			scan: make([]*metrics.Atomic, len(d.shards)),
			flow: make([]*netsim.AtomicStats, len(d.shards)),
		}
		for i, sh := range d.shards {
			o.scan[i] = &metrics.Atomic{}
			o.flow[i] = &netsim.AtomicStats{}
			sh.SetObserver(o.scan[i], o.flow[i])
		}
		d.obs = o
	}
	return d.obs
}

// Counters returns the merged scan counters published so far (they lag
// the hot path by at most one unflushed batch per shard).
func (o *PipelineObserver) Counters() vpatch.Counters {
	var c vpatch.Counters
	for _, a := range o.scan {
		snap := a.Snapshot()
		c.Add(&snap)
	}
	return c
}

// FlowStats returns the merged flow-lifecycle stats published so far.
func (o *PipelineObserver) FlowStats() netsim.Stats {
	var st netsim.Stats
	for _, f := range o.flow {
		st.Add(f.Load())
	}
	return st
}

// FlushAll hands lingering accumulator slabs to the workers, makes
// every worker scan its pending batches now, and waits until all have
// done so — the latency-deadline lever of a resident pipeline (alerts
// otherwise wait for a watermark). Safe to call concurrently with
// Handle/HandleBatch (from any goroutine) and with Close; after Close
// it is a no-op.
func (d *Dispatcher) FlushAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.flushAccLocked()
	acks := make([]chan struct{}, len(d.flush))
	for i, fch := range d.flush {
		ack := make(chan struct{})
		acks[i] = ack
		fch <- ack
	}
	for _, ack := range acks {
		<-ack
	}
}

// Close drains every worker (flushing lingering accumulators and
// partial batches, so all pending alerts surface), stops the
// goroutines, and returns the per-shard lifecycle stats merged. Close
// is safe to call from any goroutine and any number of times (every
// call waits for the drain and returns the same merged stats);
// Handle/HandleBatch must not be called after it.
func (d *Dispatcher) Close() netsim.Stats {
	d.closeOnce.Do(func() {
		d.mu.Lock()
		if d.timer != nil {
			d.timer.Stop()
		}
		d.flushAccLocked()
		d.closed = true
		for _, ch := range d.chans {
			close(ch)
		}
		d.mu.Unlock()
	})
	d.wg.Wait()
	var st netsim.Stats
	for _, sh := range d.shards {
		st.Add(sh.Stats())
	}
	return st
}
