package ids

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vpatch"
	"vpatch/internal/arena"
	"vpatch/internal/netsim"
)

// dispatchAll feeds segs through an n-shard dispatcher (Handle or
// HandleBatch per useBatch) and returns the sorted alerts.
func dispatchAll(t *testing.T, set *vpatch.PatternSet, segs []netsim.Segment, n int, useBatch bool) []Alert {
	t.Helper()
	var mu sync.Mutex
	var alerts []Alert
	sink := func(a Alert) {
		mu.Lock()
		alerts = append(alerts, a)
		mu.Unlock()
	}
	e, err := NewEngine(set, vpatch.Options{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	d := e.NewDispatcher(n, netsim.Limits{}, sink)
	if useBatch {
		// Uneven batch sizes exercise accumulator carry across calls.
		for i := 0; i < len(segs); {
			j := i + 1 + i%7
			if j > len(segs) {
				j = len(segs)
			}
			d.HandleBatch(segs[i:j])
			i = j
		}
	} else {
		for _, s := range segs {
			d.Handle(s)
		}
	}
	d.Close()
	sortAlerts(alerts)
	return alerts
}

// TestHandleBatchAlertIdentity proves the batched fast path emits
// exactly the alerts of the per-segment path, across shard counts and
// reordered traffic.
func TestHandleBatchAlertIdentity(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{}
	for i := 0; i < 24; i++ {
		port := []uint16{80, 53, 21, 9999}[i%4]
		payload := bytes.Repeat([]byte("padpadpad "), 40+i)
		copy(payload[37:], "http-attack-xyz")
		copy(payload[200:], "generic-bad-001")
		copy(payload[260:], "dns-poison-abc")
		flows[key(i, port)] = payload
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{
		MTU: 48, Jitter: 6, DuplicateFrac: 0.05, FIN: true, Seed: 77,
	})
	for _, shards := range []int{1, 3} {
		want := dispatchAll(t, set, segs, shards, false)
		got := dispatchAll(t, set, segs, shards, true)
		if len(want) == 0 {
			t.Fatalf("shards=%d: no alerts from baseline", shards)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: HandleBatch alerts differ: %d vs %d", shards, len(got), len(want))
		}
	}
}

// TestDispatcherDefensiveCopy is the aliasing-corruption regression:
// a capture loop that recycles one read buffer across Handle calls
// must not corrupt queued segments. Before the defensive copy this
// raced (the doc comment was the only guard) — payloads were scribbled
// over while workers still held references.
func TestDispatcherDefensiveCopy(t *testing.T) {
	set := vpatch.NewPatternSet()
	set.Add([]byte("needle-in-flow"), false, vpatch.ProtoGeneric)

	var mu sync.Mutex
	var alerts []Alert
	sink := func(a Alert) {
		mu.Lock()
		alerts = append(alerts, a)
		mu.Unlock()
	}
	e, err := NewEngine(set, vpatch.Options{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	d := e.NewDispatcher(2, netsim.Limits{}, sink)

	const flowsN = 64
	buf := make([]byte, 256) // the single recycled read buffer
	for i := 0; i < flowsN; i++ {
		for j := range buf {
			buf[j] = '.'
		}
		copy(buf[100:], "needle-in-flow")
		d.Handle(netsim.Segment{Flow: key(i, 9999), Seq: 0, Payload: buf})
		// Immediately scribble over the buffer, as the next read would.
		for j := range buf {
			buf[j] = 'X'
		}
	}
	d.Close()
	if len(alerts) != flowsN {
		t.Fatalf("got %d alerts, want %d: recycled read buffer corrupted queued segments", len(alerts), flowsN)
	}
}

// TestDispatcherArenaExhaustionIdentical runs the pipeline on an arena
// so small every rent overflows to the heap, proving overflow mode is
// alert-identical and the overflow gauge counts it.
func TestDispatcherArenaExhaustionIdentical(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{}
	for i := 0; i < 12; i++ {
		payload := bytes.Repeat([]byte("filler bytes here "), 30)
		copy(payload[50:], "generic-bad-001")
		flows[key(i, 9999)] = payload
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{
		MTU: 64, Jitter: 8, FIN: true, Seed: 5,
	})

	want := dispatchAll(t, set, segs, 2, true)

	tiny := arena.New(arena.Config{MaxBytes: 64}) // one rent fills the cap
	var mu sync.Mutex
	var got []Alert
	sink := func(a Alert) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}
	e, err := NewEngine(set, vpatch.Options{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	d := e.NewDispatcher(2, netsim.Limits{}, sink)
	d.SetArena(tiny)
	d.HandleBatch(segs)
	d.Close()
	sortAlerts(got)

	if len(want) == 0 || !reflect.DeepEqual(want, got) {
		t.Fatalf("overflow-mode alerts differ: %d vs %d", len(got), len(want))
	}
	if st := tiny.Stats(); st.Overflows == 0 {
		t.Fatal("expected overflow rents under a 64-byte cap")
	} else if st.InUse != 0 {
		t.Fatalf("arena InUse = %d after Close", st.InUse)
	}
}

// TestReleaseAfterDispatcherClose: chunks the capture loop rented but
// never handed off must still release cleanly after the dispatcher is
// gone (the arena outlives any one dispatcher).
func TestReleaseAfterDispatcherClose(t *testing.T) {
	a := arena.New(arena.Config{})
	set := mixedRuleSet()
	drop := func(Alert) {}
	e, err := NewEngine(set, vpatch.Options{}, drop)
	if err != nil {
		t.Fatal(err)
	}
	d := e.NewDispatcher(2, netsim.Limits{}, drop)
	d.SetArena(a)

	b := a.Rent(512)
	copy(b.Data(), "generic-bad-001")
	var seg netsim.Segment
	seg.Flow = key(1, 9999)
	seg.Payload = b.Data()[:64]
	seg.SetOwned(b)
	d.Handle(seg)
	d.Close()

	stray := a.Rent(128) // rented before Close, released after
	stray.Release()
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena InUse = %d after close+release", st.InUse)
	}
}

// TestIngestAllocs is the CI allocation-regression gate: once the
// pipeline is warm (flows established, slab pool and arena primed,
// batch buffers grown), the capture→dispatch→reassembly→scan path must
// run allocation-free — the tentpole property of the recycled ingest
// path.
func TestIngestAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is timing-insensitive but not short")
	}
	set := mixedRuleSet()
	drop := func(Alert) {}
	e, err := NewEngine(set, vpatch.Options{}, drop)
	if err != nil {
		t.Fatal(err)
	}
	a := arena.New(arena.Config{})
	d := e.NewDispatcher(2, netsim.Limits{MaxFlows: 256}, drop)
	d.SetArena(a)

	const (
		flowsN  = 64
		perCall = 512
		segLen  = 120
	)
	template := bytes.Repeat([]byte("steady state ingest "), 6)[:segLen]
	copy(template[40:], "generic-bad-001") // occasional real match work
	seqs := make([]uint32, flowsN)
	batch := make([]netsim.Segment, 0, 64)

	feed := func(n int) {
		for i := 0; i < n; i++ {
			f := i % flowsN
			b := a.Rent(segLen)
			data := b.Data()[:segLen]
			copy(data, template)
			var seg netsim.Segment
			seg.Flow = key(f, 9999)
			seg.Seq = seqs[f]
			seg.Payload = data
			seg.SetOwned(b)
			seqs[f] += segLen
			batch = append(batch, seg)
			if len(batch) == cap(batch) {
				d.HandleBatch(batch)
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			d.HandleBatch(batch)
			batch = batch[:0]
		}
	}

	// Warm every layer: flow states, sessions, slab pool, arena
	// classes, group-batch buffers. The chunk pool grows until it
	// covers the maximum in-flight window (slab backpressure bounds
	// it), so warm well past that plateau.
	for i := 0; i < 64; i++ {
		feed(perCall)
	}
	d.FlushAll()

	avg := testing.AllocsPerRun(10, func() { feed(perCall) })
	d.Close()
	perSeg := avg / perCall
	t.Logf("steady-state ingest: %.4f allocs/run (%.6f allocs/segment)", avg, perSeg)
	// The contract is 0 allocs/segment; allow a whisper of slack for
	// runtime-internal noise (timer wheel, GC assists) unrelated to
	// the per-segment path.
	if avg > 8 {
		t.Fatalf("steady-state ingest allocates: %.2f allocs per %d segments", avg, perCall)
	}
}

// BenchmarkIngestBatched measures the batched owned-segment fast path
// end to end, reporting segments/s.
func BenchmarkIngestBatched(b *testing.B) {
	set := mixedRuleSet()
	drop := func(Alert) {}
	e, err := NewEngine(set, vpatch.Options{}, drop)
	if err != nil {
		b.Fatal(err)
	}
	for _, segLen := range []int{64, 512, 1460} {
		b.Run(fmt.Sprintf("seg%d", segLen), func(b *testing.B) {
			a := arena.New(arena.Config{})
			d := e.NewDispatcher(4, netsim.Limits{MaxFlows: 1024}, drop)
			d.SetArena(a)
			const flowsN = 256
			template := bytes.Repeat([]byte{'x'}, segLen)
			seqs := make([]uint32, flowsN)
			batch := make([]netsim.Segment, 0, 64)
			b.SetBytes(int64(segLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := i % flowsN
				buf := a.Rent(segLen)
				data := buf.Data()[:segLen]
				copy(data, template)
				var seg netsim.Segment
				seg.Flow = key(f, 9999)
				seg.Seq = seqs[f]
				seg.Payload = data
				seg.SetOwned(buf)
				seqs[f] += uint32(segLen)
				batch = append(batch, seg)
				if len(batch) == cap(batch) {
					d.HandleBatch(batch)
					batch = batch[:0]
				}
			}
			d.HandleBatch(batch)
			b.StopTimer()
			d.Close()
		})
	}
}
