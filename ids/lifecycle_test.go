package ids

// Flow-lifecycle tests: teardown and eviction semantics of the shard,
// the multi-shard dispatcher, the shared port-classification table, and
// the end-to-end property test feeding adversarial traffic (reorder,
// duplicates, overlapping retransmits, teardown) through a multi-shard
// pipeline and asserting alert-identity with direct per-stream scans.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
)

// TestPortTableSharedWithRuleParser: flow routing and rule bucketing
// must classify every service port identically — both go through
// patterns.ServicePorts, and a rule written for any table port must
// alert on a flow to that port. 443 and 8000 are the historical drift
// (counted as HTTP by the flow side only).
func TestPortTableSharedWithRuleParser(t *testing.T) {
	for port, want := range patterns.ServicePorts {
		if got := protoForPort(port); got != want {
			t.Fatalf("port %d: flow side %v, table %v", port, got, want)
		}
	}
	if protoForPort(9999) != vpatch.ProtoGeneric {
		t.Fatal("unlisted port must classify generic")
	}

	// End to end for every table port: parse a rule targeting the port,
	// build the pipeline, and send the payload to a flow on that port.
	for port, proto := range patterns.ServicePorts {
		pat := fmt.Sprintf("attack-on-%d", port)
		rule := fmt.Sprintf("alert tcp any any -> any %d (msg:\"t\"; content:\"%s\"; sid:1;)", port, pat)
		set, err := patterns.ParseRules(strings.NewReader(rule), patterns.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Patterns()[0].Proto; got != proto {
			t.Fatalf("port %d: rule parsed into %v group, flows route to %v", port, got, proto)
		}
		var alerts []Alert
		e, err := NewEngine((*vpatch.PatternSet)(set), vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
		if err != nil {
			t.Fatal(err)
		}
		e.HandleSegment(netsim.Segment{Flow: key(1, port), Seq: 0, Payload: []byte("xx " + pat + " yy")})
		e.Flush()
		if len(alerts) != 1 {
			t.Fatalf("port %d: rule compiled into a group its flows never scan (%d alerts)", port, len(alerts))
		}
	}
}

// TestTeardownReleasesFlowState: a FIN-completed flow releases its scan
// state; its alerts still surface, and late retransmits do not
// re-alert.
func TestTeardownReleasesFlowState(t *testing.T) {
	set := mixedRuleSet()
	var alerts []Alert
	e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("xx http-attack-xyz yy")
	e.HandleSegment(netsim.Segment{Flow: key(1, 80), Seq: 0, Payload: payload, Flags: netsim.FlagFIN})
	if got := e.def.Flows(); got != 0 {
		t.Fatalf("scan state for %d flows retained after teardown", got)
	}
	e.Flush()
	if len(alerts) != 1 || alerts[0].StreamOffset != 3 {
		t.Fatalf("alerts after teardown: %+v", alerts)
	}
	// Late retransmit: tombstoned, no duplicate alert.
	e.HandleSegment(netsim.Segment{Flow: key(1, 80), Seq: 0, Payload: payload})
	e.Flush()
	if len(alerts) != 1 {
		t.Fatalf("late retransmit re-alerted: %d alerts", len(alerts))
	}
	st := e.Stats()
	if st.FlowsClosed != 1 || st.BytesDropped != uint64(len(payload)) {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvictionFlushesEnqueuedJobs: evicting a flow must flush its
// group's pending scan jobs first, so alerts already enqueued for the
// evicted flow are delivered, and the carry is released.
func TestEvictionFlushesEnqueuedJobs(t *testing.T) {
	set := mixedRuleSet()
	var alerts []Alert
	e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	e.SetWatermarks(1<<20, 1<<30) // watermarks never trigger on their own
	e.SetLimits(netsim.Limits{MaxFlows: 1})

	e.HandleSegment(netsim.Segment{Flow: key(1, 80), Seq: 0,
		Payload: []byte("xx http-attack-xyz yy"), TsMicros: 1})
	if len(alerts) != 0 {
		t.Fatal("job flushed before any watermark or eviction")
	}
	// A second flow exceeds the cap: flow 1 is evicted, and its
	// enqueued job must be scanned on the way out.
	e.HandleSegment(netsim.Segment{Flow: key(2, 80), Seq: 0,
		Payload: []byte("quiet"), TsMicros: 2})
	if len(alerts) != 1 || alerts[0].Flow != key(1, 80) {
		t.Fatalf("eviction lost enqueued alerts: %+v", alerts)
	}
	st := e.Stats()
	if st.FlowsEvicted != 1 || st.Flows != 1 || st.PeakFlows != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// propRuleSet builds a rule set over a tiny alphabet (so matches occur
// naturally and overlap) spread across protocol groups, with a nocase
// pattern in the mix.
func propRuleSet() *vpatch.PatternSet {
	set := vpatch.NewPatternSet()
	set.Add([]byte("abca"), false, vpatch.ProtoGeneric)
	set.Add([]byte("bcab"), false, vpatch.ProtoHTTP)
	set.Add([]byte("cabc"), false, vpatch.ProtoDNS)
	set.Add([]byte("dd"), false, vpatch.ProtoGeneric)
	set.Add([]byte("http-evil-sig"), false, vpatch.ProtoHTTP)
	set.Add([]byte("CaseMix"), true, vpatch.ProtoHTTP)
	set.Add([]byte("ftp-evil-sig"), false, vpatch.ProtoFTP)
	return set
}

// TestPipelineReorderOverlapTeardownProperty: random streams are
// packetized with reordering, duplication, overlapping retransmits and
// FIN teardown, fed through a 3-shard dispatcher, and the resulting
// alerts must equal — as multisets — a direct FindAll of each stream
// against its flow's rule group, for all seven algorithms. Run with
// -race this is also the dispatcher's concurrency test.
func TestPipelineReorderOverlapTeardownProperty(t *testing.T) {
	algos := []vpatch.Algorithm{
		vpatch.AlgoVPatch, vpatch.AlgoSPatch, vpatch.AlgoDFC, vpatch.AlgoVectorDFC,
		vpatch.AlgoAhoCorasick, vpatch.AlgoWuManber, vpatch.AlgoFFBF,
	}
	set := propRuleSet()
	ports := []uint16{80, 443, 8000, 53, 21, 25, 9999}
	for _, alg := range algos {
		for trial := 0; trial < 3; trial++ {
			seed := int64(1000*int(alg) + trial)
			rng := rand.New(rand.NewSource(seed))

			flows := make(map[netsim.FlowKey][]byte)
			for i := 0; i < 5+rng.Intn(4); i++ {
				data := make([]byte, 512+rng.Intn(8192))
				for j := range data {
					data[j] = byte('a' + rng.Intn(4))
				}
				// Inject patterns of every group — cross-group hits
				// must NOT alert, same-group hits must.
				for _, inj := range []string{"http-evil-sig", "ftp-evil-sig", "casemix", "CASEMIX"} {
					if pos := rng.Intn(len(data)); pos+len(inj) <= len(data) {
						copy(data[pos:], inj)
					}
				}
				flows[key(i, ports[rng.Intn(len(ports))])] = data
			}
			segs := netsim.Packetize(flows, netsim.PacketizeOptions{
				MTU:           96 + rng.Intn(512),
				Jitter:        rng.Intn(12),
				DuplicateFrac: 0.1,
				OverlapFrac:   0.25,
				FIN:           true,
				Seed:          seed,
			})

			e, err := NewEngine(set, vpatch.Options{Algorithm: alg}, func(Alert) {})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var got []Alert
			d := e.NewDispatcher(3, netsim.Limits{}, func(a Alert) {
				mu.Lock()
				got = append(got, a)
				mu.Unlock()
			})
			for _, s := range segs {
				d.Handle(s)
			}
			stats := d.Close()

			var want []Alert
			for k, data := range flows {
				g := e.groupFor(k)
				for _, m := range g.eng.FindAll(data) {
					want = append(want, Alert{Flow: k, StreamOffset: int64(m.Pos), PatternID: g.origID[m.PatternID], RuleID: -1})
				}
			}
			sortAlerts(got)
			sortAlerts(want)
			if len(got) != len(want) {
				t.Fatalf("%v seed %d: pipeline %d alerts, direct scan %d", alg, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v seed %d: alert %d: pipeline %+v, direct %+v", alg, seed, i, got[i], want[i])
				}
			}
			if stats.PendingBytes != 0 {
				t.Fatalf("%v seed %d: %d out-of-order bytes leaked", alg, seed, stats.PendingBytes)
			}
			if stats.FlowsClosed != uint64(len(flows)) {
				t.Fatalf("%v seed %d: %d of %d flows tore down", alg, seed, stats.FlowsClosed, len(flows))
			}
			if stats.FlowsEvicted != 0 {
				t.Fatalf("%v seed %d: evictions with unlimited limits: %+v", alg, seed, stats)
			}
		}
	}
}

// TestDispatcherPartitionsAndMerges: the dispatcher must deliver
// exactly the single-shard alert multiset, keep each flow on one shard,
// and merge per-shard stats at Close.
func TestDispatcherPartitionsAndMerges(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("xx http-attack-xyz yy generic-bad-001 zz"),
		key(2, 53): []byte("query dns-poison-abc generic-bad-001 end"),
		key(3, 21): []byte("USER x ftp-bounce-q PASS generic-bad-001"),
		key(4, 80): []byte("GET / http-attack-xyz http-attack-xyz"),
		key(5, 25): []byte("MAIL FROM generic-bad-001"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 13, Jitter: 4, FIN: true, Seed: 6})

	want := collect(t, set, segs)
	if len(want) == 0 {
		t.Fatal("test needs alerts")
	}

	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Alert
	d := e.NewDispatcher(4, netsim.Limits{MaxFlows: 64}, func(a Alert) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	})
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d", d.Shards())
	}
	perShard := d.InstrumentCounters()
	for _, s := range segs {
		d.Handle(s)
	}
	st := d.Close()
	st2 := d.Close() // idempotent
	if st != st2 {
		t.Fatalf("Close not idempotent: %+v vs %+v", st, st2)
	}

	sortAlerts(got)
	w := append([]Alert(nil), want...)
	sortAlerts(w)
	if len(got) != len(w) {
		t.Fatalf("dispatcher %d alerts, single shard %d", len(got), len(w))
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("alert %d: dispatcher %+v, single shard %+v", i, got[i], w[i])
		}
	}
	if st.FlowsClosed != uint64(len(flows)) {
		t.Fatalf("merged stats missed teardowns: %+v", st)
	}

	// Scan instrumentation: per-shard counters merge with the
	// lifecycle stats into one figure set. Matches counts raw engine
	// hits (>= alerts: carry-prefix suppression happens after
	// counting).
	var c vpatch.Counters
	for _, pc := range perShard {
		c.Add(pc)
	}
	st.MergeInto(&c)
	totalPayload := 0
	for _, data := range flows {
		totalPayload += len(data)
	}
	if c.BytesScanned < uint64(totalPayload) {
		t.Fatalf("counters scanned %d bytes, capture carries %d", c.BytesScanned, totalPayload)
	}
	if c.Matches < uint64(len(got)) {
		t.Fatalf("counters report %d matches, %d alerts emitted", c.Matches, len(got))
	}
}

// BenchmarkFlowChurn: 1M+ short-lived flows (out-of-order two-segment
// bodies plus FIN, reusing the caller's payload buffer) through a
// capped pipeline. Memory must stay bounded: tracked flows never exceed
// the cap, no out-of-order bytes leak, and every flow's alert is
// delivered. Allocations are reported; steady state must not leak per
// flow (the map, LRU and buffer pools recycle).
func BenchmarkFlowChurn(b *testing.B) {
	set := vpatch.NewPatternSet()
	set.Add([]byte("http-attack-xyz"), false, vpatch.ProtoHTTP)
	set.Add([]byte("generic-bad-001"), false, vpatch.ProtoGeneric)
	var alerts uint64
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) { alerts++ })
	if err != nil {
		b.Fatal(err)
	}
	const flowCap = 1024
	e.SetLimits(netsim.Limits{
		MaxFlows:          flowCap,
		IdleTimeoutMicros: 1_000_000,
		FlowPendingBytes:  16 << 10,
		TotalPendingBytes: 1 << 20,
	})

	payload := []byte("GET /index.html HTTP/1.1\r\nHost: a\r\nhttp-attack-xyz\r\n\r\n")
	half := len(payload) / 2
	buf := make([]byte, len(payload)) // reused per segment, like a pcap read loop
	const flowsPerOp = 1_100_000
	bytesPerFlow := int64(len(payload))

	b.ReportAllocs()
	b.SetBytes(bytesPerFlow * flowsPerOp)
	b.ResetTimer()
	// Engine stats are cumulative across iterations: assert per-op
	// deltas so the benchmark is correct for any b.N. The capture
	// clock (ts) also runs on across iterations.
	var prevClosed uint64
	ts := uint64(1)
	for n := 0; n < b.N; n++ {
		alerts = 0
		for f := 0; f < flowsPerOp; f++ {
			k := netsim.FlowKey{SrcIP: uint32(f), DstIP: 0x7F000001,
				SrcPort: uint16(f), DstPort: 80}
			// Tail first (buffered out of order, carries FIN), then head.
			copy(buf, payload)
			e.HandleSegment(netsim.Segment{Flow: k, Seq: uint32(half),
				Payload: buf[half:], TsMicros: ts, Flags: netsim.FlagFIN})
			e.HandleSegment(netsim.Segment{Flow: k, Seq: 0,
				Payload: buf[:half], TsMicros: ts + 1})
			ts += 2
			if f&0xFFFF == 0 {
				if got := e.Flows(); got > flowCap {
					b.Fatalf("flow %d: %d tracked flows exceed cap %d", f, got, flowCap)
				}
			}
		}
		e.Flush()
		st := e.Stats()
		if st.Flows > flowCap || st.PeakFlows > flowCap {
			b.Fatalf("cap breached: %+v (cap %d)", st, flowCap)
		}
		if st.PendingBytes != 0 {
			b.Fatalf("out-of-order bytes leaked: %+v", st)
		}
		if st.FlowsClosed-prevClosed != flowsPerOp {
			b.Fatalf("%d of %d flows tore down this op (%+v)", st.FlowsClosed-prevClosed, flowsPerOp, st)
		}
		prevClosed = st.FlowsClosed
		if alerts != flowsPerOp {
			b.Fatalf("%d alerts for %d flows: churn lost or duplicated alerts", alerts, flowsPerOp)
		}
	}
	st := e.Stats()
	b.ReportMetric(float64(st.PeakFlows), "peak-flows")
	b.ReportMetric(flowsPerOp, "flows/op")
}
