package ids

import (
	"sort"
	"sync"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func key(i int, port uint16) netsim.FlowKey {
	return netsim.FlowKey{SrcIP: 0x0A000001 + uint32(i), DstIP: 0xC0A80001,
		SrcPort: uint16(40000 + i), DstPort: port}
}

func mixedRuleSet() *vpatch.PatternSet {
	set := vpatch.NewPatternSet()
	set.Add([]byte("http-attack-xyz"), false, vpatch.ProtoHTTP)
	set.Add([]byte("dns-poison-abc"), false, vpatch.ProtoDNS)
	set.Add([]byte("generic-bad-001"), false, vpatch.ProtoGeneric)
	set.Add([]byte("ftp-bounce-q"), false, vpatch.ProtoFTP)
	return set
}

func collect(t *testing.T, set *vpatch.PatternSet, segs []netsim.Segment) []Alert {
	t.Helper()
	var alerts []Alert
	e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		e.HandleSegment(s)
	}
	e.Flush()
	return alerts
}

func TestNewEngineRejectsNilSink(t *testing.T) {
	if _, err := NewEngine(mixedRuleSet(), vpatch.Options{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestGroupRouting(t *testing.T) {
	set := mixedRuleSet()
	httpStream := []byte("GET / HTTP/1.1 http-attack-xyz generic-bad-001 dns-poison-abc")
	dnsStream := []byte("query dns-poison-abc generic-bad-001 http-attack-xyz")
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): httpStream,
		key(2, 53): dnsStream,
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 16, Seed: 1})
	alerts := collect(t, set, segs)

	byFlow := map[uint16][]int32{}
	for _, a := range alerts {
		byFlow[a.Flow.DstPort] = append(byFlow[a.Flow.DstPort], a.PatternID)
	}
	// HTTP flow: http pattern (0) + generic (2); the dns pattern in the
	// payload must NOT alert (wrong group).
	wantHTTP := []int32{0, 2}
	wantDNS := []int32{1, 2}
	checkIDs(t, "http flow", byFlow[80], wantHTTP)
	checkIDs(t, "dns flow", byFlow[53], wantDNS)
}

func checkIDs(t *testing.T, what string, got, want []int32) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: alerts %v, want pattern IDs %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: alerts %v, want pattern IDs %v", what, got, want)
		}
	}
}

func TestAlertsCarryOriginalPatternIDs(t *testing.T) {
	// The FTP pattern has original ID 3 but is pattern 1 inside its
	// group subset; alerts must carry 3.
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 21): []byte("USER x ftp-bounce-q PASS"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{Seed: 2})
	alerts := collect(t, set, segs)
	if len(alerts) != 1 || alerts[0].PatternID != 3 {
		t.Fatalf("alerts %+v, want single alert with original ID 3", alerts)
	}
}

func TestUnknownServiceUsesGenericGroup(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 9999): []byte("generic-bad-001 and http-attack-xyz here"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{Seed: 3})
	alerts := collect(t, set, segs)
	if len(alerts) != 1 || alerts[0].PatternID != 2 {
		t.Fatalf("generic routing wrong: %+v", alerts)
	}
}

func TestMatchesSpanningSegmentsAndReordering(t *testing.T) {
	set := vpatch.NewPatternSet()
	set.Add([]byte("SPANNING-ATTACK-PATTERN"), false, vpatch.ProtoHTTP)
	payload := make([]byte, 8<<10)
	for i := range payload {
		payload[i] = 'x'
	}
	copy(payload[4000:], "SPANNING-ATTACK-PATTERN")
	flows := map[netsim.FlowKey][]byte{key(1, 80): payload}
	// Tiny MTU + heavy jitter: the pattern spans many segments arriving
	// out of order.
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{
		MTU: 7, Jitter: 10, DuplicateFrac: 0.15, Seed: 5,
	})
	alerts := collect(t, set, segs)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	if alerts[0].StreamOffset != 4000 {
		t.Fatalf("alert offset %d, want 4000", alerts[0].StreamOffset)
	}
}

// End-to-end cross-check: the pipeline must report exactly the matches a
// direct scan of each reassembled stream against its applicable subset
// reports.
func TestEndToEndAgainstDirectScan(t *testing.T) {
	full := patterns.GenerateS1(5).Subset(150, 2)
	set := vpatch.PatternSet(*full)
	flows := map[netsim.FlowKey][]byte{
		key(1, 80):   traffic.Synthesize(traffic.ISCXDay2, 16<<10, 1, full),
		key(2, 80):   traffic.Synthesize(traffic.ISCXDay6, 16<<10, 2, full),
		key(3, 9999): traffic.Synthesize(traffic.DARPA2000, 16<<10, 3, full),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{
		MTU: 1000, Jitter: 5, DuplicateFrac: 0.05, Seed: 9,
	})
	alerts := collect(t, &set, segs)

	// Reference: per flow, scan the whole stream with the flow's subset.
	want := 0
	for k, data := range flows {
		proto := vpatch.ProtoHTTP
		if k.DstPort == 9999 {
			proto = vpatch.ProtoGeneric
		}
		for i := range set.Patterns() {
			p := &set.Patterns()[i]
			if p.Proto != proto && p.Proto != vpatch.ProtoGeneric {
				continue
			}
			for pos := 0; pos < len(data); pos++ {
				if p.MatchesAt(data, pos) {
					want++
				}
			}
		}
	}
	if len(alerts) != want {
		t.Fatalf("pipeline reported %d alerts, direct scan %d", len(alerts), want)
	}
}

func TestGroupSizesAndDiagnostics(t *testing.T) {
	set := mixedRuleSet()
	var alerts []Alert
	e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	sizes := e.GroupSizes()
	// Each protocol group = its rule + the generic rule.
	if sizes[vpatch.ProtoHTTP] != 2 || sizes[vpatch.ProtoDNS] != 2 || sizes[vpatch.ProtoGeneric] != 1 {
		t.Fatalf("group sizes %v", sizes)
	}
	if e.Flows() != 0 || e.PendingBytes() != 0 {
		t.Fatal("fresh engine has state")
	}
	e.HandleSegment(netsim.Segment{Flow: key(1, 80), Seq: 0, Payload: []byte("x")})
	if e.Flows() != 1 {
		t.Fatalf("Flows = %d", e.Flows())
	}
}

// TestShardsSharePipeline: the engine's compiled groups serve several
// worker shards concurrently — flows partitioned across shards, one
// goroutine per shard — and the union of alerts equals a single-shard
// run. Under -race this also proves shards never write shared state.
func TestShardsSharePipeline(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("xx http-attack-xyz yy generic-bad-001 zz"),
		key(2, 53): []byte("query dns-poison-abc generic-bad-001 end"),
		key(3, 21): []byte("USER x ftp-bounce-q PASS generic-bad-001"),
		key(4, 80): []byte("GET / http-attack-xyz http-attack-xyz"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 11, Seed: 6})

	want := len(collect(t, set, segs))
	if want == 0 {
		t.Fatal("test needs alerts")
	}

	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	const nShards = 2
	counts := make([]int, nShards)
	shards := make([]*Shard, nShards)
	for i := range shards {
		i := i
		shards[i] = e.NewShard(func(Alert) { counts[i]++ })
	}
	// Partition segments by flow (src port parity) and feed each shard
	// on its own goroutine.
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, s := range segs {
				if int(s.Flow.SrcPort)%nShards == i {
					shards[i].HandleSegment(s)
				}
			}
			shards[i].Flush()
		}(i)
	}
	wg.Wait()
	got := counts[0] + counts[1]
	if got != want {
		t.Fatalf("sharded alerts %d (=%v), single-shard %d", got, counts, want)
	}
	if shards[0].Flows()+shards[1].Flows() != len(flows) {
		t.Fatalf("flow partition lost flows: %d + %d, want %d",
			shards[0].Flows(), shards[1].Flows(), len(flows))
	}
}

// TestBatchWatermarksAndFlush: alerts surface when a group batch hits
// the buffer-count watermark (no explicit Flush needed), partial
// batches wait for Flush, and the batched pipeline reports exactly the
// alerts a scan-per-payload configuration (watermark 1) reports.
func TestBatchWatermarksAndFlush(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): traffic.Synthesize(traffic.ISCXDay2, 8<<10, 1, nil),
		key(2, 80): traffic.Synthesize(traffic.ISCXDay6, 8<<10, 2, nil),
	}
	for k := range flows {
		flows[k] = append(flows[k], "http-attack-xyz and generic-bad-001"...)
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 256, Jitter: 3, Seed: 8})

	run := func(maxBufs, maxBytes int, explicitFlush bool) []Alert {
		var alerts []Alert
		e, err := NewEngine(set, vpatch.Options{}, func(a Alert) { alerts = append(alerts, a) })
		if err != nil {
			t.Fatal(err)
		}
		e.SetWatermarks(maxBufs, maxBytes)
		for _, s := range segs {
			e.HandleSegment(s)
		}
		if explicitFlush {
			e.Flush()
			if n := e.def.PendingScanBufs(); n != 0 {
				t.Fatalf("%d buffers still pending after Flush", n)
			}
		}
		return alerts
	}

	// Watermark 1 = scan-per-payload; nothing pends, Flush is a no-op.
	want := run(1, 1<<30, true)
	if len(want) == 0 {
		t.Fatal("test needs alerts")
	}
	got := run(16, 1<<30, true)
	sortAlerts(want)
	sortAlerts(got)
	if len(got) != len(want) {
		t.Fatalf("batched pipeline: %d alerts, scan-per-payload %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alert %d: batched %+v, scan-per-payload %+v", i, got[i], want[i])
		}
	}
	// Without Flush, the buffer-count watermark alone must still have
	// scanned most of the stream (only sub-watermark leftovers pend).
	partial := run(4, 1<<30, false)
	if len(partial) == 0 {
		t.Fatal("watermark never triggered a flush")
	}
	// Byte watermark alone must also trigger.
	byBytes := run(1<<30, 2048, false)
	if len(byBytes) == 0 {
		t.Fatal("byte watermark never triggered a flush")
	}
}

// sortAlerts orders alerts by (flow, offset, pattern) for comparison.
func sortAlerts(as []Alert) {
	sort.Slice(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.Flow != b.Flow {
			if a.Flow.SrcIP != b.Flow.SrcIP {
				return a.Flow.SrcIP < b.Flow.SrcIP
			}
			return a.Flow.SrcPort < b.Flow.SrcPort
		}
		if a.StreamOffset != b.StreamOffset {
			return a.StreamOffset < b.StreamOffset
		}
		return a.PatternID < b.PatternID
	})
}

func TestAllAlgorithmsThroughPipeline(t *testing.T) {
	set := mixedRuleSet()
	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("xx http-attack-xyz yy generic-bad-001 zz"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 9, Seed: 4})
	for _, alg := range []vpatch.Algorithm{
		vpatch.AlgoVPatch, vpatch.AlgoSPatch, vpatch.AlgoDFC,
		vpatch.AlgoAhoCorasick, vpatch.AlgoWuManber, vpatch.AlgoFFBF,
	} {
		var alerts []Alert
		e, err := NewEngine(set, vpatch.Options{Algorithm: alg}, func(a Alert) { alerts = append(alerts, a) })
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			e.HandleSegment(s)
		}
		e.Flush()
		if len(alerts) != 2 {
			t.Fatalf("%v: %d alerts, want 2", alg, len(alerts))
		}
	}
}
