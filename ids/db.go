package ids

// Whole-pipeline compiled databases: every per-protocol rule group of
// an Engine — each an independently compiled vpatch.Engine plus its
// subset-to-original pattern ID mapping — saved into one .vpdb file,
// so a production IDS compiles its rule set offline once and every
// worker process loads it in milliseconds. The container reuses the
// single-engine format: each group section nests a complete engine
// database, so every group is individually CRC- and digest-validated
// on load.

import (
	"fmt"
	"io"

	"vpatch"
	"vpatch/internal/dbfmt"
	"vpatch/internal/patterns"
	"vpatch/internal/rules"
)

// dbProtocols is the deterministic group order of the database file:
// the generic group first, then the dedicated protocol groups.
var dbProtocols = append([]vpatch.Protocol{vpatch.ProtoGeneric}, groupedProtocols...)

// SerializeDB flattens the engine's compiled rule groups into one
// database blob.
func (e *Engine) SerializeDB() ([]byte, error) {
	var pe dbfmt.Encoder
	patterns.EncodeSet(&pe, e.set)
	secs := []dbfmt.Section{{Tag: dbfmt.TagPatterns, Data: pe.Bytes()}}
	if e.rules != nil {
		// The rule tier rides in its own section over the same pattern
		// set; literal-only readers never look for it.
		var re dbfmt.Encoder
		e.rules.Encode(&re)
		secs = append(secs, dbfmt.Section{Tag: dbfmt.TagRules, Data: re.Bytes()})
	}
	h := dbfmt.Header{Kind: dbfmt.KindIDS, Digest: e.set.Digest()}
	first := true
	for _, proto := range dbProtocols {
		g := e.groups[proto]
		if g == nil {
			continue
		}
		blob, err := g.eng.Serialize()
		if err != nil {
			return nil, fmt.Errorf("ids: serializing %v group: %w", proto, err)
		}
		var ge dbfmt.Encoder
		ge.U8(uint8(proto))
		ge.Int32s(g.origID)
		ge.Blob(blob)
		secs = append(secs, dbfmt.Section{Tag: dbfmt.TagGroup, Data: ge.Bytes()})
		// All groups share one algorithm and width; record them from the
		// first group so tools can report them without decoding groups.
		if first {
			h.Algorithm = uint8(g.eng.Algorithm())
			h.Width = uint8(g.eng.VectorWidth())
			first = false
		}
	}
	return dbfmt.Encode(h, secs), nil
}

// WriteDB writes the serialized rule-group database to w.
func (e *Engine) WriteDB(w io.Writer) (int64, error) {
	blob, err := e.SerializeDB()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(blob)
	return int64(n), err
}

// LoadDB restores an Engine from a rule-group database blob, attaching
// a default shard that delivers alerts to emit (must be non-nil). The
// loaded engine is ready to HandleSegment immediately — no rule
// compilation happens. Like NewEngine's result, the compiled groups
// are immutable and shared: call NewShard per worker goroutine.
func LoadDB(data []byte, emit func(Alert)) (*Engine, error) {
	if emit == nil {
		return nil, fmt.Errorf("ids: nil alert sink")
	}
	h, secs, err := dbfmt.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ids: %w", err)
	}
	if h.Kind != dbfmt.KindIDS {
		if h.Kind == dbfmt.KindEngine {
			return nil, fmt.Errorf("ids: database holds a single engine, not an IDS rule-group database (load it with vpatch.Deserialize)")
		}
		return nil, fmt.Errorf("ids: unknown database kind %d", h.Kind)
	}
	psec := dbfmt.FindSection(secs, dbfmt.TagPatterns)
	if psec == nil {
		return nil, fmt.Errorf("ids: database has no pattern section")
	}
	pd := dbfmt.NewDecoder(psec)
	set, err := patterns.DecodeSet(pd)
	if err == nil {
		err = pd.Finish()
	}
	if err != nil {
		return nil, fmt.Errorf("ids: pattern section: %w", err)
	}
	if got := set.Digest(); got != h.Digest {
		return nil, fmt.Errorf("ids: pattern-set digest mismatch (header %#x, decoded %#x)", h.Digest, got)
	}

	e := &Engine{set: set, groups: make(map[vpatch.Protocol]*group)}
	if rsec := dbfmt.FindSection(secs, dbfmt.TagRules); rsec != nil {
		rset, err := rules.DecodeSet(rsec, set)
		if err != nil {
			return nil, fmt.Errorf("ids: rule section: %w", err)
		}
		e.rules = rset
	}
	for _, s := range secs {
		if s.Tag != dbfmt.TagGroup {
			continue
		}
		d := dbfmt.NewDecoder(s.Data)
		proto := vpatch.Protocol(d.U8())
		origID := d.Int32s()
		blob := d.Blob()
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("ids: group section: %w", err)
		}
		if _, dup := e.groups[proto]; dup {
			return nil, fmt.Errorf("ids: duplicate %v group", proto)
		}
		eng, err := vpatch.Deserialize(blob)
		if err != nil {
			return nil, fmt.Errorf("ids: %v group: %w", proto, err)
		}
		if eng.Set().Len() != len(origID) {
			return nil, fmt.Errorf("ids: %v group has %d patterns but %d id mappings",
				proto, eng.Set().Len(), len(origID))
		}
		for _, id := range origID {
			if id < 0 || int(id) >= set.Len() {
				return nil, fmt.Errorf("ids: %v group maps to pattern %d outside the %d-pattern set",
					proto, id, set.Len())
			}
		}
		e.groups[proto] = &group{eng: eng, origID: origID}
	}
	e.def = e.NewShard(emit)
	return e, nil
}

// ReadDB reads a complete rule-group database from r and restores the
// Engine (see LoadDB).
func ReadDB(r io.Reader, emit func(Alert)) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ids: reading database: %w", err)
	}
	return LoadDB(data, emit)
}
