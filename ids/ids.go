// Package ids assembles the full NIDS pipeline the paper's system model
// assumes around the matcher: captured segments are reassembled into
// per-flow protocol streams, each flow is matched only against the rule
// groups relevant to its service ("patterns are organized in groups,
// depending on the type of traffic ... the reassembled payload is
// matched only against patterns that are relevant", paper §V-A), and
// matches surface as alerts with flow context and absolute stream
// offsets.
//
// Rule groups are compiled exactly once, into immutable vpatch.Engines.
// The Engine type wraps one single-goroutine Shard for the common case;
// multi-core deployments call NewShard once per worker goroutine — every
// shard shares the compiled groups (the expensive state) and owns only
// its flow table, reassembler and scan sessions, so adding a worker
// costs scratch buffers, not a recompilation of the rule set.
package ids

import (
	"fmt"

	"vpatch"
	"vpatch/internal/netsim"
)

// Alert is one confirmed pattern occurrence in a flow's stream.
type Alert struct {
	Flow netsim.FlowKey
	// StreamOffset is the match position within the flow's reassembled
	// payload stream.
	StreamOffset int64
	// PatternID indexes the engine's original rule set.
	PatternID int32
}

// Engine holds the compiled per-protocol rule groups — immutable and
// shared — plus a default Shard so single-goroutine callers can feed it
// segments directly. The compiled groups may serve any number of
// Shards; Engine's own HandleSegment is single-goroutine (it drives the
// default shard).
type Engine struct {
	set    *vpatch.PatternSet
	groups map[vpatch.Protocol]*group

	def *Shard
}

// group is one compiled rule group: the protocol's own rules plus the
// generic rules, with the subset->original pattern ID mapping. The
// vpatch.Engine is immutable; every shard scans it through its own
// session.
type group struct {
	eng    *vpatch.Engine
	origID []int32 // subset pattern ID -> original set pattern ID
}

// Shard is one worker's view of the pipeline: it shares the Engine's
// compiled rule groups and owns everything mutable — the reassembler,
// the flow table, and one scan session per group. Flows must be
// partitioned across shards by the caller (hash the FlowKey); a Shard
// is single-goroutine, distinct Shards are fully independent.
type Shard struct {
	parent *Engine
	emit   func(Alert)

	reasm *netsim.Reassembler
	flows map[netsim.FlowKey]*flowScanner
	// sessions holds this shard's per-group scan state: one session per
	// compiled group, shared by all of the shard's flows (a shard is one
	// goroutine, so flows never scan concurrently).
	sessions map[*group]*vpatch.Session
}

type flowScanner struct {
	scanner *vpatch.StreamScanner
}

// protocols that get a dedicated group; anything else uses the generic
// group alone.
var groupedProtocols = []vpatch.Protocol{
	vpatch.ProtoHTTP, vpatch.ProtoDNS, vpatch.ProtoFTP, vpatch.ProtoSMTP,
}

// NewEngine compiles one matcher per protocol group from set, using opt
// for every group, and attaches a default shard delivering alerts to
// emit (must be non-nil).
func NewEngine(set *vpatch.PatternSet, opt vpatch.Options, emit func(Alert)) (*Engine, error) {
	if emit == nil {
		return nil, fmt.Errorf("ids: nil alert sink")
	}
	e := &Engine{
		set:    set,
		groups: make(map[vpatch.Protocol]*group),
	}
	// Generic-only group handles flows of unclassified services.
	if g, err := buildGroup(set, vpatch.ProtoGeneric, opt); err != nil {
		return nil, err
	} else if g != nil {
		e.groups[vpatch.ProtoGeneric] = g
	}
	for _, proto := range groupedProtocols {
		g, err := buildGroup(set, proto, opt)
		if err != nil {
			return nil, err
		}
		if g != nil {
			e.groups[proto] = g
		}
	}
	e.def = e.NewShard(emit)
	return e, nil
}

// buildGroup compiles the subset applicable to proto (its own rules +
// generic rules), remembering original pattern IDs. Returns nil when the
// subset is empty.
func buildGroup(set *vpatch.PatternSet, proto vpatch.Protocol, opt vpatch.Options) (*group, error) {
	sub := vpatch.NewPatternSet()
	var orig []int32
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		if p.Proto != proto && p.Proto != vpatch.ProtoGeneric {
			continue
		}
		id := sub.Add(p.Data, p.Nocase, p.Proto)
		if int(id) == len(orig) {
			orig = append(orig, p.ID)
		}
		// Duplicates inside the subset keep the first original ID.
	}
	if sub.Len() == 0 {
		return nil, nil
	}
	eng, err := vpatch.Compile(sub, opt)
	if err != nil {
		return nil, fmt.Errorf("ids: compiling %v group: %w", proto, err)
	}
	return &group{eng: eng, origID: orig}, nil
}

// NewShard returns a fresh worker shard over the engine's compiled rule
// groups, delivering its alerts to emit (must be non-nil). Shards are
// cheap — scratch buffers and maps, never a recompile — so one per
// worker goroutine is the intended deployment. Each shard must only see
// its own partition of the flows (reassembly state is per-shard).
func (e *Engine) NewShard(emit func(Alert)) *Shard {
	if emit == nil {
		panic("ids: nil alert sink")
	}
	s := &Shard{
		parent:   e,
		emit:     emit,
		flows:    make(map[netsim.FlowKey]*flowScanner),
		sessions: make(map[*group]*vpatch.Session, len(e.groups)),
	}
	s.reasm = netsim.NewReassembler(s.onPayload)
	return s
}

// GroupSizes reports the number of patterns compiled per protocol group.
func (e *Engine) GroupSizes() map[vpatch.Protocol]int {
	out := make(map[vpatch.Protocol]int, len(e.groups))
	for proto, g := range e.groups {
		out[proto] = g.eng.Set().Len()
	}
	return out
}

// protoForPort classifies a flow by its destination service port.
func protoForPort(port uint16) vpatch.Protocol {
	switch port {
	case 80, 8080, 8000, 443:
		return vpatch.ProtoHTTP
	case 53:
		return vpatch.ProtoDNS
	case 21:
		return vpatch.ProtoFTP
	case 25, 587:
		return vpatch.ProtoSMTP
	}
	return vpatch.ProtoGeneric
}

// groupFor picks the compiled group for a flow, falling back to the
// generic group when the service has no dedicated rules.
func (e *Engine) groupFor(k netsim.FlowKey) *group {
	if g, ok := e.groups[protoForPort(k.DstPort)]; ok {
		return g
	}
	return e.groups[vpatch.ProtoGeneric]
}

// HandleSegment feeds one captured segment through the default shard.
// Single-goroutine; multi-core callers use NewShard and feed each shard
// its flow partition.
func (e *Engine) HandleSegment(seg netsim.Segment) { e.def.HandleSegment(seg) }

// Flows returns the number of flows tracked by the default shard.
func (e *Engine) Flows() int { return e.def.Flows() }

// PendingBytes reports buffered out-of-order bytes in the default shard.
func (e *Engine) PendingBytes() int { return e.def.PendingBytes() }

// HandleSegment feeds one captured segment through reassembly and
// matching. Segments may arrive reordered or duplicated.
func (s *Shard) HandleSegment(seg netsim.Segment) { s.reasm.Add(seg) }

// session returns the shard's scan session for g, creating it on first
// use.
func (s *Shard) session(g *group) *vpatch.Session {
	sess := s.sessions[g]
	if sess == nil {
		sess = g.eng.NewSession()
		s.sessions[g] = sess
	}
	return sess
}

// onPayload receives contiguous stream bytes from the reassembler.
func (s *Shard) onPayload(k netsim.FlowKey, payload []byte) {
	fs := s.flows[k]
	if fs == nil {
		g := s.parent.groupFor(k)
		if g == nil {
			return // no rules apply to this service at all
		}
		flow := k
		sc, err := vpatch.NewStreamScanner(s.session(g), func(m vpatch.Match) {
			s.emit(Alert{
				Flow:         flow,
				StreamOffset: int64(m.Pos),
				PatternID:    g.origID[m.PatternID],
			})
		})
		if err != nil {
			// Construction only fails on nil arguments; unreachable here.
			panic(err)
		}
		fs = &flowScanner{scanner: sc}
		s.flows[k] = fs
	}
	if _, err := fs.scanner.Write(payload); err != nil {
		panic(err) // StreamScanner.Write never errors
	}
}

// Flows returns the number of flows tracked by this shard.
func (s *Shard) Flows() int { return len(s.flows) }

// PendingBytes reports buffered out-of-order bytes (diagnostic).
func (s *Shard) PendingBytes() int { return s.reasm.PendingBytes() }
