// Package ids assembles the full NIDS pipeline the paper's system model
// assumes around the matcher: captured segments are reassembled into
// per-flow protocol streams, each flow is matched only against the rule
// groups relevant to its service ("patterns are organized in groups,
// depending on the type of traffic ... the reassembled payload is
// matched only against patterns that are relevant", paper §V-A), and
// matches surface as alerts with flow context and absolute stream
// offsets.
//
// The compiled rule groups serialize as one database file
// (Engine.WriteDB / ReadDB), so production deployments compile the
// rule set offline once — `vpatch-compile -ids` — and every worker
// process loads it at startup instead of recompiling five overlapping
// group subsets.
//
// Rule groups are compiled exactly once, into immutable vpatch.Engines.
// The Engine type wraps one single-goroutine Shard for the common case;
// multi-core deployments call NewShard once per worker goroutine — every
// shard shares the compiled groups (the expensive state) and owns only
// its flow table, reassembler and scan sessions, so adding a worker
// costs scratch buffers, not a recompilation of the rule set.
//
// Scanning is batched: reassembled payloads accumulate per protocol
// group and flush through vpatch.Session.ScanBatch once a group reaches
// a buffer-count or byte watermark, so V-PATCH's lane-per-packet
// filtering sees whole batches of (mostly small) payloads instead of
// one Scan call each. Alerts therefore surface at flush time; call
// Flush after the last segment (or on a latency deadline) to drain
// partial batches.
//
// # Flow lifecycle and memory bounds
//
// Shards manage connection lifecycle so memory stays bounded on real
// traffic: FIN/RST segments tear flows down (the flow's carry is
// released; alerts from already-enqueued scan jobs still surface at the
// next flush), and Shard.SetLimits arms a hard cap on tracked flows, an
// idle timeout on the capture clock, and out-of-order byte budgets (see
// netsim.Limits for the drop policy). Evicting an open flow first
// flushes its group's pending scan jobs, so no enqueued alert is lost.
// Shard.Stats reports the lifecycle counters (evictions, teardowns,
// dropped bytes, peak flows).
//
// For multi-core capture, Engine.NewDispatcher hash-partitions flows
// across N worker shards, each on its own goroutine.
package ids

import (
	"fmt"

	"vpatch"
	"vpatch/internal/arena"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/resil"
	"vpatch/internal/resil/chaos"
	"vpatch/internal/rules"
)

// Alert is one confirmed detection in a flow's stream. Engines built
// from a plain pattern set (NewEngine) emit one alert per literal
// occurrence; rule-conditioned engines (NewRuleEngine) emit one alert
// per completed rule, at most once per rule per flow.
type Alert struct {
	Flow netsim.FlowKey
	// StreamOffset is the alert position within the flow's reassembled
	// payload stream: the literal occurrence's start, or — for rule
	// alerts — the start of the rule's final clause match.
	StreamOffset int64
	// PatternID indexes the engine's original pattern set; -1 on rule
	// alerts (a rule spans several literals).
	PatternID int32
	// RuleID indexes the engine's rule set (rules.Set order); -1 on
	// literal alerts.
	RuleID int32
}

// Engine holds the compiled per-protocol rule groups — immutable and
// shared — plus a default Shard so single-goroutine callers can feed it
// segments directly. The compiled groups may serve any number of
// Shards; Engine's own HandleSegment is single-goroutine (it drives the
// default shard).
type Engine struct {
	set    *vpatch.PatternSet
	groups map[vpatch.Protocol]*group
	// rules, when non-nil, layers the rule-semantics tier over the
	// groups: the groups prefilter the rule set's literals and every
	// shard evaluates clause conditions and regex tails on the hits
	// (see NewRuleEngine).
	rules *rules.Set

	def *Shard
}

// group is one compiled rule group: the protocol's own rules plus the
// generic rules, with the subset->original pattern ID mapping. The
// vpatch.Engine is immutable; every shard scans it through its own
// session.
type group struct {
	eng    *vpatch.Engine
	origID []int32 // subset pattern ID -> original set pattern ID
}

// Flush watermarks: a group's pending batch is scanned once it holds
// DefaultBatchBufs buffers or DefaultBatchBytes bytes, whichever comes
// first. Shard.SetWatermarks overrides per shard.
const (
	DefaultBatchBufs  = 32
	DefaultBatchBytes = 256 << 10
)

// Shard is one worker's view of the pipeline: it shares the Engine's
// compiled rule groups and owns everything mutable — the reassembler,
// the flow table, per-group pending batches, and one scan session per
// group. Flows must be partitioned across shards by the caller (hash
// the FlowKey); a Shard is single-goroutine, distinct Shards are fully
// independent.
type Shard struct {
	parent *Engine
	emit   func(Alert)

	reasm *netsim.Reassembler
	flows map[netsim.FlowKey]*flowState
	// sessions holds this shard's per-group scan state: one session per
	// compiled group, shared by all of the shard's flows (a shard is one
	// goroutine, so flows never scan concurrently).
	sessions map[*group]*vpatch.Session
	// pending accumulates scan jobs per group until a watermark flushes
	// them through ScanBatch.
	pending       map[*group]*groupBatch
	maxBatchBufs  int
	maxBatchBytes int
	// counters, when set, instruments every batch scan (see
	// SetCounters).
	counters *vpatch.Counters

	// Observer publication (see SetObserver): scans run against
	// obsScratch, which is folded into obsScan at every flush; flow
	// lifecycle stats are published into obsFlow at flushes and every
	// obsPublishEvery segments.
	obsScan      *metrics.Atomic
	obsFlow      *netsim.AtomicStats
	obsScratch   vpatch.Counters
	segsSinceObs int

	// Rule tier (rule-conditioned engines only): the shard's clause/
	// regex evaluator and the per-flush hit collection buffer (literal
	// hits are gathered per batch, ordered per buffer by match end, and
	// replayed through the evaluator — see evalRuleHits).
	ev       *rules.Eval
	ruleHits []ruleHit

	// vbudget, when armed, prices every flushed buffer's verifier work
	// and demotes over-budget flows to literal-only alerting (see
	// SetVerifierBudget).
	vbudget resil.VerifierBudget

	// quarantined holds flows whose segment handling panicked (see
	// recoverSegmentPanic); their later segments are dropped so one
	// poisoned flow cannot re-kill the shard.
	quarantined map[netsim.FlowKey]struct{}
}

// maxQuarantined bounds the quarantine set; beyond it, panicking flows
// are still torn down and counted but not blacklisted (a shard in that
// state has bigger problems than repeat offenders).
const maxQuarantined = 4096

// obsPublishEvery is how many segments a shard handles between
// flow-stats publications to its observer (flushes also publish). Low
// enough that scraped gauges track the pipeline closely, high enough
// that the atomic stores stay invisible next to reassembly work.
const obsPublishEvery = 64

// flowState is the per-flow stream bookkeeping the batched pipeline
// keeps between payload arrivals: the carry (last maxPatternLen-1
// stream bytes, so matches spanning payload boundaries are found) and
// the absolute stream offset. It advances at enqueue time — not at scan
// time — so several payloads of one flow can sit in the same batch and
// still chain correctly.
type flowState struct {
	key      netsim.FlowKey
	g        *group
	maxLen   int
	carry    []byte
	consumed int64 // stream bytes absorbed (end of carry)
	// vbudget is the flow's remaining verifier budget in modeled cycles
	// (budget-armed rule engines only); degraded marks a flow demoted
	// to literal-only alerting after exhaustion.
	vbudget  int64
	degraded bool
	// rstate is the flow's rule-evaluation progress (rule-conditioned
	// engines only, nil otherwise). It lives on the flowState — in
	// reassembly-ordered absolute stream offsets — so clause distance/
	// within spans and suspended regex verifications carry across
	// segment and batch boundaries exactly like the literal carry does.
	rstate *rules.FlowState
}

// groupBatch is one protocol group's pending scan jobs: the buffers
// (each carry+payload, copied so reassembler memory can be reused) and
// per-buffer metadata to translate matches back into stream alerts.
// Flushed buffers park on free and are recycled by the next payloads,
// so steady-state batching allocates nothing.
type groupBatch struct {
	bufs  [][]byte
	meta  []batchEntry
	bytes int
	free  [][]byte
	// onMatch is the batch's ScanBatch callback, built once — a fresh
	// closure per flush would put one heap allocation on the
	// steady-state ingest path.
	onMatch func(buf int, m vpatch.Match)
}

// takeBuf returns an empty buffer for a job of about n bytes,
// recycling a flushed one when available. An undersized recycled buffer
// is still returned — the caller's appends grow it and the grown buffer
// re-enters the pool, so the pool converges to right-sized buffers.
func (pb *groupBatch) takeBuf(n int) []byte {
	if k := len(pb.free); k > 0 {
		buf := pb.free[k-1]
		pb.free = pb.free[:k-1]
		return buf[:0]
	}
	return make([]byte, 0, n)
}

type batchEntry struct {
	fs       *flowState
	carryLen int   // prefix already scanned by an earlier batch
	base     int64 // stream offset of the buffer's first byte
}

// protocols that get a dedicated group; anything else uses the generic
// group alone.
var groupedProtocols = []vpatch.Protocol{
	vpatch.ProtoHTTP, vpatch.ProtoDNS, vpatch.ProtoFTP, vpatch.ProtoSMTP,
}

// NewEngine compiles one matcher per protocol group from set, using opt
// for every group, and attaches a default shard delivering alerts to
// emit (must be non-nil).
func NewEngine(set *vpatch.PatternSet, opt vpatch.Options, emit func(Alert)) (*Engine, error) {
	if emit == nil {
		return nil, fmt.Errorf("ids: nil alert sink")
	}
	e := &Engine{
		set:    set,
		groups: make(map[vpatch.Protocol]*group),
	}
	// Generic-only group handles flows of unclassified services.
	if g, err := buildGroup(set, vpatch.ProtoGeneric, opt); err != nil {
		return nil, err
	} else if g != nil {
		e.groups[vpatch.ProtoGeneric] = g
	}
	for _, proto := range groupedProtocols {
		g, err := buildGroup(set, proto, opt)
		if err != nil {
			return nil, err
		}
		if g != nil {
			e.groups[proto] = g
		}
	}
	e.def = e.NewShard(emit)
	return e, nil
}

// buildGroup compiles the subset applicable to proto (its own rules +
// generic rules), remembering original pattern IDs. Returns nil when the
// subset is empty.
func buildGroup(set *vpatch.PatternSet, proto vpatch.Protocol, opt vpatch.Options) (*group, error) {
	sub := vpatch.NewPatternSet()
	var orig []int32
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		if p.Proto != proto && p.Proto != vpatch.ProtoGeneric {
			continue
		}
		id := sub.Add(p.Data, p.Nocase, p.Proto)
		if int(id) == len(orig) {
			orig = append(orig, p.ID)
		}
		// Duplicates inside the subset keep the first original ID.
	}
	if sub.Len() == 0 {
		return nil, nil
	}
	eng, err := vpatch.Compile(sub, opt)
	if err != nil {
		return nil, fmt.Errorf("ids: compiling %v group: %w", proto, err)
	}
	return &group{eng: eng, origID: orig}, nil
}

// NewShard returns a fresh worker shard over the engine's compiled rule
// groups, delivering its alerts to emit (must be non-nil). Shards are
// cheap — scratch buffers and maps, never a recompile — so one per
// worker goroutine is the intended deployment. Each shard must only see
// its own partition of the flows (reassembly state is per-shard).
func (e *Engine) NewShard(emit func(Alert)) *Shard {
	if emit == nil {
		panic("ids: nil alert sink")
	}
	s := &Shard{
		parent:        e,
		emit:          emit,
		flows:         make(map[netsim.FlowKey]*flowState),
		sessions:      make(map[*group]*vpatch.Session, len(e.groups)),
		pending:       make(map[*group]*groupBatch, len(e.groups)),
		maxBatchBufs:  DefaultBatchBufs,
		maxBatchBytes: DefaultBatchBytes,
	}
	if e.rules != nil {
		s.ev = rules.NewEval(e.rules)
	}
	s.reasm = netsim.NewReassembler(s.onPayload)
	s.reasm.OnClose(s.onFlowClose)
	return s
}

// SetLimits arms the shard's flow-lifecycle bounds: flow cap, idle
// timeout and out-of-order byte budgets (see netsim.Limits). The zero
// value means unlimited — the polite-traffic mode; production shards
// facing real capture should always set limits.
func (s *Shard) SetLimits(l netsim.Limits) { s.reasm.SetLimits(l) }

// SetArena rebases the shard's reassembly buffer recycling onto an
// arena pool (dispatcher-created shards get the dispatcher's arena
// automatically). Follows the shard's single-goroutine rule: set
// before the shard starts handling segments.
func (s *Shard) SetArena(a *arena.Arena) { s.reasm.SetArena(a.NewLocal()) }

// Stats reports the shard's flow-lifecycle counters: tracked/peak
// flows, teardowns, evictions, dropped bytes and pending out-of-order
// bytes. Fold them into scan counters with netsim.Stats.MergeInto.
func (s *Shard) Stats() netsim.Stats { return s.reasm.Stats() }

// SetVerifierBudget arms the shard's match-flood defense: flushed
// buffers' verifier work is priced (b.Price) and charged against each
// flow's b.PerFlow budget and the shared b.Pool; the first uncovered
// charge demotes the flow to literal-only alerting (suspended
// verifications are settled first, so no already-anchored alert is
// lost). Follows the shard's single-goroutine rule: arm before the
// shard starts handling segments. The zero value disarms.
func (s *Shard) SetVerifierBudget(b resil.VerifierBudget) { s.vbudget = b }

// SetVerifierBudget arms the default shard's match-flood defense (see
// Shard.SetVerifierBudget).
func (e *Engine) SetVerifierBudget(b resil.VerifierBudget) { e.def.SetVerifierBudget(b) }

// SetCounters attaches scan instrumentation to the shard: every batch
// scan accumulates into c (bytes scanned, filter probes, matches, lane
// occupancy, ...). Instrumented scans cost a few percent of
// throughput; pass nil to detach. The counters follow the shard's
// single-goroutine rule.
func (s *Shard) SetCounters(c *vpatch.Counters) { s.counters = c }

// SetObserver attaches race-safe publication sinks to the shard, the
// mechanism resident services use to scrape a running pipeline: scan
// counters accumulate privately and are folded into scan (atomically)
// at every batch flush; flow-lifecycle stats are stored into flow at
// flushes and every few dozen segments. Either sink may be nil.
// Readers call scan.Snapshot / flow.Load from any goroutine at any
// time. SetObserver follows the shard's single-goroutine rule (attach
// before the shard starts handling segments).
func (s *Shard) SetObserver(scan *metrics.Atomic, flow *netsim.AtomicStats) {
	s.obsScan = scan
	s.obsFlow = flow
}

// publishFlowStats stores the reassembler's current lifecycle stats
// into the observer slot, when one is attached.
func (s *Shard) publishFlowStats() {
	if s.obsFlow != nil {
		s.obsFlow.Store(s.reasm.Stats())
	}
}

// onFlowClose releases a flow's scan state when the reassembler stops
// tracking it. On normal teardown (FIN/RST) the carry is dropped and
// enqueued scan jobs simply surface at the next flush — they hold their
// own copies of the stream bytes. On eviction the flow's group batch is
// flushed first, so alerts from an evicted flow's enqueued jobs are
// delivered before the pipeline forgets it.
func (s *Shard) onFlowClose(k netsim.FlowKey, evicted bool) {
	fs := s.flows[k]
	if fs == nil {
		return
	}
	if evicted || fs.rstate != nil {
		// Flush only when the batch actually holds jobs of this flow:
		// under flow-cap churn most evicted flows were flushed by a
		// watermark long ago, and flushing the shared group batch for
		// each of them would collapse batching back to scan-per-payload.
		// Rule-conditioned flows flush on normal teardown too — their
		// enqueued jobs need the flow's rule state, settled below.
		if pb := s.pending[fs.g]; pb != nil && pb.hasJobs(fs) {
			s.flushGroup(fs.g, pb)
		}
	}
	if fs.rstate != nil {
		// The stream has ended: settle suspended regex verifications so
		// an accepted anchor queued behind a now-unresolvable one fires.
		c := s.counters
		if s.obsScan != nil {
			c = &s.obsScratch
		}
		s.ev.FinishFlow(fs.rstate, c, s.ruleEmitter(fs))
		fs.rstate = nil
	}
	fs.carry = nil
	delete(s.flows, k)
}

// hasJobs reports whether the batch holds an enqueued scan job for fs
// (meta is at most a watermark's worth of entries).
func (pb *groupBatch) hasJobs(fs *flowState) bool {
	for i := range pb.meta {
		if pb.meta[i].fs == fs {
			return true
		}
	}
	return false
}

// SetWatermarks overrides the shard's flush watermarks: a group's
// pending batch is scanned once it holds maxBufs buffers or maxBytes
// bytes. Lower values trade batching efficiency for alert latency;
// maxBufs = 1 restores scan-per-payload behavior. Values <= 0 keep the
// current setting.
func (s *Shard) SetWatermarks(maxBufs, maxBytes int) {
	if maxBufs > 0 {
		s.maxBatchBufs = maxBufs
	}
	if maxBytes > 0 {
		s.maxBatchBytes = maxBytes
	}
}

// Set returns the full rule set the engine's groups were compiled from.
func (e *Engine) Set() *vpatch.PatternSet { return e.set }

// Algorithm returns the matching algorithm the rule groups were
// compiled with (all groups share one).
func (e *Engine) Algorithm() vpatch.Algorithm {
	for _, g := range e.groups {
		return g.eng.Algorithm()
	}
	return 0
}

// GroupSizes reports the number of patterns compiled per protocol group.
func (e *Engine) GroupSizes() map[vpatch.Protocol]int {
	out := make(map[vpatch.Protocol]int, len(e.groups))
	for proto, g := range e.groups {
		out[proto] = g.eng.Set().Len()
	}
	return out
}

// protoForPort classifies a flow by its destination service port,
// through the same patterns.ServicePorts table the rule parser buckets
// rules with — a rule written for a port always compiles into the group
// its flows are scanned against.
func protoForPort(port uint16) vpatch.Protocol {
	return patterns.ProtoForPort(port)
}

// groupFor picks the compiled group for a flow, falling back to the
// generic group when the service has no dedicated rules.
func (e *Engine) groupFor(k netsim.FlowKey) *group {
	if g, ok := e.groups[protoForPort(k.DstPort)]; ok {
		return g
	}
	return e.groups[vpatch.ProtoGeneric]
}

// ScanBuffer matches one self-contained buffer against the rule groups
// a flow to the given service port would be scanned with (port 0, or
// any unclassified port, selects the generic group), reporting each
// occurrence's original pattern ID and offset. Unlike the segment
// pipeline it involves no flow state, so it is safe for concurrent use
// from any number of goroutines — the one-shot scan surface a resident
// scanning service exposes per request. c, when non-nil, accumulates
// scan instrumentation and must be private to the caller. Returns the
// number of matches.
func (e *Engine) ScanBuffer(port uint16, data []byte, c *vpatch.Counters, emit func(patternID int32, pos int64)) int {
	g := e.groupFor(netsim.FlowKey{DstPort: port})
	if g == nil {
		return 0
	}
	n := 0
	g.eng.Scan(data, c, func(m vpatch.Match) {
		n++
		if emit != nil {
			emit(g.origID[m.PatternID], int64(m.Pos))
		}
	})
	return n
}

// HandleSegment feeds one captured segment through the default shard.
// Single-goroutine; multi-core callers use NewShard and feed each shard
// its flow partition.
func (e *Engine) HandleSegment(seg netsim.Segment) { e.def.HandleSegment(seg) }

// Flush drains the default shard's pending batches (see Shard.Flush).
func (e *Engine) Flush() { e.def.Flush() }

// SetWatermarks tunes the default shard's flush watermarks (see
// Shard.SetWatermarks).
func (e *Engine) SetWatermarks(maxBufs, maxBytes int) { e.def.SetWatermarks(maxBufs, maxBytes) }

// Flows returns the number of flows tracked by the default shard.
func (e *Engine) Flows() int { return e.def.Flows() }

// PendingBytes reports buffered out-of-order bytes in the default shard.
func (e *Engine) PendingBytes() int { return e.def.PendingBytes() }

// SetLimits arms the default shard's flow-lifecycle bounds (see
// Shard.SetLimits).
func (e *Engine) SetLimits(l netsim.Limits) { e.def.SetLimits(l) }

// SetCounters instruments the default shard's scans (see
// Shard.SetCounters).
func (e *Engine) SetCounters(c *vpatch.Counters) { e.def.SetCounters(c) }

// Stats reports the default shard's flow-lifecycle counters (see
// Shard.Stats).
func (e *Engine) Stats() netsim.Stats { return e.def.Stats() }

// HandleSegment feeds one captured segment through reassembly and
// matching. Segments may arrive reordered or duplicated. Handing a
// segment to the pipeline transfers payload ownership: arena-owned
// payloads (Segment.SetOwned) are released — and their chunks recycled
// — once reassembly has absorbed the bytes.
func (s *Shard) HandleSegment(seg netsim.Segment) {
	s.reasm.Add(seg)
	seg.ReleasePayload()
	s.bumpObs()
}

// bumpObs publishes flow stats every obsPublishEvery segments when an
// observer is attached.
func (s *Shard) bumpObs() {
	if s.obsFlow != nil {
		if s.segsSinceObs++; s.segsSinceObs >= obsPublishEvery {
			s.segsSinceObs = 0
			s.obsFlow.Store(s.reasm.Stats())
		}
	}
}

// handleSegmentSafe is the dispatcher workers' entry: segment handling
// wrapped in per-segment panic recovery, plus the quarantine filter.
// A panic tears down and blacklists the offending flow while the shard
// — and every other flow on it — keeps scanning. The body mirrors
// HandleSegment rather than calling it so the recovery path knows
// whether the payload chunk was already returned (released exactly
// once whether the panic lands before or inside reassembly).
func (s *Shard) handleSegmentSafe(seg netsim.Segment) {
	if s.quarantined != nil {
		if _, bad := s.quarantined[seg.Flow]; bad {
			seg.ReleasePayload()
			return
		}
	}
	absorbed := false
	defer func() {
		if r := recover(); r != nil {
			if !absorbed {
				seg.ReleasePayload()
			}
			s.recoverSegmentPanic(seg.Flow)
		}
	}()
	if chaos.Armed() {
		chaos.Fire(chaos.ShardSegment, seg.Flow)
	}
	s.reasm.Add(seg)
	absorbed = true
	seg.ReleasePayload()
	s.bumpObs()
}

// recoverSegmentPanic contains the damage of a panic during one
// segment's handling: count it, quarantine the flow, and tear its
// state down through the normal RST path so alerts already enqueued
// for it still surface at the teardown flush. The teardown itself runs
// under a nested recover — the flow's reassembly state may be the
// corrupted party — with a map-drop fallback.
func (s *Shard) recoverSegmentPanic(k netsim.FlowKey) {
	c := s.counters
	if s.obsScan != nil {
		c = &s.obsScratch
	}
	if c != nil {
		c.PanicsRecovered++
	}
	if s.quarantined == nil {
		s.quarantined = make(map[netsim.FlowKey]struct{})
	}
	if _, dup := s.quarantined[k]; !dup && len(s.quarantined) < maxQuarantined {
		s.quarantined[k] = struct{}{}
		if c != nil {
			c.FlowsQuarantined++
		}
	}
	func() {
		defer func() { _ = recover() }()
		s.reasm.Add(netsim.Segment{Flow: k, Flags: netsim.FlagRST})
	}()
	delete(s.flows, k)
}

// session returns the shard's scan session for g, creating it on first
// use.
func (s *Shard) session(g *group) *vpatch.Session {
	sess := s.sessions[g]
	if sess == nil {
		sess = g.eng.NewSession()
		s.sessions[g] = sess
	}
	return sess
}

// onPayload receives contiguous stream bytes from the reassembler and
// enqueues one scan job (carry + new bytes) on the flow's group batch,
// flushing the group once a watermark is reached.
func (s *Shard) onPayload(k netsim.FlowKey, payload []byte) {
	if len(payload) == 0 {
		return
	}
	fs := s.flows[k]
	if fs == nil {
		g := s.parent.groupFor(k)
		if g == nil {
			return // no rules apply to this service at all
		}
		maxLen := g.eng.Set().MaxLen()
		if maxLen < 1 {
			maxLen = 1
		}
		fs = &flowState{key: k, g: g, maxLen: maxLen}
		if s.ev != nil {
			fs.rstate = rules.NewFlowState(protoForPort(k.DstPort))
			fs.vbudget = s.vbudget.PerFlow
		}
		s.flows[k] = fs
	}

	// The scan job: carry + payload, copied into batch-owned memory (the
	// reassembler may reuse payload before the batch flushes).
	pb := s.pending[fs.g]
	if pb == nil {
		pb = &groupBatch{}
		s.pending[fs.g] = pb
	}
	buf := pb.takeBuf(len(fs.carry) + len(payload))
	buf = append(buf, fs.carry...)
	buf = append(buf, payload...)
	carryLen := len(fs.carry)
	base := fs.consumed - int64(carryLen)

	// Advance the stream state now, so a later payload of this flow —
	// possibly enqueued in the same batch — chains on the right carry.
	fs.consumed += int64(len(payload))
	keep := fs.maxLen - 1
	if keep > len(buf) {
		keep = len(buf)
	}
	fs.carry = append(fs.carry[:0], buf[len(buf)-keep:]...)

	pb.bufs = append(pb.bufs, buf)
	pb.meta = append(pb.meta, batchEntry{fs: fs, carryLen: carryLen, base: base})
	pb.bytes += len(buf)
	if len(pb.bufs) >= s.maxBatchBufs || pb.bytes >= s.maxBatchBytes {
		s.flushGroup(fs.g, pb)
	}
}

// flushGroup scans one group's pending batch and emits its alerts.
func (s *Shard) flushGroup(g *group, pb *groupBatch) {
	if len(pb.bufs) == 0 {
		return
	}
	// With an observer attached, scans instrument a private scratch
	// that is folded into the atomic sink (and any SetCounters target)
	// after the batch — the hot loops never touch an atomic.
	c := s.counters
	if s.obsScan != nil {
		c = &s.obsScratch
	}
	if pb.onMatch == nil {
		set := g.eng.Set()
		switch {
		case s.ev != nil:
			// Rule tier: collect hits for post-scan evaluation instead of
			// emitting them (ScanBatch match order within one buffer is
			// not ordered by match end, the evaluator's input contract).
			pb.onMatch = func(buf int, m vpatch.Match) {
				ent := &pb.meta[buf]
				end := int(m.Pos) + set.Pattern(m.PatternID).Len()
				if end <= ent.carryLen {
					return
				}
				s.ruleHits = append(s.ruleHits, ruleHit{
					buf: int32(buf), lit: g.origID[m.PatternID], pos: m.Pos, end: int32(end),
				})
			}
		default:
			pb.onMatch = func(buf int, m vpatch.Match) {
				ent := &pb.meta[buf]
				// Matches ending inside the carry prefix were reported by
				// the batch that scanned those stream bytes first.
				if int(m.Pos)+set.Pattern(m.PatternID).Len() <= ent.carryLen {
					return
				}
				s.emit(Alert{
					Flow:         ent.fs.key,
					StreamOffset: ent.base + int64(m.Pos),
					PatternID:    g.origID[m.PatternID],
					RuleID:       -1,
				})
			}
		}
	}
	s.session(g).ScanBatch(pb.bufs, c, pb.onMatch)
	if s.ev != nil {
		s.evalRuleHits(pb, c)
	}
	pb.free = append(pb.free, pb.bufs...)
	pb.bufs = pb.bufs[:0]
	pb.meta = pb.meta[:0]
	pb.bytes = 0
	if s.obsScan != nil {
		if s.counters != nil {
			s.counters.Add(&s.obsScratch)
		}
		s.obsScan.AddCounters(&s.obsScratch)
		s.obsScratch.Reset()
		s.publishFlowStats()
	}
}

// Flush scans every pending batch immediately. Call it after the last
// segment of a capture, or on a latency deadline in live deployments
// (alerts otherwise wait for a watermark).
func (s *Shard) Flush() {
	for g, pb := range s.pending {
		s.flushGroup(g, pb)
	}
	// Fold any scratch counts accumulated outside batch flushes (panic
	// recoveries, budget exhaustions on job-less teardown paths), and
	// publish final lifecycle gauges even when no batch held jobs, so
	// eviction- or teardown-only activity reaches scrapers too.
	if s.obsScan != nil {
		if s.counters != nil {
			s.counters.Add(&s.obsScratch)
		}
		s.obsScan.AddCounters(&s.obsScratch)
		s.obsScratch.Reset()
	}
	s.publishFlowStats()
}

// PendingScanBufs reports enqueued-but-unscanned payload buffers
// (diagnostic).
func (s *Shard) PendingScanBufs() int {
	n := 0
	for _, pb := range s.pending {
		n += len(pb.bufs)
	}
	return n
}

// Flows returns the number of flows holding scan state in this shard.
// Torn-down and evicted flows are released, so on FIN-terminating
// traffic this tracks live connections; Stats().Flows additionally
// counts closed flows awaiting tombstone expiry in the reassembler.
func (s *Shard) Flows() int { return len(s.flows) }

// PendingBytes reports buffered out-of-order bytes (diagnostic).
func (s *Shard) PendingBytes() int { return s.reasm.PendingBytes() }
