// Package ids assembles the full NIDS pipeline the paper's system model
// assumes around the matcher: captured segments are reassembled into
// per-flow protocol streams, each flow is matched only against the rule
// groups relevant to its service ("patterns are organized in groups,
// depending on the type of traffic ... the reassembled payload is
// matched only against patterns that are relevant", paper §V-A), and
// matches surface as alerts with flow context and absolute stream
// offsets.
package ids

import (
	"fmt"

	"vpatch"
	"vpatch/internal/netsim"
)

// Alert is one confirmed pattern occurrence in a flow's stream.
type Alert struct {
	Flow netsim.FlowKey
	// StreamOffset is the match position within the flow's reassembled
	// payload stream.
	StreamOffset int64
	// PatternID indexes the engine's original rule set.
	PatternID int32
}

// Engine routes flows to per-protocol matchers over one rule set.
type Engine struct {
	set    *vpatch.PatternSet
	groups map[vpatch.Protocol]*group
	emit   func(Alert)

	reasm *netsim.Reassembler
	flows map[netsim.FlowKey]*flowScanner
}

// group is one compiled rule group: the protocol's own rules plus the
// generic rules, with the subset->original pattern ID mapping.
type group struct {
	matcher vpatch.Matcher
	origID  []int32 // subset pattern ID -> original set pattern ID
}

type flowScanner struct {
	scanner *vpatch.StreamScanner
}

// protocols that get a dedicated group; anything else uses the generic
// group alone.
var groupedProtocols = []vpatch.Protocol{
	vpatch.ProtoHTTP, vpatch.ProtoDNS, vpatch.ProtoFTP, vpatch.ProtoSMTP,
}

// NewEngine compiles one matcher per protocol group from set, using opt
// for every matcher. emit receives alerts and must be non-nil.
func NewEngine(set *vpatch.PatternSet, opt vpatch.Options, emit func(Alert)) (*Engine, error) {
	if emit == nil {
		return nil, fmt.Errorf("ids: nil alert sink")
	}
	e := &Engine{
		set:    set,
		groups: make(map[vpatch.Protocol]*group),
		emit:   emit,
		flows:  make(map[netsim.FlowKey]*flowScanner),
	}
	// Generic-only group handles flows of unclassified services.
	if g, err := buildGroup(set, vpatch.ProtoGeneric, opt); err != nil {
		return nil, err
	} else if g != nil {
		e.groups[vpatch.ProtoGeneric] = g
	}
	for _, proto := range groupedProtocols {
		g, err := buildGroup(set, proto, opt)
		if err != nil {
			return nil, err
		}
		if g != nil {
			e.groups[proto] = g
		}
	}
	e.reasm = netsim.NewReassembler(e.onPayload)
	return e, nil
}

// buildGroup compiles the subset applicable to proto (its own rules +
// generic rules), remembering original pattern IDs. Returns nil when the
// subset is empty.
func buildGroup(set *vpatch.PatternSet, proto vpatch.Protocol, opt vpatch.Options) (*group, error) {
	sub := vpatch.NewPatternSet()
	var orig []int32
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		if p.Proto != proto && p.Proto != vpatch.ProtoGeneric {
			continue
		}
		id := sub.Add(p.Data, p.Nocase, p.Proto)
		if int(id) == len(orig) {
			orig = append(orig, p.ID)
		}
		// Duplicates inside the subset keep the first original ID.
	}
	if sub.Len() == 0 {
		return nil, nil
	}
	m, err := vpatch.New(sub, opt)
	if err != nil {
		return nil, fmt.Errorf("ids: compiling %v group: %w", proto, err)
	}
	return &group{matcher: m, origID: orig}, nil
}

// GroupSizes reports the number of patterns compiled per protocol group.
func (e *Engine) GroupSizes() map[vpatch.Protocol]int {
	out := make(map[vpatch.Protocol]int, len(e.groups))
	for proto, g := range e.groups {
		out[proto] = g.matcher.Set().Len()
	}
	return out
}

// protoForPort classifies a flow by its destination service port.
func protoForPort(port uint16) vpatch.Protocol {
	switch port {
	case 80, 8080, 8000, 443:
		return vpatch.ProtoHTTP
	case 53:
		return vpatch.ProtoDNS
	case 21:
		return vpatch.ProtoFTP
	case 25, 587:
		return vpatch.ProtoSMTP
	}
	return vpatch.ProtoGeneric
}

// groupFor picks the compiled group for a flow, falling back to the
// generic group when the service has no dedicated rules.
func (e *Engine) groupFor(k netsim.FlowKey) *group {
	if g, ok := e.groups[protoForPort(k.DstPort)]; ok {
		return g
	}
	return e.groups[vpatch.ProtoGeneric]
}

// HandleSegment feeds one captured segment through reassembly and
// matching. Segments may arrive reordered or duplicated.
func (e *Engine) HandleSegment(seg netsim.Segment) { e.reasm.Add(seg) }

// onPayload receives contiguous stream bytes from the reassembler.
func (e *Engine) onPayload(k netsim.FlowKey, payload []byte) {
	fs := e.flows[k]
	if fs == nil {
		g := e.groupFor(k)
		if g == nil {
			return // no rules apply to this service at all
		}
		flow := k
		sc, err := vpatch.NewStreamScanner(g.matcher, func(m vpatch.Match) {
			e.emit(Alert{
				Flow:         flow,
				StreamOffset: int64(m.Pos),
				PatternID:    g.origID[m.PatternID],
			})
		})
		if err != nil {
			// Construction only fails on nil arguments; unreachable here.
			panic(err)
		}
		fs = &flowScanner{scanner: sc}
		e.flows[k] = fs
	}
	if _, err := fs.scanner.Write(payload); err != nil {
		panic(err) // StreamScanner.Write never errors
	}
}

// Flows returns the number of flows tracked.
func (e *Engine) Flows() int { return len(e.flows) }

// PendingBytes reports buffered out-of-order bytes (diagnostic).
func (e *Engine) PendingBytes() int { return e.reasm.PendingBytes() }
