package ids

import (
	"bytes"
	"sort"
	"testing"

	"vpatch"
	"vpatch/internal/netsim"
)

// TestDBRoundTrip saves a compiled rule-group engine and reloads it:
// the loaded engine must produce the identical alert stream on the
// same capture, and reject corrupted databases with an error.
func TestDBRoundTrip(t *testing.T) {
	set := vpatch.NewPatternSet()
	set.Add([]byte("GET /admin"), false, vpatch.ProtoHTTP)
	set.Add([]byte("attack"), true, vpatch.ProtoGeneric)
	set.Add([]byte("USER root"), false, vpatch.ProtoFTP)
	set.Add([]byte("x"), false, vpatch.ProtoHTTP)
	set.Add([]byte("query"), false, vpatch.ProtoDNS)

	flows := map[netsim.FlowKey][]byte{
		key(1, 80): []byte("GET /admin?q=ATTACK x GET /admin"),
		key(2, 21): []byte("USER root\r\nPASS attack\r\n"),
		key(3, 53): []byte("some query bytes attack"),
		key(4, 99): []byte("plain attack traffic"),
	}
	segs := netsim.Packetize(flows, netsim.PacketizeOptions{MTU: 9, Seed: 4, Jitter: 3})

	run := func(e *Engine, alerts *[]Alert) {
		for _, s := range segs {
			e.HandleSegment(s)
		}
		e.Flush()
	}
	sortAlerts := func(a []Alert) {
		sort.Slice(a, func(i, j int) bool {
			if a[i].Flow != a[j].Flow {
				return a[i].Flow.String() < a[j].Flow.String()
			}
			if a[i].StreamOffset != a[j].StreamOffset {
				return a[i].StreamOffset < a[j].StreamOffset
			}
			return a[i].PatternID < a[j].PatternID
		})
	}

	var want []Alert
	fresh, err := NewEngine(set, vpatch.Options{}, func(a Alert) { want = append(want, a) })
	if err != nil {
		t.Fatal(err)
	}
	run(fresh, &want)
	if len(want) == 0 {
		t.Fatal("test capture produced no alerts")
	}

	var buf bytes.Buffer
	if _, err := fresh.WriteDB(&buf); err != nil {
		t.Fatalf("WriteDB: %v", err)
	}
	blob := buf.Bytes()

	var got []Alert
	loaded, err := LoadDB(blob, func(a Alert) { got = append(got, a) })
	if err != nil {
		t.Fatalf("LoadDB: %v", err)
	}
	if len(loaded.GroupSizes()) != len(fresh.GroupSizes()) {
		t.Fatalf("loaded %d groups, want %d", len(loaded.GroupSizes()), len(fresh.GroupSizes()))
	}
	run(loaded, &got)

	sortAlerts(want)
	sortAlerts(got)
	if len(got) != len(want) {
		t.Fatalf("loaded engine: %d alerts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alert %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// ReadDB sees the same database.
	if _, err := ReadDB(bytes.NewReader(blob), func(Alert) {}); err != nil {
		t.Fatalf("ReadDB: %v", err)
	}

	// A loaded engine hands out shards like a compiled one.
	shard := loaded.NewShard(func(Alert) {})
	shard.HandleSegment(segs[0])
	shard.Flush()
}

// TestDBRejects covers the ids-level failure modes.
func TestDBRejects(t *testing.T) {
	set := vpatch.PatternSetFromStrings("abc")
	e, err := NewEngine(set, vpatch.Options{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.SerializeDB()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := LoadDB(blob, nil); err == nil {
		t.Error("nil sink: want error")
	}
	if _, err := LoadDB(blob[:len(blob)/2], func(Alert) {}); err == nil {
		t.Error("truncated db: want error")
	}
	for i := 0; i < len(blob); i += len(blob)/61 + 1 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x08
		if _, err := LoadDB(bad, func(Alert) {}); err == nil {
			t.Errorf("bit flip at %d: want error", i)
		}
	}

	// A single-engine database is not an IDS database, and vice versa.
	single, err := vpatch.Compile(set, vpatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sblob, err := single.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(sblob, func(Alert) {}); err == nil {
		t.Error("engine db in LoadDB: want error")
	}
	if _, err := vpatch.Deserialize(blob); err == nil {
		t.Error("ids db in vpatch.Deserialize: want error")
	}
}
