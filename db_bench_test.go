package vpatch

import (
	"testing"
	"time"

	"vpatch/internal/patterns"
)

// Startup benchmarks: compiling an ET-open-scale rule set (S2, ~20k
// patterns) from scratch versus loading its precompiled database.
// This is the offline-compilation payoff the database format exists
// for: Aho-Corasick — the Snort production baseline, whose automaton
// construction walks a pointer-chasing trie over every pattern byte —
// loads an order of magnitude faster than it compiles, while the
// filter-family engines compile in ~1 ms to begin with and load in the
// same ballpark (their win is single-file deployment + integrity
// checks, not startup time).

// benchStartupSet is built once and shared across the startup benches.
var benchStartupSet *PatternSet

func startupSet(b *testing.B) *PatternSet {
	if benchStartupSet == nil {
		benchStartupSet = patterns.GenerateS2(1)
	}
	return benchStartupSet
}

func BenchmarkStartup(b *testing.B) {
	for _, alg := range []Algorithm{AlgoVPatch, AlgoAhoCorasick} {
		set := startupSet(b)
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			b.Fatal(err)
		}
		blob, err := eng.Serialize()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg.String()+"/Compile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(set, Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(alg.String()+"/Load", func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			for i := 0; i < b.N; i++ {
				if _, err := Deserialize(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStartupSpeedup measures compile and load back to back in
// one run and reports the ratio directly (compile-ms, load-ms,
// speedup-x), so the headline number survives benchtime=1x smoke runs
// without cross-benchmark arithmetic. Aho-Corasick is the algorithm
// the criterion targets: the automaton build is the expensive compile
// this format amortizes away.
func BenchmarkStartupSpeedup(b *testing.B) {
	set := startupSet(b)
	eng, err := Compile(set, Options{Algorithm: AlgoAhoCorasick})
	if err != nil {
		b.Fatal(err)
	}
	blob, err := eng.Serialize()
	if err != nil {
		b.Fatal(err)
	}
	var compileNs, loadNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := Compile(set, Options{Algorithm: AlgoAhoCorasick}); err != nil {
			b.Fatal(err)
		}
		compileNs += time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if _, err := Deserialize(blob); err != nil {
			b.Fatal(err)
		}
		loadNs += time.Since(t0).Nanoseconds()
	}
	n := float64(b.N)
	b.ReportMetric(float64(compileNs)/n/1e6, "compile-ms")
	b.ReportMetric(float64(loadNs)/n/1e6, "load-ms")
	b.ReportMetric(float64(compileNs)/float64(loadNs), "speedup-x")
}
