// Package vpatch is an exact multiple-pattern-matching library for
// network-security workloads, reproducing "Multiple Pattern Matching for
// Network Security Applications: Acceleration through Vectorization"
// (Stylianopoulos et al., ICPP 2017).
//
// It provides the paper's contribution — the S-PATCH and V-PATCH
// cache-aware, vectorization-friendly filtering matchers — together with
// every baseline the paper evaluates (Aho-Corasick as used by Snort, DFC,
// Vector-DFC) plus Wu-Manber from its related-work discussion, all behind
// one Matcher interface with identical match semantics:
//
//	set := vpatch.NewPatternSet()
//	set.Add([]byte("attack"), false, vpatch.ProtoHTTP)
//	m, err := vpatch.New(set, vpatch.Options{Algorithm: vpatch.AlgoVPatch})
//	if err != nil { ... }
//	m.Scan(payload, nil, func(match vpatch.Match) {
//		fmt.Printf("pattern %d at offset %d\n", match.PatternID, match.Pos)
//	})
//
// Every matcher reports every occurrence of every pattern (pattern ID and
// start offset), byte-identical across algorithms; case-insensitive
// patterns are supported throughout. For scanning unbounded streams in
// chunks, see StreamScanner.
package vpatch

import (
	"fmt"

	"vpatch/internal/ahocorasick"
	"vpatch/internal/core"
	"vpatch/internal/dfc"
	"vpatch/internal/ffbf"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/wumanber"
)

// Re-exported pattern-set vocabulary. These are aliases, so values flow
// between the public API and the internal packages without conversion.
type (
	// Match is one reported occurrence: the pattern's ID and the start
	// offset of the occurrence in the scanned input.
	Match = patterns.Match
	// Pattern is one compiled search pattern.
	Pattern = patterns.Pattern
	// PatternSet is an immutable collection of patterns.
	PatternSet = patterns.Set
	// Protocol tags a pattern with its traffic class.
	Protocol = patterns.Protocol
	// Counters collects per-scan instrumentation; pass nil to Scan when
	// not needed (instrumentation costs a few percent of throughput).
	Counters = metrics.Counters
	// EmitFunc receives matches during a scan; nil means count-only.
	EmitFunc = patterns.EmitFunc
)

// Protocol tags, re-exported.
const (
	ProtoGeneric = patterns.ProtoGeneric
	ProtoHTTP    = patterns.ProtoHTTP
	ProtoDNS     = patterns.ProtoDNS
	ProtoFTP     = patterns.ProtoFTP
	ProtoSMTP    = patterns.ProtoSMTP
)

// NewPatternSet returns an empty pattern set.
func NewPatternSet() *PatternSet { return patterns.NewSet() }

// PatternSetFromStrings builds a case-sensitive set from literals.
func PatternSetFromStrings(ss ...string) *PatternSet { return patterns.FromStrings(ss...) }

// Algorithm selects the matching engine.
type Algorithm int

const (
	// AlgoVPatch is the paper's contribution: vectorized two-round
	// filtering (the default).
	AlgoVPatch Algorithm = iota
	// AlgoSPatch is the scalar version of the same design.
	AlgoSPatch
	// AlgoDFC is Direct Filter Classification (Choi et al., NSDI'16).
	AlgoDFC
	// AlgoVectorDFC is the direct vectorization of DFC's filtering.
	AlgoVectorDFC
	// AlgoAhoCorasick is the Snort-style full-matrix automaton.
	AlgoAhoCorasick
	// AlgoWuManber is the shift-table matcher from related work.
	AlgoWuManber
	// AlgoFFBF is the feed-forward-Bloom-filter matcher (Moraru &
	// Andersen, the paper's reference [13]).
	AlgoFFBF
)

func (a Algorithm) String() string {
	switch a {
	case AlgoVPatch:
		return "V-PATCH"
	case AlgoSPatch:
		return "S-PATCH"
	case AlgoDFC:
		return "DFC"
	case AlgoVectorDFC:
		return "Vector-DFC"
	case AlgoAhoCorasick:
		return "Aho-Corasick"
	case AlgoWuManber:
		return "Wu-Manber"
	case AlgoFFBF:
		return "FFBF"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Options configures New. The zero value selects V-PATCH with the
// paper's defaults (W=8 lanes, 16 KB filter 3, 64 KB chunks).
type Options struct {
	// Algorithm selects the engine (default AlgoVPatch).
	Algorithm Algorithm
	// VectorWidth is the emulated register width in 32-bit lanes for the
	// vectorized engines: 4, 8 (default, AVX2) or 16 (AVX-512/Xeon Phi).
	VectorWidth int
	// ChunkSize is the filtering-round granularity of S-PATCH/V-PATCH in
	// bytes (default 64 KB).
	ChunkSize int
	// Filter3Log2Bits sizes S-PATCH/V-PATCH's 4-byte hash filter as
	// 2^n bits (default 17 = 16 KB).
	Filter3Log2Bits uint
	// MaxAutomatonBytes caps Aho-Corasick's full-matrix size before the
	// sparse fallback (default 256 MB; negative forces sparse).
	MaxAutomatonBytes int
}

// Matcher scans inputs for all patterns of its compiled set. Matchers are
// safe for repeated use; a single Matcher must not be used from multiple
// goroutines concurrently (compile one per worker — compiled sets are
// cheap relative to scan volume, and the underlying pattern set can be
// shared).
type Matcher interface {
	// Scan reports every occurrence of every pattern in input, in
	// nondecreasing start-offset order per pattern class. c and emit may
	// be nil; counters accumulate across calls.
	Scan(input []byte, c *Counters, emit EmitFunc)
	// Algorithm returns the engine behind this matcher.
	Algorithm() Algorithm
	// Set returns the compiled pattern set.
	Set() *PatternSet
}

// New compiles a pattern set into a Matcher.
func New(set *PatternSet, opt Options) (Matcher, error) {
	if set == nil {
		return nil, fmt.Errorf("vpatch: nil pattern set")
	}
	switch w := opt.VectorWidth; w {
	case 0, 4, 8, 16:
	default:
		return nil, fmt.Errorf("vpatch: unsupported vector width %d (want 4, 8 or 16)", w)
	}
	switch opt.Algorithm {
	case AlgoVPatch:
		return &wrap{alg: opt.Algorithm, set: set, scanner: core.NewVPatch(set, core.VOptions{
			Width:           opt.VectorWidth,
			ChunkSize:       opt.ChunkSize,
			Filter3Log2Bits: opt.Filter3Log2Bits,
		})}, nil
	case AlgoSPatch:
		return &wrap{alg: opt.Algorithm, set: set, scanner: core.NewSPatch(set, core.Options{
			ChunkSize:       opt.ChunkSize,
			Filter3Log2Bits: opt.Filter3Log2Bits,
		})}, nil
	case AlgoDFC:
		return &wrap{alg: opt.Algorithm, set: set, scanner: dfc.Build(set)}, nil
	case AlgoVectorDFC:
		return &wrap{alg: opt.Algorithm, set: set, scanner: dfc.BuildVector(set, opt.VectorWidth)}, nil
	case AlgoAhoCorasick:
		return &wrap{alg: opt.Algorithm, set: set, scanner: ahocorasick.Build(set, ahocorasick.Options{
			MaxMatrixBytes: opt.MaxAutomatonBytes,
		})}, nil
	case AlgoWuManber:
		return &wrap{alg: opt.Algorithm, set: set, scanner: wumanber.Build(set)}, nil
	case AlgoFFBF:
		return &wrap{alg: opt.Algorithm, set: set, scanner: ffbf.Build(set, ffbf.Options{})}, nil
	}
	return nil, fmt.Errorf("vpatch: unknown algorithm %d", int(opt.Algorithm))
}

// scanner is the common surface of every internal engine.
type scanner interface {
	Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc)
}

type wrap struct {
	alg     Algorithm
	set     *PatternSet
	scanner scanner
}

func (w *wrap) Scan(input []byte, c *Counters, emit EmitFunc) { w.scanner.Scan(input, c, emit) }
func (w *wrap) Algorithm() Algorithm                          { return w.alg }
func (w *wrap) Set() *PatternSet                              { return w.set }

// FindAll is a convenience helper: compile-and-scan in one call,
// returning all matches sorted by (offset, pattern ID). For repeated
// scans, compile once with New instead.
func FindAll(set *PatternSet, input []byte, opt Options) ([]Match, error) {
	m, err := New(set, opt)
	if err != nil {
		return nil, err
	}
	var out []Match
	m.Scan(input, nil, func(mm Match) { out = append(out, mm) })
	patterns.SortMatches(out)
	return out, nil
}

// Count scans input and returns only the number of matches. It scans
// un-instrumented (nil counters), so engines take their fastest path.
func Count(m Matcher, input []byte) uint64 {
	var n uint64
	m.Scan(input, nil, func(Match) { n++ })
	return n
}
