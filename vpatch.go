// Package vpatch is an exact multiple-pattern-matching library for
// network-security workloads, reproducing "Multiple Pattern Matching for
// Network Security Applications: Acceleration through Vectorization"
// (Stylianopoulos et al., ICPP 2017).
//
// It provides the paper's contribution — the S-PATCH and V-PATCH
// cache-aware, vectorization-friendly filtering matchers — together with
// every baseline the paper evaluates (Aho-Corasick as used by Snort, DFC,
// Vector-DFC) plus Wu-Manber and FFBF from its related-work discussion,
// all with identical match semantics.
//
// The API splits compilation from scanning. Compile builds an Engine: the
// immutable, goroutine-safe compiled form of a pattern set. An Engine is
// compiled once and shared — its Scan method may be called from any
// goroutine. For the lowest-overhead hot path, each goroutine takes a
// Session (cheap per-goroutine scratch) and scans through that:
//
//	set := vpatch.NewPatternSet()
//	set.Add([]byte("attack"), false, vpatch.ProtoHTTP)
//	eng, err := vpatch.Compile(set, vpatch.Options{Algorithm: vpatch.AlgoVPatch})
//	if err != nil { ... }
//	s := eng.NewSession() // one per goroutine
//	s.Scan(payload, nil, func(match vpatch.Match) {
//		fmt.Printf("pattern %d at offset %d\n", match.PatternID, match.Pos)
//	})
//
// Every matcher reports every occurrence of every pattern (pattern ID and
// start offset), byte-identical across algorithms; case-insensitive
// patterns are supported throughout. For scanning unbounded streams in
// chunks, see StreamScanner; for multi-core scans of one large input,
// see FindAllParallel.
//
// The filtering engines carry a hot-path skip-loop acceleration layer
// (on by default, exact, self-disabling on dense rule sets and
// traffic): clean payload is cleared in runs — via the runtime's
// bytes.IndexByte for rare-start-byte rule sets, or a branchless
// L1-resident window bitmap otherwise — before the filter probes run at
// all. Engine.Info reports the selected mode; see the README's
// performance guide.
//
// For the dominant NIDS workload — many small buffers (packets, HTTP
// requests, reassembled payload pieces) — scan batches instead of
// buffers: Session.ScanBatch / Engine.FindAllBatch hand the engine many
// buffers per call, and V-PATCH walks a different buffer in every
// vector lane (refilling drained lanes from the pending queue), so lane
// occupancy no longer collapses on small inputs. See the README's batch
// scanning section for when to batch and how to tune watermarks.
//
// Production rule sets are compiled offline: Engine.Serialize/WriteTo
// flatten the compiled state into a versioned, checksummed database
// that Deserialize/ReadFrom restore at startup without recompiling —
// match-identical, goroutine-safe, and an order of magnitude faster
// than Compile for automaton-heavy engines like Aho-Corasick. The
// cmd/vpatch-compile tool is the offline compiler; see the README's
// offline-compilation section for the workflow and the format
// compatibility policy.
package vpatch

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"vpatch/internal/ahocorasick"
	"vpatch/internal/core"
	"vpatch/internal/dfc"
	"vpatch/internal/engine"
	"vpatch/internal/ffbf"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/rules"
	"vpatch/internal/vec"
	"vpatch/internal/wumanber"
)

// Re-exported pattern-set vocabulary. These are aliases, so values flow
// between the public API and the internal packages without conversion.
type (
	// Match is one reported occurrence: the pattern's ID and the start
	// offset of the occurrence in the scanned input.
	Match = patterns.Match
	// Pattern is one compiled search pattern.
	Pattern = patterns.Pattern
	// PatternSet is an immutable collection of patterns.
	PatternSet = patterns.Set
	// Protocol tags a pattern with its traffic class.
	Protocol = patterns.Protocol
	// Counters collects per-scan instrumentation; pass nil to Scan when
	// not needed (instrumentation costs a few percent of throughput).
	Counters = metrics.Counters
	// EmitFunc receives matches during a scan; nil means count-only.
	EmitFunc = patterns.EmitFunc
	// RuleSet is a compiled rule-semantics set: ordered content clauses
	// (offset/depth/distance/within, nocase) plus optional regex tails,
	// layered over a case-folded literal pattern set the engines
	// prefilter with. Build one with ParseRuleSet and hand it to
	// ids.NewRuleEngine. See the README's "Rule language" section.
	RuleSet = rules.Set
	// RuleParseOptions controls rule-set parsing (the regex verification
	// window override).
	RuleParseOptions = rules.ParseOptions
)

// Protocol tags, re-exported.
const (
	ProtoGeneric = patterns.ProtoGeneric
	ProtoHTTP    = patterns.ProtoHTTP
	ProtoDNS     = patterns.ProtoDNS
	ProtoFTP     = patterns.ProtoFTP
	ProtoSMTP    = patterns.ProtoSMTP
)

// NewPatternSet returns an empty pattern set.
func NewPatternSet() *PatternSet { return patterns.NewSet() }

// PatternSetFromStrings builds a case-sensitive set from literals.
func PatternSetFromStrings(ss ...string) *PatternSet { return patterns.FromStrings(ss...) }

// ParseRuleSet reads a Snort-lite rule stream (see the README's "Rule
// language" section for the accepted syntax) and compiles it into a
// rule-semantics set, including the case-folded prefilter literal set
// the engines scan with.
func ParseRuleSet(r io.Reader, opt RuleParseOptions) (*RuleSet, error) {
	return rules.ParseRules(r, opt)
}

// Algorithm selects the matching engine.
type Algorithm int

const (
	// AlgoVPatch is the paper's contribution: vectorized two-round
	// filtering (the default).
	AlgoVPatch Algorithm = iota
	// AlgoSPatch is the scalar version of the same design.
	AlgoSPatch
	// AlgoDFC is Direct Filter Classification (Choi et al., NSDI'16).
	AlgoDFC
	// AlgoVectorDFC is the direct vectorization of DFC's filtering.
	AlgoVectorDFC
	// AlgoAhoCorasick is the Snort-style full-matrix automaton.
	AlgoAhoCorasick
	// AlgoWuManber is the shift-table matcher from related work.
	AlgoWuManber
	// AlgoFFBF is the feed-forward-Bloom-filter matcher (Moraru &
	// Andersen, the paper's reference [13]).
	AlgoFFBF
)

func (a Algorithm) String() string {
	switch a {
	case AlgoVPatch:
		return "V-PATCH"
	case AlgoSPatch:
		return "S-PATCH"
	case AlgoDFC:
		return "DFC"
	case AlgoVectorDFC:
		return "Vector-DFC"
	case AlgoAhoCorasick:
		return "Aho-Corasick"
	case AlgoWuManber:
		return "Wu-Manber"
	case AlgoFFBF:
		return "FFBF"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm is the inverse of Algorithm.String: it resolves a name
// to an Algorithm, case-insensitively. Both the canonical names
// ("V-PATCH", "Aho-Corasick", ...) and the CLI spellings used by the
// cmd/ tools ("vpatch", "spatch", "dfc", "vectordfc", "ac", "wumanber",
// "ffbf", plus common abbreviations) are accepted.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "vpatch", "v-patch":
		return AlgoVPatch, nil
	case "spatch", "s-patch":
		return AlgoSPatch, nil
	case "dfc":
		return AlgoDFC, nil
	case "vectordfc", "vector-dfc", "vdfc":
		return AlgoVectorDFC, nil
	case "ac", "ahocorasick", "aho-corasick":
		return AlgoAhoCorasick, nil
	case "wumanber", "wu-manber", "wm":
		return AlgoWuManber, nil
	case "ffbf":
		return AlgoFFBF, nil
	}
	return 0, fmt.Errorf("vpatch: unknown algorithm %q (want vpatch, spatch, dfc, vectordfc, ac, wumanber or ffbf)", name)
}

// Kernel identifies a native filtering-round kernel of the filtering
// engines (S-PATCH, V-PATCH). The engines' hot extract loop dispatches
// once, at Compile/Deserialize time, to the best kernel the host CPU
// supports (CPUID-probed); Options.ForceKernel pins a specific one for
// A/B measurement or to force the portable SWAR reference oracle.
type Kernel = vec.KernelID

// Kernel identifiers, re-exported.
const (
	// KernelAuto dispatches to the best available kernel (default).
	KernelAuto = vec.KernelAuto
	// KernelSWAR is the portable fused path: always available, on every
	// architecture, and the reference oracle the assembly kernels are
	// property-tested against.
	KernelSWAR = vec.KernelSWAR
	// KernelSSSE3 is the 16-lane PSHUFB byte-pair classifier (amd64).
	KernelSSSE3 = vec.KernelSSSE3
	// KernelAVX2 is the 32-lane shuffle/gather/movemask classifier
	// (amd64), the paper's §IV-B instruction recipe in hardware.
	KernelAVX2 = vec.KernelAVX2
)

// ParseKernel resolves a kernel name ("auto", "swar", "ssse3", "avx2"),
// case-insensitively. The inverse of Kernel.String.
func ParseKernel(name string) (Kernel, error) {
	k, err := vec.ParseKernel(name)
	if err != nil {
		return 0, fmt.Errorf("vpatch: %w", err)
	}
	return k, nil
}

// KernelAvailable reports whether kernel k can run on this host and
// build (KernelAuto and KernelSWAR always can).
func KernelAvailable(k Kernel) bool { return vec.Available(k) }

// ActiveKernel returns the kernel KernelAuto resolves to on this host:
// what a default Compile or Deserialize will scan with.
func ActiveKernel() Kernel { return vec.Best() }

// AvailableKernels lists the kernels this host can run, KernelSWAR
// first.
func AvailableKernels() []Kernel { return vec.Kernels() }

// Options configures Compile. The zero value selects V-PATCH with the
// paper's defaults (W=8 lanes, 16 KB filter 3, 64 KB chunks).
type Options struct {
	// Algorithm selects the engine (default AlgoVPatch).
	Algorithm Algorithm
	// VectorWidth is the emulated register width in 32-bit lanes for the
	// vectorized engines: 4, 8 (default, AVX2) or 16 (AVX-512/Xeon Phi).
	VectorWidth int
	// ChunkSize is the filtering-round granularity of S-PATCH/V-PATCH in
	// bytes (default 64 KB).
	ChunkSize int
	// Filter3Log2Bits sizes S-PATCH/V-PATCH's 4-byte hash filter as
	// 2^n bits (default 17 = 16 KB).
	Filter3Log2Bits uint
	// MaxAutomatonBytes caps Aho-Corasick's full-matrix size before the
	// sparse fallback (default 256 MB; negative forces sparse).
	MaxAutomatonBytes int
	// NoAccel disables the hot-path skip-loop acceleration layer of the
	// filtering engines (S-PATCH, V-PATCH, DFC), forcing their plain
	// probe loops. Acceleration is on by default and auto-disables on
	// rule sets and traffic too dense to profit; this switch exists for
	// ablation benchmarks and A/B measurement. See the README's
	// performance guide.
	NoAccel bool
	// ForceKernel pins the filtering engines' extract kernel instead of
	// the CPUID auto-dispatch: KernelSWAR forces the portable reference
	// path, KernelAVX2/KernelSSSE3 the native classifiers. Compile
	// fails when the host cannot run the forced kernel. Ignored by
	// engines without the kernel dispatch (DFC, Aho-Corasick, ...), and
	// never serialized — a database re-dispatches on the loading host.
	ForceKernel Kernel
}

// Engine is the compiled, immutable form of a pattern set: all filter
// and verification state is read-only after Compile, so a single Engine
// may be shared by any number of goroutines. This is the expensive part
// of a matcher — for Aho-Corasick on a Snort-sized rule set it is
// hundreds of megabytes of automaton — and the split between it and the
// cheap per-goroutine Session is what lets the paper's multi-core
// deployment compile once and scan everywhere.
//
// Engine.Scan is itself safe for concurrent use (it draws scratch from
// an internal pool); goroutines scanning in a tight loop should hold
// their own Session instead to skip the pool round-trip.
type Engine struct {
	alg Algorithm
	set *PatternSet
	eng engine.Engine

	// sessions recycles per-goroutine scratch for the concurrency-safe
	// Engine.Scan convenience path.
	sessions sync.Pool
}

// Compile builds the immutable Engine for a pattern set. The Engine is
// safe for concurrent use from any number of goroutines.
func Compile(set *PatternSet, opt Options) (*Engine, error) {
	if set == nil {
		return nil, fmt.Errorf("vpatch: nil pattern set")
	}
	switch w := opt.VectorWidth; w {
	case 0, 4, 8, 16:
	default:
		return nil, fmt.Errorf("vpatch: unsupported vector width %d (want 4, 8 or 16)", w)
	}
	if !vec.Available(opt.ForceKernel) {
		return nil, fmt.Errorf("vpatch: kernel %s is not available on this host (have %v)",
			opt.ForceKernel, AvailableKernels())
	}
	var eng engine.Engine
	switch opt.Algorithm {
	case AlgoVPatch:
		eng = core.NewVPatch(set, core.VOptions{
			Width:           opt.VectorWidth,
			ChunkSize:       opt.ChunkSize,
			Filter3Log2Bits: opt.Filter3Log2Bits,
			NoAccel:         opt.NoAccel,
			ForceKernel:     opt.ForceKernel,
		})
	case AlgoSPatch:
		eng = core.NewSPatch(set, core.Options{
			ChunkSize:       opt.ChunkSize,
			Filter3Log2Bits: opt.Filter3Log2Bits,
			NoAccel:         opt.NoAccel,
			ForceKernel:     opt.ForceKernel,
		})
	case AlgoDFC:
		d := dfc.Build(set)
		if opt.NoAccel {
			d.WithoutAccel()
		}
		eng = d
	case AlgoVectorDFC:
		eng = dfc.BuildVector(set, opt.VectorWidth)
	case AlgoAhoCorasick:
		eng = ahocorasick.Build(set, ahocorasick.Options{
			MaxMatrixBytes: opt.MaxAutomatonBytes,
		})
	case AlgoWuManber:
		eng = wumanber.Build(set)
	case AlgoFFBF:
		eng = ffbf.Build(set, ffbf.Options{})
	default:
		return nil, fmt.Errorf("vpatch: unknown algorithm %d", int(opt.Algorithm))
	}
	return &Engine{alg: opt.Algorithm, set: set, eng: eng}, nil
}

// Algorithm returns the engine's algorithm.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// Set returns the compiled pattern set.
func (e *Engine) Set() *PatternSet { return e.set }

// NewSession returns fresh per-goroutine scan state bound to this
// engine. Sessions are cheap (scratch buffers only — the compiled
// tables stay shared); allocate one per goroutine and reuse it across
// scans. A Session must not be used from two goroutines at once;
// distinct Sessions over one Engine are fully independent.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e, scratch: e.eng.NewScratch()}
}

// Scan reports every occurrence of every pattern in input, in
// nondecreasing start-offset order per pattern class. c and emit may be
// nil; counters accumulate across calls. Scan is safe to call from any
// goroutine: scratch comes from an internal pool. Concurrent callers
// must pass distinct (or nil) Counters — the counter fields themselves
// are plain integers, not atomics. Hot loops should prefer a
// per-goroutine Session.
func (e *Engine) Scan(input []byte, c *Counters, emit EmitFunc) {
	s, _ := e.sessions.Get().(*Session)
	if s == nil {
		s = e.NewSession()
	}
	s.Scan(input, c, emit)
	e.sessions.Put(s)
}

// FindAll scans input and returns all matches sorted by (offset,
// pattern ID). Safe for concurrent use like Scan.
func (e *Engine) FindAll(input []byte) []Match {
	var out []Match
	e.Scan(input, nil, func(m Match) { out = append(out, m) })
	patterns.SortMatches(out)
	return out
}

// Session is the mutable per-goroutine half of a matcher: chunk work
// buffers, vector-lane state and candidate accumulators, referencing the
// shared immutable Engine. The zero value is not usable; obtain Sessions
// from Engine.NewSession.
//
// A Session is safe for repeated use from one goroutine at a time and
// implements Matcher.
type Session struct {
	eng     *Engine
	scratch engine.Scratch
}

// Scan reports every occurrence of every pattern in input, in
// nondecreasing start-offset order per pattern class. c and emit may be
// nil; counters accumulate across calls.
func (s *Session) Scan(input []byte, c *Counters, emit EmitFunc) {
	s.eng.eng.ScanScratch(s.scratch, input, c, emit)
}

// Engine returns the shared compiled engine this session scans with.
func (s *Session) Engine() *Engine { return s.eng }

// Algorithm returns the engine's algorithm.
func (s *Session) Algorithm() Algorithm { return s.eng.alg }

// Set returns the compiled pattern set.
func (s *Session) Set() *PatternSet { return s.eng.set }

// Matcher is the original single-goroutine scanning surface, kept so
// code written against the seed API still compiles. Both *Engine and
// *Session implement it.
//
// Deprecated: use Compile to obtain an *Engine (goroutine-safe) and
// Engine.NewSession for per-goroutine scanning.
type Matcher interface {
	// Scan reports every occurrence of every pattern in input, in
	// nondecreasing start-offset order per pattern class. c and emit may
	// be nil; counters accumulate across calls.
	Scan(input []byte, c *Counters, emit EmitFunc)
	// Algorithm returns the engine behind this matcher.
	Algorithm() Algorithm
	// Set returns the compiled pattern set.
	Set() *PatternSet
}

var (
	_ Matcher = (*Engine)(nil)
	_ Matcher = (*Session)(nil)
)

// New compiles a pattern set into a Matcher: a thin adapter returning
// Compile(set, opt).NewSession().
//
// Deprecated: use Compile. The returned Matcher is a single *Session —
// like the seed's matchers it must not be shared across goroutines,
// whereas the *Engine behind Compile may be.
func New(set *PatternSet, opt Options) (Matcher, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return nil, err
	}
	return e.NewSession(), nil
}

// FindAll is a convenience helper: compile-and-scan in one call,
// returning all matches sorted by (offset, pattern ID). For repeated
// scans, compile once with Compile instead.
func FindAll(set *PatternSet, input []byte, opt Options) ([]Match, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return nil, err
	}
	return e.FindAll(input), nil
}

// Count scans input and returns only the number of matches. It scans
// un-instrumented (nil counters), so engines take their fastest path.
func Count(m Matcher, input []byte) uint64 {
	var n uint64
	m.Scan(input, nil, func(Match) { n++ })
	return n
}
