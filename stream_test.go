package vpatch

import (
	"math/rand"
	"testing"

	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func collectStream(t *testing.T, m Matcher, chunks [][]byte) []Match {
	t.Helper()
	var out []Match
	s, err := NewStreamScanner(m, func(mm Match) { out = append(out, mm) })
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		n, err := s.Write(ch)
		if err != nil || n != len(ch) {
			t.Fatalf("Write: n=%d err=%v", n, err)
		}
	}
	return out
}

func TestStreamConstructorErrors(t *testing.T) {
	m, _ := New(PatternSetFromStrings("ab"), Options{})
	if _, err := NewStreamScanner(nil, func(Match) {}); err == nil {
		t.Fatal("nil matcher accepted")
	}
	if _, err := NewStreamScanner(m, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
}

// TestStreamEngineAndSessionConstructors: the Engine- and
// Session-backed constructors must behave identically to the deprecated
// Matcher wrapper, including the nil-emit error.
func TestStreamEngineAndSessionConstructors(t *testing.T) {
	set := PatternSetFromStrings("chunk-spanning-pattern", "GET")
	input := []byte("x GET chunk-spanning-pattern and GETchunk-spanning-pattern!")
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.FindAll(input)
	if len(want) == 0 {
		t.Fatal("test needs matches")
	}

	if _, err := eng.NewStreamScanner(nil); err == nil {
		t.Fatal("Engine constructor accepted nil emit")
	}
	if _, err := eng.NewSession().NewStreamScanner(nil); err == nil {
		t.Fatal("Session constructor accepted nil emit")
	}

	for name, mk := range map[string]func(StreamEmitFunc) (*StreamScanner, error){
		"engine":  eng.NewStreamScanner,
		"session": eng.NewSession().NewStreamScanner,
	} {
		var got []Match
		s, err := mk(func(m StreamMatch) { got = append(got, Match{PatternID: m.PatternID, Pos: int32(m.Pos)}) })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for cut := 0; cut < len(input); cut += 7 {
			end := cut + 7
			if end > len(input) {
				end = len(input)
			}
			if _, err := s.Write(input[cut:end]); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		patterns.SortMatches(got)
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("%s constructor: %d matches, want %d", name, len(got), len(want))
		}
	}
}

func TestStreamMatchesWholeInputScan(t *testing.T) {
	set := PatternSetFromStrings("chunk-spanning-pattern", "GET", "ab")
	input := []byte("ab GET chunk-spanning-pattern GET abchunk-spanning-patternab")
	m, _ := New(set, Options{})
	want, _ := FindAll(set, input, Options{})

	// Split so the long pattern straddles every boundary.
	for _, cut := range []int{1, 5, 10, 15, 25, 40} {
		chunks := [][]byte{input[:cut], input[cut:]}
		got := collectStream(t, m, chunks)
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("cut %d: stream %d matches, whole %d", cut, len(got), len(want))
		}
	}
}

func TestStreamByteAtATime(t *testing.T) {
	set := PatternSetFromStrings("abc", "cab")
	input := []byte("abcabcababcab")
	m, _ := New(set, Options{})
	want, _ := FindAll(set, input, Options{})
	var chunks [][]byte
	for i := range input {
		chunks = append(chunks, input[i:i+1])
	}
	got := collectStream(t, m, chunks)
	if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
		t.Fatalf("byte-at-a-time: %d vs %d", len(got), len(want))
	}
}

func TestStreamNoDuplicatesWithinCarry(t *testing.T) {
	// A match entirely inside the carry region must not be re-reported
	// when the next chunk arrives.
	set := PatternSetFromStrings("abcdefgh", "cd")
	m, _ := New(set, Options{})
	input := []byte("xxcdxxxxyyyy")
	chunks := [][]byte{input[:6], input[6:9], input[9:]}
	got := collectStream(t, m, chunks)
	want, _ := FindAll(set, input, Options{})
	if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
		t.Fatalf("duplicate or missing matches: got %v want %v", got, want)
	}
}

func TestStreamRandomSplitsEqualWholeScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	set := patterns.GenerateS1(3).Subset(60, 2)
	input := traffic.Synthesize(traffic.ISCXDay6, 16<<10, 4, set)
	m, _ := New(set, Options{})
	want, _ := FindAll(set, input, Options{})
	for trial := 0; trial < 5; trial++ {
		var chunks [][]byte
		for pos := 0; pos < len(input); {
			n := 1 + rng.Intn(4096)
			if pos+n > len(input) {
				n = len(input) - pos
			}
			chunks = append(chunks, input[pos:pos+n])
			pos += n
		}
		got := collectStream(t, m, chunks)
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("trial %d: stream diverges from whole-input scan", trial)
		}
	}
}

func TestStreamAbsoluteOffsets(t *testing.T) {
	set := PatternSetFromStrings("zz")
	m, _ := New(set, Options{})
	var got []Match
	s, _ := NewStreamScanner(m, func(mm Match) { got = append(got, mm) })
	s.Write([]byte("aaaa"))   // offsets 0-3
	s.Write([]byte("zz"))     // offsets 4-5
	s.Write([]byte("aazzaa")) // zz at 8
	if len(got) != 2 || got[0].Pos != 4 || got[1].Pos != 8 {
		t.Fatalf("absolute offsets wrong: %v", got)
	}
	if s.Consumed() != 12 {
		t.Fatalf("Consumed = %d", s.Consumed())
	}
}

// TestStream64BitOffsetsPast2GiB: matches beyond 2 GiB of consumed
// stream must report exact 64-bit offsets. The scanner's consumed
// counter is pre-set to just under the int32 boundary so the test does
// not have to stream 2 GiB of data.
func TestStream64BitOffsetsPast2GiB(t *testing.T) {
	set := PatternSetFromStrings("needle")
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []StreamMatch
	s, err := eng.NewStreamScanner(func(m StreamMatch) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	const base = int64(1)<<31 - 1 // one byte shy of the int32 boundary
	s.consumed = base
	if _, err := s.Write([]byte("xxneedleyy")); err != nil {
		t.Fatal(err)
	}
	want := base + 2
	if len(got) != 1 || got[0].Pos != want {
		t.Fatalf("matches %v, want one at %d", got, want)
	}
	if int64(int32(got[0].Pos)) == got[0].Pos {
		t.Fatalf("offset %d does not exercise the 32-bit boundary", got[0].Pos)
	}
	// A second write keeps counting past the boundary.
	if _, err := s.Write([]byte("needle")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Pos != base+10 {
		t.Fatalf("second match %v, want offset %d", got, base+10)
	}
}

func TestStreamEmptyWrites(t *testing.T) {
	m, _ := New(PatternSetFromStrings("ab"), Options{})
	s, _ := NewStreamScanner(m, func(Match) {})
	if n, err := s.Write(nil); n != 0 || err != nil {
		t.Fatal("empty write must be a no-op")
	}
}

func TestStreamReset(t *testing.T) {
	set := PatternSetFromStrings("ab")
	m, _ := New(set, Options{})
	var got []Match
	s, _ := NewStreamScanner(m, func(mm Match) { got = append(got, mm) })
	s.Write([]byte("a"))
	s.Reset()
	s.Write([]byte("b")) // must NOT combine with the pre-reset "a"
	if len(got) != 0 {
		t.Fatalf("match across Reset: %v", got)
	}
	if s.Consumed() != 1 {
		t.Fatalf("Consumed after reset = %d", s.Consumed())
	}
	s.Write([]byte("ab"))
	if len(got) != 1 || got[0].Pos != 1 {
		t.Fatalf("post-reset offsets wrong: %v", got)
	}
}

func TestStreamCallerMayReuseChunkBuffer(t *testing.T) {
	set := PatternSetFromStrings("abcd")
	m, _ := New(set, Options{})
	var got []Match
	s, _ := NewStreamScanner(m, func(mm Match) { got = append(got, mm) })
	buf := make([]byte, 2)
	copy(buf, "ab")
	s.Write(buf)
	copy(buf, "cd") // caller reuses the buffer; carry must not alias it
	s.Write(buf)
	if len(got) != 1 || got[0].Pos != 0 {
		t.Fatalf("buffer aliasing broke carry: %v", got)
	}
}

func TestStreamAllAlgorithms(t *testing.T) {
	set := PatternSetFromStrings("span-this", "GE")
	input := []byte("x GE span-this GE span-this")
	want, _ := FindAll(set, input, Options{})
	for _, alg := range allAlgorithms {
		m, err := New(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		got := collectStream(t, m, [][]byte{input[:7], input[7:16], input[16:]})
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("%v: stream scan diverges", alg)
		}
	}
}
