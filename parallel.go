package vpatch

import (
	"runtime"
	"sync"

	"vpatch/internal/patterns"
)

// FindAllParallel scans one large input with several workers, each
// owning a shard of the input — the deployment the paper's evaluation
// assumes for multi-core scaling ("different hardware threads can
// operate independently on different parts of the stream"). Shards
// overlap by maxPatternLen-1 bytes so matches spanning a boundary are
// found by exactly one worker; the result is identical to FindAll.
//
// The pattern set is compiled exactly once; every worker scans the
// shared Engine through its own Session. workers <= 0 selects
// GOMAXPROCS. For repeated scans, Compile once yourself and call
// Engine.FindAllParallel to also amortize compilation across calls.
func FindAllParallel(set *PatternSet, input []byte, opt Options, workers int) ([]Match, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return nil, err
	}
	return e.FindAllParallel(input, workers), nil
}

// FindAllParallel scans one large input with several workers sharing
// this compiled engine, each worker owning a shard of the input through
// its own Session. The result is identical to FindAll. workers <= 0
// selects GOMAXPROCS.
func (e *Engine) FindAllParallel(input []byte, workers int) []Match {
	workers = clampWorkers(workers, len(input))
	if workers <= 1 {
		return e.FindAll(input)
	}
	overlap := shardOverlap(e.set)

	results := make([][]Match, workers)
	var wg sync.WaitGroup
	shard := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * shard
		end := start + shard
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			s := e.NewSession()
			// Read past the shard end so spanning matches complete, but
			// emit only matches that *start* inside the shard.
			readEnd := end + overlap
			if readEnd > len(input) {
				readEnd = len(input)
			}
			var out []Match
			s.Scan(input[start:readEnd], nil, func(mm Match) {
				pos := int(mm.Pos) + start
				if pos < end {
					out = append(out, Match{PatternID: mm.PatternID, Pos: int32(pos)})
				}
			})
			results[w] = out
		}(w, start, end)
	}
	wg.Wait()
	var all []Match
	for _, r := range results {
		all = append(all, r...)
	}
	patterns.SortMatches(all)
	return all
}

// CountParallel returns only the number of matches found by
// FindAllParallel-equivalent sharded scanning (without materializing the
// matches). Like FindAllParallel, the set is compiled once and shared by
// all workers.
func CountParallel(set *PatternSet, input []byte, opt Options, workers int) (uint64, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return 0, err
	}
	return e.CountParallel(input, workers), nil
}

// CountParallel counts matches with sharded workers sharing this
// compiled engine (one Session per worker). workers <= 0 selects
// GOMAXPROCS.
func (e *Engine) CountParallel(input []byte, workers int) uint64 {
	workers = clampWorkers(workers, len(input))
	if workers <= 1 {
		return Count(e, input)
	}
	overlap := shardOverlap(e.set)
	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	shard := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * shard
		end := start + shard
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			s := e.NewSession()
			readEnd := end + overlap
			if readEnd > len(input) {
				readEnd = len(input)
			}
			limit := int32(end - start)
			n := uint64(0)
			s.Scan(input[start:readEnd], nil, func(mm Match) {
				if mm.Pos < limit {
					n++
				}
			})
			counts[w] = n
		}(w, start, end)
	}
	wg.Wait()
	total := uint64(0)
	for _, n := range counts {
		total += n
	}
	return total
}

// clampWorkers resolves the worker count: GOMAXPROCS by default, never
// more than one worker per input byte.
func clampWorkers(workers, inputLen int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > inputLen {
		workers = inputLen
	}
	return workers
}

// shardOverlap is how many bytes past its shard end a worker must read
// so matches spanning the boundary complete: maxPatternLen-1.
func shardOverlap(set *PatternSet) int {
	if n := set.MaxLen(); n > 1 {
		return n - 1
	}
	return 0
}
