package vpatch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vpatch/internal/patterns"
)

// Multi-core scanning of one large input — the deployment the paper's
// evaluation assumes ("different hardware threads can operate
// independently on different parts of the stream"). The input is cut
// into cache-friendly blocks that overlap by maxPatternLen-1 bytes (so
// matches spanning a boundary are found by exactly one worker); the
// blocks form a shared queue, and each worker repeatedly pulls a batch
// of blocks and scans it through its Session's ScanBatch. Pulling
// batches from a queue — rather than pre-splitting the input into one
// contiguous shard per worker — load-balances skew (a worker stuck in a
// match-dense region simply pulls fewer batches) and gives the batch
// scan path its lane-refill benefit on the final sub-block tails.

const (
	// parallelBlockBytes is the work-queue granularity: large enough
	// that queue traffic is negligible, small enough that dozens of
	// blocks exist to balance across workers.
	parallelBlockBytes = 512 << 10
	// parallelBatchPull is how many 512 KB blocks a worker takes per
	// queue round-trip.
	parallelBatchPull = 4
	// parallelBufferPull is how many whole buffers FindAllBatchParallel
	// workers pull per round-trip: buffers are typically small (packets,
	// requests), so pulls are sized like a ScanBatch batch — enough to
	// fill every vector lane and amortize per-call setup.
	parallelBufferPull = 32
)

// FindAllParallel scans one large input with several workers pulling
// batches of overlapping blocks from a shared queue; the result is
// identical to FindAll.
//
// The pattern set is compiled exactly once; every worker scans the
// shared Engine through its own Session. workers <= 0 selects
// GOMAXPROCS. For repeated scans, Compile once yourself and call
// Engine.FindAllParallel to also amortize compilation across calls.
func FindAllParallel(set *PatternSet, input []byte, opt Options, workers int) ([]Match, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return nil, err
	}
	return e.FindAllParallel(input, workers), nil
}

// blockRange is one entry of the shared parallel work queue: a worker
// scanning it reads up to overlap bytes past end (for spanning matches)
// but reports only matches starting before end.
type blockRange struct {
	start, end int
}

// blockRanges cuts the input into the shared work queue: blocks of at
// most parallelBlockBytes, and at least one per worker so every worker
// has something to pull.
func blockRanges(inputLen, workers int) []blockRange {
	size := parallelBlockBytes
	if perWorker := (inputLen + workers - 1) / workers; perWorker < size {
		size = perWorker
	}
	if size < 1 {
		size = 1
	}
	blocks := make([]blockRange, 0, (inputLen+size-1)/size)
	for start := 0; start < inputLen; start += size {
		end := start + size
		if end > inputLen {
			end = inputLen
		}
		blocks = append(blocks, blockRange{start: start, end: end})
	}
	return blocks
}

// pullBatches is the shared work queue: `workers` goroutines repeatedly
// claim the next pull-sized index batch [lo, hi) of n items from one
// atomic cursor until the queue drains. run(w, lo, hi) executes on
// worker w's goroutine only, so per-worker state needs no locking. The
// pull size shrinks when there are too few items for every worker to
// claim a full batch, so no worker sits idle while others hold
// multi-item claims.
func pullBatches(n, workers, pull int, run func(w, lo, hi int)) {
	if pull > n/workers {
		pull = n / workers
	}
	if pull < 1 {
		pull = 1
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(pull))) - pull
				if lo >= n {
					return
				}
				hi := lo + pull
				if hi > n {
					hi = n
				}
				run(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// scanBlocksParallel runs the shared-queue scan: workers pull batches of
// blocks and report matches (with input-absolute positions) to their
// own sink; sink(w) is called once per worker before it starts pulling
// and must return a per-worker emit function (workers never share one).
func (e *Engine) scanBlocksParallel(input []byte, workers int, sink func(w int) EmitFunc) {
	overlap := shardOverlap(e.set)
	blocks := blockRanges(len(input), workers)

	type workerState struct {
		s     *Session
		emit  EmitFunc
		views [][]byte
		batch []blockRange
		// report translates (buffer index, block-relative match) into
		// input-absolute matches, dropping matches that only start
		// inside the overlap (the next block's worker reports those).
		report BatchEmitFunc
	}
	states := make([]*workerState, workers)
	pullBatches(len(blocks), workers, parallelBatchPull, func(w, lo, hi int) {
		ws := states[w]
		if ws == nil {
			ws = &workerState{s: e.NewSession(), emit: sink(w)}
			ws.report = func(buf int, mm Match) {
				blk := ws.batch[buf]
				pos := int(mm.Pos) + blk.start
				if pos < blk.end {
					ws.emit(Match{PatternID: mm.PatternID, Pos: int32(pos)})
				}
			}
			states[w] = ws
		}
		ws.batch = blocks[lo:hi]
		ws.views = ws.views[:0]
		for _, blk := range ws.batch {
			readEnd := blk.end + overlap
			if readEnd > len(input) {
				readEnd = len(input)
			}
			ws.views = append(ws.views, input[blk.start:readEnd])
		}
		ws.s.ScanBatch(ws.views, nil, ws.report)
	})
}

// FindAllParallel scans one large input with several workers sharing
// this compiled engine, each pulling batches of blocks from a shared
// queue through its own Session. The result is identical to FindAll.
// workers <= 0 selects GOMAXPROCS.
func (e *Engine) FindAllParallel(input []byte, workers int) []Match {
	workers = clampWorkers(workers, len(input))
	if workers <= 1 {
		return e.FindAll(input)
	}
	results := make([][]Match, workers)
	e.scanBlocksParallel(input, workers, func(w int) EmitFunc {
		return func(m Match) { results[w] = append(results[w], m) }
	})
	var all []Match
	for _, r := range results {
		all = append(all, r...)
	}
	patterns.SortMatches(all)
	return all
}

// CountParallel returns only the number of matches found by
// FindAllParallel-equivalent shared-queue scanning (without
// materializing the matches). Like FindAllParallel, the set is compiled
// once and shared by all workers.
func CountParallel(set *PatternSet, input []byte, opt Options, workers int) (uint64, error) {
	e, err := Compile(set, opt)
	if err != nil {
		return 0, err
	}
	return e.CountParallel(input, workers), nil
}

// CountParallel counts matches with shared-queue workers sharing this
// compiled engine (one Session per worker). workers <= 0 selects
// GOMAXPROCS.
func (e *Engine) CountParallel(input []byte, workers int) uint64 {
	workers = clampWorkers(workers, len(input))
	if workers <= 1 {
		return Count(e, input)
	}
	counts := make([]uint64, workers)
	e.scanBlocksParallel(input, workers, func(w int) EmitFunc {
		return func(Match) { counts[w]++ }
	})
	total := uint64(0)
	for _, n := range counts {
		total += n
	}
	return total
}

// clampWorkers resolves the worker count: GOMAXPROCS by default, never
// more than one worker per input byte (or buffer).
func clampWorkers(workers, inputLen int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > inputLen {
		workers = inputLen
	}
	return workers
}

// shardOverlap is how many bytes past its block end a worker must read
// so matches spanning the boundary complete: maxPatternLen-1.
func shardOverlap(set *PatternSet) int {
	if n := set.MaxLen(); n > 1 {
		return n - 1
	}
	return 0
}
