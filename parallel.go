package vpatch

import (
	"fmt"
	"runtime"
	"sync"

	"vpatch/internal/patterns"
)

// FindAllParallel scans one large input with several workers, each
// owning a shard of the input — the deployment the paper's evaluation
// assumes for multi-core scaling ("different hardware threads can
// operate independently on different parts of the stream"). Shards
// overlap by maxPatternLen-1 bytes so matches spanning a boundary are
// found by exactly one worker; the result is identical to FindAll.
//
// workers <= 0 selects GOMAXPROCS. Each worker compiles its own matcher
// from set (matchers are not concurrency-safe); for repeated scans,
// compile once per worker yourself and reuse.
func FindAllParallel(set *PatternSet, input []byte, opt Options, workers int) ([]Match, error) {
	if set == nil {
		return nil, fmt.Errorf("vpatch: nil pattern set")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(input) {
		workers = len(input)
	}
	if workers <= 1 {
		return FindAll(set, input, opt)
	}
	// Validate options once before spawning workers.
	if _, err := New(set, opt); err != nil {
		return nil, err
	}

	maxLen := 1
	for i := range set.Patterns() {
		if n := set.Patterns()[i].Len(); n > maxLen {
			maxLen = n
		}
	}

	results := make([][]Match, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	shard := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * shard
		end := start + shard
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			m, err := New(set, opt)
			if err != nil {
				errs[w] = err
				return
			}
			// Read past the shard end so spanning matches complete, but
			// emit only matches that *start* inside the shard.
			readEnd := end + maxLen - 1
			if readEnd > len(input) {
				readEnd = len(input)
			}
			var out []Match
			m.Scan(input[start:readEnd], nil, func(mm Match) {
				pos := int(mm.Pos) + start
				if pos < end {
					out = append(out, Match{PatternID: mm.PatternID, Pos: int32(pos)})
				}
			})
			results[w] = out
		}(w, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []Match
	for _, r := range results {
		all = append(all, r...)
	}
	patterns.SortMatches(all)
	return all, nil
}

// CountParallel returns only the number of matches found by
// FindAllParallel-equivalent sharded scanning (without materializing the
// matches).
func CountParallel(set *PatternSet, input []byte, opt Options, workers int) (uint64, error) {
	if set == nil {
		return 0, fmt.Errorf("vpatch: nil pattern set")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(input) {
		workers = len(input)
	}
	if workers <= 1 {
		m, err := New(set, opt)
		if err != nil {
			return 0, err
		}
		return Count(m, input), nil
	}
	if _, err := New(set, opt); err != nil {
		return 0, err
	}
	maxLen := 1
	for i := range set.Patterns() {
		if n := set.Patterns()[i].Len(); n > maxLen {
			maxLen = n
		}
	}
	counts := make([]uint64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	shard := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * shard
		end := start + shard
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			m, err := New(set, opt)
			if err != nil {
				errs[w] = err
				return
			}
			readEnd := end + maxLen - 1
			if readEnd > len(input) {
				readEnd = len(input)
			}
			limit := int32(end - start)
			n := uint64(0)
			m.Scan(input[start:readEnd], nil, func(mm Match) {
				if mm.Pos < limit {
					n++
				}
			})
			counts[w] = n
		}(w, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := uint64(0)
	for _, n := range counts {
		total += n
	}
	return total, nil
}
