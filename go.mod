module vpatch

go 1.21
