// httpids is a miniature network intrusion detection pipeline — the
// paper's motivating application. It generates a Snort-sized web rule
// set, synthesizes HTTP traffic with embedded attacks, and scans the
// traffic with every algorithm the paper evaluates, reporting alerts and
// per-algorithm throughput (the single-thread comparison of Fig. 4).
// It then replays the same traffic as thousands of short-lived flows —
// reordered, duplicated segments with FIN teardown — through the
// bounded-memory ids pipeline, showing flow lifecycle in action.
//
//	go run ./examples/httpids [-size MB] [-algo name]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func main() {
	sizeMB := flag.Int("size", 8, "traffic volume in MB")
	algoName := flag.String("algo", "", "run only this algorithm (vpatch spatch dfc vectordfc ac wumanber ffbf); default: the paper's Fig. 4 lineup")
	flag.Parse()

	// Rule set: the web-applicable subset of a Snort-v2.9.7-sized
	// synthetic set (~2K patterns), as in the paper's Fig. 4a.
	ruleSet := patterns.GenerateS1(1).WebSubset()
	fmt.Println(patterns.DescribeSet("rules", ruleSet))

	// Traffic: HTTP sessions with a low rate of embedded attacks.
	data := traffic.Synthesize(traffic.ISCXDay2, *sizeMB<<20, 42, ruleSet)
	fmt.Printf("traffic: %d MB of synthesized HTTP sessions\n\n", *sizeMB)

	algos := []vpatch.Algorithm{
		vpatch.AlgoAhoCorasick, vpatch.AlgoDFC, vpatch.AlgoVectorDFC,
		vpatch.AlgoSPatch, vpatch.AlgoVPatch,
	}
	if *algoName != "" {
		alg, err := vpatch.ParseAlgorithm(*algoName)
		if err != nil {
			log.Fatal(err)
		}
		algos = []vpatch.Algorithm{alg}
	}

	var baseline float64
	for _, alg := range algos {
		eng, err := vpatch.Compile(ruleSet, vpatch.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		matches := vpatch.Count(eng.NewSession(), data)
		elapsed := time.Since(start)
		gbps := float64(len(data)) * 8 / float64(elapsed.Nanoseconds())
		if alg == vpatch.AlgoDFC {
			baseline = gbps
		}
		rel := ""
		if baseline > 0 {
			rel = fmt.Sprintf("  (%.2fx vs DFC)", gbps/baseline)
		}
		fmt.Printf("%-14s %9d alerts  %7.3f Gbps%s\n", alg, matches, gbps, rel)
	}

	// Show a few concrete alerts from the winning engine, as an IDS
	// console would.
	fmt.Println("\nsample alerts (V-PATCH):")
	eng, _ := vpatch.Compile(ruleSet, vpatch.Options{})
	shown := 0
	eng.Scan(data, nil, func(match vpatch.Match) {
		if shown >= 5 {
			return
		}
		p := ruleSet.Pattern(match.PatternID)
		if p.Len() < 6 {
			return // skip the noisy short-token hits for display
		}
		shown++
		end := int(match.Pos) + p.Len()
		fmt.Printf("  ALERT sid=%d offset=%d payload=%q\n",
			match.PatternID+1, match.Pos, data[match.Pos:end])
	})

	// The same traffic as a NIDS actually sees it: thousands of
	// short-lived flows, segments reordered and duplicated, every flow
	// FIN-terminated. The ids pipeline reassembles, routes each flow to
	// its protocol rule group, and keeps memory bounded: a flow cap, an
	// idle timeout on the capture clock, and out-of-order byte budgets.
	fmt.Println("\n== flow pipeline (bounded memory) ==")
	const nFlows = 2000
	streams := make(map[netsim.FlowKey][]byte, nFlows)
	per := len(data) / nFlows
	for i := 0; i < nFlows; i++ {
		streams[netsim.FlowKey{
			SrcIP: 0x0A000001 + uint32(i), DstIP: 0xC0A80001,
			SrcPort: uint16(10000 + i), DstPort: 80,
		}] = data[i*per : (i+1)*per]
	}
	segs := netsim.Packetize(streams, netsim.PacketizeOptions{
		Jitter: 6, DuplicateFrac: 0.02, FIN: true, Seed: 7,
	})

	alerts := 0
	pipeline, err := ids.NewEngine(ruleSet, vpatch.Options{}, func(ids.Alert) { alerts++ })
	if err != nil {
		log.Fatal(err)
	}
	pipeline.SetLimits(netsim.Limits{
		MaxFlows:          512, // far fewer than the flows in the capture
		IdleTimeoutMicros: 10_000_000,
		FlowPendingBytes:  64 << 10,
		TotalPendingBytes: 8 << 20,
	})
	start := time.Now()
	for _, seg := range segs {
		pipeline.HandleSegment(seg)
	}
	pipeline.Flush()
	elapsed := time.Since(start)
	st := pipeline.Stats()
	fmt.Printf("  %d segments over %d flows: %d alerts in %s\n",
		len(segs), nFlows, alerts, elapsed.Round(time.Millisecond))
	fmt.Printf("  lifecycle: peak %d tracked flows (cap 512), %d closed, %d evicted, %d B dropped\n",
		st.PeakFlows, st.FlowsClosed, st.FlowsEvicted, st.BytesDropped)
}
