// serve is a client walkthrough of the vpatch-serve daemon: it starts
// the resident multi-tenant scanner in-process on a loopback port, then
// drives it exactly like an external client would — upload a compiled
// rule database, run one-shot scans, stream reassembled flows, hot-swap
// the rules with zero downtime mid-traffic, scrape /metrics, and drain.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
	"vpatch/internal/serve"
)

// blob compiles a pattern list into the serialized .vpdb database the
// daemon hot-loads. In production this is `vpatch-compile -ids`.
func blob(pats ...string) []byte {
	set := vpatch.NewPatternSet()
	for _, p := range pats {
		set.Add([]byte(p), false, vpatch.ProtoHTTP)
	}
	eng, err := ids.NewEngine(set, vpatch.Options{}, func(ids.Alert) {})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteDB(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func post(url string, body []byte) string {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, out)
	}
	return strings.TrimSpace(string(out))
}

func main() {
	// The daemon half: vpatch-serve does exactly this behind flags.
	srv := serve.New(serve.Config{
		OnAlert: func(tenant string, gen uint64, a ids.Alert) {
			fmt.Printf("  ALERT tenant=%s gen=%d rule=%d flow=%x:%d offset=%d\n",
				tenant, gen, a.PatternID, a.Flow.SrcIP, a.Flow.SrcPort, a.StreamOffset)
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon on", base)

	// 1. Load generation 1 into the default tenant (auto-created).
	fmt.Println("\n-- load rules v1:", post(base+"/v1/tenants/default/rules",
		blob("attack-alpha", "attack-beta")))

	// 2. One-shot scan over the HTTP API.
	fmt.Println("\n-- scan:", post(base+"/v1/scan?port=80",
		[]byte("GET /?q=attack-alpha attack-beta HTTP/1.1")))

	// 3. Stream a reassembled flow: segment frames in the daemon's wire
	// format, flushed so the alert is visible in the response.
	segs := []netsim.Segment{
		{Flow: netsim.FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 40001, DstPort: 80},
			Seq: 0, Payload: []byte("stream carrying atta")},
		{Flow: netsim.FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 40001, DstPort: 80},
			Seq: 20, Payload: []byte("ck-beta split across segments"), Flags: netsim.FlagFIN},
	}
	fmt.Println("\n-- stream:", post(base+"/v1/stream?flush=1", serve.EncodeSegments(segs)))

	// 4. Zero-downtime hot swap: generation 2 replaces the rules while
	// the daemon keeps serving; in-flight requests finish on gen 1.
	fmt.Println("\n-- load rules v2:", post(base+"/v1/tenants/default/rules",
		blob("attack-gamma")))
	fmt.Println("-- scan on v2:", post(base+"/v1/scan?port=80",
		[]byte("attack-alpha no longer matches; attack-gamma does")))

	// 5. Scrape the Prometheus surface.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\n-- /metrics (excerpt):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "vpatch_alerts_total") ||
			strings.HasPrefix(line, "vpatch_rules_generation") ||
			strings.HasPrefix(line, "vpatch_scanned_bytes_total") {
			fmt.Println("  ", line)
		}
	}

	// 6. Graceful drain: every shard flushes, residual state reported.
	fmt.Println("\n-- drain:", post(base+"/drain?timeout=10s", nil))
}
