// Quickstart: compile a small pattern set and scan a payload with
// V-PATCH, the paper's vectorized two-round filtering matcher.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vpatch"
)

func main() {
	// Build the pattern set. Patterns can be case-sensitive or nocase,
	// and are tagged with the traffic class of their rule.
	set := vpatch.NewPatternSet()
	set.Add([]byte("/etc/passwd"), false, vpatch.ProtoHTTP)
	set.Add([]byte("cmd.exe"), true, vpatch.ProtoHTTP) // case-insensitive
	set.Add([]byte("SELECT"), true, vpatch.ProtoHTTP)
	set.Add([]byte{0x90, 0x90, 0x90, 0x90}, false, vpatch.ProtoGeneric) // NOP sled

	// Compile. The zero Options value selects V-PATCH at AVX2 width; any
	// of the paper's algorithms can be chosen via Options.Algorithm. The
	// Engine is immutable and may be scanned from any goroutine; for hot
	// loops take a per-goroutine Session.
	eng, err := vpatch.Compile(set, vpatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := eng.NewSession()

	payload := []byte("GET /download?f=../../etc/passwd HTTP/1.1\r\n" +
		"Cookie: q=1' UNION select * FROM users--\r\n\r\n" +
		"...CMD.EXE\x90\x90\x90\x90...")

	// Scan. Matches report the pattern ID and the start offset; the
	// Counters argument is optional instrumentation.
	var c vpatch.Counters
	m.Scan(payload, &c, func(match vpatch.Match) {
		p := set.Pattern(match.PatternID)
		fmt.Printf("  offset %3d: pattern %d %q (nocase=%v)\n",
			match.Pos, match.PatternID, p.Data, p.Nocase)
	})

	fmt.Printf("scanned %d bytes, %d matches\n", c.BytesScanned, c.Matches)
	fmt.Printf("filtering rejected %.1f%% of all positions before verification\n",
		(1-c.CandidateFrac())*100)
}
