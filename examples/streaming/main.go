// streaming demonstrates the two deployment patterns the paper's system
// model assumes: (1) chunked scanning of a reassembled protocol stream,
// where matches may span chunk boundaries (StreamScanner), and
// (2) multiple independent streams scanned in parallel — one compiled
// Engine shared by every goroutine, one cheap Session per goroutine —
// the paper's multi-hardware-thread scaling argument (§V-A: "different
// hardware threads operate independently on different parts of the
// stream").
//
//	go run ./examples/streaming [-streams N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"vpatch"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func main() {
	nStreams := flag.Int("streams", 4, "number of parallel streams")
	flag.Parse()

	ruleSet := patterns.GenerateS1(1).WebSubset()

	// One compiled engine serves the whole example: the chunked scan and
	// every parallel worker below share its read-only tables.
	eng, err := vpatch.Compile(ruleSet, vpatch.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: chunked scanning of one stream. ---
	fmt.Println("== chunked stream scan ==")
	single := eng.NewSession()
	stream := traffic.Synthesize(traffic.ISCXDay6, 4<<20, 7, ruleSet)

	var streamed uint64
	scanner, err := single.NewStreamScanner(func(vpatch.StreamMatch) { streamed++ })
	if err != nil {
		log.Fatal(err)
	}
	const chunk = 1500 // one MTU at a time
	for pos := 0; pos < len(stream); pos += chunk {
		end := pos + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if _, err := scanner.Write(stream[pos:end]); err != nil {
			log.Fatal(err)
		}
	}
	whole := vpatch.Count(single, stream)
	fmt.Printf("  %d matches streamed in %d-byte chunks; whole-buffer scan: %d (must agree)\n\n",
		streamed, chunk, whole)
	if streamed != whole {
		log.Fatalf("BUG: stream scan diverged (%d vs %d)", streamed, whole)
	}

	// --- Part 2: parallel streams, one shared engine, one session per
	// goroutine. ---
	fmt.Printf("== %d parallel streams ==\n", *nStreams)
	streams := make([][]byte, *nStreams)
	for i := range streams {
		streams[i] = traffic.Synthesize(traffic.ISCXDay2, 8<<20, int64(100+i), ruleSet)
	}

	var total atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := range streams {
		wg.Add(1)
		go func(data []byte) {
			defer wg.Done()
			// The engine's compiled tables are immutable and shared; a
			// Session is the worker's private scratch — no recompilation.
			total.Add(vpatch.Count(eng.NewSession(), data))
		}(streams[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	bytes := 0
	for _, s := range streams {
		bytes += len(s)
	}
	fmt.Printf("  %d matches over %d MB in %s — aggregate %.2f Gbps\n",
		total.Load(), bytes>>20, elapsed.Round(time.Millisecond),
		float64(bytes)*8/float64(elapsed.Nanoseconds()))
}
