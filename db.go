package vpatch

// Compiled pattern databases: the serialized form of an Engine.
//
// Production rule sets are compiled offline — the way DFC and
// Hyperscan-class matchers ship a read-only compiled database — and
// loaded at startup in milliseconds instead of recompiled on every
// process start. Serialize/WriteTo flatten an Engine's compiled state
// (filters, automata, verification tables and the pattern set itself)
// into a versioned, checksummed .vpdb blob; Deserialize/ReadFrom
// restore an Engine that is scan-for-scan identical to the original,
// including batch and session paths, and just as goroutine-safe.
//
// The load path trusts nothing: magic, format version, CRC and the
// pattern-set digest are validated, and every decoded array length and
// index is bounds-checked, so a truncated, corrupted or mismatched
// database yields an error — never a panic. See the README's "Offline
// compilation" section for the format versioning policy.

import (
	"fmt"
	"io"

	"vpatch/internal/ahocorasick"
	"vpatch/internal/core"
	"vpatch/internal/dbfmt"
	"vpatch/internal/dfc"
	"vpatch/internal/engine"
	"vpatch/internal/ffbf"
	"vpatch/internal/patterns"
	"vpatch/internal/wumanber"
)

// DBFormatVersion is the compiled-database format version this build
// reads and writes. Databases of any other version are rejected at
// load; recompile from rules after upgrading across a version bump.
const DBFormatVersion = dbfmt.FormatVersion

// widther is implemented by the vectorized engines.
type widther interface{ Width() int }

// VectorWidth returns the engine's vector width in 32-bit lanes, or 0
// for scalar engines.
func (e *Engine) VectorWidth() int {
	if w, ok := e.eng.(widther); ok {
		return w.Width()
	}
	return 0
}

// Serialize flattens the engine into a compiled database blob.
func (e *Engine) Serialize() ([]byte, error) {
	codec, ok := e.eng.(engine.DBCodec)
	if !ok {
		return nil, fmt.Errorf("vpatch: %s engine does not support serialization", e.alg)
	}
	var pe dbfmt.Encoder
	patterns.EncodeSet(&pe, e.set)
	var ee dbfmt.Encoder
	codec.EncodeCompiled(&ee)
	h := dbfmt.Header{
		Kind:      dbfmt.KindEngine,
		Algorithm: uint8(e.alg),
		Width:     uint8(e.VectorWidth()),
		Digest:    e.set.Digest(),
	}
	return dbfmt.Encode(h, []dbfmt.Section{
		{Tag: dbfmt.TagPatterns, Data: pe.Bytes()},
		{Tag: dbfmt.TagEngine, Data: ee.Bytes()},
	}), nil
}

// WriteTo writes the serialized engine to w (io.WriterTo).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	blob, err := e.Serialize()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(blob)
	return int64(n), err
}

// Deserialize restores an Engine from a compiled database blob. The
// returned Engine is goroutine-safe exactly like a Compile result; its
// matches are identical to the engine that was serialized. The Engine
// may retain data (filters alias it), so the caller must not modify
// the blob afterwards; use ReadFrom when reading from a file to get a
// privately owned buffer.
func Deserialize(data []byte) (*Engine, error) {
	h, secs, err := dbfmt.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("vpatch: %w", err)
	}
	if h.Kind != dbfmt.KindEngine {
		if h.Kind == dbfmt.KindIDS {
			return nil, fmt.Errorf("vpatch: database holds an IDS rule-group database, not a single engine (load it with the ids package)")
		}
		return nil, fmt.Errorf("vpatch: unknown database kind %d", h.Kind)
	}
	alg := Algorithm(h.Algorithm)
	if alg < AlgoVPatch || alg > AlgoFFBF {
		return nil, fmt.Errorf("vpatch: database compiled for unknown algorithm %d", h.Algorithm)
	}

	psec := dbfmt.FindSection(secs, dbfmt.TagPatterns)
	if psec == nil {
		return nil, fmt.Errorf("vpatch: database has no pattern section")
	}
	pd := dbfmt.NewDecoder(psec)
	set, err := patterns.DecodeSet(pd)
	if err != nil {
		return nil, fmt.Errorf("vpatch: pattern section: %w", err)
	}
	if err := pd.Finish(); err != nil {
		return nil, fmt.Errorf("vpatch: pattern section: %w", err)
	}
	if got := set.Digest(); got != h.Digest {
		return nil, fmt.Errorf("vpatch: pattern-set digest mismatch (header %#x, decoded %#x)", h.Digest, got)
	}

	esec := dbfmt.FindSection(secs, dbfmt.TagEngine)
	if esec == nil {
		return nil, fmt.Errorf("vpatch: database has no engine section")
	}
	d := dbfmt.NewDecoder(esec)
	var eng engine.Engine
	switch alg {
	case AlgoVPatch:
		eng, err = core.DecodeVPatch(d, set)
	case AlgoSPatch:
		eng, err = core.DecodeSPatch(d, set)
	case AlgoDFC:
		eng, err = dfc.Decode(d, set)
	case AlgoVectorDFC:
		eng, err = dfc.DecodeVector(d, set)
	case AlgoAhoCorasick:
		eng, err = ahocorasick.Decode(d, set)
	case AlgoWuManber:
		eng, err = wumanber.Decode(d, set)
	case AlgoFFBF:
		eng, err = ffbf.Decode(d, set)
	}
	if err != nil {
		return nil, fmt.Errorf("vpatch: %s engine section: %w", alg, err)
	}
	out := &Engine{alg: alg, set: set, eng: eng}
	if w := out.VectorWidth(); w != int(h.Width) {
		return nil, fmt.Errorf("vpatch: header vector width %d disagrees with engine width %d", h.Width, w)
	}
	return out, nil
}

// ReadFrom reads a complete compiled database from r and restores the
// Engine. The whole database is buffered in memory (the format is
// CRC-checked as one unit).
func ReadFrom(r io.Reader) (*Engine, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("vpatch: reading database: %w", err)
	}
	return Deserialize(data)
}

// Info summarizes a compiled engine: what it matches and what it
// costs. Surfaced by the vpatch-compile and vpatch-bench tools.
type Info struct {
	// Algorithm is the engine's matching algorithm.
	Algorithm Algorithm
	// Patterns is the number of compiled patterns.
	Patterns int
	// MaxPatternLen is the longest pattern in bytes (stream carries and
	// shard overlaps are sized from it).
	MaxPatternLen int
	// VectorWidth is the lane count of vectorized engines, 0 otherwise.
	VectorWidth int
	// MemoryBytes estimates the resident size of the compiled state
	// (filters, automata, verification tables; excludes the pattern
	// set's own bytes).
	MemoryBytes int
	// SerializedBytes is the size of the engine's compiled database
	// (Serialize output), including the pattern set.
	SerializedBytes int
	// Accel describes the engine's skip-loop acceleration layer; the
	// zero value means the engine has none (Aho-Corasick, Wu-Manber,
	// FFBF, Vector-DFC).
	Accel AccelInfo
	// Kernel is the extract kernel the engine's filtering round resolved
	// to at Compile/Deserialize time ("avx2", "ssse3", "swar"); empty
	// for engines without the kernel dispatch.
	Kernel string
}

// AccelInfo summarizes the hot-path acceleration of a filtering engine:
// which skip primitive compilation selected and how dense the rule
// set's start windows are (the quantity that decides whether skipping
// can pay — see the README's performance guide).
type AccelInfo struct {
	// Mode is the selected skip primitive: "index-byte"
	// (bytes.IndexByte over at most 2 possible start bytes),
	// "window-bitmap" (branchless L1-resident 2-byte-window bitmap), or
	// "off" (density above break-even, acceleration disabled, or an
	// engine without the layer).
	Mode string
	// Enabled reports whether scans actually use the skip loop.
	Enabled bool
	// WindowDensity is the fraction of the 2^16 possible 2-byte windows
	// that can start a candidate — the expected viable-position rate on
	// uniform traffic. StartBytes counts the byte values that can start
	// a candidate window (out of 256).
	WindowDensity float64
	StartBytes    int
}

// Info reports the engine's summary. It serializes the engine to
// measure SerializedBytes, so it is not free — call it for reporting,
// not per scan.
func (e *Engine) Info() Info {
	inf := Info{
		Algorithm:     e.alg,
		Patterns:      e.set.Len(),
		MaxPatternLen: e.set.MaxLen(),
		VectorWidth:   e.VectorWidth(),
	}
	if s, ok := e.eng.(engine.Sizer); ok {
		inf.MemoryBytes = s.MemoryFootprint()
	}
	if ar, ok := e.eng.(engine.AccelReporter); ok {
		ai := ar.AccelInfo()
		inf.Accel = AccelInfo{
			Mode:          ai.Mode,
			Enabled:       ai.Enabled,
			WindowDensity: ai.WindowDensity,
			StartBytes:    ai.StartBytes,
		}
	}
	if kr, ok := e.eng.(engine.KernelReporter); ok {
		inf.Kernel = kr.KernelInfo()
	}
	if blob, err := e.Serialize(); err == nil {
		inf.SerializedBytes = len(blob)
	}
	return inf
}

// String renders the info as one human-readable line.
func (i Info) String() string {
	w := ""
	if i.VectorWidth > 0 {
		w = fmt.Sprintf(" W=%d", i.VectorWidth)
	}
	a := ""
	if i.Accel.Mode != "" {
		a = fmt.Sprintf(", accel %s", i.Accel.Mode)
		if i.Accel.Enabled {
			a += fmt.Sprintf(" (density %.3f, %d start bytes)",
				i.Accel.WindowDensity, i.Accel.StartBytes)
		}
	}
	if i.Kernel != "" {
		a += fmt.Sprintf(", kernel %s", i.Kernel)
	}
	return fmt.Sprintf("%s%s: %d patterns (max len %d), %s compiled state, %s serialized%s",
		i.Algorithm, w, i.Patterns, i.MaxPatternLen,
		fmtBytes(i.MemoryBytes), fmtBytes(i.SerializedBytes), a)
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
