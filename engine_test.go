package vpatch

import (
	"sync"
	"testing"

	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// TestEngineSharedAcrossSessions is the concurrency contract of the
// Engine/Session split: one compiled Engine, 8 goroutines each scanning
// the same input through a private Session, and every goroutine must
// produce byte-identical matches to a serial FindAll. Run under -race
// this also proves the compiled state is never written during a scan,
// for all seven algorithms.
func TestEngineSharedAcrossSessions(t *testing.T) {
	set := patterns.GenerateS1(7).Subset(120, 3)
	input := traffic.Synthesize(traffic.ISCXDay2, 64<<10, 5, set)
	const goroutines = 8

	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		want := eng.FindAll(input)
		if len(want) == 0 {
			t.Fatalf("%v: test needs matches", alg)
		}

		results := make([][]Match, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := eng.NewSession()
				var out []Match
				// Two scans per session: sessions must also be reusable.
				for rep := 0; rep < 2; rep++ {
					out = out[:0]
					s.Scan(input, nil, func(m Match) { out = append(out, m) })
				}
				patterns.SortMatches(out)
				results[g] = out
			}(g)
		}
		wg.Wait()

		for g, got := range results {
			if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
				t.Fatalf("%v: goroutine %d diverged: %d matches vs serial %d",
					alg, g, len(got), len(want))
			}
		}
	}
}

// TestEngineScanConcurrent exercises the pooled Engine.Scan convenience
// path from many goroutines at once (no explicit sessions).
func TestEngineScanConcurrent(t *testing.T) {
	set := patterns.GenerateS1(11).Subset(80, 2)
	input := traffic.Synthesize(traffic.ISCXDay6, 32<<10, 9, set)
	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		want := Count(eng, input)
		var wg sync.WaitGroup
		counts := make([]uint64, 8)
		for g := range counts {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				counts[g] = Count(eng, input)
			}(g)
		}
		wg.Wait()
		for g, n := range counts {
			if n != want {
				t.Fatalf("%v: goroutine %d counted %d, want %d", alg, g, n, want)
			}
		}
	}
}

// TestEngineParallelReuse: one Engine, repeated FindAllParallel /
// CountParallel calls — compiled once, identical to serial.
func TestEngineParallelReuse(t *testing.T) {
	set := patterns.GenerateS1(3).Subset(100, 7)
	input := traffic.Synthesize(traffic.ISCXDay2, 64<<10, 11, set)
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.FindAll(input)
	for _, workers := range []int{1, 2, 5, 8} {
		got := eng.FindAllParallel(input, workers)
		if !patterns.EqualMatches(got, append([]Match(nil), want...)) {
			t.Fatalf("workers=%d: %d matches vs serial %d", workers, len(got), len(want))
		}
		if n := eng.CountParallel(input, workers); n != uint64(len(want)) {
			t.Fatalf("workers=%d: count %d vs %d", workers, n, len(want))
		}
	}
}

func TestSessionImplementsMatcher(t *testing.T) {
	set := PatternSetFromStrings("needle")
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var m Matcher = eng.NewSession()
	if m.Algorithm() != AlgoVPatch || m.Set() != set {
		t.Fatal("session does not expose engine identity")
	}
	// Sessions feed the stream scanner, the canonical Matcher consumer.
	var hits int
	sc, err := NewStreamScanner(m, func(Match) { hits++ })
	if err != nil {
		t.Fatal(err)
	}
	sc.Write([]byte("....nee"))
	sc.Write([]byte("dle...."))
	if hits != 1 {
		t.Fatalf("stream scan through session found %d matches, want 1", hits)
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"vpatch": AlgoVPatch, "V-PATCH": AlgoVPatch,
		"spatch": AlgoSPatch, "S-Patch": AlgoSPatch,
		"dfc": AlgoDFC, "DFC": AlgoDFC,
		"vectordfc": AlgoVectorDFC, "Vector-DFC": AlgoVectorDFC, "vdfc": AlgoVectorDFC,
		"ac": AlgoAhoCorasick, "Aho-Corasick": AlgoAhoCorasick, "ahocorasick": AlgoAhoCorasick,
		"wumanber": AlgoWuManber, "Wu-Manber": AlgoWuManber, "wm": AlgoWuManber,
		"ffbf": AlgoFFBF, "FFBF": AlgoFFBF,
		" vpatch ": AlgoVPatch,
	}
	for name, want := range cases {
		got, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseAlgorithm("snort"); err == nil {
		t.Fatal("unknown name accepted")
	}
	// Round-trip: every algorithm's String form parses back to itself.
	for _, alg := range allAlgorithms {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Fatalf("round-trip %v: got %v, err %v", alg, got, err)
		}
	}
}

func TestPatternSetMaxLen(t *testing.T) {
	if n := NewPatternSet().MaxLen(); n != 0 {
		t.Fatalf("empty set MaxLen = %d, want 0", n)
	}
	if n := PatternSetFromStrings("ab", "abcdef", "x").MaxLen(); n != 6 {
		t.Fatalf("MaxLen = %d, want 6", n)
	}
}

// BenchmarkParallelCompileStrategy measures the end-to-end (compile +
// scan) cost of one sharded parallel job, comparing the Engine API's
// compile-once sharing against the seed's behavior of compiling a
// private matcher inside every worker. Aho-Corasick makes the compiled
// state large enough that per-worker duplication dominates; V-PATCH
// shows the effect on the paper's default engine.
func BenchmarkParallelCompileStrategy(b *testing.B) {
	f := benchFixtures()
	data := f.data["ISCX-day2"]
	const workers = 4

	for _, alg := range []Algorithm{AlgoAhoCorasick, AlgoVPatch} {
		opt := Options{Algorithm: alg}
		b.Run(alg.String()+"/compile-once", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				eng, err := Compile(f.s1web, opt)
				if err != nil {
					b.Fatal(err)
				}
				eng.CountParallel(data, workers)
			}
		})
		b.Run(alg.String()+"/compile-per-worker", func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				seedCountParallel(b, f.s1web, data, opt, workers)
			}
		})
	}
}

// seedCountParallel replicates the seed's CountParallel: every worker
// compiles its own matcher from the set on every call.
func seedCountParallel(b *testing.B, set *PatternSet, input []byte, opt Options, workers int) uint64 {
	maxLen := set.MaxLen()
	if maxLen < 1 {
		maxLen = 1
	}
	counts := make([]uint64, workers)
	var wg sync.WaitGroup
	shard := (len(input) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * shard
		end := start + shard
		if end > len(input) {
			end = len(input)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			m, err := New(set, opt) // the seed's per-worker compile
			if err != nil {
				b.Error(err)
				return
			}
			readEnd := end + maxLen - 1
			if readEnd > len(input) {
				readEnd = len(input)
			}
			limit := int32(end - start)
			n := uint64(0)
			m.Scan(input[start:readEnd], nil, func(mm Match) {
				if mm.Pos < limit {
					n++
				}
			})
			counts[w] = n
		}(w, start, end)
	}
	wg.Wait()
	total := uint64(0)
	for _, n := range counts {
		total += n
	}
	return total
}
