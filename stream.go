package vpatch

import (
	"fmt"
)

// StreamScanner scans an unbounded byte stream delivered in chunks (the
// reassembled protocol stream of a NIDS), finding matches that span chunk
// boundaries. It keeps a carry of the last maxPatternLen-1 bytes of the
// stream; each Write scans carry+chunk and reports only matches that end
// inside the new bytes, so no match is missed or double-reported.
//
// Offsets in emitted matches are absolute stream offsets.
type StreamScanner struct {
	m        Matcher
	emit     EmitFunc
	carry    []byte
	maxLen   int
	consumed int64 // total stream bytes fully processed (end of carry)
}

// NewStreamScanner wraps a Matcher for chunked scanning. emit receives
// every match with absolute stream offsets; it must be non-nil.
//
// Pass a *Session to scan with a shared compiled Engine (one
// StreamScanner per stream, one Session per goroutine; several
// StreamScanners on one goroutine may share a Session). Passing an
// *Engine directly also works and is safe from any goroutine, at the
// cost of a scratch-pool round-trip per Write.
func NewStreamScanner(m Matcher, emit EmitFunc) (*StreamScanner, error) {
	if m == nil {
		return nil, fmt.Errorf("vpatch: nil matcher")
	}
	if emit == nil {
		return nil, fmt.Errorf("vpatch: nil emit func")
	}
	maxLen := m.Set().MaxLen()
	if maxLen < 1 {
		maxLen = 1
	}
	return &StreamScanner{
		m:      m,
		emit:   emit,
		carry:  make([]byte, 0, (maxLen-1)*2),
		maxLen: maxLen,
	}, nil
}

// Write feeds the next chunk of the stream. It may be called with chunks
// of any size, including empty ones.
func (s *StreamScanner) Write(chunk []byte) (int, error) {
	if len(chunk) == 0 {
		return 0, nil
	}
	buf := append(s.carry, chunk...)
	carryLen := len(s.carry)
	base := s.consumed - int64(carryLen)

	// Matches that end at or before carryLen were already reported by an
	// earlier Write (they lie entirely within the carry).
	s.m.Scan(buf, nil, func(m Match) {
		end := int(m.Pos) + s.m.Set().Pattern(m.PatternID).Len()
		if end <= carryLen {
			return
		}
		s.emit(Match{PatternID: m.PatternID, Pos: int32(base + int64(m.Pos))})
	})

	s.consumed += int64(len(chunk))
	keep := s.maxLen - 1
	if keep > len(buf) {
		keep = len(buf)
	}
	// Re-slice into the scanner-owned buffer so callers may reuse chunk.
	s.carry = append(s.carry[:0], buf[len(buf)-keep:]...)
	return len(chunk), nil
}

// Consumed returns the total number of stream bytes processed so far.
func (s *StreamScanner) Consumed() int64 { return s.consumed }

// Reset prepares the scanner for a new stream (carry and offsets clear).
func (s *StreamScanner) Reset() {
	s.carry = s.carry[:0]
	s.consumed = 0
}
