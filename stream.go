package vpatch

import (
	"fmt"
)

// StreamMatch is one reported occurrence in an unbounded stream: the
// pattern's ID and the absolute stream offset of the occurrence. Stream
// offsets are 64-bit — a long-lived flow passes 2 GiB in seconds at the
// line rates the paper targets, so the in-buffer Match.Pos (int32)
// cannot carry them.
type StreamMatch struct {
	PatternID int32
	Pos       int64
}

// StreamEmitFunc receives stream matches with absolute 64-bit offsets.
type StreamEmitFunc func(StreamMatch)

// StreamScanner scans an unbounded byte stream delivered in chunks (the
// reassembled protocol stream of a NIDS), finding matches that span chunk
// boundaries. It keeps a carry of the last maxPatternLen-1 bytes of the
// stream; each Write scans carry+chunk and reports only matches that end
// inside the new bytes, so no match is missed or double-reported.
//
// Offsets in emitted matches are absolute 64-bit stream offsets.
type StreamScanner struct {
	scan     func(input []byte, c *Counters, emit EmitFunc)
	set      *PatternSet
	emit     StreamEmitFunc
	carry    []byte
	maxLen   int
	consumed int64 // total stream bytes fully processed (end of carry)
}

// newStreamScanner wires a scan function and its pattern set into the
// chunked-scanning state machine.
func newStreamScanner(scan func([]byte, *Counters, EmitFunc), set *PatternSet, emit StreamEmitFunc) (*StreamScanner, error) {
	if emit == nil {
		return nil, fmt.Errorf("vpatch: nil emit func")
	}
	maxLen := set.MaxLen()
	if maxLen < 1 {
		maxLen = 1
	}
	return &StreamScanner{
		scan:   scan,
		set:    set,
		emit:   emit,
		carry:  make([]byte, 0, (maxLen-1)*2),
		maxLen: maxLen,
	}, nil
}

// NewStreamScanner returns a scanner for one stream backed by this
// engine's pooled Scan path: safe to construct and Write from any
// goroutine (one goroutine per scanner at a time), at the cost of a
// scratch-pool round-trip per Write. emit receives every match with
// absolute 64-bit stream offsets; it must be non-nil.
func (e *Engine) NewStreamScanner(emit StreamEmitFunc) (*StreamScanner, error) {
	return newStreamScanner(e.Scan, e.set, emit)
}

// NewStreamScanner returns a scanner for one stream scanning through
// this session — the lowest-overhead form: one Session per goroutine,
// any number of StreamScanners (one per stream) on top of it. The
// scanner inherits the session's single-goroutine constraint.
func (s *Session) NewStreamScanner(emit StreamEmitFunc) (*StreamScanner, error) {
	return newStreamScanner(s.Scan, s.eng.set, emit)
}

// NewStreamScanner wraps a Matcher for chunked scanning: a thin adapter
// over the Engine/Session constructors, kept so code written against
// the Matcher interface still compiles. The adapter narrows stream
// offsets to Match's int32 — past 2 GiB of stream they wrap.
//
// Deprecated: use Engine.NewStreamScanner or Session.NewStreamScanner,
// whose StreamEmitFunc carries full 64-bit offsets.
func NewStreamScanner(m Matcher, emit EmitFunc) (*StreamScanner, error) {
	if m == nil {
		return nil, fmt.Errorf("vpatch: nil matcher")
	}
	if emit == nil {
		return nil, fmt.Errorf("vpatch: nil emit func")
	}
	return newStreamScanner(m.Scan, m.Set(), func(sm StreamMatch) {
		emit(Match{PatternID: sm.PatternID, Pos: int32(sm.Pos)})
	})
}

// Write feeds the next chunk of the stream. It may be called with chunks
// of any size, including empty ones.
func (s *StreamScanner) Write(chunk []byte) (int, error) {
	if len(chunk) == 0 {
		return 0, nil
	}
	buf := append(s.carry, chunk...)
	carryLen := len(s.carry)
	base := s.consumed - int64(carryLen)

	// Matches that end at or before carryLen were already reported by an
	// earlier Write (they lie entirely within the carry).
	s.scan(buf, nil, func(m Match) {
		end := int(m.Pos) + s.set.Pattern(m.PatternID).Len()
		if end <= carryLen {
			return
		}
		s.emit(StreamMatch{PatternID: m.PatternID, Pos: base + int64(m.Pos)})
	})

	s.consumed += int64(len(chunk))
	keep := s.maxLen - 1
	if keep > len(buf) {
		keep = len(buf)
	}
	// Re-slice into the scanner-owned buffer so callers may reuse chunk.
	s.carry = append(s.carry[:0], buf[len(buf)-keep:]...)
	return len(chunk), nil
}

// Consumed returns the total number of stream bytes processed so far.
func (s *StreamScanner) Consumed() int64 { return s.consumed }

// Reset prepares the scanner for a new stream (carry and offsets clear).
func (s *StreamScanner) Reset() {
	s.carry = s.carry[:0]
	s.consumed = 0
}
