package vpatch

import (
	"math/rand"
	"sync"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// batchFixtureBuffers builds a shuffled batch exercising every edge the
// batch path has: IMIX-sized packets with embedded attacks, empty
// buffers, sub-window buffers (1-3 B, scalar-only), and one
// multi-chunk buffer (forces mid-buffer verification flushes).
func batchFixtureBuffers(set *patterns.Set, seed int64) [][]byte {
	bufs := traffic.Packets(traffic.ISCXDay2, traffic.SimpleIMIX, 120, seed, set)
	bufs = append(bufs,
		nil,
		[]byte{},
		[]byte("a"),
		[]byte("ab"),
		[]byte("abc"),
		traffic.Synthesize(traffic.ISCXDay6, 96<<10, seed+1, set), // > one 64 KB chunk
	)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(bufs), func(i, j int) { bufs[i], bufs[j] = bufs[j], bufs[i] })
	return bufs
}

// TestScanBatchMatchesSerial is the batch contract: for every
// algorithm, ScanBatch over a shuffled set of buffers reports — buffer
// by buffer — exactly the matches a serial FindAll of that buffer
// reports. Short patterns make the scalar-tail and sub-window paths
// carry matches too.
func TestScanBatchMatchesSerial(t *testing.T) {
	set := patterns.GenerateS1(7).Subset(150, 3)
	set.Add([]byte("ab"), false, patterns.ProtoGeneric) // short-filter coverage
	set.Add([]byte("T"), true, patterns.ProtoGeneric)   // 1-byte, nocase
	bufs := batchFixtureBuffers(set, 11)

	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		want := make([][]Match, len(bufs))
		total := 0
		for i, buf := range bufs {
			want[i] = eng.FindAll(buf)
			total += len(want[i])
		}
		if total == 0 {
			t.Fatalf("%v: test needs matches", alg)
		}

		got := eng.FindAllBatch(bufs)
		for i := range bufs {
			if !patterns.EqualMatches(got[i], want[i]) {
				t.Fatalf("%v: buffer %d (%d B): batch %d matches, serial %d",
					alg, i, len(bufs[i]), len(got[i]), len(want[i]))
			}
		}

		// Session path, and batch reuse on the same session.
		s := eng.NewSession()
		for rep := 0; rep < 2; rep++ {
			out := make([][]Match, len(bufs))
			s.ScanBatch(bufs, nil, func(b int, m Match) { out[b] = append(out[b], m) })
			for i := range bufs {
				patterns.SortMatches(out[i])
				if !patterns.EqualMatches(out[i], want[i]) {
					t.Fatalf("%v: session batch rep %d diverged on buffer %d", alg, rep, i)
				}
			}
		}
	}
}

// TestVPatchBatchInstrumentedPath: V-PATCH's instrumented batch scan
// (the explicit lane-per-packet vector engine) must be match-identical
// to the fused timing path, keep lane occupancy near 1.0 on uniform
// small packets (the point of lane refill), and count every byte.
func TestVPatchBatchInstrumentedPath(t *testing.T) {
	set := patterns.GenerateS1(5).Subset(200, 1)
	bufs := batchFixtureBuffers(set, 23)
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.FindAllBatch(bufs) // fused path (nil counters)

	var c Counters
	s := eng.NewSession()
	out := make([][]Match, len(bufs))
	s.ScanBatch(bufs, &c, func(b int, m Match) { out[b] = append(out[b], m) })
	for i := range bufs {
		patterns.SortMatches(out[i])
		if !patterns.EqualMatches(out[i], want[i]) {
			t.Fatalf("instrumented batch diverged from fused on buffer %d", i)
		}
	}

	var total uint64
	for _, b := range bufs {
		total += uint64(len(b))
	}
	if c.BytesScanned != total {
		t.Fatalf("BytesScanned %d, want %d", c.BytesScanned, total)
	}
	if c.BatchIters == 0 || c.MergedGathers == 0 {
		t.Fatalf("batch instrumentation missing: %+v", c)
	}

	// Uniform 64 B packets, many more than W: occupancy must be near
	// 1.0 — the serial design would waste most lanes on inputs this
	// small.
	small := traffic.FixedPackets(traffic.ISCXDay2, 64, 256, 9, set)
	var cs metrics.Counters
	eng.NewSession().ScanBatch(small, &cs, nil)
	if frac := cs.BatchLaneFrac(8); frac < 0.95 {
		t.Fatalf("lane occupancy %.3f on uniform 64 B packets, want >= 0.95", frac)
	}
}

// TestConcurrentBatchSessions: one Engine, 8 goroutines each
// batch-scanning through a private Session; run under -race this
// proves batch scratch state is fully per-session.
func TestConcurrentBatchSessions(t *testing.T) {
	set := patterns.GenerateS1(13).Subset(120, 5)
	bufs := batchFixtureBuffers(set, 31)

	for _, alg := range allAlgorithms {
		eng, err := Compile(set, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		want := eng.FindAllBatch(bufs)

		const goroutines = 8
		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := eng.NewSession()
				out := make([][]Match, len(bufs))
				s.ScanBatch(bufs, nil, func(b int, m Match) { out[b] = append(out[b], m) })
				for i := range bufs {
					patterns.SortMatches(out[i])
					if !patterns.EqualMatches(out[i], want[i]) {
						errs <- alg.String()
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if name, ok := <-errs; ok {
			t.Fatalf("%s: concurrent batch session diverged", name)
		}
	}
}

// TestFindAllBatchParallel: the shared-queue parallel batch scan must
// equal the single-threaded batch scan for any worker count.
func TestFindAllBatchParallel(t *testing.T) {
	set := patterns.GenerateS1(3).Subset(100, 7)
	bufs := batchFixtureBuffers(set, 41)
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := eng.FindAllBatch(bufs)
	for _, workers := range []int{1, 2, 5, 8} {
		got := eng.FindAllBatchParallel(bufs, workers)
		for i := range bufs {
			if !patterns.EqualMatches(got[i], want[i]) {
				t.Fatalf("workers=%d: buffer %d diverged", workers, i)
			}
		}
	}
}

// TestFindAllBatchConvenience covers the compile-and-scan helper and
// the empty-batch edge.
func TestFindAllBatchConvenience(t *testing.T) {
	set := PatternSetFromStrings("needle")
	got, err := FindAllBatch(set, [][]byte{[]byte("a needle b"), []byte("none"), nil}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 1 || got[0][0].Pos != 2 || len(got[1]) != 0 || len(got[2]) != 0 {
		t.Fatalf("FindAllBatch = %v", got)
	}
	eng, err := Compile(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out := eng.FindAllBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
}
