package patterns

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndLookup(t *testing.T) {
	s := NewSet()
	id := s.Add([]byte("GET"), false, ProtoHTTP)
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	p := s.Pattern(id)
	if string(p.Data) != "GET" || p.Nocase || p.Proto != ProtoHTTP {
		t.Fatalf("stored pattern %+v", p)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestAddRejectsEmpty(t *testing.T) {
	s := NewSet()
	if id := s.Add(nil, false, ProtoGeneric); id >= 0 {
		t.Fatalf("empty pattern accepted with id %d", id)
	}
	if s.Len() != 0 {
		t.Fatal("empty pattern stored")
	}
}

func TestAddDeduplicates(t *testing.T) {
	s := NewSet()
	a := s.Add([]byte("abc"), false, ProtoGeneric)
	b := s.Add([]byte("abc"), false, ProtoHTTP)
	if a != b {
		t.Fatalf("duplicate got new id: %d vs %d", a, b)
	}
	// Same bytes with different case-sensitivity is a distinct pattern.
	c := s.Add([]byte("abc"), true, ProtoGeneric)
	if c == a {
		t.Fatal("nocase variant collided with case-sensitive pattern")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestAddCopiesData(t *testing.T) {
	s := NewSet()
	buf := []byte("xyz")
	id := s.Add(buf, false, ProtoGeneric)
	buf[0] = '!'
	if string(s.Pattern(id).Data) != "xyz" {
		t.Fatal("Add aliased caller's buffer")
	}
}

func TestNocaseStoredFolded(t *testing.T) {
	s := NewSet()
	id := s.Add([]byte("GeT"), true, ProtoHTTP)
	if string(s.Pattern(id).Data) != "get" {
		t.Fatalf("nocase pattern stored as %q", s.Pattern(id).Data)
	}
}

func TestMatchesAt(t *testing.T) {
	p := Pattern{Data: []byte("abc")}
	input := []byte("xxabcxx")
	if !p.MatchesAt(input, 2) {
		t.Fatal("missed match at 2")
	}
	if p.MatchesAt(input, 1) || p.MatchesAt(input, 3) {
		t.Fatal("false match")
	}
	if p.MatchesAt(input, 5) {
		t.Fatal("match past end")
	}
	if p.MatchesAt(input, -1) {
		t.Fatal("match at negative offset")
	}
}

func TestMatchesAtNocase(t *testing.T) {
	p := Pattern{Data: []byte("get /"), Nocase: true}
	for _, in := range []string{"GET /", "get /", "GeT /", "gEt /"} {
		if !p.MatchesAt([]byte(in), 0) {
			t.Errorf("nocase missed %q", in)
		}
	}
	if p.MatchesAt([]byte("GET?/"), 0) {
		t.Fatal("nocase matched wrong byte")
	}
}

func TestFoldByte(t *testing.T) {
	if FoldByte('A') != 'a' || FoldByte('Z') != 'z' {
		t.Fatal("uppercase not folded")
	}
	for _, b := range []byte{'a', 'z', '0', '@', '[', 0x00, 0xFF} {
		if FoldByte(b) != b {
			t.Errorf("FoldByte(%#x) changed a non-uppercase byte", b)
		}
	}
}

func TestFold(t *testing.T) {
	src := []byte("AbC1|")
	dst := Fold(src)
	if string(dst) != "abc1|" {
		t.Fatalf("Fold = %q", dst)
	}
	if string(src) != "AbC1|" {
		t.Fatal("Fold mutated its input")
	}
}

func TestFindAllNaive(t *testing.T) {
	s := FromStrings("ab", "b", "abc")
	got := FindAllNaive(s, []byte("abcab"))
	want := []Match{
		{PatternID: 0, Pos: 0}, // ab
		{PatternID: 2, Pos: 0}, // abc
		{PatternID: 1, Pos: 1}, // b
		{PatternID: 0, Pos: 3}, // ab
		{PatternID: 1, Pos: 4}, // b
	}
	if !EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if CountAllNaive(s, []byte("abcab")) != 5 {
		t.Fatal("CountAllNaive disagrees with FindAllNaive")
	}
}

func TestFindAllNaiveOverlapping(t *testing.T) {
	s := FromStrings("aa")
	got := FindAllNaive(s, []byte("aaaa"))
	if len(got) != 3 {
		t.Fatalf("overlapping occurrences: got %d want 3", len(got))
	}
}

func TestEqualMatches(t *testing.T) {
	a := []Match{{1, 5}, {0, 2}}
	b := []Match{{0, 2}, {1, 5}}
	if !EqualMatches(a, b) {
		t.Fatal("order must not matter")
	}
	c := []Match{{0, 2}, {1, 6}}
	if EqualMatches(a, c) {
		t.Fatal("different matches reported equal")
	}
	if EqualMatches(a, a[:1]) {
		t.Fatal("different lengths reported equal")
	}
}

func TestFilterAndWebSubset(t *testing.T) {
	s := NewSet()
	s.Add([]byte("http-pat"), false, ProtoHTTP)
	s.Add([]byte("dns-pat"), false, ProtoDNS)
	s.Add([]byte("gen-pat"), false, ProtoGeneric)
	web := s.WebSubset()
	if web.Len() != 2 {
		t.Fatalf("web subset len %d, want 2", web.Len())
	}
	// IDs must be re-densified.
	for i := 0; i < web.Len(); i++ {
		if web.Pattern(int32(i)).ID != int32(i) {
			t.Fatal("subset IDs not dense")
		}
	}
}

func TestSubsetDeterministicAndSized(t *testing.T) {
	s := GenerateS1(1)
	a := s.Subset(100, 7)
	b := s.Subset(100, 7)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("subset sizes %d/%d", a.Len(), b.Len())
	}
	for i := 0; i < 100; i++ {
		if string(a.Pattern(int32(i)).Data) != string(b.Pattern(int32(i)).Data) {
			t.Fatal("same seed produced different subsets")
		}
	}
	c := s.Subset(100, 8)
	diff := false
	for i := 0; i < 100; i++ {
		if string(a.Pattern(int32(i)).Data) != string(c.Pattern(int32(i)).Data) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical subsets")
	}
	if s.Subset(1<<30, 1).Len() != s.Len() {
		t.Fatal("oversized subset must return the whole set")
	}
}

func TestComputeStats(t *testing.T) {
	s := FromStrings("a", "bb", "cccc", "dddddddd")
	st := s.ComputeStats()
	if st.Count != 4 || st.MinLen != 1 || st.MaxLen != 8 {
		t.Fatalf("stats %+v", st)
	}
	if st.ShortFrac != 0.75 {
		t.Fatalf("ShortFrac = %v, want 0.75", st.ShortFrac)
	}
	if st.MeanLen != 15.0/4 {
		t.Fatalf("MeanLen = %v", st.MeanLen)
	}
}

func TestGenerateS1Statistics(t *testing.T) {
	s := GenerateS1(42)
	st := s.ComputeStats()
	if st.Count != S1Size {
		t.Fatalf("S1 size %d, want %d", st.Count, S1Size)
	}
	if st.ShortFrac < 0.17 || st.ShortFrac > 0.25 {
		t.Fatalf("S1 short fraction %.3f outside [0.17,0.25] (paper: 21%%)", st.ShortFrac)
	}
	if st.MinLen != 1 {
		t.Fatalf("S1 min length %d, want 1", st.MinLen)
	}
	if st.MaxLen < 150 {
		t.Fatalf("S1 max length %d, want a several-hundred-byte tail", st.MaxLen)
	}
	web := s.WebSubset().Len()
	if web < 1800 || web > 2200 {
		t.Fatalf("S1 web subset %d, want ~2000", web)
	}
}

func TestGenerateS2Statistics(t *testing.T) {
	s := GenerateS2(42)
	st := s.ComputeStats()
	if st.Count != S2Size {
		t.Fatalf("S2 size %d, want %d", st.Count, S2Size)
	}
	if st.ShortFrac < 0.17 || st.ShortFrac > 0.25 {
		t.Fatalf("S2 short fraction %.3f outside [0.17,0.25]", st.ShortFrac)
	}
	web := s.WebSubset().Len()
	if web < 8200 || web > 9800 {
		t.Fatalf("S2 web subset %d, want ~9000", web)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateS1(7)
	b := GenerateS1(7)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different sizes")
	}
	for i := 0; i < a.Len(); i++ {
		if string(a.Pattern(int32(i)).Data) != string(b.Pattern(int32(i)).Data) {
			t.Fatal("same seed, different patterns")
		}
	}
}

func TestGenerateContainsHTTPShortTokens(t *testing.T) {
	s := GenerateS1(1)
	found := 0
	for _, tok := range []string{"GET", "POST", "HTTP"} {
		for i := 0; i < s.Len(); i++ {
			if strings.EqualFold(string(s.Pattern(int32(i)).Data), tok) {
				found++
				break
			}
		}
	}
	if found == 0 {
		t.Fatal("no common HTTP short tokens in generated set; realistic-traffic effect would vanish")
	}
}

func TestGenerateOneBytePatternsAreBinary(t *testing.T) {
	s := GenerateS2(3)
	for i := 0; i < s.Len(); i++ {
		p := s.Pattern(int32(i))
		if len(p.Data) == 1 && p.Data[0] < 0x80 {
			t.Fatalf("1-byte pattern %#x is printable; must be high-bit byte", p.Data[0])
		}
	}
}

// Property: MatchesAt agrees with a string-compare oracle.
func TestMatchesAtProperty(t *testing.T) {
	f := func(pat, in []byte, posRaw uint16) bool {
		if len(pat) == 0 {
			return true
		}
		if len(pat) > 8 {
			pat = pat[:8]
		}
		p := Pattern{Data: pat}
		pos := int(posRaw) % (len(in) + 1)
		want := pos+len(pat) <= len(in) && string(in[pos:pos+len(pat)]) == string(pat)
		return p.MatchesAt(in, pos) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSortMatches(t *testing.T) {
	ms := []Match{{3, 9}, {1, 2}, {0, 2}, {2, 0}}
	SortMatches(ms)
	want := []Match{{2, 0}, {0, 2}, {1, 2}, {3, 9}}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("got %v want %v", ms, want)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoHTTP.String() != "http" || ProtoGeneric.String() != "generic" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() == "" {
		t.Fatal("unknown protocol must still format")
	}
}

func TestDescribeSet(t *testing.T) {
	s := FromStrings("ab", "cdef")
	d := DescribeSet("tiny", s)
	if !strings.Contains(d, "tiny") || !strings.Contains(d, "2 patterns") {
		t.Fatalf("DescribeSet = %q", d)
	}
}
