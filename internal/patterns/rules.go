package patterns

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadSetFile loads a pattern set from disk for the CLI tools: either
// a Snort-style rules file (rulesPath) or a plain file with one
// literal pattern per line (plainPath), exactly one of which must be
// given. Shared by cmd/vpatch-match and cmd/vpatch-compile so the two
// cannot drift.
func LoadSetFile(rulesPath, plainPath string) (*Set, error) {
	switch {
	case rulesPath != "" && plainPath != "":
		return nil, fmt.Errorf("use either -rules or -patterns, not both")
	case rulesPath != "":
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseRules(f, ParseOptions{})
	case plainPath != "":
		f, err := os.Open(plainPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		set := NewSet()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				set.Add([]byte(line), false, ProtoGeneric)
			}
		}
		return set, sc.Err()
	}
	return NewSet(), nil
}

// ParseOptions controls rule parsing.
type ParseOptions struct {
	// LongestContentOnly keeps only the longest content string of each
	// rule (Snort's multi-pattern matcher registers one content per rule);
	// when false every content string becomes its own pattern.
	LongestContentOnly bool
}

// ParseRules reads a simplified Snort-rule stream and extracts the content
// patterns. Supported syntax per non-comment line:
//
//	alert tcp any any -> any 80 (msg:"..."; content:"GET /admin"; nocase; content:"|0D 0A|"; sid:1;)
//
// Recognized pieces: the protocol hint from the header ports (via the
// shared ServicePorts table: 80/443/8000/8080 → HTTP, 53 → DNS, 21 →
// FTP, 25/587 → SMTP, otherwise generic), any number of
// content:"..." options with Snort escapes (\" \\ \| and |HH HH| hex
// blocks), and a nocase modifier applying to the preceding content.
// Lines starting with '#' and blank lines are skipped.
func ParseRules(r io.Reader, opt ParseOptions) (*Set, error) {
	set := NewSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		proto := protoFromHeader(line)
		contents, err := parseContents(line)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
		}
		if len(contents) == 0 {
			continue
		}
		if opt.LongestContentOnly {
			best := contents[0]
			for _, c := range contents[1:] {
				if len(c.data) > len(best.data) {
					best = c
				}
			}
			contents = contents[:1]
			contents[0] = best
		}
		for _, c := range contents {
			set.Add(c.data, c.nocase, proto)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return set, nil
}

type ruleContent struct {
	data   []byte
	nocase bool
}

// protoFromHeader guesses the traffic class from the port fields of the
// rule header, classifying every numeric port through the shared
// ServicePorts table (the same table ids uses to route flows, so the
// two sides cannot drift). The $HTTP_PORTS variable and an "http"
// protocol token keep their HTTP meaning; when several ports classify
// differently, HTTP wins over DNS over FTP over SMTP (the old switch
// order).
func protoFromHeader(line string) Protocol {
	paren := strings.IndexByte(line, '(')
	header := line
	if paren >= 0 {
		header = line[:paren]
	}
	rank := func(p Protocol) int {
		switch p {
		case ProtoHTTP:
			return 4
		case ProtoDNS:
			return 3
		case ProtoFTP:
			return 2
		case ProtoSMTP:
			return 1
		}
		return 0
	}
	best := ProtoGeneric
	consider := func(p Protocol) {
		if rank(p) > rank(best) {
			best = p
		}
	}
	for _, f := range strings.Fields(header) {
		if f == "$HTTP_PORTS" {
			consider(ProtoHTTP)
		} else if n, err := strconv.ParseUint(f, 10, 16); err == nil {
			consider(ProtoForPort(uint16(n)))
		}
	}
	if strings.Contains(header, "http") {
		consider(ProtoHTTP)
	}
	return best
}

// parseContents extracts all content:"..." options (with their nocase
// modifiers) from one rule line.
func parseContents(line string) ([]ruleContent, error) {
	var out []ruleContent
	rest := line
	for {
		i := strings.Index(rest, "content:")
		if i < 0 {
			break
		}
		rest = rest[i+len("content:"):]
		rest = strings.TrimLeft(rest, " \t")
		// Optional negation "!" — negated contents are not prefilter
		// patterns; skip the whole option.
		negated := false
		if strings.HasPrefix(rest, "!") {
			negated = true
			rest = strings.TrimLeft(rest[1:], " \t")
		}
		if !strings.HasPrefix(rest, "\"") {
			return nil, fmt.Errorf("content option without quoted string")
		}
		data, consumed, err := decodeContent(rest[1:])
		if err != nil {
			return nil, err
		}
		rest = rest[1+consumed:]
		nocase := nocaseFollows(rest)
		if !negated && len(data) > 0 {
			out = append(out, ruleContent{data: data, nocase: nocase})
		}
	}
	return out, nil
}

// nocaseFollows reports whether a nocase modifier appears among the
// option tokens before the next content option (or end of rule).
func nocaseFollows(rest string) bool {
	end := strings.Index(rest, "content:")
	if end < 0 {
		end = len(rest)
	}
	seg := rest[:end]
	for _, tok := range strings.Split(seg, ";") {
		if strings.TrimSpace(tok) == "nocase" {
			return true
		}
	}
	return false
}

// DecodeContent decodes a Snort content body starting just after the
// opening quote (escapes and |HH| hex blocks), returning the decoded
// bytes and the input bytes consumed including the closing quote. It
// is exported for the rule-semantics parser (internal/rules), which
// shares content syntax with this literal-only parser byte for byte.
func DecodeContent(s string) (data []byte, consumed int, err error) {
	return decodeContent(s)
}

// ProtoFromHeader classifies one rule line's traffic class from its
// header ports (see protoFromHeader); exported for internal/rules.
func ProtoFromHeader(line string) Protocol {
	return protoFromHeader(line)
}

// decodeContent decodes a Snort content body starting just after the
// opening quote. It returns the decoded bytes and the number of input
// bytes consumed including the closing quote.
func decodeContent(s string) (data []byte, consumed int, err error) {
	var out []byte
	i := 0
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return out, i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return nil, 0, fmt.Errorf("dangling escape in content")
			}
			nxt := s[i+1]
			switch nxt {
			case '"', '\\', '|', ';', ':':
				out = append(out, nxt)
			default:
				return nil, 0, fmt.Errorf("unknown escape \\%c in content", nxt)
			}
			i += 2
		case '|':
			j := strings.IndexByte(s[i+1:], '|')
			if j < 0 {
				return nil, 0, fmt.Errorf("unterminated hex block in content")
			}
			hex := s[i+1 : i+1+j]
			bytesOut, err := decodeHexBlock(hex)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, bytesOut...)
			i += j + 2
		default:
			out = append(out, c)
			i++
		}
	}
	return nil, 0, fmt.Errorf("unterminated content string")
}

// decodeHexBlock decodes the inside of a |..| hex block: whitespace
// separated pairs of hex digits.
func decodeHexBlock(s string) ([]byte, error) {
	var out []byte
	cur := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' {
			if cur >= 0 {
				return nil, fmt.Errorf("odd hex digit count in |%s|", s)
			}
			continue
		}
		v, ok := hexVal(c)
		if !ok {
			return nil, fmt.Errorf("invalid hex digit %q in |%s|", c, s)
		}
		if cur < 0 {
			cur = int(v)
		} else {
			out = append(out, byte(cur<<4|int(v)))
			cur = -1
		}
	}
	if cur >= 0 {
		return nil, fmt.Errorf("odd hex digit count in |%s|", s)
	}
	return out, nil
}

// EncodeRule renders a pattern as one parseable Snort-style rule line
// (the inverse of ParseRules, up to option ordering). Non-printable
// bytes, quotes, pipes and backslashes are emitted as |HH| hex blocks.
func EncodeRule(p *Pattern, sid int) string {
	var b strings.Builder
	port := "any"
	switch p.Proto {
	case ProtoHTTP:
		port = "80"
	case ProtoDNS:
		port = "53"
	case ProtoFTP:
		port = "21"
	case ProtoSMTP:
		port = "25"
	}
	fmt.Fprintf(&b, "alert tcp any any -> any %s (msg:\"pattern %d\"; content:\"", port, sid)
	inHex := false
	for _, c := range p.Data {
		printable := c >= 0x20 && c < 0x7F && c != '"' && c != '|' && c != '\\' && c != ';' && c != ':'
		if printable {
			if inHex {
				b.WriteByte('|')
				inHex = false
			}
			b.WriteByte(c)
		} else {
			if !inHex {
				b.WriteByte('|')
				inHex = true
			} else {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02X", c)
		}
	}
	if inHex {
		b.WriteByte('|')
	}
	b.WriteString("\"; ")
	if p.Nocase {
		b.WriteString("nocase; ")
	}
	fmt.Fprintf(&b, "sid:%d;)", sid)
	return b.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
