// Package patterns defines the pattern sets multiple-pattern matchers are
// built from: the Pattern/Set types, a Snort-style rule parser, seeded
// synthetic generators reproducing the statistics of the paper's rule sets
// (S1 = Snort v2.9.7, ~2.5k patterns; S2 = ET-open 2.9.0, ~20k patterns),
// and a naive reference matcher that defines ground-truth semantics for
// every other matcher in this repository.
package patterns

import (
	"fmt"
	"sort"
)

// Protocol tags a pattern with the traffic class its rule applies to.
// Snort organizes rules in groups and only matches relevant groups against
// a stream; the paper evaluates the HTTP ("web") groups.
type Protocol uint8

const (
	ProtoGeneric Protocol = iota // applies to any traffic
	ProtoHTTP
	ProtoDNS
	ProtoFTP
	ProtoSMTP
)

// ServicePorts is the single port→protocol classification table shared
// by rule parsing (protoFromHeader buckets rules by their header ports)
// and flow routing (ids classifies flows by destination port). Keeping
// one table guarantees a rule written for a port always lands in the
// group its flows are scanned against — the two sides cannot drift.
var ServicePorts = map[uint16]Protocol{
	80:   ProtoHTTP,
	443:  ProtoHTTP,
	8000: ProtoHTTP,
	8080: ProtoHTTP,
	53:   ProtoDNS,
	21:   ProtoFTP,
	25:   ProtoSMTP,
	587:  ProtoSMTP,
}

// ProtoForPort classifies a service port via ServicePorts; unlisted
// ports are ProtoGeneric.
func ProtoForPort(port uint16) Protocol {
	if p, ok := ServicePorts[port]; ok {
		return p
	}
	return ProtoGeneric
}

func (p Protocol) String() string {
	switch p {
	case ProtoGeneric:
		return "generic"
	case ProtoHTTP:
		return "http"
	case ProtoDNS:
		return "dns"
	case ProtoFTP:
		return "ftp"
	case ProtoSMTP:
		return "smtp"
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Pattern is one exact byte string to search for.
type Pattern struct {
	// ID is the pattern's index within its Set; matchers report it.
	ID int32
	// Data is the literal byte string. For Nocase patterns Data is stored
	// lower-cased and matched case-insensitively.
	Data []byte
	// Nocase requests ASCII case-insensitive matching (Snort's nocase).
	Nocase bool
	// Proto is the traffic class of the originating rule.
	Proto Protocol
}

// Len returns the pattern length in bytes.
func (p *Pattern) Len() int { return len(p.Data) }

// IsShort reports whether the pattern belongs to S-PATCH's short class
// (1-3 bytes, handled by filter 1).
func (p *Pattern) IsShort() bool { return len(p.Data) <= ShortMax }

// ShortMax is the longest pattern length (in bytes) handled by the
// short-pattern path: S-PATCH filter 1 covers patterns of 1-3 bytes and
// filters 2+3 cover patterns of 4 bytes and longer.
const ShortMax = 3

// FoldByte lower-cases one ASCII byte; non-letters pass through.
func FoldByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}

// Fold lower-cases src into a new slice.
func Fold(src []byte) []byte {
	dst := make([]byte, len(src))
	for i, b := range src {
		dst[i] = FoldByte(b)
	}
	return dst
}

// MatchesAt reports whether pattern p occurs in input starting at pos,
// honouring Nocase. It is the single verification primitive every matcher
// uses, so all matchers share exact semantics.
func (p *Pattern) MatchesAt(input []byte, pos int) bool {
	if pos < 0 || pos+len(p.Data) > len(input) {
		return false
	}
	if !p.Nocase {
		for i, b := range p.Data {
			if input[pos+i] != b {
				return false
			}
		}
		return true
	}
	for i, b := range p.Data {
		if FoldByte(input[pos+i]) != b {
			return false
		}
	}
	return true
}

// Match is one reported occurrence: pattern ID and the start offset of the
// occurrence in the scanned input. Every matcher in this repository must
// produce exactly the same multiset of Matches as the naive reference.
type Match struct {
	PatternID int32
	Pos       int32
}

// EmitFunc receives confirmed matches from a matcher. A nil EmitFunc is
// allowed everywhere and means "count only".
type EmitFunc func(Match)

// Set is an immutable collection of patterns a matcher is compiled from.
type Set struct {
	pats []Pattern
	// dedup guards against inserting the same (data, nocase) twice;
	// duplicates would double-report every occurrence. Built lazily on
	// the first Add, so sets restored from a compiled database (which
	// are never added to) skip the map entirely.
	seen map[string]int32
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{seen: make(map[string]int32)}
}

// dedupKey is the map key identifying a (data, nocase) pair.
func dedupKey(data []byte, nocase bool) string {
	if nocase {
		return "i:" + string(data)
	}
	return "s:" + string(data)
}

// FromStrings builds a case-sensitive set from literal strings,
// convenient for tests and examples.
func FromStrings(ss ...string) *Set {
	set := NewSet()
	for _, s := range ss {
		set.Add([]byte(s), false, ProtoGeneric)
	}
	return set
}

// Add inserts a pattern and returns its ID. Empty patterns are rejected
// with a negative ID. Duplicate (data, nocase) pairs return the existing
// ID. Nocase patterns are stored lower-cased.
func (s *Set) Add(data []byte, nocase bool, proto Protocol) int32 {
	if len(data) == 0 {
		return -1
	}
	d := make([]byte, len(data))
	copy(d, data)
	if nocase {
		for i := range d {
			d[i] = FoldByte(d[i])
		}
	}
	if s.seen == nil {
		s.seen = make(map[string]int32, len(s.pats))
		for i := range s.pats {
			p := &s.pats[i]
			s.seen[dedupKey(p.Data, p.Nocase)] = p.ID
		}
	}
	key := dedupKey(d, nocase)
	if id, ok := s.seen[key]; ok {
		return id
	}
	id := int32(len(s.pats))
	s.pats = append(s.pats, Pattern{ID: id, Data: d, Nocase: nocase, Proto: proto})
	s.seen[key] = id
	return id
}

// Lookup returns the ID of the pattern equal to (data, nocase), if the
// set holds one. For nocase lookups data is folded first, mirroring
// Add. It is how the rule compiler's case-folded compilation reuses one
// engine literal for every case variant of a content: a case-sensitive
// clause whose folded form is already compiled nocase anchors on the
// existing literal and re-verifies the exact bytes at evaluation time,
// instead of growing the filter tables with a near-duplicate.
func (s *Set) Lookup(data []byte, nocase bool) (int32, bool) {
	key := data
	if nocase {
		key = Fold(data)
	}
	if s.seen != nil {
		id, ok := s.seen[dedupKey(key, nocase)]
		return id, ok
	}
	for i := range s.pats {
		p := &s.pats[i]
		if p.Nocase == nocase && string(p.Data) == string(key) {
			return p.ID, true
		}
	}
	return -1, false
}

// Len returns the number of patterns.
func (s *Set) Len() int { return len(s.pats) }

// Pattern returns the pattern with the given ID.
func (s *Set) Pattern(id int32) *Pattern { return &s.pats[id] }

// MaxLen returns the length in bytes of the longest pattern (0 for an
// empty set). Stream carries and parallel shard overlaps are sized from
// it: a match can span at most MaxLen()-1 bytes across a boundary.
func (s *Set) MaxLen() int {
	m := 0
	for i := range s.pats {
		if n := len(s.pats[i].Data); n > m {
			m = n
		}
	}
	return m
}

// Patterns returns the underlying pattern slice (read-only by convention).
func (s *Set) Patterns() []Pattern { return s.pats }

// Filter returns a new set with fresh IDs containing only the patterns for
// which keep returns true. It is how the paper's "web traffic patterns"
// subsets (2K of S1, 9K of S2) are derived from the full sets.
func (s *Set) Filter(keep func(*Pattern) bool) *Set {
	out := NewSet()
	for i := range s.pats {
		p := &s.pats[i]
		if keep(p) {
			out.Add(p.Data, p.Nocase, p.Proto)
		}
	}
	return out
}

// WebSubset returns the HTTP-applicable patterns: HTTP rules plus generic
// rules, mirroring how Snort matches an HTTP stream against HTTP-specific
// and protocol-agnostic groups.
func (s *Set) WebSubset() *Set {
	return s.Filter(func(p *Pattern) bool {
		return p.Proto == ProtoHTTP || p.Proto == ProtoGeneric
	})
}

// Subset returns a deterministic pseudo-random subset of n patterns
// (all patterns if n >= Len). Used for the Fig. 5a pattern-count sweep,
// which randomly selects patterns from the full S2 set.
func (s *Set) Subset(n int, seed int64) *Set {
	if n >= len(s.pats) {
		n = len(s.pats)
	}
	idx := make([]int, len(s.pats))
	for i := range idx {
		idx[i] = i
	}
	// Fisher-Yates with a small local LCG so the package does not drag in
	// math/rand for one shuffle.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := next(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := NewSet()
	for _, i := range idx[:n] {
		p := &s.pats[i]
		out.Add(p.Data, p.Nocase, p.Proto)
	}
	return out
}

// Stats summarizes the length distribution of a set. The distribution is
// the property the paper's filter design keys on (21% of Snort patterns
// are 1-4 bytes; short patterns hit constantly in real traffic).
type Stats struct {
	Count     int
	MinLen    int
	MaxLen    int
	MeanLen   float64
	MedianLen int
	// ShortFrac is the fraction of patterns with length 1-4 bytes
	// (the statistic the paper quotes for Snort v2.9.7: 21%).
	ShortFrac float64
	ByProto   map[Protocol]int
}

// ComputeStats returns summary statistics for the set.
func (s *Set) ComputeStats() Stats {
	st := Stats{ByProto: make(map[Protocol]int)}
	st.Count = len(s.pats)
	if st.Count == 0 {
		return st
	}
	lens := make([]int, 0, len(s.pats))
	total := 0
	short := 0
	st.MinLen = 1 << 30
	for i := range s.pats {
		n := len(s.pats[i].Data)
		lens = append(lens, n)
		total += n
		if n <= 4 {
			short++
		}
		if n < st.MinLen {
			st.MinLen = n
		}
		if n > st.MaxLen {
			st.MaxLen = n
		}
		st.ByProto[s.pats[i].Proto]++
	}
	sort.Ints(lens)
	st.MeanLen = float64(total) / float64(st.Count)
	st.MedianLen = lens[len(lens)/2]
	st.ShortFrac = float64(short) / float64(st.Count)
	return st
}

// FindAllNaive is the ground-truth matcher: for every input position it
// tries every pattern with MatchesAt. Quadratic and only suitable for
// tests, where it defines the semantics all real matchers must reproduce.
func FindAllNaive(s *Set, input []byte) []Match {
	var out []Match
	for pos := 0; pos < len(input); pos++ {
		for i := range s.pats {
			if s.pats[i].MatchesAt(input, pos) {
				out = append(out, Match{PatternID: s.pats[i].ID, Pos: int32(pos)})
			}
		}
	}
	return out
}

// CountAllNaive returns only the number of ground-truth matches.
func CountAllNaive(s *Set, input []byte) int {
	n := 0
	for pos := 0; pos < len(input); pos++ {
		for i := range s.pats {
			if s.pats[i].MatchesAt(input, pos) {
				n++
			}
		}
	}
	return n
}

// SortMatches orders matches by (Pos, PatternID), the canonical order used
// when comparing matcher outputs.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Pos != ms[j].Pos {
			return ms[i].Pos < ms[j].Pos
		}
		return ms[i].PatternID < ms[j].PatternID
	})
}

// EqualMatches reports whether a and b contain the same multiset of
// matches. Both are sorted in place.
func EqualMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	SortMatches(a)
	SortMatches(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
