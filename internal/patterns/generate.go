package patterns

import (
	"fmt"
	"math/rand"
)

// This file synthesizes rule sets with the published statistics of the
// paper's two sets, since the originals (Snort v2.9.7 registered rules,
// ET-open 2.9.0) are not redistributable:
//
//   - S1 ~ 2,500 patterns, of which the web-applicable subset is ~2,000.
//   - S2 ~ 20,000 patterns, of which the web-applicable subset is ~9,000.
//   - 21% of patterns are 1-4 bytes long (the paper quotes this figure
//     for Snort v2.9.7 from [12]).
//   - Pattern lengths range from 1 byte to several hundred bytes.
//   - Short patterns include strings that occur constantly in real HTTP
//     traffic (GET, HTTP, Host, ...), the property S-PATCH's dedicated
//     short-pattern filter exploits.
//
// Generation is fully deterministic given the seed.

// Target sizes for the synthetic sets.
const (
	S1Size = 2500
	S2Size = 20000
)

// Fractions of each set that the web subset (HTTP + generic) must hit:
// 2000/2500 for S1 and 9000/20000 for S2.
const (
	s1WebFrac = 0.80
	s2WebFrac = 0.45
)

// GenerateS1 synthesizes the small rule set (Snort-v2.9.7-like).
func GenerateS1(seed int64) *Set { return generate(S1Size, s1WebFrac, seed) }

// GenerateS2 synthesizes the large rule set (ET-open-2.9.0-like).
func GenerateS2(seed int64) *Set { return generate(S2Size, s2WebFrac, seed+0x5EED) }

// shortTokens are 1-4 byte strings that realistic HTTP traffic contains in
// abundance. Their presence in the short-pattern filter is what makes
// realistic traffic "hit" constantly (the motivation for S-PATCH's filter 1).
var shortTokens = []string{
	"GET", "POST", "PUT", "HEAD", "HTTP", "Host", "..", "../", "/..",
	"cmd", ".js", ".php", ".asp", ".exe", ".cgi", "id=", "%00", "%2e",
	"|3a|//", "bin", "sh -", "pwd", "~/", "etc", "wp-", "ftp", "&&",
	"'or", "=1", "qq", "%3c", "...", "adm",
}

// uriWords seed the synthetic long URI/payload patterns.
var uriWords = []string{
	"admin", "login", "passwd", "shadow", "config", "setup", "shell",
	"upload", "download", "include", "script", "update", "install",
	"backup", "secret", "token", "session", "cookie", "search", "query",
	"index", "default", "manager", "console", "status", "debug", "trace",
	"export", "import", "report", "viewer", "editor", "portal", "gateway",
	"proxy", "filter", "module", "plugin", "widget", "theme", "struts",
	"phpmyadmin", "wordpress", "joomla", "drupal", "tomcat", "jenkins",
	"cgi-bin", "htaccess", "htpasswd", "wsdl", "soap", "xmlrpc",
}

var headerWords = []string{
	"User-Agent:", "Referer:", "X-Forwarded-For:", "Authorization:",
	"Content-Type:", "Accept-Encoding:", "Cookie:", "Range:",
	"Transfer-Encoding:", "Content-Length:", "If-Modified-Since:",
}

var agentWords = []string{
	"Mozilla", "scanner", "sqlmap", "nikto", "nessus", "masscan", "zgrab",
	"curl", "python-requests", "Wget", "libwww", "botnet", "loader",
}

// generate builds a set of n patterns with webFrac of them HTTP/generic.
func generate(n int, webFrac float64, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	set := NewSet()
	for set.Len() < n {
		proto := pickProto(rng, webFrac)
		length := sampleLength(rng)
		data := synthesize(rng, length, proto)
		if len(data) == 0 {
			continue
		}
		// ~15% of text patterns are nocase, as is common in web rules.
		nocase := isMostlyText(data) && rng.Float64() < 0.15
		set.Add(data, nocase, proto)
	}
	return set
}

// pickProto distributes patterns over protocol groups so that
// HTTP+generic hits webFrac of the set.
func pickProto(rng *rand.Rand, webFrac float64) Protocol {
	if rng.Float64() < webFrac {
		// Inside the web subset: mostly HTTP-specific, some generic.
		if rng.Float64() < 0.8 {
			return ProtoHTTP
		}
		return ProtoGeneric
	}
	switch rng.Intn(3) {
	case 0:
		return ProtoDNS
	case 1:
		return ProtoFTP
	default:
		return ProtoSMTP
	}
}

// sampleLength draws a pattern length matching the published distribution:
// 21% in 1-4 bytes (with 1-byte patterns rare), a body around 5-40 bytes,
// and a tail reaching several hundred bytes.
func sampleLength(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.005:
		return 1
	case r < 0.05:
		return 2
	case r < 0.13:
		return 3
	case r < 0.21:
		return 4
	case r < 0.90:
		// Body: 5..40, geometric-ish.
		return 5 + int(rng.ExpFloat64()*8)%36
	case r < 0.99:
		// Long: 41..160.
		return 41 + rng.Intn(120)
	default:
		// Very long: up to ~400 bytes.
		return 161 + rng.Intn(240)
	}
}

// synthesize builds pattern bytes of the requested length and flavour.
func synthesize(rng *rand.Rand, length int, proto Protocol) []byte {
	switch {
	case length <= 4:
		return synthesizeShort(rng, length)
	case rng.Float64() < 0.15:
		return randomBinary(rng, length)
	default:
		return synthesizeText(rng, length, proto)
	}
}

// synthesizeShort returns a 1-4 byte pattern. Half the time it is a real
// HTTP-ish token (so realistic traffic hits it), otherwise random bytes.
// 1-byte patterns are always non-text bytes: a 1-byte text pattern would
// match on almost every input byte, which even Snort's rule sets avoid.
func synthesizeShort(rng *rand.Rand, length int) []byte {
	if length == 1 {
		return []byte{byte(0x80 + rng.Intn(0x80))}
	}
	if rng.Float64() < 0.5 {
		tok := shortTokens[rng.Intn(len(shortTokens))]
		if len(tok) >= length {
			return []byte(tok[:length])
		}
	}
	out := make([]byte, length)
	for i := range out {
		if rng.Float64() < 0.8 {
			out[i] = printable(rng)
		} else {
			out[i] = byte(rng.Intn(256))
		}
	}
	return out
}

// synthesizeText builds a textual attack-signature-like pattern:
// URI fragments, header lines, or agent strings, padded with word salad
// until the target length is reached.
func synthesizeText(rng *rand.Rand, length int, proto Protocol) []byte {
	var out []byte
	switch rng.Intn(3) {
	case 0: // URI fragment
		out = append(out, '/')
		for len(out) < length {
			out = append(out, uriWords[rng.Intn(len(uriWords))]...)
			switch rng.Intn(4) {
			case 0:
				out = append(out, '/')
			case 1:
				out = append(out, '.')
			case 2:
				out = append(out, '?')
			default:
				out = append(out, '=')
			}
		}
	case 1: // header line
		out = append(out, headerWords[rng.Intn(len(headerWords))]...)
		out = append(out, ' ')
		for len(out) < length {
			out = append(out, agentWords[rng.Intn(len(agentWords))]...)
			out = append(out, '/')
			out = append(out, byte('0'+rng.Intn(10)), '.')
		}
	default: // word salad (exploit-ish payload text)
		words := uriWords
		if proto == ProtoSMTP || proto == ProtoFTP {
			words = agentWords
		}
		for len(out) < length {
			out = append(out, words[rng.Intn(len(words))]...)
			out = append(out, byte("_-+%&="[rng.Intn(6)]))
		}
	}
	if len(out) > length {
		out = out[:length]
	}
	return out
}

// randomBinary returns length random bytes biased away from printable
// ASCII (shellcode-like payload signatures).
func randomBinary(rng *rand.Rand, length int) []byte {
	out := make([]byte, length)
	for i := range out {
		out[i] = byte(rng.Intn(256))
		if out[i] >= 0x20 && out[i] < 0x7F && rng.Float64() < 0.5 {
			out[i] |= 0x80
		}
	}
	return out
}

func printable(rng *rand.Rand) byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-._/%=?&"
	return alphabet[rng.Intn(len(alphabet))]
}

func isMostlyText(b []byte) bool {
	text := 0
	for _, c := range b {
		if c >= 0x20 && c < 0x7F {
			text++
		}
	}
	return text*4 >= len(b)*3
}

// DescribeSet formats a one-line summary, used by the CLI tools.
func DescribeSet(name string, s *Set) string {
	st := s.ComputeStats()
	return fmt.Sprintf("%s: %d patterns (len %d-%d, mean %.1f, short(1-4B) %.0f%%, web subset %d)",
		name, st.Count, st.MinLen, st.MaxLen, st.MeanLen, st.ShortFrac*100, s.WebSubset().Len())
}
