package patterns

import (
	"vpatch/internal/dbfmt"
)

// This file is the pattern set's half of the compiled-database format:
// a digest that ties a database to the exact set it was compiled from,
// and the set's own wire encoding. Decoding is built for the startup
// path — all pattern bytes live in one shared backing array and the
// dedup map is skipped (Add rebuilds it lazily if ever needed), so
// restoring an ET-open-scale set is a metadata walk plus one copy.

// Digest returns a 64-bit digest over the set's contents (order, data,
// nocase, proto). Compiled databases store it in their header; the
// load path recomputes it from the decoded set and rejects any
// mismatch, so an engine can never be paired with the wrong rule set.
//
// The mixing is FNV-style but folds 8 input bytes per multiply — the
// digest sits on the startup path (computed on every load), so it runs
// word-wise over the pattern bytes rather than byte-at-a-time.
func (s *Set) Digest() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(v uint64) {
		h = (h ^ v) * prime
	}
	word(uint64(len(s.pats)))
	for i := range s.pats {
		p := &s.pats[i]
		meta := uint64(len(p.Data))<<16 | uint64(p.Proto)<<8
		if p.Nocase {
			meta |= 1
		}
		word(meta)
		d := p.Data
		for len(d) >= 8 {
			word(uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 | uint64(d[3])<<24 |
				uint64(d[4])<<32 | uint64(d[5])<<40 | uint64(d[6])<<48 | uint64(d[7])<<56)
			d = d[8:]
		}
		if len(d) > 0 {
			var tail uint64
			for j, b := range d {
				tail |= uint64(b) << (8 * j)
			}
			// Tag the tail with its length so "ab" + padding cannot
			// collide with "ab\x00…" of a longer pattern.
			word(tail ^ uint64(len(d))<<56)
		}
	}
	return h
}

// EncodeSet appends the set's wire form: pattern count, per-pattern
// metadata (length, nocase, proto), then all pattern bytes concatenated
// in one blob.
func EncodeSet(e *dbfmt.Encoder, s *Set) {
	e.Uvarint(uint64(len(s.pats)))
	total := 0
	for i := range s.pats {
		p := &s.pats[i]
		e.Uvarint(uint64(len(p.Data)))
		e.Bool(p.Nocase)
		e.U8(uint8(p.Proto))
		total += len(p.Data)
	}
	e.Uvarint(uint64(total))
	for i := range s.pats {
		e.Raw(s.pats[i].Data)
	}
}

// DecodeSet restores a set encoded by EncodeSet. Pattern data is copied
// into a single backing array; nocase data is re-folded so the stored
// invariant holds even for hand-crafted inputs.
func DecodeSet(d *dbfmt.Decoder) (*Set, error) {
	// Each pattern costs at least 3 encoded bytes (length, nocase,
	// proto), so the count check bounds the metadata allocation.
	n := d.Count(3)
	pats := make([]Pattern, n)
	lens := make([]int, n)
	total := 0
	for i := range pats {
		ln := d.Uvarint()
		nocase := d.Bool()
		proto := Protocol(d.U8())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if ln == 0 || ln > uint64(d.Remaining()) {
			d.Fail("pattern %d: invalid length %d", i, ln)
			return nil, d.Err()
		}
		pats[i] = Pattern{ID: int32(i), Nocase: nocase, Proto: proto}
		lens[i] = int(ln)
		total += int(ln)
	}
	blob := d.Blob()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(blob) != total {
		d.Fail("pattern data blob is %d bytes, metadata claims %d", len(blob), total)
		return nil, d.Err()
	}
	backing := make([]byte, total)
	copy(backing, blob)
	off := 0
	for i := range pats {
		data := backing[off : off+lens[i] : off+lens[i]]
		off += lens[i]
		if pats[i].Nocase {
			for j, b := range data {
				data[j] = FoldByte(b)
			}
		}
		pats[i].Data = data
	}
	return &Set{pats: pats}, nil
}
