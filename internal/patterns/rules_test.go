package patterns

import (
	"fmt"
	"strings"
	"testing"
)

func parse(t *testing.T, rules string, opt ParseOptions) *Set {
	t.Helper()
	s, err := ParseRules(strings.NewReader(rules), opt)
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	return s
}

func TestParseSimpleContent(t *testing.T) {
	s := parse(t, `alert tcp any any -> any 80 (msg:"x"; content:"GET /admin"; sid:1;)`, ParseOptions{})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	p := s.Pattern(0)
	if string(p.Data) != "GET /admin" || p.Nocase || p.Proto != ProtoHTTP {
		t.Fatalf("pattern %+v", p)
	}
}

func TestParseNocase(t *testing.T) {
	s := parse(t, `alert tcp any any -> any 80 (content:"CMD.EXE"; nocase; sid:2;)`, ParseOptions{})
	p := s.Pattern(0)
	if !p.Nocase {
		t.Fatal("nocase modifier not applied")
	}
	if string(p.Data) != "cmd.exe" {
		t.Fatalf("nocase pattern not folded: %q", p.Data)
	}
}

func TestParseNocaseBindsToPrecedingContentOnly(t *testing.T) {
	s := parse(t, `alert tcp any any -> any 80 (content:"AAA"; nocase; content:"BBB"; sid:3;)`, ParseOptions{})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Pattern(0).Nocase {
		t.Fatal("first content should be nocase")
	}
	if s.Pattern(1).Nocase {
		t.Fatal("second content should be case-sensitive")
	}
}

func TestParseHexBlocks(t *testing.T) {
	s := parse(t, `alert tcp any any -> any any (content:"|0D 0A|end|00|"; sid:4;)`, ParseOptions{})
	p := s.Pattern(0)
	want := []byte{0x0D, 0x0A, 'e', 'n', 'd', 0x00}
	if string(p.Data) != string(want) {
		t.Fatalf("hex decode: got %v want %v", p.Data, want)
	}
}

func TestParseEscapes(t *testing.T) {
	s := parse(t, `alert tcp any any -> any any (content:"a\"b\\c\|d"; sid:5;)`, ParseOptions{})
	if string(s.Pattern(0).Data) != `a"b\c|d` {
		t.Fatalf("escape decode: %q", s.Pattern(0).Data)
	}
}

func TestParseMultipleContentsAndLongestOnly(t *testing.T) {
	rule := `alert tcp any any -> any 80 (content:"ab"; content:"abcdef"; content:"abcd"; sid:6;)`
	all := parse(t, rule, ParseOptions{})
	if all.Len() != 3 {
		t.Fatalf("all contents: %d", all.Len())
	}
	longest := parse(t, rule, ParseOptions{LongestContentOnly: true})
	if longest.Len() != 1 || string(longest.Pattern(0).Data) != "abcdef" {
		t.Fatalf("longest-only kept %d: %q", longest.Len(), longest.Pattern(0).Data)
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	s := parse(t, "# comment\n\nalert tcp any any -> any any (content:\"x1\"; sid:7;)\n", ParseOptions{})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestParseSkipsNegatedContent(t *testing.T) {
	s := parse(t, `alert tcp any any -> any any (content:!"nope"; content:"yes!"; sid:8;)`, ParseOptions{})
	if s.Len() != 1 || string(s.Pattern(0).Data) != "yes!" {
		t.Fatalf("negated content handling wrong: %d patterns", s.Len())
	}
}

func TestParseProtocolGuess(t *testing.T) {
	cases := []struct {
		rule string
		want Protocol
	}{
		{`alert tcp any any -> any 80 (content:"a80a"; sid:1;)`, ProtoHTTP},
		{`alert tcp any any -> any $HTTP_PORTS (content:"ahttp"; sid:1;)`, ProtoHTTP},
		{`alert udp any any -> any 53 (content:"a53a"; sid:1;)`, ProtoDNS},
		{`alert tcp any any -> any 21 (content:"a21a"; sid:1;)`, ProtoFTP},
		{`alert tcp any any -> any 25 (content:"a25a"; sid:1;)`, ProtoSMTP},
		{`alert tcp any any -> any 9999 (content:"a9999"; sid:1;)`, ProtoGeneric},
	}
	for _, c := range cases {
		s := parse(t, c.rule, ParseOptions{})
		if got := s.Pattern(0).Proto; got != c.want {
			t.Errorf("rule %q: proto %v, want %v", c.rule, got, c.want)
		}
	}
}

// TestProtoFromHeaderMatchesServicePorts: the rule parser must classify
// every port in the shared ServicePorts table exactly as flow routing
// does — this is the drift guard for the single port→protocol table
// (443 and 8000 were historically counted as HTTP by the flow side
// only, compiling their rules into every group).
func TestProtoFromHeaderMatchesServicePorts(t *testing.T) {
	for port, want := range ServicePorts {
		line := fmt.Sprintf(`alert tcp any any -> any %d (content:"drift"; sid:1;)`, port)
		if got := protoFromHeader(line); got != want {
			t.Errorf("port %d: parser says %v, ServicePorts says %v", port, got, want)
		}
		if got := ProtoForPort(port); got != want {
			t.Errorf("port %d: ProtoForPort says %v, table says %v", port, got, want)
		}
	}
	// Mixed ports pick the higher-priority class (HTTP > DNS > FTP > SMTP).
	if got := protoFromHeader(`alert udp any 53 -> any 443 (content:"x"; sid:1;)`); got != ProtoHTTP {
		t.Errorf("mixed 53/443 header classified %v, want HTTP priority", got)
	}
	if got := ProtoForPort(60000); got != ProtoGeneric {
		t.Errorf("unlisted port classified %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`alert tcp any any -> any any (content:"unterminated; sid:1;)`,
		`alert tcp any any -> any any (content:"bad|0|hex"; sid:1;)`,
		`alert tcp any any -> any any (content:"bad|zz|hex"; sid:1;)`,
		`alert tcp any any -> any any (content:"dangling\`,
		`alert tcp any any -> any any (content:"bad\x"; sid:1;)`,
		`alert tcp any any -> any any (content:nope; sid:1;)`,
	}
	for _, rule := range bad {
		if _, err := ParseRules(strings.NewReader(rule), ParseOptions{}); err == nil {
			t.Errorf("rule %q parsed without error", rule)
		}
	}
}

func TestParseHexWhitespaceVariants(t *testing.T) {
	s := parse(t, `alert tcp any any -> any any (content:"|41 42|"; content:"|4142|"; content:"|41	42|"; sid:9;)`, ParseOptions{})
	// All three decode to "AB" and deduplicate to one pattern.
	if s.Len() != 1 || string(s.Pattern(0).Data) != "AB" {
		t.Fatalf("hex whitespace handling: %d patterns", s.Len())
	}
}

func TestEncodeRuleRoundTrip(t *testing.T) {
	src := NewSet()
	src.Add([]byte("GET /admin"), false, ProtoHTTP)
	src.Add([]byte{0x0D, 0x0A, 'x', 0x00}, false, ProtoGeneric)
	src.Add([]byte("CaseLess"), true, ProtoDNS)
	src.Add([]byte(`quotes"and|pipes\`), false, ProtoFTP)
	var rules strings.Builder
	for i := range src.Patterns() {
		rules.WriteString(EncodeRule(&src.Patterns()[i], i+1))
		rules.WriteByte('\n')
	}
	parsed := parse(t, rules.String(), ParseOptions{})
	if parsed.Len() != src.Len() {
		t.Fatalf("round trip lost patterns: %d vs %d\n%s", parsed.Len(), src.Len(), rules.String())
	}
	for i := 0; i < src.Len(); i++ {
		a, b := src.Pattern(int32(i)), parsed.Pattern(int32(i))
		if string(a.Data) != string(b.Data) || a.Nocase != b.Nocase || a.Proto != b.Proto {
			t.Fatalf("pattern %d changed in round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestEncodeRuleGeneratedSetRoundTrip(t *testing.T) {
	src := GenerateS1(9).Subset(300, 1)
	var rules strings.Builder
	for i := range src.Patterns() {
		rules.WriteString(EncodeRule(&src.Patterns()[i], i+1))
		rules.WriteByte('\n')
	}
	parsed := parse(t, rules.String(), ParseOptions{})
	if parsed.Len() != src.Len() {
		t.Fatalf("round trip lost patterns: %d vs %d", parsed.Len(), src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		if string(src.Pattern(int32(i)).Data) != string(parsed.Pattern(int32(i)).Data) {
			t.Fatalf("pattern %d bytes changed", i)
		}
	}
}

func TestRoundTripThroughNaive(t *testing.T) {
	s := parse(t, `
alert tcp any any -> any 80 (content:"GET"; sid:1;)
alert tcp any any -> any 80 (content:"INDEX.HTML"; nocase; sid:2;)
`, ParseOptions{})
	input := []byte("GET /index.html HTTP/1.1")
	got := FindAllNaive(s, input)
	want := []Match{{0, 0}, {1, 5}}
	if !EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
