package resil

import (
	"sort"
	"sync"

	"vpatch/internal/netsim"
)

// Deficit-round-robin scheduling of ingest batches across tenants.
// Every tenant owns one bounded FIFO of segment batches; a single
// scheduler goroutine visits the active tenants in rotation, granting
// each a byte quantum per visit and dispatching that tenant's batches
// while its accumulated deficit covers them. The result is byte-level
// fairness regardless of offered load: a tenant flooding at 100x its
// share fills its own queue and overflows (drops charged to itself),
// while every other tenant's batches keep dispatching within one
// rotation. This replaces reject-over-quota as the first line of
// ingest overload defense — quotas cap a tenant in isolation, DRR
// additionally guarantees its neighbors' service.

// DispatchFunc delivers one dequeued batch to a tenant's pipeline.
// It is called from the scheduler goroutine with no lock held and owns
// the segments' payloads.
type DispatchFunc func(tenant string, segs []netsim.Segment)

// SchedulerConfig parameterizes a Scheduler.
type SchedulerConfig struct {
	// QuantumBytes is the byte credit each active tenant earns per
	// round-robin visit (default 256 KiB). Larger quanta favor batch
	// locality; smaller quanta tighten fairness granularity.
	QuantumBytes int
	// QueueBytes bounds each tenant's queued-but-undispatched payload
	// bytes (default 4 MiB). Enqueues beyond it are dropped — the
	// overloading tenant degrades itself.
	QueueBytes int
	// Dispatch receives dequeued batches. Required.
	Dispatch DispatchFunc
}

const (
	// DefaultQuantumBytes is SchedulerConfig.QuantumBytes when unset.
	DefaultQuantumBytes = 256 << 10
	// DefaultQueueBytes is SchedulerConfig.QueueBytes when unset.
	DefaultQueueBytes = 4 << 20
)

// QueueStats is one tenant's scheduling counters.
type QueueStats struct {
	Tenant string
	// QueuedBytes is the current backlog.
	QueuedBytes int
	// DispatchedBatches / DispatchedBytes count delivered work.
	DispatchedBatches uint64
	DispatchedBytes   uint64
	// DroppedBatches / DroppedBytes count enqueues refused because the
	// tenant's queue was full (its own overload, by construction).
	DroppedBatches uint64
	DroppedBytes   uint64
}

type qbatch struct {
	segs  []netsim.Segment
	bytes int
}

type tenantQueue struct {
	name     string
	batches  []qbatch
	bytes    int
	deficit  int
	active   bool // sits in the scheduler's rotation ring
	inflight bool // a batch of this tenant is being dispatched

	dispatchedBatches uint64
	dispatchedBytes   uint64
	droppedBatches    uint64
	droppedBytes      uint64
}

// Scheduler is the DRR ingest scheduler. Create with NewScheduler,
// start the dispatch goroutine with Start, feed it with Enqueue from
// any number of goroutines, and Close to drain and stop.
type Scheduler struct {
	cfg SchedulerConfig

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*tenantQueue
	ring   []*tenantQueue
	closed bool
	wg     sync.WaitGroup
}

// NewScheduler returns a scheduler; it dispatches nothing until Start.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.QuantumBytes <= 0 {
		cfg.QuantumBytes = DefaultQuantumBytes
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = DefaultQueueBytes
	}
	if cfg.Dispatch == nil {
		panic("resil: nil Dispatch")
	}
	s := &Scheduler{cfg: cfg, queues: make(map[string]*tenantQueue)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start launches the dispatch goroutine.
func (s *Scheduler) Start() {
	s.wg.Add(1)
	go s.run()
}

// Enqueue appends one batch to the tenant's queue, reporting whether
// it was accepted. A full queue (or a closed scheduler) refuses the
// batch and releases its payloads — the caller must treat the segments
// as consumed either way. Accepted batches are dispatched in per-tenant
// FIFO order, so one sender's flow order is preserved.
func (s *Scheduler) Enqueue(tenant string, segs []netsim.Segment) bool {
	n := 0
	for i := range segs {
		n += len(segs[i].Payload)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		releaseAll(segs)
		return false
	}
	q := s.queues[tenant]
	if q == nil {
		q = &tenantQueue{name: tenant}
		s.queues[tenant] = q
	}
	if q.bytes+n > s.cfg.QueueBytes && len(q.batches) > 0 {
		q.droppedBatches++
		q.droppedBytes += uint64(n)
		s.mu.Unlock()
		releaseAll(segs)
		return false
	}
	q.batches = append(q.batches, qbatch{segs: segs, bytes: n})
	q.bytes += n
	if !q.active {
		q.active = true
		s.ring = append(s.ring, q)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// run is the scheduler goroutine: classic DRR over the active ring.
func (s *Scheduler) run() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.closed && len(s.ring) == 0 {
			s.cond.Wait()
		}
		if len(s.ring) == 0 {
			// Closed and fully drained.
			s.mu.Unlock()
			return
		}
		q := s.ring[0]
		s.ring = s.ring[1:]
		q.deficit += s.cfg.QuantumBytes
		for len(q.batches) > 0 && q.batches[0].bytes <= q.deficit {
			b := q.batches[0]
			q.batches = q.batches[1:]
			q.bytes -= b.bytes
			q.deficit -= b.bytes
			q.dispatchedBatches++
			q.dispatchedBytes += uint64(b.bytes)
			q.inflight = true
			s.mu.Unlock()
			s.cfg.Dispatch(q.name, b.segs)
			s.mu.Lock()
			q.inflight = false
			s.cond.Broadcast()
		}
		if len(q.batches) > 0 {
			s.ring = append(s.ring, q)
		} else {
			// An emptied queue leaves the rotation and forfeits its
			// deficit (standard DRR — credit must not accumulate while
			// idle).
			q.active = false
			q.deficit = 0
		}
	}
}

// Flush blocks until every batch the tenant enqueued before the call
// has been dispatched (ingest connections call it before FlushAll so
// end-of-stream alert draining sees all their segments).
func (s *Scheduler) Flush(tenant string) {
	s.mu.Lock()
	for q := s.queues[tenant]; q != nil && (len(q.batches) > 0 || q.inflight); {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close drains every queue through Dispatch, then stops the scheduler
// goroutine. Enqueues after Close are refused.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats reports per-tenant scheduling counters, sorted by tenant name.
func (s *Scheduler) Stats() []QueueStats {
	s.mu.Lock()
	out := make([]QueueStats, 0, len(s.queues))
	for _, q := range s.queues {
		out = append(out, QueueStats{
			Tenant:            q.name,
			QueuedBytes:       q.bytes,
			DispatchedBatches: q.dispatchedBatches,
			DispatchedBytes:   q.dispatchedBytes,
			DroppedBatches:    q.droppedBatches,
			DroppedBytes:      q.droppedBytes,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantStats reports one tenant's counters (zero value if unknown).
func (s *Scheduler) TenantStats(tenant string) QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[tenant]
	if q == nil {
		return QueueStats{Tenant: tenant}
	}
	return QueueStats{
		Tenant:            q.name,
		QueuedBytes:       q.bytes,
		DispatchedBatches: q.dispatchedBatches,
		DispatchedBytes:   q.dispatchedBytes,
		DroppedBatches:    q.droppedBatches,
		DroppedBytes:      q.droppedBytes,
	}
}

func releaseAll(segs []netsim.Segment) {
	for i := range segs {
		segs[i].ReleasePayload()
	}
}
