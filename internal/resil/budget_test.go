package resil

import (
	"testing"
	"time"
)

func TestPoolChargeAndDeny(t *testing.T) {
	p := NewPool(1000, 100)
	if !p.TryTake(60) || !p.TryTake(40) {
		t.Fatal("burst capacity not available")
	}
	if p.TryTake(1000) {
		t.Fatal("charge beyond tokens succeeded")
	}
	if p.Denied() != 1 {
		t.Fatalf("denied = %d; want 1", p.Denied())
	}
	// Refill: at 1000 cycles/sec, ~50 ms buys ~50 cycles.
	time.Sleep(80 * time.Millisecond)
	if !p.TryTake(20) {
		t.Fatal("pool did not refill")
	}
}

func TestPoolCapBoundsBurst(t *testing.T) {
	p := NewPool(1_000_000, 100)
	time.Sleep(20 * time.Millisecond) // would buy ~20k cycles uncapped
	if p.TryTake(101) {
		t.Fatal("refill exceeded capacity")
	}
	if !p.TryTake(100) {
		t.Fatal("capacity not available after refill")
	}
}

func TestNilPoolAlwaysGrants(t *testing.T) {
	var p *Pool
	if !p.TryTake(1 << 60) {
		t.Fatal("nil pool must grant everything")
	}
	if p.Denied() != 0 {
		t.Fatal("nil pool denied")
	}
}

func TestVerifierBudgetArmed(t *testing.T) {
	if (VerifierBudget{}).Armed() {
		t.Fatal("zero budget reports armed")
	}
	if !(VerifierBudget{PerFlow: 1}).Armed() {
		t.Fatal("per-flow budget not armed")
	}
	if !(VerifierBudget{Pool: NewPool(1, 1)}).Armed() {
		t.Fatal("pool budget not armed")
	}
	pr := DefaultPrice()
	if pr.PerRun <= 0 || pr.PerState <= 0 || pr.PerHit <= 0 {
		t.Fatalf("default price has non-positive charge: %+v", pr)
	}
	if pr.PerState <= pr.PerHit {
		t.Fatalf("state construction (%d) should dominate bookkeeping (%d)",
			pr.PerState, pr.PerHit)
	}
	if got := pr.Cost(2, 3, 4); got != 2*pr.PerRun+3*pr.PerState+4*pr.PerHit {
		t.Fatalf("Cost arithmetic wrong: %d", got)
	}
}
