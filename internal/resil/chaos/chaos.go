// Package chaos is the fault-injection seam of the resilience layer.
// Production code plants named hooks at the points faults can occur
// (per-segment shard handling, dispatcher worker batches, ...); tests
// arm the package, attach a hook, and the next pass through that point
// runs the hook — which may panic, sleep, or flip external state —
// under the race detector, with the real pipeline around it. With the
// package disarmed (the default, and the only production state) every
// hook site costs one atomic load and a predicted branch, which is why
// the hooks can live on otherwise-hot paths.
//
// Hooks are process-global, so tests that arm chaos must not run in
// parallel with each other; they disarm with a deferred Reset.
package chaos

import (
	"sync"
	"sync/atomic"
)

var (
	armed atomic.Bool

	mu    sync.RWMutex
	hooks map[string]func(ctx any)
)

// Well-known hook points. Sites pass a context value the hook may
// inspect (documented per point).
const (
	// ShardSegment fires before a dispatcher worker hands one segment
	// to its shard; ctx is the netsim.FlowKey. A panicking hook
	// exercises the per-shard panic recovery and flow quarantine.
	ShardSegment = "shard.segment"
	// DispatchBatch fires before a worker processes one dequeued slab;
	// ctx is the worker index (int). A sleeping hook stalls the shard,
	// exercising slab-pool backpressure.
	DispatchBatch = "dispatch.batch"
	// IngestFrame fires after each raw-TCP ingest frame is parsed; ctx
	// is the tenant name. Hooks simulate slow or resetting peers.
	IngestFrame = "ingest.frame"
)

// Set arms the package and installs fn at the named point (replacing
// any previous hook there). fn runs on the goroutine that hits the
// point.
func Set(point string, fn func(ctx any)) {
	mu.Lock()
	if hooks == nil {
		hooks = make(map[string]func(any))
	}
	hooks[point] = fn
	mu.Unlock()
	armed.Store(true)
}

// Reset removes every hook and disarms the package.
func Reset() {
	armed.Store(false)
	mu.Lock()
	hooks = nil
	mu.Unlock()
}

// Armed reports whether any hook is installed. Hot-path sites guard
// Fire with it so building the ctx argument (an interface boxing,
// often an allocation) is never paid in production:
//
//	if chaos.Armed() {
//		chaos.Fire(chaos.ShardSegment, seg.Flow)
//	}
func Armed() bool { return armed.Load() }

// Fire runs the hook installed at point, if the package is armed and
// one is installed. The fast path — disarmed — is one atomic load.
func Fire(point string, ctx any) {
	if !armed.Load() {
		return
	}
	mu.RLock()
	fn := hooks[point]
	mu.RUnlock()
	if fn != nil {
		fn(ctx)
	}
}
