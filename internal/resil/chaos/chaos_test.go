// The fault-injection property suite: real pipeline, injected faults,
// exact alert accounting. Every test asserts the two resilience
// invariants the layer exists for — alerts from healthy flows are
// neither lost nor duplicated, and memory comes back to zero — while a
// fault (shard panic, arena exhaustion, stalled worker) fires mid-run.
// CI pins these under -race.
package chaos_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/arena"
	"vpatch/internal/netsim"
	"vpatch/internal/resil/chaos"
)

func chaosKey(n int) netsim.FlowKey {
	return netsim.FlowKey{
		SrcIP: 0x0A000001, DstIP: 0x0A000002,
		SrcPort: uint16(30000 + n), DstPort: 9999,
	}
}

func chaosEngine(t *testing.T) *ids.Engine {
	t.Helper()
	set := vpatch.NewPatternSet()
	set.Add([]byte("generic-bad-001"), false, vpatch.ProtoGeneric)
	e, err := ids.NewEngine(set, vpatch.Options{}, func(ids.Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// alertLog is a concurrency-safe per-flow alert tally.
type alertLog struct {
	mu  sync.Mutex
	per map[netsim.FlowKey]int
}

func newAlertLog() *alertLog { return &alertLog{per: make(map[netsim.FlowKey]int)} }

func (l *alertLog) add(a ids.Alert) {
	l.mu.Lock()
	l.per[a.Flow]++
	l.mu.Unlock()
}

// checkExactlyOnce asserts every flow in [0, flows) except the skipped
// ones alerted exactly once — no loss, no duplication.
func (l *alertLog) checkExactlyOnce(t *testing.T, flows int, skip map[int]bool) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for f := 0; f < flows; f++ {
		want := 1
		if skip[f] {
			want = 0
		}
		if got := l.per[chaosKey(f)]; got != want {
			t.Errorf("flow %d: %d alerts, want %d", f, got, want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

// segsFor builds each flow's single matching segment (FIN-terminated,
// so flows tear down through the normal path).
func segsFor(flows int) []netsim.Segment {
	segs := make([]netsim.Segment, 0, flows)
	for f := 0; f < flows; f++ {
		payload := []byte(fmt.Sprintf("flow %04d carries generic-bad-001 once", f))
		segs = append(segs, netsim.Segment{
			Flow: chaosKey(f), Payload: payload, Flags: netsim.FlagFIN,
		})
	}
	return segs
}

// TestChaosShardPanicQuarantinesFlow injects a panic into one flow's
// segment handling: the flow is quarantined and counted, the shard
// survives, and every other flow's alert arrives exactly once.
func TestChaosShardPanicQuarantinesFlow(t *testing.T) {
	defer chaos.Reset()
	const flows = 64
	const poison = 17

	var panics atomic.Int32
	chaos.Set(chaos.ShardSegment, func(ctx any) {
		if ctx.(netsim.FlowKey) == chaosKey(poison) {
			panics.Add(1)
			panic("chaos: injected shard panic")
		}
	})

	e := chaosEngine(t)
	a := arena.New(arena.Config{})
	log := newAlertLog()
	d := e.NewDispatcher(2, netsim.Limits{MaxFlows: 256}, log.add)
	d.SetArena(a)
	obs := d.Observe()

	segs := segsFor(flows)
	d.HandleBatch(segs)
	// A second wave for the poisoned flow: its quarantine must swallow
	// these without re-panicking or alerting.
	d.HandleBatch([]netsim.Segment{{
		Flow: chaosKey(poison), Seq: 100,
		Payload: []byte("more generic-bad-001 after the panic"),
	}})
	d.FlushAll()
	d.Close()

	log.checkExactlyOnce(t, flows, map[int]bool{poison: true})
	if got := panics.Load(); got != 1 {
		t.Fatalf("hook panicked %d times; want 1 (quarantine must drop the retry)", got)
	}
	c := obs.Counters()
	if c.PanicsRecovered != 1 || c.FlowsQuarantined != 1 {
		t.Fatalf("PanicsRecovered=%d FlowsQuarantined=%d; want 1/1",
			c.PanicsRecovered, c.FlowsQuarantined)
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena leak after injected panic: %d bytes in use", st.InUse)
	}
}

// TestChaosPanicStorm: every fourth flow panics; the shards must
// quarantine them all and still deliver every healthy flow's alert
// exactly once.
func TestChaosPanicStorm(t *testing.T) {
	defer chaos.Reset()
	const flows = 128
	bad := func(f int) bool { return f%4 == 0 }

	chaos.Set(chaos.ShardSegment, func(ctx any) {
		k := ctx.(netsim.FlowKey)
		if bad(int(k.SrcPort) - 30000) {
			panic("chaos: storm")
		}
	})

	e := chaosEngine(t)
	a := arena.New(arena.Config{})
	log := newAlertLog()
	d := e.NewDispatcher(4, netsim.Limits{MaxFlows: 256}, log.add)
	d.SetArena(a)
	obs := d.Observe()

	d.HandleBatch(segsFor(flows))
	d.FlushAll()
	d.Close()

	skip := map[int]bool{}
	want := 0
	for f := 0; f < flows; f++ {
		if bad(f) {
			skip[f] = true
			want++
		}
	}
	log.checkExactlyOnce(t, flows, skip)
	c := obs.Counters()
	if int(c.FlowsQuarantined) != want || int(c.PanicsRecovered) != want {
		t.Fatalf("quarantined=%d recovered=%d; want %d each",
			c.FlowsQuarantined, c.PanicsRecovered, want)
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena leak after storm: %d bytes in use", st.InUse)
	}
}

// TestChaosArenaExhaustion: a pathologically small arena cap forces
// the overflow-to-heap path mid-ingest; alert delivery must be
// unaffected and the arena must still come back to zero.
func TestChaosArenaExhaustion(t *testing.T) {
	const flows = 96
	e := chaosEngine(t)
	a := arena.New(arena.Config{MaxBytes: 4 << 10})
	log := newAlertLog()
	d := e.NewDispatcher(2, netsim.Limits{MaxFlows: 256}, log.add)
	d.SetArena(a)

	d.HandleBatch(segsFor(flows))
	d.FlushAll()
	d.Close()

	log.checkExactlyOnce(t, flows, nil)
	st := a.Stats()
	if st.Overflows == 0 {
		t.Fatal("arena cap never tripped — exhaustion not exercised")
	}
	if st.InUse != 0 {
		t.Fatalf("arena leak under exhaustion: %d bytes in use", st.InUse)
	}
}

// TestChaosStalledShard: one worker sleeps on every slab (a stalled
// shard); slab-pool backpressure bounds memory, FlushAll still drains,
// and no alert is lost or duplicated.
func TestChaosStalledShard(t *testing.T) {
	defer chaos.Reset()
	const flows = 64
	chaos.Set(chaos.DispatchBatch, func(ctx any) {
		if ctx.(int) == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	})

	e := chaosEngine(t)
	a := arena.New(arena.Config{})
	log := newAlertLog()
	d := e.NewDispatcher(2, netsim.Limits{MaxFlows: 256}, log.add)
	d.SetArena(a)

	// Several waves through the stalled pipeline; only the first wave's
	// segment of each flow matches, later waves are clean filler that
	// must still drain through the slow worker.
	d.HandleBatch(segsFor(flows))
	for wave := 0; wave < 4; wave++ {
		filler := make([]netsim.Segment, 0, flows)
		for f := 0; f < flows; f++ {
			filler = append(filler, netsim.Segment{
				Flow: chaosKey(f), Seq: uint32(100 + 32*wave),
				Payload: []byte("clean filler bytes, nothing to see"),
			})
		}
		d.HandleBatch(filler)
	}
	done := make(chan struct{})
	go func() { d.FlushAll(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("FlushAll hung behind the stalled shard")
	}
	d.Close()

	log.checkExactlyOnce(t, flows, nil)
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena leak behind stalled shard: %d bytes in use", st.InUse)
	}
}
