// Package resil is the overload-resilience layer: the mechanisms that
// keep the pipeline serving honest traffic while one tenant, one flow,
// or one crafted input tries to consume it. The paper's economics —
// cheap prefiltering, expensive verification only at literal-hit
// anchors — hold only for traffic the defender did not choose; an
// adversary who floods anchor literals (forcing verifier runs), opens
// thousands of stalled connections, or simply outpaces everyone else
// inverts them. This package supplies the three countermeasures the
// serving stack threads through serve → dispatcher → verifier:
//
//   - Scheduler: deficit-round-robin scheduling of ingest batches
//     across tenants with per-tenant bounded queues, replacing
//     reject-over-quota. A hot tenant fills and overflows its own
//     queue; its neighbors' batches keep dispatching at their fair
//     byte share.
//
//   - Pool + VerifierBudget: verifier-work budgets denominated in
//     modeled cycles (costmodel.VerifierPrice) charged per flow and
//     per tenant. A flow that exhausts its budget is degraded to
//     literal-only alerting — the prefilter still sees every byte,
//     only the regex tail stops running — so a match-flood buys a
//     bounded amount of DFA work and then nothing.
//
//   - chaos (subpackage): the fault-injection hooks the race-pinned
//     resilience tests use to prove alerts are neither lost nor
//     duplicated under injected shard panics, stalls and resets.
//
// The degradation order under sustained overload is: shed verify
// (budgets demote flows to literal-only), shed flows (queue overflow
// drops the hot tenant's own batches), reject (HTTP 429 / quota for
// request-scoped APIs).
package resil

import (
	"sync"
	"time"
)

// Pool is a refilling verifier-work budget shared by every flow of one
// tenant, denominated in modeled cycles (costmodel.VerifierPrice). It
// is a token bucket: capacity bounds the burst a tenant can spend on
// verification at once, the rate bounds its sustained spend. Charges
// come from the dispatcher's shard goroutines concurrently — only on
// the rule-hit path, never per byte — so a mutex is cheap enough.
type Pool struct {
	mu     sync.Mutex
	tokens int64
	cap    int64
	rate   int64 // cycles per second
	last   time.Time

	denied uint64
}

// NewPool returns a pool refilling at ratePerSec modeled cycles per
// second with the given burst capacity (<= 0 defaults to two seconds
// of rate). A nil *Pool is valid everywhere and means "no tenant cap".
func NewPool(ratePerSec, burst int64) *Pool {
	if burst <= 0 {
		burst = 2 * ratePerSec
	}
	return &Pool{tokens: burst, cap: burst, rate: ratePerSec, last: time.Now()}
}

// TryTake withdraws n cycles if the pool holds them, reporting whether
// the charge succeeded. A nil pool always succeeds.
func (p *Pool) TryTake(n int64) bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if el := now.Sub(p.last); el > 0 {
		p.tokens += int64(el.Seconds() * float64(p.rate))
		if p.tokens > p.cap {
			p.tokens = p.cap
		}
		p.last = now
	}
	if p.tokens < n {
		p.denied++
		return false
	}
	p.tokens -= n
	return true
}

// Denied reports how many charges the pool has refused.
func (p *Pool) Denied() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.denied
}
