package resil

import "vpatch/internal/costmodel"

// VerifierBudget arms the rule tier's match-flood defense on a shard:
// every flushed buffer's verifier work (redfa runs started, lazy-DFA
// states built, clause-state entries appended) is priced by Price and
// charged against the flow's remaining budget and the tenant's shared
// Pool. The first charge that cannot be covered demotes the flow to
// literal-only alerting — its suspended verifications are settled (so
// already-anchored rules still fire or reject), the rule state is torn
// down, and from then on the flow's literal hits surface as plain
// literal alerts. Exhaustion is detected one buffer late by design:
// the work is measured by counter deltas around the evaluator calls,
// so the overshoot is bounded by one buffer's hits, each of which does
// only anchored-window work.
//
// The zero value is disarmed (unlimited verification, the historical
// behavior).
type VerifierBudget struct {
	// PerFlow is each flow's lifetime verifier budget in modeled
	// cycles; 0 means no per-flow cap.
	PerFlow int64
	// Pool, when non-nil, additionally charges every flow's work
	// against the tenant-wide refilling pool.
	Pool *Pool
	// Price converts counter deltas to cycles. Zero-valued prices
	// charge nothing; use DefaultPrice (or a Platform's VerifierPrice)
	// when arming.
	Price costmodel.VerifierPrice
}

// Armed reports whether any budget dimension is active.
func (b VerifierBudget) Armed() bool { return b.PerFlow > 0 || b.Pool != nil }

// DefaultPrice is the verifier price on the paper's Haswell testbed —
// the platform the rest of the cost model calibrates against.
func DefaultPrice() costmodel.VerifierPrice { return costmodel.Haswell.VerifierPrice() }

// DefaultFlowBudget is the default per-flow verifier budget: enough
// modeled cycles for tens of thousands of clean anchored verifications
// (a real flow's lifetime worth), two orders of magnitude below what a
// sustained single-flow match-flood tries to spend per second.
const DefaultFlowBudget = 10 << 20
