package resil

import (
	"sync"
	"testing"

	"vpatch/internal/arena"
	"vpatch/internal/netsim"
)

func testKey(n int) netsim.FlowKey {
	return netsim.FlowKey{
		SrcIP: 0x0A000001, DstIP: 0x0A000002,
		SrcPort: uint16(40000 + n), DstPort: 80,
	}
}

// segBatch builds one batch of plain (unowned) segments totalling
// about n bytes.
func segBatch(flow, n int) []netsim.Segment {
	payload := make([]byte, n)
	return []netsim.Segment{{Flow: testKey(flow), Payload: payload}}
}

// TestDRRFairnessUnderFlood is the fair-scheduling acceptance test: a
// tenant flooding far beyond its share must not degrade a modest
// neighbor. The attacker keeps its queue saturated (every dispatch
// re-enqueues), the victim offers a fixed 50 KiB; DRR must accept
// every victim byte (zero victim drops — its throughput is 100% of
// solo) and serve the victim within its fair byte share of the
// rotation, attacker pressure notwithstanding.
func TestDRRFairnessUnderFlood(t *testing.T) {
	const (
		quantum      = 16 << 10
		queueBytes   = 64 << 10
		victimTotal  = 50 << 10 // 50 batches x 1 KiB
		attackerSeg  = 16 << 10
		victimBatch  = 1 << 10
		victimeCount = victimTotal / victimBatch
	)

	var (
		mu            sync.Mutex
		victimBytes   uint64
		attackerBytes uint64
		// attackerAtVictimDone is the attacker's dispatched bytes at the
		// moment the victim's last batch went out.
		attackerAtVictimDone uint64
	)

	var s *Scheduler
	dispatch := func(tenant string, segs []netsim.Segment) {
		n := 0
		for i := range segs {
			n += len(segs[i].Payload)
		}
		mu.Lock()
		if tenant == "victim" {
			victimBytes += uint64(n)
			if victimBytes == victimTotal {
				attackerAtVictimDone = attackerBytes
			}
		} else {
			attackerBytes += uint64(n)
		}
		mu.Unlock()
		if tenant == "attacker" {
			// Sustained flood: the attacker replaces every serviced batch.
			s.Enqueue("attacker", segBatch(1, attackerSeg))
		}
	}
	s = NewScheduler(SchedulerConfig{
		QuantumBytes: quantum,
		QueueBytes:   queueBytes,
		Dispatch:     dispatch,
	})

	// Preload: the attacker saturates its queue (over-offers get
	// dropped — on itself); the victim offers a modest fixed load.
	for i := 0; i < 16; i++ {
		s.Enqueue("attacker", segBatch(1, attackerSeg))
	}
	for i := 0; i < victimeCount; i++ {
		s.Enqueue("victim", segBatch(2, victimBatch))
	}

	s.Start()
	s.Flush("victim")
	s.Close()

	vst := s.TenantStats("victim")
	ast := s.TenantStats("attacker")
	if vst.DroppedBatches != 0 {
		t.Fatalf("victim dropped %d batches under attack; want 0 (full throughput)",
			vst.DroppedBatches)
	}
	if victimBytes != victimTotal {
		t.Fatalf("victim dispatched %d bytes; want %d", victimBytes, victimTotal)
	}
	if ast.DroppedBatches == 0 {
		t.Fatalf("attacker over-offered but dropped nothing — queue bound not engaged")
	}
	// Byte fairness: while the victim was being served, the attacker
	// may not get more than its equal byte share per rotation (one
	// extra quantum of slack for rotation boundaries).
	maxAttacker := uint64(victimTotal + 2*quantum)
	if attackerAtVictimDone > maxAttacker {
		t.Fatalf("attacker got %d bytes before victim completed %d; DRR share ceiling %d",
			attackerAtVictimDone, victimTotal, maxAttacker)
	}
	t.Logf("victim %d B (0 drops), attacker %d B serviced / %d dropped batches; attacker at victim-done: %d B",
		victimBytes, attackerBytes, ast.DroppedBatches, attackerAtVictimDone)
}

// TestDRRQueueBoundReleasesPayloads: over-bound enqueues are refused
// and their arena payloads released — no chunk may leak on the drop
// path.
func TestDRRQueueBoundReleasesPayloads(t *testing.T) {
	a := arena.New(arena.Config{})
	gate := make(chan struct{})
	s := NewScheduler(SchedulerConfig{
		QuantumBytes: 1 << 10,
		QueueBytes:   2 << 10,
		Dispatch: func(_ string, segs []netsim.Segment) {
			<-gate
			for i := range segs {
				segs[i].ReleasePayload()
			}
		},
	})
	s.Start()

	rent := func(n int) []netsim.Segment {
		b := a.Rent(n)
		seg := netsim.Segment{Flow: testKey(0), Payload: b.Data()[:n]}
		seg.SetOwned(b)
		return []netsim.Segment{seg}
	}
	accepted, dropped := 0, 0
	for i := 0; i < 16; i++ {
		if s.Enqueue("t", rent(1<<10)) {
			accepted++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("queue bound never engaged")
	}
	close(gate)
	s.Flush("t")
	s.Close()
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena leak after drops+dispatch: %d bytes in use", st.InUse)
	}
	st := s.TenantStats("t")
	if int(st.DispatchedBatches) != accepted || int(st.DroppedBatches) != dropped {
		t.Fatalf("stats dispatched=%d dropped=%d; want %d/%d",
			st.DispatchedBatches, st.DroppedBatches, accepted, dropped)
	}
}

// TestDRRCloseDrainsAndRefuses: Close dispatches everything already
// queued; later enqueues are refused with payloads released.
func TestDRRCloseDrainsAndRefuses(t *testing.T) {
	var mu sync.Mutex
	got := 0
	s := NewScheduler(SchedulerConfig{
		Dispatch: func(_ string, segs []netsim.Segment) {
			mu.Lock()
			got += len(segs)
			mu.Unlock()
		},
	})
	for i := 0; i < 8; i++ {
		s.Enqueue("t", segBatch(0, 512))
	}
	s.Start()
	s.Close()
	if got != 8 {
		t.Fatalf("close drained %d batches; want 8", got)
	}
	a := arena.New(arena.Config{})
	b := a.Rent(64)
	seg := netsim.Segment{Flow: testKey(0), Payload: b.Data()[:64]}
	seg.SetOwned(b)
	if s.Enqueue("t", []netsim.Segment{seg}) {
		t.Fatal("enqueue accepted after Close")
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("refused enqueue leaked payload: %d bytes in use", st.InUse)
	}
}
