package filters

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/dbfmt"
)

// Wire encoding of the filter stages. The merged filter-1/filter-2
// interleaving is not stored — it is recomputed from the two source
// filters at load time (a 16 KB pass), keeping the database free of
// derived state.

// Encode appends the S-PATCH filter stage.
func (fs *SPatchSet) Encode(e *dbfmt.Encoder) {
	fs.Filter1.BitArray.Encode(e)
	fs.Filter2.BitArray.Encode(e)
	fs.Filter3.BitArray.Encode(e)
	e.Bool(fs.HasShort)
	e.Bool(fs.HasLong)
	e.Bool(fs.HasLen1)
}

// DecodeSPatch restores an S-PATCH filter stage, rebuilding the merged
// interleaving.
func DecodeSPatch(d *dbfmt.Decoder) *SPatchSet {
	fs := &SPatchSet{
		Filter1: bitarr.DecodeDirectFilter16(d),
		Filter2: bitarr.DecodeDirectFilter16(d),
		Filter3: bitarr.DecodeHashFilter(d),
	}
	fs.HasShort = d.Bool()
	fs.HasLong = d.Bool()
	fs.HasLen1 = d.Bool()
	if d.Err() != nil {
		return nil
	}
	fs.Merged = bitarr.NewMergedFilter(&fs.Filter1.BitArray, &fs.Filter2.BitArray)
	return fs
}

// Encode appends the DFC filter stage.
func (fs *DFCSet) Encode(e *dbfmt.Encoder) {
	fs.Initial.BitArray.Encode(e)
	fs.Long.BitArray.Encode(e)
	fs.LongNext.BitArray.Encode(e)
	e.Bool(fs.HasShort)
	e.Bool(fs.HasLong)
	e.Bool(fs.HasLen1)
}

// DecodeDFC restores a DFC filter stage.
func DecodeDFC(d *dbfmt.Decoder) *DFCSet {
	fs := &DFCSet{
		Initial:  bitarr.DecodeDirectFilter16(d),
		Long:     bitarr.DecodeDirectFilter16(d),
		LongNext: bitarr.DecodeDirectFilter16(d),
	}
	fs.HasShort = d.Bool()
	fs.HasLong = d.Bool()
	fs.HasLen1 = d.Bool()
	if d.Err() != nil {
		return nil
	}
	return fs
}
