package filters

import (
	"testing"

	"vpatch/internal/bitarr"
	"vpatch/internal/patterns"
)

func pat(s string, nocase bool) *patterns.Pattern {
	set := patterns.NewSet()
	id := set.Add([]byte(s), nocase, patterns.ProtoGeneric)
	return set.Pattern(id)
}

func TestAddPrefix2CaseSensitive(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddPrefix2(f, pat("GEt", false))
	if !f.Test2('G', 'E') {
		t.Fatal("prefix GE not set")
	}
	if f.Test2('g', 'e') || f.Test2('G', 'e') {
		t.Fatal("case-sensitive pattern set folded variants")
	}
}

func TestAddPrefix2Nocase(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddPrefix2(f, pat("GeT", true))
	for _, w := range []string{"ge", "Ge", "gE", "GE"} {
		if !f.Test2(w[0], w[1]) {
			t.Fatalf("nocase variant %q not set", w)
		}
	}
	if f.Test2('e', 'g') {
		t.Fatal("unrelated window set")
	}
}

func TestAddPrefix2NocaseNonLetters(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddPrefix2(f, pat("/1ab", true))
	if !f.Test2('/', '1') {
		t.Fatal("non-letter prefix not set")
	}
	if got := f.PopCount(); got != 1 {
		t.Fatalf("non-letter nocase prefix set %d bits, want 1", got)
	}
}

func TestAddPrefix2OneByte(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddPrefix2(f, pat("\x90", false))
	for b1 := 0; b1 < 256; b1 += 17 {
		if !f.Test2(0x90, byte(b1)) {
			t.Fatalf("window (0x90,%#x) not set for 1-byte pattern", b1)
		}
	}
	if got := f.PopCount(); got != 256 {
		t.Fatalf("1-byte pattern set %d bits, want 256", got)
	}
}

func TestAddPrefix2OneByteNocaseLetter(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddPrefix2(f, pat("q", true))
	if !f.Test2('q', 'x') || !f.Test2('Q', 'x') {
		t.Fatal("1-byte nocase letter must set both cases")
	}
	if got := f.PopCount(); got != 512 {
		t.Fatalf("set %d bits, want 512", got)
	}
}

func TestAddNext2(t *testing.T) {
	f := bitarr.NewDirectFilter16()
	AddNext2(f, pat("abXYtail", false))
	if !f.Test2('X', 'Y') {
		t.Fatal("second window not set")
	}
	if f.Test2('a', 'b') {
		t.Fatal("first window must not be set by AddNext2")
	}
}

func TestAddHash4CaseSensitive(t *testing.T) {
	f := bitarr.NewHashFilter(16)
	AddHash4(f, pat("attack", false))
	if !f.Test4(bitarr.Load4([]byte("atta"))) {
		t.Fatal("4-byte prefix hash not set")
	}
}

func TestAddHash4NocaseAllVariants(t *testing.T) {
	f := bitarr.NewHashFilter(16)
	AddHash4(f, pat("GetX", true))
	for _, v := range []string{"getx", "GETX", "GeTx", "gEtX", "GETx", "getX"} {
		if !f.Test4(bitarr.Load4([]byte(v))) {
			t.Fatalf("nocase 4-byte variant %q not set", v)
		}
	}
}

func TestAddHash4NocaseMixedLetters(t *testing.T) {
	f := bitarr.NewHashFilter(16)
	AddHash4(f, pat("a1b2rest", true))
	for _, v := range []string{"a1b2", "A1b2", "a1B2", "A1B2"} {
		if !f.Test4(bitarr.Load4([]byte(v))) {
			t.Fatalf("variant %q not set", v)
		}
	}
}

func TestBuildSPatchClassesAndFlags(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("ab"), false, patterns.ProtoGeneric) // short
	set.Add([]byte("longpattern"), false, patterns.ProtoGeneric)
	fs := BuildSPatch(set, 0)
	if !fs.HasShort || !fs.HasLong || fs.HasLen1 {
		t.Fatalf("flags: short=%v long=%v len1=%v", fs.HasShort, fs.HasLong, fs.HasLen1)
	}
	// Short pattern only in filter 1, long only in filters 2+3.
	if !fs.Filter1.Test2('a', 'b') || fs.Filter2.Test2('a', 'b') {
		t.Fatal("short pattern in wrong filter")
	}
	if !fs.Filter2.Test2('l', 'o') || fs.Filter1.Test2('l', 'o') {
		t.Fatal("long pattern in wrong filter")
	}
	if !fs.Filter3.Test4(bitarr.Load4([]byte("long"))) {
		t.Fatal("long pattern missing from filter 3")
	}
}

func TestBuildSPatchLen1Flag(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0xC0}, false, patterns.ProtoGeneric)
	fs := BuildSPatch(set, 0)
	if !fs.HasLen1 {
		t.Fatal("HasLen1 not set")
	}
}

func TestBuildSPatchMergedAgrees(t *testing.T) {
	set := patterns.GenerateS1(1).Subset(500, 1)
	fs := BuildSPatch(set, 0)
	for idx := uint32(0); idx < 1<<16; idx += 7 {
		m1, m2 := fs.Merged.Test(idx)
		if m1 != fs.Filter1.Test(idx) || m2 != fs.Filter2.Test(idx) {
			t.Fatalf("merged filter diverges at %#x", idx)
		}
	}
}

func TestBuildSPatchFilter3Sizing(t *testing.T) {
	set := patterns.FromStrings("abcdef")
	def := BuildSPatch(set, 0)
	if def.Filter3.SizeBytes() != 16384 {
		t.Fatalf("default filter 3 size %d, want 16 KB", def.Filter3.SizeBytes())
	}
	big := BuildSPatch(set, 20)
	if big.Filter3.SizeBytes() != 131072 {
		t.Fatalf("2^20-bit filter 3 size %d", big.Filter3.SizeBytes())
	}
	if def.SizeBytes() != def.Merged.SizeBytes()+def.Filter3.SizeBytes() {
		t.Fatal("SizeBytes inconsistent")
	}
}

func TestBuildDFC(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("ab"), false, patterns.ProtoGeneric)
	set.Add([]byte("wxyzlong"), false, patterns.ProtoGeneric)
	fs := BuildDFC(set)
	if !fs.Initial.Test2('a', 'b') || !fs.Initial.Test2('w', 'x') {
		t.Fatal("initial filter missing a pattern")
	}
	if !fs.Long.Test2('w', 'x') || fs.Long.Test2('a', 'b') {
		t.Fatal("long family filter wrong")
	}
	if !fs.LongNext.Test2('y', 'z') {
		t.Fatal("progressive filter missing second window")
	}
	if !fs.HasShort || !fs.HasLong {
		t.Fatal("family flags wrong")
	}
	if fs.SizeBytes() != 3*8192 {
		t.Fatalf("DFC stage size %d, want 24 KB", fs.SizeBytes())
	}
}

// No false negatives: every pattern's first window must pass the filters
// that route to its verification path, for a large generated set.
func TestNoFalseNegativesOnGeneratedSet(t *testing.T) {
	set := patterns.GenerateS1(5)
	fs := BuildSPatch(set, 0)
	dfc := BuildDFC(set)
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		if len(p.Data) >= 2 {
			b0, b1 := p.Data[0], p.Data[1]
			if p.IsShort() {
				if !fs.Filter1.Test2(b0, b1) {
					t.Fatalf("pattern %q missing from filter 1", p.Data)
				}
			} else {
				if !fs.Filter2.Test2(b0, b1) {
					t.Fatalf("pattern %q missing from filter 2", p.Data)
				}
				if !fs.Filter3.Test4(bitarr.Load4(p.Data)) {
					t.Fatalf("pattern %q missing from filter 3", p.Data)
				}
				if !dfc.LongNext.Test2(p.Data[2], p.Data[3]) {
					t.Fatalf("pattern %q missing from DFC progressive filter", p.Data)
				}
			}
			if !dfc.Initial.Test2(b0, b1) {
				t.Fatalf("pattern %q missing from DFC initial filter", p.Data)
			}
		}
	}
}
