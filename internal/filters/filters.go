// Package filters builds the cache-resident filter structures of DFC and
// S-PATCH/V-PATCH from a pattern set. It owns the one subtle part of
// filter construction: case-insensitive patterns must set a filter bit for
// *every case variant* of their indexed bytes (a nocase pattern "get" must
// make the windows "GE", "Ge", "gE", "ge" all pass), so that filters keep
// the no-false-negative guarantee verification relies on.
package filters

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/patterns"
)

// variants returns the byte values that fold to b: for a lower-case
// letter, itself and its upper-case form; otherwise just b. Patterns
// store nocase data folded, so b is never upper-case for nocase adds.
func variants(b byte) [2]byte {
	if b >= 'a' && b <= 'z' {
		return [2]byte{b, b - ('a' - 'A')}
	}
	return [2]byte{b, b}
}

// eachVariant2 calls fn for every case-variant pair of (b0, b1) under
// nocase, or once with (b0, b1) otherwise. Duplicate pairs (non-letters)
// are harmless: filter Set is idempotent.
func eachVariant2(b0, b1 byte, nocase bool, fn func(a, b byte)) {
	if !nocase {
		fn(b0, b1)
		return
	}
	v0, v1 := variants(b0), variants(b1)
	fn(v0[0], v1[0])
	fn(v0[0], v1[1])
	fn(v0[1], v1[0])
	fn(v0[1], v1[1])
}

// AddPrefix2 registers pattern p's starting 2-byte window(s) in f.
// One-byte patterns set every window whose first byte matches (they can
// start anywhere regardless of the following byte).
func AddPrefix2(f *bitarr.DirectFilter16, p *patterns.Pattern) {
	if len(p.Data) == 1 {
		for _, b := range variantsList(p.Data[0], p.Nocase) {
			f.AddAllSecond(b)
		}
		return
	}
	eachVariant2(p.Data[0], p.Data[1], p.Nocase, f.AddPrefix2)
}

// AddNext2 registers pattern p's second 2-byte window (bytes 2-3) in f —
// DFC's progressive filter for long patterns. p must be >= 4 bytes.
func AddNext2(f *bitarr.DirectFilter16, p *patterns.Pattern) {
	eachVariant2(p.Data[2], p.Data[3], p.Nocase, f.AddPrefix2)
}

// AddHash4 registers pattern p's 4-byte prefix in the hash filter,
// expanding all case variants (up to 16) for nocase patterns. p must be
// >= 4 bytes.
func AddHash4(f *bitarr.HashFilter, p *patterns.Pattern) {
	if !p.Nocase {
		f.Add4(bitarr.Load4(p.Data))
		return
	}
	v := [4][2]byte{
		variants(p.Data[0]), variants(p.Data[1]),
		variants(p.Data[2]), variants(p.Data[3]),
	}
	for mask := 0; mask < 16; mask++ {
		f.Add4(bitarr.Index2(v[0][mask&1], v[1][mask>>1&1]) |
			bitarr.Index2(v[2][mask>>2&1], v[3][mask>>3&1])<<16)
	}
}

func variantsList(b byte, nocase bool) []byte {
	if !nocase {
		return []byte{b}
	}
	v := variants(b)
	if v[0] == v[1] {
		return []byte{b}
	}
	return []byte{v[0], v[1]}
}

// SPatchSet is the complete filter stage of S-PATCH/V-PATCH (paper §IV-A,
// Fig. 1): filter 1 over short patterns (1-3 B, 2-byte index), filter 2
// over long patterns (>= 4 B, same 2-byte index), filter 3 over long
// patterns (multiplicative hash of the 4-byte prefix), plus the merged
// interleaving of filters 1 and 2 for V-PATCH's single-gather lookup.
type SPatchSet struct {
	Filter1 *bitarr.DirectFilter16
	Filter2 *bitarr.DirectFilter16
	Filter3 *bitarr.HashFilter
	Merged  *bitarr.MergedFilter

	// HasShort/HasLong record whether each class is populated, letting
	// scan loops skip dead stages.
	HasShort bool
	HasLong  bool
	// HasLen1 records the presence of 1-byte patterns (they can match at
	// the final input byte, where no 2-byte window exists).
	HasLen1 bool
}

// DefaultFilter3Log2Bits sizes filter 3 at 2^17 bits = 16 KB: together
// with the two 8 KB direct filters the stage fits comfortably in L1+L2,
// the property the paper's design requires. See the Filter3Size ablation.
const DefaultFilter3Log2Bits = 17

// BuildSPatch constructs the S-PATCH filter stage for a set.
// filter3Log2Bits == 0 selects DefaultFilter3Log2Bits.
func BuildSPatch(set *patterns.Set, filter3Log2Bits uint) *SPatchSet {
	if filter3Log2Bits == 0 {
		filter3Log2Bits = DefaultFilter3Log2Bits
	}
	fs := &SPatchSet{
		Filter1: bitarr.NewDirectFilter16(),
		Filter2: bitarr.NewDirectFilter16(),
		Filter3: bitarr.NewHashFilter(filter3Log2Bits),
	}
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		if p.IsShort() {
			fs.HasShort = true
			if len(p.Data) == 1 {
				fs.HasLen1 = true
			}
			AddPrefix2(fs.Filter1, p)
		} else {
			fs.HasLong = true
			AddPrefix2(fs.Filter2, p)
			AddHash4(fs.Filter3, p)
		}
	}
	fs.Merged = bitarr.NewMergedFilter(&fs.Filter1.BitArray, &fs.Filter2.BitArray)
	return fs
}

// SizeBytes reports the stage's cache footprint (filters 1+2 counted via
// the merged layout they are actually accessed through, plus filter 3).
func (fs *SPatchSet) SizeBytes() int {
	return fs.Merged.SizeBytes() + fs.Filter3.SizeBytes()
}

// DFCSet is the filter stage of the original DFC (paper §II-B): an
// initial direct filter over *all* patterns, the long family's (>= 4 B)
// direct filter, and the long family's progressive second-window filter.
// Short patterns (1-3 B) have no filter beyond the initial one — an
// initial hit goes straight to their direct-address verification tables.
// (A *dedicated* short-pattern filter is exactly what S-PATCH adds.)
type DFCSet struct {
	Initial  *bitarr.DirectFilter16 // all patterns, first 2 bytes
	Long     *bitarr.DirectFilter16 // long family, first 2 bytes
	LongNext *bitarr.DirectFilter16 // long family, bytes 2-3
	HasShort bool
	HasLong  bool
	HasLen1  bool
}

// BuildDFC constructs the DFC filter stage for a set.
func BuildDFC(set *patterns.Set) *DFCSet {
	fs := &DFCSet{
		Initial:  bitarr.NewDirectFilter16(),
		Long:     bitarr.NewDirectFilter16(),
		LongNext: bitarr.NewDirectFilter16(),
	}
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		AddPrefix2(fs.Initial, p)
		if p.IsShort() {
			fs.HasShort = true
			if len(p.Data) == 1 {
				fs.HasLen1 = true
			}
		} else {
			fs.HasLong = true
			AddPrefix2(fs.Long, p)
			AddNext2(fs.LongNext, p)
		}
	}
	return fs
}

// SizeBytes reports the DFC stage's cache footprint.
func (fs *DFCSet) SizeBytes() int {
	return fs.Initial.SizeBytes() + fs.Long.SizeBytes() + fs.LongNext.SizeBytes()
}
