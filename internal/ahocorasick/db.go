package ahocorasick

import (
	"vpatch/internal/dbfmt"
	"vpatch/internal/engine"
	"vpatch/internal/patterns"
)

// Compiled-database serialization for the Aho-Corasick automaton. This
// is the structure offline compilation pays off most for: building the
// automaton walks a pointer-chasing trie plus a BFS over every state,
// while loading it back is a handful of flat array reads. All three
// representations (full matrix, sparse, banded) serialize; the loader
// restores exactly the representation that was compiled.
//
// Every state index and pattern ID in the file is validated against the
// decoded automaton's bounds before the matcher is returned, since the
// scan loops index these arrays without checks.

var _ engine.DBCodec = (*Matcher)(nil)

// Representation kind bytes.
const (
	repFull   = 0
	repSparse = 1
	repBanded = 2
)

// EncodeCompiled appends the automaton (engine.DBCodec).
func (m *Matcher) EncodeCompiled(e *dbfmt.Encoder) {
	e.Bool(m.folded)
	e.Uvarint(uint64(m.states))

	// Outputs: per-state counts, then the pattern IDs flattened.
	total := 0
	for _, out := range m.outputs {
		e.Uvarint(uint64(len(out)))
		total += len(out)
	}
	flat := make([]int32, 0, total)
	for _, out := range m.outputs {
		flat = append(flat, out...)
	}
	e.Int32s(flat)

	switch {
	case m.full:
		e.U8(repFull)
		e.Int32s(m.next)
	case m.banded:
		e.U8(repBanded)
		e.Int32s(m.rootRow)
		totalBand := 0
		for i := range m.bands {
			b := &m.bands[i]
			e.Uvarint(uint64(len(b.next)))
			if len(b.next) > 0 {
				e.U8(b.lo)
			}
			totalBand += len(b.next)
		}
		flatBands := make([]int32, 0, totalBand)
		for i := range m.bands {
			flatBands = append(flatBands, m.bands[i].next...)
		}
		e.Int32s(flatBands)
	default:
		e.U8(repSparse)
		e.Int32s(m.fail)
		totalLab := 0
		for _, ls := range m.labels {
			e.Uvarint(uint64(len(ls)))
			totalLab += len(ls)
		}
		flatLabels := make([]byte, 0, totalLab)
		flatTargets := make([]int32, 0, totalLab)
		for s := range m.labels {
			flatLabels = append(flatLabels, m.labels[s]...)
			flatTargets = append(flatTargets, m.targets[s]...)
		}
		e.Blob(flatLabels)
		e.Int32s(flatTargets)
	}
}

// Decode restores an Aho-Corasick engine over set.
func Decode(d *dbfmt.Decoder, set *patterns.Set) (*Matcher, error) {
	m := &Matcher{set: set}
	m.folded = d.Bool()
	states := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	// Every state contributes at least one byte of output counts, so the
	// state count is bounded by the remaining input.
	if states < 1 || states > uint64(d.Remaining()) {
		d.Fail("automaton state count %d invalid", states)
		return nil, d.Err()
	}
	m.states = int(states)
	nPat := int32(set.Len())

	counts := make([]int, m.states)
	total := 0
	for s := range counts {
		n := d.CountAtMost(d.Remaining())
		if d.Err() != nil {
			return nil, d.Err()
		}
		counts[s] = n
		total += n
	}
	flat := d.Int32s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(flat) != total {
		d.Fail("outputs have %d ids, counts claim %d", len(flat), total)
		return nil, d.Err()
	}
	for _, id := range flat {
		if id < 0 || id >= nPat {
			d.Fail("output pattern id %d out of range [0,%d)", id, nPat)
			return nil, d.Err()
		}
	}
	m.outputs = make([][]int32, m.states)
	off := 0
	for s := range counts {
		if counts[s] > 0 {
			m.outputs[s] = flat[off : off+counts[s] : off+counts[s]]
			off += counts[s]
		}
	}

	switch rep := d.U8(); rep {
	case repFull:
		m.decodeFull(d)
	case repSparse:
		m.decodeSparse(d)
	case repBanded:
		m.decodeBanded(d)
	default:
		d.Fail("unknown automaton representation %d", rep)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// checkStates validates that every value of v is a state index.
func (m *Matcher) checkStates(d *dbfmt.Decoder, v []int32, what string) {
	limit := int32(m.states)
	for _, s := range v {
		if s < 0 || s >= limit {
			d.Fail("%s state %d out of range [0,%d)", what, s, limit)
			return
		}
	}
}

func (m *Matcher) decodeFull(d *dbfmt.Decoder) {
	m.full = true
	// The matrix dominates the database (1 KB per state), so decode and
	// validate in a single fused pass over the raw cells.
	n := d.Count(4)
	raw := d.Raw(n * 4)
	if d.Err() != nil {
		return
	}
	if n != m.states*256 {
		d.Fail("full matrix has %d cells, want %d", n, m.states*256)
		return
	}
	m.next = make([]int32, n)
	limit := uint32(m.states)
	for i := range m.next {
		b := raw[i*4:]
		v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		if v >= limit {
			d.Fail("matrix state %d out of range [0,%d)", int32(v), limit)
			return
		}
		m.next[i] = int32(v)
	}
}

func (m *Matcher) decodeSparse(d *dbfmt.Decoder) {
	m.fail = d.Int32s()
	counts := make([]int, m.states)
	total := 0
	for s := range counts {
		n := d.CountAtMost(256)
		if d.Err() != nil {
			return
		}
		counts[s] = n
		total += n
	}
	flatLabels := d.Blob()
	flatTargets := d.Int32s()
	if d.Err() != nil {
		return
	}
	if len(m.fail) != m.states {
		d.Fail("failure links cover %d states, want %d", len(m.fail), m.states)
		return
	}
	if len(flatLabels) != total || len(flatTargets) != total {
		d.Fail("sparse edges have %d labels / %d targets, counts claim %d",
			len(flatLabels), len(flatTargets), total)
		return
	}
	m.checkStates(d, m.fail, "failure")
	m.checkStates(d, flatTargets, "edge")
	if d.Err() != nil {
		return
	}
	m.labels = make([][]byte, m.states)
	m.targets = make([][]int32, m.states)
	off := 0
	for s := range counts {
		if counts[s] == 0 {
			continue
		}
		m.labels[s] = flatLabels[off : off+counts[s] : off+counts[s]]
		m.targets[s] = flatTargets[off : off+counts[s] : off+counts[s]]
		off += counts[s]
	}
}

func (m *Matcher) decodeBanded(d *dbfmt.Decoder) {
	m.banded = true
	m.rootRow = d.Int32s()
	lens := make([]int, m.states)
	los := make([]uint8, m.states)
	total := 0
	for s := range lens {
		n := d.CountAtMost(256)
		if d.Err() != nil {
			return
		}
		if n > 0 {
			lo := d.U8()
			if n > 256-int(lo) {
				d.Fail("band [%d,%d) exceeds the byte range", lo, int(lo)+n)
				return
			}
			los[s] = lo
		}
		lens[s] = n
		total += n
	}
	flat := d.Int32s()
	if d.Err() != nil {
		return
	}
	if len(m.rootRow) != 256 {
		d.Fail("root row has %d cells, want 256", len(m.rootRow))
		return
	}
	if len(flat) != total {
		d.Fail("bands have %d cells, lengths claim %d", len(flat), total)
		return
	}
	m.checkStates(d, m.rootRow, "root row")
	m.checkStates(d, flat, "band")
	if d.Err() != nil {
		return
	}
	m.bands = make([]bandedRow, m.states)
	off := 0
	for s := range lens {
		if lens[s] == 0 {
			continue
		}
		m.bands[s] = bandedRow{lo: los[s], next: flat[off : off+lens[s] : off+lens[s]]}
		off += lens[s]
	}
}
