package ahocorasick

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func scan(m *Matcher, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func checkAgainstNaive(t *testing.T, set *patterns.Set, input []byte, opt Options) {
	t.Helper()
	m := Build(set, opt)
	got := scan(m, input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("AC (full=%v folded=%v) disagrees with naive: got %d matches, want %d",
			m.FullMatrix(), m.folded, len(got), len(want))
	}
}

func TestClassicExample(t *testing.T) {
	// The canonical Aho-Corasick example set.
	set := patterns.FromStrings("he", "she", "his", "hers")
	input := []byte("ushers")
	m := Build(set, Options{})
	got := scan(m, input)
	want := []patterns.Match{
		{PatternID: 1, Pos: 1}, // she
		{PatternID: 0, Pos: 2}, // he
		{PatternID: 3, Pos: 2}, // hers
	}
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestOverlappingAndNested(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("aa", "aaa", "aaaa"), []byte("aaaaaa"), Options{})
	checkAgainstNaive(t, patterns.FromStrings("ab", "ba"), []byte("ababab"), Options{})
	checkAgainstNaive(t, patterns.FromStrings("abc", "bc", "c"), []byte("abcabc"), Options{})
}

func TestFailureChainOutputs(t *testing.T) {
	// "abcd" matching must also report the suffix patterns via failure
	// links merged at build time.
	set := patterns.FromStrings("abcd", "bcd", "cd", "d")
	checkAgainstNaive(t, set, []byte("xxabcdxx"), Options{})
}

func TestEmptyInputAndNoPatterns(t *testing.T) {
	m := Build(patterns.NewSet(), Options{})
	if n := len(scan(m, []byte("anything"))); n != 0 {
		t.Fatalf("empty set matched %d", n)
	}
	m2 := Build(patterns.FromStrings("abc"), Options{})
	if n := len(scan(m2, nil)); n != 0 {
		t.Fatalf("empty input matched %d", n)
	}
}

func TestBinaryPatterns(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0x00, 0x01}, false, patterns.ProtoGeneric)
	set.Add([]byte{0xFF}, false, patterns.ProtoGeneric)
	set.Add([]byte{0x00, 0x01, 0x02, 0x03}, false, patterns.ProtoGeneric)
	input := []byte{0x00, 0x01, 0x02, 0x03, 0xFF, 0x00, 0x01}
	checkAgainstNaive(t, set, input, Options{})
}

func TestNocaseMixedSet(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GET"), false, patterns.ProtoHTTP)    // case-sensitive
	set.Add([]byte("get"), false, patterns.ProtoHTTP)    // case-sensitive, collides when folded
	set.Add([]byte("Host"), true, patterns.ProtoHTTP)    // nocase
	set.Add([]byte("cmd.exe"), true, patterns.ProtoHTTP) // nocase long
	input := []byte("GET get GeT HOST host CMD.EXE Cmd.Exe")
	checkAgainstNaive(t, set, input, Options{})
	m := Build(set, Options{})
	if !m.folded {
		t.Fatal("mixed set must build a folded automaton")
	}
}

func TestPureCaseSensitiveSkipsFolding(t *testing.T) {
	m := Build(patterns.FromStrings("GET", "Host"), Options{})
	if m.folded {
		t.Fatal("pure case-sensitive set must not fold")
	}
	var c metrics.Counters
	m.Scan([]byte("GET Host get"), &c, nil)
	if c.VerifyAttempts != 0 {
		t.Fatal("unfolded automaton must not verify")
	}
	if c.Matches != 2 {
		t.Fatalf("Matches = %d, want 2", c.Matches)
	}
}

func TestSparseEqualsFull(t *testing.T) {
	set := patterns.GenerateS1(3).Subset(300, 1)
	input := traffic.Synthesize(traffic.ISCXDay2, 64<<10, 5, set)
	full := Build(set, Options{})
	sparse := Build(set, Options{MaxMatrixBytes: -1})
	if !full.FullMatrix() || sparse.FullMatrix() {
		t.Fatalf("representations: full=%v sparse=%v", full.FullMatrix(), sparse.FullMatrix())
	}
	a := scan(full, input)
	b := scan(sparse, input)
	if !patterns.EqualMatches(a, b) {
		t.Fatalf("sparse (%d) and full (%d) disagree", len(b), len(a))
	}
}

func TestSparseFallbackOnBudget(t *testing.T) {
	set := patterns.FromStrings("abcdefgh", "ijklmnop")
	// 17 states * 1 KB > 4 KB budget.
	m := Build(set, Options{MaxMatrixBytes: 4 << 10})
	if m.FullMatrix() {
		t.Fatal("small budget did not force sparse representation")
	}
	checkAgainstNaive(t, set, []byte("xxabcdefghxxijklmnop"), Options{MaxMatrixBytes: 4 << 10})
}

func TestStatesCount(t *testing.T) {
	// Trie of "ab","ac" = root + a + b + c = 4 states.
	m := Build(patterns.FromStrings("ab", "ac"), Options{})
	if m.States() != 4 {
		t.Fatalf("States = %d, want 4", m.States())
	}
}

func TestMemoryFootprintRepresentations(t *testing.T) {
	set := patterns.GenerateS1(1).Subset(200, 2)
	full := Build(set, Options{})
	sparse := Build(set, Options{MaxMatrixBytes: -1})
	if full.MemoryFootprint() != full.States()*1024 {
		t.Fatalf("full footprint %d != states*1KB", full.MemoryFootprint())
	}
	if sparse.MemoryFootprint() >= full.MemoryFootprint() {
		t.Fatalf("sparse footprint %d not smaller than full %d",
			sparse.MemoryFootprint(), full.MemoryFootprint())
	}
}

func TestCounters(t *testing.T) {
	m := Build(patterns.FromStrings("abc"), Options{})
	var c metrics.Counters
	input := []byte("zabcz")
	m.Scan(input, &c, nil)
	if c.BytesScanned != 5 {
		t.Fatalf("BytesScanned = %d", c.BytesScanned)
	}
	if c.DFAAccesses != 5 {
		t.Fatalf("DFAAccesses = %d, want one per byte", c.DFAAccesses)
	}
	if c.Matches != 1 {
		t.Fatalf("Matches = %d", c.Matches)
	}
}

func TestRandomAgainstNaiveBothRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		set := patterns.NewSet()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 300)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkAgainstNaive(t, set, input, Options{})
		checkAgainstNaive(t, set, input, Options{MaxMatrixBytes: -1})
	}
}

func TestRealisticTrafficAgainstNaive(t *testing.T) {
	set := patterns.GenerateS1(11).Subset(60, 3)
	input := traffic.Synthesize(traffic.ISCXDay6, 16<<10, 21, set)
	checkAgainstNaive(t, set, input, Options{})
}

func TestScanNilEmit(t *testing.T) {
	m := Build(patterns.FromStrings("ab"), Options{})
	var c metrics.Counters
	m.Scan([]byte("abab"), &c, nil) // must not panic
	if c.Matches != 2 {
		t.Fatalf("Matches = %d", c.Matches)
	}
}

func BenchmarkScanFullMatrix2K(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set, Options{})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func BenchmarkScanSparse2K(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set, Options{MaxMatrixBytes: -1})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func TestBandedEqualsFull(t *testing.T) {
	set := patterns.GenerateS1(7).Subset(300, 5)
	input := traffic.Synthesize(traffic.ISCXDay6, 64<<10, 3, set)
	full := Build(set, Options{})
	banded := Build(set, Options{Banded: true})
	if !banded.banded || banded.FullMatrix() {
		t.Fatal("Banded option ignored")
	}
	a := scan(full, input)
	b := scan(banded, input)
	if !patterns.EqualMatches(a, b) {
		t.Fatalf("banded (%d) and full (%d) disagree", len(b), len(a))
	}
}

func TestBandedAgainstNaive(t *testing.T) {
	checkAgainstNaive(t, patterns.FromStrings("he", "she", "his", "hers"),
		[]byte("ushers and his herself"), Options{Banded: true})
	set := patterns.NewSet()
	set.Add([]byte{0x00, 0xFF}, false, patterns.ProtoGeneric) // band at byte extremes
	set.Add([]byte{0xFF, 0x00, 0x41}, false, patterns.ProtoGeneric)
	checkAgainstNaive(t, set, []byte{0x00, 0xFF, 0x00, 0x41, 0xFF, 0x00, 0x41}, Options{Banded: true})
}

func TestBandedNocase(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)
	set.Add([]byte("Host"), false, patterns.ProtoHTTP)
	checkAgainstNaive(t, set, []byte("GET get Host HOST gEt host"), Options{Banded: true})
}

func TestBandedMuchSmallerThanFull(t *testing.T) {
	set := patterns.GenerateS1(1).WebSubset()
	full := Build(set, Options{})
	banded := Build(set, Options{Banded: true})
	ratio := float64(banded.MemoryFootprint()) / float64(full.MemoryFootprint())
	// ASCII-dense rule sets keep bands spanning the printable range, so
	// ~2x is the honest compression here (binary-heavy tries do better).
	if ratio > 0.65 {
		t.Fatalf("banded footprint is %.0f%% of full; compression ineffective", ratio*100)
	}
}

func TestBandedRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		set := patterns.NewSet()
		for i := 0; i < 1+rng.Intn(10); i++ {
			l := 1 + rng.Intn(5)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 250)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkAgainstNaive(t, set, input, Options{Banded: true})
	}
}

func BenchmarkScanBanded2K(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set, Options{Banded: true})
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}
