// Package ahocorasick implements the paper's primary baseline: the
// Aho-Corasick automaton as used by Snort (a full-matrix DFA with dense
// 256-way next-state tables, one dependent memory access per input byte).
//
// The full matrix is exactly what makes AC slow on large rule sets — the
// automaton grows far beyond cache (the effect Fig. 4 and Fig. 7 hinge
// on) — so the matrix representation is the default. Sets whose matrix
// would exceed a configurable budget fall back to a sparse
// (binary-search + failure-link) representation, like the trimmed
// variants the paper cites ("decrease the size of the state transition
// table ... at an increased search cost").
//
// Case-insensitive patterns are supported by building the automaton over
// case-folded bytes and scanning folded input; when the set mixes
// case-sensitive patterns in, terminal states verify candidates exactly
// (so output semantics stay identical to every other matcher). Sets with
// no nocase patterns build a raw automaton with zero verification
// overhead.
package ahocorasick

import (
	"sort"

	"vpatch/internal/engine"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// DefaultMaxMatrixBytes caps the full-matrix size before the sparse
// fallback engages (256 MB ≈ 260k states).
const DefaultMaxMatrixBytes = 256 << 20

// Options configures Build.
type Options struct {
	// MaxMatrixBytes overrides DefaultMaxMatrixBytes; 0 means default,
	// negative forces the sparse representation.
	MaxMatrixBytes int
	// Banded selects the banded-row compressed representation (Norton
	// [26]: smaller transition table, extra per-byte search cost). It
	// overrides MaxMatrixBytes.
	Banded bool
}

// Matcher is a compiled Aho-Corasick automaton. The automaton is
// immutable after Build and the scan state (the current DFA state) lives
// on the stack, so one Matcher may scan from any number of goroutines
// concurrently.
type Matcher struct {
	set    *patterns.Set
	folded bool // automaton built over folded bytes; verify on output

	states int
	// outputs[s] lists pattern IDs whose (possibly folded) bytes end at
	// state s.
	outputs [][]int32

	// Full-matrix representation: next[s*256+c].
	full bool
	next []int32

	// Sparse representation: per-state sorted edge arrays + failure links.
	labels  [][]byte
	targets [][]int32
	fail    []int32

	// Banded representation (banded.go).
	banded  bool
	rootRow []int32
	bands   []bandedRow
}

// buildNode is the trie node used during construction only.
type buildNode struct {
	children map[byte]int32
	outputs  []int32
	fail     int32
	depth    int32
}

// Build compiles the pattern set.
func Build(set *patterns.Set, opt Options) *Matcher {
	m := &Matcher{set: set}
	for i := range set.Patterns() {
		if set.Patterns()[i].Nocase {
			m.folded = true
			break
		}
	}

	// 1. Trie over (possibly folded) pattern bytes.
	nodes := []*buildNode{{children: make(map[byte]int32)}}
	for i := range set.Patterns() {
		p := &set.Patterns()[i]
		cur := int32(0)
		for _, b := range p.Data {
			if m.folded {
				b = patterns.FoldByte(b)
			}
			nxt, ok := nodes[cur].children[b]
			if !ok {
				nxt = int32(len(nodes))
				nodes = append(nodes, &buildNode{
					children: make(map[byte]int32),
					depth:    nodes[cur].depth + 1,
				})
				nodes[cur].children[b] = nxt
			}
			cur = nxt
		}
		nodes[cur].outputs = append(nodes[cur].outputs, p.ID)
	}
	m.states = len(nodes)

	// 2. BFS failure links; merge output sets along failure chains.
	queue := make([]int32, 0, len(nodes))
	for _, child := range nodes[0].children {
		nodes[child].fail = 0
		queue = append(queue, child)
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for b, child := range nodes[s].children {
			queue = append(queue, child)
			f := nodes[s].fail
			for f != 0 {
				if t, ok := nodes[f].children[b]; ok {
					f = t
					goto linked
				}
				f = nodes[f].fail
			}
			if t, ok := nodes[0].children[b]; ok && t != child {
				f = t
			} else {
				f = 0
			}
		linked:
			nodes[child].fail = f
			if len(nodes[f].outputs) > 0 {
				nodes[child].outputs = append(nodes[child].outputs, nodes[f].outputs...)
			}
		}
	}

	m.outputs = make([][]int32, m.states)
	for s, n := range nodes {
		m.outputs[s] = n.outputs
	}

	// 3. Choose representation.
	budget := opt.MaxMatrixBytes
	if budget == 0 {
		budget = DefaultMaxMatrixBytes
	}
	switch {
	case opt.Banded:
		m.buildBanded(nodes, queue)
	case budget > 0 && m.states*256*4 <= budget:
		m.buildFullMatrix(nodes, queue)
	default:
		m.buildSparse(nodes)
	}
	return m
}

// buildFullMatrix converts goto+failure into a dense DFA in BFS order:
// next[s][c] = child if present, else next[fail(s)][c].
func (m *Matcher) buildFullMatrix(nodes []*buildNode, bfs []int32) {
	m.full = true
	m.next = make([]int32, m.states*256)
	for c := 0; c < 256; c++ {
		if t, ok := nodes[0].children[byte(c)]; ok {
			m.next[c] = t
		}
	}
	for _, s := range bfs {
		base := int(s) * 256
		fbase := int(nodes[s].fail) * 256
		for c := 0; c < 256; c++ {
			if t, ok := nodes[s].children[byte(c)]; ok {
				m.next[base+c] = t
			} else {
				m.next[base+c] = m.next[fbase+c]
			}
		}
	}
}

// buildSparse stores sorted edge arrays and failure links.
func (m *Matcher) buildSparse(nodes []*buildNode) {
	m.labels = make([][]byte, m.states)
	m.targets = make([][]int32, m.states)
	m.fail = make([]int32, m.states)
	for s, n := range nodes {
		m.fail[s] = n.fail
		if len(n.children) == 0 {
			continue
		}
		ls := make([]byte, 0, len(n.children))
		for b := range n.children {
			ls = append(ls, b)
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		ts := make([]int32, len(ls))
		for i, b := range ls {
			ts[i] = n.children[b]
		}
		m.labels[s] = ls
		m.targets[s] = ts
	}
}

var _ engine.Engine = (*Matcher)(nil)

// NewScratch returns nil: the automaton walk keeps no per-scan state
// beyond locals (engine.Engine).
func (m *Matcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *Matcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// States returns the number of automaton states.
func (m *Matcher) States() int { return m.states }

// FullMatrix reports whether the dense representation is in use.
func (m *Matcher) FullMatrix() bool { return m.full }

// MemoryFootprint estimates resident bytes of the transition structure —
// the quantity that decides which cache level serves the per-byte access.
func (m *Matcher) MemoryFootprint() int {
	if m.full {
		return len(m.next) * 4
	}
	if m.banded {
		return m.bandedFootprint()
	}
	sz := len(m.fail) * 4
	for s := range m.labels {
		sz += len(m.labels[s]) + len(m.targets[s])*4 + 48
	}
	return sz
}

// Scan runs the automaton over input, emitting every match. c may be nil;
// emit may be nil (count only).
func (m *Matcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
		c.DFAAccesses += uint64(len(input))
	}
	switch {
	case m.full:
		m.scanFull(input, c, emit)
	case m.banded:
		m.scanBanded(input, c, emit)
	default:
		m.scanSparse(input, c, emit)
	}
}

func (m *Matcher) scanFull(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	s := int32(0)
	if m.folded {
		for i := 0; i < len(input); i++ {
			s = m.next[int(s)*256+int(patterns.FoldByte(input[i]))]
			if len(m.outputs[s]) > 0 {
				m.emitOutputs(s, input, i, c, emit)
			}
		}
		return
	}
	for i := 0; i < len(input); i++ {
		s = m.next[int(s)*256+int(input[i])]
		if len(m.outputs[s]) > 0 {
			m.emitOutputs(s, input, i, c, emit)
		}
	}
}

func (m *Matcher) scanSparse(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	s := int32(0)
	for i := 0; i < len(input); i++ {
		b := input[i]
		if m.folded {
			b = patterns.FoldByte(b)
		}
		for {
			if t, ok := m.edge(s, b); ok {
				s = t
				break
			}
			if s == 0 {
				break
			}
			s = m.fail[s]
			if c != nil {
				c.DFAAccesses++ // extra accesses along the failure chain
			}
		}
		if len(m.outputs[s]) > 0 {
			m.emitOutputs(s, input, i, c, emit)
		}
	}
}

// edge binary-searches the sparse edge array of state s.
func (m *Matcher) edge(s int32, b byte) (int32, bool) {
	ls := m.labels[s]
	lo, hi := 0, len(ls)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ls[mid] == b:
			return m.targets[s][mid], true
		case ls[mid] < b:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

// emitOutputs reports the patterns ending at state s after consuming
// input[i]. In folded mode each candidate is verified exactly first.
func (m *Matcher) emitOutputs(s int32, input []byte, i int, c *metrics.Counters, emit patterns.EmitFunc) {
	for _, id := range m.outputs[s] {
		p := m.set.Pattern(id)
		pos := i + 1 - len(p.Data)
		if m.folded {
			if c != nil {
				c.VerifyAttempts++
				c.VerifyBytes += uint64(len(p.Data))
			}
			if !p.MatchesAt(input, pos) {
				continue
			}
		}
		if c != nil {
			c.Matches++
		}
		if emit != nil {
			emit(patterns.Match{PatternID: id, Pos: int32(pos)})
		}
	}
}
