package ahocorasick

import (
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// Banded-row representation, after the Snort acsmx2 format the paper
// cites as related work [26] (Norton, "Optimizing Pattern Matching for
// Intrusion Detection"): variants that "decrease the size of the state
// transition table ... but come at an increased search cost".
//
// Each full-DFA row is stored as the minimal contiguous byte range (the
// band) in which it differs from the root row; lookups outside the band
// fall back to the dense root row. Deep states have narrow bands, so the
// automaton shrinks by an order of magnitude, while every transition now
// costs a range check plus a possible second (root-row) access — the
// increased search cost.

// bandedRow is one state's compressed transition row.
type bandedRow struct {
	lo   uint8
	next []int32 // transitions for bytes [lo, lo+len(next))
}

// buildBanded compresses the DFA in BFS order. It requires m.outputs to
// be populated and consumes the build trie.
func (m *Matcher) buildBanded(nodes []*buildNode, bfs []int32) {
	m.banded = true
	// Dense root row: the fallback target of every out-of-band lookup.
	m.rootRow = make([]int32, 256)
	for c := 0; c < 256; c++ {
		if t, ok := nodes[0].children[byte(c)]; ok {
			m.rootRow[c] = t
		}
	}
	m.bands = make([]bandedRow, m.states)

	// Scratch full row, recomputed per state from the failure state's
	// already-banded row. BFS order guarantees fail(s) is finished
	// before s (failure states are strictly shallower).
	row := make([]int32, 256)
	for _, s := range bfs {
		fail := nodes[s].fail
		for c := 0; c < 256; c++ {
			if t, ok := nodes[s].children[byte(c)]; ok {
				row[c] = t
			} else {
				row[c] = m.bandedNext(fail, byte(c))
			}
		}
		lo, hi := -1, -2
		for c := 0; c < 256; c++ {
			if row[c] != m.rootRow[c] {
				if lo < 0 {
					lo = c
				}
				hi = c
			}
		}
		if lo >= 0 {
			band := make([]int32, hi-lo+1)
			copy(band, row[lo:hi+1])
			m.bands[s] = bandedRow{lo: uint8(lo), next: band}
		}
	}
}

// bandedNext is the banded transition function.
func (m *Matcher) bandedNext(s int32, c byte) int32 {
	b := &m.bands[s]
	if i := int(c) - int(b.lo); i >= 0 && i < len(b.next) {
		return b.next[i]
	}
	return m.rootRow[c]
}

// scanBanded walks the banded DFA.
func (m *Matcher) scanBanded(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	s := int32(0)
	if m.folded {
		for i := 0; i < len(input); i++ {
			s = m.bandedNext(s, patterns.FoldByte(input[i]))
			if len(m.outputs[s]) > 0 {
				m.emitOutputs(s, input, i, c, emit)
			}
		}
		return
	}
	for i := 0; i < len(input); i++ {
		s = m.bandedNext(s, input[i])
		if len(m.outputs[s]) > 0 {
			m.emitOutputs(s, input, i, c, emit)
		}
	}
}

// bandedFootprint estimates resident bytes of the banded structure.
func (m *Matcher) bandedFootprint() int {
	sz := 256 * 4 // root row
	for i := range m.bands {
		sz += 32 + len(m.bands[i].next)*4
	}
	return sz
}
