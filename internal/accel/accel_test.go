package accel

import (
	"math/rand"
	"testing"
)

// tableFor builds a table whose viable windows are exactly `wins`.
func tableFor(wins ...uint32) *Table {
	set := map[uint32]bool{}
	for _, w := range wins {
		set[w&0xffff] = true
	}
	return Build(func(idx uint32) bool { return set[idx] })
}

func TestBitmapAndByteDerivation(t *testing.T) {
	// Windows "ab" and "cd" (little endian: first byte low).
	tb := tableFor(uint32('a')|uint32('b')<<8, uint32('c')|uint32('d')<<8)
	if !tb.ViableWindow(uint32('a') | uint32('b')<<8) {
		t.Fatal("window ab should be viable")
	}
	if tb.ViableWindow(uint32('a') | uint32('a')<<8) {
		t.Fatal("window aa should not be viable")
	}
	if !tb.ViableByte('a') || !tb.ViableByte('c') || tb.ViableByte('b') {
		t.Fatal("start-byte bitmap wrong")
	}
	if tb.Mode() != ModeIndexByte {
		t.Fatalf("2 start bytes should select ModeIndexByte, got %v", tb.Mode())
	}
	if string(tb.Rare) != "ac" {
		t.Fatalf("rare list = %q, want \"ac\"", tb.Rare)
	}
	if tb.Density != 2.0/65536 || tb.ByteDensity != 2.0/256 {
		t.Fatalf("density %v / %v wrong", tb.Density, tb.ByteDensity)
	}
}

func TestModeSelection(t *testing.T) {
	// 3 start bytes, low window density -> window bitmap.
	tb := tableFor(0x0001, 0x0002, 0x0003, 0x0101, 0x0202)
	if tb.Mode() != ModeWindow {
		t.Fatalf("got %v, want ModeWindow", tb.Mode())
	}
	if tb.Rare != nil {
		t.Fatal("rare list should be nil outside ModeIndexByte")
	}
	// Everything viable -> off.
	all := Build(func(uint32) bool { return true })
	if all.Mode() != ModeOff || all.Enabled() {
		t.Fatalf("full table should be ModeOff, got %v", all.Mode())
	}
	if all.Density != 1 {
		t.Fatalf("full density = %v", all.Density)
	}
	// Nothing viable -> index-byte with empty rare list (skip all).
	none := Build(func(uint32) bool { return false })
	if none.Mode() != ModeIndexByte || len(none.Rare) != 0 {
		t.Fatalf("empty table: mode %v rare %v", none.Mode(), none.Rare)
	}
}

// nextNaive is the reference for Next: first position whose window is
// viable.
func nextNaive(tb *Table, input []byte, i, end int) int {
	for ; i < end; i++ {
		if tb.mode == ModeIndexByte {
			// Index-byte mode skips on the first byte only (a viable
			// superset), so the reference does too.
			if tb.ViableByte(input[i]) {
				return i
			}
			continue
		}
		if tb.ViableWindow(uint32(input[i]) | uint32(input[i+1])<<8) {
			return i
		}
	}
	return end
}

func TestNextMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tables := []*Table{
		tableFor(uint32('q') | uint32('q')<<8),                           // 1 rare byte
		tableFor(uint32('a')|uint32('b')<<8, uint32('z')<<8|uint32('x')), // 2 rare
		tableFor(0x4141, 0x4242, 0x4343, 0x4144, 0x6162),                 // window mode
	}
	for ti, tb := range tables {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(200)
			input := make([]byte, n)
			for i := range input {
				// Small alphabet around the viable bytes so hits occur.
				input[i] = byte('a' + rng.Intn(28))
				if rng.Intn(10) == 0 {
					input[i] = byte(rng.Intn(256))
				}
			}
			end := n - 1
			if end < 0 {
				end = 0
			}
			start := 0
			if end > 0 {
				start = rng.Intn(end + 1)
			}
			got := tb.Next(input, start, end)
			want := nextNaive(tb, input, start, end)
			if got != want {
				t.Fatalf("table %d: Next(%q, %d, %d) = %d, want %d", ti, input, start, end, got, want)
			}
		}
	}
}

func TestNextEmptyAndEdges(t *testing.T) {
	tb := tableFor(uint32('q') | uint32('q')<<8)
	if got := tb.Next([]byte("qq"), 0, 0); got != 0 {
		t.Fatalf("empty range: %d", got)
	}
	if got := tb.Next([]byte("aq"), 0, 1); got != 1 {
		t.Fatalf("no viable start: %d", got)
	}
	if got := tb.Next([]byte("qqa"), 0, 2); got != 0 {
		t.Fatalf("viable at 0: %d", got)
	}
	none := Build(func(uint32) bool { return false })
	if got := none.Next([]byte("abcdef"), 0, 5); got != 5 {
		t.Fatalf("none-viable table should skip to end, got %d", got)
	}
}

func TestKeepAccel(t *testing.T) {
	// Window governor: safety valve at 3/4 viable.
	if !KeepAccel(0, SpanBytes) || !KeepAccel(SpanBytes*3/4, SpanBytes) {
		t.Fatal("sparse spans should keep window acceleration")
	}
	if KeepAccel(SpanBytes*3/4+1, SpanBytes) || KeepAccel(SpanBytes, SpanBytes) {
		t.Fatal("extreme-density spans should disable window acceleration")
	}
	// Index-byte governor: disables at 1/3 viable.
	if !KeepAccelIndex(0, SpanBytes) || !KeepAccelIndex(SpanBytes/3, SpanBytes) {
		t.Fatal("sparse spans should keep index-byte acceleration")
	}
	if KeepAccelIndex(SpanBytes/3+1, SpanBytes) || KeepAccelIndex(SpanBytes, SpanBytes) {
		t.Fatal("dense spans should disable index-byte acceleration")
	}
}

func TestInfo(t *testing.T) {
	tb := tableFor(uint32('q') | uint32('q')<<8)
	inf := tb.Info()
	if inf.Mode != "index-byte" || !inf.Enabled || inf.StartBytes != 1 || string(inf.RareBytes) != "q" {
		t.Fatalf("info = %+v", inf)
	}
	all := Build(func(uint32) bool { return true })
	if inf := all.Info(); inf.Mode != "off" || inf.Enabled {
		t.Fatalf("info = %+v", inf)
	}
}
