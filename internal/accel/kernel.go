package accel

import (
	"math/bits"

	"vpatch/internal/vec"
)

// Kernel-dispatched renditions of the branchless window-bitmap skip:
// the geometry (block size, read lookahead) and the extract loop vary
// per kernel, the contract does not — classify every position in
// [i, limit+block) against the union bitmap and compact the viable
// positions into q in position order. The fused loops in internal/core
// size their bursts from Geometry exactly as they do for the SWAR pack
// loop, so queue and governor bookkeeping are kernel-independent.

// MaxPairDensity is the auto-selection break-even of the SSSE3 kernel:
// its byte-pair classifier over-approximates window viability, and
// every false survivor costs an exact-bitmap confirmation. Above this
// expected pass rate on uniform traffic, SWAR's exact 5-per-load walk
// wins and auto-selection keeps it.
const MaxPairDensity = 0.25

// Geometry returns kernel k's extract-loop geometry: block is the
// positions classified per step (the queue can grow by block per
// step), lookahead the bytes a step may read past its base position.
// SWAR geometry (5-position packs over one 8-byte load) is the
// default for any unknown kernel.
func Geometry(k vec.KernelID) (block, lookahead int) {
	switch k {
	case vec.KernelAVX2:
		return 64, vec.ViableLookahead
	case vec.KernelSSSE3:
		return 32, vec.PairLookahead
	}
	return 5, 8
}

// SelectKernel resolves the kernel a compiled engine should run its
// extract loop with: a forced kernel when it is available on this host
// (callers validate availability at the API boundary; an unavailable
// force degrades to SWAR rather than crash), otherwise the best
// profitable kernel — AVX2 whenever the host has it (its classifier is
// exact, so density cannot hurt it), SSSE3 only while the pair
// classifier stays selective, SWAR everywhere else.
func (t *Table) SelectKernel(force vec.KernelID) vec.KernelID {
	if force != vec.KernelAuto {
		if vec.Available(force) {
			return force
		}
		return vec.KernelSWAR
	}
	switch {
	case vec.Available(vec.KernelAVX2):
		return vec.KernelAVX2
	case vec.Available(vec.KernelSSSE3) && t.PairDensity <= MaxPairDensity:
		return vec.KernelSSSE3
	}
	return vec.KernelSWAR
}

// ExtractKernel runs kernel k's extract loop. i advances in blocks
// while i <= limit; limit is the last allowed block start and the
// caller guarantees limit+lookahead <= len(input) and
// block*steps <= QueueLen-block-w, mirroring Extract's contract (which
// handles the SWAR case).
func (t *Table) ExtractKernel(k vec.KernelID, input []byte, i, limit int, q *[QueueLen]int32, w int) (int, int) {
	switch k {
	case vec.KernelAVX2:
		return t.extractAVX2(input, i, limit, q, w)
	case vec.KernelSSSE3:
		return t.extractSSSE3(input, i, limit, q, w)
	}
	return t.Extract(input, i, limit, q, w)
}

// extractAVX2 classifies 64 positions per assembly call against the
// exact union bitmap and compacts the survivor mask into the queue.
// Identical survivors to Extract by construction (same bitmap, same
// predicate), so candidate order and content are byte-exact.
func (t *Table) extractAVX2(input []byte, i, limit int, q *[QueueLen]int32, w int) (int, int) {
	for ; i <= limit; i += 64 {
		m := vec.ViableMask64(&input[i], &t.Union[0])
		for ; m != 0; m &= m - 1 {
			q[w&QueueMask] = int32(i + bits.TrailingZeros64(m))
			w++
		}
	}
	return i, w
}

// extractSSSE3 classifies 32 positions per assembly call with the
// byte-pair tables, then confirms each survivor against the exact
// union bitmap before queueing — the queue (and therefore the probe
// chain, candidates, governor accounting) stays byte-exact with the
// other kernels; only the classification cost model differs.
func (t *Table) extractSSSE3(input []byte, i, limit int, q *[QueueLen]int32, w int) (int, int) {
	u := &t.Union
	for ; i <= limit; i += 32 {
		m := vec.PairMask32(&input[i], &t.Pair)
		for ; m != 0; m &= m - 1 {
			p := i + bits.TrailingZeros32(m)
			idx := uint32(input[p]) | uint32(input[p+1])<<8
			if u[(idx>>6)&1023]&(1<<(idx&63)) != 0 {
				q[w&QueueMask] = int32(p)
				w++
			}
		}
	}
	return i, w
}
