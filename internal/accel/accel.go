// Package accel derives skip-loop acceleration tables from the
// cache-resident filters of the DFC/S-PATCH/V-PATCH family.
//
// The paper's filtering loops pay one table probe and two branches for
// every input byte even when the traffic is overwhelmingly innocent.
// Production engines in the same lineage (Hyperscan-class acceleration
// over DFC-style filters) first *skip* runs of impossible bytes and only
// then fall into the probe chain. This package owns the compile-time
// side of that idea:
//
//   - a 256-entry "can this byte start a candidate window?" bitmap with
//     its density and rare-byte list — when at most two byte values can
//     start a candidate, the runtime's assembly-backed bytes.IndexByte
//     is the skip primitive (ModeIndexByte);
//   - an 8 KB *window* viability bitmap (one bit per 2-byte window,
//     the union of the filter-1/filter-2 start windows) — small enough
//     to stay L1-resident next to the input, unlike the 64 KB merged
//     filter the probe chain reads, so a tight branchless bitmap loop
//     can classify positions at several times probe speed (ModeWindow);
//   - the density accounting that decides, at compile time, whether
//     acceleration can pay at all (ModeOff above the break-even
//     density), and the span constants of the runtime governor that
//     turns it off mid-scan when the traffic itself is dense.
//
// Tables are cheap to build (one pass over the 2^16 window indexes) and
// are *derived* state: compiled-database loads rebuild them from the
// decoded filters instead of serializing them, so acceleration needs no
// database format bump.
//
// The hot skip loops themselves live next to their probe chains in
// internal/core and internal/dfc (they must inline into the fused
// kernels); this package provides the tables, the mode decision, and the
// Next primitive used by the instrumented scalar paths.
package accel

import (
	"bytes"
	"encoding/binary"

	"vpatch/internal/vec"
)

// Mode selects the skip primitive a scan loop should use.
type Mode uint8

const (
	// ModeOff: the viable-window density is above break-even;
	// acceleration would cost more than the probes it saves. Loops run
	// their plain probe chain.
	ModeOff Mode = iota
	// ModeIndexByte: at most MaxRareBytes byte values can start a
	// candidate window; skip with bytes.IndexByte over the rare list.
	ModeIndexByte
	// ModeWindow: skip with the branchless window-bitmap loop.
	ModeWindow
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeIndexByte:
		return "index-byte"
	case ModeWindow:
		return "window-bitmap"
	}
	return "mode(?)"
}

// MaxRareBytes is the largest start-byte set bytes.IndexByte skipping
// handles; beyond it the window bitmap takes over.
const MaxRareBytes = 2

// MaxWindowDensity is the compile-time break-even: when more than this
// fraction of 2-byte windows is viable, even the L1-resident bitmap
// loop cannot beat the probe chain it guards (the experiments package's
// AccelSweep locates the crossover empirically; see the README's
// performance guide) and the table compiles to ModeOff.
const MaxWindowDensity = 0.35

// Runtime governor constants, shared by every accelerated loop: scans
// try acceleration for SpanBytes at a time; when a span's viable
// fraction crosses the mode's break-even, the next PlainBytes run the
// plain kernel before acceleration is retried. This bounds pathological
// overhead to the accelerated span fraction (~2 KB in 32 KB ≈ a few
// percent) while re-engaging quickly when a flow turns clean.
const (
	SpanBytes  = 2 << 10
	PlainBytes = 30 << 10
)

// KeepAccel reports whether a window-bitmap span with `viable` viable
// positions out of `span` scanned ones was worth accelerating. The
// branchless extract-and-drain degrades gracefully — measured at or
// above the plain kernel even on 100%-match traffic — so the window
// governor only trips as a safety valve on extreme density (> 3/4
// viable).
func KeepAccel(viable, span int) bool { return viable*4 <= span*3 }

// KeepAccelIndex is the index-byte governor: bytes.IndexByte skipping
// collapses to a function call per position once hits are frequent, so
// it disables at 1/3 viable already.
func KeepAccelIndex(viable, span int) bool { return viable*3 <= span }

// Table is the compiled acceleration state for one filter stage. All
// fields are read-only after Build; one Table serves any number of
// concurrent scans.
type Table struct {
	// Union is the window viability bitmap: bit idx is set when the
	// little-endian 2-byte window idx may start a candidate (the union
	// of every filter consulted at the loop head). 8 KB; the hot loops
	// index it as Union[w>>6]>>(w&63).
	Union [1 << 10]uint64

	// StartBytes is the 256-entry start-byte bitmap: bit b is set when
	// some window starting with byte b is viable. SecondBytes is its
	// counterpart for the windows' second byte.
	StartBytes  [4]uint64
	SecondBytes [4]uint64

	// Pair is the Truffle descriptor of the (start-byte, second-byte)
	// projection of the viable-window set, consumed by the SSSE3 kernel
	// (vec.PairMask32). The pair classifier over-approximates window
	// viability (it is the product of the two byte projections), so its
	// survivors are confirmed against Union before queueing.
	Pair vec.PairTabs

	// PairDensity is the expected pass rate of the pair classifier on
	// uniform traffic (start-byte density x second-byte density). When
	// it is much higher than Density the SSSE3 kernel confirms too many
	// false survivors to pay, and auto-selection keeps SWAR.
	PairDensity float64

	// Rare lists the viable start bytes when there are at most
	// MaxRareBytes of them (ModeIndexByte); nil otherwise.
	Rare []byte

	// Density is the viable fraction of the 2^16 window space — the
	// expected viable-position rate on uniform traffic. ByteDensity is
	// the same over the 256 start-byte values.
	Density     float64
	ByteDensity float64

	nStartBytes int
	mode        Mode
}

// Build derives the acceleration table from a window viability
// predicate: viable(idx) reports whether 2-byte window idx (little
// endian: first byte low) may start a candidate. The predicate is the
// union of whatever filters the caller's probe chain consults first.
func Build(viable func(idx uint32) bool) *Table {
	t := &Table{}
	set := 0
	for idx := uint32(0); idx < 1<<16; idx++ {
		if viable(idx) {
			set++
			t.Union[(idx>>6)&1023] |= 1 << (idx & 63)
			t.StartBytes[(idx&0xff)>>6] |= 1 << (idx & 0x3f)
			t.SecondBytes[(idx>>8)>>6] |= 1 << ((idx >> 8) & 0x3f)
		}
	}
	nBytes, nSecond := 0, 0
	for b := 0; b < 256; b++ {
		if t.ViableByte(byte(b)) {
			nBytes++
			t.Pair.SetMember(0, byte(b))
		}
		if t.SecondBytes[b>>6]&(1<<(b&63)) != 0 {
			nSecond++
			t.Pair.SetMember(32, byte(b))
		}
	}
	t.Density = float64(set) / (1 << 16)
	t.ByteDensity = float64(nBytes) / 256
	t.PairDensity = t.ByteDensity * float64(nSecond) / 256
	t.nStartBytes = nBytes
	switch {
	case nBytes <= MaxRareBytes:
		t.mode = ModeIndexByte
		for b := 0; b < 256; b++ {
			if t.ViableByte(byte(b)) {
				t.Rare = append(t.Rare, byte(b))
			}
		}
	case t.Density <= MaxWindowDensity:
		t.mode = ModeWindow
	default:
		t.mode = ModeOff
	}
	return t
}

// Mode returns the selected skip primitive.
func (t *Table) Mode() Mode { return t.mode }

// Enabled reports whether acceleration is worth engaging at all.
func (t *Table) Enabled() bool { return t.mode != ModeOff }

// ViableWindow reports whether 2-byte window idx may start a candidate.
func (t *Table) ViableWindow(idx uint32) bool {
	idx &= 0xffff
	return t.Union[(idx>>6)&1023]&(1<<(idx&63)) != 0
}

// ViableByte reports whether some viable window starts with byte b.
func (t *Table) ViableByte(b byte) bool {
	return t.StartBytes[b>>6]&(1<<(b&63)) != 0
}

// ViableAt reports whether position i can reach the probe chain under
// this table's skip predicate: start-byte membership in index-byte
// mode, window viability otherwise (the caller must guarantee
// i+1 < len(input) outside index-byte mode). A false result means the
// position cannot produce a candidate.
func (t *Table) ViableAt(input []byte, i int) bool {
	if t.mode == ModeIndexByte {
		return t.ViableByte(input[i])
	}
	idx := uint32(input[i]) | uint32(input[i+1])<<8
	return t.Union[(idx>>6)&1023]&(1<<(idx&63)) != 0
}

// Next returns the smallest position p in [i, end) whose 2-byte window
// input[p]|input[p+1]<<8 is viable, or end if none is. It is the skip
// primitive of the instrumented scalar loops (the fused kernels inline
// their own copies of the same walk). The caller must guarantee
// end+1 <= len(input) so every tested position has a full window.
func (t *Table) Next(input []byte, i, end int) int {
	if t.mode == ModeIndexByte {
		return t.nextIndexByte(input, i, end)
	}
	for ; i < end; i++ {
		idx := uint32(input[i]) | uint32(input[i+1])<<8
		if t.Union[(idx>>6)&1023]&(1<<(idx&63)) != 0 {
			return i
		}
	}
	return end
}

// nextIndexByte finds the next position whose *first* byte is in the
// rare list (a superset of window viability, so skipping to it is
// exact) using the runtime's vectorized bytes.IndexByte. Each later
// rare byte only searches up to the best hit so far, so a dense first
// byte cannot make the absent second one rescan the whole segment.
func (t *Table) nextIndexByte(input []byte, i, end int) int {
	if i >= end {
		return end
	}
	seg := input[i:end]
	best := -1
	for _, b := range t.Rare {
		if j := bytes.IndexByte(seg, b); j >= 0 {
			best = j
			seg = seg[:j]
		}
	}
	if best < 0 {
		return end
	}
	return i + best
}

// QueueLen sizes the viable-position queue the window-bitmap skip
// compacts into (2 KB: L1-resident next to the 8 KB union bitmap).
// QueueMask makes queue stores provably in bounds for the compiler.
const (
	QueueLen  = 512
	QueueMask = QueueLen - 1
)

// Extract is the branchless window-bitmap skip loop: it scans 5-position
// packs (one 8-byte load each) starting at i for as long as i <= limit,
// classifying every position against the union bitmap and compacting the
// viable ones into q with prefix-sum stores — the miss path is pure
// straight-line code with no data-dependent branch at all. Returns the
// new position and queue length. The caller sizes each burst so neither
// the queue (room for 5 stores per pack above w) nor its bookkeeping can
// overflow: limit is the last allowed pack start and must satisfy
// limit+8 <= len(input) and 5*packs <= QueueLen-5-w.
func (t *Table) Extract(input []byte, i, limit int, q *[QueueLen]int32, w int) (int, int) {
	u := &t.Union
	for ; i <= limit; i += 5 {
		v := binary.LittleEndian.Uint64(input[i:])
		w0 := uint16(v)
		w1 := uint16(v >> 8)
		w2 := uint16(v >> 16)
		w3 := uint16(v >> 24)
		w4 := uint16(v >> 32)
		c0 := int((u[(w0>>6)&1023] >> (w0 & 63)) & 1)
		c1 := int((u[(w1>>6)&1023] >> (w1 & 63)) & 1)
		c2 := int((u[(w2>>6)&1023] >> (w2 & 63)) & 1)
		c3 := int((u[(w3>>6)&1023] >> (w3 & 63)) & 1)
		c4 := int((u[(w4>>6)&1023] >> (w4 & 63)) & 1)
		q[w&QueueMask] = int32(i)
		w += c0
		q[w&QueueMask] = int32(i + 1)
		w += c1
		q[w&QueueMask] = int32(i + 2)
		w += c2
		q[w&QueueMask] = int32(i + 3)
		w += c3
		q[w&QueueMask] = int32(i + 4)
		w += c4
	}
	return i, w
}

// Info is the reporting view of a table, surfaced through the public
// Engine.Info.
type Info struct {
	// Mode is the selected skip primitive ("off", "index-byte",
	// "window-bitmap").
	Mode string
	// Enabled mirrors Table.Enabled.
	Enabled bool
	// WindowDensity is the viable fraction of the 2^16 window space;
	// ByteDensity the viable fraction of the 256 start-byte values.
	WindowDensity float64
	ByteDensity   float64
	// StartBytes counts the viable start-byte values; RareBytes lists
	// them when ModeIndexByte selected (nil otherwise).
	StartBytes int
	RareBytes  []byte
}

// Info summarizes the table.
func (t *Table) Info() Info {
	return Info{
		Mode:          t.mode.String(),
		Enabled:       t.Enabled(),
		WindowDensity: t.Density,
		ByteDensity:   t.ByteDensity,
		StartBytes:    t.nStartBytes,
		RareBytes:     append([]byte(nil), t.Rare...),
	}
}
