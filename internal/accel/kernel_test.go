package accel

import (
	"math/rand"
	"testing"

	"vpatch/internal/vec"
)

// Every kernel's extract loop must compact the *identical* queue as
// the SWAR reference: same positions, same order. The test walks each
// kernel over shared random tables and buffers with its own geometry
// (so block starts differ) but compares against a per-position oracle,
// not against SWAR's block layout.
func TestExtractKernelMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		// A synthetic viable-window predicate with tunable density.
		den := []int{1, 2, 5}[trial%3] // ~50%, 25%, ~3% pass rates
		tab := Build(func(idx uint32) bool {
			h := idx * 2654435761
			return h>>(32-5*uint(den)) == 0 || idx&0xff == 0x61
		})
		buf := make([]byte, 3000+rng.Intn(2000))
		rng.Read(buf)
		for _, k := range vec.Kernels() {
			block, look := Geometry(k)
			start := rng.Intn(5)
			limit := len(buf) - look // last allowed block start
			var q [QueueLen]int32
			var got []int32
			i, w := start, 0
			for i <= limit {
				room := (QueueLen - block - w) / block
				if room == 0 {
					got = append(got, q[:w]...)
					w = 0
					continue
				}
				burstLimit := i + (room-1)*block
				if limit < burstLimit {
					burstLimit = limit
				}
				i, w = tab.ExtractKernel(k, buf, i, burstLimit, &q, w)
			}
			got = append(got, q[:w]...)

			var want []int32
			for p := start; p < i; p++ {
				idx := uint32(buf[p]) | uint32(buf[p+1])<<8
				if tab.ViableWindow(idx) {
					want = append(want, int32(p))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d kernel %v: %d queued positions, oracle %d", trial, k, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("trial %d kernel %v: queue[%d] = %d, oracle %d", trial, k, j, got[j], want[j])
				}
			}
		}
	}
}

// TestSelectKernel pins the dispatch policy on this host.
func TestSelectKernel(t *testing.T) {
	sparse := Build(func(idx uint32) bool { return idx == 0x6162 })
	dense := Build(func(idx uint32) bool { return idx&3 != 0 })
	for _, tab := range []*Table{sparse, dense} {
		// A forced available kernel always wins; an unavailable one
		// degrades to SWAR instead of crashing.
		for _, k := range vec.Kernels() {
			if got := tab.SelectKernel(k); got != k {
				t.Fatalf("SelectKernel(force %v) = %v", k, got)
			}
		}
		if !vec.Available(vec.KernelAVX2) {
			if got := tab.SelectKernel(vec.KernelAVX2); got != vec.KernelSWAR {
				t.Fatalf("unavailable force resolved to %v, want swar", got)
			}
		}
		auto := tab.SelectKernel(vec.KernelAuto)
		if !vec.Available(auto) || auto == vec.KernelAuto {
			t.Fatalf("auto resolved to %v", auto)
		}
	}
	if vec.Available(vec.KernelAVX2) {
		if got := sparse.SelectKernel(vec.KernelAuto); got != vec.KernelAVX2 {
			t.Fatalf("auto on AVX2 host = %v, want avx2", got)
		}
	}
	t.Logf("sparse pair density %.4f -> %v; dense %.4f -> %v",
		sparse.PairDensity, sparse.SelectKernel(vec.KernelAuto),
		dense.PairDensity, dense.SelectKernel(vec.KernelAuto))
}
