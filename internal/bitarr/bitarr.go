// Package bitarr provides the cache-resident bit-array filters used by the
// DFC, S-PATCH and V-PATCH pattern-matching algorithms: plain bit arrays,
// 2-byte-indexed direct filters, the merged (interleaved) filter layout used
// by V-PATCH's filter-merging optimization, and the multiplicative 4-byte
// hash filter (filter 3 in the paper).
//
// All filters are byte-granular internally: a lookup fetches one byte (or,
// for the merged filter, one 16-bit word) and then selects one bit. This is
// the layout the paper requires so that a SIMD gather can fetch filter state
// for W lanes at once.
package bitarr

import (
	"fmt"
	"math/bits"
)

// BitArray is a fixed-capacity bit array backed by a byte slice. The number
// of bits is always a power of two so that indexes can be reduced with a
// mask rather than a modulo.
type BitArray struct {
	bytes   []byte
	idxMask uint32 // number of bits - 1
}

// New returns a BitArray with 2^log2bits bits, all clear.
// log2bits must be in [3, 32].
func New(log2bits uint) *BitArray {
	if log2bits < 3 || log2bits > 32 {
		panic(fmt.Sprintf("bitarr: log2bits %d out of range [3,32]", log2bits))
	}
	return &BitArray{
		bytes:   make([]byte, 1<<(log2bits-3)),
		idxMask: uint32(1<<log2bits - 1),
	}
}

// Bits returns the capacity in bits.
func (b *BitArray) Bits() int { return len(b.bytes) * 8 }

// SizeBytes returns the memory footprint of the bit storage in bytes.
func (b *BitArray) SizeBytes() int { return len(b.bytes) }

// Mask returns the index mask (bits-1). Indexes passed to Set/Test are
// reduced with this mask.
func (b *BitArray) Mask() uint32 { return b.idxMask }

// Set sets the bit at idx (reduced modulo the capacity).
func (b *BitArray) Set(idx uint32) {
	idx &= b.idxMask
	b.bytes[idx>>3] |= 1 << (idx & 7)
}

// Clear clears the bit at idx (reduced modulo the capacity).
func (b *BitArray) Clear(idx uint32) {
	idx &= b.idxMask
	b.bytes[idx>>3] &^= 1 << (idx & 7)
}

// Test reports whether the bit at idx is set (idx reduced modulo capacity).
func (b *BitArray) Test(idx uint32) bool {
	idx &= b.idxMask
	return b.bytes[idx>>3]&(1<<(idx&7)) != 0
}

// Byte returns the storage byte that holds bits [8*byteIdx, 8*byteIdx+8).
// This is the unit a (emulated) gather instruction fetches.
func (b *BitArray) Byte(byteIdx uint32) byte {
	return b.bytes[byteIdx&(b.idxMask>>3)]
}

// Bytes exposes the raw backing storage (read-only by convention). It is
// used by the vector layer to gather directly from the filter memory.
func (b *BitArray) Bytes() []byte { return b.bytes }

// Reset clears every bit.
func (b *BitArray) Reset() {
	for i := range b.bytes {
		b.bytes[i] = 0
	}
}

// PopCount returns the number of set bits.
func (b *BitArray) PopCount() int {
	n := 0
	for _, v := range b.bytes {
		n += bits.OnesCount8(v)
	}
	return n
}

// FillRatio returns the fraction of set bits in [0,1]. It determines the
// filtering rate: a fuller filter passes more of the input to verification.
func (b *BitArray) FillRatio() float64 {
	return float64(b.PopCount()) / float64(b.Bits())
}

// Clone returns a deep copy.
func (b *BitArray) Clone() *BitArray {
	c := &BitArray{bytes: make([]byte, len(b.bytes)), idxMask: b.idxMask}
	copy(c.bytes, b.bytes)
	return c
}

// Index2 computes the canonical 2-byte window index used by the direct
// filters: little-endian combination of two consecutive input bytes.
func Index2(b0, b1 byte) uint32 { return uint32(b0) | uint32(b1)<<8 }

// Load4 computes the little-endian 32-bit value of four consecutive input
// bytes, the quantity hashed by filter 3.
func Load4(p []byte) uint32 {
	_ = p[3]
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// DirectFilter16 is the paper's 8 KB direct filter: one bit for each of the
// 2^16 possible 2-byte windows.
type DirectFilter16 struct {
	BitArray
}

// NewDirectFilter16 returns an empty 2^16-bit (8 KB) direct filter.
func NewDirectFilter16() *DirectFilter16 {
	return &DirectFilter16{BitArray: *New(16)}
}

// AddPrefix2 marks the 2-byte window (b0,b1) as a possible pattern start.
func (f *DirectFilter16) AddPrefix2(b0, b1 byte) { f.Set(Index2(b0, b1)) }

// AddAllSecond marks every window whose first byte is b0. This is how
// 1-byte patterns are folded into a 2-byte filter (DFC §3.1): a 1-byte
// pattern "a" can start at any window "a?" regardless of the second byte.
func (f *DirectFilter16) AddAllSecond(b0 byte) {
	for b1 := 0; b1 < 256; b1++ {
		f.Set(Index2(b0, byte(b1)))
	}
}

// Test2 reports whether the window (b0,b1) may start a pattern.
func (f *DirectFilter16) Test2(b0, b1 byte) bool { return f.Test(Index2(b0, b1)) }

// MulHashConst is the Knuth multiplicative-hash constant (2654435761 =
// floor(2^32/phi)) used by filter 3 to reduce a 4-byte window to an index.
const MulHashConst = 2654435761

// HashFilter is filter 3 of S-PATCH: a bit array indexed by a multiplicative
// hash of a 4-byte window. Its size trades filtering rate (collisions)
// against cache footprint; the paper keeps it small enough for L1/L2.
type HashFilter struct {
	BitArray
	shift uint32 // 32 - log2(bits)
}

// NewHashFilter returns an empty hash filter with 2^log2bits bits.
// The paper-discussed sweet spot is 2^17 bits (16 KB); see the
// Filter3Size ablation bench.
func NewHashFilter(log2bits uint) *HashFilter {
	if log2bits < 3 || log2bits > 31 {
		panic(fmt.Sprintf("bitarr: hash filter log2bits %d out of range [3,31]", log2bits))
	}
	return &HashFilter{BitArray: *New(log2bits), shift: uint32(32 - log2bits)}
}

// HashIndex reduces a 4-byte little-endian window value to a filter index.
func (f *HashFilter) HashIndex(v uint32) uint32 { return (v * MulHashConst) >> f.shift }

// Shift returns the hash downshift (32 - log2(bits)); the vector layer
// needs it to compute indexes lane-wise.
func (f *HashFilter) Shift() uint32 { return f.shift }

// Add4 marks the 4-byte window value v.
func (f *HashFilter) Add4(v uint32) { f.Set(f.HashIndex(v)) }

// Test4 reports whether the 4-byte window value v may start a long pattern.
// False positives are possible (hash collisions); false negatives are not.
func (f *HashFilter) Test4(v uint32) bool { return f.Test(f.HashIndex(v)) }

// MergedFilter implements the paper's filter-merging optimization (Fig. 3):
// the storage bytes of filter 1 and filter 2 are interleaved so that a
// single (emulated) 16-bit gather fetches the state of both filters for one
// window index. Word k holds filter-1 byte k in its low half and filter-2
// byte k in its high half.
type MergedFilter struct {
	words   []uint16
	idxMask uint32 // bit-index mask (same domain as the source filters)
}

// NewMergedFilter interleaves two equal-sized byte-granular filters.
func NewMergedFilter(f1, f2 *BitArray) *MergedFilter {
	if f1.Bits() != f2.Bits() {
		panic("bitarr: merged filter requires equal-size filters")
	}
	m := &MergedFilter{
		words:   make([]uint16, len(f1.bytes)),
		idxMask: f1.idxMask,
	}
	for i := range f1.bytes {
		m.words[i] = uint16(f1.bytes[i]) | uint16(f2.bytes[i])<<8
	}
	return m
}

// Word returns the interleaved 16-bit word covering bit index idx.
func (m *MergedFilter) Word(idx uint32) uint16 {
	idx &= m.idxMask
	return m.words[idx>>3]
}

// Words exposes the raw interleaved storage for the vector gather.
func (m *MergedFilter) Words() []uint16 { return m.words }

// Mask returns the bit-index mask.
func (m *MergedFilter) Mask() uint32 { return m.idxMask }

// Test returns (filter1 bit, filter2 bit) for window index idx using a
// single word fetch — the scalar rendition of the merged gather.
func (m *MergedFilter) Test(idx uint32) (f1, f2 bool) {
	idx &= m.idxMask
	w := m.words[idx>>3]
	bit := idx & 7
	return w&(1<<bit) != 0, w&(1<<(bit+8)) != 0
}

// SizeBytes returns the memory footprint of the merged storage.
func (m *MergedFilter) SizeBytes() int { return 2 * len(m.words) }
