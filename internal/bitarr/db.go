package bitarr

import (
	"math/bits"

	"vpatch/internal/dbfmt"
)

// Wire encoding of the filter structures. A bit array serializes as its
// log2 size plus its raw storage bytes; decoding validates the size
// range New enforces and that exactly the right number of storage bytes
// follows, then adopts the bytes without copying (decoder buffers are
// read-only by contract, matching the filters' immutability). The
// merged filter is never serialized — it is a pure function of filters
// 1 and 2 and is rebuilt in microseconds at load.

// Encode appends the bit array (log2 size + storage).
func (b *BitArray) Encode(e *dbfmt.Encoder) {
	e.U8(uint8(bits.Len32(b.idxMask))) // log2(bits): mask is 2^n-1
	e.Raw(b.bytes)
}

// DecodeBitArray restores a bit array encoded by Encode.
func DecodeBitArray(d *dbfmt.Decoder) *BitArray {
	log2 := uint(d.U8())
	if d.Err() != nil {
		return nil
	}
	if log2 < 3 || log2 > 31 {
		d.Fail("bit array log2 size %d out of range [3,31]", log2)
		return nil
	}
	storage := d.Raw(1 << (log2 - 3))
	if storage == nil {
		return nil
	}
	return &BitArray{bytes: storage, idxMask: uint32(1<<log2 - 1)}
}

// DecodeDirectFilter16 restores a direct filter, additionally requiring
// the fixed 2^16-bit size every direct filter has.
func DecodeDirectFilter16(d *dbfmt.Decoder) *DirectFilter16 {
	b := DecodeBitArray(d)
	if b == nil {
		return nil
	}
	if b.Bits() != 1<<16 {
		d.Fail("direct filter has %d bits, want %d", b.Bits(), 1<<16)
		return nil
	}
	return &DirectFilter16{BitArray: *b}
}

// DecodeHashFilter restores a hash filter; the hash downshift is
// recomputed from the size rather than trusted from the file.
func DecodeHashFilter(d *dbfmt.Decoder) *HashFilter {
	b := DecodeBitArray(d)
	if b == nil {
		return nil
	}
	log2 := uint(bits.Len32(b.idxMask))
	return &HashFilter{BitArray: *b, shift: uint32(32 - log2)}
}
