package bitarr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSizes(t *testing.T) {
	cases := []struct {
		log2  uint
		bits  int
		bytes int
	}{
		{3, 8, 1},
		{10, 1024, 128},
		{16, 65536, 8192}, // the paper's 8 KB direct filter
		{17, 131072, 16384},
	}
	for _, c := range cases {
		b := New(c.log2)
		if b.Bits() != c.bits {
			t.Errorf("New(%d).Bits() = %d, want %d", c.log2, b.Bits(), c.bits)
		}
		if b.SizeBytes() != c.bytes {
			t.Errorf("New(%d).SizeBytes() = %d, want %d", c.log2, b.SizeBytes(), c.bytes)
		}
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, log2 := range []uint{0, 2, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", log2)
				}
			}()
			New(log2)
		}()
	}
}

func TestSetTestClear(t *testing.T) {
	b := New(10)
	if b.Test(5) {
		t.Fatal("fresh array has bit 5 set")
	}
	b.Set(5)
	if !b.Test(5) {
		t.Fatal("Set(5) not visible")
	}
	if b.Test(4) || b.Test(6) {
		t.Fatal("Set(5) disturbed neighbours")
	}
	b.Clear(5)
	if b.Test(5) {
		t.Fatal("Clear(5) not visible")
	}
}

func TestIndexWrapsWithMask(t *testing.T) {
	b := New(10) // 1024 bits
	b.Set(1024 + 7)
	if !b.Test(7) {
		t.Fatal("index 1031 should wrap to 7")
	}
	if !b.Test(1024 + 7) {
		t.Fatal("Test must reduce the index the same way Set does")
	}
}

func TestPopCountAndFillRatio(t *testing.T) {
	b := New(8) // 256 bits
	if b.PopCount() != 0 {
		t.Fatal("fresh array has nonzero popcount")
	}
	for i := uint32(0); i < 64; i++ {
		b.Set(i * 4)
	}
	if got := b.PopCount(); got != 64 {
		t.Fatalf("PopCount = %d, want 64", got)
	}
	if got := b.FillRatio(); got != 0.25 {
		t.Fatalf("FillRatio = %v, want 0.25", got)
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(8)
	b.Set(9)
	b.Set(9)
	if b.PopCount() != 1 {
		t.Fatalf("double Set changed popcount: %d", b.PopCount())
	}
}

func TestReset(t *testing.T) {
	b := New(8)
	for i := uint32(0); i < 256; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.PopCount() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestClone(t *testing.T) {
	b := New(8)
	b.Set(17)
	c := b.Clone()
	if !c.Test(17) {
		t.Fatal("clone missing bit 17")
	}
	c.Set(18)
	if b.Test(18) {
		t.Fatal("clone shares storage with original")
	}
}

func TestByteAccess(t *testing.T) {
	b := New(8)
	b.Set(8)  // byte 1, bit 0
	b.Set(15) // byte 1, bit 7
	if got := b.Byte(1); got != 0x81 {
		t.Fatalf("Byte(1) = %#x, want 0x81", got)
	}
	if got := b.Byte(0); got != 0 {
		t.Fatalf("Byte(0) = %#x, want 0", got)
	}
}

func TestIndex2LittleEndian(t *testing.T) {
	if got := Index2(0x41, 0x42); got != 0x4241 {
		t.Fatalf("Index2(0x41,0x42) = %#x, want 0x4241", got)
	}
	if got := Index2(0xFF, 0xFF); got != 0xFFFF {
		t.Fatalf("Index2(0xFF,0xFF) = %#x, want 0xFFFF", got)
	}
}

func TestLoad4(t *testing.T) {
	if got := Load4([]byte{1, 2, 3, 4}); got != 0x04030201 {
		t.Fatalf("Load4 = %#x, want 0x04030201", got)
	}
}

func TestDirectFilter16(t *testing.T) {
	f := NewDirectFilter16()
	if f.SizeBytes() != 8192 {
		t.Fatalf("direct filter is %d bytes, want 8192 (8 KB per the paper)", f.SizeBytes())
	}
	f.AddPrefix2('G', 'E')
	if !f.Test2('G', 'E') {
		t.Fatal("GE prefix not found after AddPrefix2")
	}
	if f.Test2('E', 'G') {
		t.Fatal("filter must be order-sensitive")
	}
}

func TestDirectFilter16AddAllSecond(t *testing.T) {
	f := NewDirectFilter16()
	f.AddAllSecond('/')
	for b1 := 0; b1 < 256; b1++ {
		if !f.Test2('/', byte(b1)) {
			t.Fatalf("window ('/', %#x) not set by AddAllSecond", b1)
		}
	}
	if f.Test2('a', '/') {
		t.Fatal("AddAllSecond set an unrelated window")
	}
	if got := f.PopCount(); got != 256 {
		t.Fatalf("AddAllSecond set %d bits, want 256", got)
	}
}

func TestHashFilterNoFalseNegatives(t *testing.T) {
	f := NewHashFilter(12)
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint32, 200)
	for i := range vals {
		vals[i] = rng.Uint32()
		f.Add4(vals[i])
	}
	for _, v := range vals {
		if !f.Test4(v) {
			t.Fatalf("false negative for %#x", v)
		}
	}
}

func TestHashFilterIndexInRange(t *testing.T) {
	f := NewHashFilter(10)
	err := quick.Check(func(v uint32) bool {
		return f.HashIndex(v) < 1024
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashFilterShift(t *testing.T) {
	f := NewHashFilter(17)
	if f.Shift() != 15 {
		t.Fatalf("Shift = %d, want 15", f.Shift())
	}
}

func TestHashFilterSelectivity(t *testing.T) {
	// With n entries in a m-bit filter, fill ratio must not exceed n/m
	// (collisions can only lower it) and random probes should mostly miss.
	f := NewHashFilter(16)
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	for i := 0; i < n; i++ {
		f.Add4(rng.Uint32())
	}
	if got := f.PopCount(); got > n {
		t.Fatalf("PopCount %d exceeds insertions %d", got, n)
	}
	hits := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Test4(rng.Uint32()) {
			hits++
		}
	}
	// Expected hit rate ~ n/2^16 ≈ 1.5%; allow generous slack.
	if rate := float64(hits) / probes; rate > 0.05 {
		t.Fatalf("random probe hit rate %.3f too high for a 1000-entry filter", rate)
	}
}

func TestMergedFilterAgreesWithSources(t *testing.T) {
	f1 := New(16)
	f2 := New(16)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		f1.Set(rng.Uint32())
		f2.Set(rng.Uint32())
	}
	m := NewMergedFilter(f1, f2)
	for i := 0; i < 20000; i++ {
		idx := rng.Uint32() & 0xFFFF
		g1, g2 := m.Test(idx)
		if g1 != f1.Test(idx) || g2 != f2.Test(idx) {
			t.Fatalf("merged filter disagrees at idx %#x: got (%v,%v) want (%v,%v)",
				idx, g1, g2, f1.Test(idx), f2.Test(idx))
		}
	}
}

func TestMergedFilterWordLayout(t *testing.T) {
	f1 := New(16)
	f2 := New(16)
	f1.Set(3)  // byte 0 bit 3 of filter 1
	f2.Set(10) // byte 1 bit 2 of filter 2
	m := NewMergedFilter(f1, f2)
	if w := m.Word(3); w != 1<<3 {
		t.Fatalf("Word(3) = %#x, want %#x", w, 1<<3)
	}
	if w := m.Word(10); w != 1<<(2+8) {
		t.Fatalf("Word(10) = %#x, want %#x", w, 1<<(2+8))
	}
}

func TestMergedFilterSizeAndMask(t *testing.T) {
	f1 := New(16)
	f2 := New(16)
	m := NewMergedFilter(f1, f2)
	if m.SizeBytes() != 16384 {
		t.Fatalf("merged size %d, want 16384 (2 x 8 KB)", m.SizeBytes())
	}
	if m.Mask() != 0xFFFF {
		t.Fatalf("mask %#x, want 0xFFFF", m.Mask())
	}
}

func TestMergedFilterSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sizes did not panic")
		}
	}()
	NewMergedFilter(New(16), New(15))
}

func TestMergedFilterPropertyEquivalence(t *testing.T) {
	f1 := New(16)
	f2 := New(16)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		f1.Set(rng.Uint32())
		f2.Set(rng.Uint32())
	}
	m := NewMergedFilter(f1, f2)
	err := quick.Check(func(idx uint32) bool {
		g1, g2 := m.Test(idx)
		return g1 == f1.Test(idx) && g2 == f2.Test(idx)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDirectFilterTest(b *testing.B) {
	f := NewDirectFilter16()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		f.Set(rng.Uint32())
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.Test(uint32(i))
	}
	_ = sink
}

func BenchmarkMergedFilterTest(b *testing.B) {
	f1 := New(16)
	f2 := New(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		f1.Set(rng.Uint32())
		f2.Set(rng.Uint32())
	}
	m := NewMergedFilter(f1, f2)
	b.ResetTimer()
	var s1, s2 bool
	for i := 0; i < b.N; i++ {
		s1, s2 = m.Test(uint32(i))
	}
	_, _ = s1, s2
}
