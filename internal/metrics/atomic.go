package metrics

// Concurrent counter publishing. The hot-path Counters type is
// deliberately plain — matchers increment its fields with ordinary
// read-modify-write in their innermost loops, so it must stay owned by
// one goroutine. A resident daemon, however, needs to scrape counters
// while scans are running: Atomic is the publication half of that
// split. Each scanning goroutine keeps accumulating into its private
// Counters and periodically folds the delta into a shared Atomic with
// AddCounters; scrapers call Snapshot at any time from any goroutine.
// Every transfer is field-by-field atomic, so a snapshot never tears a
// counter (it may lag the owner's private tally by at most one
// unpublished delta, which is the price of keeping the scan loop free
// of atomics).

import "sync/atomic"

// Atomic is a concurrency-safe accumulation point for Counters.
// Writers fold deltas in with AddCounters; readers take consistent
// word-wise snapshots with Snapshot. The zero value is ready to use.
type Atomic struct {
	bytesScanned atomic.Uint64

	filter1Probes atomic.Uint64
	filter2Probes atomic.Uint64
	filter3Probes atomic.Uint64

	vectorIters   atomic.Uint64
	gathers       atomic.Uint64
	mergedGathers atomic.Uint64

	filter3Blocks      atomic.Uint64
	filter3UsefulLanes atomic.Uint64

	batchIters       atomic.Uint64
	batchActiveLanes atomic.Uint64

	skippedBytes atomic.Uint64
	accelChances atomic.Uint64
	accelRuns    atomic.Uint64

	shortCandidates atomic.Uint64
	longCandidates  atomic.Uint64

	htProbes       atomic.Uint64
	verifyAttempts atomic.Uint64
	verifyBytes    atomic.Uint64

	dfaAccesses atomic.Uint64

	matches atomic.Uint64

	verifierRuns   atomic.Uint64
	verifierStates atomic.Uint64
	ruleAlerts     atomic.Uint64

	verifierBudgetExhausted atomic.Uint64
	degradedFlows           atomic.Uint64
	panicsRecovered         atomic.Uint64
	flowsQuarantined        atomic.Uint64

	flowsEvicted atomic.Uint64
	bytesDropped atomic.Uint64
	peakFlows    atomic.Uint64

	filteringNs atomic.Int64
	verifyNs    atomic.Int64
	otherNs     atomic.Int64
}

// AddCounters folds c into a. Safe for concurrent use with other
// AddCounters and Snapshot calls; c itself must not be mutated
// concurrently (it is the caller's private scratch). PeakFlows merges
// by maximum, like Counters.Add.
func (a *Atomic) AddCounters(c *Counters) {
	a.bytesScanned.Add(c.BytesScanned)
	a.filter1Probes.Add(c.Filter1Probes)
	a.filter2Probes.Add(c.Filter2Probes)
	a.filter3Probes.Add(c.Filter3Probes)
	a.vectorIters.Add(c.VectorIters)
	a.gathers.Add(c.Gathers)
	a.mergedGathers.Add(c.MergedGathers)
	a.filter3Blocks.Add(c.Filter3Blocks)
	a.filter3UsefulLanes.Add(c.Filter3UsefulLanes)
	a.batchIters.Add(c.BatchIters)
	a.batchActiveLanes.Add(c.BatchActiveLanes)
	a.skippedBytes.Add(c.SkippedBytes)
	a.accelChances.Add(c.AccelChances)
	a.accelRuns.Add(c.AccelRuns)
	a.shortCandidates.Add(c.ShortCandidates)
	a.longCandidates.Add(c.LongCandidates)
	a.htProbes.Add(c.HTProbes)
	a.verifyAttempts.Add(c.VerifyAttempts)
	a.verifyBytes.Add(c.VerifyBytes)
	a.dfaAccesses.Add(c.DFAAccesses)
	a.matches.Add(c.Matches)
	a.verifierRuns.Add(c.VerifierRuns)
	a.verifierStates.Add(c.VerifierStates)
	a.ruleAlerts.Add(c.RuleAlerts)
	a.verifierBudgetExhausted.Add(c.VerifierBudgetExhausted)
	a.degradedFlows.Add(c.DegradedFlows)
	a.panicsRecovered.Add(c.PanicsRecovered)
	a.flowsQuarantined.Add(c.FlowsQuarantined)
	a.flowsEvicted.Add(c.FlowsEvicted)
	a.bytesDropped.Add(c.BytesDropped)
	storeMax(&a.peakFlows, c.PeakFlows)
	a.filteringNs.Add(c.FilteringNs)
	a.verifyNs.Add(c.VerifyNs)
	a.otherNs.Add(c.OtherNs)
}

// storeMax raises a to at least v (lock-free monotonic max).
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns the accumulated counters as a plain Counters value.
// Each field is loaded atomically, so no counter is ever torn; the
// fields are not loaded as one transaction, but every field is
// monotonic (PeakFlows is a monotonic max), so consecutive snapshots
// never go backwards — the property scrape consumers need.
func (a *Atomic) Snapshot() Counters {
	return Counters{
		BytesScanned:       a.bytesScanned.Load(),
		Filter1Probes:      a.filter1Probes.Load(),
		Filter2Probes:      a.filter2Probes.Load(),
		Filter3Probes:      a.filter3Probes.Load(),
		VectorIters:        a.vectorIters.Load(),
		Gathers:            a.gathers.Load(),
		MergedGathers:      a.mergedGathers.Load(),
		Filter3Blocks:      a.filter3Blocks.Load(),
		Filter3UsefulLanes: a.filter3UsefulLanes.Load(),
		BatchIters:         a.batchIters.Load(),
		BatchActiveLanes:   a.batchActiveLanes.Load(),
		SkippedBytes:       a.skippedBytes.Load(),
		AccelChances:       a.accelChances.Load(),
		AccelRuns:          a.accelRuns.Load(),
		ShortCandidates:    a.shortCandidates.Load(),
		LongCandidates:     a.longCandidates.Load(),
		HTProbes:           a.htProbes.Load(),
		VerifyAttempts:     a.verifyAttempts.Load(),
		VerifyBytes:        a.verifyBytes.Load(),
		DFAAccesses:        a.dfaAccesses.Load(),
		Matches:            a.matches.Load(),
		VerifierRuns:       a.verifierRuns.Load(),
		VerifierStates:     a.verifierStates.Load(),
		RuleAlerts:         a.ruleAlerts.Load(),

		VerifierBudgetExhausted: a.verifierBudgetExhausted.Load(),
		DegradedFlows:           a.degradedFlows.Load(),
		PanicsRecovered:         a.panicsRecovered.Load(),
		FlowsQuarantined:        a.flowsQuarantined.Load(),

		FlowsEvicted: a.flowsEvicted.Load(),
		BytesDropped: a.bytesDropped.Load(),
		PeakFlows:    a.peakFlows.Load(),
		FilteringNs:  a.filteringNs.Load(),
		VerifyNs:     a.verifyNs.Load(),
		OtherNs:      a.otherNs.Load(),
	}
}
