// Package metrics instruments the pattern matchers. Every matcher counts
// the events that determine its performance on real hardware — filter
// probes, gathers, hash-table probes, verification byte compares, vector
// iterations and lane occupancy, and time spent per phase. The counters
// feed three consumers: the experiment drivers (Fig. 5b's
// filtering-time/total-time and useful-lane series are direct counter
// ratios), the cost model (which converts event counts into modeled
// Haswell/Xeon-Phi cycles), and tests (which assert structural properties
// such as "V-PATCH performs one merged gather per W windows").
package metrics

import (
	"fmt"
	"time"
)

// Counters accumulates matcher events for one scan (or several; counters
// are additive). The zero value is ready to use. Not safe for concurrent
// mutation; give each goroutine its own Counters.
//
// The fields are plain words mutated with ordinary read-modify-write on
// the scan hot path, so reading them from another goroutine while a
// scan is running is a data race (and may observe torn, partial
// updates). Long-running services that must expose counters while
// scanning publish deltas into an Atomic instead (the scanning
// goroutine calls Atomic.AddCounters at flush points; scrapers call
// Atomic.Snapshot from any goroutine) — see atomic.go.
type Counters struct {
	// BytesScanned is the input volume processed.
	BytesScanned uint64

	// Scalar filter probes (one memory access each).
	Filter1Probes uint64
	Filter2Probes uint64
	Filter3Probes uint64

	// Vector execution. VectorIters counts main-loop iterations (each
	// covering W positions); Gathers counts gather instructions issued;
	// MergedGathers counts how many of them were merged filter-1+2
	// fetches (the Fig. 3 optimization).
	VectorIters   uint64
	Gathers       uint64
	MergedGathers uint64

	// Speculative filter-3 execution (Fig. 5b's red line): number of
	// times the filter-3 block ran, and the sum of lanes that actually
	// needed it (the "useful elements").
	Filter3Blocks      uint64
	Filter3UsefulLanes uint64

	// Batched (lane-per-packet) execution. BatchIters counts batched
	// filtering steps (each advancing up to W lanes, every lane walking
	// its own buffer); BatchActiveLanes sums the lanes that held a
	// buffer at each step, so BatchActiveLanes/(BatchIters*W) is the
	// Fig. 5b lane-occupancy metric extended to batch mode.
	BatchIters       uint64
	BatchActiveLanes uint64

	// Skip-loop acceleration (the hot-path layer in front of the
	// filter probes). SkippedBytes counts input positions the
	// accelerator proved unable to start a candidate and skipped
	// without probing; AccelChances counts skip invocations (each a
	// chance to jump a run of impossible bytes); AccelRuns counts the
	// invocations that actually cleared a run of at least 8 bytes.
	// Together with BytesScanned they give the Fig.-5c-style density
	// story: SkipFrac collapses as the matching fraction of the input
	// grows.
	SkippedBytes uint64
	AccelChances uint64
	AccelRuns    uint64

	// Candidate positions stored into the temporary arrays.
	ShortCandidates uint64
	LongCandidates  uint64

	// Verification work: hash-table bucket probes, candidate patterns
	// compared, and total pattern bytes compared.
	HTProbes       uint64
	VerifyAttempts uint64
	VerifyBytes    uint64

	// DFAAccesses counts state-machine transition fetches (Aho-Corasick
	// performs one dependent access per input byte; the cost model
	// charges them at a latency depending on automaton size).
	DFAAccesses uint64

	// Matches found.
	Matches uint64

	// Rule-tier verification (the layer above the literal matchers).
	// VerifierRuns counts regex verifications started at literal-hit
	// anchors, VerifierStates counts lazy-DFA states constructed across
	// them (cache misses — a hot verifier converges to zero new states),
	// and RuleAlerts counts rule-level alerts emitted after all clauses
	// and the regex tail agreed. VerifierRuns/RuleAlerts vs Matches is
	// the prefilter-vs-verify cost story in one ratio.
	VerifierRuns   uint64
	VerifierStates uint64
	RuleAlerts     uint64

	// Resilience events (the overload/degradation layer).
	// VerifierBudgetExhausted counts charge attempts denied because a
	// flow or tenant verifier budget ran dry; DegradedFlows counts flows
	// demoted to literal-only alerting as a result (at most one per
	// flow). PanicsRecovered counts per-segment panics a dispatcher
	// worker caught without losing the shard; FlowsQuarantined counts
	// flows torn down and blacklisted after such a panic (their later
	// segments are dropped, the shard keeps scanning everyone else).
	VerifierBudgetExhausted uint64
	DegradedFlows           uint64
	PanicsRecovered         uint64
	FlowsQuarantined        uint64

	// Flow-lifecycle events from the reassembly/IDS pipeline (zero for
	// plain buffer scans). FlowsEvicted counts open flows dropped by
	// the flow cap or idle timeout, BytesDropped counts payload bytes
	// the pipeline discarded (over-budget out-of-order data, evicted
	// flows, post-teardown retransmits), and PeakFlows is the maximum
	// number of simultaneously tracked flows (Add merges it by max, not
	// sum — it is a high-water mark, not an event count).
	FlowsEvicted uint64
	BytesDropped uint64
	PeakFlows    uint64

	// Phase wall-clock time.
	FilteringNs int64
	VerifyNs    int64
	OtherNs     int64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.BytesScanned += o.BytesScanned
	c.Filter1Probes += o.Filter1Probes
	c.Filter2Probes += o.Filter2Probes
	c.Filter3Probes += o.Filter3Probes
	c.VectorIters += o.VectorIters
	c.Gathers += o.Gathers
	c.MergedGathers += o.MergedGathers
	c.Filter3Blocks += o.Filter3Blocks
	c.Filter3UsefulLanes += o.Filter3UsefulLanes
	c.BatchIters += o.BatchIters
	c.BatchActiveLanes += o.BatchActiveLanes
	c.SkippedBytes += o.SkippedBytes
	c.AccelChances += o.AccelChances
	c.AccelRuns += o.AccelRuns
	c.ShortCandidates += o.ShortCandidates
	c.LongCandidates += o.LongCandidates
	c.HTProbes += o.HTProbes
	c.VerifyAttempts += o.VerifyAttempts
	c.VerifyBytes += o.VerifyBytes
	c.DFAAccesses += o.DFAAccesses
	c.Matches += o.Matches
	c.VerifierRuns += o.VerifierRuns
	c.VerifierStates += o.VerifierStates
	c.RuleAlerts += o.RuleAlerts
	c.VerifierBudgetExhausted += o.VerifierBudgetExhausted
	c.DegradedFlows += o.DegradedFlows
	c.PanicsRecovered += o.PanicsRecovered
	c.FlowsQuarantined += o.FlowsQuarantined
	c.FlowsEvicted += o.FlowsEvicted
	c.BytesDropped += o.BytesDropped
	if o.PeakFlows > c.PeakFlows {
		c.PeakFlows = o.PeakFlows
	}
	c.FilteringNs += o.FilteringNs
	c.VerifyNs += o.VerifyNs
	c.OtherNs += o.OtherNs
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// Snapshot returns a copy of the counters. It must be called from the
// goroutine that owns c (the one mutating it through scans) — it is a
// plain struct copy, not a synchronized read. For scraping counters
// owned by another goroutine, publish them through an Atomic and use
// Atomic.Snapshot.
func (c *Counters) Snapshot() Counters { return *c }

// UsefulLaneFrac returns the average fraction of active lanes when the
// speculative filter-3 block executes, given the register width W — the
// paper's "useful elements in vector register" metric (Fig. 5b, right
// axis). Returns 0 when filter 3 never ran.
func (c *Counters) UsefulLaneFrac(w int) float64 {
	if c.Filter3Blocks == 0 || w <= 0 {
		return 0
	}
	return float64(c.Filter3UsefulLanes) / (float64(c.Filter3Blocks) * float64(w))
}

// BatchLaneFrac returns the average fraction of lanes that held a
// buffer per batched filtering step, given the register width W — the
// lane-occupancy metric of the lane-per-packet batch mode (near 1.0
// when lane refill keeps every lane busy, regardless of packet size).
// Returns 0 when no batched steps ran.
func (c *Counters) BatchLaneFrac(w int) float64 {
	if c.BatchIters == 0 || w <= 0 {
		return 0
	}
	return float64(c.BatchActiveLanes) / (float64(c.BatchIters) * float64(w))
}

// SkipFrac returns the fraction of scanned bytes the skip-loop
// accelerator cleared without probing — the acceleration analogue of
// the filtering rate. Returns 0 when nothing was scanned.
func (c *Counters) SkipFrac() float64 {
	if c.BytesScanned == 0 {
		return 0
	}
	return float64(c.SkippedBytes) / float64(c.BytesScanned)
}

// FilteringTimeFrac returns filtering time over total measured time
// (Fig. 5b, left axis). Returns 0 when nothing was timed.
func (c *Counters) FilteringTimeFrac() float64 {
	total := c.FilteringNs + c.VerifyNs + c.OtherNs
	if total == 0 {
		return 0
	}
	return float64(c.FilteringNs) / float64(total)
}

// CandidateFrac returns the fraction of scanned positions that survived
// filtering (stored into a temporary array) — the filtering rate
// complement.
func (c *Counters) CandidateFrac() float64 {
	if c.BytesScanned == 0 {
		return 0
	}
	return float64(c.ShortCandidates+c.LongCandidates) / float64(c.BytesScanned)
}

func (c *Counters) String() string {
	return fmt.Sprintf(
		"bytes=%d f1=%d f2=%d f3=%d vecIters=%d gathers=%d(merged %d) f3blocks=%d batch=%d(lanes %d) skipped=%d(chances %d, runs %d) cand=%d/%d ht=%d verify=%d(%dB) matches=%d rules=%d(runs %d, states %d) degraded=%d(denied %d) panics=%d(quarantined %d) evicted=%d dropped=%dB peakflows=%d filter=%s verify=%s",
		c.BytesScanned, c.Filter1Probes, c.Filter2Probes, c.Filter3Probes,
		c.VectorIters, c.Gathers, c.MergedGathers, c.Filter3Blocks,
		c.BatchIters, c.BatchActiveLanes,
		c.SkippedBytes, c.AccelChances, c.AccelRuns,
		c.ShortCandidates, c.LongCandidates, c.HTProbes, c.VerifyAttempts,
		c.VerifyBytes, c.Matches,
		c.RuleAlerts, c.VerifierRuns, c.VerifierStates,
		c.DegradedFlows, c.VerifierBudgetExhausted,
		c.PanicsRecovered, c.FlowsQuarantined,
		c.FlowsEvicted, c.BytesDropped, c.PeakFlows,
		time.Duration(c.FilteringNs), time.Duration(c.VerifyNs))
}

// Stopwatch measures one phase. Usage:
//
//	sw := metrics.Start()
//	... phase ...
//	c.FilteringNs += sw.Stop()
type Stopwatch struct{ t0 time.Time }

// Start begins timing.
func Start() Stopwatch { return Stopwatch{t0: time.Now()} }

// Stop returns elapsed nanoseconds since Start.
func (s Stopwatch) Stop() int64 { return time.Since(s.t0).Nanoseconds() }

// Throughput converts (bytes, elapsed ns) into gigabits per second, the
// unit all the paper's figures use.
func Throughput(bytes uint64, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) * 8 / float64(ns)
}
