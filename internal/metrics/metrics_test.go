package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestAddAccumulatesEveryField(t *testing.T) {
	a := Counters{
		BytesScanned: 1, Filter1Probes: 2, Filter2Probes: 3, Filter3Probes: 4,
		VectorIters: 5, Gathers: 6, MergedGathers: 7, Filter3Blocks: 8,
		Filter3UsefulLanes: 9, ShortCandidates: 10, LongCandidates: 11,
		HTProbes: 12, VerifyAttempts: 13, VerifyBytes: 14, Matches: 15,
		FilteringNs: 16, VerifyNs: 17, OtherNs: 18, DFAAccesses: 19,
		BatchIters: 20, BatchActiveLanes: 21,
		FlowsEvicted: 22, BytesDropped: 23, PeakFlows: 24,
		SkippedBytes: 25, AccelChances: 26, AccelRuns: 27,
	}
	var c Counters
	c.Add(&a)
	c.Add(&a)
	if c != (Counters{
		BytesScanned: 2, Filter1Probes: 4, Filter2Probes: 6, Filter3Probes: 8,
		VectorIters: 10, Gathers: 12, MergedGathers: 14, Filter3Blocks: 16,
		Filter3UsefulLanes: 18, ShortCandidates: 20, LongCandidates: 22,
		HTProbes: 24, VerifyAttempts: 26, VerifyBytes: 28, Matches: 30,
		FilteringNs: 32, VerifyNs: 34, OtherNs: 36, DFAAccesses: 38,
		BatchIters: 40, BatchActiveLanes: 42,
		// PeakFlows is a high-water mark: Add merges it by max.
		FlowsEvicted: 44, BytesDropped: 46, PeakFlows: 24,
		SkippedBytes: 50, AccelChances: 52, AccelRuns: 54,
	}) {
		t.Fatalf("Add result wrong: %+v", c)
	}
}

func TestReset(t *testing.T) {
	c := Counters{Matches: 5, FilteringNs: 10}
	c.Reset()
	if c != (Counters{}) {
		t.Fatalf("Reset left %+v", c)
	}
}

func TestUsefulLaneFrac(t *testing.T) {
	c := Counters{Filter3Blocks: 10, Filter3UsefulLanes: 40}
	if got := c.UsefulLaneFrac(8); got != 0.5 {
		t.Fatalf("UsefulLaneFrac = %v, want 0.5", got)
	}
	var zero Counters
	if zero.UsefulLaneFrac(8) != 0 {
		t.Fatal("zero counters must report 0")
	}
	if c.UsefulLaneFrac(0) != 0 {
		t.Fatal("W=0 must report 0")
	}
}

func TestFilteringTimeFrac(t *testing.T) {
	c := Counters{FilteringNs: 30, VerifyNs: 60, OtherNs: 10}
	if got := c.FilteringTimeFrac(); got != 0.3 {
		t.Fatalf("FilteringTimeFrac = %v, want 0.3", got)
	}
	var zero Counters
	if zero.FilteringTimeFrac() != 0 {
		t.Fatal("untimed counters must report 0")
	}
}

func TestCandidateFrac(t *testing.T) {
	c := Counters{BytesScanned: 100, ShortCandidates: 5, LongCandidates: 15}
	if got := c.CandidateFrac(); got != 0.2 {
		t.Fatalf("CandidateFrac = %v, want 0.2", got)
	}
	var zero Counters
	if zero.CandidateFrac() != 0 {
		t.Fatal("zero scan must report 0")
	}
}

func TestThroughput(t *testing.T) {
	// 1 GB in 1 second = 8 Gbps.
	if got := Throughput(1e9, 1e9); got != 8 {
		t.Fatalf("Throughput = %v, want 8", got)
	}
	if Throughput(100, 0) != 0 || Throughput(100, -5) != 0 {
		t.Fatal("non-positive time must yield 0")
	}
}

func TestStopwatch(t *testing.T) {
	sw := Start()
	ns := sw.Stop()
	if ns < 0 {
		t.Fatalf("negative elapsed %d", ns)
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	c := Counters{Matches: 42, BytesScanned: 1000}
	s := c.String()
	if !strings.Contains(s, "matches=42") || !strings.Contains(s, "bytes=1000") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBatchLaneFrac(t *testing.T) {
	c := Counters{BatchIters: 10, BatchActiveLanes: 60}
	if got := c.BatchLaneFrac(8); got != 0.75 {
		t.Fatalf("BatchLaneFrac = %f, want 0.75", got)
	}
	if (&Counters{}).BatchLaneFrac(8) != 0 {
		t.Fatal("no batched steps must yield 0")
	}
	if c.BatchLaneFrac(0) != 0 {
		t.Fatal("zero width must yield 0")
	}
}

func TestSkipFrac(t *testing.T) {
	var c Counters
	if c.SkipFrac() != 0 {
		t.Fatal("empty counters should report 0")
	}
	c.BytesScanned = 100
	c.SkippedBytes = 25
	if c.SkipFrac() != 0.25 {
		t.Fatalf("SkipFrac = %v", c.SkipFrac())
	}
	if !strings.Contains(c.String(), "skipped=25") {
		t.Fatalf("String missing skip counters: %s", c.String())
	}
}

// fillDistinct sets every field of a Counters to a distinct nonzero
// value via reflection, so transfer audits notice a field that any
// merge path forgot (a freshly added field starts at the zero value on
// the destination and the mismatch is reported by name).
func fillDistinct(c *Counters) {
	v := reflect.ValueOf(c).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(1000 + i))
		case reflect.Int64:
			f.SetInt(int64(2000 + i))
		default:
			panic("unhandled Counters field kind " + f.Kind().String())
		}
	}
}

// diffFields reports the names of fields that differ between a and b.
func diffFields(t *testing.T, a, b Counters) []string {
	t.Helper()
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	var bad []string
	for i := 0; i < va.NumField(); i++ {
		if !va.Field(i).Equal(vb.Field(i)) {
			bad = append(bad, va.Type().Field(i).Name)
		}
	}
	return bad
}

// TestAddCoversEveryField: Counters.Add into a zero destination must
// transfer every field (PeakFlows merges by max, which from zero is a
// plain copy). Guards against a new counter field silently dropping out
// of the merge path.
func TestAddCoversEveryField(t *testing.T) {
	var src, dst Counters
	fillDistinct(&src)
	dst.Add(&src)
	if bad := diffFields(t, dst, src); len(bad) > 0 {
		t.Fatalf("Counters.Add dropped fields: %v", bad)
	}
}

// TestAtomicRoundTripCoversEveryField: AddCounters followed by Snapshot
// must reproduce every field, so the published view never silently
// omits a counter.
func TestAtomicRoundTripCoversEveryField(t *testing.T) {
	var src Counters
	fillDistinct(&src)
	var a Atomic
	a.AddCounters(&src)
	if bad := diffFields(t, a.Snapshot(), src); len(bad) > 0 {
		t.Fatalf("Atomic round-trip dropped fields: %v", bad)
	}
}

// TestAtomicPeakFlowsMax: PeakFlows is a high-water mark and must merge
// by max through the atomic path, like Counters.Add.
func TestAtomicPeakFlowsMax(t *testing.T) {
	var a Atomic
	a.AddCounters(&Counters{PeakFlows: 9})
	a.AddCounters(&Counters{PeakFlows: 4})
	if got := a.Snapshot().PeakFlows; got != 9 {
		t.Fatalf("PeakFlows = %d, want 9 (max-merge)", got)
	}
}

// TestAtomicConcurrentScrape: concurrent AddCounters and Snapshot must
// be race-free (run under -race) and every snapshot must observe
// monotonically non-decreasing totals.
func TestAtomicConcurrentScrape(t *testing.T) {
	var a Atomic
	const writers, rounds = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := Counters{BytesScanned: 3, Matches: 1, SkippedBytes: 2}
			for i := 0; i < rounds; i++ {
				a.AddCounters(&delta)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var prev Counters
	for {
		snap := a.Snapshot()
		if snap.BytesScanned < prev.BytesScanned || snap.Matches < prev.Matches {
			t.Errorf("snapshot went backwards: %+v after %+v", snap, prev)
		}
		prev = snap
		select {
		case <-done:
			final := a.Snapshot()
			if final.BytesScanned != writers*rounds*3 || final.Matches != writers*rounds {
				t.Fatalf("final snapshot %+v, want %d bytes / %d matches",
					final, writers*rounds*3, writers*rounds)
			}
			return
		default:
		}
	}
}
