package netsim

// Reassembly fuzzing with the adversarial evasion corpus: whatever
// delivery tricks the fuzzer composes — tiny-MTU segmentation,
// overlapping retransmissions, reordering, duplicates — the reassembler
// must deliver exactly the original stream, exactly once, and keep its
// books balanced. Seeds come from internal/traffic's corpus generators
// so the known attack shapes are always in the corpus.

import (
	"bytes"
	"testing"

	"vpatch/internal/traffic"
)

func FuzzReassemblyAdversarial(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), int64(1))
	f.Add(traffic.FloodAnchors([]byte("token="), []byte("zzzzzzzz"), 16, 3), int64(2))
	f.Add(traffic.Random(512, 3), int64(4))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, payload []byte, seed int64) {
		if len(payload) > 1<<16 {
			return
		}
		k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
		var got []byte
		r := NewReassembler(func(_ FlowKey, b []byte) { got = append(got, b...) })
		closed := 0
		r.OnClose(func(FlowKey, bool) { closed++ })
		for _, c := range traffic.Evasive(payload, seed) {
			seg := Segment{Flow: k, Seq: uint32(c.Off), Payload: c.Data}
			if c.Fin {
				seg.Flags = FlagFIN
			}
			r.Add(seg)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("delivered %d bytes != original %d bytes under evasive delivery (seed %d)",
				len(got), len(payload), seed)
		}
		// A FIN for a flow that never carried a byte need not
		// materialize flow state at all; any data obliges a teardown.
		if len(payload) > 0 && closed != 1 {
			t.Fatalf("flow closed %d times, want 1", closed)
		}
		if pb := r.PendingBytes(); pb != 0 {
			t.Fatalf("%d pending bytes left after FIN", pb)
		}
	})
}
