package netsim

import (
	"bytes"
	"testing"

	"vpatch/internal/arena"
)

// TestReassemblerArenaIdentical proves the arena-backed reassembler
// delivers byte-identical streams under reorder/dup/overlap pressure
// and returns every rented chunk once the flows drain.
func TestReassemblerArenaIdentical(t *testing.T) {
	flows := testFlows(4, 16<<10, 21)
	segs := Packetize(flows, PacketizeOptions{
		MTU: 300, Jitter: 12, DuplicateFrac: 0.1, OverlapFrac: 0.1, Seed: 22,
	})

	a := arena.New(arena.Config{})
	got := make(map[FlowKey][]byte)
	r := NewReassembler(func(k FlowKey, p []byte) {
		got[k] = append(got[k], p...)
	})
	r.SetArena(a.NewLocal())
	for _, s := range segs {
		r.Add(s)
	}
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: stream corrupted under arena recycling", k)
		}
	}
	if r.PendingBytes() != 0 {
		t.Fatalf("PendingBytes = %d after full drain", r.PendingBytes())
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("arena InUse = %d after drain: pending chunks leaked", st.InUse)
	}
}

// TestReassemblerArenaOverflowIdentical forces the arena past its cap
// so pending copies overflow to the heap, and checks the streams stay
// byte-identical — the degraded mode must only cost allocations.
func TestReassemblerArenaOverflowIdentical(t *testing.T) {
	flows := testFlows(3, 12<<10, 31)
	segs := Packetize(flows, PacketizeOptions{
		MTU: 400, Jitter: 16, DuplicateFrac: 0.2, Seed: 32,
	})

	a := arena.New(arena.Config{MaxBytes: 1024}) // absurdly tight: everything overflows
	got := make(map[FlowKey][]byte)
	r := NewReassembler(func(k FlowKey, p []byte) {
		got[k] = append(got[k], p...)
	})
	r.SetArena(a.NewLocal())
	for _, s := range segs {
		r.Add(s)
	}
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: stream corrupted under arena overflow", k)
		}
	}
	st := a.Stats()
	if st.Overflows == 0 {
		t.Fatal("expected overflow rents under a 1 KiB cap")
	}
	if st.InUse != 0 {
		t.Fatalf("arena InUse = %d after drain", st.InUse)
	}
}

// TestSegmentOwnership exercises the Segment release hook contract.
func TestSegmentOwnership(t *testing.T) {
	a := arena.New(arena.Config{})
	b := a.Rent(128)
	payload := b.Data()[:5]
	copy(payload, "hello")

	seg := Segment{Flow: FlowKey{SrcIP: 1}, Payload: payload}
	if seg.Owned() {
		t.Fatal("unowned segment reports Owned")
	}
	seg.ReleasePayload() // no-op for unowned segments
	if seg.Payload == nil {
		t.Fatal("ReleasePayload nilled an unowned payload")
	}

	seg.SetOwned(b)
	if !seg.Owned() || seg.OwnedBuf() != b {
		t.Fatal("SetOwned did not register the chunk")
	}
	seg.ReleasePayload()
	if seg.Owned() || seg.Payload != nil {
		t.Fatal("ReleasePayload did not clear the segment")
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("chunk not returned: InUse = %d", st.InUse)
	}
	seg.ReleasePayload() // second call is a no-op, not a double release
}
