// Package netsim is the network substrate of the reproduction: the
// paper's system model assumes the matcher runs inside a NIDS over "the
// reassembled protocol stream of the packets on the monitored network".
// This package provides that pipeline end to end on synthetic traffic:
// packetizing byte streams into TCP-like segments across interleaved
// flows, writing/reading libpcap files, and reassembling per-flow
// payload streams that feed the matchers (via vpatch.StreamScanner).
//
// The segment model is deliberately minimal — five-tuple, sequence
// number, payload — because the matching algorithms only care about the
// reassembled payload order; IP/TCP header parsing fidelity is out of
// scope (DESIGN.md §2).
package netsim

import (
	"fmt"
	"math/rand"
)

// FlowKey identifies one unidirectional flow (the reassembly unit).
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", ipString(k.SrcIP), k.SrcPort, ipString(k.DstIP), k.DstPort)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, ip>>16&0xFF, ip>>8&0xFF, ip&0xFF)
}

// Segment is one TCP-like segment of a flow.
type Segment struct {
	Flow FlowKey
	// Seq is the byte offset of Payload within the flow's stream.
	Seq uint32
	// Payload is the application bytes carried by this segment.
	Payload []byte
	// TsMicros is the capture timestamp in microseconds.
	TsMicros uint64
}

// PacketizeOptions controls stream segmentation.
type PacketizeOptions struct {
	// MTU bounds the payload bytes per segment (default 1460, Ethernet
	// TCP MSS).
	MTU int
	// Jitter reorders segments within a window of this many packets
	// (0 = in-order). Reassembly must restore stream order.
	Jitter int
	// DuplicateFrac duplicates this fraction of segments (retransmits).
	DuplicateFrac float64
	// Seed drives segmentation sizes, reordering and duplication.
	Seed int64
}

// Packetize splits each stream into segments for its flow and interleaves
// all flows into one capture-ordered sequence, optionally with
// reordering and duplicates. streams[i] becomes flows[i]'s payload.
func Packetize(streams map[FlowKey][]byte, opt PacketizeOptions) []Segment {
	mtu := opt.MTU
	if mtu <= 0 {
		mtu = 1460
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Split each stream into its segments.
	perFlow := make(map[FlowKey][]Segment)
	keys := make([]FlowKey, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	// Deterministic flow order for the interleaver.
	sortKeys(keys)
	for _, k := range keys {
		data := streams[k]
		var segs []Segment
		for pos := 0; pos < len(data); {
			n := 1 + rng.Intn(mtu)
			if pos+n > len(data) {
				n = len(data) - pos
			}
			segs = append(segs, Segment{Flow: k, Seq: uint32(pos), Payload: data[pos : pos+n]})
			pos += n
		}
		perFlow[k] = segs
	}

	// Interleave: repeatedly pick a random flow with segments left.
	var out []Segment
	remaining := len(keys)
	idx := make(map[FlowKey]int, len(keys))
	ts := uint64(1_000_000)
	for remaining > 0 {
		k := keys[rng.Intn(len(keys))]
		i := idx[k]
		segs := perFlow[k]
		if i >= len(segs) {
			continue
		}
		seg := segs[i]
		seg.TsMicros = ts
		ts += uint64(1 + rng.Intn(200))
		out = append(out, seg)
		idx[k] = i + 1
		if idx[k] == len(segs) {
			remaining--
		}
		if opt.DuplicateFrac > 0 && rng.Float64() < opt.DuplicateFrac {
			dup := seg
			dup.TsMicros = ts
			ts += 7
			out = append(out, dup)
		}
	}

	// Bounded reordering.
	if opt.Jitter > 0 {
		for i := range out {
			j := i + rng.Intn(opt.Jitter+1)
			if j < len(out) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func sortKeys(keys []FlowKey) {
	less := func(a, b FlowKey) bool {
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstPort < b.DstPort
	}
	// Insertion sort: key counts are small (flows per capture).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// Reassembler restores per-flow payload streams from segments arriving
// in capture order, tolerating reordering and duplicates. Contiguous
// bytes are delivered to the sink exactly once, in stream order — the
// contract vpatch.StreamScanner needs.
type Reassembler struct {
	sink  func(FlowKey, []byte)
	flows map[FlowKey]*flowState
}

type flowState struct {
	next    uint32            // next expected stream offset
	pending map[uint32][]byte // out-of-order segments by Seq
}

// NewReassembler creates a reassembler delivering contiguous payload
// slices per flow to sink.
func NewReassembler(sink func(FlowKey, []byte)) *Reassembler {
	return &Reassembler{sink: sink, flows: make(map[FlowKey]*flowState)}
}

// Add processes one captured segment.
func (r *Reassembler) Add(seg Segment) {
	st := r.flows[seg.Flow]
	if st == nil {
		st = &flowState{pending: make(map[uint32][]byte)}
		r.flows[seg.Flow] = st
	}
	switch {
	case seg.Seq == st.next:
		r.sink(seg.Flow, seg.Payload)
		st.next += uint32(len(seg.Payload))
		// Drain any now-contiguous pending segments.
		for {
			p, ok := st.pending[st.next]
			if !ok {
				break
			}
			delete(st.pending, st.next)
			r.sink(seg.Flow, p)
			st.next += uint32(len(p))
		}
	case seg.Seq > st.next:
		// Out of order: buffer (last write wins on duplicates).
		st.pending[seg.Seq] = seg.Payload
	default:
		// seg.Seq < next: duplicate or overlap of delivered data.
		end := seg.Seq + uint32(len(seg.Payload))
		if end > st.next {
			// Partial overlap: deliver only the new tail.
			r.sink(seg.Flow, seg.Payload[st.next-seg.Seq:])
			st.next = end
		}
	}
}

// PendingBytes returns the number of buffered out-of-order bytes across
// all flows (diagnostic; nonzero after a capture usually means loss).
func (r *Reassembler) PendingBytes() int {
	n := 0
	for _, st := range r.flows {
		for _, p := range st.pending {
			n += len(p)
		}
	}
	return n
}

// Flows returns the number of flows seen.
func (r *Reassembler) Flows() int { return len(r.flows) }
