// Package netsim is the network substrate of the reproduction: the
// paper's system model assumes the matcher runs inside a NIDS over "the
// reassembled protocol stream of the packets on the monitored network".
// This package provides that pipeline end to end on synthetic traffic:
// packetizing byte streams into TCP-like segments across interleaved
// flows, writing/reading libpcap files, and reassembling per-flow
// payload streams that feed the matchers (via vpatch.StreamScanner).
//
// The segment model is deliberately minimal — five-tuple, sequence
// number, payload, FIN/RST flags — because the matching algorithms only
// care about the reassembled payload order; IP/TCP header parsing
// fidelity is out of scope (DESIGN.md §2).
//
// # Flow lifecycle and memory bounds
//
// Real traffic is not polite: flows end (FIN/RST), packets go missing
// forever, and attackers can deliberately open holes that would buffer
// unbounded out-of-order data. The Reassembler therefore manages
// connection lifecycle explicitly:
//
//   - Teardown: a FIN segment marks the end of the stream; once every
//     byte up to the FIN has been delivered the flow is closed. RST
//     closes immediately, dropping buffered data. Closed flows keep a
//     cheap tombstone so late retransmits are dropped instead of being
//     misread as a new stream.
//   - Eviction: SetLimits arms a hard cap on tracked flows and an idle
//     timeout driven by capture timestamps (an LRU list orders flows by
//     last activity). Evicting an open flow drops its buffered bytes
//     and notifies the OnClose hook.
//   - Pending budgets: out-of-order bytes are bounded per flow and
//     globally. The drop policy is explicit: for a live (delivering)
//     stream the per-flow budget keeps the bytes nearest the
//     reassembly point (segments furthest from the next expected byte
//     are dropped first, which may be the arriving segment itself) and
//     never splices a gap; the global budget drops the arriving
//     segment. Every dropped byte is counted in Stats.BytesDropped.
//     A flow that fills its budget before delivering anything joined
//     mid-stream (capture started mid-flow, or it was evicted and came
//     back) — it re-synchronizes instead, resuming at its nearest
//     buffered bytes (Stats.GapSkips), so evicted flows keep being
//     scanned rather than black-holing.
//
// Buffered out-of-order payloads are copied into reassembler-owned
// memory (recycled on drain), so callers may reuse their read buffer
// between Add calls — the pcap replay loop does. Sequence-number
// comparisons are wraparound-safe (serial arithmetic, RFC 1982 style),
// so streams longer than 4 GiB reassemble correctly as long as the
// reordering window stays under 2 GiB.
package netsim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"vpatch/internal/arena"
	"vpatch/internal/metrics"
)

// FlowKey identifies one unidirectional flow (the reassembly unit).
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", ipString(k.SrcIP), k.SrcPort, ipString(k.DstIP), k.DstPort)
}

// Hash returns a well-mixed hash of the flow key (FNV-1a over its
// fields) — the partition function multi-shard pipelines use to assign
// flows to workers. All segments of one flow hash identically.
func (k FlowKey) Hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, w := range [3]uint32{k.SrcIP, k.DstIP, uint32(k.SrcPort)<<16 | uint32(k.DstPort)} {
		for shift := 0; shift < 32; shift += 8 {
			h ^= w >> shift & 0xFF
			h *= prime32
		}
	}
	return h
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, ip>>16&0xFF, ip>>8&0xFF, ip&0xFF)
}

// TCP-style segment flags (bit positions match the TCP header's flag
// byte, so pcap round-trips preserve them).
const (
	// FlagFIN marks the sender's last segment: the stream ends at
	// Seq+len(Payload).
	FlagFIN uint8 = 0x01
	// FlagRST aborts the connection immediately; buffered out-of-order
	// data is discarded.
	FlagRST uint8 = 0x04
)

// Segment is one TCP-like segment of a flow.
type Segment struct {
	Flow FlowKey
	// Seq is the byte offset of Payload within the flow's stream
	// (wraps modulo 2^32 on long streams).
	Seq uint32
	// Payload is the application bytes carried by this segment.
	Payload []byte
	// TsMicros is the capture timestamp in microseconds.
	TsMicros uint64
	// Flags carries the TCP-style connection-lifecycle flags
	// (FlagFIN, FlagRST).
	Flags uint8

	// own, when set, is the arena chunk backing Payload: the segment
	// owns one reference and whoever consumes the payload releases it
	// (see SetOwned/ReleasePayload). nil for plain heap payloads.
	own *arena.Buf
}

// SetOwned marks Payload as backed by the arena chunk b, transferring
// one reference into the segment. Downstream consumers (the dispatch
// pipeline) release it once the payload has been absorbed, recycling
// the chunk — the zero-copy capture→dispatcher→reassembler handoff.
func (s *Segment) SetOwned(b *arena.Buf) { s.own = b }

// Owned reports whether the segment carries an arena-backed payload
// with a release hook, i.e. whether ownership (not just a view) of the
// buffer transfers with the segment.
func (s *Segment) Owned() bool { return s.own != nil }

// OwnedBuf returns the arena chunk backing Payload, or nil.
func (s *Segment) OwnedBuf() *arena.Buf { return s.own }

// ReleasePayload drops the segment's payload reference: for owned
// segments the arena chunk is released (and Payload nilled — the bytes
// may be recycled immediately); for unowned segments it is a no-op.
// Each owned segment must be released exactly once.
func (s *Segment) ReleasePayload() {
	if s.own == nil {
		return
	}
	b := s.own
	s.own = nil
	s.Payload = nil
	b.Release()
}

// PacketizeOptions controls stream segmentation.
type PacketizeOptions struct {
	// MTU bounds the payload bytes per segment (default 1460, Ethernet
	// TCP MSS).
	MTU int
	// Jitter reorders segments within a window of this many packets
	// (0 = in-order). Reassembly must restore stream order.
	Jitter int
	// DuplicateFrac duplicates this fraction of segments (retransmits).
	DuplicateFrac float64
	// OverlapFrac makes this fraction of segments partially re-send
	// already-sent bytes (the segment's range is extended backward), as
	// overlapping TCP retransmissions do. Reassembly must deliver each
	// stream byte exactly once.
	OverlapFrac float64
	// FIN marks each flow's final segment with FlagFIN, so reassembly
	// exercises connection teardown.
	FIN bool
	// Seed drives segmentation sizes, reordering, duplication and
	// overlap.
	Seed int64
}

// Packetize splits each stream into segments for its flow and interleaves
// all flows into one capture-ordered sequence, optionally with
// reordering, duplicates and overlapping retransmits. streams[i] becomes
// flows[i]'s payload.
func Packetize(streams map[FlowKey][]byte, opt PacketizeOptions) []Segment {
	mtu := opt.MTU
	if mtu <= 0 {
		mtu = 1460
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Split each stream into its segments.
	perFlow := make(map[FlowKey][]Segment)
	keys := make([]FlowKey, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	// Deterministic flow order for the interleaver.
	sortKeys(keys)
	nonEmpty := 0
	for _, k := range keys {
		data := streams[k]
		var segs []Segment
		for pos := 0; pos < len(data); {
			n := 1 + rng.Intn(mtu)
			if pos+n > len(data) {
				n = len(data) - pos
			}
			start := pos
			if opt.OverlapFrac > 0 && pos > 0 && rng.Float64() < opt.OverlapFrac {
				// Extend the segment backward over already-sent bytes,
				// keeping the payload within the MTU.
				maxBack := pos
				if maxBack > mtu-n {
					maxBack = mtu - n
				}
				if maxBack > 0 {
					start = pos - (1 + rng.Intn(maxBack))
				}
			}
			segs = append(segs, Segment{Flow: k, Seq: uint32(start), Payload: data[start : pos+n]})
			pos += n
		}
		if opt.FIN {
			if len(segs) == 0 {
				segs = append(segs, Segment{Flow: k, Flags: FlagFIN})
			} else {
				segs[len(segs)-1].Flags |= FlagFIN
			}
		}
		perFlow[k] = segs
		if len(segs) > 0 {
			nonEmpty++
		}
	}

	// Interleave: repeatedly pick a random flow with segments left.
	var out []Segment
	remaining := nonEmpty
	idx := make(map[FlowKey]int, len(keys))
	ts := uint64(1_000_000)
	for remaining > 0 {
		k := keys[rng.Intn(len(keys))]
		i := idx[k]
		segs := perFlow[k]
		if i >= len(segs) {
			continue
		}
		seg := segs[i]
		seg.TsMicros = ts
		ts += uint64(1 + rng.Intn(200))
		out = append(out, seg)
		idx[k] = i + 1
		if idx[k] == len(segs) {
			remaining--
		}
		if opt.DuplicateFrac > 0 && rng.Float64() < opt.DuplicateFrac {
			dup := seg
			dup.TsMicros = ts
			ts += 7
			out = append(out, dup)
		}
	}

	// Bounded reordering.
	if opt.Jitter > 0 {
		for i := range out {
			j := i + rng.Intn(opt.Jitter+1)
			if j < len(out) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func sortKeys(keys []FlowKey) {
	less := func(a, b FlowKey) bool {
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstPort < b.DstPort
	}
	// Insertion sort: key counts are small (flows per capture).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// seqBefore reports a < b in serial (wraparound-safe) sequence
// arithmetic: valid while |a-b| < 2^31.
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// Limits bounds the reassembler's memory. The zero value means
// unlimited everywhere — the polite-traffic mode small tests use;
// production pipelines should set every field.
type Limits struct {
	// MaxFlows caps tracked flows (including closed flows awaiting
	// tombstone expiry). When a new flow would exceed the cap the
	// least-recently-active flow is evicted. 0 = unlimited.
	MaxFlows int
	// IdleTimeoutMicros evicts flows with no activity for this many
	// capture-clock microseconds (the clock is the maximum segment
	// timestamp seen). 0 = never.
	IdleTimeoutMicros uint64
	// FlowPendingBytes caps buffered out-of-order bytes per flow. For a
	// flow that has already delivered in-order data, exceeding the
	// budget drops pending segments furthest from the next expected
	// byte first (the arriving segment itself, if it is the furthest) —
	// a live stream's gap is never spliced. A flow that fills the
	// budget before delivering anything joined mid-stream (capture
	// began mid-flow, or it was evicted and came back): it
	// re-synchronizes instead, delivering buffered runs nearest-first
	// and skipping the unfillable gaps (Stats.GapSkips counts these).
	// 0 = unlimited.
	FlowPendingBytes int
	// TotalPendingBytes caps buffered out-of-order bytes across all
	// flows; the arriving segment is dropped when it would exceed the
	// cap. 0 = unlimited.
	TotalPendingBytes int
}

// Stats reports the reassembler's lifecycle and drop counters.
type Stats struct {
	// Flows is the number of currently tracked flows, including closed
	// flows held as tombstones until they expire.
	Flows int
	// PeakFlows is the maximum number of simultaneously tracked flows.
	PeakFlows int
	// FlowsClosed counts normal teardowns (FIN completed or RST).
	FlowsClosed uint64
	// FlowsEvicted counts open flows dropped by the flow cap or idle
	// timeout.
	FlowsEvicted uint64
	// BytesDropped counts payload bytes discarded: out-of-order bytes
	// over budget, buffered bytes of evicted or reset flows, and
	// segments arriving after teardown.
	BytesDropped uint64
	// GapSkips counts sequence gaps abandoned by mid-stream
	// resynchronization (a flow that filled its reorder budget before
	// delivering any byte resumes at its nearest buffered data).
	GapSkips uint64
	// PendingBytes is the number of currently buffered out-of-order
	// bytes across all flows.
	PendingBytes int
}

// Add accumulates o into s; Flows/PendingBytes/PeakFlows sum (the
// shards of a partitioned pipeline hold disjoint flows).
func (s *Stats) Add(o Stats) {
	s.Flows += o.Flows
	s.PeakFlows += o.PeakFlows
	s.FlowsClosed += o.FlowsClosed
	s.FlowsEvicted += o.FlowsEvicted
	s.BytesDropped += o.BytesDropped
	s.GapSkips += o.GapSkips
	s.PendingBytes += o.PendingBytes
}

// AtomicStats is a concurrency-safe publication slot for one
// reassembler's Stats: the owning goroutine Stores its current stats at
// convenient points (flushes, batch boundaries) and any goroutine may
// Load the last published value — the mechanism resident services use
// to scrape flow-lifecycle gauges while the pipeline is running. Store
// and Load are field-wise atomic: a Load never tears a counter, though
// it may mix fields from two adjacent Stores (all counters are
// monotonic except the Flows/PendingBytes gauges, so scrape consumers
// still never observe a counter going backwards from one slot).
type AtomicStats struct {
	flows        atomic.Int64
	peakFlows    atomic.Int64
	flowsClosed  atomic.Uint64
	flowsEvicted atomic.Uint64
	bytesDropped atomic.Uint64
	gapSkips     atomic.Uint64
	pendingBytes atomic.Int64
}

// Store publishes s as the slot's current value.
func (a *AtomicStats) Store(s Stats) {
	a.flows.Store(int64(s.Flows))
	a.peakFlows.Store(int64(s.PeakFlows))
	a.flowsClosed.Store(s.FlowsClosed)
	a.flowsEvicted.Store(s.FlowsEvicted)
	a.bytesDropped.Store(s.BytesDropped)
	a.gapSkips.Store(s.GapSkips)
	a.pendingBytes.Store(int64(s.PendingBytes))
}

// Load returns the last published stats.
func (a *AtomicStats) Load() Stats {
	return Stats{
		Flows:        int(a.flows.Load()),
		PeakFlows:    int(a.peakFlows.Load()),
		FlowsClosed:  a.flowsClosed.Load(),
		FlowsEvicted: a.flowsEvicted.Load(),
		BytesDropped: a.bytesDropped.Load(),
		GapSkips:     a.gapSkips.Load(),
		PendingBytes: int(a.pendingBytes.Load()),
	}
}

// MergeInto folds the lifecycle counters into a metrics.Counters, so
// pipeline drivers report eviction/drop/peak figures alongside the
// matcher counters.
func (s Stats) MergeInto(c *metrics.Counters) {
	c.FlowsEvicted += s.FlowsEvicted
	c.BytesDropped += s.BytesDropped
	if p := uint64(s.PeakFlows); p > c.PeakFlows {
		c.PeakFlows = p
	}
}

// pseg is one buffered out-of-order segment; data is reassembler-owned
// (an arena chunk when the reassembler has one, see SetArena).
type pseg struct {
	seq  uint32
	data []byte
	buf  *arena.Buf
}

// flowState is the per-flow reassembly state. States are linked into an
// LRU list ordered by last activity; closed flows stay listed as
// tombstones (pending freed, closed set) until evicted or expired, so
// late retransmits are recognized and dropped.
type flowState struct {
	key  FlowKey
	next uint32 // next expected stream offset
	// pending holds out-of-order segments sorted by wrap-safe distance
	// from next (all are ahead of next by < 2^31).
	pending      []pseg
	pendingBytes int
	lastTs       uint64
	finSeq       uint32 // end-of-stream offset, valid when finSeen
	finSeen      bool
	closed       bool
	// delivered records whether any in-order byte ever reached the
	// sink: it separates a jittered young flow from a mid-stream joiner
	// when the reorder budget fills.
	delivered bool

	lruPrev, lruNext *flowState
}

// Reassembler restores per-flow payload streams from segments arriving
// in capture order, tolerating reordering, duplicates and overlaps.
// Contiguous bytes are delivered to the sink exactly once, in stream
// order — the contract vpatch.StreamScanner needs. Payload slices passed
// to the sink are only valid during the call (buffered segments live in
// recycled reassembler-owned memory).
//
// A Reassembler is single-goroutine; partition flows across several
// reassemblers for multi-core pipelines.
type Reassembler struct {
	sink    func(FlowKey, []byte)
	onClose func(FlowKey, bool)
	flows   map[FlowKey]*flowState
	limits  Limits

	// LRU list of flow states: lruHead is least recently active.
	lruHead, lruTail *flowState

	now          uint64 // capture clock: max timestamp seen
	totalPending int
	free         [][]byte     // recycled pending buffers (legacy, arena unset)
	arena        *arena.Local // when set, pending copies rent pooled chunks

	peakFlows    int
	flowsClosed  uint64
	flowsEvicted uint64
	bytesDropped uint64
	gapSkips     uint64
}

// maxFreeBufs bounds the recycled pending-buffer pool.
const maxFreeBufs = 64

// NewReassembler creates a reassembler delivering contiguous payload
// slices per flow to sink. It starts unlimited (see SetLimits) with no
// close hook (see OnClose).
func NewReassembler(sink func(FlowKey, []byte)) *Reassembler {
	return &Reassembler{sink: sink, flows: make(map[FlowKey]*flowState)}
}

// SetLimits arms the reassembler's memory bounds. It may be called at
// any time; tightened limits take effect on subsequent Adds.
func (r *Reassembler) SetLimits(l Limits) { r.limits = l }

// SetArena rebases the reassembler's out-of-order buffer recycling onto
// an arena: pending copies rent pooled chunks (returned to the shared
// pool on drain) instead of retaining private slabs. The Local must
// belong to the reassembler's goroutine; call before the first Add.
func (r *Reassembler) SetArena(l *arena.Local) { r.arena = l }

// OnClose registers a hook called whenever a flow stops being tracked
// while holding reassembly state: evicted reports true when the flow
// was dropped by the flow cap or idle timeout (the stream may be
// incomplete), false on normal FIN/RST teardown. Tombstone expiry of an
// already-closed flow does not call the hook again.
func (r *Reassembler) OnClose(fn func(k FlowKey, evicted bool)) { r.onClose = fn }

// Add processes one captured segment.
func (r *Reassembler) Add(seg Segment) {
	if seg.TsMicros > r.now {
		r.now = seg.TsMicros
	}
	st := r.flows[seg.Flow]
	if st == nil {
		if seg.Flags&FlagRST != 0 || len(seg.Payload) == 0 {
			// Control-only segment (RST, bare FIN, keepalive) for an
			// untracked flow: there is nothing to reassemble or tear
			// down, and creating state here would let spoofed control
			// floods churn live flows out of a capped table — so no
			// state, like any stateful middlebox dropping
			// out-of-state control packets.
			return
		}
		r.expireIdle()
		if r.limits.MaxFlows > 0 {
			for len(r.flows) >= r.limits.MaxFlows && r.lruHead != nil {
				r.evict(r.lruHead)
			}
		}
		// Streams start at Seq 0 in this model; a nonzero first arrival
		// is an out-of-order segment ahead of the origin.
		st = &flowState{key: seg.Flow, lastTs: r.now}
		r.flows[seg.Flow] = st
		r.lruPush(st)
		if len(r.flows) > r.peakFlows {
			r.peakFlows = len(r.flows)
		}
	} else {
		if st.closed {
			// Late retransmit after teardown: the stream already
			// ended. Deliberately no LRU touch — a retransmit flood
			// must not keep tombstones alive at the expense of live
			// flows; the tombstone expires on its teardown-time clock.
			r.bytesDropped += uint64(len(seg.Payload))
			r.expireIdle()
			return
		}
		st.lastTs = r.now
		r.lruTouch(st)
		r.expireIdle()
	}
	if seg.Flags&FlagRST != 0 {
		r.bytesDropped += uint64(len(seg.Payload))
		r.closeFlow(st)
		return
	}

	if len(seg.Payload) > 0 {
		switch d := int32(seg.Seq - st.next); {
		case d == 0:
			r.deliver(st, seg.Payload)
			st.next += uint32(len(seg.Payload))
			r.drain(st)
		case d > 0:
			r.buffer(st, seg.Seq, seg.Payload)
		default:
			// seg.Seq < next: duplicate or overlap of delivered data.
			end := seg.Seq + uint32(len(seg.Payload))
			if seqBefore(st.next, end) {
				// Partial overlap: deliver only the new tail.
				r.deliver(st, seg.Payload[st.next-seg.Seq:])
				st.next = end
				r.drain(st)
			}
		}
	}

	if seg.Flags&FlagFIN != 0 {
		st.finSeen = true
		st.finSeq = seg.Seq + uint32(len(seg.Payload))
	}
	if st.finSeen && !seqBefore(st.next, st.finSeq) {
		// Every byte up to the FIN has been delivered: normal teardown.
		r.closeFlow(st)
	}
}

// buffer stores one out-of-order segment in reassembler-owned memory,
// honouring the pending-byte budgets. On an exact duplicate of a
// buffered segment the longer payload wins; partial overlaps between
// pending segments are resolved at drain time (only novel suffixes are
// delivered).
func (r *Reassembler) buffer(st *flowState, seq uint32, payload []byte) {
	n := len(payload)

	// Dedup BEFORE budget enforcement: a retransmit of an
	// already-buffered segment is (mostly) a no-op and must not push
	// genuinely novel pending data out of the budget.
	i := len(st.pending)
	for i > 0 && seqBefore(seq, st.pending[i-1].seq) {
		i--
	}
	if i > 0 && st.pending[i-1].seq == seq {
		prev := &st.pending[i-1]
		delta := n - len(prev.data)
		if delta <= 0 {
			return // nothing new
		}
		// The replacement only grows the budget by its novel tail; if
		// that does not fit, keep the buffered original. Only the
		// novel tail is counted as dropped — the rest of the payload
		// stays buffered and will still be delivered.
		if lim := r.limits.TotalPendingBytes; lim > 0 && r.totalPending+delta > lim {
			r.bytesDropped += uint64(delta)
			return
		}
		if lim := r.limits.FlowPendingBytes; lim > 0 && st.pendingBytes+delta > lim {
			r.bytesDropped += uint64(delta)
			return
		}
		r.recycle(prev.data, prev.buf)
		prev.data, prev.buf = r.copyBuf(payload)
		st.pendingBytes += delta
		r.totalPending += delta
		return
	}

	if lim := r.limits.TotalPendingBytes; lim > 0 && r.totalPending+n > lim {
		r.bytesDropped += uint64(n)
		return
	}
	if lim := r.limits.FlowPendingBytes; lim > 0 && st.pendingBytes+n > lim {
		if n <= lim {
			// Keep the bytes nearest the reassembly point: drop
			// buffered segments further out than the arrival until it
			// fits. (When the arrival alone exceeds the budget nothing
			// is evicted — trading nearer data for a segment that can
			// never fit would only lose more.)
			for st.pendingBytes+n > lim && len(st.pending) > 0 {
				last := &st.pending[len(st.pending)-1]
				if !seqBefore(seq, last.seq) {
					break // the arrival is the furthest out
				}
				r.dropPending(st, len(st.pending)-1)
			}
		}
		switch {
		case st.pendingBytes+n <= lim:
			// Fits after the tail drops.
		case st.delivered:
			// A live stream's gap is never spliced: over budget, the
			// arrival is dropped — the explicit drop policy.
			r.bytesDropped += uint64(n)
			return
		default:
			// A flow that filled its reorder budget before delivering
			// a single byte is not merely jittered — it joined
			// mid-stream (the capture began mid-flow, or the flow was
			// evicted under pressure and came back), and the bytes
			// before its buffered data will never arrive.
			// Re-synchronize the way production stream engines do on
			// overflow: deliver the buffered runs nearest-first,
			// abandoning the unfillable gaps, until the arrival fits.
			for st.pendingBytes+n > lim && len(st.pending) > 0 && seqBefore(st.pending[0].seq, seq) {
				r.resyncGap(st)
			}
			if st.pendingBytes+n > lim && seqBefore(st.next, seq) {
				// Still over, with a gap left before the arrival:
				// anything nearer was just delivered, so the arrival
				// is next and can never be buffered whole. Skip
				// forward to it. (Never move next backward — resync
				// may already have delivered past the arrival's start,
				// and those bytes must not reach the sink twice; the
				// overlap branch below slices them off.)
				r.gapSkips++
				st.next = seq
			}
			if d := int32(seq - st.next); d <= 0 {
				// Resync reached (or passed) the arrival: deliver its
				// novel tail now instead of buffering.
				if end := seq + uint32(n); seqBefore(st.next, end) {
					r.deliver(st, payload[st.next-seq:])
					st.next = end
					r.drain(st)
				}
				return
			}
		}
	}

	// Sorted insert by distance from next (recomputed: budget handling
	// above may have dropped or delivered pending segments).
	i = len(st.pending)
	for i > 0 && seqBefore(seq, st.pending[i-1].seq) {
		i--
	}
	st.pending = append(st.pending, pseg{})
	copy(st.pending[i+1:], st.pending[i:])
	data, buf := r.copyBuf(payload)
	st.pending[i] = pseg{seq: seq, data: data, buf: buf}
	st.pendingBytes += n
	r.totalPending += n
}

// deliver hands contiguous stream bytes to the sink, marking the flow
// as having produced in-order data.
func (r *Reassembler) deliver(st *flowState, p []byte) {
	st.delivered = true
	r.sink(st.key, p)
}

// resyncGap abandons the unfillable sequence gap before the nearest
// buffered segment: the stream resumes there and the now-contiguous run
// is delivered. Bytes in the gap were never received; matches spanning
// it are lost — the price of bounded memory, and the same call
// production stream reassemblers make on reorder-buffer overflow.
func (r *Reassembler) resyncGap(st *flowState) {
	if len(st.pending) == 0 {
		return
	}
	r.gapSkips++
	st.next = st.pending[0].seq
	r.drain(st)
}

// drain delivers every buffered segment that has become contiguous,
// including segments that merely overlap the drain point (only their
// novel suffix is delivered; fully subsumed segments are discarded).
func (r *Reassembler) drain(st *flowState) {
	i := 0
	for i < len(st.pending) {
		p := &st.pending[i]
		if seqBefore(st.next, p.seq) {
			break // gap before the nearest pending segment
		}
		end := p.seq + uint32(len(p.data))
		if seqBefore(st.next, end) {
			r.deliver(st, p.data[st.next-p.seq:])
			st.next = end
		}
		st.pendingBytes -= len(p.data)
		r.totalPending -= len(p.data)
		r.recycle(p.data, p.buf)
		p.data, p.buf = nil, nil
		i++
	}
	if i > 0 {
		st.pending = st.pending[:copy(st.pending, st.pending[i:])]
	}
}

// dropPending discards the buffered segment at index i, counting its
// bytes as dropped.
func (r *Reassembler) dropPending(st *flowState, i int) {
	p := st.pending[i]
	st.pendingBytes -= len(p.data)
	r.totalPending -= len(p.data)
	r.bytesDropped += uint64(len(p.data))
	r.recycle(p.data, p.buf)
	st.pending = append(st.pending[:i], st.pending[i+1:]...)
}

// closeFlow performs normal teardown: buffered data past the end of the
// stream is discarded and the state becomes a tombstone (kept in the
// map and LRU so late retransmits are dropped, expired like any idle
// flow).
func (r *Reassembler) closeFlow(st *flowState) {
	r.freePending(st, true)
	st.closed = true
	st.finSeen = false
	r.flowsClosed++
	if r.onClose != nil {
		r.onClose(st.key, false)
	}
}

// evict removes a flow outright — the cap/idle-timeout path. Open flows
// count as evicted and fire the hook; closed tombstones just expire.
func (r *Reassembler) evict(st *flowState) {
	open := !st.closed
	r.freePending(st, open)
	r.lruRemove(st)
	delete(r.flows, st.key)
	if open {
		r.flowsEvicted++
		if r.onClose != nil {
			r.onClose(st.key, true)
		}
	}
}

// freePending discards all buffered segments of st, optionally counting
// them as dropped data.
func (r *Reassembler) freePending(st *flowState, countDropped bool) {
	for i := range st.pending {
		p := &st.pending[i]
		if countDropped {
			r.bytesDropped += uint64(len(p.data))
		}
		r.totalPending -= len(p.data)
		r.recycle(p.data, p.buf)
	}
	st.pending = nil
	st.pendingBytes = 0
}

// expireIdle evicts flows (and expires tombstones) whose last activity
// is older than the idle timeout on the capture clock.
func (r *Reassembler) expireIdle() {
	lim := r.limits.IdleTimeoutMicros
	if lim == 0 {
		return
	}
	for r.lruHead != nil && r.now-r.lruHead.lastTs > lim {
		r.evict(r.lruHead)
	}
}

// copyBuf copies payload into reassembler-owned memory: an arena chunk
// when SetArena was called (returned alongside the data for release on
// drain), else a buffer from the legacy private free list.
func (r *Reassembler) copyBuf(payload []byte) ([]byte, *arena.Buf) {
	if r.arena != nil {
		b := r.arena.Rent(len(payload))
		data := b.Data()[:len(payload)]
		copy(data, payload)
		return data, b
	}
	var buf []byte
	if k := len(r.free); k > 0 {
		buf = r.free[k-1]
		r.free = r.free[:k-1]
	}
	return append(buf[:0], payload...), nil
}

// recycle returns a pending buffer: arena chunks go back to the pool,
// legacy buffers to the private free list.
func (r *Reassembler) recycle(data []byte, b *arena.Buf) {
	if b != nil {
		if r.arena != nil {
			r.arena.Release(b)
		} else {
			b.Release()
		}
		return
	}
	if data != nil && len(r.free) < maxFreeBufs {
		r.free = append(r.free, data[:0])
	}
}

// lruPush appends st as the most recently active flow.
func (r *Reassembler) lruPush(st *flowState) {
	st.lruPrev = r.lruTail
	st.lruNext = nil
	if r.lruTail != nil {
		r.lruTail.lruNext = st
	} else {
		r.lruHead = st
	}
	r.lruTail = st
}

func (r *Reassembler) lruRemove(st *flowState) {
	if st.lruPrev != nil {
		st.lruPrev.lruNext = st.lruNext
	} else {
		r.lruHead = st.lruNext
	}
	if st.lruNext != nil {
		st.lruNext.lruPrev = st.lruPrev
	} else {
		r.lruTail = st.lruPrev
	}
	st.lruPrev, st.lruNext = nil, nil
}

func (r *Reassembler) lruTouch(st *flowState) {
	if r.lruTail == st {
		return
	}
	r.lruRemove(st)
	r.lruPush(st)
}

// Stats returns the lifecycle and drop counters.
func (r *Reassembler) Stats() Stats {
	return Stats{
		Flows:        len(r.flows),
		PeakFlows:    r.peakFlows,
		FlowsClosed:  r.flowsClosed,
		FlowsEvicted: r.flowsEvicted,
		BytesDropped: r.bytesDropped,
		GapSkips:     r.gapSkips,
		PendingBytes: r.totalPending,
	}
}

// PendingBytes returns the number of buffered out-of-order bytes across
// all flows (diagnostic; nonzero after a capture usually means loss).
func (r *Reassembler) PendingBytes() int { return r.totalPending }

// Flows returns the number of flows tracked, including closed flows
// awaiting tombstone expiry.
func (r *Reassembler) Flows() int { return len(r.flows) }
