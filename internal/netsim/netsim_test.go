package netsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vpatch/internal/metrics"
	"vpatch/internal/traffic"
)

func testFlows(n int, size int, seed int64) map[FlowKey][]byte {
	flows := make(map[FlowKey][]byte, n)
	for i := 0; i < n; i++ {
		key := FlowKey{
			SrcIP: 0x0A000001 + uint32(i), DstIP: 0xC0A80001,
			SrcPort: uint16(40000 + i), DstPort: 80,
		}
		flows[key] = traffic.Synthesize(traffic.ISCXDay2, size, seed+int64(i), nil)
	}
	return flows
}

// reassembleAll runs segments through a Reassembler and returns the
// per-flow byte streams.
func reassembleAll(segs []Segment) map[FlowKey][]byte {
	out := make(map[FlowKey][]byte)
	r := NewReassembler(func(k FlowKey, p []byte) {
		out[k] = append(out[k], p...)
	})
	for _, s := range segs {
		r.Add(s)
	}
	return out
}

func TestPacketizeCoversAllBytesInOrder(t *testing.T) {
	flows := testFlows(3, 8<<10, 1)
	segs := Packetize(flows, PacketizeOptions{Seed: 2})
	got := reassembleAll(segs)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: reassembly mismatch (%d vs %d bytes)", k, len(got[k]), len(want))
		}
	}
}

func TestPacketizeRespectsMTU(t *testing.T) {
	flows := testFlows(1, 32<<10, 3)
	segs := Packetize(flows, PacketizeOptions{MTU: 512, Seed: 1})
	for _, s := range segs {
		if len(s.Payload) > 512 {
			t.Fatalf("segment payload %d exceeds MTU", len(s.Payload))
		}
		if len(s.Payload) == 0 {
			t.Fatal("empty segment")
		}
	}
}

func TestPacketizeDeterministic(t *testing.T) {
	flows := testFlows(2, 4<<10, 5)
	a := Packetize(flows, PacketizeOptions{Seed: 7, Jitter: 4})
	b := Packetize(flows, PacketizeOptions{Seed: 7, Jitter: 4})
	if len(a) != len(b) {
		t.Fatal("same seed produced different segment counts")
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Flow != b[i].Flow {
			t.Fatal("same seed produced different segmentation")
		}
	}
}

func TestReassemblyUnderReorderingAndDuplicates(t *testing.T) {
	flows := testFlows(4, 16<<10, 9)
	segs := Packetize(flows, PacketizeOptions{
		MTU: 700, Jitter: 8, DuplicateFrac: 0.1, Seed: 11,
	})
	got := reassembleAll(segs)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: stream corrupted by reorder/dup handling", k)
		}
	}
}

func TestReassemblerOverlapTail(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abcdef")})
	// Retransmit overlapping delivered data but extending beyond it.
	r.Add(Segment{Flow: key, Seq: 4, Payload: []byte("efGHI")})
	if string(out) != "abcdefGHI" {
		t.Fatalf("overlap handling produced %q", out)
	}
	// Full duplicate of delivered data: ignored.
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abc")})
	if string(out) != "abcdefGHI" {
		t.Fatalf("duplicate re-delivered: %q", out)
	}
}

func TestReassemblerDiagnostics(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	r := NewReassembler(func(FlowKey, []byte) {})
	r.Add(Segment{Flow: key, Seq: 100, Payload: []byte("hole")})
	if r.PendingBytes() != 4 {
		t.Fatalf("PendingBytes = %d", r.PendingBytes())
	}
	if r.Flows() != 1 {
		t.Fatalf("Flows = %d", r.Flows())
	}
}

// TestReassemblerCopiesBufferedSegments: a caller reusing its read
// buffer between Adds (every real pcap loop does) must not corrupt
// buffered out-of-order segments — the reassembler owns its pending
// memory.
func TestReassemblerCopiesBufferedSegments(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	buf := make([]byte, 4)
	copy(buf, "WXYZ")
	r.Add(Segment{Flow: key, Seq: 4, Payload: buf}) // buffered out of order
	copy(buf, "!!!!")                               // caller reuses its buffer
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abcd")})
	if string(out) != "abcdWXYZ" {
		t.Fatalf("buffer reuse corrupted pending data: %q", out)
	}
}

// TestDrainOverlappingPending: a buffered segment whose range overlaps
// the drain point (Seq < next < Seq+len) must still drain — only its
// novel suffix, exactly once.
func TestDrainOverlappingPending(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.Add(Segment{Flow: key, Seq: 2, Payload: []byte("cdef")}) // pending
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abcd")})
	if string(out) != "abcdef" {
		t.Fatalf("overlapping pending segment mis-drained: %q", out)
	}
	if r.PendingBytes() != 0 {
		t.Fatalf("PendingBytes leaked: %d", r.PendingBytes())
	}
	// A pending segment fully subsumed by the drain point is discarded.
	r.Add(Segment{Flow: key, Seq: 8, Payload: []byte("c")})    // pending
	r.Add(Segment{Flow: key, Seq: 6, Payload: []byte("abcd")}) // covers it
	if string(out) != "abcdefabcd" || r.PendingBytes() != 0 {
		t.Fatalf("subsumed pending segment mishandled: %q, pending %d", out, r.PendingBytes())
	}
}

// TestSeqWraparound: sequence comparisons are serial-arithmetic safe,
// so a stream whose offsets wrap past 2^32 keeps reassembling — with
// out-of-order and overlapping segments straddling the wrap point.
func TestSeqWraparound(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("s")})
	out = out[:0]
	// Fast-forward the flow to just before the 32-bit wrap, as a 4 GiB
	// stream would be.
	base := uint32(0xFFFFFF80)
	r.flows[key].next = base

	data := make([]byte, 512) // crosses the wrap at offset 128
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	var segs []Segment
	for pos := 0; pos < len(data); pos += 64 {
		segs = append(segs, Segment{Flow: key, Seq: base + uint32(pos), Payload: data[pos : pos+64]})
	}
	// Overlapping retransmit straddling the wrap point itself.
	segs = append(segs, Segment{Flow: key, Seq: base + 96, Payload: data[96:160]})
	rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	for _, s := range segs {
		r.Add(s)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("wraparound stream corrupted: %d bytes vs %d", len(out), len(data))
	}
	if r.PendingBytes() != 0 {
		t.Fatalf("PendingBytes = %d after wrap", r.PendingBytes())
	}
	if got := r.flows[key].next; got != base+512 {
		t.Fatalf("next = %#x, want %#x", got, base+512)
	}
}

// TestPendingBudgets: for a live (delivering) stream, out-of-order
// bytes over the per-flow budget drop the segments furthest from the
// reassembly point first — gaps are never spliced; the global budget
// drops arrivals. Every dropped byte is counted.
func TestPendingBudgets(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.SetLimits(Limits{FlowPendingBytes: 80})

	pay := func(n int, b byte) []byte { return bytes.Repeat([]byte{b}, n) }
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("Z")}) // live stream
	r.Add(Segment{Flow: key, Seq: 10, Payload: pay(50, 'A')})
	// Over budget and further out than everything buffered: dropped.
	r.Add(Segment{Flow: key, Seq: 300, Payload: pay(60, 'B')})
	if got := r.Stats().BytesDropped; got != 60 {
		t.Fatalf("BytesDropped = %d, want 60 (far arrival)", got)
	}
	// Over budget but nearer than the buffered segment: the far one is
	// dropped to make room.
	r.Add(Segment{Flow: key, Seq: 2, Payload: pay(40, 'C')})
	if got := r.Stats().BytesDropped; got != 110 {
		t.Fatalf("BytesDropped = %d, want 110 (far pending evicted)", got)
	}
	if r.PendingBytes() != 40 {
		t.Fatalf("PendingBytes = %d, want 40", r.PendingBytes())
	}
	// An arrival larger than the whole budget is dropped without
	// evicting anything buffered (it could never fit anyway).
	r.Add(Segment{Flow: key, Seq: 200, Payload: pay(100, 'E')})
	if got := r.Stats(); got.BytesDropped != 210 || got.PendingBytes != 40 {
		t.Fatalf("oversized arrival wiped the buffer: %+v", got)
	}
	r.Add(Segment{Flow: key, Seq: 1, Payload: pay(1, 'D')})
	if string(out) != "ZD"+string(pay(40, 'C')) {
		t.Fatalf("delivered %q", out)
	}
	if got := r.Stats().GapSkips; got != 0 {
		t.Fatalf("live stream was spliced: %d gap skips", got)
	}

	// Global budget: arrivals that would exceed it are dropped whole.
	var n int
	r2 := NewReassembler(func(_ FlowKey, p []byte) { n += len(p) })
	r2.SetLimits(Limits{TotalPendingBytes: 100})
	k2 := FlowKey{SrcIP: 9, DstIP: 2, SrcPort: 3, DstPort: 4}
	r2.Add(Segment{Flow: key, Seq: 10, Payload: pay(80, 'A')})
	r2.Add(Segment{Flow: k2, Seq: 10, Payload: pay(30, 'B')}) // 80+30 > 100
	if got := r2.Stats(); got.BytesDropped != 30 || got.PendingBytes != 80 {
		t.Fatalf("global budget: %+v", got)
	}
}

// TestMidstreamJoinerResyncs: a flow that fills its reorder budget
// without ever delivering a byte joined mid-stream — most importantly
// the continuation of an evicted flow. It must re-synchronize to its
// buffered data (and keep being scanned) instead of black-holing every
// subsequent segment as undeliverable pending bytes.
func TestMidstreamJoinerResyncs(t *testing.T) {
	flow := func(i int) FlowKey { return FlowKey{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4} }
	delivered := map[FlowKey]int{}
	r := NewReassembler(func(k FlowKey, p []byte) { delivered[k] += len(p) })
	r.SetLimits(Limits{MaxFlows: 1, FlowPendingBytes: 128})

	// Flow 1 delivers 256 bytes, then is evicted by flow 2.
	seg := func(k FlowKey, seq uint32, n int, ts uint64) Segment {
		return Segment{Flow: k, Seq: seq, Payload: bytes.Repeat([]byte{'x'}, n), TsMicros: ts}
	}
	r.Add(seg(flow(1), 0, 256, 1))
	r.Add(seg(flow(2), 0, 1, 2)) // evicts flow 1
	if st := r.Stats(); st.FlowsEvicted != 1 {
		t.Fatalf("setup: %+v", st)
	}
	// Flow 1's continuation: in-order 64-byte segments from seq 256.
	// The fresh state expects seq 0, which will never come; once the
	// reorder budget fills, the flow must resync and resume delivery.
	for i := 0; i < 8; i++ {
		r.Add(seg(flow(1), 256+uint32(i*64), 64, uint64(10+i)))
	}
	if got := delivered[flow(1)]; got != 256+8*64 {
		t.Fatalf("continuation black-holed: %d of %d bytes delivered", got, 256+8*64)
	}
	st := r.Stats()
	if st.GapSkips == 0 {
		t.Fatal("resync did not register a gap skip")
	}
	if st.PendingBytes != 0 {
		t.Fatalf("pending leaked after resync: %+v", st)
	}

	// An arrival alone exceeding the budget on a never-delivered flow:
	// delivered directly past the gap, without wiping nearer buffered
	// data that is ahead of it.
	out := map[FlowKey][]byte{}
	r2 := NewReassembler(func(k FlowKey, p []byte) { out[k] = append(out[k], p...) })
	r2.SetLimits(Limits{FlowPendingBytes: 100})
	r2.Add(Segment{Flow: flow(9), Seq: 500, Payload: bytes.Repeat([]byte{'B'}, 90)})
	r2.Add(Segment{Flow: flow(9), Seq: 200, Payload: bytes.Repeat([]byte{'A'}, 150)})
	if got := string(out[flow(9)]); got != strings.Repeat("A", 150) {
		t.Fatalf("oversized joiner arrival not delivered: %d bytes", len(got))
	}
	if st := r2.Stats(); st.PendingBytes != 90 || st.BytesDropped != 0 {
		t.Fatalf("nearer-data wipe: %+v", st)
	}
	// The buffered far segment still drains once the stream reaches it.
	r2.Add(Segment{Flow: flow(9), Seq: 350, Payload: bytes.Repeat([]byte{'C'}, 150)})
	if got := len(out[flow(9)]); got != 150+150+90 {
		t.Fatalf("far pending lost after resync: %d bytes", got)
	}

	// Exactly-once across resync: when the resynced buffered run ends
	// past the arrival's start, the overlapping prefix must not be
	// delivered twice.
	var out3 []byte
	r3 := NewReassembler(func(_ FlowKey, p []byte) { out3 = append(out3, p...) })
	r3.SetLimits(Limits{FlowPendingBytes: 100})
	r3.Add(Segment{Flow: flow(9), Seq: 950, Payload: bytes.Repeat([]byte{'P'}, 80)})
	r3.Add(Segment{Flow: flow(9), Seq: 1000, Payload: bytes.Repeat([]byte{'Q'}, 150)})
	want := strings.Repeat("P", 80) + strings.Repeat("Q", 120)
	if string(out3) != want {
		t.Fatalf("resync re-delivered overlap: %d bytes, want %d", len(out3), len(want))
	}
}

// TestFlowCapAndIdleEviction: the flow cap evicts the least recently
// active flow; the idle timeout expires flows on the capture clock.
// Both fire the OnClose hook with evicted=true.
func TestFlowCapAndIdleEviction(t *testing.T) {
	flow := func(i int) FlowKey { return FlowKey{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4} }
	var evicted []FlowKey
	r := NewReassembler(func(FlowKey, []byte) {})
	r.OnClose(func(k FlowKey, ev bool) {
		if !ev {
			t.Fatalf("cap eviction of %v reported as teardown", k)
		}
		evicted = append(evicted, k)
	})
	r.SetLimits(Limits{MaxFlows: 2})
	r.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("a"), TsMicros: 1})
	r.Add(Segment{Flow: flow(2), Seq: 0, Payload: []byte("b"), TsMicros: 2})
	r.Add(Segment{Flow: flow(1), Seq: 1, Payload: []byte("c"), TsMicros: 3}) // 1 now most recent
	r.Add(Segment{Flow: flow(3), Seq: 0, Payload: []byte("d"), TsMicros: 4})
	if len(evicted) != 1 || evicted[0] != flow(2) {
		t.Fatalf("evicted %v, want LRU flow 2", evicted)
	}
	st := r.Stats()
	if st.Flows != 2 || st.PeakFlows != 2 || st.FlowsEvicted != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Idle timeout: flow 1 idles past the deadline and is evicted when
	// the capture clock advances; its pending bytes count as dropped.
	evicted = nil
	r2 := NewReassembler(func(FlowKey, []byte) {})
	r2.OnClose(func(k FlowKey, ev bool) { evicted = append(evicted, k) })
	r2.SetLimits(Limits{IdleTimeoutMicros: 1000})
	r2.Add(Segment{Flow: flow(1), Seq: 5, Payload: []byte("hole"), TsMicros: 100})
	r2.Add(Segment{Flow: flow(2), Seq: 0, Payload: []byte("x"), TsMicros: 2000})
	if len(evicted) != 1 || evicted[0] != flow(1) {
		t.Fatalf("idle eviction got %v", evicted)
	}
	if st := r2.Stats(); st.FlowsEvicted != 1 || st.BytesDropped != 4 || st.PendingBytes != 0 {
		t.Fatalf("idle stats %+v", st)
	}
}

// TestDuplicateRetransmitKeepsNovelPending: an exact duplicate of an
// already-buffered segment must be discarded by dedup BEFORE budget
// enforcement — it must not evict genuinely novel pending data.
func TestDuplicateRetransmitKeepsNovelPending(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.SetLimits(Limits{FlowPendingBytes: 2048})
	segA := bytes.Repeat([]byte{'A'}, 1024)
	segB := bytes.Repeat([]byte{'B'}, 1024)
	r.Add(Segment{Flow: key, Seq: 100, Payload: segA})
	r.Add(Segment{Flow: key, Seq: 4000, Payload: segB})
	// Budget is exactly full; a duplicate of the first segment is a
	// no-op and must leave both buffered segments intact.
	r.Add(Segment{Flow: key, Seq: 100, Payload: segA})
	if st := r.Stats(); st.PendingBytes != 2048 || st.BytesDropped != 0 {
		t.Fatalf("duplicate retransmit disturbed the budget: %+v", st)
	}
	// A longer replacement whose delta does not fit keeps the original;
	// only the novel tail (6 bytes) counts as dropped — the rest stays
	// buffered and is still delivered.
	r.Add(Segment{Flow: key, Seq: 100, Payload: bytes.Repeat([]byte{'A'}, 1030)})
	if st := r.Stats(); st.PendingBytes != 2048 || st.BytesDropped != 6 {
		t.Fatalf("over-budget replacement mishandled: %+v", st)
	}
	// Both buffered segments still drain correctly.
	r.Add(Segment{Flow: key, Seq: 0, Payload: bytes.Repeat([]byte{'x'}, 100)})
	if len(out) != 100+1024 || !bytes.HasSuffix(out, segA) {
		t.Fatalf("drained %d bytes, want head+A", len(out))
	}
}

// TestTombstoneFloodDoesNotStarveLiveFlows: retransmits to a closed
// flow must not refresh its LRU position or idle clock — a replay
// flood would otherwise keep dead tombstones resident while live flows
// are evicted.
func TestTombstoneFloodDoesNotStarveLiveFlows(t *testing.T) {
	flow := func(i int) FlowKey { return FlowKey{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4} }
	r := NewReassembler(func(FlowKey, []byte) {})
	r.SetLimits(Limits{MaxFlows: 2})
	// flow 1 closes, flow 2 stays live.
	r.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("a"), Flags: FlagFIN, TsMicros: 1})
	r.Add(Segment{Flow: flow(2), Seq: 0, Payload: []byte("b"), TsMicros: 2})
	// Replay flood against the tombstone: dropped, and must NOT make
	// the tombstone most-recently-active.
	for i := 0; i < 4; i++ {
		r.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("a"), TsMicros: uint64(3 + i)})
	}
	// A new flow hits the cap: the tombstone must go, not the live flow.
	r.Add(Segment{Flow: flow(3), Seq: 0, Payload: []byte("c"), TsMicros: 10})
	if _, live := r.flows[flow(2)]; !live {
		t.Fatal("replay flood starved a live flow out of the table")
	}
	if _, dead := r.flows[flow(1)]; dead {
		t.Fatal("tombstone outlived a live flow under the cap")
	}
	if st := r.Stats(); st.FlowsEvicted != 0 {
		t.Fatalf("expiring the tombstone counted as eviction: %+v", st)
	}

	// Idle expiry runs on the teardown-time clock, unrefreshed by the
	// flood.
	r2 := NewReassembler(func(FlowKey, []byte) {})
	r2.SetLimits(Limits{IdleTimeoutMicros: 1000})
	r2.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("a"), Flags: FlagFIN, TsMicros: 100})
	r2.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("a"), TsMicros: 1050}) // replay
	r2.Add(Segment{Flow: flow(2), Seq: 0, Payload: []byte("b"), TsMicros: 1200})
	if _, dead := r2.flows[flow(1)]; dead {
		t.Fatal("replayed tombstone did not expire on its teardown clock")
	}
}

// TestTeardownAndTombstones: FIN closes a flow once the stream is fully
// delivered (even when the FIN segment arrives early), RST closes
// immediately dropping buffered data, and late retransmits after
// teardown are dropped instead of being misread as a new stream.
func TestTeardownAndTombstones(t *testing.T) {
	flow := func(i int) FlowKey { return FlowKey{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4} }
	var out []byte
	var closed []FlowKey
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.OnClose(func(k FlowKey, ev bool) {
		if ev {
			t.Fatalf("teardown of %v reported as eviction", k)
		}
		closed = append(closed, k)
	})

	// FIN arriving out of order: teardown waits for the full stream.
	r.Add(Segment{Flow: flow(1), Seq: 3, Payload: []byte("def"), Flags: FlagFIN})
	if len(closed) != 0 {
		t.Fatal("closed before the stream completed")
	}
	r.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("abc")})
	if string(out) != "abcdef" || len(closed) != 1 || closed[0] != flow(1) {
		t.Fatalf("FIN teardown: out=%q closed=%v", out, closed)
	}
	// Late retransmit after teardown: dropped, not re-delivered.
	r.Add(Segment{Flow: flow(1), Seq: 0, Payload: []byte("abc")})
	if string(out) != "abcdef" {
		t.Fatalf("tombstone failed, re-delivered: %q", out)
	}
	st := r.Stats()
	if st.FlowsClosed != 1 || st.BytesDropped != 3 || st.Flows != 1 {
		t.Fatalf("stats after FIN %+v", st)
	}

	// RST: immediate close, buffered bytes dropped.
	r.Add(Segment{Flow: flow(2), Seq: 10, Payload: []byte("zz")})
	r.Add(Segment{Flow: flow(2), Flags: FlagRST})
	if st := r.Stats(); st.FlowsClosed != 2 || st.BytesDropped != 5 || st.PendingBytes != 0 {
		t.Fatalf("stats after RST %+v", st)
	}
}

// TestStatsMergeInto: lifecycle counters fold into metrics.Counters
// (PeakFlows by max, the rest additive).
func TestStatsMergeInto(t *testing.T) {
	var c metrics.Counters
	Stats{FlowsEvicted: 3, BytesDropped: 100, PeakFlows: 7}.MergeInto(&c)
	Stats{FlowsEvicted: 2, BytesDropped: 10, PeakFlows: 5}.MergeInto(&c)
	if c.FlowsEvicted != 5 || c.BytesDropped != 110 || c.PeakFlows != 7 {
		t.Fatalf("merged counters %+v", c)
	}
}

// TestSpoofedControlFloodCreatesNoState: RSTs and bare FINs for
// untracked flows must not allocate flow state — otherwise a spoofed
// control flood with random 5-tuples churns live flows out of a capped
// table and fills it with tombstones.
func TestSpoofedControlFloodCreatesNoState(t *testing.T) {
	live := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var delivered int
	r := NewReassembler(func(_ FlowKey, p []byte) { delivered += len(p) })
	r.SetLimits(Limits{MaxFlows: 2})
	r.Add(Segment{Flow: live, Seq: 0, Payload: []byte("held"), TsMicros: 1})
	for i := 0; i < 100; i++ {
		k := FlowKey{SrcIP: uint32(1000 + i), DstIP: 9, SrcPort: uint16(i), DstPort: 80}
		r.Add(Segment{Flow: k, Flags: FlagRST, Payload: []byte("junk"), TsMicros: uint64(2 + i)})
		r.Add(Segment{Flow: k, Flags: FlagFIN, TsMicros: uint64(2 + i)})
	}
	st := r.Stats()
	if st.Flows != 1 || st.FlowsEvicted != 0 || st.FlowsClosed != 0 {
		t.Fatalf("control flood created state: %+v", st)
	}
	// The live flow survived and keeps reassembling.
	r.Add(Segment{Flow: live, Seq: 4, Payload: []byte("on"), TsMicros: 200})
	if delivered != 6 {
		t.Fatalf("live flow disturbed: %d bytes delivered", delivered)
	}
}

func TestFlowKeyHashPartitionsConsistently(t *testing.T) {
	k := FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80105, SrcPort: 1234, DstPort: 80}
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
	// Distinct flows should not trivially collide.
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		seen[FlowKey{SrcIP: uint32(i), DstIP: 9, SrcPort: uint16(i), DstPort: 80}.Hash()] = true
	}
	if len(seen) < 990 {
		t.Fatalf("hash collides heavily: %d distinct of 1000", len(seen))
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80105, SrcPort: 1234, DstPort: 80}
	s := k.String()
	if !strings.Contains(s, "10.0.0.1:1234") || !strings.Contains(s, "192.168.1.5:80") {
		t.Fatalf("FlowKey.String() = %q", s)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	flows := testFlows(3, 8<<10, 21)
	segs := Packetize(flows, PacketizeOptions{MTU: 900, Seed: 3, FIN: true})
	// A trailing bare RST exercises reset framing (the flow is already
	// FIN-closed, so reassembly below is unaffected).
	segs = append(segs, Segment{Flow: segs[0].Flow, Flags: FlagRST,
		TsMicros: segs[len(segs)-1].TsMicros + 1})
	var buf bytes.Buffer
	if err := WritePcap(&buf, segs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(segs) {
		t.Fatalf("round trip: %d vs %d segments", len(back), len(segs))
	}
	finSeen := false
	for i := range segs {
		if back[i].Flow != segs[i].Flow || back[i].Seq != segs[i].Seq ||
			back[i].TsMicros != segs[i].TsMicros ||
			back[i].Flags != segs[i].Flags ||
			!bytes.Equal(back[i].Payload, segs[i].Payload) {
			t.Fatalf("segment %d changed in round trip", i)
		}
		finSeen = finSeen || back[i].Flags&FlagFIN != 0
	}
	if !finSeen {
		t.Fatal("no FIN survived the pcap round trip")
	}
	// Reassembly of the reread capture restores the original streams.
	got := reassembleAll(back)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v corrupted through pcap", k)
		}
	}
}

func TestPcapHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("empty capture is %d bytes, want 24", len(b))
	}
	if b[0] != 0xD4 || b[1] != 0xC3 || b[2] != 0xB2 || b[3] != 0xA1 {
		t.Fatalf("little-endian magic wrong: % x", b[:4])
	}
}

func TestReadPcapErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := make([]byte, 24)
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestIPv4ChecksumVerifies(t *testing.T) {
	seg := Segment{Flow: FlowKey{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 1, DstPort: 2},
		Payload: []byte("x")}
	frame := appendFrame(nil, &seg)
	ip := frame[etherHdrLen : etherHdrLen+ipv4HdrLen]
	// Recomputing the checksum over the header including the stored
	// checksum must yield 0 (standard IPv4 verification).
	sum := uint32(0)
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Fatalf("IPv4 checksum does not verify: %#x", ^uint16(sum))
	}
}

// Property: for random flow contents and packetization parameters —
// including overlapping retransmits and FIN teardown — reassembly
// always restores the exact streams, every flow tears down, and no
// out-of-order bytes leak.
func TestPacketizeReassembleProperty(t *testing.T) {
	f := func(seed int64, jitterRaw uint8, dupRaw uint8, overlapRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		flows := make(map[FlowKey][]byte)
		for i := 0; i < 1+rng.Intn(4); i++ {
			data := make([]byte, 1+rng.Intn(4096))
			rng.Read(data)
			flows[FlowKey{SrcIP: uint32(i + 1), DstIP: 9, SrcPort: uint16(i), DstPort: 80}] = data
		}
		segs := Packetize(flows, PacketizeOptions{
			MTU:           64 + rng.Intn(1400),
			Jitter:        int(jitterRaw % 16),
			DuplicateFrac: float64(dupRaw%50) / 100,
			OverlapFrac:   float64(overlapRaw%60) / 100,
			FIN:           true,
			Seed:          seed,
		})
		out := make(map[FlowKey][]byte)
		r := NewReassembler(func(k FlowKey, p []byte) {
			out[k] = append(out[k], p...)
		})
		for _, s := range segs {
			r.Add(s)
		}
		for k, want := range flows {
			if !bytes.Equal(out[k], want) {
				return false
			}
		}
		st := r.Stats()
		return st.PendingBytes == 0 && st.FlowsClosed == uint64(len(flows)) &&
			st.FlowsEvicted == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicStatsRoundTrip: Store/Load must reproduce every field.
func TestAtomicStatsRoundTrip(t *testing.T) {
	want := Stats{Flows: 1, PeakFlows: 2, FlowsClosed: 3, FlowsEvicted: 4,
		BytesDropped: 5, GapSkips: 6, PendingBytes: 7}
	var a AtomicStats
	a.Store(want)
	if got := a.Load(); got != want {
		t.Fatalf("AtomicStats round trip: got %+v, want %+v", got, want)
	}
}

// TestAtomicStatsConcurrent: one publisher, many scrapers, race-free
// under -race, and the monotonic counters never go backwards.
func TestAtomicStatsConcurrent(t *testing.T) {
	var a AtomicStats
	done := make(chan struct{})
	go func() {
		defer close(done)
		var s Stats
		for i := 0; i < 2000; i++ {
			s.FlowsClosed++
			s.BytesDropped += 3
			s.Flows = i % 7
			a.Store(s)
		}
	}()
	var prev Stats
	for {
		got := a.Load()
		if got.FlowsClosed < prev.FlowsClosed || got.BytesDropped < prev.BytesDropped {
			t.Fatalf("monotonic counter went backwards: %+v after %+v", got, prev)
		}
		prev = got
		select {
		case <-done:
			if final := a.Load(); final.FlowsClosed != 2000 {
				t.Fatalf("final FlowsClosed = %d, want 2000", final.FlowsClosed)
			}
			return
		default:
		}
	}
}

// TestReadPcapPartial: a capture truncated mid-packet must yield the
// segments before the truncation point together with the error, so
// tools can analyze the readable prefix.
func TestReadPcapPartial(t *testing.T) {
	streams := map[FlowKey][]byte{
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80}: []byte(strings.Repeat("abcdef", 100)),
		{SrcIP: 4, DstIP: 5, SrcPort: 6, DstPort: 25}: []byte(strings.Repeat("xyzw", 120)),
	}
	segs := Packetize(streams, PacketizeOptions{MTU: 64, Seed: 7})
	var buf bytes.Buffer
	if err := WritePcap(&buf, segs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the last packet's body.
	cut := full[:len(full)-3]
	got, err := ReadPcap(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated capture must return an error")
	}
	if len(got) != len(segs)-1 {
		t.Fatalf("partial read returned %d segments, want %d", len(got), len(segs)-1)
	}
	for i := range got {
		if !bytes.Equal(got[i].Payload, segs[i].Payload) || got[i].Flow != segs[i].Flow {
			t.Fatalf("segment %d differs after partial read", i)
		}
	}
	// Header-level failure: no segments.
	bad := append([]byte{}, full...)
	bad[0] ^= 0xFF
	if got, err := ReadPcap(bytes.NewReader(bad)); err == nil || len(got) != 0 {
		t.Fatalf("bad magic: got %d segments, err %v", len(got), err)
	}
}
