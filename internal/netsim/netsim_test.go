package netsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vpatch/internal/traffic"
)

func testFlows(n int, size int, seed int64) map[FlowKey][]byte {
	flows := make(map[FlowKey][]byte, n)
	for i := 0; i < n; i++ {
		key := FlowKey{
			SrcIP: 0x0A000001 + uint32(i), DstIP: 0xC0A80001,
			SrcPort: uint16(40000 + i), DstPort: 80,
		}
		flows[key] = traffic.Synthesize(traffic.ISCXDay2, size, seed+int64(i), nil)
	}
	return flows
}

// reassembleAll runs segments through a Reassembler and returns the
// per-flow byte streams.
func reassembleAll(segs []Segment) map[FlowKey][]byte {
	out := make(map[FlowKey][]byte)
	r := NewReassembler(func(k FlowKey, p []byte) {
		out[k] = append(out[k], p...)
	})
	for _, s := range segs {
		r.Add(s)
	}
	return out
}

func TestPacketizeCoversAllBytesInOrder(t *testing.T) {
	flows := testFlows(3, 8<<10, 1)
	segs := Packetize(flows, PacketizeOptions{Seed: 2})
	got := reassembleAll(segs)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: reassembly mismatch (%d vs %d bytes)", k, len(got[k]), len(want))
		}
	}
}

func TestPacketizeRespectsMTU(t *testing.T) {
	flows := testFlows(1, 32<<10, 3)
	segs := Packetize(flows, PacketizeOptions{MTU: 512, Seed: 1})
	for _, s := range segs {
		if len(s.Payload) > 512 {
			t.Fatalf("segment payload %d exceeds MTU", len(s.Payload))
		}
		if len(s.Payload) == 0 {
			t.Fatal("empty segment")
		}
	}
}

func TestPacketizeDeterministic(t *testing.T) {
	flows := testFlows(2, 4<<10, 5)
	a := Packetize(flows, PacketizeOptions{Seed: 7, Jitter: 4})
	b := Packetize(flows, PacketizeOptions{Seed: 7, Jitter: 4})
	if len(a) != len(b) {
		t.Fatal("same seed produced different segment counts")
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Flow != b[i].Flow {
			t.Fatal("same seed produced different segmentation")
		}
	}
}

func TestReassemblyUnderReorderingAndDuplicates(t *testing.T) {
	flows := testFlows(4, 16<<10, 9)
	segs := Packetize(flows, PacketizeOptions{
		MTU: 700, Jitter: 8, DuplicateFrac: 0.1, Seed: 11,
	})
	got := reassembleAll(segs)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v: stream corrupted by reorder/dup handling", k)
		}
	}
}

func TestReassemblerOverlapTail(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	var out []byte
	r := NewReassembler(func(_ FlowKey, p []byte) { out = append(out, p...) })
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abcdef")})
	// Retransmit overlapping delivered data but extending beyond it.
	r.Add(Segment{Flow: key, Seq: 4, Payload: []byte("efGHI")})
	if string(out) != "abcdefGHI" {
		t.Fatalf("overlap handling produced %q", out)
	}
	// Full duplicate of delivered data: ignored.
	r.Add(Segment{Flow: key, Seq: 0, Payload: []byte("abc")})
	if string(out) != "abcdefGHI" {
		t.Fatalf("duplicate re-delivered: %q", out)
	}
}

func TestReassemblerDiagnostics(t *testing.T) {
	key := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	r := NewReassembler(func(FlowKey, []byte) {})
	r.Add(Segment{Flow: key, Seq: 100, Payload: []byte("hole")})
	if r.PendingBytes() != 4 {
		t.Fatalf("PendingBytes = %d", r.PendingBytes())
	}
	if r.Flows() != 1 {
		t.Fatalf("Flows = %d", r.Flows())
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80105, SrcPort: 1234, DstPort: 80}
	s := k.String()
	if !strings.Contains(s, "10.0.0.1:1234") || !strings.Contains(s, "192.168.1.5:80") {
		t.Fatalf("FlowKey.String() = %q", s)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	flows := testFlows(3, 8<<10, 21)
	segs := Packetize(flows, PacketizeOptions{MTU: 900, Seed: 3})
	var buf bytes.Buffer
	if err := WritePcap(&buf, segs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(segs) {
		t.Fatalf("round trip: %d vs %d segments", len(back), len(segs))
	}
	for i := range segs {
		if back[i].Flow != segs[i].Flow || back[i].Seq != segs[i].Seq ||
			back[i].TsMicros != segs[i].TsMicros ||
			!bytes.Equal(back[i].Payload, segs[i].Payload) {
			t.Fatalf("segment %d changed in round trip", i)
		}
	}
	// Reassembly of the reread capture restores the original streams.
	got := reassembleAll(back)
	for k, want := range flows {
		if !bytes.Equal(got[k], want) {
			t.Fatalf("flow %v corrupted through pcap", k)
		}
	}
}

func TestPcapHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("empty capture is %d bytes, want 24", len(b))
	}
	if b[0] != 0xD4 || b[1] != 0xC3 || b[2] != 0xB2 || b[3] != 0xA1 {
		t.Fatalf("little-endian magic wrong: % x", b[:4])
	}
}

func TestReadPcapErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := make([]byte, 24)
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestIPv4ChecksumVerifies(t *testing.T) {
	seg := Segment{Flow: FlowKey{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 1, DstPort: 2},
		Payload: []byte("x")}
	frame := appendFrame(nil, &seg)
	ip := frame[etherHdrLen : etherHdrLen+ipv4HdrLen]
	// Recomputing the checksum over the header including the stored
	// checksum must yield 0 (standard IPv4 verification).
	sum := uint32(0)
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Fatalf("IPv4 checksum does not verify: %#x", ^uint16(sum))
	}
}

// Property: for random flow contents and packetization parameters,
// reassembly always restores the exact streams.
func TestPacketizeReassembleProperty(t *testing.T) {
	f := func(seed int64, jitterRaw uint8, dupRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		flows := make(map[FlowKey][]byte)
		for i := 0; i < 1+rng.Intn(4); i++ {
			data := make([]byte, 1+rng.Intn(4096))
			rng.Read(data)
			flows[FlowKey{SrcIP: uint32(i + 1), DstIP: 9, SrcPort: uint16(i), DstPort: 80}] = data
		}
		segs := Packetize(flows, PacketizeOptions{
			MTU:           64 + rng.Intn(1400),
			Jitter:        int(jitterRaw % 16),
			DuplicateFrac: float64(dupRaw%50) / 100,
			Seed:          seed,
		})
		got := reassembleAll(segs)
		for k, want := range flows {
			if !bytes.Equal(got[k], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
