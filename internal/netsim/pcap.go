package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Minimal libpcap (tcpdump) file support, stdlib only. Segments are
// framed as Ethernet + IPv4 + TCP so the generated captures open in
// standard tools; ReadPcap inverts exactly the frames WritePcap emits
// (it is a capture-replay loop for this repository, not a general pcap
// parser).

const (
	pcapMagic     = 0xA1B2C3D4
	pcapVerMajor  = 2
	pcapVerMinor  = 4
	linkEthernet  = 1
	etherIPv4     = 0x0800
	ipProtoTCP    = 6
	etherHdrLen   = 14
	ipv4HdrLen    = 20
	tcpHdrLen     = 20
	maxSnapLen    = 262144
	frameOverhead = etherHdrLen + ipv4HdrLen + tcpHdrLen
)

// WritePcap writes segments as a libpcap capture.
func WritePcap(w io.Writer, segs []Segment) error {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagic)
	le.PutUint16(hdr[4:], pcapVerMajor)
	le.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone=0, sigfigs=0
	le.PutUint32(hdr[16:], maxSnapLen)
	le.PutUint32(hdr[20:], linkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netsim: pcap header: %w", err)
	}
	frame := make([]byte, 0, frameOverhead+2048)
	for i := range segs {
		frame = appendFrame(frame[:0], &segs[i])
		var ph [16]byte
		le.PutUint32(ph[0:], uint32(segs[i].TsMicros/1_000_000))
		le.PutUint32(ph[4:], uint32(segs[i].TsMicros%1_000_000))
		le.PutUint32(ph[8:], uint32(len(frame)))
		le.PutUint32(ph[12:], uint32(len(frame)))
		if _, err := w.Write(ph[:]); err != nil {
			return fmt.Errorf("netsim: packet header: %w", err)
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("netsim: packet body: %w", err)
		}
	}
	return nil
}

// appendFrame renders Ethernet+IPv4+TCP headers plus payload.
func appendFrame(dst []byte, seg *Segment) []byte {
	be := binary.BigEndian
	// Ethernet: synthetic MACs derived from the IPs.
	var eth [etherHdrLen]byte
	be.PutUint32(eth[2:], seg.Flow.DstIP)
	be.PutUint32(eth[8:], seg.Flow.SrcIP)
	be.PutUint16(eth[12:], etherIPv4)
	dst = append(dst, eth[:]...)

	var ip [ipv4HdrLen]byte
	ip[0] = 0x45 // v4, 20-byte header
	be.PutUint16(ip[2:], uint16(ipv4HdrLen+tcpHdrLen+len(seg.Payload)))
	ip[8] = 64 // TTL
	ip[9] = ipProtoTCP
	be.PutUint32(ip[12:], seg.Flow.SrcIP)
	be.PutUint32(ip[16:], seg.Flow.DstIP)
	be.PutUint16(ip[10:], ipv4Checksum(ip[:]))
	dst = append(dst, ip[:]...)

	var tcp [tcpHdrLen]byte
	be.PutUint16(tcp[0:], seg.Flow.SrcPort)
	be.PutUint16(tcp[2:], seg.Flow.DstPort)
	be.PutUint32(tcp[4:], seg.Seq)
	tcp[12] = 5 << 4 // data offset 5 words
	// PSH|ACK plus the segment's lifecycle flags (FIN/RST share the
	// TCP flag-byte bit positions).
	tcp[13] = 0x18 | (seg.Flags & (FlagFIN | FlagRST))
	be.PutUint16(tcp[14:], 0xFFFF)
	dst = append(dst, tcp[:]...)
	return append(dst, seg.Payload...)
}

func ipv4Checksum(hdr []byte) uint16 {
	sum := uint32(0)
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// ReadPcap parses a capture previously written by WritePcap and returns
// its segments in file order.
//
// A capture truncated mid-packet (interrupted tcpdump, partial copy)
// returns the segments parsed so far alongside a non-nil error, so
// callers can choose to analyze the readable prefix instead of
// discarding it; a header-level failure (bad magic, unsupported link
// type) returns no segments.
func ReadPcap(r io.Reader) ([]Segment, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: pcap header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("netsim: bad pcap magic %#x (big-endian captures unsupported)", le.Uint32(hdr[0:]))
	}
	if link := le.Uint32(hdr[20:]); link != linkEthernet {
		return nil, fmt.Errorf("netsim: unsupported link type %d", link)
	}
	var segs []Segment
	be := binary.BigEndian
	for {
		var ph [16]byte
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			if err == io.EOF {
				return segs, nil
			}
			return segs, fmt.Errorf("netsim: packet header: %w", err)
		}
		capLen := le.Uint32(ph[8:])
		if capLen > maxSnapLen {
			return segs, fmt.Errorf("netsim: packet length %d exceeds snaplen", capLen)
		}
		frame := make([]byte, capLen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return segs, fmt.Errorf("netsim: packet body: %w", err)
		}
		if capLen < frameOverhead {
			return segs, fmt.Errorf("netsim: truncated frame (%d bytes)", capLen)
		}
		ip := frame[etherHdrLen:]
		tcp := ip[ipv4HdrLen:]
		segs = append(segs, Segment{
			Flow: FlowKey{
				SrcIP:   be.Uint32(ip[12:]),
				DstIP:   be.Uint32(ip[16:]),
				SrcPort: be.Uint16(tcp[0:]),
				DstPort: be.Uint16(tcp[2:]),
			},
			Seq:      be.Uint32(tcp[4:]),
			Payload:  frame[frameOverhead:],
			TsMicros: uint64(le.Uint32(ph[0:]))*1_000_000 + uint64(le.Uint32(ph[4:])),
			Flags:    tcp[13] & (FlagFIN | FlagRST),
		})
	}
}
