package hashtab

import (
	"math/bits"

	"vpatch/internal/dbfmt"
	"vpatch/internal/patterns"
)

// Wire encoding of the verification tables. Chain tables serialize as
// their bucket-count log2 plus the (key, id) pairs in bucket-major
// order; decoding relays the pairs through the same CSR construction
// the fresh build uses, so every structural invariant (offsets
// monotonic, entries in their hashed bucket) holds by construction and
// only the pattern IDs need validating against the set.

// Encode appends the verifier's compiled state (everything except the
// pattern set, which the database serializes separately).
func (v *Verifier) Encode(e *dbfmt.Encoder) {
	e.Bool(v.hasNocaseShort)
	e.Bool(v.hasNocaseLong)
	encodeShortTable(e, &v.shortCS)
	encodeShortTable(e, &v.shortCI)
	encodeChainTable(e, &v.longCS.prefix4)
	encodeChainTable(e, &v.longCI.prefix4)
}

// DecodeVerifier restores a verifier over set.
func DecodeVerifier(d *dbfmt.Decoder, set *patterns.Set) *Verifier {
	v := &Verifier{set: set}
	n := int32(set.Len())
	v.hasNocaseShort = d.Bool()
	v.hasNocaseLong = d.Bool()
	decodeShortTable(d, &v.shortCS, n)
	decodeShortTable(d, &v.shortCI, n)
	v.longCS.prefix4 = decodeChainTable(d, n)
	v.longCI.prefix4 = decodeChainTable(d, n)
	if d.Err() != nil {
		return nil
	}
	return v
}

func encodeShortTable(e *dbfmt.Encoder, st *shortTable) {
	// len1: 256 per-byte counts, then the IDs flattened.
	total := 0
	for b := range st.len1 {
		e.Uvarint(uint64(len(st.len1[b])))
		total += len(st.len1[b])
	}
	flat := make([]int32, 0, total)
	for b := range st.len1 {
		flat = append(flat, st.len1[b]...)
	}
	e.Int32s(flat)
	encodeChainTable(e, &st.prefix2)
}

func decodeShortTable(d *dbfmt.Decoder, st *shortTable, nPatterns int32) {
	var counts [256]int
	total := 0
	for b := range counts {
		n := d.CountAtMost(d.Remaining())
		if d.Err() != nil {
			return
		}
		counts[b] = n
		total += n
	}
	flat := d.Int32s()
	if d.Err() != nil {
		return
	}
	if len(flat) != total {
		d.Fail("len1 table has %d ids, counts claim %d", len(flat), total)
		return
	}
	off := 0
	for b := range counts {
		if counts[b] == 0 {
			continue
		}
		ids := flat[off : off+counts[b] : off+counts[b]]
		off += counts[b]
		for _, id := range ids {
			if id < 0 || id >= nPatterns {
				d.Fail("len1 pattern id %d out of range [0,%d)", id, nPatterns)
				return
			}
		}
		st.len1[b] = ids
	}
	st.prefix2 = decodeChainTable(d, nPatterns)
}

func encodeChainTable(e *dbfmt.Encoder, t *chainTable) {
	e.U8(uint8(bits.Len32(t.mask))) // log2(bucket count)
	e.Uvarint(uint64(len(t.entries)))
	for _, ent := range t.entries {
		e.U32(ent.key)
		e.U32(uint32(ent.id))
	}
}

func decodeChainTable(d *dbfmt.Decoder, nPatterns int32) chainTable {
	log2 := int(d.U8())
	n := d.Count(8)
	raw := d.Raw(n * 8)
	if d.Err() != nil {
		return chainTable{}
	}
	if log2 < 4 || log2 > 28 {
		d.Fail("chain table log2 size %d out of range [4,28]", log2)
		return chainTable{}
	}
	ents := make([]entry, n)
	for i := range ents {
		b := raw[i*8:]
		ents[i] = entry{
			key: uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24,
			id:  int32(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24),
		}
		if ents[i].id < 0 || ents[i].id >= nPatterns {
			d.Fail("chain table pattern id %d out of range [0,%d)", ents[i].id, nPatterns)
			return chainTable{}
		}
	}
	return buildChainTable(1<<log2, ents)
}
