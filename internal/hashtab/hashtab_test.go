package hashtab

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// verifyEverywhere runs Verify{Short,Long}At at every position and
// collects matches — brute-force use of the tables, independent of any
// filter. Against FindAllNaive this isolates verification correctness.
func verifyEverywhere(v *Verifier, input []byte) []patterns.Match {
	var out []patterns.Match
	emit := func(m patterns.Match) { out = append(out, m) }
	for pos := 0; pos < len(input); pos++ {
		v.VerifyShortAt(input, pos, nil, emit)
		v.VerifyLongAt(input, pos, nil, emit)
	}
	return out
}

func TestVerifierMatchesNaive(t *testing.T) {
	set := patterns.FromStrings("a\x90", "GET", "HTTP/1.1", "abcd", "bcda", "dabc", "xyz")
	// Note: "a" alone would match everywhere; use realistic lengths 2+
	// here and dedicated tests for len-1 below.
	input := []byte("GET /abcdabc HTTP/1.1\r\nxyzdabc")
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestOneBytePatterns(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0x90}, false, patterns.ProtoGeneric)
	input := []byte{0x00, 0x90, 0x90, 0x41, 0x90}
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(got) != 3 {
		t.Fatalf("expected 3 matches, got %d", len(got))
	}
}

func TestTwoAndThreeBytePatterns(t *testing.T) {
	set := patterns.FromStrings("ab", "abc", "bc", "cab")
	input := []byte("abcabcab")
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLongPatternsSharedPrefix(t *testing.T) {
	// Same 4-byte prefix, different tails: bucket must distinguish them.
	set := patterns.FromStrings("attack", "attribute", "attain", "atta")
	input := []byte("the attribute of an attack is to attain atta")
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNocaseShortAndLong(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)     // short nocase
	set.Add([]byte("Cmd.EXE"), true, patterns.ProtoHTTP) // long nocase
	set.Add([]byte("GET"), false, patterns.ProtoHTTP)    // exact
	input := []byte("GET get CMD.exe cmd.EXE GEt")
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNocaseOneByte(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("Q"), true, patterns.ProtoGeneric)
	input := []byte("qQxq")
	got := verifyEverywhere(Build(set), input)
	if len(got) != 3 {
		t.Fatalf("nocase 1-byte: got %d matches, want 3", len(got))
	}
}

func TestEndOfInputBoundaries(t *testing.T) {
	set := patterns.FromStrings("ab", "abcd", "d\x80")
	// Positions near the end: 2-byte pattern at len-2, 4-byte at len-4.
	input := []byte("xxabcd")
	got := verifyEverywhere(Build(set), input)
	want := patterns.FindAllNaive(set, input)
	if !patterns.EqualMatches(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// A 1-byte input must not panic and must match nothing here.
	if n := len(verifyEverywhere(Build(set), []byte("a"))); n != 0 {
		t.Fatalf("1-byte input produced %d matches", n)
	}
}

func TestEmptyInputAndEmptySet(t *testing.T) {
	v := Build(patterns.NewSet())
	if n := len(verifyEverywhere(v, []byte("anything"))); n != 0 {
		t.Fatalf("empty set matched %d times", n)
	}
	v2 := Build(patterns.FromStrings("abc"))
	if n := len(verifyEverywhere(v2, nil)); n != 0 {
		t.Fatalf("empty input matched %d times", n)
	}
}

func TestCountersPopulated(t *testing.T) {
	set := patterns.FromStrings("abcd", "ab")
	v := Build(set)
	var c metrics.Counters
	input := []byte("abcdabcd")
	for pos := 0; pos < len(input); pos++ {
		v.VerifyShortAt(input, pos, &c, nil)
		v.VerifyLongAt(input, pos, &c, nil)
	}
	if c.HTProbes == 0 {
		t.Fatal("no hash-table probes counted")
	}
	if c.VerifyAttempts == 0 || c.VerifyBytes == 0 {
		t.Fatal("no verification attempts counted")
	}
	if c.Matches != 4 { // "abcd" x2 + "ab" x2
		t.Fatalf("Matches = %d, want 4", c.Matches)
	}
}

func TestNilEmitJustCounts(t *testing.T) {
	set := patterns.FromStrings("zz")
	v := Build(set)
	var c metrics.Counters
	v.VerifyShortAt([]byte("zz"), 0, &c, nil) // must not panic
	if c.Matches != 1 {
		t.Fatalf("Matches = %d", c.Matches)
	}
}

func TestRandomSetsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		set := patterns.NewSet()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(8)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(4)) // tiny alphabet → many collisions
			}
			set.Add(p, rng.Intn(4) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 200)
		for j := range input {
			input[j] = byte('a' + rng.Intn(4))
		}
		got := verifyEverywhere(Build(set), input)
		want := patterns.FindAllNaive(set, input)
		if !patterns.EqualMatches(got, want) {
			t.Fatalf("trial %d: %d matches vs naive %d", trial, len(got), len(want))
		}
	}
}

func TestMemoryFootprintGrowsWithPatterns(t *testing.T) {
	small := Build(patterns.GenerateS1(1).Subset(100, 1))
	large := Build(patterns.GenerateS1(1))
	if small.MemoryFootprint() >= large.MemoryFootprint() {
		t.Fatalf("footprint small=%d large=%d", small.MemoryFootprint(), large.MemoryFootprint())
	}
}

func TestMaxChainReasonable(t *testing.T) {
	// Distinct 4-byte prefixes must disperse: build patterns with unique
	// prefixes and check no bucket degenerates.
	set := patterns.NewSet()
	rng := rand.New(rand.NewSource(5))
	seen := map[uint32]bool{}
	for set.Len() < 5000 {
		var p [8]byte
		rng.Read(p[:])
		key := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		if seen[key] {
			continue
		}
		seen[key] = true
		set.Add(p[:], false, patterns.ProtoGeneric)
	}
	v := Build(set)
	if v.MaxChain() > 16 {
		t.Fatalf("max chain %d over distinct keys: hash distribution is degenerate", v.MaxChain())
	}
	// On a realistic set chains exist (shared prefixes are real) but must
	// stay far below the set size.
	s2 := Build(patterns.GenerateS2(1))
	if mc := s2.MaxChain(); mc == 0 || mc > s2.Set().Len()/10 {
		t.Fatalf("S2 max chain %d out of sane range", mc)
	}
}

func TestSetAccessor(t *testing.T) {
	set := patterns.FromStrings("x\x81")
	if Build(set).Set() != set {
		t.Fatal("Set() must return the source set")
	}
}

func BenchmarkVerifyLongAtMiss(b *testing.B) {
	v := Build(patterns.GenerateS1(1))
	input := []byte("zzzzzzzzzzzzzzzz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.VerifyLongAt(input, i%8, nil, nil)
	}
}

func BenchmarkVerifyShortAtHit(b *testing.B) {
	v := Build(patterns.FromStrings("GE", "GET", "HT"))
	input := []byte("GET HTTP")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.VerifyShortAt(input, 0, nil, nil)
	}
}
