// Package hashtab implements the verification stage shared by DFC,
// S-PATCH and V-PATCH: the "specially designed compact hash tables"
// (Choi et al., reused verbatim by the paper). Patterns are bucketed by a
// prefix key — the first 2 bytes for short patterns (1-3 B), the first 4
// bytes for long patterns (≥4 B) — so that a candidate input position
// costs one bucket probe plus exact comparisons against only the patterns
// that share its prefix.
//
// Case-insensitive (Nocase) patterns are stored in separate tables keyed
// by their folded prefix; a probe consults the case-sensitive table with
// the raw input bytes and, only when nocase patterns exist, the folded
// table with folded bytes. This keeps the hot case-sensitive path free of
// folding work.
package hashtab

import (
	"math/bits"

	"vpatch/internal/bitarr"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

// Verifier owns the verification tables for one pattern set.
type Verifier struct {
	set *patterns.Set

	// Short patterns, 1-3 bytes. One-byte patterns are indexed by their
	// single byte; 2-3 byte patterns by their 2-byte prefix.
	shortCS shortTable
	shortCI shortTable

	// Long patterns, >= 4 bytes, keyed by 4-byte prefix.
	longCS longTable
	longCI longTable

	hasNocaseShort bool
	hasNocaseLong  bool
}

// shortTable direct-addresses 1-byte patterns by byte value and 2-3 byte
// patterns by 2-byte prefix via a compact chained hash table.
type shortTable struct {
	len1    [256][]int32
	prefix2 chainTable // key: Index2 of first two bytes
}

// longTable buckets >=4-byte patterns by their 4-byte little-endian prefix.
type longTable struct {
	prefix4 chainTable // key: Load4 of first four bytes
}

// chainTable is a power-of-two bucketed table mapping a uint32 key to the
// pattern IDs whose prefix produced that key. Entries keep the key for a
// cheap reject before the full pattern comparison.
//
// Storage is flat CSR: bucket s is entries[starts[s]:starts[s+1]]. One
// contiguous entry array probes with a single dependent load instead of
// chasing a per-bucket slice header, and serializes into a compiled
// database as two raw arrays.
type chainTable struct {
	starts  []uint32 // len = bucket count + 1
	entries []entry
	mask    uint32
	shift   uint32 // multiplicative-hash downshift
}

type entry struct {
	key uint32
	id  int32
}

// chainSize returns the bucket count for an expected entry count:
// double the entries, minimum 16, rounded up to a power of two.
func chainSize(expected int) int {
	n := expected * 2
	if n < 16 {
		n = 16
	}
	return 1 << bits.Len(uint(n-1))
}

// buildChainTable lays out the CSR table for entries over size buckets
// (a power of two). Entries keep their relative order within each
// bucket, so probe results are deterministic in insertion order.
func buildChainTable(size int, ents []entry) chainTable {
	t := chainTable{
		mask:  uint32(size - 1),
		shift: uint32(32 - bits.Len(uint(size-1))),
	}
	t.starts = make([]uint32, size+1)
	for i := range ents {
		t.starts[t.slot(ents[i].key)+1]++
	}
	for s := 1; s <= size; s++ {
		t.starts[s] += t.starts[s-1]
	}
	t.entries = make([]entry, len(ents))
	// Fill using starts[s] as bucket s's cursor; each placement advances
	// it, so afterwards starts is shifted one bucket left and one
	// overlapping copy restores it (saves a separate cursor array).
	for i := range ents {
		s := t.slot(ents[i].key)
		t.entries[t.starts[s]] = ents[i]
		t.starts[s]++
	}
	copy(t.starts[1:], t.starts[:size])
	t.starts[0] = 0
	return t
}

func (t *chainTable) slot(key uint32) uint32 {
	return (key * bitarr.MulHashConst) >> t.shift & t.mask
}

// bucket returns the entry list for key; callers filter by entry.key.
func (t *chainTable) bucket(key uint32) []entry {
	s := t.slot(key)
	return t.entries[t.starts[s]:t.starts[s+1]]
}

// maxBucketLen reports the longest chain (diagnostics / tests).
func (t *chainTable) maxBucketLen() int {
	m := 0
	for s := 0; s+1 < len(t.starts); s++ {
		if n := int(t.starts[s+1] - t.starts[s]); n > m {
			m = n
		}
	}
	return m
}

// Build constructs the verifier for a pattern set.
func Build(set *patterns.Set) *Verifier { return BuildFiltered(set, nil) }

// BuildFiltered constructs a verifier covering only the patterns for
// which keep returns true (all patterns when keep is nil). Emitted
// matches carry the original set's pattern IDs, which lets callers
// partition verification across pattern classes (e.g. FFBF's
// shingle-length split) without re-identifying patterns.
func BuildFiltered(set *patterns.Set, keep func(*patterns.Pattern) bool) *Verifier {
	v := &Verifier{set: set}
	// Collect (key, id) entries per table, then lay each table out flat,
	// sized to its own population (the nocase tables are usually far
	// smaller than their case-sensitive siblings).
	var shortCS, shortCI, longCS, longCI []entry
	pats := set.Patterns()
	for i := range pats {
		p := &pats[i]
		if keep != nil && !keep(p) {
			continue
		}
		switch {
		case len(p.Data) == 1:
			st := &v.shortCS
			if p.Nocase {
				st = &v.shortCI
				v.hasNocaseShort = true
			}
			st.len1[p.Data[0]] = append(st.len1[p.Data[0]], p.ID)
		case len(p.Data) <= patterns.ShortMax:
			key := bitarr.Index2(p.Data[0], p.Data[1])
			if p.Nocase {
				shortCI = append(shortCI, entry{key: key, id: p.ID})
				v.hasNocaseShort = true
			} else {
				shortCS = append(shortCS, entry{key: key, id: p.ID})
			}
		default:
			key := bitarr.Load4(p.Data)
			if p.Nocase {
				longCI = append(longCI, entry{key: key, id: p.ID})
				v.hasNocaseLong = true
			} else {
				longCS = append(longCS, entry{key: key, id: p.ID})
			}
		}
	}
	v.shortCS.prefix2 = buildChainTable(chainSize(len(shortCS)), shortCS)
	v.shortCI.prefix2 = buildChainTable(chainSize(len(shortCI)), shortCI)
	v.longCS.prefix4 = buildChainTable(chainSize(len(longCS)), longCS)
	v.longCI.prefix4 = buildChainTable(chainSize(len(longCI)), longCI)
	return v
}

// Set returns the pattern set the verifier was built from.
func (v *Verifier) Set() *patterns.Set { return v.set }

// VerifyShortAt checks all short patterns (1-3 B) against input at pos and
// emits every confirmed match. It is called for positions that passed
// filter 1. c may be nil.
func (v *Verifier) VerifyShortAt(input []byte, pos int, c *metrics.Counters, emit patterns.EmitFunc) {
	b0 := input[pos]
	v.verifyShortIn(&v.shortCS, b0, input, pos, c, emit)
	if v.hasNocaseShort {
		v.verifyShortIn(&v.shortCI, patterns.FoldByte(b0), input, pos, c, emit)
	}
}

func (v *Verifier) verifyShortIn(st *shortTable, b0 byte, input []byte, pos int, c *metrics.Counters, emit patterns.EmitFunc) {
	if ids := st.len1[b0]; len(ids) > 0 {
		for _, id := range ids {
			v.tryPattern(id, input, pos, c, emit)
		}
	}
	if pos+1 >= len(input) {
		return
	}
	b1 := input[pos+1]
	if st == &v.shortCI {
		b1 = patterns.FoldByte(b1)
	}
	key := bitarr.Index2(b0, b1)
	if c != nil {
		c.HTProbes++
	}
	for _, e := range st.prefix2.bucket(key) {
		if e.key == key {
			v.tryPattern(e.id, input, pos, c, emit)
		}
	}
}

// VerifyLongAt checks all long patterns (>= 4 B) against input at pos.
// It is called for positions that passed filters 2 and 3; pos must leave
// at least 4 input bytes.
func (v *Verifier) VerifyLongAt(input []byte, pos int, c *metrics.Counters, emit patterns.EmitFunc) {
	if pos+4 > len(input) {
		return
	}
	key := bitarr.Load4(input[pos:])
	if c != nil {
		c.HTProbes++
	}
	for _, e := range v.longCS.prefix4.bucket(key) {
		if e.key == key {
			v.tryPattern(e.id, input, pos, c, emit)
		}
	}
	if v.hasNocaseLong {
		fkey := bitarr.Load4([]byte{
			patterns.FoldByte(input[pos]),
			patterns.FoldByte(input[pos+1]),
			patterns.FoldByte(input[pos+2]),
			patterns.FoldByte(input[pos+3]),
		})
		if c != nil {
			c.HTProbes++
		}
		for _, e := range v.longCI.prefix4.bucket(fkey) {
			if e.key == fkey {
				v.tryPattern(e.id, input, pos, c, emit)
			}
		}
	}
}

func (v *Verifier) tryPattern(id int32, input []byte, pos int, c *metrics.Counters, emit patterns.EmitFunc) {
	p := v.set.Pattern(id)
	if c != nil {
		c.VerifyAttempts++
		c.VerifyBytes += uint64(len(p.Data))
	}
	if p.MatchesAt(input, pos) {
		if c != nil {
			c.Matches++
		}
		if emit != nil {
			emit(patterns.Match{PatternID: id, Pos: int32(pos)})
		}
	}
}

// MemoryFootprint estimates the verifier's resident bytes: bucket
// offsets plus entries. The paper notes these tables exceed L1/L2 but
// typically fit L3; the cost model charges long-table probes at
// L3/memory latency.
func (v *Verifier) MemoryFootprint() int {
	sz := 0
	count := func(t *chainTable) {
		sz += len(t.starts) * 4
		sz += len(t.entries) * 8
	}
	count(&v.shortCS.prefix2)
	count(&v.shortCI.prefix2)
	count(&v.longCS.prefix4)
	count(&v.longCI.prefix4)
	for i := range v.shortCS.len1 {
		sz += len(v.shortCS.len1[i]) * 4
		sz += len(v.shortCI.len1[i]) * 4
	}
	return sz
}

// MaxChain returns the longest bucket chain over all tables (diagnostic:
// verification cost per candidate is bounded by chain length).
func (v *Verifier) MaxChain() int {
	m := v.longCS.prefix4.maxBucketLen()
	if n := v.longCI.prefix4.maxBucketLen(); n > m {
		m = n
	}
	if n := v.shortCS.prefix2.maxBucketLen(); n > m {
		m = n
	}
	if n := v.shortCI.prefix2.maxBucketLen(); n > m {
		m = n
	}
	return m
}
