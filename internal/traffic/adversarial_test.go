package traffic

import (
	"bytes"
	"reflect"
	"testing"

	"vpatch/internal/patterns"
)

// reconstruct applies chunks first-write-wins into a buffer sized to
// the highest covered offset — the reference a correct reassembler
// should agree with when chunk data is stream-consistent.
func reconstruct(t *testing.T, chunks []Chunk) []byte {
	t.Helper()
	max := int64(0)
	for _, c := range chunks {
		if end := c.Off + int64(len(c.Data)); end > max {
			max = end
		}
	}
	out := make([]byte, max)
	seen := make([]bool, max)
	for _, c := range chunks {
		for i, b := range c.Data {
			at := c.Off + int64(i)
			if seen[at] && out[at] != b {
				t.Fatalf("chunk data inconsistent at offset %d", at)
			}
			out[at], seen[at] = b, true
		}
	}
	for at, ok := range seen {
		if !ok {
			t.Fatalf("offset %d never covered", at)
		}
	}
	return out
}

func TestTinyMTUCoversPayload(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	for _, mtu := range []int{1, 2, 7, 1000} {
		chunks := TinyMTU(payload, mtu)
		if got := reconstruct(t, chunks); !bytes.Equal(got, payload) {
			t.Fatalf("mtu %d: reconstructed %q", mtu, got)
		}
		if !chunks[len(chunks)-1].Fin {
			t.Fatalf("mtu %d: FIN missing on last chunk", mtu)
		}
		if mtu == 1 && len(chunks) != len(payload) {
			t.Fatalf("mtu 1: %d chunks for %d bytes", len(chunks), len(payload))
		}
	}
	// Empty payload still yields a FIN so the flow terminates.
	if chunks := TinyMTU(nil, 1); len(chunks) != 1 || !chunks[0].Fin {
		t.Fatalf("empty payload: %+v", chunks)
	}
}

func TestOverlappedConsistentAndCovering(t *testing.T) {
	payload := Random(4096, 11)
	overlapped := false
	for seed := int64(0); seed < 8; seed++ {
		chunks := Overlapped(payload, 16, 8, seed)
		if got := reconstruct(t, chunks); !bytes.Equal(got, payload) {
			t.Fatalf("seed %d: reconstruction mismatch", seed)
		}
		end := int64(0)
		for _, c := range chunks {
			if c.Off < end && len(c.Data) > 0 {
				overlapped = true
			}
			if e := c.Off + int64(len(c.Data)); e > end {
				end = e
			}
		}
	}
	if !overlapped {
		t.Fatal("no chunk ever re-sent already-sent bytes")
	}
}

func TestShuffledPreservesChunksAndFin(t *testing.T) {
	payload := Random(1024, 7)
	base := TinyMTU(payload, 32)
	out := Shuffled(base, 4, 0.5, 99)
	if !out[len(out)-1].Fin {
		t.Fatal("FIN not last after shuffle")
	}
	if len(out) <= len(base) {
		t.Fatalf("dupFrac 0.5 produced no duplicates: %d -> %d", len(base), len(out))
	}
	// Every original chunk must still be present (loss is not a trick
	// the corpus models; reassemblers treat loss as an eviction case).
	if got := reconstruct(t, out); !bytes.Equal(got, payload) {
		t.Fatal("shuffle lost payload bytes")
	}
}

func TestEvasiveDeterministic(t *testing.T) {
	payload := Random(2048, 3)
	a := Evasive(payload, 42)
	b := Evasive(payload, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different deliveries")
	}
	if got := reconstruct(t, a); !bytes.Equal(got, payload) {
		t.Fatal("evasive delivery lost payload bytes")
	}
	if c := Evasive(payload, 43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical deliveries")
	}
}

func TestFloodAnchorsShape(t *testing.T) {
	out := FloodAnchors([]byte("token="), []byte("zzzzzzzz"), 32, 3)
	if got := bytes.Count(out, []byte("token=")); got != 32 {
		t.Fatalf("%d anchor sites, want 32", got)
	}
	// Every anchor is followed by the rejecting tail: the verifier must
	// run at each site and alert at none.
	if got := bytes.Count(out, []byte("token=zzzzzzzz")); got != 32 {
		t.Fatalf("%d anchored tails, want 32", got)
	}
}

func TestNearMissesHitFiltersNotVerify(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("attack-pattern-one"), false, patterns.ProtoGeneric)
	set.Add([]byte("exploit-string-two"), false, patterns.ProtoGeneric)
	out := NearMisses(set, 64, 5)
	if len(out) == 0 {
		t.Fatal("empty near-miss payload")
	}
	for i := 0; i < set.Len(); i++ {
		p := set.Pattern(int32(i)).Data
		if bytes.Contains(out, p) {
			t.Fatalf("near-miss payload contains exact pattern %q", p)
		}
		if got := bytes.Count(out, p[:len(p)-1]); got == 0 {
			t.Fatalf("no near-miss site for %q", p)
		}
	}
}
