package traffic

// Adversarial evasion corpus: generators for the delivery tricks and
// payload shapes attackers use against prefilter-then-verify NIDS —
// tiny-MTU segmentation (1-byte segments force every pattern across a
// boundary), overlapping retransmissions (overlap-trim bugs), reordered
// and duplicated delivery, match-flood anchor payloads (every anchor
// buys a verifier run that can never alert), and near-miss payloads
// (filter hits that fail verification). The generators avoid importing
// netsim — netsim's own tests consume this package — so segmentation is
// expressed as (offset, bytes) Chunks the caller turns into segments.
// The same corpus seeds the reassembly and rule-stream fuzzers.

import (
	"math/rand"

	"vpatch/internal/patterns"
)

// Chunk is one delivery unit of a stream: Data at byte offset Off, with
// Fin marking the final unit. Chunks may overlap and repeat; their data
// is always consistent with the underlying stream, as TCP
// retransmissions are.
type Chunk struct {
	Off  int64
	Data []byte
	Fin  bool
}

// TinyMTU slices payload into mtu-byte chunks, in order, FIN on the
// last. mtu=1 is the classic pathological segmentation: every pattern
// straddles boundaries, nothing matches within one segment.
func TinyMTU(payload []byte, mtu int) []Chunk {
	if mtu <= 0 {
		mtu = 1
	}
	chunks := make([]Chunk, 0, len(payload)/mtu+1)
	for off := 0; off < len(payload); off += mtu {
		end := off + mtu
		if end > len(payload) {
			end = len(payload)
		}
		chunks = append(chunks, Chunk{Off: int64(off), Data: payload[off:end]})
	}
	if len(chunks) == 0 {
		chunks = append(chunks, Chunk{})
	}
	chunks[len(chunks)-1].Fin = true
	return chunks
}

// Overlapped slices payload into chunks of up to mtu bytes where each
// chunk after the first re-sends up to overlap bytes of already-sent
// stream (range extended backward) — the overlapping-retransmission
// trick. Data stays consistent; a correct reassembler must deliver each
// byte exactly once.
func Overlapped(payload []byte, mtu, overlap int, seed int64) []Chunk {
	if mtu <= 0 {
		mtu = 1
	}
	if overlap < 0 {
		overlap = 0
	}
	rng := rand.New(rand.NewSource(seed))
	var chunks []Chunk
	for off := 0; off < len(payload); {
		end := off + 1 + rng.Intn(mtu)
		if end > len(payload) {
			end = len(payload)
		}
		start := off
		if len(chunks) > 0 && overlap > 0 {
			back := rng.Intn(overlap + 1)
			if back > start {
				back = start
			}
			start -= back
		}
		chunks = append(chunks, Chunk{Off: int64(start), Data: payload[start:end]})
		off = end
	}
	if len(chunks) == 0 {
		chunks = append(chunks, Chunk{})
	}
	chunks[len(chunks)-1].Fin = true
	return chunks
}

// Shuffled returns a copy of chunks reordered within a sliding window
// of the given size, with dupFrac of chunks duplicated (retransmits).
// The FIN chunk is kept last so teardown still terminates the flow.
func Shuffled(chunks []Chunk, window int, dupFrac float64, seed int64) []Chunk {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Chunk, len(chunks))
	copy(out, chunks)
	var fin Chunk
	hasFin := false
	if n := len(out); n > 0 && out[n-1].Fin {
		fin, out, hasFin = out[n-1], out[:n-1], true
	}
	if window > 1 {
		for i := range out {
			lo := i - window + 1
			if lo < 0 {
				lo = 0
			}
			j := lo + rng.Intn(i-lo+1)
			out[i], out[j] = out[j], out[i]
		}
	}
	if dupFrac > 0 {
		dup := make([]Chunk, 0, len(out)+int(dupFrac*float64(len(out)))+1)
		for _, c := range out {
			dup = append(dup, c)
			if rng.Float64() < dupFrac {
				dup = append(dup, c)
			}
		}
		out = dup
	}
	if hasFin {
		out = append(out, fin)
	}
	return out
}

// Evasive composes the delivery tricks with seeded parameters: small
// random MTU, overlapping retransmissions, windowed reordering and
// duplicates. The canonical adversarial delivery of one stream.
func Evasive(payload []byte, seed int64) []Chunk {
	rng := rand.New(rand.NewSource(seed))
	mtu := 1 + rng.Intn(24)
	overlap := rng.Intn(mtu + 1)
	window := 1 + rng.Intn(8)
	chunks := Overlapped(payload, mtu, overlap, seed^0x5EED)
	return Shuffled(chunks, window, 0.15, seed^0xD00D)
}

// FloodAnchors builds a match-flood payload: sites repetitions of
// anchor immediately followed by a tail the verifier stage must chew on
// and reject, separated by pad filler. Against a rule
// `content:"<anchor>"; pcre:...` every site prices one verifier run
// that can never produce an alert — the economics-inversion attack the
// verifier budget exists to bound.
func FloodAnchors(anchor, tail []byte, sites, pad int) []byte {
	if pad < 1 {
		pad = 1
	}
	out := make([]byte, 0, sites*(len(anchor)+len(tail)+pad))
	for i := 0; i < sites; i++ {
		out = append(out, anchor...)
		out = append(out, tail...)
		for j := 0; j < pad; j++ {
			out = append(out, ' ')
		}
	}
	return out
}

// NearMisses builds a prefilter-flood payload: sites full patterns
// drawn from set, each with its final byte corrupted — the short-prefix
// filters hit, verification fails, no alert ever fires. Patterns
// shorter than 2 bytes are skipped.
func NearMisses(set *patterns.Set, sites int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	n := set.Len()
	if n == 0 {
		return out
	}
	for i := 0; i < sites; i++ {
		p := set.Pattern(int32(rng.Intn(n))).Data
		if len(p) < 2 {
			continue
		}
		miss := make([]byte, len(p))
		copy(miss, p)
		miss[len(miss)-1] ^= 0xFF
		out = append(out, miss...)
		out = append(out, ' ')
	}
	return out
}
