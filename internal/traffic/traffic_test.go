package traffic

import (
	"bytes"
	"testing"

	"vpatch/internal/patterns"
)

func TestSynthesizeSizeAndDeterminism(t *testing.T) {
	for _, p := range Profiles {
		a := Synthesize(p, 64<<10, 1, nil)
		b := Synthesize(p, 64<<10, 1, nil)
		if len(a) != 64<<10 {
			t.Fatalf("%s: size %d", p.Name, len(a))
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same seed produced different traffic", p.Name)
		}
		c := Synthesize(p, 64<<10, 2, nil)
		if bytes.Equal(a, c) {
			t.Fatalf("%s: different seeds produced identical traffic", p.Name)
		}
	}
}

func TestSynthesizeLooksLikeHTTP(t *testing.T) {
	data := Synthesize(ISCXDay2, 256<<10, 3, nil)
	for _, tok := range []string{"GET /", "HTTP/1.1", "Host: ", "User-Agent: "} {
		if !bytes.Contains(data, []byte(tok)) {
			t.Errorf("traffic lacks %q", tok)
		}
	}
	// The short patterns the paper highlights must occur frequently.
	gets := bytes.Count(data, []byte("GET"))
	if gets < 50 {
		t.Fatalf("only %d GET occurrences in 256 KB; realistic-traffic effect missing", gets)
	}
}

func TestProfilesDiffer(t *testing.T) {
	a := Synthesize(ISCXDay2, 64<<10, 1, nil)
	b := Synthesize(ISCXDay6, 64<<10, 1, nil)
	c := Synthesize(DARPA2000, 64<<10, 1, nil)
	if bytes.Equal(a, b) || bytes.Equal(a, c) || bytes.Equal(b, c) {
		t.Fatal("profiles produce identical traffic")
	}
}

func TestDARPAContainsTelnet(t *testing.T) {
	data := Synthesize(DARPA2000, 256<<10, 1, nil)
	if !bytes.Contains(data, []byte("login:")) && !bytes.Contains(data, []byte("ftp")) {
		t.Fatal("DARPA profile lacks pre-web plain-text sessions")
	}
}

func TestAttackInjectionRaisesMatches(t *testing.T) {
	set := patterns.NewSet()
	// A pattern that never occurs naturally in the synthesizer output.
	set.Add([]byte{0x01, 0x02, 0x03, 0xFE, 0xFD, 0xFC, 0x01, 0x02}, false, patterns.ProtoHTTP)
	quiet := Synthesize(ISCXDay2, 512<<10, 9, nil)
	noisy := Synthesize(ISCXDay2, 512<<10, 9, set)
	pat := set.Pattern(0).Data
	if bytes.Count(quiet, pat) != 0 {
		t.Fatal("sentinel pattern occurs without injection")
	}
	if bytes.Count(noisy, pat) == 0 {
		t.Fatal("AttackFrac sessions never embedded the pattern")
	}
}

func TestRandomProperties(t *testing.T) {
	a := Random(128<<10, 5)
	b := Random(128<<10, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("Random not deterministic")
	}
	if bytes.Equal(a, Random(128<<10, 6)) {
		t.Fatal("Random ignores seed")
	}
	// Rough uniformity: every byte value should appear.
	var hist [256]int
	for _, c := range a {
		hist[c]++
	}
	for v, n := range hist {
		if n == 0 {
			t.Fatalf("byte %#x never appears in 128 KB of random data", v)
		}
	}
}

func TestInjectMatchesDensity(t *testing.T) {
	set := patterns.FromStrings("INJECTED-PATTERN-ONE", "INJECTED-TWO")
	for _, frac := range []float64{0.05, 0.25, 0.60} {
		data := Random(256<<10, 7)
		injected := InjectMatches(data, set, frac, 11)
		got := float64(injected) / float64(len(data))
		if got < frac || got > frac+0.05 {
			t.Errorf("frac %.2f: injected %.3f of bytes", frac, got)
		}
		n := bytes.Count(data, []byte("INJECTED-PATTERN-ONE")) + bytes.Count(data, []byte("INJECTED-TWO"))
		if n == 0 {
			t.Errorf("frac %.2f: no occurrences survive (overwrites destroyed all?)", frac)
		}
	}
}

func TestInjectMatchesEdgeCases(t *testing.T) {
	set := patterns.FromStrings("abc")
	if InjectMatches(nil, set, 0.5, 1) != 0 {
		t.Fatal("nil data must inject 0")
	}
	if InjectMatches(make([]byte, 100), nil, 0.5, 1) != 0 {
		t.Fatal("nil set must inject 0")
	}
	if InjectMatches(make([]byte, 100), set, 0, 1) != 0 {
		t.Fatal("zero frac must inject 0")
	}
	// Pattern longer than data: must not loop forever or panic.
	long := patterns.FromStrings("this pattern is much longer than the data")
	if InjectMatches(make([]byte, 4), long, 0.0, 1) != 0 {
		t.Fatal("oversized pattern with zero frac")
	}
}

func TestInjectMatchesDeterministic(t *testing.T) {
	set := patterns.FromStrings("xyzzy")
	a := Random(32<<10, 1)
	b := Random(32<<10, 1)
	InjectMatches(a, set, 0.1, 3)
	InjectMatches(b, set, 0.1, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("InjectMatches not deterministic")
	}
}

func TestSynthesizeTinySizes(t *testing.T) {
	for _, size := range []int{0, 1, 7, 100} {
		data := Synthesize(ISCXDay2, size, 1, nil)
		if len(data) != size {
			t.Fatalf("size %d: got %d", size, len(data))
		}
	}
}

func TestPacketsDrawsFromMix(t *testing.T) {
	set := patterns.FromStrings("attack-token")
	pkts := Packets(ISCXDay2, SimpleIMIX, 1200, 7, set)
	if len(pkts) != 1200 {
		t.Fatalf("got %d packets, want 1200", len(pkts))
	}
	counts := map[int]int{}
	for _, p := range pkts {
		counts[len(p)]++
	}
	for size := range counts {
		ok := false
		for _, e := range SimpleIMIX {
			if e.Size == size {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("packet size %d not in mix", size)
		}
	}
	// 7:4:1 weights: small packets must dominate, MTU packets be rare.
	if counts[64] <= counts[570] || counts[570] <= counts[1518] || counts[1518] == 0 {
		t.Fatalf("mix weights not respected: %v", counts)
	}
	// Deterministic: same arguments, same packets.
	again := Packets(ISCXDay2, SimpleIMIX, 1200, 7, set)
	for i := range pkts {
		if !bytes.Equal(pkts[i], again[i]) {
			t.Fatalf("packet %d differs between identical calls", i)
		}
	}
	// Independent backing arrays: writing one packet must not touch the
	// next (batch consumers hold packets across scans).
	if len(pkts[0]) > 0 {
		orig := append([]byte(nil), pkts[1]...)
		for i := range pkts[0] {
			pkts[0][i] = 0xFF
		}
		if !bytes.Equal(pkts[1], orig) {
			t.Fatal("packets share backing memory")
		}
	}
}

func TestFixedPacketsAndMeanSize(t *testing.T) {
	pkts := FixedPackets(DARPA2000, 64, 50, 3, nil)
	if len(pkts) != 50 {
		t.Fatalf("got %d packets", len(pkts))
	}
	for _, p := range pkts {
		if len(p) != 64 {
			t.Fatalf("packet of %d bytes, want 64", len(p))
		}
	}
	if m := MeanSize(SimpleIMIX); m < 350 || m > 360 {
		t.Fatalf("SimpleIMIX mean %f, want ~354", m)
	}
	if MeanSize(nil) != 0 {
		t.Fatal("empty mix mean must be 0")
	}
}
