// Package traffic synthesizes the input streams the paper evaluates on.
//
// The originals — ISCX-IDS day 2 / day 6 (1 GB samples) and DARPA 2000
// (300 MB) — are external datasets; what the matching algorithms are
// sensitive to is not packet identity but (a) how often each filter stage
// hits (realistic HTTP traffic constantly contains short patterns such as
// GET/HTTP/Host) and (b) how often full patterns occur. This package
// reproduces those properties with seeded generators: an HTTP-session
// synthesizer with per-dataset profiles, a uniform-random generator (the
// paper's "random" dataset), and a match injector with a controllable
// match density for the Fig. 5c sweep.
package traffic

import (
	"math/rand"

	"vpatch/internal/patterns"
)

// Profile parameterizes the session synthesizer for one dataset.
type Profile struct {
	// Name labels output rows ("ISCX day2", ...).
	Name string
	// ResponseFrac is the fraction of sessions that include an HTTP
	// response with body (responses carry large text/binary bodies).
	ResponseFrac float64
	// BinaryBodyFrac is the fraction of response bodies that are binary
	// (images, archives) rather than HTML text.
	BinaryBodyFrac float64
	// AttackFrac is the fraction of sessions that embed one full attack
	// pattern from the rule set (drawn uniformly), creating long-pattern
	// matches at a realistic, low rate.
	AttackFrac float64
	// PlainTelnetFrac is the fraction of sessions replaced by plain
	// telnet/FTP-style line traffic (DARPA 2000 is pre-web-era heavy).
	PlainTelnetFrac float64
	// SeedSalt decorrelates profiles that use the same caller seed.
	SeedSalt int64
}

// The three realistic-dataset profiles plus uniform random. The knobs are
// tuned so the *filter pass rates* land in the ranges the paper reports
// (its Fig. 4 discussion: realistic traffic hits the short-pattern filter
// constantly; random input is ~95% filtered out).
var (
	ISCXDay2 = Profile{
		Name: "ISCX day2", ResponseFrac: 0.55, BinaryBodyFrac: 0.25,
		AttackFrac: 0.04, SeedSalt: 0x15C2,
	}
	ISCXDay6 = Profile{
		Name: "ISCX day6", ResponseFrac: 0.65, BinaryBodyFrac: 0.35,
		AttackFrac: 0.06, SeedSalt: 0x15C6,
	}
	DARPA2000 = Profile{
		Name: "DARPA 2000", ResponseFrac: 0.40, BinaryBodyFrac: 0.10,
		AttackFrac: 0.02, PlainTelnetFrac: 0.35, SeedSalt: 0xDA29,
	}
)

// Profiles lists the realistic profiles in the order the paper's figures
// present them.
var Profiles = []Profile{ISCXDay2, ISCXDay6, DARPA2000}

var (
	methods    = []string{"GET", "GET", "GET", "GET", "POST", "HEAD", "PUT"}
	hostnames  = []string{"www.example.com", "mail.corp.local", "cdn.assets.net", "intranet", "api.service.io"}
	pathWords  = []string{"index", "home", "images", "news", "article", "view", "static", "js", "css", "img", "data", "api", "v1", "users", "items"}
	extensions = []string{".html", ".php", ".js", ".css", ".png", ".jpg", ".gif", "", "", ""}
	agents     = []string{
		"Mozilla/5.0 (Windows NT 6.1; rv:31.0) Gecko/20100101 Firefox/31.0",
		"Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
		"Opera/9.80 (Windows NT 6.0) Presto/2.12.388 Version/12.14",
		"Wget/1.13.4 (linux-gnu)",
	}
	htmlWords = []string{
		"the", "of", "and", "to", "in", "is", "for", "with", "page", "site",
		"content", "table", "div", "span", "href", "link", "title", "data",
		"value", "item", "list", "user", "time", "date", "info", "about",
		"home", "search", "results", "click", "here", "more", "news",
	}
	telnetLines = []string{
		"login: operator", "Password:", "Last login: Tue Mar 7 09:14:02",
		"$ ls -la /home", "$ cat /etc/motd", "220 ftp server ready",
		"USER anonymous", "PASS guest@", "RETR dataset.tar", "226 Transfer complete",
		"HELO mailhost", "MAIL FROM:<root@local>", "RCPT TO:<admin@local>",
	}
)

// Synthesize produces size bytes of traffic under profile p. If set is
// non-nil, AttackFrac of the sessions embed one randomly drawn pattern
// from it. Output is deterministic in (p, size, seed, set).
func Synthesize(p Profile, size int, seed int64, set *patterns.Set) []byte {
	rng := rand.New(rand.NewSource(seed ^ p.SeedSalt))
	out := make([]byte, 0, size+4096)
	for len(out) < size {
		switch {
		case p.PlainTelnetFrac > 0 && rng.Float64() < p.PlainTelnetFrac:
			out = appendTelnetSession(out, rng)
		default:
			out = appendHTTPSession(out, rng, p, set)
		}
	}
	return out[:size]
}

// Random returns size uniform-random bytes — the paper's synthetic
// dataset, on which filters reject ~95% of input.
func Random(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	// rand.Read on *rand.Rand never fails.
	rng.Read(out)
	return out
}

func appendHTTPSession(out []byte, rng *rand.Rand, p Profile, set *patterns.Set) []byte {
	method := methods[rng.Intn(len(methods))]
	out = append(out, method...)
	out = append(out, ' ', '/')
	depth := 1 + rng.Intn(3)
	for i := 0; i < depth; i++ {
		if i > 0 {
			out = append(out, '/')
		}
		out = append(out, pathWords[rng.Intn(len(pathWords))]...)
	}
	out = append(out, extensions[rng.Intn(len(extensions))]...)
	if rng.Float64() < 0.3 {
		out = append(out, "?id="...)
		out = appendDigits(out, rng, 1+rng.Intn(6))
	}
	// Embed one attack pattern in the URI or body of AttackFrac sessions.
	injectHere := set != nil && set.Len() > 0 && rng.Float64() < p.AttackFrac
	if injectHere && rng.Float64() < 0.5 {
		out = append(out, '/')
		out = append(out, set.Pattern(int32(rng.Intn(set.Len()))).Data...)
		injectHere = false
	}
	out = append(out, " HTTP/1.1\r\nHost: "...)
	out = append(out, hostnames[rng.Intn(len(hostnames))]...)
	out = append(out, "\r\nUser-Agent: "...)
	out = append(out, agents[rng.Intn(len(agents))]...)
	out = append(out, "\r\nAccept: text/html,application/xhtml+xml\r\nConnection: keep-alive\r\n\r\n"...)

	if rng.Float64() >= p.ResponseFrac {
		return out
	}
	out = append(out, "HTTP/1.1 200 OK\r\nServer: Apache/2.2.22\r\nContent-Type: "...)
	bodyLen := 200 + rng.Intn(2800)
	binary := rng.Float64() < p.BinaryBodyFrac
	if binary {
		out = append(out, "application/octet-stream\r\n\r\n"...)
		start := len(out)
		out = append(out, make([]byte, bodyLen)...)
		rng.Read(out[start:])
	} else {
		out = append(out, "text/html\r\n\r\n<html><body>"...)
		for n := 0; n < bodyLen; {
			w := htmlWords[rng.Intn(len(htmlWords))]
			out = append(out, w...)
			out = append(out, ' ')
			n += len(w) + 1
		}
		out = append(out, "</body></html>"...)
	}
	if injectHere {
		out = append(out, set.Pattern(int32(rng.Intn(set.Len()))).Data...)
	}
	out = append(out, "\r\n"...)
	return out
}

func appendTelnetSession(out []byte, rng *rand.Rand) []byte {
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		out = append(out, telnetLines[rng.Intn(len(telnetLines))]...)
		out = append(out, '\r', '\n')
	}
	return out
}

func appendDigits(out []byte, rng *rand.Rand, n int) []byte {
	for i := 0; i < n; i++ {
		out = append(out, byte('0'+rng.Intn(10)))
	}
	return out
}

// InjectMatches overwrites segments of data (in place) with patterns drawn
// uniformly from set until approximately frac of all bytes belong to an
// injected occurrence. It returns the number of bytes injected. This is
// the Fig. 5c workload: a synthetic input containing increasingly many
// matching strings.
func InjectMatches(data []byte, set *patterns.Set, frac float64, seed int64) int {
	if set == nil || set.Len() == 0 || frac <= 0 || len(data) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	target := int(float64(len(data)) * frac)
	injected := 0
	// Walk the input in random strides, stamping whole patterns. Strides
	// scale with the remaining budget so low fractions spread evenly.
	for injected < target {
		p := set.Pattern(int32(rng.Intn(set.Len())))
		if len(p.Data) > len(data) {
			continue
		}
		pos := rng.Intn(len(data) - len(p.Data) + 1)
		copy(data[pos:], p.Data)
		injected += len(p.Data)
	}
	return injected
}
