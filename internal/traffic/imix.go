package traffic

import (
	"math/rand"

	"vpatch/internal/patterns"
)

// Packet-size mixes. Throughput on real links is dominated by how the
// byte volume splits into packets — NIDS traffic is overwhelmingly
// small packets — so benchmarks and pipeline tests draw per-packet
// sizes from a mix instead of scanning one contiguous buffer.

// MixEntry is one class of a packet-size mix: packets of Size payload
// bytes appearing with relative frequency Weight.
type MixEntry struct {
	Size   int
	Weight float64
}

// SimpleIMIX is the classic "simple IMIX" distribution used to model
// Internet packet sizes: 7 small, 4 medium and 1 MTU-sized packet per
// 12 (mean ~354 B) — the realistic small-packet-heavy workload the
// batch scan path targets.
var SimpleIMIX = []MixEntry{
	{Size: 64, Weight: 7},
	{Size: 570, Weight: 4},
	{Size: 1518, Weight: 1},
}

// MeanSize returns the weighted mean packet size of a mix (0 for an
// empty or weightless mix).
func MeanSize(mix []MixEntry) float64 {
	var sum, wsum float64
	for _, e := range mix {
		sum += float64(e.Size) * e.Weight
		wsum += e.Weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// drawSizes samples n packet sizes from mix.
func drawSizes(mix []MixEntry, n int, rng *rand.Rand) []int {
	var wsum float64
	for _, e := range mix {
		wsum += e.Weight
	}
	sizes := make([]int, n)
	for i := range sizes {
		v := rng.Float64() * wsum
		sizes[i] = mix[len(mix)-1].Size // fallback absorbs float rounding
		for _, e := range mix {
			if v < e.Weight {
				sizes[i] = e.Size
				break
			}
			v -= e.Weight
		}
	}
	return sizes
}

// Packets generates n packets whose sizes are drawn from mix and whose
// payload is profile-p traffic (one synthesized stream cut at packet
// boundaries, so consecutive packets continue the same sessions, like
// segments of real flows). Each packet is an independent buffer,
// feeding ScanBatch directly. If set is non-nil, attack patterns are
// embedded per the profile. Deterministic in all arguments.
func Packets(p Profile, mix []MixEntry, n int, seed int64, set *patterns.Set) [][]byte {
	if n <= 0 || len(mix) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x1312))
	sizes := drawSizes(mix, n, rng)
	total := 0
	for _, s := range sizes {
		total += s
	}
	stream := Synthesize(p, total, seed, set)
	out := make([][]byte, n)
	pos := 0
	for i, s := range sizes {
		// One backing allocation per packet: batch consumers treat
		// packets as independent buffers.
		out[i] = append([]byte(nil), stream[pos:pos+s]...)
		pos += s
	}
	return out
}

// FixedPackets is Packets with a single-size mix: n packets of exactly
// size bytes each.
func FixedPackets(p Profile, size, n int, seed int64, set *patterns.Set) [][]byte {
	return Packets(p, []MixEntry{{Size: size, Weight: 1}}, n, seed, set)
}
