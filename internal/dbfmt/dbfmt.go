// Package dbfmt defines the on-disk format of compiled pattern
// databases (.vpdb files): a fixed header carrying the format version,
// database kind, algorithm, vector width and a digest of the pattern
// set, followed by length-prefixed sections, terminated by a CRC-32C of
// the whole blob. Engines flatten their compiled state into sections
// with the Encoder and restore it with the bounds-checked Decoder; the
// load path validates magic, version, CRC and every array length, so a
// truncated or corrupted database is rejected with an error — never a
// panic, never an unbounded allocation.
//
// The format is little-endian throughout and intentionally dumb: raw
// arrays with explicit lengths, no compression, no pointers. A database
// written by one build of this library loads in any other build with
// the same FormatVersion; structural changes to any engine's compiled
// state must bump FormatVersion (see the compatibility policy in the
// repository README).
package dbfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a compiled pattern database file.
const Magic = "VPDB"

// FormatVersion is the current database format version. Loaders reject
// any newer version: the compiled layouts of the engines are not
// negotiated field by field, the version stands for all of them.
//
// Version history:
//
//	1 — literal-only databases (patterns + engine/group sections).
//	2 — adds the optional TagRules section (rule-semantics tier).
//	    Version-1 files still load: the section layouts they carry are
//	    unchanged, they simply predate rules.
const FormatVersion = 2

// minFormatVersion is the oldest version this build still reads.
const minFormatVersion = 1

// Kind distinguishes the two database layouts sharing the container.
type Kind uint8

const (
	// KindEngine is a single compiled engine: one pattern set plus one
	// engine-state section.
	KindEngine Kind = 1
	// KindIDS is a whole NIDS rule-group database: the full pattern set
	// plus one group section (protocol, ID mapping, nested engine
	// database) per compiled protocol group.
	KindIDS Kind = 2
)

// Section tags.
const (
	// TagPatterns holds the encoded pattern set.
	TagPatterns uint32 = 1
	// TagEngine holds one engine's compiled state.
	TagEngine uint32 = 2
	// TagGroup holds one IDS protocol group (repeatable).
	TagGroup uint32 = 3
	// TagRules holds the compiled rule-semantics set (clause conditions
	// and regex tails layered over the pattern set). Optional; absent in
	// literal-only and pre-version-2 databases.
	TagRules uint32 = 4
)

// Header is the fixed-size file header.
type Header struct {
	Kind Kind
	// Algorithm is the numeric algorithm selector (the public package's
	// Algorithm enum). Meaningful for KindEngine and, as the groups'
	// shared algorithm, for KindIDS.
	Algorithm uint8
	// Width is the vector width in lanes for vectorized engines, 0 for
	// scalar ones.
	Width uint8
	// Digest is the pattern-set digest (patterns.Set.Digest); the load
	// path recomputes it from the decoded set and rejects mismatches.
	Digest uint64
}

// Section is one length-prefixed section of a database.
type Section struct {
	Tag  uint32
	Data []byte
}

const headerSize = 4 + 2 + 1 + 1 + 1 + 1 + 8 // magic, version, kind, alg, width, reserved, digest

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode assembles a complete database blob: header, sections, CRC.
func Encode(h Header, secs []Section) []byte {
	size := headerSize + 4
	for _, s := range secs {
		size += 4 + 8 + len(s.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = append(out, byte(h.Kind), h.Algorithm, h.Width, 0)
	out = binary.LittleEndian.AppendUint64(out, h.Digest)
	for _, s := range secs {
		out = binary.LittleEndian.AppendUint32(out, s.Tag)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.Data)))
		out = append(out, s.Data...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// Decode validates a database blob (magic, version, CRC) and splits it
// into header and sections. The returned section data aliases data.
func Decode(data []byte) (Header, []Section, error) {
	var h Header
	if len(data) < headerSize+4 {
		return h, nil, fmt.Errorf("dbfmt: %d bytes is too short for a database", len(data))
	}
	if string(data[:4]) != Magic {
		return h, nil, fmt.Errorf("dbfmt: bad magic %q (not a compiled pattern database)", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v < minFormatVersion || v > FormatVersion {
		return h, nil, fmt.Errorf("dbfmt: format version %d not supported (this build reads versions %d..%d)", v, minFormatVersion, FormatVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return h, nil, fmt.Errorf("dbfmt: checksum mismatch (database corrupted or truncated)")
	}
	h.Kind = Kind(data[6])
	h.Algorithm = data[7]
	h.Width = data[8]
	h.Digest = binary.LittleEndian.Uint64(data[10:])

	var secs []Section
	rest := body[headerSize:]
	for len(rest) > 0 {
		if len(rest) < 12 {
			return h, nil, fmt.Errorf("dbfmt: truncated section header (%d trailing bytes)", len(rest))
		}
		tag := binary.LittleEndian.Uint32(rest)
		n := binary.LittleEndian.Uint64(rest[4:])
		rest = rest[12:]
		if n > uint64(len(rest)) {
			return h, nil, fmt.Errorf("dbfmt: section %d claims %d bytes, %d remain", tag, n, len(rest))
		}
		secs = append(secs, Section{Tag: tag, Data: rest[:n]})
		rest = rest[n:]
	}
	return h, secs, nil
}

// FindSection returns the first section with the given tag, or nil.
func FindSection(secs []Section, tag uint32) []byte {
	for _, s := range secs {
		if s.Tag == tag {
			return s.Data
		}
	}
	return nil
}

// Encoder accumulates one section's payload. The zero value is ready to
// use; writes never fail.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the payload size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Uvarint appends an unsigned varint (lengths, counts).
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes with no length prefix (fixed-size payloads whose
// length the decoder knows from elsewhere).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Int32s appends a length-prefixed []int32.
func (e *Encoder) Int32s(v []int32) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// Uint32s appends a length-prefixed []uint32.
func (e *Encoder) Uint32s(v []uint32) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.U32(x)
	}
}

// Uint16s appends a length-prefixed []uint16.
func (e *Encoder) Uint16s(v []uint16) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.U16(x)
	}
}

// Decoder reads one section's payload back. Every read is bounds
// checked; the first failure latches an error and all further reads
// return zero values, so decode code can read a whole structure and
// check Err once. Length-prefixed reads validate the claimed length
// against the remaining input before allocating, which bounds total
// allocation by the input size.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dbfmt: "+format, args...)
	}
}

// Fail records a caller-detected validation error (engine decoders use
// it for semantic checks on decoded values).
func (d *Decoder) Fail(format string, args ...any) { d.failf(format, args...) }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.failf("need %d bytes, %d remain", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool reads a strict bool (0 or 1).
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.failf("invalid bool byte %d", v)
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if b := d.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.failf("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Count reads a varint element count and validates that count*elemSize
// bytes can still follow, so array reads cannot be tricked into huge
// allocations by a corrupt length.
func (d *Decoder) Count(elemSize int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > math.MaxInt32 || int64(v)*int64(elemSize) > int64(d.Remaining()) {
		d.failf("count %d x %d bytes exceeds %d remaining", v, elemSize, d.Remaining())
		return 0
	}
	return int(v)
}

// CountAtMost reads a varint element count and validates 0 <= n <=
// max. It is the guard for per-element counts whose elements land in a
// shared flat array validated later: casting an unchecked varint to
// int can wrap negative on 64-bit inputs and slip past `n > remaining`
// style checks, so every such count must come through here (or Count).
func (d *Decoder) CountAtMost(max int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if max < 0 || v > uint64(max) {
		d.failf("count %d exceeds limit %d", v, max)
		return 0
	}
	return int(v)
}

// Blob reads a length-prefixed byte slice. The result aliases the
// decoder's buffer (no copy); callers treat it as read-only.
func (d *Decoder) Blob() []byte {
	n := d.Count(1)
	return d.take(n)
}

// Raw reads exactly n bytes (no length prefix), aliasing the buffer.
func (d *Decoder) Raw(n int) []byte { return d.take(n) }

// Int32s reads a length-prefixed []int32.
func (d *Decoder) Int32s() []int32 {
	n := d.Count(4)
	b := d.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// Uint32s reads a length-prefixed []uint32.
func (d *Decoder) Uint32s() []uint32 {
	n := d.Count(4)
	b := d.take(n * 4)
	if b == nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// Uint16s reads a length-prefixed []uint16.
func (d *Decoder) Uint16s() []uint16 {
	n := d.Count(2)
	b := d.take(n * 2)
	if b == nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out
}

// Finish reports an error if undecoded bytes remain or a read failed —
// the standard last call of an engine decoder.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("dbfmt: %d undecoded trailing bytes", d.Remaining())
	}
	return nil
}
