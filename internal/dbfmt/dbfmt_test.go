package dbfmt

import (
	"bytes"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: KindEngine, Algorithm: 3, Width: 8, Digest: 0xDEADBEEFCAFEF00D}
	secs := []Section{
		{Tag: TagPatterns, Data: []byte("pats")},
		{Tag: TagEngine, Data: []byte{1, 2, 3}},
		{Tag: TagGroup, Data: nil},
	}
	blob := Encode(h, secs)
	gh, gsecs, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gh != h {
		t.Fatalf("header mismatch: got %+v want %+v", gh, h)
	}
	if len(gsecs) != len(secs) {
		t.Fatalf("got %d sections, want %d", len(gsecs), len(secs))
	}
	for i := range secs {
		if gsecs[i].Tag != secs[i].Tag || !bytes.Equal(gsecs[i].Data, secs[i].Data) {
			t.Errorf("section %d: got %+v want %+v", i, gsecs[i], secs[i])
		}
	}
	if got := FindSection(gsecs, TagEngine); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("FindSection(TagEngine) = %v", got)
	}
	if got := FindSection(gsecs, 99); got != nil {
		t.Errorf("FindSection(99) = %v, want nil", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := Encode(Header{Kind: KindEngine}, []Section{{Tag: TagEngine, Data: make([]byte, 64)}})

	if _, _, err := Decode(nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, _, err := Decode(blob[:len(blob)-1]); err == nil {
		t.Error("truncated input: want error")
	}
	bad := append([]byte("XXXX"), blob[4:]...)
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad magic: want error")
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 0xFF // version
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad version: want error")
	}
	for i := 6; i < len(blob); i += 7 {
		bad = append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("bit flip at %d: want error", i)
		}
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(1 << 40)
	e.Uvarint(300)
	e.Blob([]byte("hello"))
	e.Int32s([]int32{-1, 0, 1 << 30})
	e.Uint32s([]uint32{42})
	e.Uint16s([]uint16{1, 2, 3})
	e.Raw([]byte{9, 9})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Blob(); string(got) != "hello" {
		t.Errorf("Blob = %q", got)
	}
	i32 := d.Int32s()
	if len(i32) != 3 || i32[0] != -1 || i32[2] != 1<<30 {
		t.Errorf("Int32s = %v", i32)
	}
	if got := d.Uint32s(); len(got) != 1 || got[0] != 42 {
		t.Errorf("Uint32s = %v", got)
	}
	if got := d.Uint16s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("Uint16s = %v", got)
	}
	if got := d.Raw(2); len(got) != 2 || got[0] != 9 {
		t.Errorf("Raw = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestDecoderBoundsAndStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U32() // short read
	if d.Err() == nil {
		t.Fatal("short U32: want error")
	}
	// All further reads stay zero without panicking.
	if d.U64() != 0 || d.Blob() != nil || d.Int32s() != nil {
		t.Error("reads after error should return zero values")
	}

	// A huge claimed count must be rejected before allocation.
	var e Encoder
	e.Uvarint(1 << 40)
	d = NewDecoder(e.Bytes())
	if got := d.Int32s(); got != nil || d.Err() == nil {
		t.Error("oversized count: want error, no allocation")
	}

	// Trailing garbage is an error at Finish.
	d = NewDecoder([]byte{1, 2, 3})
	_ = d.U8()
	if err := d.Finish(); err == nil {
		t.Error("trailing bytes: want Finish error")
	}

	// Bool rejects values other than 0/1.
	d = NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Error("Bool(2): want error")
	}
}
