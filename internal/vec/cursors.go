package vec

import "math/bits"

// Lane-per-packet batch execution. In the serial algorithm every lane of
// a register holds a *consecutive position of one buffer*; in batch mode
// every lane walks a *different buffer* of the batch, so one gather
// serves W packets and a drained lane immediately takes the next pending
// buffer instead of idling. Cursors is the per-lane state of that mode,
// and the helpers below are the batched analogues of Windows2/Windows4/
// CompressStore.

// Cursors tracks, for each lane, which buffer of the batch the lane is
// walking (Buf) and the lane's current position inside it (Pos). Lanes
// outside the caller's active mask are idle and their entries are
// meaningless.
type Cursors struct {
	Buf [MaxLanes]int32
	Pos [MaxLanes]int32
}

// PackCursor encodes one (buffer, position) candidate as buf<<32|pos,
// the packed form the batched candidate arrays store.
func PackCursor(buf, pos int32) int64 { return int64(buf)<<32 | int64(uint32(pos)) }

// UnpackCursor is the inverse of PackCursor.
func UnpackCursor(pc int64) (buf, pos int32) { return int32(pc >> 32), int32(uint32(pc)) }

// GatherWindows2 builds the 2-byte sliding window of every active lane's
// cursor: lane i reads bufs[cur.Buf[i]] at cur.Pos[i]. This is the
// lane-per-packet rendition of Windows2 — one gather-shaped access
// serving W different buffers. Idle lanes produce 0. The caller must
// keep every active cursor at least 2 bytes inside its buffer.
func (e *Engine) GatherWindows2(bufs [][]byte, cur *Cursors, active Mask) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		if !active.Test(i) {
			continue
		}
		b := bufs[cur.Buf[i]]
		p := cur.Pos[i]
		r[i] = uint32(b[p]) | uint32(b[p+1])<<8
	}
	return r
}

// GatherWindows4 builds the 4-byte sliding windows of the active
// cursors (the speculative filter-3 input). The caller must keep every
// active cursor at least 4 bytes inside its buffer.
func (e *Engine) GatherWindows4(bufs [][]byte, cur *Cursors, active Mask) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		if !active.Test(i) {
			continue
		}
		b := bufs[cur.Buf[i]]
		p := cur.Pos[i]
		r[i] = uint32(b[p]) | uint32(b[p+1])<<8 |
			uint32(b[p+2])<<16 | uint32(b[p+3])<<24
	}
	return r
}

// Advance increments the position of every active lane — the batched
// loop's step (each lane moves one position within its own buffer).
func (e *Engine) Advance(cur *Cursors, active Mask) {
	for w := uint32(active); w != 0; w &= w - 1 {
		cur.Pos[bits.TrailingZeros32(w)]++
	}
}

// CompressStoreCursors appends the packed (buffer, position) candidate
// of every active lane of m to dst and returns the extended slice: the
// batch-mode "store positions of matches" step, where a stored position
// must also identify which buffer it belongs to.
func (e *Engine) CompressStoreCursors(dst []int64, cur *Cursors, m Mask) []int64 {
	for w := uint32(m); w != 0; w &= w - 1 {
		l := bits.TrailingZeros32(w)
		dst = append(dst, PackCursor(cur.Buf[l], cur.Pos[l]))
	}
	return dst
}
