//go:build amd64 && !purego

#include "textflag.h"

// Native filtering-round classifiers (see kernel.go for the contracts).
// Both routines are leaf NOSPLIT functions over caller-pinned memory:
// //go:noescape keeps the input buffer and tables off the heap-escape
// path, and neither touches the stack guard.

// shufWin expands a 16-byte load into eight 2-byte sliding windows:
// byte pairs (0,1) (1,2) ... (7,8) land in the eight 16-bit lanes.
DATA shufWin<>+0(SB)/8, $0x0403030202010100
DATA shufWin<>+8(SB)/8, $0x0807070606050504
GLOBL shufWin<>(SB), RODATA|NOPTR, $16

// const31 broadcasts the 5-bit shift mask for the bit-test trick:
// shamt = ^w & 31 = 31 - (w & 31), so shifting the gathered bitmap
// word left by shamt moves window w's bit into the dword sign bit.
DATA const31<>+0(SB)/4, $31
GLOBL const31<>(SB), RODATA|NOPTR, $4

// nibMask splits bytes into nibbles for the Truffle tables.
DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// bitselLo/bitselHi select the high-nibble bit of each Truffle table:
// bitselLo[h] = 1<<h for h in 0..7 (0 above), bitselHi[h] = 1<<(h-8)
// for h in 8..15 (0 below).
DATA bitselLo<>+0(SB)/8, $0x8040201008040201
DATA bitselLo<>+8(SB)/8, $0x0000000000000000
GLOBL bitselLo<>(SB), RODATA|NOPTR, $16

DATA bitselHi<>+0(SB)/8, $0x0000000000000000
DATA bitselHi<>+8(SB)/8, $0x8040201008040201
GLOBL bitselHi<>(SB), RODATA|NOPTR, $16

// func ViableMask64(p *byte, bitmap *uint64) uint64
//
// Eight groups of eight positions. Per group: one unaligned 16-byte
// load, VPSHUFB into eight 2-byte windows, zero-extend to dwords,
// VPGATHERDD on the bitmap (viewed as 2048 dwords, index w>>5), then
// VPSLLVD by ^w&31 parks each window's bit in its dword's sign bit and
// VMOVMSKPS compresses the group into 8 mask bits. The gather mask is
// all-ones and re-materialized per gather (VPGATHERDD consumes it).
TEXT ·ViableMask64(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ bitmap+8(FP), DX
	VMOVDQU      shufWin<>(SB), X6
	VPBROADCASTD const31<>(SB), Y5
	XORQ R9, R9  // result accumulator
	XORQ R10, R10 // group byte offset == result shift (8 per group)

avx2_group:
	VMOVDQU   (SI)(R10*1), X0
	VPSHUFB   X6, X0, X0            // eight 16-bit windows
	VPMOVZXWD X0, Y0                // eight dword window indexes w
	VPSRLD    $5, Y0, Y1            // dword index w>>5
	VPCMPEQD  Y7, Y7, Y7            // gather mask: all lanes active
	VPGATHERDD Y7, (DX)(Y1*4), Y2   // bitmap dwords
	VPANDN    Y5, Y0, Y3            // shamt = ^w & 31
	VPSLLVD   Y3, Y2, Y2            // window bit -> sign bit
	VMOVMSKPS Y2, AX                // eight survivor bits
	MOVQ      R10, CX
	SHLQ      CX, AX
	ORQ       AX, R9
	ADDQ      $8, R10
	CMPQ      R10, $64
	JNE       avx2_group

	VZEROUPPER
	MOVQ R9, ret+16(FP)
	RET

// func PairMask32(p *byte, tabs *PairTabs) uint32
//
// Two blocks of sixteen positions. Per block, Truffle-style exact set
// membership for the first byte (tables tabs[0:32]) and the second
// byte (tables tabs[32:64]): res = (tbl1[lo] & bitselLo[hi]) |
// (tbl2[lo] & bitselHi[hi]) is nonzero iff the byte is in the set.
// Zero-compare + PMOVMSKB gives the complement mask per set; the final
// block mask is ~(z1|z2). SSE PSHUFB is two-operand (the table operand
// is destroyed), so tables reload from L1 per use.
TEXT ·PairMask32(SB), NOSPLIT, $0-20
	MOVQ  p+0(FP), SI
	MOVQ  tabs+8(FP), DX
	MOVOU nibMask<>(SB), X6
	PXOR  X5, X5
	XORQ  R9, R9  // result accumulator
	XORQ  R10, R10 // block byte offset == result shift (16 per block)

ssse3_block:
	// First-byte membership: zero mask -> AX.
	MOVOU (SI)(R10*1), X0
	MOVOU X0, X1
	PAND  X6, X1            // lo nibbles
	PSRLW $4, X0
	PAND  X6, X0            // hi nibbles
	MOVOU (DX), X3          // first tbl1
	PSHUFB X1, X3
	MOVOU bitselLo<>(SB), X4
	PSHUFB X0, X4
	PAND  X3, X4
	MOVOU 16(DX), X3        // first tbl2
	PSHUFB X1, X3
	MOVOU bitselHi<>(SB), X7
	PSHUFB X0, X7
	PAND  X3, X7
	POR   X7, X4            // res1
	PCMPEQB X5, X4          // bytes: res1 == 0
	PMOVMSKB X4, AX

	// Second-byte membership (input shifted one byte): zero mask -> BX.
	MOVOU 1(SI)(R10*1), X0
	MOVOU X0, X1
	PAND  X6, X1
	PSRLW $4, X0
	PAND  X6, X0
	MOVOU 32(DX), X3        // second tbl1
	PSHUFB X1, X3
	MOVOU bitselLo<>(SB), X4
	PSHUFB X0, X4
	PAND  X3, X4
	MOVOU 48(DX), X3        // second tbl2
	PSHUFB X1, X3
	MOVOU bitselHi<>(SB), X7
	PSHUFB X0, X7
	PAND  X3, X7
	POR   X7, X4            // res2
	PCMPEQB X5, X4          // bytes: res2 == 0
	PMOVMSKB X4, BX

	ORL   BX, AX
	NOTL  AX
	ANDL  $0xffff, AX
	MOVQ  R10, CX
	SHLQ  CX, AX
	ORQ   AX, R9
	ADDQ  $16, R10
	CMPQ  R10, $32
	JNE   ssse3_block

	MOVL R9, ret+16(FP)
	RET
