//go:build !amd64 || purego

package vec

import "unsafe"

// Without the amd64 assembly (foreign architecture or the purego build
// tag) no native kernel is available and dispatch resolves to SWAR; the
// entry points below keep the package API identical so callers need no
// build tags of their own. They are correct (they mirror the Ref
// functions) but not fast — nothing selects them when hasAsm is false.
var (
	hasAVX2Kernel  = false
	hasSSSE3Kernel = false
)

// ViableMask64 is the pure-Go stand-in for the AVX2 classifier.
func ViableMask64(p *byte, bitmap *uint64) uint64 {
	in := unsafe.Slice(p, ViableLookahead)
	bm := (*[1024]uint64)(unsafe.Pointer(bitmap))
	return ViableMask64Ref(in, 0, bm)
}

// PairMask32 is the pure-Go stand-in for the SSSE3 classifier.
func PairMask32(p *byte, tabs *PairTabs) uint32 {
	in := unsafe.Slice(p, PairLookahead)
	return PairMask32Ref(in, 0, tabs)
}
