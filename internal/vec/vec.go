// Package vec is a software rendition of the SIMD execution model the paper
// relies on: W-lane vector registers of 32-bit elements, the gather
// instruction (fetch from W non-contiguous memory locations), the shuffle
// instruction (arbitrary byte permutation inside a register), and movemask
// (condense per-lane predicates into a scalar bit mask).
//
// Pure Go exposes no SIMD intrinsics, so every operation is implemented as
// a short, branch-free loop over the active lanes. The point of the layer is
// architectural fidelity, not hardware parallelism: V-PATCH written against
// this package has exactly the paper's instruction structure (one merged
// gather per W windows, speculative masked filter-3, movemask-driven
// candidate extraction, 2x unrolling), its lane-occupancy statistics are
// measurable exactly as defined in Fig. 5b, and its output is verifiable
// lane-for-lane against the scalar algorithm. internal/costmodel converts
// the instruction counts into modeled Haswell / Xeon-Phi throughput.
package vec

import (
	"fmt"
	"math/bits"
)

// MaxLanes is the widest supported register: 16 x 32-bit lanes = 512 bits,
// the Xeon-Phi configuration.
const MaxLanes = 16

// Supported register widths in 32-bit lanes:
//
//	4  = SSE/128-bit
//	8  = AVX2/256-bit (Haswell, the paper's commodity platform)
//	16 = AVX-512/Xeon-Phi 512-bit
var SupportedWidths = []int{4, 8, 16}

// U32 is a vector register of up to MaxLanes 32-bit elements. Engines
// configured with W < MaxLanes only use the first W lanes.
type U32 [MaxLanes]uint32

// Bytes is a raw byte register (64 bytes = one 512-bit register).
type Bytes [MaxLanes * 4]byte

// Mask is a per-lane predicate: bit i set means lane i is active.
type Mask uint32

// Any reports whether at least one lane is active.
func (m Mask) Any() bool { return m != 0 }

// Count returns the number of active lanes — the paper's "useful elements
// in vector register" metric (Fig. 5b).
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// Test reports whether lane i is active.
func (m Mask) Test(lane int) bool { return m&(1<<lane) != 0 }

// ForEach calls fn for every active lane, in ascending lane order. It is
// the emulation of the scalar extraction loop that follows a movemask.
func (m Mask) ForEach(fn func(lane int)) {
	for w := uint32(m); w != 0; w &= w - 1 {
		fn(bits.TrailingZeros32(w))
	}
}

// Engine executes vector operations at a fixed register width.
// The zero value is not usable; construct with New.
type Engine struct {
	w        int
	laneMask Mask // (1<<w)-1
}

// New returns an Engine with w lanes. w must be one of SupportedWidths.
func New(w int) *Engine {
	for _, s := range SupportedWidths {
		if w == s {
			return &Engine{w: w, laneMask: Mask(1<<w - 1)}
		}
	}
	panic(fmt.Sprintf("vec: unsupported width %d (want one of %v)", w, SupportedWidths))
}

// Width returns the number of lanes.
func (e *Engine) Width() int { return e.w }

// LaneMask returns the all-lanes-active mask.
func (e *Engine) LaneMask() Mask { return e.laneMask }

// Broadcast returns a register with every lane equal to v
// (the _mm256_set1_epi32 idiom).
func (e *Engine) Broadcast(v uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v
	}
	return r
}

// Iota returns {base, base+1, ..., base+W-1}: the lane-position register
// used to translate lane numbers back into input offsets.
func (e *Engine) Iota(base uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = base + uint32(i)
	}
	return r
}

// LoadBytes fills a raw byte register from input[base:]. It is the
// "fill register with raw input" step (Algorithm 2, line 7). The caller
// must guarantee base+4*W+<shuffle reach> stays in bounds; WindowSpan
// gives the exact requirement for the window loads below.
func (e *Engine) LoadBytes(input []byte, base int) Bytes {
	var r Bytes
	copy(r[:], input[base:])
	return r
}

// Shuffle permutes a byte register: out[i] = r[mask[i]] for mask[i] >= 0,
// and 0 where mask[i] < 0 (the pshufb zeroing convention). Only the first
// 4*W output bytes are produced.
func (e *Engine) Shuffle(r Bytes, mask []int8) Bytes {
	var out Bytes
	n := 4 * e.w
	if len(mask) < n {
		panic("vec: shuffle mask shorter than register")
	}
	for i := 0; i < n; i++ {
		if mask[i] >= 0 {
			out[i] = r[mask[i]]
		}
	}
	return out
}

// Window2Mask builds the shuffle mask M1 that converts consecutive input
// bytes into W lanes each holding a 2-byte sliding window in its low half
// (Fig. 2): lane i = input[i] | input[i+1]<<8.
func (e *Engine) Window2Mask() []int8 {
	m := make([]int8, 4*e.w)
	for i := 0; i < e.w; i++ {
		m[4*i] = int8(i)
		m[4*i+1] = int8(i + 1)
		m[4*i+2] = -1
		m[4*i+3] = -1
	}
	return m
}

// Window4Mask builds the shuffle mask M2 for 4-byte sliding windows:
// lane i = little-endian 32-bit load of input[i..i+3].
func (e *Engine) Window4Mask() []int8 {
	m := make([]int8, 4*e.w)
	for i := 0; i < e.w; i++ {
		for j := 0; j < 4; j++ {
			m[4*i+j] = int8(i + j)
		}
	}
	return m
}

// ToU32 reinterprets a byte register as W little-endian 32-bit lanes.
func (e *Engine) ToU32(r Bytes) U32 {
	var out U32
	for i := 0; i < e.w; i++ {
		out[i] = uint32(r[4*i]) | uint32(r[4*i+1])<<8 |
			uint32(r[4*i+2])<<16 | uint32(r[4*i+3])<<24
	}
	return out
}

// WindowSpan returns how many input bytes an iteration starting at base
// consumes: W windows of up to 4 bytes each need W+3 bytes.
func (e *Engine) WindowSpan() int { return e.w + 3 }

// Windows2 is the fused load+shuffle producing W 2-byte sliding windows
// starting at input[base]. Semantically identical to
// ToU32(Shuffle(LoadBytes(input, base), Window2Mask())).
func (e *Engine) Windows2(input []byte, base int) U32 {
	var r U32
	_ = input[base+e.w] // one bounds check for the whole register
	for i := 0; i < e.w; i++ {
		r[i] = uint32(input[base+i]) | uint32(input[base+i+1])<<8
	}
	return r
}

// Windows4 is the fused load+shuffle producing W 4-byte sliding windows.
func (e *Engine) Windows4(input []byte, base int) U32 {
	var r U32
	_ = input[base+e.w+2]
	for i := 0; i < e.w; i++ {
		r[i] = uint32(input[base+i]) | uint32(input[base+i+1])<<8 |
			uint32(input[base+i+2])<<16 | uint32(input[base+i+3])<<24
	}
	return r
}

// GatherU8 fetches table[idx[i]] into lane i — the vpgatherdd access
// pattern restricted to byte tables. Indexes are the caller's
// responsibility to keep in range (filters mask them beforehand).
func (e *Engine) GatherU8(table []byte, idx U32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = uint32(table[idx[i]])
	}
	return r
}

// GatherU16 fetches 16-bit words: the merged-filter gather (Fig. 3) that
// brings filter-1 and filter-2 state into the register simultaneously.
func (e *Engine) GatherU16(table []uint16, idx U32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = uint32(table[idx[i]])
	}
	return r
}

// ShiftRightConst returns v >> k per lane.
func (e *Engine) ShiftRightConst(v U32, k uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v[i] >> k
	}
	return r
}

// AndConst returns v & c per lane.
func (e *Engine) AndConst(v U32, c uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v[i] & c
	}
	return r
}

// AddConst returns v + c per lane (e.g. selecting the merged filter's
// high bit plane by offsetting the bit position by 8).
func (e *Engine) AddConst(v U32, c uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v[i] + c
	}
	return r
}

// And returns a & b per lane.
func (e *Engine) And(a, b U32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = a[i] & b[i]
	}
	return r
}

// MulConst returns v * c per lane (the multiplicative hash step).
func (e *Engine) MulConst(v U32, c uint32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v[i] * c
	}
	return r
}

// ShiftRightVar returns v[i] >> k[i] per lane (variable shift, AVX2 vpsrlvd).
func (e *Engine) ShiftRightVar(v, k U32) U32 {
	var r U32
	for i := 0; i < e.w; i++ {
		r[i] = v[i] >> (k[i] & 31)
	}
	return r
}

// TestBit extracts bit (pos[i] & 7) of word[i] per lane and returns the
// movemask of the results: the filter membership test. A second bit plane
// (e.g. the merged filter's high byte) is selected by adding 8 to pos.
func (e *Engine) TestBit(word, pos U32) Mask {
	var m Mask
	for i := 0; i < e.w; i++ {
		m |= Mask((word[i]>>(pos[i]&15))&1) << i
	}
	return m
}

// MovemaskNonzero returns the mask of lanes whose value is non-zero
// (vpcmpeqd against zero + movemask, inverted).
func (e *Engine) MovemaskNonzero(v U32) Mask {
	var m Mask
	for i := 0; i < e.w; i++ {
		if v[i] != 0 {
			m |= 1 << i
		}
	}
	return m
}

// CompressStore appends base+lane for every active lane of m to dst and
// returns the extended slice. This is the "store positions of matches"
// step (Algorithm 2, lines 11 and 19): a movemask followed by a scalar
// extraction loop over set bits.
func (e *Engine) CompressStore(dst []int32, base int32, m Mask) []int32 {
	for w := uint32(m); w != 0; w &= w - 1 {
		dst = append(dst, base+int32(bits.TrailingZeros32(w)))
	}
	return dst
}
