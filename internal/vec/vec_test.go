package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func engines() []*Engine {
	return []*Engine{New(4), New(8), New(16)}
}

func TestNewWidths(t *testing.T) {
	for _, w := range SupportedWidths {
		e := New(w)
		if e.Width() != w {
			t.Errorf("New(%d).Width() = %d", w, e.Width())
		}
		if e.LaneMask().Count() != w {
			t.Errorf("New(%d).LaneMask().Count() = %d", w, e.LaneMask().Count())
		}
	}
}

func TestNewUnsupportedPanics(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 5, 7, 9, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestMaskBasics(t *testing.T) {
	var m Mask
	if m.Any() {
		t.Fatal("zero mask reports Any")
	}
	m = 0b1011
	if !m.Any() || m.Count() != 3 {
		t.Fatalf("mask 0b1011: Any=%v Count=%d", m.Any(), m.Count())
	}
	if !m.Test(0) || !m.Test(1) || m.Test(2) || !m.Test(3) {
		t.Fatal("Test reads wrong bits")
	}
	var lanes []int
	m.ForEach(func(l int) { lanes = append(lanes, l) })
	want := []int{0, 1, 3}
	if len(lanes) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", lanes, want)
	}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", lanes, want)
		}
	}
}

func TestBroadcastAndIota(t *testing.T) {
	for _, e := range engines() {
		b := e.Broadcast(0xDEAD)
		io := e.Iota(100)
		for i := 0; i < e.Width(); i++ {
			if b[i] != 0xDEAD {
				t.Fatalf("W=%d lane %d: broadcast %#x", e.Width(), i, b[i])
			}
			if io[i] != uint32(100+i) {
				t.Fatalf("W=%d lane %d: iota %d", e.Width(), i, io[i])
			}
		}
	}
}

func TestWindows2MatchesScalar(t *testing.T) {
	input := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	for _, e := range engines() {
		r := e.Windows2(input, 3)
		for i := 0; i < e.Width(); i++ {
			want := uint32(input[3+i]) | uint32(input[4+i])<<8
			if r[i] != want {
				t.Fatalf("W=%d lane %d: got %#x want %#x", e.Width(), i, r[i], want)
			}
		}
	}
}

func TestWindows4MatchesScalar(t *testing.T) {
	input := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	for _, e := range engines() {
		r := e.Windows4(input, 5)
		for i := 0; i < e.Width(); i++ {
			want := uint32(input[5+i]) | uint32(input[6+i])<<8 |
				uint32(input[7+i])<<16 | uint32(input[8+i])<<24
			if r[i] != want {
				t.Fatalf("W=%d lane %d: got %#x want %#x", e.Width(), i, r[i], want)
			}
		}
	}
}

// The fused Windows2/Windows4 loads must be exactly equivalent to the
// paper's explicit load+shuffle pipeline (Fig. 2).
func TestWindowsEquivalentToLoadShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	input := make([]byte, 256)
	rng.Read(input)
	for _, e := range engines() {
		base := 17
		raw := e.LoadBytes(input, base)

		viaShuffle2 := e.ToU32(e.Shuffle(raw, e.Window2Mask()))
		fused2 := e.Windows2(input, base)
		viaShuffle4 := e.ToU32(e.Shuffle(raw, e.Window4Mask()))
		fused4 := e.Windows4(input, base)
		for i := 0; i < e.Width(); i++ {
			if viaShuffle2[i] != fused2[i] {
				t.Fatalf("W=%d lane %d: shuffle path %#x != fused %#x (2-byte)",
					e.Width(), i, viaShuffle2[i], fused2[i])
			}
			if viaShuffle4[i] != fused4[i] {
				t.Fatalf("W=%d lane %d: shuffle path %#x != fused %#x (4-byte)",
					e.Width(), i, viaShuffle4[i], fused4[i])
			}
		}
	}
}

func TestShuffleZeroing(t *testing.T) {
	e := New(4)
	var r Bytes
	for i := range r {
		r[i] = byte(i + 1)
	}
	mask := make([]int8, 16)
	for i := range mask {
		mask[i] = -1
	}
	mask[0] = 5
	out := e.Shuffle(r, mask)
	if out[0] != r[5] {
		t.Fatalf("out[0] = %d, want %d", out[0], r[5])
	}
	for i := 1; i < 16; i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d, want 0 (pshufb zeroing)", i, out[i])
		}
	}
}

func TestShuffleShortMaskPanics(t *testing.T) {
	e := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("short shuffle mask did not panic")
		}
	}()
	e.Shuffle(Bytes{}, make([]int8, 4))
}

func TestGatherU8(t *testing.T) {
	table := make([]byte, 256)
	for i := range table {
		table[i] = byte(255 - i)
	}
	for _, e := range engines() {
		idx := e.Iota(10)
		r := e.GatherU8(table, idx)
		for i := 0; i < e.Width(); i++ {
			if r[i] != uint32(table[10+i]) {
				t.Fatalf("W=%d lane %d: %d", e.Width(), i, r[i])
			}
		}
	}
}

func TestGatherU16(t *testing.T) {
	table := make([]uint16, 512)
	for i := range table {
		table[i] = uint16(i * 3)
	}
	for _, e := range engines() {
		idx := e.Iota(7)
		r := e.GatherU16(table, idx)
		for i := 0; i < e.Width(); i++ {
			if r[i] != uint32(table[7+i]) {
				t.Fatalf("W=%d lane %d: %d", e.Width(), i, r[i])
			}
		}
	}
}

func TestArithmeticOps(t *testing.T) {
	e := New(8)
	v := e.Iota(1) // 1..8
	shifted := e.ShiftRightConst(v, 1)
	anded := e.AndConst(v, 1)
	mul := e.MulConst(v, 10)
	for i := 0; i < 8; i++ {
		x := uint32(i + 1)
		if shifted[i] != x>>1 {
			t.Fatalf("shift lane %d: %d", i, shifted[i])
		}
		if anded[i] != x&1 {
			t.Fatalf("and lane %d: %d", i, anded[i])
		}
		if mul[i] != x*10 {
			t.Fatalf("mul lane %d: %d", i, mul[i])
		}
	}
}

func TestAddConst(t *testing.T) {
	e := New(8)
	r := e.AddConst(e.Iota(0), 8)
	for i := 0; i < 8; i++ {
		if r[i] != uint32(i+8) {
			t.Fatalf("lane %d: %d", i, r[i])
		}
	}
}

func TestAndAndShiftVar(t *testing.T) {
	e := New(4)
	a := U32{0b1100, 0b1010, 0xFF, 0}
	b := U32{0b1010, 0b1010, 0x0F, 0xFFFF}
	r := e.And(a, b)
	want := U32{0b1000, 0b1010, 0x0F, 0}
	for i := 0; i < 4; i++ {
		if r[i] != want[i] {
			t.Fatalf("And lane %d: %#x want %#x", i, r[i], want[i])
		}
	}
	k := U32{0, 1, 4, 35} // 35 wraps to 3 (x86 variable shifts use the low bits)
	s := e.ShiftRightVar(U32{8, 8, 32, 32}, k)
	wantS := U32{8, 4, 2, 4}
	for i := 0; i < 4; i++ {
		if s[i] != wantS[i] {
			t.Fatalf("ShiftRightVar lane %d: %d want %d", i, s[i], wantS[i])
		}
	}
}

func TestTestBit(t *testing.T) {
	e := New(4)
	words := U32{0b0001, 0b0010, 0xFF00, 0}
	pos := U32{0, 1, 9, 3}
	m := e.TestBit(words, pos)
	if m != 0b0111 {
		t.Fatalf("TestBit mask = %04b, want 0111", m)
	}
}

func TestTestBitHighPlane(t *testing.T) {
	// Selecting bit pos+8 reads the merged filter's second plane.
	e := New(4)
	words := U32{1 << 8, 1 << 9, 1, 1 << 15}
	pos := U32{0 + 8, 1 + 8, 2 + 8, 7 + 8}
	m := e.TestBit(words, pos)
	if m != 0b1011 {
		t.Fatalf("high-plane mask = %04b, want 1011", m)
	}
}

func TestMovemaskNonzero(t *testing.T) {
	e := New(8)
	v := U32{0, 1, 0, 2, 0, 0, 7, 0}
	m := e.MovemaskNonzero(v)
	if m != 0b01001010 {
		t.Fatalf("mask = %08b", m)
	}
}

func TestCompressStore(t *testing.T) {
	e := New(8)
	dst := e.CompressStore(nil, 100, 0b10000101)
	want := []int32{100, 102, 107}
	if len(dst) != len(want) {
		t.Fatalf("got %v want %v", dst, want)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("got %v want %v", dst, want)
		}
	}
}

func TestCompressStoreAppends(t *testing.T) {
	e := New(4)
	dst := []int32{1, 2}
	dst = e.CompressStore(dst, 10, 0b0001)
	if len(dst) != 3 || dst[2] != 10 {
		t.Fatalf("got %v", dst)
	}
}

func TestWindowSpan(t *testing.T) {
	for _, e := range engines() {
		if e.WindowSpan() != e.Width()+3 {
			t.Fatalf("W=%d span %d", e.Width(), e.WindowSpan())
		}
	}
}

// Property: for random inputs and bases, each lane of Windows4 equals the
// scalar 32-bit little-endian load at the lane's position.
func TestWindows4Property(t *testing.T) {
	e := New(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		input := make([]byte, 64)
		rng.Read(input)
		base := int(rng.Int31n(int32(len(input) - e.WindowSpan())))
		r := e.Windows4(input, base)
		for i := 0; i < e.Width(); i++ {
			p := input[base+i:]
			want := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
			if r[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CompressStore emits exactly the set lanes, in order.
func TestCompressStoreProperty(t *testing.T) {
	e := New(16)
	f := func(m uint16, base int32) bool {
		got := e.CompressStore(nil, base, Mask(m))
		var want []int32
		for i := 0; i < 16; i++ {
			if m&(1<<i) != 0 {
				want = append(want, base+int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGatherU16W8(b *testing.B) {
	e := New(8)
	table := make([]uint16, 8192)
	idx := e.Iota(0)
	b.ResetTimer()
	var sink U32
	for i := 0; i < b.N; i++ {
		idx[0] = uint32(i) & 8191
		sink = e.GatherU16(table, idx)
	}
	_ = sink
}

func BenchmarkWindows2W8(b *testing.B) {
	e := New(8)
	input := make([]byte, 4096)
	b.ResetTimer()
	var sink U32
	for i := 0; i < b.N; i++ {
		sink = e.Windows2(input, i&2047)
	}
	_ = sink
}
