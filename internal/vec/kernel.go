package vec

import (
	"fmt"
	"strings"
)

// Native filtering-round kernels.
//
// The emulated Engine in vec.go reproduces the paper's register
// semantics op by op for the instrumented/figure paths; the *kernels*
// here are the production counterparts: single assembly routines that
// classify a whole block of input positions against the acceleration
// layer's compile-time tables and hand back a movemask of the
// survivors, which the fused loops in internal/core compact into the
// existing prefix-sum queue. Selection happens once, at Compile or
// Deserialize time, from the CPUID probe in internal/cpu:
//
//   - KernelAVX2 (64 positions/call): VPSHUFB shuffles each 16-byte
//     load into 2-byte sliding windows, VPGATHERDD probes the 8 KB
//     window-viability bitmap for 8 windows at a time, VPSLLVD moves
//     each window's bit into the sign position and VMOVMSKPS extracts
//     the survivor mask (paper §IV-B's gather/shuffle/movemask recipe
//     applied to the skip loop, where the cycles actually go).
//   - KernelSSSE3 (32 positions/call): no gathers before AVX2, so the
//     16-lane fallback classifies the (first,second) byte pair with
//     Hyperscan-Truffle-style dual PSHUFB set membership; survivors
//     are confirmed against the exact window bitmap scalar-side.
//   - KernelSWAR: the portable fused path (accel.Table.Extract and the
//     5-positions-per-load probe loops) — always available, byte-exact
//     on every architecture, and the reference oracle the assembly is
//     property-tested against.
//
// The `purego` build tag forces the SWAR path on amd64 too (and stubs
// the assembly entry points in pure Go), which is what the cross-build
// CI matrix exercises.

// KernelID identifies a filtering-round kernel implementation.
type KernelID uint8

const (
	// KernelAuto selects the best kernel the host supports at Compile/
	// Deserialize time. It is the zero value, so existing configurations
	// keep auto-dispatch without changes.
	KernelAuto KernelID = iota
	// KernelSWAR is the portable fused path (5 positions per 8-byte
	// load). Always available; the reference oracle.
	KernelSWAR
	// KernelSSSE3 is the 16-lane PSHUFB byte-pair classifier.
	KernelSSSE3
	// KernelAVX2 is the 32-lane (two 8-dword pipelines per iteration)
	// shuffle+gather+movemask classifier.
	KernelAVX2
)

func (k KernelID) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelSWAR:
		return "swar"
	case KernelSSSE3:
		return "ssse3"
	case KernelAVX2:
		return "avx2"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// ParseKernel resolves a kernel name ("auto", "swar", "ssse3", "avx2"),
// case-insensitively.
func ParseKernel(name string) (KernelID, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "auto", "":
		return KernelAuto, nil
	case "swar", "portable", "fused":
		return KernelSWAR, nil
	case "ssse3", "sse":
		return KernelSSSE3, nil
	case "avx2", "avx":
		return KernelAVX2, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (want auto, swar, ssse3 or avx2)", name)
}

// Available reports whether kernel k can run on this host and build
// (KernelAuto and KernelSWAR always can).
func Available(k KernelID) bool {
	switch k {
	case KernelAuto, KernelSWAR:
		return true
	case KernelSSSE3:
		return hasSSSE3Kernel
	case KernelAVX2:
		return hasAVX2Kernel
	}
	return false
}

// Best returns the fastest kernel available on this host: the value
// KernelAuto resolves to.
func Best() KernelID {
	switch {
	case hasAVX2Kernel:
		return KernelAVX2
	case hasSSSE3Kernel:
		return KernelSSSE3
	}
	return KernelSWAR
}

// Kernels lists the kernels available on this host, SWAR first.
func Kernels() []KernelID {
	ks := []KernelID{KernelSWAR}
	if hasSSSE3Kernel {
		ks = append(ks, KernelSSSE3)
	}
	if hasAVX2Kernel {
		ks = append(ks, KernelAVX2)
	}
	return ks
}

// ViableMask64Ref is the portable reference for ViableMask64: bit j of
// the result is set when the little-endian 2-byte window starting at
// input[at+j] (j in 0..63) has its bit set in the 2^16-bit viability
// bitmap. Callers must guarantee at+ViableLookahead <= len(input), the
// same contract as the assembly (which reads full 16-byte groups).
func ViableMask64Ref(input []byte, at int, bitmap *[1024]uint64) uint64 {
	var m uint64
	for j := 0; j < 64; j++ {
		w := uint32(input[at+j]) | uint32(input[at+j+1])<<8
		m |= uint64((bitmap[(w>>6)&1023]>>(w&63))&1) << j
	}
	return m
}

// ViableLookahead is the bytes ViableMask64 may read past its base
// position: eight 16-byte loads at offsets 0,8,...,56.
const ViableLookahead = 72

// PairTabs is the Truffle table block PairMask32 consumes: two
// 32-byte dual-PSHUFB set descriptors (bytes 0..31 the first-byte set,
// 32..63 the second-byte set). Within each descriptor, tbl1 (bytes
// 0..15, indexed by the low nibble, one bit per high nibble 0..7) and
// tbl2 (bytes 16..31, high nibbles 8..15).
type PairTabs [64]byte

// SetMember adds byte b to the descriptor at off (0 or 32).
func (t *PairTabs) SetMember(off int, b byte) {
	lo, hi := b&15, b>>4
	if hi < 8 {
		t[off+int(lo)] |= 1 << hi
	} else {
		t[off+16+int(lo)] |= 1 << (hi - 8)
	}
}

// Member reports whether b is in the descriptor at off.
func (t *PairTabs) Member(off int, b byte) bool {
	lo, hi := b&15, b>>4
	var sel1, sel2 byte
	if hi < 8 {
		sel1 = 1 << hi
	} else {
		sel2 = 1 << (hi - 8)
	}
	return t[off+int(lo)]&sel1|t[off+16+int(lo)]&sel2 != 0
}

// PairMask32Ref is the portable reference for PairMask32: bit j is set
// when input[at+j] is in the first-byte set and input[at+j+1] in the
// second-byte set. Callers must guarantee at+PairLookahead <=
// len(input), the same contract as the assembly.
func PairMask32Ref(input []byte, at int, tabs *PairTabs) uint32 {
	var m uint32
	for j := 0; j < 32; j++ {
		if tabs.Member(0, input[at+j]) && tabs.Member(32, input[at+j+1]) {
			m |= 1 << j
		}
	}
	return m
}

// PairLookahead is the bytes PairMask32 may read past its base
// position: two 16-byte loads each at offsets 0 and 1 of each half.
const PairLookahead = 33
