package vec

import (
	"math/rand"
	"testing"
)

// The assembly classifiers are verified bit-for-bit against the
// portable references on random bitmaps/tables and random buffers at
// every alignment. On purego builds (or foreign architectures) the
// entry points *are* the references, so the tests still run and pin
// the fallback path.

func TestKernelNames(t *testing.T) {
	for _, k := range []KernelID{KernelAuto, KernelSWAR, KernelSSSE3, KernelAVX2} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKernel("mmx"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	if !Available(KernelSWAR) || !Available(KernelAuto) {
		t.Fatal("SWAR/auto must always be available")
	}
	if b := Best(); !Available(b) || b == KernelAuto {
		t.Fatalf("Best() = %v, not a concrete available kernel", b)
	}
	t.Logf("host kernels: %v (best %v)", Kernels(), Best())
}

func TestViableMask64MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var bitmap [1024]uint64
	for trial := 0; trial < 200; trial++ {
		// Sweep densities from almost-empty to almost-full.
		for i := range bitmap {
			bitmap[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			if trial%3 == 1 {
				bitmap[i] |= rng.Uint64()
			}
		}
		buf := make([]byte, 4096)
		if trial%2 == 0 {
			rng.Read(buf)
		} else {
			for i := range buf {
				buf[i] = byte("abc"[rng.Intn(3)]) // dense repeats
			}
		}
		for _, at := range []int{0, 1, 2, 3, 5, 7, 13, 63, 64, 100, len(buf) - ViableLookahead} {
			want := ViableMask64Ref(buf, at, &bitmap)
			got := ViableMask64(&buf[at], &bitmap[0])
			if got != want {
				t.Fatalf("trial %d at %d: ViableMask64 = %#x, ref %#x", trial, at, got, want)
			}
		}
	}
}

func TestPairMask32MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var tabs PairTabs
		nFirst, nSecond := rng.Intn(40), rng.Intn(40)
		for i := 0; i < nFirst; i++ {
			tabs.SetMember(0, byte(rng.Intn(256)))
		}
		for i := 0; i < nSecond; i++ {
			tabs.SetMember(32, byte(rng.Intn(256)))
		}
		buf := make([]byte, 2048)
		rng.Read(buf)
		for _, at := range []int{0, 1, 3, 15, 16, 17, 31, 32, 33, 100, len(buf) - PairLookahead} {
			want := PairMask32Ref(buf, at, &tabs)
			got := PairMask32(&buf[at], &tabs)
			if got != want {
				t.Fatalf("trial %d at %d: PairMask32 = %#x, ref %#x", trial, at, got, want)
			}
		}
	}
}

// TestPairTabsMembership pins the Truffle descriptor encode/decode on
// every byte value.
func TestPairTabsMembership(t *testing.T) {
	for b := 0; b < 256; b++ {
		var tabs PairTabs
		tabs.SetMember(0, byte(b))
		for c := 0; c < 256; c++ {
			if got, want := tabs.Member(0, byte(c)), c == b; got != want {
				t.Fatalf("member(%d) after set(%d): %v", c, b, got)
			}
			if tabs.Member(32, byte(c)) {
				t.Fatalf("second-set membership leaked from first set (b=%d c=%d)", b, c)
			}
		}
	}
}
