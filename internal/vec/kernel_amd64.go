//go:build amd64 && !purego

package vec

import "vpatch/internal/cpu"

// The assembly entry points only execute after their CPUID gate: the
// accel selection logic (accel.SelectKernel via Available) never
// chooses a kernel the host cannot run.
var (
	hasAVX2Kernel  = cpu.HasAVX2
	hasSSSE3Kernel = cpu.HasSSSE3
)

// ViableMask64 classifies the 64 positions p[0..63] against the 2^16-bit
// window-viability bitmap: bit j of the result is set when the
// little-endian 2-byte window at p+j is viable. Reads p[0..71]
// (ViableLookahead); the caller guarantees the room. AVX2.
//
//go:noescape
func ViableMask64(p *byte, bitmap *uint64) uint64

// PairMask32 classifies the 32 positions p[0..31] against the PairTabs
// byte-pair descriptor: bit j is set when p[j] is in the first-byte set
// and p[j+1] in the second-byte set. Reads p[0..32] (PairLookahead).
// SSSE3.
//
//go:noescape
func PairMask32(p *byte, tabs *PairTabs) uint32
