package dfc

import (
	"vpatch/internal/dbfmt"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// Compiled-database serialization for DFC and Vector-DFC: the three
// direct filters and the verification tables; Vector-DFC additionally
// records its vector width.

var (
	_ engine.DBCodec = (*Matcher)(nil)
	_ engine.DBCodec = (*VectorMatcher)(nil)
)

// EncodeCompiled appends DFC's compiled state (engine.DBCodec).
func (m *Matcher) EncodeCompiled(e *dbfmt.Encoder) {
	m.fs.Encode(e)
	m.verifier.Encode(e)
}

// Decode restores a DFC engine over set.
func Decode(d *dbfmt.Decoder, set *patterns.Set) (*Matcher, error) {
	fs := filters.DecodeDFC(d)
	verifier := hashtab.DecodeVerifier(d, set)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	m := &Matcher{set: set, fs: fs, verifier: verifier}
	// The acceleration table is derived state: rebuild from the decoded
	// initial filter (no format change).
	m.buildAccel()
	return m, nil
}

// EncodeCompiled appends Vector-DFC's compiled state (engine.DBCodec).
func (m *VectorMatcher) EncodeCompiled(e *dbfmt.Encoder) {
	e.U8(uint8(m.eng.Width()))
	m.fs.Encode(e)
	m.verifier.Encode(e)
}

// DecodeVector restores a Vector-DFC engine over set.
func DecodeVector(d *dbfmt.Decoder, set *patterns.Set) (*VectorMatcher, error) {
	w := int(d.U8())
	if d.Err() == nil && w != 4 && w != 8 && w != 16 {
		d.Fail("vector width %d not supported (want 4, 8 or 16)", w)
	}
	fs := filters.DecodeDFC(d)
	verifier := hashtab.DecodeVerifier(d, set)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return &VectorMatcher{set: set, fs: fs, verifier: verifier, eng: vec.New(w)}, nil
}

// MemoryFootprint reports resident bytes of DFC's compiled state
// (engine.Sizer).
func (m *Matcher) MemoryFootprint() int {
	return m.fs.SizeBytes() + m.verifier.MemoryFootprint()
}

// MemoryFootprint reports resident bytes of Vector-DFC's compiled state
// (engine.Sizer).
func (m *VectorMatcher) MemoryFootprint() int {
	return m.fs.SizeBytes() + m.verifier.MemoryFootprint()
}
