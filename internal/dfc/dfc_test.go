package dfc

import (
	"math/rand"
	"testing"

	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

func scanScalar(m *Matcher, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func scanVector(m *VectorMatcher, input []byte) []patterns.Match {
	var out []patterns.Match
	m.Scan(input, nil, func(mm patterns.Match) { out = append(out, mm) })
	return out
}

func checkBoth(t *testing.T, set *patterns.Set, input []byte) {
	t.Helper()
	want := patterns.FindAllNaive(set, input)
	if got := scanScalar(Build(set), input); !patterns.EqualMatches(got, want) {
		t.Fatalf("DFC disagrees with naive: got %d want %d matches", len(got), len(want))
	}
	for _, w := range []int{4, 8, 16} {
		if got := scanVector(BuildVector(set, w), input); !patterns.EqualMatches(got, want) {
			t.Fatalf("Vector-DFC (W=%d) disagrees with naive: got %d want %d matches", w, len(got), len(want))
		}
	}
}

func TestBasic(t *testing.T) {
	checkBoth(t, patterns.FromStrings("GET", "HTTP/1.1", "attack"), []byte("GET /attack HTTP/1.1"))
}

func TestShortFamilies(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0x90}, false, patterns.ProtoGeneric) // 1 byte
	set.Add([]byte("ab"), false, patterns.ProtoGeneric) // 2 bytes
	set.Add([]byte("xyz"), false, patterns.ProtoGeneric)
	input := append([]byte("ab xyz "), 0x90, 'a', 'b', 0x90)
	checkBoth(t, set, input)
}

func TestLongSharedPrefixes(t *testing.T) {
	checkBoth(t, patterns.FromStrings("attack", "attribute", "attain"),
		[]byte("the attribute of an attack is attainment attattatt"))
}

func TestOneBytePatternAtLastPosition(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte{0xAB}, false, patterns.ProtoGeneric)
	input := append([]byte("xxxx"), 0xAB) // match exactly at the final byte
	checkBoth(t, set, input)
}

func TestTwoBytePatternAtLastWindow(t *testing.T) {
	checkBoth(t, patterns.FromStrings("zz"), []byte("aaazz"))
}

func TestNocase(t *testing.T) {
	set := patterns.NewSet()
	set.Add([]byte("GeT"), true, patterns.ProtoHTTP)
	set.Add([]byte("Cmd.EXE"), true, patterns.ProtoHTTP)
	set.Add([]byte("exact"), false, patterns.ProtoHTTP)
	checkBoth(t, set, []byte("GET get CMD.EXE cmd.exe EXACT exact"))
}

func TestEmptyCases(t *testing.T) {
	if n := len(scanScalar(Build(patterns.NewSet()), []byte("abc"))); n != 0 {
		t.Fatalf("empty set matched %d", n)
	}
	if n := len(scanScalar(Build(patterns.FromStrings("ab")), nil)); n != 0 {
		t.Fatalf("empty input matched %d", n)
	}
	if n := len(scanVector(BuildVector(patterns.FromStrings("ab"), 8), []byte("a"))); n != 0 {
		t.Fatalf("1-byte input matched %d", n)
	}
}

func TestVectorTailShorterThanRegister(t *testing.T) {
	// Inputs shorter than W+1 exercise the pure scalar-tail path.
	set := patterns.FromStrings("ab", "bc")
	for size := 0; size < 20; size++ {
		input := make([]byte, size)
		for i := range input {
			input[i] = byte('a' + i%3)
		}
		want := patterns.FindAllNaive(set, input)
		got := scanVector(BuildVector(set, 16), input)
		if !patterns.EqualMatches(got, want) {
			t.Fatalf("size %d: vector tail wrong", size)
		}
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		set := patterns.NewSet()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			l := 1 + rng.Intn(8)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			set.Add(p, rng.Intn(5) == 0, patterns.ProtoGeneric)
		}
		input := make([]byte, 300)
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		checkBoth(t, set, input)
	}
}

func TestRealisticTraffic(t *testing.T) {
	set := patterns.GenerateS1(19).Subset(80, 2)
	input := traffic.Synthesize(traffic.ISCXDay2, 32<<10, 4, set)
	checkBoth(t, set, input)
}

func TestScalarVectorSameMatches(t *testing.T) {
	set := patterns.GenerateS1(29).Subset(200, 9)
	input := traffic.Synthesize(traffic.ISCXDay6, 64<<10, 8, set)
	a := scanScalar(Build(set), input)
	b := scanVector(BuildVector(set, 8), input)
	if !patterns.EqualMatches(a, b) {
		t.Fatalf("scalar %d vs vector %d matches", len(a), len(b))
	}
}

func TestFilterProbesOncePerPosition(t *testing.T) {
	// Every 2-byte window is either probed or proven impossible and
	// skipped by the acceleration layer; the two must account for
	// exactly one event per window.
	m := Build(patterns.FromStrings("qqqq"))
	var c metrics.Counters
	input := make([]byte, 1000)
	m.Scan(input, &c, nil)
	if c.Filter1Probes+c.SkippedBytes != 999 {
		t.Fatalf("Filter1Probes %d + SkippedBytes %d != 999 windows",
			c.Filter1Probes, c.SkippedBytes)
	}
	// A single-pattern set accelerates with bytes.IndexByte over the one
	// start byte; on all-zero input everything skips in one run.
	if c.SkippedBytes != 999 || c.AccelChances == 0 || c.AccelRuns == 0 {
		t.Fatalf("skip accounting: %+v", c)
	}
	// Input that defeats skipping (every byte viable) probes every window.
	c.Reset()
	hot := make([]byte, 500)
	for i := range hot {
		hot[i] = 'q'
	}
	m.Scan(hot, &c, nil)
	if c.Filter1Probes != 499 || c.SkippedBytes != 0 {
		t.Fatalf("dense input: probes %d skipped %d, want 499/0",
			c.Filter1Probes, c.SkippedBytes)
	}
}

func TestVectorCountsGathers(t *testing.T) {
	m := BuildVector(patterns.FromStrings("qqqq"), 8)
	var c metrics.Counters
	input := make([]byte, 1024)
	m.Scan(input, &c, nil)
	if c.Gathers == 0 || c.VectorIters == 0 {
		t.Fatalf("vector counters empty: %+v", c)
	}
	// One gather per iteration of W positions.
	if c.Gathers != c.VectorIters {
		t.Fatalf("gathers %d != iters %d", c.Gathers, c.VectorIters)
	}
}

func TestFilteringRejectsRandomInput(t *testing.T) {
	// The paper: on random data the filters reject ~95% of the input.
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set)
	var c metrics.Counters
	input := traffic.Random(256<<10, 3)
	m.Scan(input, &c, nil)
	rejectRate := 1 - float64(c.HTProbes)/float64(c.BytesScanned)
	if rejectRate < 0.80 {
		t.Fatalf("initial filter rejects only %.1f%% of random input", rejectRate*100)
	}
}

func TestFilterSizeBytes(t *testing.T) {
	m := Build(patterns.FromStrings("abcd"))
	if m.FilterSizeBytes() != 24576 {
		t.Fatalf("filter stage %d bytes, want 24 KB (3 x 8 KB)", m.FilterSizeBytes())
	}
	if m.Verifier() == nil {
		t.Fatal("verifier accessor nil")
	}
}

func TestWidthAccessor(t *testing.T) {
	if BuildVector(patterns.FromStrings("ab"), 0).Width() != 8 {
		t.Fatal("default width must be 8")
	}
	if BuildVector(patterns.FromStrings("ab"), 16).Width() != 16 {
		t.Fatal("width override ignored")
	}
}

func BenchmarkDFC2KRealistic(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := Build(set)
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}

func BenchmarkVectorDFC2KRealistic(b *testing.B) {
	set := patterns.GenerateS1(1).WebSubset()
	m := BuildVector(set, 8)
	input := traffic.Synthesize(traffic.ISCXDay2, 1<<20, 1, set)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Scan(input, nil, nil)
	}
}
