// Package dfc reproduces Direct Filter Classification (Choi et al.,
// NSDI'16), the state of the art the paper measures against, plus
// Vector-DFC, the paper's direct vectorization of DFC's filtering.
//
// DFC replaces the Aho-Corasick state machine with small cache-resident
// filters: an initial 8 KB direct filter over the first two bytes of all
// patterns, per-length-family filters behind it, and compact hash tables
// for exact verification. Filtering and verification are interleaved
// *inline*, position by position — the structural property S-PATCH later
// changes (two separate rounds), and the reason Vector-DFC gains little:
// the vectorized filter code keeps dropping back into scalar verification.
package dfc

import (
	"vpatch/internal/accel"
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// Matcher is the scalar DFC matcher. All compiled state is read-only
// after Build and Scan keeps its automaton walk in locals, so one
// Matcher may scan from any number of goroutines concurrently.
type Matcher struct {
	set      *patterns.Set
	fs       *filters.DFCSet
	verifier *hashtab.Verifier

	// accel is the skip-loop table derived from the initial filter
	// (rebuilt, not serialized, at database load). DFC's initial filter
	// is already an 8 KB L1-resident bitmap, so the acceleration win
	// here is the branchless skip loop itself, not a smaller table.
	accel *accel.Table
}

var (
	_ engine.Engine = (*Matcher)(nil)
	_ engine.Engine = (*VectorMatcher)(nil)
)

// NewScratch returns nil: DFC keeps no mutable scan state
// (engine.Engine).
func (m *Matcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *Matcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// Build compiles the pattern set into a DFC matcher.
func Build(set *patterns.Set) *Matcher {
	m := &Matcher{
		set:      set,
		fs:       filters.BuildDFC(set),
		verifier: hashtab.Build(set),
	}
	m.buildAccel()
	return m
}

// buildAccel derives the skip table from the initial filter; called at
// compile time and after database decode.
func (m *Matcher) buildAccel() {
	m.accel = accel.Build(func(idx uint32) bool { return m.fs.Initial.Test(idx) })
}

// WithoutAccel drops the skip-loop layer, restoring the paper's plain
// DFC loop on every path. The experiments package uses it so the
// figure reproductions keep measuring the paper's algorithm; call it
// before the matcher is shared. Returns m.
func (m *Matcher) WithoutAccel() *Matcher {
	m.accel = nil
	return m
}

// AccelInfo reports the acceleration configuration
// (engine.AccelReporter).
func (m *Matcher) AccelInfo() accel.Info {
	if m.accel == nil {
		return accel.Info{Mode: "off"}
	}
	return m.accel.Info()
}

// FilterSizeBytes returns the cache footprint of the filter stage.
func (m *Matcher) FilterSizeBytes() int { return m.fs.SizeBytes() }

// Verifier exposes the compact hash tables (shared with Vector-DFC).
func (m *Matcher) Verifier() *hashtab.Verifier { return m.verifier }

// accelMinInput gates the fused accelerated scan: its viable-position
// queue is a stack array the runtime zeroes per call, which only
// amortizes on buffers comfortably larger than the queue.
const accelMinInput = 2048

// Scan runs DFC over input: for every position, probe the initial filter;
// on a hit, consult the per-family filters and verify inline.
//
// Timing runs (nil counters) on large-enough input take the fused
// accelerated loop: a branchless skip round over the initial filter
// jumps runs of impossible bytes before the inline
// filter-and-verify chain runs at all, governed per span so dense
// traffic falls back to the plain loop. Instrumented runs keep the
// scalar loop, skipping with the same table and counting
// SkippedBytes/AccelChances/AccelRuns (probed + skipped positions
// always sum to every 2-byte window of the input).
func (m *Matcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	fs := m.fs
	if c == nil && n >= accelMinInput && m.accel != nil && m.accel.Enabled() {
		m.scanAccel(input, emit)
		return
	}
	t := m.accel
	useAccel := t != nil && t.Enabled()
	for i := 0; i+1 < n; i++ {
		if useAccel && !t.ViableAt(input, i) {
			j := t.Next(input, i+1, n-1)
			if c != nil {
				c.AccelChances++
				c.SkippedBytes += uint64(j - i)
				if j-i >= 8 {
					c.AccelRuns++
				}
			}
			i = j - 1 // loop increment lands on the viable position
			continue
		}
		idx := bitarr.Index2(input[i], input[i+1])
		if c != nil {
			c.Filter1Probes++
		}
		if !fs.Initial.Test(idx) {
			continue
		}
		m.initialHit(input, i, n, c, emit)
	}
	// Final byte: only 1-byte patterns can still match there.
	if n > 0 && fs.HasLen1 {
		m.verifier.VerifyShortAt(input, n-1, c, emit)
	}
}

// initialHit is DFC's inline continuation after an initial-filter hit:
// short patterns verify immediately against their direct-address tables
// (no further filtering exists for them in DFC); long patterns continue
// through the family filters.
func (m *Matcher) initialHit(input []byte, i, n int, c *metrics.Counters, emit patterns.EmitFunc) {
	fs := m.fs
	if fs.HasShort {
		if c != nil {
			c.ShortCandidates++
		}
		m.verifier.VerifyShortAt(input, i, c, emit)
	}
	if fs.HasLong && i+4 <= n {
		if c != nil {
			c.Filter2Probes++
		}
		idx := bitarr.Index2(input[i], input[i+1])
		if !fs.Long.Test(idx) {
			return
		}
		next := bitarr.Index2(input[i+2], input[i+3])
		if c != nil {
			c.Filter3Probes++
		}
		if fs.LongNext.Test(next) {
			if c != nil {
				c.LongCandidates++
			}
			m.verifier.VerifyLongAt(input, i, c, emit)
		}
	}
}

// scanAccel is the fused accelerated DFC loop. The skip predicate is
// exactly the initial filter, so every queued position is an initial
// hit and goes straight to the inline continuation; the governor falls
// back to the plain probe loop on spans where most positions hit.
func (m *Matcher) scanAccel(input []byte, emit patterns.EmitFunc) {
	n := len(input)
	fs := m.fs
	t := m.accel
	mainEnd := n - 1 // positions with a full 2-byte window
	i := 0
	if t.Mode() == accel.ModeIndexByte {
		for i < mainEnd {
			spanEnd := i + accel.SpanBytes
			if spanEnd > mainEnd {
				spanEnd = mainEnd
			}
			spanLen := spanEnd - i
			viable := 0
			for i < spanEnd {
				j := t.Next(input, i, spanEnd)
				i = j
				if i >= spanEnd {
					break
				}
				viable++
				if fs.Initial.Test(bitarr.Index2(input[i], input[i+1])) {
					m.initialHit(input, i, n, nil, emit)
				}
				i++
			}
			if !accel.KeepAccelIndex(viable, spanLen) {
				plainEnd := i + accel.PlainBytes
				if plainEnd > mainEnd {
					plainEnd = mainEnd
				}
				i = m.plainRange(input, i, plainEnd, emit)
			}
		}
	} else {
		// One queue per scan (2 KB of stack, zeroed once — amortized by
		// the accelMinInput gate), shared by every window-mode span.
		var q [accel.QueueLen]int32
		for i < mainEnd {
			spanEnd := i + accel.SpanBytes
			if spanEnd > mainEnd {
				spanEnd = mainEnd
			}
			spanLen := spanEnd - i
			var viable int
			i, viable = m.accelWindowSpan(input, i, spanEnd, &q, emit)
			if !accel.KeepAccel(viable, spanLen) {
				plainEnd := i + accel.PlainBytes
				if plainEnd > mainEnd {
					plainEnd = mainEnd
				}
				i = m.plainRange(input, i, plainEnd, emit)
			}
		}
	}
	if n > 0 && fs.HasLen1 {
		m.verifier.VerifyShortAt(input, n-1, nil, emit)
	}
}

// plainRange is the unaccelerated inline loop over [i, end),
// end <= len(input)-1. Returns end.
func (m *Matcher) plainRange(input []byte, i, end int, emit patterns.EmitFunc) int {
	n := len(input)
	fs := m.fs
	for ; i < end; i++ {
		if fs.Initial.Test(bitarr.Index2(input[i], input[i+1])) {
			m.initialHit(input, i, n, nil, emit)
		}
	}
	return end
}

// accelWindowSpan processes [i, spanEnd) with the branchless skip
// round (accel.Extract over the initial filter's bitmap): viable
// positions compact into the caller's queue and drain through the
// inline continuation. spanEnd <= len(input)-1.
func (m *Matcher) accelWindowSpan(input []byte, i, spanEnd int, q *[accel.QueueLen]int32, emit patterns.EmitFunc) (int, int) {
	n := len(input)
	t := m.accel
	w := 0
	viable := 0
	packEnd := spanEnd - 5
	if lim := n - 8; lim < packEnd {
		packEnd = lim
	}
	drain := func() {
		for _, p := range q[:w] {
			// Queued positions passed the initial filter (the skip
			// bitmap is the initial filter); continue inline.
			m.initialHit(input, int(p), n, nil, emit)
		}
		w = 0
	}
	for i <= packEnd {
		room := (accel.QueueLen - 5 - w) / 5
		if room == 0 {
			viable += w
			drain()
			continue
		}
		limit := i + (room-1)*5
		if packEnd < limit {
			limit = packEnd
		}
		i, w = t.Extract(input, i, limit, q, w)
		if w >= accel.QueueLen-5 {
			viable += w
			drain()
		}
	}
	viable += w
	drain()
	for ; i < spanEnd; i++ {
		if t.ViableWindow(uint32(input[i]) | uint32(input[i+1])<<8) {
			viable++
			m.initialHit(input, i, n, nil, emit)
		}
	}
	return i, viable
}

// VectorMatcher is Vector-DFC: the same filters and inline verification
// as DFC, but the initial-filter probes of W consecutive positions are
// executed as one vector gather; hit lanes are extracted with a movemask
// and then follow DFC's scalar path. This is the paper's "direct
// vectorization of the original DFC done by us". Like Matcher (and the
// vec.Engine it emulates registers with), it holds no mutable scan
// state, so concurrent Scans are safe.
type VectorMatcher struct {
	set      *patterns.Set
	fs       *filters.DFCSet
	verifier *hashtab.Verifier
	eng      *vec.Engine
}

// BuildVector compiles a Vector-DFC matcher with width w lanes
// (0 selects 8, the AVX2 width).
func BuildVector(set *patterns.Set, w int) *VectorMatcher {
	if w == 0 {
		w = 8
	}
	return &VectorMatcher{
		set:      set,
		fs:       filters.BuildDFC(set),
		verifier: hashtab.Build(set),
		eng:      vec.New(w),
	}
}

// Width returns the vector width in lanes.
func (m *VectorMatcher) Width() int { return m.eng.Width() }

// NewScratch returns nil: Vector-DFC keeps no mutable scan state
// (engine.Engine).
func (m *VectorMatcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *VectorMatcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// Scan runs Vector-DFC over input.
func (m *VectorMatcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	fs := m.fs
	eng := m.eng
	w := eng.Width()
	initial := fs.Initial.Bytes()

	i := 0
	for ; i+w+1 <= n; i += w {
		// W 2-byte windows, one gather over the initial filter's bytes,
		// then a movemask of the selected bits.
		idx := eng.Windows2(input, i)
		byteIdx := eng.ShiftRightConst(idx, 3)
		words := eng.GatherU8(initial, byteIdx)
		hits := eng.TestBit(words, eng.AndConst(idx, 7))
		if c != nil {
			c.VectorIters++
			c.Gathers++
			c.Filter1Probes += uint64(w)
		}
		if !hits.Any() {
			continue
		}
		// Inline (scalar) continuation per hit lane — DFC's structure.
		base := i
		hits.ForEach(func(lane int) {
			pos := base + lane
			m.scalarTail(input, pos, idx[lane], c, emit)
		})
	}
	// Scalar tail for the remaining positions.
	for ; i+1 < n; i++ {
		idx := bitarr.Index2(input[i], input[i+1])
		if c != nil {
			c.Filter1Probes++
		}
		if fs.Initial.Test(idx) {
			m.scalarTail(input, i, idx, c, emit)
		}
	}
	if n > 0 && fs.HasLen1 {
		m.verifier.VerifyShortAt(input, n-1, c, emit)
	}
}

// scalarTail is DFC's per-position continuation after an initial-filter
// hit: family filters, progressive filter, inline verification.
func (m *VectorMatcher) scalarTail(input []byte, i int, idx uint32, c *metrics.Counters, emit patterns.EmitFunc) {
	fs := m.fs
	n := len(input)
	if fs.HasShort {
		if c != nil {
			c.ShortCandidates++
		}
		m.verifier.VerifyShortAt(input, i, c, emit)
	}
	if fs.HasLong && i+4 <= n {
		if c != nil {
			c.Filter2Probes++
		}
		if !fs.Long.Test(idx) {
			return
		}
		next := bitarr.Index2(input[i+2], input[i+3])
		if c != nil {
			c.Filter3Probes++
		}
		if fs.LongNext.Test(next) {
			if c != nil {
				c.LongCandidates++
			}
			m.verifier.VerifyLongAt(input, i, c, emit)
		}
	}
}
