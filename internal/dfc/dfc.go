// Package dfc reproduces Direct Filter Classification (Choi et al.,
// NSDI'16), the state of the art the paper measures against, plus
// Vector-DFC, the paper's direct vectorization of DFC's filtering.
//
// DFC replaces the Aho-Corasick state machine with small cache-resident
// filters: an initial 8 KB direct filter over the first two bytes of all
// patterns, per-length-family filters behind it, and compact hash tables
// for exact verification. Filtering and verification are interleaved
// *inline*, position by position — the structural property S-PATCH later
// changes (two separate rounds), and the reason Vector-DFC gains little:
// the vectorized filter code keeps dropping back into scalar verification.
package dfc

import (
	"vpatch/internal/bitarr"
	"vpatch/internal/engine"
	"vpatch/internal/filters"
	"vpatch/internal/hashtab"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/vec"
)

// Matcher is the scalar DFC matcher. All compiled state is read-only
// after Build and Scan keeps its automaton walk in locals, so one
// Matcher may scan from any number of goroutines concurrently.
type Matcher struct {
	set      *patterns.Set
	fs       *filters.DFCSet
	verifier *hashtab.Verifier
}

var (
	_ engine.Engine = (*Matcher)(nil)
	_ engine.Engine = (*VectorMatcher)(nil)
)

// NewScratch returns nil: DFC keeps no mutable scan state
// (engine.Engine).
func (m *Matcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *Matcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// Build compiles the pattern set into a DFC matcher.
func Build(set *patterns.Set) *Matcher {
	return &Matcher{
		set:      set,
		fs:       filters.BuildDFC(set),
		verifier: hashtab.Build(set),
	}
}

// FilterSizeBytes returns the cache footprint of the filter stage.
func (m *Matcher) FilterSizeBytes() int { return m.fs.SizeBytes() }

// Verifier exposes the compact hash tables (shared with Vector-DFC).
func (m *Matcher) Verifier() *hashtab.Verifier { return m.verifier }

// Scan runs DFC over input: for every position, probe the initial filter;
// on a hit, consult the per-family filters and verify inline.
func (m *Matcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	fs := m.fs
	for i := 0; i+1 < n; i++ {
		idx := bitarr.Index2(input[i], input[i+1])
		if c != nil {
			c.Filter1Probes++
		}
		if !fs.Initial.Test(idx) {
			continue
		}
		// Initial hit: short patterns verify immediately against their
		// direct-address tables (no further filtering exists for them in
		// DFC); long patterns continue through the family filters.
		if fs.HasShort {
			if c != nil {
				c.ShortCandidates++
			}
			m.verifier.VerifyShortAt(input, i, c, emit)
		}
		if fs.HasLong && i+4 <= n {
			if c != nil {
				c.Filter2Probes++
			}
			if !fs.Long.Test(idx) {
				continue
			}
			next := bitarr.Index2(input[i+2], input[i+3])
			if c != nil {
				c.Filter3Probes++
			}
			if fs.LongNext.Test(next) {
				if c != nil {
					c.LongCandidates++
				}
				m.verifier.VerifyLongAt(input, i, c, emit)
			}
		}
	}
	// Final byte: only 1-byte patterns can still match there.
	if n > 0 && fs.HasLen1 {
		m.verifier.VerifyShortAt(input, n-1, c, emit)
	}
}

// VectorMatcher is Vector-DFC: the same filters and inline verification
// as DFC, but the initial-filter probes of W consecutive positions are
// executed as one vector gather; hit lanes are extracted with a movemask
// and then follow DFC's scalar path. This is the paper's "direct
// vectorization of the original DFC done by us". Like Matcher (and the
// vec.Engine it emulates registers with), it holds no mutable scan
// state, so concurrent Scans are safe.
type VectorMatcher struct {
	set      *patterns.Set
	fs       *filters.DFCSet
	verifier *hashtab.Verifier
	eng      *vec.Engine
}

// BuildVector compiles a Vector-DFC matcher with width w lanes
// (0 selects 8, the AVX2 width).
func BuildVector(set *patterns.Set, w int) *VectorMatcher {
	if w == 0 {
		w = 8
	}
	return &VectorMatcher{
		set:      set,
		fs:       filters.BuildDFC(set),
		verifier: hashtab.Build(set),
		eng:      vec.New(w),
	}
}

// Width returns the vector width in lanes.
func (m *VectorMatcher) Width() int { return m.eng.Width() }

// NewScratch returns nil: Vector-DFC keeps no mutable scan state
// (engine.Engine).
func (m *VectorMatcher) NewScratch() engine.Scratch { return nil }

// ScanScratch scans input, ignoring scr (engine.Engine).
func (m *VectorMatcher) ScanScratch(_ engine.Scratch, input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	m.Scan(input, c, emit)
}

// Scan runs Vector-DFC over input.
func (m *VectorMatcher) Scan(input []byte, c *metrics.Counters, emit patterns.EmitFunc) {
	if c != nil {
		c.BytesScanned += uint64(len(input))
	}
	n := len(input)
	fs := m.fs
	eng := m.eng
	w := eng.Width()
	initial := fs.Initial.Bytes()

	i := 0
	for ; i+w+1 <= n; i += w {
		// W 2-byte windows, one gather over the initial filter's bytes,
		// then a movemask of the selected bits.
		idx := eng.Windows2(input, i)
		byteIdx := eng.ShiftRightConst(idx, 3)
		words := eng.GatherU8(initial, byteIdx)
		hits := eng.TestBit(words, eng.AndConst(idx, 7))
		if c != nil {
			c.VectorIters++
			c.Gathers++
			c.Filter1Probes += uint64(w)
		}
		if !hits.Any() {
			continue
		}
		// Inline (scalar) continuation per hit lane — DFC's structure.
		base := i
		hits.ForEach(func(lane int) {
			pos := base + lane
			m.scalarTail(input, pos, idx[lane], c, emit)
		})
	}
	// Scalar tail for the remaining positions.
	for ; i+1 < n; i++ {
		idx := bitarr.Index2(input[i], input[i+1])
		if c != nil {
			c.Filter1Probes++
		}
		if fs.Initial.Test(idx) {
			m.scalarTail(input, i, idx, c, emit)
		}
	}
	if n > 0 && fs.HasLen1 {
		m.verifier.VerifyShortAt(input, n-1, c, emit)
	}
}

// scalarTail is DFC's per-position continuation after an initial-filter
// hit: family filters, progressive filter, inline verification.
func (m *VectorMatcher) scalarTail(input []byte, i int, idx uint32, c *metrics.Counters, emit patterns.EmitFunc) {
	fs := m.fs
	n := len(input)
	if fs.HasShort {
		if c != nil {
			c.ShortCandidates++
		}
		m.verifier.VerifyShortAt(input, i, c, emit)
	}
	if fs.HasLong && i+4 <= n {
		if c != nil {
			c.Filter2Probes++
		}
		if !fs.Long.Test(idx) {
			return
		}
		next := bitarr.Index2(input[i+2], input[i+3])
		if c != nil {
			c.Filter3Probes++
		}
		if fs.LongNext.Test(next) {
			if c != nil {
				c.LongCandidates++
			}
			m.verifier.VerifyLongAt(input, i, c, emit)
		}
	}
}
