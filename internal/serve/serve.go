// Package serve turns the vpatch library stack into a resident
// multi-tenant scanning daemon: an HTTP/JSON scan API and a raw-TCP
// segment ingest port in front of per-tenant ids pipelines, with
// zero-downtime rule reload (atomic generation swap with refcount
// draining), byte quotas, and a Prometheus-style /metrics surface
// exported from the library's existing counters.
//
// Endpoints:
//
//	POST /v1/scan?tenant=T&port=P     scan one buffer (raw body) against T's rules
//	POST /v1/stream?tenant=T[&flush=1] ingest segment frames (see wire.go) into T's pipeline
//	PUT  /v1/tenants/{id}             create a tenant (JSON TenantConfig body)
//	GET  /v1/tenants[/{id}]           list tenants / tenant detail
//	POST /v1/tenants/{id}/rules       load a compiled .vpdb database, hot-swapping atomically
//	DELETE /v1/tenants/{id}           drain and remove a tenant
//	GET  /v1/alerts                   recent alerts as JSON lines (?tenant= filters,
//	                                  ?limit=N keeps the newest N, ?follow=1 streams live)
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     liveness (always 200 while the process serves)
//	GET  /readyz                      readiness (503 while empty or draining)
//	POST /drain                       stop accepting, flush all shards, report residual state
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/arena"
	"vpatch/internal/netsim"
	"vpatch/internal/resil"
)

// streamBatchSegs is the per-request dispatcher handoff batch for the
// /v1/stream and raw-TCP ingest loops.
const streamBatchSegs = 64

// DefaultTenant is the tenant implied when requests carry no tenant
// parameter.
const DefaultTenant = "default"

// Config configures a Server.
type Config struct {
	// TenantDefaults fills unset fields of every tenant's config.
	TenantDefaults TenantConfig
	// MaxTenants caps the number of named tenants (default 64).
	MaxTenants int
	// MaxScanBytes caps one /v1/scan body (default 16 MiB).
	MaxScanBytes int64
	// MaxRulesBytes caps one uploaded rule database (default 512 MiB).
	MaxRulesBytes int64
	// OnAlert, when set, receives every flow alert (concurrently, from
	// worker goroutines — must be safe for concurrent use).
	OnAlert func(tenant string, gen uint64, a ids.Alert)

	// IngestIdleTimeout tears down a raw-TCP ingest connection that has
	// carried no frames for this long (default 5m; negative disables).
	// Slow-loris connections hold a goroutine and a socket, nothing
	// else, and only until this fires.
	IngestIdleTimeout time.Duration
	// StreamFrameTimeout bounds how long one /v1/stream frame may take
	// to arrive; a stalled upload is torn down (default 30s; negative
	// disables).
	StreamFrameTimeout time.Duration
	// FollowWriteTimeout bounds each write to a /v1/alerts?follow=1
	// client; a follower that stops reading is disconnected rather than
	// parked forever (default 30s; negative disables).
	FollowWriteTimeout time.Duration
	// FollowHeartbeat is the keep-alive interval for idle follow
	// streams: a bare newline (valid NDJSON filler) proves liveness both
	// ways (default 15s; negative disables).
	FollowHeartbeat time.Duration
	// SchedQuantumBytes is the deficit-round-robin byte quantum per
	// tenant visit on the shared ingest scheduler (default 256 KiB).
	SchedQuantumBytes int
}

// Server is the resident scanning daemon. Create with New, expose with
// Handler (plus ServeIngest for the raw-TCP port), stop with Drain.
type Server struct {
	cfg   Config
	start time.Time

	// arena backs ingest frame reads (stream + TCP) and, being the
	// process-wide shared pool, the tenants' dispatcher pipelines.
	arena *arena.Arena

	mu      sync.RWMutex
	tenants map[string]*Tenant

	draining  atomic.Bool
	drainCh   chan struct{} // closed on the first Drain; ends /v1/alerts followers
	drainOnce sync.Once
	ingestWG  sync.WaitGroup // live raw-TCP ingest connections

	// sched is the fair ingest scheduler: every segment batch from the
	// raw-TCP port and /v1/stream queues here per tenant and reaches the
	// tenants' dispatchers in deficit-round-robin order, so one tenant's
	// flood cannot starve another's modest feed.
	sched     *resil.Scheduler
	schedOnce sync.Once // closes sched exactly once (Drain re-reports)

	// alertHub fans every tenant's flow alerts out to /v1/alerts
	// followers and SubscribeAlerts sinks.
	alertHub *alertHub

	httpStats map[string]*handlerStats
}

// handlerStats instruments one endpoint: a latency histogram plus
// per-status-code request counts.
type handlerStats struct {
	hist  histogram
	mu    sync.Mutex
	codes map[int]uint64
}

var handlerNames = []string{
	"scan", "stream", "rules", "tenants", "alerts", "metrics", "healthz", "readyz", "drain",
}

// New returns an empty server (no tenants). Callers typically create
// the default tenant right away and load its rules.
func New(cfg Config) *Server {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.MaxScanBytes <= 0 {
		cfg.MaxScanBytes = 16 << 20
	}
	if cfg.MaxRulesBytes <= 0 {
		cfg.MaxRulesBytes = 512 << 20
	}
	if cfg.TenantDefaults.Shards <= 0 {
		cfg.TenantDefaults.Shards = 1
	}
	if cfg.IngestIdleTimeout == 0 {
		cfg.IngestIdleTimeout = 5 * time.Minute
	}
	if cfg.StreamFrameTimeout == 0 {
		cfg.StreamFrameTimeout = 30 * time.Second
	}
	if cfg.FollowWriteTimeout == 0 {
		cfg.FollowWriteTimeout = 30 * time.Second
	}
	if cfg.FollowHeartbeat == 0 {
		cfg.FollowHeartbeat = 15 * time.Second
	}
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		arena:     arena.Shared(),
		tenants:   make(map[string]*Tenant),
		drainCh:   make(chan struct{}),
		alertHub:  newAlertHub(),
		httpStats: make(map[string]*handlerStats, len(handlerNames)),
	}
	for _, h := range handlerNames {
		s.httpStats[h] = &handlerStats{codes: make(map[int]uint64)}
	}
	// The DRR scheduler's dispatch callback resolves the tenant's
	// current generation per batch, so long-queued batches still land on
	// freshly swapped rules, and a batch whose tenant vanished (deleted,
	// drained, rules never loaded) is dropped with its payloads
	// released, never leaked.
	s.sched = resil.NewScheduler(resil.SchedulerConfig{
		QuantumBytes: cfg.SchedQuantumBytes,
		QueueBytes:   cfg.TenantDefaults.IngestQueueBytes,
		Dispatch: func(tenant string, segs []netsim.Segment) {
			t := s.Tenant(tenant)
			if t == nil {
				releaseSegments(segs)
				return
			}
			g := t.acquire()
			if g == nil {
				releaseSegments(segs)
				return
			}
			g.disp.HandleBatch(segs)
			g.release()
		},
	})
	s.sched.Start()
	return s
}

func releaseSegments(segs []netsim.Segment) {
	for i := range segs {
		segs[i].ReleasePayload()
	}
}

// CreateTenant registers a new named tenant. Unset config fields
// inherit the server defaults.
func (s *Server) CreateTenant(name string, cfg TenantConfig) (*Tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, fmt.Errorf("serve: invalid tenant name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("serve: tenant %q already exists", name)
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("serve: tenant limit (%d) reached", s.cfg.MaxTenants)
	}
	t := s.newTenant(name, cfg.withDefaults(s.cfg.TenantDefaults))
	s.tenants[name] = t
	return t, nil
}

// Tenant returns a tenant by name, or nil.
func (s *Server) Tenant(name string) *Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name]
}

// tenantOrCreate returns the named tenant, creating it with default
// config when allowed (used by rules upload so a fresh tenant is one
// request away).
func (s *Server) tenantOrCreate(name string) (*Tenant, error) {
	if t := s.Tenant(name); t != nil {
		return t, nil
	}
	t, err := s.CreateTenant(name, TenantConfig{})
	if err != nil && s.Tenant(name) != nil { // lost a benign creation race
		return s.Tenant(name), nil
	}
	return t, err
}

func (s *Server) tenantNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ready reports whether the daemon should accept traffic: not draining
// and at least one tenant has a loaded rule generation.
func (s *Server) ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	for _, n := range s.tenantNames() {
		if t := s.Tenant(n); t != nil {
			if gen, _, _, _ := t.generationInfo(); gen > 0 {
				return true, "ok"
			}
		}
	}
	return false, "no rules loaded"
}

// DrainReport is the residual state of a completed drain.
type DrainReport struct {
	Clean   bool                   `json:"clean"`
	Tenants map[string]TenantDrain `json:"tenants"`
}

// TenantDrain is one tenant's final tally.
type TenantDrain struct {
	Drained      bool   `json:"drained"`
	Alerts       uint64 `json:"alerts"`
	FlowsClosed  uint64 `json:"flows_closed"`
	FlowsEvicted uint64 `json:"flows_evicted"`
	BytesDropped uint64 `json:"bytes_dropped"`
	// ResidualPendingBytes is out-of-order data still buffered when the
	// pipeline closed — bytes whose gaps never filled.
	ResidualPendingBytes int `json:"residual_pending_bytes"`
}

// SchedStats returns the fair ingest scheduler's counters for one
// tenant lane (zero value for a lane that never enqueued).
func (s *Server) SchedStats(tenant string) resil.QueueStats {
	return s.sched.TenantStats(tenant)
}

// Drain stops accepting scan/stream/rules requests, retires every
// tenant (each generation's dispatcher closes, flushing all shards so
// every buffered alert surfaces), and reports the residual state.
// Blocks until all in-flight work releases or timeout passes (0 means
// wait forever). Idempotent in effect; every call re-reports.
func (s *Server) Drain(timeout time.Duration) DrainReport {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	var deadline chan struct{}
	if timeout > 0 {
		deadline = make(chan struct{})
		tm := time.AfterFunc(timeout, func() { close(deadline) })
		defer tm.Stop()
	}
	// Order matters: ingest connections stop enqueuing (they observe the
	// draining flag within a poll interval), then the scheduler drains
	// its queued batches into the still-live dispatchers, then the
	// tenants retire — so no queued segment's alerts are lost to the
	// shutdown itself.
	s.ingestWG.Wait()
	s.schedOnce.Do(func() { s.sched.Close() })
	rep := DrainReport{Clean: true, Tenants: make(map[string]TenantDrain)}
	for _, name := range s.tenantNames() {
		t := s.Tenant(name)
		if t == nil {
			continue
		}
		ok := t.shutdown(deadline)
		t.obsMu.Lock()
		st := t.retiredStats
		residual := t.residualOOO
		t.obsMu.Unlock()
		rep.Tenants[name] = TenantDrain{
			Drained:      ok,
			Alerts:       t.alerts.Load(),
			FlowsClosed:  st.FlowsClosed,
			FlowsEvicted: st.FlowsEvicted,
			BytesDropped: st.BytesDropped,

			ResidualPendingBytes: residual,
		}
		if !ok {
			rep.Clean = false
		}
	}
	return rep
}

// Handler returns the daemon's HTTP surface with per-endpoint latency
// and status instrumentation.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name, fn := s.route(r)
		st := s.httpStats[name]
		t0 := time.Now()
		rw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		fn(rw, r)
		st.hist.observe(time.Since(t0))
		st.mu.Lock()
		st.codes[rw.code]++
		st.mu.Unlock()
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming support (the /v1/alerts follow mode) through
// the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer
// for per-request read/write deadlines through the instrumentation
// wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// route resolves a request to (instrumentation name, handler).
func (s *Server) route(r *http.Request) (string, http.HandlerFunc) {
	path := r.URL.Path
	switch path {
	case "/healthz":
		return "healthz", s.handleHealthz
	case "/readyz":
		return "readyz", s.handleReadyz
	case "/metrics":
		return "metrics", s.handleMetrics
	case "/drain":
		return "drain", requireMethod(http.MethodPost, s.handleDrain)
	case "/v1/scan":
		return "scan", requireMethod(http.MethodPost, s.gated(s.handleScan))
	case "/v1/stream":
		return "stream", requireMethod(http.MethodPost, s.gated(s.handleStream))
	case "/v1/tenants":
		return "tenants", requireMethod(http.MethodGet, s.handleTenantList)
	case "/v1/alerts":
		return "alerts", requireMethod(http.MethodGet, s.handleAlerts)
	}
	if rest, ok := strings.CutPrefix(path, "/v1/tenants/"); ok {
		if name, ok := strings.CutSuffix(rest, "/rules"); ok {
			return "rules", requireMethod(http.MethodPost, s.gated(func(w http.ResponseWriter, r *http.Request) {
				s.handleRules(w, r, name)
			}))
		}
		if !strings.Contains(rest, "/") {
			return "tenants", func(w http.ResponseWriter, r *http.Request) {
				s.handleTenant(w, r, rest)
			}
		}
	}
	return "tenants", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "no such endpoint")
	}
}

func requireMethod(m string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != m {
			writeErr(w, http.StatusMethodNotAllowed, "use "+m)
			return
		}
		h(w, r)
	}
}

// gated rejects data-plane requests while draining.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func tenantParam(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return DefaultTenant
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if ok, reason := s.ready(); !ok {
		writeErr(w, http.StatusServiceUnavailable, reason)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			timeout = d
		}
	}
	writeJSON(w, http.StatusOK, s.Drain(timeout))
}

// scanResponse is the /v1/scan reply.
type scanResponse struct {
	Tenant     string     `json:"tenant"`
	Generation uint64     `json:"generation"`
	Port       uint16     `json:"port"`
	Bytes      int        `json:"bytes"`
	Matches    []matchOut `json:"matches"`
}

type matchOut struct {
	PatternID int32 `json:"pattern_id"`
	Offset    int64 `json:"offset"`
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	t := s.Tenant(tenantParam(r))
	if t == nil {
		writeErr(w, http.StatusNotFound, "no such tenant")
		return
	}
	port := uint16(0)
	if v := r.URL.Query().Get("port"); v != "" {
		p, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad port")
			return
		}
		port = uint16(p)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxScanBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxScanBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("scan body exceeds %d bytes", s.cfg.MaxScanBytes))
		return
	}
	if !t.takeQuota(len(body)) {
		writeErr(w, http.StatusTooManyRequests, "tenant byte quota exhausted")
		return
	}
	g := t.acquire()
	if g == nil {
		writeErr(w, http.StatusConflict, "tenant has no rules loaded")
		return
	}
	defer g.release()
	resp := scanResponse{Tenant: t.name, Generation: g.gen, Port: port,
		Bytes: len(body), Matches: []matchOut{}}
	var c vpatch.Counters
	g.eng.ScanBuffer(port, body, &c, func(id int32, pos int64) {
		resp.Matches = append(resp.Matches, matchOut{PatternID: id, Offset: pos})
	})
	t.httpScan.AddCounters(&c)
	writeJSON(w, http.StatusOK, resp)
}

// streamResponse is the /v1/stream reply.
type streamResponse struct {
	Tenant     string `json:"tenant"`
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Bytes      int    `json:"bytes"`
	// DroppedBatches counts segment batches this request offered past
	// the tenant's bounded ingest queue — shed by the fair scheduler
	// (the tenant degraded itself; nobody else lost throughput).
	DroppedBatches int `json:"dropped_batches,omitempty"`
	// AlertsTotal is the tenant's cumulative alert count after this
	// request (alerts surface at batch watermarks; pass flush=1 to
	// force pending batches through before the response).
	AlertsTotal uint64 `json:"alerts_total"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t := s.Tenant(tenantParam(r))
	if t == nil {
		writeErr(w, http.StatusNotFound, "no such tenant")
		return
	}
	// Charge the whole body against the quota up front when its length
	// is declared; chunked uploads are charged per frame.
	charged := false
	if r.ContentLength > 0 {
		if !t.takeQuota(int(r.ContentLength)) {
			writeErr(w, http.StatusTooManyRequests, "tenant byte quota exhausted")
			return
		}
		charged = true
	}
	g := t.acquire()
	if g == nil {
		writeErr(w, http.StatusConflict, "tenant has no rules loaded")
		return
	}
	defer g.release()
	resp := streamResponse{Tenant: t.name, Generation: g.gen}
	// Frames land in recycled arena chunks and queue on the tenant's
	// fair-scheduler lane in batches; the DRR rotation hands them to the
	// dispatcher. Lingering batch remainders are flushed before any
	// return. Batch slices are owned by the scheduler once enqueued, so
	// a fresh slice backs each handoff.
	rc := http.NewResponseController(w)
	batch := make([]netsim.Segment, 0, streamBatchSegs)
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		if !s.sched.Enqueue(t.name, batch) {
			resp.DroppedBatches++
		}
		batch = make([]netsim.Segment, 0, streamBatchSegs)
	}
	defer flushBatch()
	for {
		// Bound each frame's arrival: a stalled (slow-loris) upload is
		// torn down instead of holding the handler forever. Transports
		// without deadline support (errors ignored) simply stay unbounded.
		if d := s.cfg.StreamFrameTimeout; d > 0 {
			rc.SetReadDeadline(time.Now().Add(d))
		}
		seg, err := ReadSegmentArena(r.Body, s.arena)
		if err == io.EOF {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if !charged && !t.takeQuota(4+segFixedLen+len(seg.Payload)) {
			seg.ReleasePayload()
			writeErr(w, http.StatusTooManyRequests, "tenant byte quota exhausted")
			return
		}
		resp.Segments++
		resp.Bytes += len(seg.Payload)
		batch = append(batch, seg)
		if len(batch) == cap(batch) {
			flushBatch()
		}
	}
	rc.SetReadDeadline(time.Time{})
	if r.URL.Query().Get("flush") == "1" {
		flushBatch()
		s.sched.Flush(t.name)
		// The scheduler may have landed batches on a newer generation
		// than the one this request pinned; flush the current one too.
		if cg := t.acquire(); cg != nil {
			cg.disp.FlushAll()
			cg.release()
		}
		g.disp.FlushAll()
	}
	resp.AlertsTotal = t.alerts.Load()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxRulesBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxRulesBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "rule database too large")
		return
	}
	t, err := s.tenantOrCreate(name)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	gen, err := t.Reload(body)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	_, rules, algo, _ := t.generationInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant": t.name, "generation": gen, "rules": rules, "algorithm": algo,
	})
}

// tenantInfo is the GET /v1/tenants/{id} reply.
type tenantInfo struct {
	Name       string       `json:"name"`
	Generation uint64       `json:"generation"`
	Rules      int          `json:"rules"`
	Algorithm  string       `json:"algorithm,omitempty"`
	ReloadAge  float64      `json:"reload_age_seconds"`
	Alerts     uint64       `json:"alerts_total"`
	Rejected   uint64       `json:"quota_rejected_total"`
	Config     TenantConfig `json:"config"`
}

func (s *Server) tenantInfoFor(t *Tenant) tenantInfo {
	gen, rules, algo, age := t.generationInfo()
	return tenantInfo{
		Name: t.name, Generation: gen, Rules: rules, Algorithm: algo,
		ReloadAge: age, Alerts: t.alerts.Load(), Rejected: t.rejected.Load(),
		Config: t.cfg,
	}
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	out := []tenantInfo{}
	for _, name := range s.tenantNames() {
		if t := s.Tenant(name); t != nil {
			out = append(out, s.tenantInfoFor(t))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request, name string) {
	switch r.Method {
	case http.MethodPut:
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "draining")
			return
		}
		var cfg TenantConfig
		if r.ContentLength != 0 {
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); err != nil {
				writeErr(w, http.StatusBadRequest, "bad tenant config: "+err.Error())
				return
			}
		}
		t, err := s.CreateTenant(name, cfg)
		if err != nil {
			writeErr(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, s.tenantInfoFor(t))
	case http.MethodGet:
		t := s.Tenant(name)
		if t == nil {
			writeErr(w, http.StatusNotFound, "no such tenant")
			return
		}
		writeJSON(w, http.StatusOK, s.tenantInfoFor(t))
	case http.MethodDelete:
		s.mu.Lock()
		t := s.tenants[name]
		delete(s.tenants, name)
		s.mu.Unlock()
		if t == nil {
			writeErr(w, http.StatusNotFound, "no such tenant")
			return
		}
		deadline := make(chan struct{})
		tm := time.AfterFunc(30*time.Second, func() { close(deadline) })
		defer tm.Stop()
		ok := t.shutdown(deadline)
		writeJSON(w, http.StatusOK, map[string]any{"tenant": name, "drained": ok})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use PUT, GET or DELETE")
	}
}

// handleMetrics renders the Prometheus text exposition: matcher,
// accel, reassembly and per-tenant counters, reload generation/age,
// and request latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	type row struct {
		name string
		t    *Tenant
	}
	var rows []row
	for _, name := range s.tenantNames() {
		if t := s.Tenant(name); t != nil {
			rows = append(rows, row{name, t})
		}
	}
	scans := make([]vpatch.Counters, len(rows))
	flows := make([]netsim.Stats, len(rows))
	for i, r := range rows {
		scans[i] = r.t.scanCounters()
		flows[i] = r.t.lifecycleStats()
	}

	counter := func(name, help string, get func(i int) float64) {
		promFamily(&b, name, "counter", help)
		for i, r := range rows {
			promSample(&b, name, tenantLabel(r.name), get(i))
		}
	}
	gauge := func(name, help string, get func(i int) float64) {
		promFamily(&b, name, "gauge", help)
		for i, r := range rows {
			promSample(&b, name, tenantLabel(r.name), get(i))
		}
	}

	// Matcher counters.
	counter("vpatch_scanned_bytes_total", "Payload bytes scanned by the matchers.",
		func(i int) float64 { return float64(scans[i].BytesScanned) })
	counter("vpatch_matches_total", "Pattern occurrences found (stream and one-shot scans).",
		func(i int) float64 { return float64(scans[i].Matches) })
	promFamily(&b, "vpatch_filter_probes_total", "counter", "Scalar filter probes by filter stage.")
	for i, r := range rows {
		promSample(&b, "vpatch_filter_probes_total", tenantLabel(r.name)+`,filter="1"`, float64(scans[i].Filter1Probes))
		promSample(&b, "vpatch_filter_probes_total", tenantLabel(r.name)+`,filter="2"`, float64(scans[i].Filter2Probes))
		promSample(&b, "vpatch_filter_probes_total", tenantLabel(r.name)+`,filter="3"`, float64(scans[i].Filter3Probes))
	}
	counter("vpatch_verify_bytes_total", "Pattern bytes compared during verification.",
		func(i int) float64 { return float64(scans[i].VerifyBytes) })
	counter("vpatch_batch_iters_total", "Batched (lane-per-packet) filtering steps.",
		func(i int) float64 { return float64(scans[i].BatchIters) })

	// Rule tier (rule-conditioned databases only; zero otherwise).
	counter("vpatch_rule_alerts_total", "Completed rule alerts (all clauses satisfied, regex verified).",
		func(i int) float64 { return float64(scans[i].RuleAlerts) })
	counter("vpatch_verifier_runs_total", "Regex verifier invocations at literal-hit anchors.",
		func(i int) float64 { return float64(scans[i].VerifierRuns) })
	counter("vpatch_verifier_states_total", "Lazy-DFA states built across verifier runs.",
		func(i int) float64 { return float64(scans[i].VerifierStates) })

	// Resilience: match-flood degradation and fault recovery.
	counter("vpatch_verifier_budget_exhausted_total", "Verifier budget exhaustions (flow or tenant pool ran dry).",
		func(i int) float64 { return float64(scans[i].VerifierBudgetExhausted) })
	counter("vpatch_degraded_flows_total", "Flows demoted to literal-only alerting by the verifier budget.",
		func(i int) float64 { return float64(scans[i].DegradedFlows) })
	counter("vpatch_panics_recovered_total", "Per-segment panics recovered by shard workers.",
		func(i int) float64 { return float64(scans[i].PanicsRecovered) })
	counter("vpatch_flows_quarantined_total", "Flows quarantined after causing a shard panic.",
		func(i int) float64 { return float64(scans[i].FlowsQuarantined) })

	// Fair ingest scheduler (deficit round-robin across tenants).
	scheds := make([]resil.QueueStats, len(rows))
	for i, r := range rows {
		scheds[i] = s.sched.TenantStats(r.name)
	}
	counter("vpatch_sched_dispatched_bytes_total", "Segment bytes the fair scheduler handed to dispatchers.",
		func(i int) float64 { return float64(scheds[i].DispatchedBytes) })
	counter("vpatch_sched_dropped_batches_total", "Ingest batches shed at the tenant's bounded scheduler queue.",
		func(i int) float64 { return float64(scheds[i].DroppedBatches) })
	counter("vpatch_sched_dropped_bytes_total", "Segment bytes shed at the tenant's bounded scheduler queue.",
		func(i int) float64 { return float64(scheds[i].DroppedBytes) })
	gauge("vpatch_sched_queued_bytes", "Segment bytes waiting on the tenant's scheduler queue.",
		func(i int) float64 { return float64(scheds[i].QueuedBytes) })

	// Acceleration counters.
	counter("vpatch_accel_skipped_bytes_total", "Input bytes cleared by the skip-loop accelerator without probing.",
		func(i int) float64 { return float64(scans[i].SkippedBytes) })
	counter("vpatch_accel_chances_total", "Skip-loop invocations.",
		func(i int) float64 { return float64(scans[i].AccelChances) })
	counter("vpatch_accel_runs_total", "Skip-loop invocations that cleared a run of at least 8 bytes.",
		func(i int) float64 { return float64(scans[i].AccelRuns) })

	// Reassembly / flow lifecycle.
	gauge("vpatch_flows", "Currently tracked flows (including close tombstones).",
		func(i int) float64 { return float64(flows[i].Flows) })
	gauge("vpatch_flows_peak", "Peak simultaneously tracked flows (summed across shards and generations).",
		func(i int) float64 { return float64(flows[i].PeakFlows) })
	counter("vpatch_flows_closed_total", "Flows torn down normally (FIN/RST).",
		func(i int) float64 { return float64(flows[i].FlowsClosed) })
	counter("vpatch_flows_evicted_total", "Open flows evicted by the flow cap or idle timeout.",
		func(i int) float64 { return float64(flows[i].FlowsEvicted) })
	counter("vpatch_reasm_dropped_bytes_total", "Payload bytes dropped by the reassembler (budgets, evictions, post-teardown).",
		func(i int) float64 { return float64(flows[i].BytesDropped) })
	counter("vpatch_gap_skips_total", "Sequence gaps abandoned by mid-stream resynchronization.",
		func(i int) float64 { return float64(flows[i].GapSkips) })
	gauge("vpatch_reasm_pending_bytes", "Buffered out-of-order bytes.",
		func(i int) float64 { return float64(flows[i].PendingBytes) })

	// Tenant / reload state.
	counter("vpatch_alerts_total", "Flow alerts delivered.",
		func(i int) float64 { return float64(rows[i].t.alerts.Load()) })
	counter("vpatch_quota_rejected_total", "Requests rejected by the tenant byte quota.",
		func(i int) float64 { return float64(rows[i].t.rejected.Load()) })
	promFamily(&b, "vpatch_rules_generation", "gauge", "Rule database generation (0 = none loaded; increments on every hot swap).")
	gens := make([]struct {
		gen   uint64
		rules int
		age   float64
	}, len(rows))
	for i, r := range rows {
		gens[i].gen, gens[i].rules, _, gens[i].age = r.t.generationInfo()
		promSample(&b, "vpatch_rules_generation", tenantLabel(r.name), float64(gens[i].gen))
	}
	promFamily(&b, "vpatch_rules", "gauge", "Patterns in the tenant's loaded rule set.")
	for i, r := range rows {
		promSample(&b, "vpatch_rules", tenantLabel(r.name), float64(gens[i].rules))
	}
	promFamily(&b, "vpatch_rules_age_seconds", "gauge", "Seconds since the tenant's last rule swap.")
	for i, r := range rows {
		promSample(&b, "vpatch_rules_age_seconds", tenantLabel(r.name), gens[i].age)
	}

	// Arena (recycled ingest-buffer pool) gauges — process-wide, the
	// pool is shared by every tenant's ingest path.
	ast := s.arena.Stats()
	promFamily(&b, "vpatch_arena_chunks_in_use", "gauge", "Arena chunks rented and not yet released.")
	promSample(&b, "vpatch_arena_chunks_in_use", "", float64(ast.InUse))
	promFamily(&b, "vpatch_arena_chunks_peak", "gauge", "High-water mark of simultaneously rented arena chunks.")
	promSample(&b, "vpatch_arena_chunks_peak", "", float64(ast.Peak))
	promFamily(&b, "vpatch_arena_pooled_bytes", "gauge", "Bytes of pooled arena chunks allocated under the cap.")
	promSample(&b, "vpatch_arena_pooled_bytes", "", float64(ast.PooledBytes))
	promFamily(&b, "vpatch_arena_overflow_total", "counter", "Arena rents served by one-shot heap allocations (pool cap exceeded).")
	promSample(&b, "vpatch_arena_overflow_total", "", float64(ast.Overflows))

	// Alert stream.
	abuf, asubs, alost := s.alertHub.stats()
	promFamily(&b, "vpatch_alert_stream_buffered", "gauge", "Alerts held in the /v1/alerts replay ring.")
	promSample(&b, "vpatch_alert_stream_buffered", "", float64(abuf))
	promFamily(&b, "vpatch_alert_stream_subscribers", "gauge", "Live alert-stream followers.")
	promSample(&b, "vpatch_alert_stream_subscribers", "", float64(asubs))
	promFamily(&b, "vpatch_alert_stream_dropped_total", "counter", "Alert records dropped on slow followers.")
	promSample(&b, "vpatch_alert_stream_dropped_total", "", float64(alost))

	// Process-level state.
	promFamily(&b, "vpatch_draining", "gauge", "1 while the daemon is draining.")
	v := 0.0
	if s.draining.Load() {
		v = 1
	}
	promSample(&b, "vpatch_draining", "", v)
	promFamily(&b, "vpatch_uptime_seconds", "gauge", "Seconds since the daemon started.")
	promSample(&b, "vpatch_uptime_seconds", "", time.Since(s.start).Seconds())
	promFamily(&b, "vpatch_tenants", "gauge", "Registered tenants.")
	promSample(&b, "vpatch_tenants", "", float64(len(rows)))
	promFamily(&b, "vpatch_kernel_info", "gauge", "Extract kernel the filtering engines dispatch to on this host (constant 1).")
	promSample(&b, "vpatch_kernel_info", `kernel="`+vpatch.ActiveKernel().String()+`"`, 1)

	// HTTP request instrumentation.
	promFamily(&b, "vpatch_http_requests_total", "counter", "HTTP requests by handler and status code.")
	for _, h := range handlerNames {
		st := s.httpStats[h]
		st.mu.Lock()
		codes := make([]int, 0, len(st.codes))
		for c := range st.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			promSample(&b, "vpatch_http_requests_total",
				fmt.Sprintf("handler=%q,code=\"%d\"", h, c), float64(st.codes[c]))
		}
		st.mu.Unlock()
	}
	promFamily(&b, "vpatch_http_request_duration_seconds", "histogram", "HTTP request latency by handler.")
	for _, h := range handlerNames {
		s.httpStats[h].hist.writeTo(&b, "vpatch_http_request_duration_seconds",
			fmt.Sprintf("handler=%q", h))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
