package serve

// Segment wire format shared by the HTTP /v1/stream body and the raw
// TCP ingest port: a flat sequence of length-prefixed frames, one per
// captured segment, carrying exactly the fields of netsim.Segment. All
// integers are big-endian.
//
//	frame := u32 frameLen                  // bytes after this field
//	         u32 srcIP  u32 dstIP
//	         u16 srcPort u16 dstPort
//	         u32 seq
//	         u64 tsMicros
//	         u8  flags                     // netsim.FlagFIN / FlagRST
//	         payload[frameLen-25]
//
// The TCP ingest port prefixes the stream with one hello frame naming
// the tenant:
//
//	hello := u16 nameLen | name bytes
import (
	"encoding/binary"
	"fmt"
	"io"

	"vpatch/internal/arena"
	"vpatch/internal/netsim"
)

const (
	segFixedLen = 25 // fixed fields after the length prefix
	// MaxSegmentBytes caps one frame's payload: far above any MTU, low
	// enough that a corrupt length prefix cannot demand a giant
	// allocation.
	MaxSegmentBytes = 1 << 20
)

// AppendSegment appends seg's wire frame to dst.
func AppendSegment(dst []byte, seg netsim.Segment) []byte {
	var hdr [4 + segFixedLen]byte
	be := binary.BigEndian
	be.PutUint32(hdr[0:], uint32(segFixedLen+len(seg.Payload)))
	be.PutUint32(hdr[4:], seg.Flow.SrcIP)
	be.PutUint32(hdr[8:], seg.Flow.DstIP)
	be.PutUint16(hdr[12:], seg.Flow.SrcPort)
	be.PutUint16(hdr[14:], seg.Flow.DstPort)
	be.PutUint32(hdr[16:], seg.Seq)
	be.PutUint64(hdr[20:], seg.TsMicros)
	hdr[28] = seg.Flags
	dst = append(dst, hdr[:]...)
	return append(dst, seg.Payload...)
}

// EncodeSegments renders a batch of segments as one frame stream.
func EncodeSegments(segs []netsim.Segment) []byte {
	n := 0
	for i := range segs {
		n += 4 + segFixedLen + len(segs[i].Payload)
	}
	out := make([]byte, 0, n)
	for i := range segs {
		out = AppendSegment(out, segs[i])
	}
	return out
}

// ReadSegment reads one frame from r. The returned segment's payload
// is freshly allocated, so it may be handed to a dispatcher by
// reference. Returns io.EOF cleanly at a frame boundary.
func ReadSegment(r io.Reader) (netsim.Segment, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return netsim.Segment{}, io.EOF
		}
		return netsim.Segment{}, fmt.Errorf("serve: frame length: %w", err)
	}
	be := binary.BigEndian
	frameLen := be.Uint32(pre[:])
	if frameLen < segFixedLen {
		return netsim.Segment{}, fmt.Errorf("serve: frame of %d bytes is shorter than the %d-byte header", frameLen, segFixedLen)
	}
	if frameLen > segFixedLen+MaxSegmentBytes {
		return netsim.Segment{}, fmt.Errorf("serve: frame payload of %d bytes exceeds the %d-byte cap", frameLen-segFixedLen, MaxSegmentBytes)
	}
	buf := make([]byte, frameLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return netsim.Segment{}, fmt.Errorf("serve: frame body: %w", err)
	}
	return parseFrame(buf), nil
}

// ReadSegmentArena reads one frame like ReadSegment, but the frame
// lands in a chunk rented from a: the returned segment owns the chunk
// (Segment.Owned) and whoever consumes it releases it back to the
// pool, so a resident ingest loop reads frames without allocating.
// Callers that drop a segment without dispatching it must call
// ReleasePayload themselves.
func ReadSegmentArena(r io.Reader, a *arena.Arena) (netsim.Segment, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return netsim.Segment{}, io.EOF
		}
		return netsim.Segment{}, fmt.Errorf("serve: frame length: %w", err)
	}
	frameLen := binary.BigEndian.Uint32(pre[:])
	if frameLen < segFixedLen {
		return netsim.Segment{}, fmt.Errorf("serve: frame of %d bytes is shorter than the %d-byte header", frameLen, segFixedLen)
	}
	if frameLen > segFixedLen+MaxSegmentBytes {
		return netsim.Segment{}, fmt.Errorf("serve: frame payload of %d bytes exceeds the %d-byte cap", frameLen-segFixedLen, MaxSegmentBytes)
	}
	b := a.Rent(int(frameLen))
	buf := b.Data()[:frameLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		b.Release()
		return netsim.Segment{}, fmt.Errorf("serve: frame body: %w", err)
	}
	seg := parseFrame(buf)
	seg.SetOwned(b)
	return seg, nil
}

// parseFrame decodes the fixed fields of a frame body; the payload
// aliases buf.
func parseFrame(buf []byte) netsim.Segment {
	be := binary.BigEndian
	return netsim.Segment{
		Flow: netsim.FlowKey{
			SrcIP:   be.Uint32(buf[0:]),
			DstIP:   be.Uint32(buf[4:]),
			SrcPort: be.Uint16(buf[8:]),
			DstPort: be.Uint16(buf[10:]),
		},
		Seq:      be.Uint32(buf[12:]),
		TsMicros: be.Uint64(buf[16:]),
		Flags:    buf[24],
		Payload:  buf[segFixedLen:],
	}
}
