package serve

// Raw-TCP segment ingest: a long-lived alternative to POST /v1/stream
// for feeding capture pipelines into the daemon without HTTP framing
// overhead. A connection opens with a hello frame naming the tenant
// (see wire.go) and then carries segment frames until either side
// closes. Frames queue on the tenant's fair-scheduler lane; the DRR
// dispatch callback resolves the tenant's current generation per
// batch, so a long-lived feed migrates to hot-swapped rules at the
// next batch boundary. Connection robustness: frames that stall
// mid-read are bounded by ingestFrameTimeout, and connections idle
// past Config.IngestIdleTimeout are torn down (slow-loris defense).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"vpatch/internal/netsim"
	"vpatch/internal/resil/chaos"
)

const (
	// ingestPollInterval is how often an idle connection re-checks the
	// draining flag and its idle-timeout clock.
	ingestPollInterval = 500 * time.Millisecond
	// ingestFrameTimeout kills a connection that stalls mid-frame.
	ingestFrameTimeout = 30 * time.Second
	// ingestBatchLinger is how long a non-empty dispatch batch may wait
	// for the next frame before being handed to the workers.
	ingestBatchLinger = 5 * time.Millisecond
	maxHelloLen       = 256
)

// ServeIngest accepts raw-TCP ingest connections on l until the
// listener closes or the server drains. Each connection runs on its own
// goroutine; Drain waits for all of them to finish.
func (s *Server) ServeIngest(l net.Listener) error {
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(ingestPollInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if s.draining.Load() {
					l.Close()
					return
				}
			}
		}
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.ingestWG.Add(1)
		go func() {
			defer s.ingestWG.Done()
			defer conn.Close()
			s.serveIngestConn(conn)
		}()
	}
}

// bufferedConn pairs a net.Conn with a peek buffer so the idle poll
// (deadline on the first byte of a frame) never loses mid-frame data.
type bufferedConn struct {
	c   net.Conn
	buf []byte // peeked-but-unconsumed bytes
}

func (b *bufferedConn) Read(p []byte) (int, error) {
	if len(b.buf) > 0 {
		n := copy(p, b.buf)
		b.buf = b.buf[n:]
		return n, nil
	}
	return b.c.Read(p)
}

// waitByte blocks until at least one byte is available (buffering it),
// the deadline d elapses (returns errIdle), or the peer closes.
var errIdle = errors.New("idle")

func (b *bufferedConn) waitByte(d time.Duration) error {
	if len(b.buf) > 0 {
		return nil
	}
	b.c.SetReadDeadline(time.Now().Add(d))
	one := make([]byte, 1)
	n, err := b.c.Read(one)
	b.c.SetReadDeadline(time.Time{})
	if n > 0 {
		b.buf = append(b.buf, one[:n]...)
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return errIdle
	}
	return err
}

// serveIngestConn drives one ingest connection. Errors are terminal for
// the connection only; the protocol has no in-band error channel, so a
// malformed stream simply closes.
func (s *Server) serveIngestConn(conn net.Conn) {
	bc := &bufferedConn{c: conn}

	// Hello frame: u16 nameLen | tenant name.
	conn.SetReadDeadline(time.Now().Add(ingestFrameTimeout))
	var pre [2]byte
	if _, err := io.ReadFull(bc, pre[:]); err != nil {
		return
	}
	nameLen := binary.BigEndian.Uint16(pre[:])
	if nameLen == 0 || nameLen > maxHelloLen {
		return
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(bc, name); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	t := s.Tenant(string(name))
	if t == nil {
		return
	}

	// Frames land in recycled arena chunks and queue on the tenant's
	// fair-scheduler lane in batches; once enqueued the scheduler owns
	// the batch slice, so a fresh slice backs each handoff. Lingering
	// remainders flush on every exit path.
	batch := make([]netsim.Segment, 0, streamBatchSegs)
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		s.sched.Enqueue(t.name, batch) // a refused batch releases its payloads
		batch = make([]netsim.Segment, 0, streamBatchSegs)
	}
	defer flushBatch()
	idleSince := time.Now()
	for {
		// Wait for the next frame's first byte with a short deadline so
		// idle connections notice drains and idle-timeout promptly. A
		// non-empty batch only waits the linger bound.
		for {
			wait := ingestPollInterval
			if len(batch) > 0 {
				wait = ingestBatchLinger
			}
			err := bc.waitByte(wait)
			if err == nil {
				break
			}
			if err != errIdle {
				if err == io.EOF {
					// The feed ended cleanly: push everything through so
					// its buffered alerts surface without waiting for
					// watermarks.
					flushBatch()
					s.sched.Flush(t.name)
					if g := t.acquire(); g != nil {
						g.disp.FlushAll()
						g.release()
					}
				}
				return
			}
			flushBatch() // idle: hand lingering segments to the scheduler
			if s.draining.Load() {
				return
			}
			if d := s.cfg.IngestIdleTimeout; d > 0 && time.Since(idleSince) >= d {
				return // frame-less past the idle bound: slow-loris teardown
			}
		}
		idleSince = time.Now()
		// A frame has begun: bound its completion, then read it whole.
		conn.SetReadDeadline(time.Now().Add(ingestFrameTimeout))
		seg, err := ReadSegmentArena(bc, s.arena)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			return
		}
		if chaos.Armed() {
			chaos.Fire(chaos.IngestFrame, t.name)
		}
		if !t.takeQuota(4 + segFixedLen + len(seg.Payload)) {
			seg.ReleasePayload()
			continue // over quota: count the rejection, drop the frame
		}
		batch = append(batch, seg)
		if len(batch) == cap(batch) {
			flushBatch()
		}
	}
}

// DialIngest opens an ingest connection and sends the hello frame —
// the client half of ServeIngest, used by tests and examples.
func DialIngest(addr, tenant string) (net.Conn, error) {
	if len(tenant) == 0 || len(tenant) > maxHelloLen {
		return nil, fmt.Errorf("serve: bad tenant name length %d", len(tenant))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hello := make([]byte, 2+len(tenant))
	binary.BigEndian.PutUint16(hello, uint16(len(tenant)))
	copy(hello[2:], tenant)
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
