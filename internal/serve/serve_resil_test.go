package serve

// Overload-resilience tests for the daemon surface: ingest idle
// teardown, mid-frame connection resets, stalled /v1/stream uploads,
// follow-stream write deadlines/heartbeats and disconnects, fair
// scheduling across tenants under flood, and reload racing drain. Run
// under -race in CI.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vpatch/internal/netsim"
)

// TestIngestIdleTeardown: a hello-then-silence connection (slow loris)
// is torn down once it idles past IngestIdleTimeout instead of holding
// a goroutine forever.
func TestIngestIdleTeardown(t *testing.T) {
	srv := New(Config{IngestIdleTimeout: 150 * time.Millisecond})
	if _, err := srv.CreateTenant(DefaultTenant, TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tenant(DefaultTenant).Reload(ruleBlob(t, "needle")); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeIngest(ln) }()

	conn, err := DialIngest(ln.Addr().String(), DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing further; the server must close on us. The teardown
	// clock is checked on the idle poll, so allow a couple of cycles.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection still open: read returned data")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("idle connection not torn down within 5s")
	}
	srv.Drain(5 * time.Second)
	<-done
}

// TestIngestMidFrameReset: a connection that dies mid-frame (RST) must
// not lose the complete flows it carried earlier, leak the partial
// frame's buffer, or disturb a healthy connection on the same port.
func TestIngestMidFrameReset(t *testing.T) {
	srv := New(Config{})
	if _, err := srv.CreateTenant(DefaultTenant, TenantConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tenant(DefaultTenant).Reload(ruleBlob(t, "http-attack-xyz")); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeIngest(ln) }()

	// Doomed connection: two good flows, then half a frame, then RST.
	doomed, err := DialIngest(ln.Addr().String(), DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	var feed []byte
	for i := 0; i < 2; i++ {
		k := netsim.FlowKey{SrcIP: uint32(100 + i), DstIP: 7, SrcPort: uint16(i + 1), DstPort: 80}
		feed = append(feed, EncodeSegments(flowSegments(k, []byte("carries http-attack-xyz payload")))...)
	}
	partial := AppendSegment(nil, netsim.Segment{
		Flow:    netsim.FlowKey{SrcIP: 999, DstIP: 7, SrcPort: 9, DstPort: 80},
		Payload: bytes.Repeat([]byte{'x'}, 512),
	})
	feed = append(feed, partial[:len(partial)/2]...)
	if _, err := doomed.Write(feed); err != nil {
		t.Fatal(err)
	}
	if tc, ok := doomed.(*net.TCPConn); ok {
		tc.SetLinger(0) // close sends RST, the mid-frame reset
	}
	doomed.Close()

	// Healthy connection, racing the doomed one's teardown.
	healthy, err := DialIngest(ln.Addr().String(), DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	const healthyFlows = 8
	for i := 0; i < healthyFlows; i++ {
		k := netsim.FlowKey{SrcIP: uint32(200 + i), DstIP: 7, SrcPort: uint16(i + 1), DstPort: 80}
		if _, err := healthy.Write(EncodeSegments(flowSegments(k, []byte("also http-attack-xyz here")))); err != nil {
			t.Fatal(err)
		}
	}
	healthy.Close()

	// The doomed connection's alerts may only surface at the drain
	// flush, so this pre-drain wait is best-effort and short.
	const want = 2 + healthyFlows
	deadline := time.Now().Add(2 * time.Second)
	for srv.Tenant(DefaultTenant).alerts.Load() < want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	rep := srv.Drain(10 * time.Second)
	<-done
	if got := rep.Tenants[DefaultTenant].Alerts; got != want {
		t.Fatalf("alerts after mid-frame reset = %d, want %d", got, want)
	}
	if !rep.Clean {
		t.Fatalf("dirty drain after reset: %+v", rep)
	}
}

// TestStreamFrameDeadline: a /v1/stream upload that stalls mid-frame is
// torn down by the per-frame read deadline instead of pinning the
// handler goroutine indefinitely.
func TestStreamFrameDeadline(t *testing.T) {
	srv := New(Config{StreamFrameTimeout: 150 * time.Millisecond})
	if _, err := srv.CreateTenant(DefaultTenant, TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tenant(DefaultTenant).Reload(ruleBlob(t, "needle")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(5 * time.Second)

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a body, deliver half a length prefix, stall: slow loris.
	fmt.Fprintf(conn, "POST /v1/stream?tenant=%s HTTP/1.1\r\nHost: t\r\nContent-Length: 400\r\n\r\n", DefaultTenant)
	conn.Write([]byte{0, 0})

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no response to the stalled upload (handler still pinned?): %v", err)
	}
	if !strings.Contains(line, "400") {
		t.Fatalf("stalled upload answered %q; want a 400 teardown", strings.TrimSpace(line))
	}
}

// TestFollowHeartbeatAndDisconnect: an idle follow stream carries
// newline heartbeats, and a follower that disconnects mid-stream is
// unsubscribed promptly while publishing continues undisturbed.
func TestFollowHeartbeatAndDisconnect(t *testing.T) {
	srv := New(Config{
		FollowHeartbeat:    30 * time.Millisecond,
		FollowWriteTimeout: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Phase 1: heartbeats on an idle stream.
	resp, err := http.Get(ts.URL + "/v1/alerts?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	newlines := 0
	deadline := time.Now().Add(5 * time.Second)
	for newlines < 3 && time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		newlines += bytes.Count(buf[:n], []byte{'\n'})
		if err != nil {
			break
		}
	}
	if newlines < 3 {
		t.Fatalf("idle follow stream delivered %d heartbeats in 5s; want >=3", newlines)
	}

	// Phase 2: alerts are streaming; the follower vanishes mid-stream.
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				srv.alertHub.publish(AlertRecord{Tenant: "load", Rule: int32(i)})
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Read a little of the live stream, then drop the connection.
	resp.Body.Read(buf)
	resp.Body.Close()

	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, subs, _ := srv.alertHub.stats(); subs == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, subs, _ := srv.alertHub.stats(); subs != 0 {
		t.Fatalf("follower not unsubscribed after disconnect: %d subscribers", subs)
	}
	close(stop)
	pubWG.Wait()
	srv.Drain(5 * time.Second)
}

// TestIngestFairnessTwoTenants: while one tenant floods /v1/stream from
// several connections, a second tenant's modest feed is fully served —
// zero scheduler drops and every alert delivered. The byte-share bound
// itself is proven deterministically in internal/resil; this is the
// end-to-end wiring check.
func TestIngestFairnessTwoTenants(t *testing.T) {
	srv := New(Config{
		TenantDefaults:    TenantConfig{Shards: 2, IngestQueueBytes: 256 << 10},
		SchedQuantumBytes: 32 << 10,
	})
	for _, name := range []string{"victim", "attacker"} {
		if _, err := srv.CreateTenant(name, TenantConfig{}); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Tenant(name).Reload(ruleBlob(t, "http-attack-xyz")); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The attack: several connections pumping junk frames at the
	// attacker tenant for the whole duration of the victim's feed.
	stop := make(chan struct{})
	var atkWG sync.WaitGroup
	junk := make([]netsim.Segment, 0, 64)
	for i := 0; i < 64; i++ {
		junk = append(junk, netsim.Segment{
			Flow:    netsim.FlowKey{SrcIP: 0xBAD, DstIP: 1, SrcPort: uint16(i + 1), DstPort: 80},
			Seq:     uint32(i * 1400),
			Payload: bytes.Repeat([]byte{'z'}, 1400),
		})
	}
	junkBody := EncodeSegments(junk)
	for w := 0; w < 4; w++ {
		atkWG.Add(1)
		go func() {
			defer atkWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					resp, err := http.Post(ts.URL+"/v1/stream?tenant=attacker",
						"application/octet-stream", bytes.NewReader(junkBody))
					if err != nil {
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	// The victim: 40 small flows, each its own request with flush=1, all
	// of which must be accepted and alerted despite the flood.
	const victimFlows = 40
	for i := 0; i < victimFlows; i++ {
		k := netsim.FlowKey{SrcIP: uint32(5000 + i), DstIP: 9, SrcPort: uint16(i + 1), DstPort: 80}
		body := EncodeSegments(flowSegments(k, []byte("victim flow with http-attack-xyz inside")))
		resp, out := postBytes(t, ts.URL+"/v1/stream?tenant=victim&flush=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("victim stream %d: %d %s", i, resp.StatusCode, out)
		}
		var sr streamResponse
		if err := json.Unmarshal(out, &sr); err != nil {
			t.Fatalf("victim stream %d: bad response %s", i, out)
		}
		if sr.DroppedBatches != 0 {
			t.Fatalf("victim stream %d: %d batches shed under attack; want 0", i, sr.DroppedBatches)
		}
	}
	close(stop)
	atkWG.Wait()

	if got := srv.Tenant("victim").alerts.Load(); got != victimFlows {
		t.Fatalf("victim alerts = %d, want %d (lost service under flood)", got, victimFlows)
	}
	vst := srv.sched.TenantStats("victim")
	if vst.DroppedBatches != 0 {
		t.Fatalf("scheduler shed %d victim batches; want 0", vst.DroppedBatches)
	}

	// The new resilience and scheduler families must be on /metrics and
	// the exposition must stay well-formed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	checkPromText(t, string(text))
	for _, fam := range []string{
		"vpatch_sched_dispatched_bytes_total", "vpatch_sched_dropped_batches_total",
		"vpatch_degraded_flows_total", "vpatch_verifier_budget_exhausted_total",
		"vpatch_panics_recovered_total", "vpatch_flows_quarantined_total",
	} {
		if !strings.Contains(string(text), fam) {
			t.Fatalf("metrics missing family %s", fam)
		}
	}
	srv.Drain(10 * time.Second)
}

// TestReloadDrainShutdownRace: rule reloads and generation swaps racing
// stream traffic and Drain — no deadlock, no panic, no lost rule
// semantics for requests that won their acquire. Race-pinned in CI.
func TestReloadDrainShutdownRace(t *testing.T) {
	srv := New(Config{TenantDefaults: TenantConfig{Shards: 2}})
	if _, err := srv.CreateTenant(DefaultTenant, TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	blob := ruleBlob(t, "http-attack-xyz")
	if _, err := srv.Tenant(DefaultTenant).Reload(blob); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(3)
	go func() { // reloader
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			srv.Tenant(DefaultTenant).Reload(blob) // errors fine once draining
		}
	}()
	go func() { // streamer
		defer wg.Done()
		<-start
		for i := 0; i < 30; i++ {
			k := netsim.FlowKey{SrcIP: uint32(i), DstIP: 3, SrcPort: uint16(i + 1), DstPort: 80}
			body := EncodeSegments(flowSegments(k, []byte("racing http-attack-xyz traffic")))
			resp, err := http.Post(ts.URL+"/v1/stream?tenant="+DefaultTenant,
				"application/octet-stream", bytes.NewReader(body))
			if err != nil {
				return // server draining under us is expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	var rep DrainReport
	go func() { // drainer, racing everyone
		defer wg.Done()
		<-start
		time.Sleep(5 * time.Millisecond)
		rep = srv.Drain(10 * time.Second)
	}()
	close(start)
	wg.Wait()
	if !rep.Clean {
		t.Fatalf("dirty drain out of the reload race: %+v", rep)
	}
	// A second drain re-reports without hanging.
	srv.Drain(time.Second)
}
