package serve

// Tenant and generation lifecycle: each named tenant owns a compiled
// rule database, a dispatcher with its own flow limits, byte quotas and
// isolated counters. Rule reload is zero-downtime — the new database is
// loaded and validated in the background, then swapped in behind an
// atomic pointer with epoch/refcount draining: requests that acquired
// the old generation finish on the old engine (its dispatcher is only
// closed, flushing every shard, when the last reference releases), and
// new requests start on the new one.

import (
	"fmt"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"vpatch/ids"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
	"vpatch/internal/resil"
)

// TenantConfig bounds one tenant's pipeline. Zero fields inherit the
// server's defaults.
type TenantConfig struct {
	// Shards is the number of worker goroutines of the tenant's
	// dispatcher (per generation).
	Shards int `json:"shards,omitempty"`
	// MaxFlows / FlowTimeout / FlowPendingBytes / TotalPendingBytes
	// feed netsim.Limits, per shard.
	MaxFlows          int           `json:"max_flows,omitempty"`
	FlowTimeout       time.Duration `json:"flow_timeout_ns,omitempty"`
	FlowPendingBytes  int           `json:"flow_pending_bytes,omitempty"`
	TotalPendingBytes int           `json:"total_pending_bytes,omitempty"`
	// QuotaBytesPerSec caps the tenant's ingest+scan volume (token
	// bucket, burst QuotaBurstBytes); requests over quota are rejected
	// with 429. 0 = unlimited.
	QuotaBytesPerSec int64 `json:"quota_bytes_per_sec,omitempty"`
	QuotaBurstBytes  int64 `json:"quota_burst_bytes,omitempty"`
	// VerifierFlowBudget caps one flow's verifier spend in modeled
	// cycles (costmodel-priced redfa runs, DFA states and hit
	// bookkeeping); a flow that overspends is demoted to literal-only
	// alerting. 0 inherits the server default; negative disables.
	VerifierFlowBudget int64 `json:"verifier_flow_budget,omitempty"`
	// VerifierBudgetPerSec rate-limits the tenant's aggregate verifier
	// spend (modeled cycles/sec, burst VerifierBudgetBurst; default
	// burst = 2x rate). 0 inherits; negative disables.
	VerifierBudgetPerSec int64 `json:"verifier_budget_per_sec,omitempty"`
	VerifierBudgetBurst  int64 `json:"verifier_budget_burst,omitempty"`
	// IngestQueueBytes bounds the tenant's lane on the fair ingest
	// scheduler. Effective only through the server's TenantDefaults
	// (the scheduler applies one bound to every lane); 0 = resil
	// default (4 MiB).
	IngestQueueBytes int `json:"ingest_queue_bytes,omitempty"`
}

func (c TenantConfig) withDefaults(d TenantConfig) TenantConfig {
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = d.MaxFlows
	}
	if c.FlowTimeout == 0 {
		c.FlowTimeout = d.FlowTimeout
	}
	if c.FlowPendingBytes == 0 {
		c.FlowPendingBytes = d.FlowPendingBytes
	}
	if c.TotalPendingBytes == 0 {
		c.TotalPendingBytes = d.TotalPendingBytes
	}
	if c.QuotaBytesPerSec == 0 {
		c.QuotaBytesPerSec = d.QuotaBytesPerSec
	}
	if c.QuotaBurstBytes == 0 {
		c.QuotaBurstBytes = d.QuotaBurstBytes
	}
	if c.VerifierFlowBudget == 0 {
		c.VerifierFlowBudget = d.VerifierFlowBudget
	}
	if c.VerifierBudgetPerSec == 0 {
		c.VerifierBudgetPerSec = d.VerifierBudgetPerSec
	}
	if c.VerifierBudgetBurst == 0 {
		c.VerifierBudgetBurst = d.VerifierBudgetBurst
	}
	if c.IngestQueueBytes == 0 {
		c.IngestQueueBytes = d.IngestQueueBytes
	}
	return c
}

func (c TenantConfig) limits() netsim.Limits {
	return netsim.Limits{
		MaxFlows:          c.MaxFlows,
		IdleTimeoutMicros: uint64(c.FlowTimeout.Microseconds()),
		FlowPendingBytes:  c.FlowPendingBytes,
		TotalPendingBytes: c.TotalPendingBytes,
	}
}

// tenantNameRE keeps names shell-, URL- and Prometheus-label-safe.
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// Tenant is one isolated scanning domain: rule database, dispatcher,
// quotas and counters.
type Tenant struct {
	name string
	cfg  TenantConfig
	srv  *Server

	// reloadMu serializes Reload and shutdown (swaps stay ordered; the
	// data path never takes it).
	reloadMu sync.Mutex
	shut     bool

	cur      atomic.Pointer[generation]
	lastGen  atomic.Uint64
	swapNano atomic.Int64 // wall clock of the last successful swap

	quota *tokenBucket
	// vbudget is the tenant's verifier budget (per-flow cap plus shared
	// cycle pool), installed on every generation's dispatcher; the pool
	// persists across rule reloads so a hot swap cannot reset an
	// attacker's spend.
	vbudget resil.VerifierBudget

	alerts   atomic.Uint64 // flow alerts delivered
	rejected atomic.Uint64 // quota rejections (429s)
	ruleMu   sync.Mutex
	perRule  map[int32]uint64

	// httpScan accumulates one-shot ScanBuffer instrumentation
	// (request-scoped scratch folded in after each scan).
	httpScan metrics.Atomic

	// obsMu guards the generation ledger: live generations plus the
	// merged counters of finalized ones. Scrapes read retired+live
	// under the mutex, and finalize moves a generation's tallies from
	// live to retired under the same mutex, so totals never double
	// count and never go backwards.
	obsMu        sync.Mutex
	live         map[*generation]struct{}
	retiredScan  metrics.Counters
	retiredStats netsim.Stats // gauges stripped (Flows/PendingBytes = 0)
	residualOOO  int          // pending bytes left behind by closed generations
}

// generation is one loaded rule database epoch: engine, dispatcher and
// observer, reference-counted. refs starts at 1 (the tenant's
// ownership); every request acquires/releases around its use. When the
// tenant swaps in a successor it drops the ownership ref, and whoever
// releases last closes the dispatcher — flushing every shard, so no
// buffered alert is lost — and folds the final tallies into the
// tenant's retired totals.
type generation struct {
	gen  uint64
	t    *Tenant
	eng  *ids.Engine
	disp *ids.Dispatcher
	obs  *ids.PipelineObserver

	refs    atomic.Int64
	fin     sync.Once
	drained chan struct{}
}

func (s *Server) newTenant(name string, cfg TenantConfig) *Tenant {
	t := &Tenant{
		name:    name,
		cfg:     cfg,
		srv:     s,
		perRule: make(map[int32]uint64),
		live:    make(map[*generation]struct{}),
	}
	if cfg.QuotaBytesPerSec > 0 {
		burst := cfg.QuotaBurstBytes
		if burst <= 0 {
			burst = cfg.QuotaBytesPerSec
		}
		t.quota = newTokenBucket(cfg.QuotaBytesPerSec, burst)
	}
	if cfg.VerifierFlowBudget > 0 {
		t.vbudget.PerFlow = cfg.VerifierFlowBudget
	}
	if cfg.VerifierBudgetPerSec > 0 {
		t.vbudget.Pool = resil.NewPool(cfg.VerifierBudgetPerSec, cfg.VerifierBudgetBurst)
	}
	if t.vbudget.Armed() {
		t.vbudget.Price = resil.DefaultPrice()
	}
	return t
}

// Reload validates db (CRC and pattern-digest checks run inside
// ids.LoadDB), compiles nothing — the blob holds the precompiled
// engines — and atomically swaps the new generation in. In-flight
// requests keep the generation they acquired; its dispatcher drains in
// the background once the last reference releases. Returns the new
// generation number.
func (t *Tenant) Reload(db []byte) (uint64, error) {
	// Load outside the locks: validation and engine reconstruction are
	// the slow part, and the data path must not stall behind them.
	eng, err := ids.LoadDB(db, func(ids.Alert) {})
	if err != nil {
		return 0, err
	}

	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	if t.shut {
		return 0, fmt.Errorf("serve: tenant %q is draining", t.name)
	}
	gen := t.lastGen.Add(1)
	g := &generation{gen: gen, t: t, eng: eng, drained: make(chan struct{})}
	g.refs.Store(1)
	g.disp = eng.NewDispatcher(t.cfg.Shards, t.cfg.limits(), func(a ids.Alert) { t.onAlert(gen, eng, a) })
	if t.vbudget.Armed() {
		// Installed before the generation is published, so no segment
		// races the shard budget fields.
		g.disp.SetVerifierBudget(t.vbudget)
	}
	g.obs = g.disp.Observe()

	t.obsMu.Lock()
	t.live[g] = struct{}{}
	t.obsMu.Unlock()

	old := t.cur.Swap(g)
	t.swapNano.Store(time.Now().UnixNano())
	if old != nil {
		old.release() // drop ownership; drains when in-flight users finish
	}
	return gen, nil
}

// acquire pins the current generation for one request. Returns nil when
// the tenant has no rules loaded (or was shut down). Callers must
// release exactly once.
func (t *Tenant) acquire() *generation {
	for {
		g := t.cur.Load()
		if g == nil {
			return nil
		}
		g.refs.Add(1)
		if t.cur.Load() == g {
			return g
		}
		// Lost a race with a swap; this ref may have resurrected a
		// generation whose drain already began. Put it back and retry.
		g.release()
	}
}

func (g *generation) release() {
	if g.refs.Add(-1) == 0 {
		g.finalize()
	}
}

// finalize retires the generation: closes the dispatcher (every shard
// flushes, so all pending alerts surface first) and moves its tallies
// into the tenant's retired totals. sync.Once absorbs the benign
// double-trigger race between the owner's release and a late acquirer
// backing out.
func (g *generation) finalize() {
	g.fin.Do(func() {
		st := g.disp.Close()
		t := g.t
		t.obsMu.Lock()
		c := g.obs.Counters()
		t.retiredScan.Add(&c)
		stripped := st
		stripped.Flows, stripped.PendingBytes = 0, 0
		t.retiredStats.Add(stripped)
		t.residualOOO += st.PendingBytes
		delete(t.live, g)
		t.obsMu.Unlock()
		close(g.drained)
	})
}

// onAlert is the tenant's alert sink, called concurrently from the
// dispatcher's worker goroutines. Rule-conditioned databases tally per
// rule; literal databases per pattern.
func (t *Tenant) onAlert(gen uint64, eng *ids.Engine, a ids.Alert) {
	t.alerts.Add(1)
	id := a.PatternID
	if a.RuleID >= 0 {
		id = a.RuleID
	}
	t.ruleMu.Lock()
	t.perRule[id]++
	t.ruleMu.Unlock()
	t.srv.alertHub.publish(alertRecord(t.name, gen, eng, a))
	if fn := t.srv.cfg.OnAlert; fn != nil {
		fn(t.name, gen, a)
	}
}

// takeQuota charges n bytes against the tenant's budget, counting a
// rejection when the budget is exhausted.
func (t *Tenant) takeQuota(n int) bool {
	if t.quota == nil {
		return true
	}
	if t.quota.take(n) {
		return true
	}
	t.rejected.Add(1)
	return false
}

// scanCounters returns the tenant's merged scan counters: finalized
// generations, live generations' published tallies, and one-shot HTTP
// scans. Safe to call from any goroutine; consecutive calls never go
// backwards.
func (t *Tenant) scanCounters() metrics.Counters {
	t.obsMu.Lock()
	defer t.obsMu.Unlock()
	total := t.retiredScan
	for g := range t.live {
		c := g.obs.Counters()
		total.Add(&c)
	}
	h := t.httpScan.Snapshot()
	total.Add(&h)
	return total
}

// lifecycleStats returns the tenant's merged flow-lifecycle stats
// (gauges reflect live generations only; counters include retired
// ones).
func (t *Tenant) lifecycleStats() netsim.Stats {
	t.obsMu.Lock()
	defer t.obsMu.Unlock()
	st := t.retiredStats
	for g := range t.live {
		st.Add(g.obs.FlowStats())
	}
	return st
}

// generationInfo reports the tenant's current epoch for responses and
// metrics: generation number, rule count, algorithm, and seconds since
// the last swap. Generation 0 means no rules loaded.
func (t *Tenant) generationInfo() (gen uint64, rules int, algo string, age float64) {
	g := t.acquire()
	if g == nil {
		return 0, 0, "", 0
	}
	defer g.release()
	age = time.Since(time.Unix(0, t.swapNano.Load())).Seconds()
	n := g.eng.Set().Len()
	if rset := g.eng.Rules(); rset != nil {
		n = len(rset.Rules) // rule-conditioned database: count rules, not prefilter literals
	}
	return g.gen, n, g.eng.Algorithm().String(), age
}

// shutdown retires the tenant: no new acquisitions succeed, and the
// call blocks until every live generation has drained (all in-flight
// requests released, every shard flushed) or the deadline passes.
// Returns true on a complete drain.
func (t *Tenant) shutdown(deadline <-chan struct{}) bool {
	t.reloadMu.Lock()
	t.shut = true
	old := t.cur.Swap(nil)
	t.reloadMu.Unlock()
	if old != nil {
		old.release()
	}
	for {
		t.obsMu.Lock()
		var g *generation
		for lg := range t.live {
			g = lg
			break
		}
		t.obsMu.Unlock()
		if g == nil {
			return true
		}
		select {
		case <-g.drained:
		case <-deadline:
			return false
		}
	}
}

// tokenBucket is a classic byte-rate limiter: rate tokens/second refill
// up to burst; take succeeds when the bucket holds n tokens.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(ratePerSec, burst int64) *tokenBucket {
	return &tokenBucket{
		rate:   float64(ratePerSec),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

func (b *tokenBucket) take(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}
