package serve

// Hand-rolled Prometheus text exposition (version 0.0.4), stdlib only:
// counter/gauge families with tenant labels and a fixed-bucket latency
// histogram per endpoint. The daemon exports the library's existing
// counters — matcher events, reassembly lifecycle, accel skip figures —
// without importing a metrics client.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram upper bounds in seconds. Scan
// requests are sub-millisecond on small buffers and can reach seconds
// on worst-case rule sets, so the buckets spread log-ish across that
// range.
var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a concurrency-safe fixed-bucket latency histogram.
type histogram struct {
	counts [len(latencyBounds) + 1]atomic.Uint64 // +1: the +Inf bucket
	sumNs  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds[:], sec)
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// writeTo renders the histogram in exposition format under name with
// the given pre-rendered label prefix (e.g. `handler="scan"`).
func (h *histogram) writeTo(b *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range latencyBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily emits the HELP/TYPE preamble for one metric family.
func promFamily(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promSample emits one sample line with an optional rendered label set.
func promSample(b *strings.Builder, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(b, "%s %s\n", name, formatFloat(v))
	} else {
		fmt.Fprintf(b, "%s{%s} %s\n", name, labels, formatFloat(v))
	}
}

// tenantLabel renders the label pair for a tenant (names are validated
// against tenantNameRE at creation, so no escaping is needed).
func tenantLabel(name string) string { return `tenant="` + name + `"` }
