package serve

// The alert stream: every flow alert any tenant's pipeline emits is
// resolved to a wire record (rule sid/msg for rule-conditioned
// databases, pattern id otherwise), kept in a bounded replay ring, and
// fanned out to followers — GET /v1/alerts streams them as JSON lines,
// and embedding programs (vpatch-serve's -alerts-out sink) subscribe
// with SubscribeAlerts. Publishing never blocks the data path: slow
// followers lose records (counted, exported on /metrics) instead of
// stalling worker goroutines.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vpatch/ids"
)

// AlertRecord is the JSONL alert shape of GET /v1/alerts and the
// -alerts-out sinks: vpatch-ids's record plus tenant, generation and a
// monotone sequence number (gaps mean records were dropped on a slow
// follower).
type AlertRecord struct {
	Seq        uint64 `json:"seq"`
	Tenant     string `json:"tenant"`
	Generation uint64 `json:"generation"`
	SID        int64  `json:"sid,omitempty"`
	Msg        string `json:"msg,omitempty"`
	Rule       int32  `json:"rule"`
	Pattern    int32  `json:"pattern"`
	Proto      string `json:"proto"`
	SrcIP      string `json:"src_ip"`
	SrcPort    uint16 `json:"src_port"`
	DstIP      string `json:"dst_ip"`
	DstPort    uint16 `json:"dst_port"`
	StreamOff  int64  `json:"stream_off"`
}

// alertRingSize bounds the replay buffer (the last N alerts a plain
// GET /v1/alerts returns); subChanBuf bounds each follower's queue.
const (
	alertRingSize = 1024
	subChanBuf    = 256
)

// alertHub is the fan-out point between tenant pipelines (publishers)
// and followers.
type alertHub struct {
	mu   sync.Mutex
	ring [alertRingSize]AlertRecord
	n    int    // valid records in ring (≤ alertRingSize)
	next uint64 // sequence number of the next record
	subs map[chan AlertRecord]struct{}
	lost uint64 // records dropped on slow followers
}

func newAlertHub() *alertHub {
	return &alertHub{subs: make(map[chan AlertRecord]struct{})}
}

// publish stamps the record's sequence number, buffers it for replay,
// and offers it to every follower without blocking.
func (h *alertHub) publish(rec AlertRecord) {
	h.mu.Lock()
	rec.Seq = h.next
	h.ring[h.next%alertRingSize] = rec
	h.next++
	if h.n < alertRingSize {
		h.n++
	}
	for ch := range h.subs {
		select {
		case ch <- rec:
		default:
			h.lost++
		}
	}
	h.mu.Unlock()
}

// subscribe registers a follower and returns its channel plus a replay
// of the buffered records (oldest first). The caller must unsubscribe.
func (h *alertHub) subscribe() (chan AlertRecord, []AlertRecord) {
	ch := make(chan AlertRecord, subChanBuf)
	h.mu.Lock()
	replay := h.buffered()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, replay
}

func (h *alertHub) unsubscribe(ch chan AlertRecord) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
	// Drain so a publisher that won the race into the buffer never
	// matters; the channel is garbage once unregistered.
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// buffered returns the replayable records oldest-first. Caller holds mu.
func (h *alertHub) buffered() []AlertRecord {
	out := make([]AlertRecord, 0, h.n)
	for i := h.next - uint64(h.n); i < h.next; i++ {
		out = append(out, h.ring[i%alertRingSize])
	}
	return out
}

func (h *alertHub) stats() (buffered int, subs int, lost uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n, len(h.subs), h.lost
}

// SubscribeAlerts registers a follower of the server's alert stream:
// the returned channel first receives nothing (no replay — callers
// wanting history use /v1/alerts) and then every subsequent alert from
// any tenant. Slow consumers lose records rather than stalling the
// pipelines. The cancel function must be called to unregister.
func (s *Server) SubscribeAlerts() (<-chan AlertRecord, func()) {
	ch := make(chan AlertRecord, subChanBuf)
	s.alertHub.mu.Lock()
	s.alertHub.subs[ch] = struct{}{}
	s.alertHub.mu.Unlock()
	return ch, func() { s.alertHub.unsubscribe(ch) }
}

// alertRecord resolves a pipeline alert against the generation's
// engine: rule alerts carry the rule's sid and msg, literal alerts the
// pattern id.
func alertRecord(tenant string, gen uint64, eng *ids.Engine, a ids.Alert) AlertRecord {
	rec := AlertRecord{
		Tenant: tenant, Generation: gen,
		Rule: a.RuleID, Pattern: a.PatternID, Proto: "tcp",
		SrcIP: ip4String(a.Flow.SrcIP), SrcPort: a.Flow.SrcPort,
		DstIP: ip4String(a.Flow.DstIP), DstPort: a.Flow.DstPort,
		StreamOff: a.StreamOffset,
	}
	if rset := eng.Rules(); rset != nil && a.RuleID >= 0 {
		r := &rset.Rules[a.RuleID]
		rec.SID, rec.Msg = r.SID, r.Msg
	}
	return rec
}

func ip4String(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// handleAlerts serves GET /v1/alerts: the buffered recent alerts as
// JSON lines, optionally filtered with ?tenant=; ?limit=N keeps only
// the newest N. With ?follow=1 the response does not end: buffered
// records replay first, then live alerts stream as they happen until
// the client disconnects or the daemon drains.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	follow := r.URL.Query().Get("follow") == "1"

	match := func(rec AlertRecord) bool {
		return tenant == "" || rec.Tenant == tenant
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	write := func(rec AlertRecord) bool { return enc.Encode(rec) == nil }

	if !follow {
		s.alertHub.mu.Lock()
		replay := s.alertHub.buffered()
		s.alertHub.mu.Unlock()
		replay = filterAlerts(replay, match, limit)
		for _, rec := range replay {
			if !write(rec) {
				return
			}
		}
		return
	}

	// A follower that stops reading must not park this handler forever:
	// every write (records and heartbeats) runs under a write deadline,
	// and idle periods carry newline heartbeats — valid NDJSON filler —
	// so dead connections are discovered within a heartbeat interval
	// instead of holding a subscription slot until the next alert.
	fl, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	armWrite := func() {
		if d := s.cfg.FollowWriteTimeout; d > 0 {
			rc.SetWriteDeadline(time.Now().Add(d))
		}
	}
	ch, replay := s.alertHub.subscribe()
	defer s.alertHub.unsubscribe(ch)
	replay = filterAlerts(replay, match, limit)
	armWrite()
	for _, rec := range replay {
		if !write(rec) {
			return
		}
	}
	if fl != nil {
		fl.Flush()
	}
	var heartbeat <-chan time.Time
	if d := s.cfg.FollowHeartbeat; d > 0 {
		tk := time.NewTicker(d)
		defer tk.Stop()
		heartbeat = tk.C
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			return
		case <-heartbeat:
			armWrite()
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case rec := <-ch:
			// Replayed records may race into the subscription; the
			// sequence numbers keep the stream deduplicatable, but skip
			// the easy case where the overlap is still in order.
			if len(replay) > 0 && rec.Seq <= replay[len(replay)-1].Seq {
				continue
			}
			if !match(rec) {
				continue
			}
			armWrite()
			if !write(rec) {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// filterAlerts keeps the matching records and then only the newest
// limit of them (limit < 0 = unlimited).
func filterAlerts(recs []AlertRecord, match func(AlertRecord) bool, limit int) []AlertRecord {
	out := recs[:0]
	for _, rec := range recs {
		if match(rec) {
			out = append(out, rec)
		}
	}
	if limit >= 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}
