package serve

// Daemon tests: wire round-trip, HTTP endpoint lifecycle, the hot-swap
// reload property (no lost and no duplicated alerts across concurrent
// rule swaps), /metrics validity under concurrent scrape-and-ingest
// load, and the raw-TCP ingest port. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/netsim"
)

// ruleBlob compiles an HTTP-protocol rule set into a serialized .vpdb
// blob, the unit of hot reload.
func ruleBlob(t testing.TB, pats ...string) []byte {
	t.Helper()
	set := vpatch.NewPatternSet()
	for _, p := range pats {
		set.Add([]byte(p), false, vpatch.ProtoHTTP)
	}
	eng, err := ids.NewEngine(set, vpatch.Options{}, func(ids.Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteDB(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flowSegments builds one complete in-order flow carrying payload,
// split across a few segments with FIN on the last.
func flowSegments(k netsim.FlowKey, payload []byte) []netsim.Segment {
	var segs []netsim.Segment
	seq := uint32(0)
	for len(payload) > 0 {
		n := 19 // odd size so patterns straddle segment boundaries
		if n > len(payload) {
			n = len(payload)
		}
		segs = append(segs, netsim.Segment{Flow: k, Seq: seq, Payload: payload[:n]})
		seq += uint32(n)
		payload = payload[n:]
	}
	if len(segs) == 0 {
		segs = append(segs, netsim.Segment{Flow: k})
	}
	segs[len(segs)-1].Flags = netsim.FlagFIN
	return segs
}

func TestWireRoundTrip(t *testing.T) {
	segs := []netsim.Segment{
		{Flow: netsim.FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 40001, DstPort: 80},
			Seq: 7, TsMicros: 123456789, Payload: []byte("hello wire")},
		{Flow: netsim.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4},
			Seq: 0xFFFFFFF0, Flags: netsim.FlagFIN, Payload: nil},
		{Flow: netsim.FlowKey{DstPort: 53}, Flags: netsim.FlagRST, Payload: bytes.Repeat([]byte{0xAB}, 1500)},
	}
	r := bytes.NewReader(EncodeSegments(segs))
	for i, want := range segs {
		got, err := ReadSegment(r)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if len(want.Payload) == 0 {
			want.Payload, got.Payload = nil, got.Payload[:0]
			if len(got.Payload) != 0 {
				t.Fatalf("segment %d: unexpected payload", i)
			}
			got.Payload = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("segment %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := ReadSegment(r); err != io.EOF {
		t.Fatalf("want clean EOF at frame boundary, got %v", err)
	}

	// Mid-frame truncation is an error, not EOF.
	enc := EncodeSegments(segs[:1])
	if _, err := ReadSegment(bytes.NewReader(enc[:len(enc)-3])); err == nil || err == io.EOF {
		t.Fatalf("truncated frame: want a real error, got %v", err)
	}
	// A frame shorter than its fixed header is rejected.
	var bad [4]byte
	bad[3] = segFixedLen - 1
	if _, err := ReadSegment(bytes.NewReader(bad[:])); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// A corrupt length prefix cannot demand a giant allocation.
	huge := []byte{0x7F, 0xFF, 0xFF, 0xFF}
	if _, err := ReadSegment(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func postBytes(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func TestHTTPLifecycle(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 503 {
		t.Fatalf("readyz before rules: want 503, got %d", resp.StatusCode)
	}
	if resp, _ := get("/nope"); resp.StatusCode != 404 {
		t.Fatalf("unknown path: want 404, got %d", resp.StatusCode)
	}

	// Rules upload auto-creates the default tenant.
	resp, body := postBytes(t, ts.URL+"/v1/tenants/default/rules", ruleBlob(t, "http-attack-xyz"))
	if resp.StatusCode != 200 {
		t.Fatalf("rules upload: %d %s", resp.StatusCode, body)
	}
	var rr struct {
		Generation uint64 `json:"generation"`
		Rules      int    `json:"rules"`
	}
	if err := json.Unmarshal(body, &rr); err != nil || rr.Generation != 1 || rr.Rules != 1 {
		t.Fatalf("rules reply %s (err %v)", body, err)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz after rules: %d", resp.StatusCode)
	}

	// A corrupt blob is rejected and the generation stays.
	blob := ruleBlob(t, "http-attack-xyz")
	blob[len(blob)/2] ^= 0xFF
	if resp, _ := postBytes(t, ts.URL+"/v1/tenants/default/rules", blob); resp.StatusCode != 422 {
		t.Fatalf("corrupt rules: want 422, got %d", resp.StatusCode)
	}

	// One-shot scan.
	resp, body = postBytes(t, ts.URL+"/v1/scan?port=80", []byte("xx http-attack-xyz yy http-attack-xyz"))
	if resp.StatusCode != 200 {
		t.Fatalf("scan: %d %s", resp.StatusCode, body)
	}
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Generation != 1 || len(sr.Matches) != 2 || sr.Matches[0].Offset != 3 {
		t.Fatalf("scan reply %+v", sr)
	}

	// Stream a complete flow with flush: the alert must be visible in
	// the response's cumulative count.
	segs := flowSegments(netsim.FlowKey{SrcIP: 9, DstIP: 8, SrcPort: 1234, DstPort: 80},
		[]byte("padding padding http-attack-xyz padding"))
	resp, body = postBytes(t, ts.URL+"/v1/stream?flush=1", EncodeSegments(segs))
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	var str streamResponse
	if err := json.Unmarshal(body, &str); err != nil {
		t.Fatal(err)
	}
	if str.Segments != len(segs) || str.AlertsTotal != 1 {
		t.Fatalf("stream reply %+v, want %d segments and 1 alert", str, len(segs))
	}

	// Named tenant with a byte quota: isolated rules, 429 past budget.
	cfg, _ := json.Marshal(TenantConfig{QuotaBytesPerSec: 1, QuotaBurstBytes: 64})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/tenants/acme", bytes.NewReader(cfg))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 201 {
		t.Fatalf("tenant create: %d", resp2.StatusCode)
	}
	if resp, _ := postBytes(t, ts.URL+"/v1/scan?tenant=acme&port=80", []byte("x")); resp.StatusCode != 409 {
		t.Fatalf("scan without rules: want 409, got %d", resp.StatusCode)
	}
	if resp, _ := postBytes(t, ts.URL+"/v1/tenants/acme/rules", ruleBlob(t, "acme-only")); resp.StatusCode != 200 {
		t.Fatalf("acme rules: %d", resp.StatusCode)
	}
	// Default tenant's rules must not leak into acme.
	resp, body = postBytes(t, ts.URL+"/v1/scan?tenant=acme&port=80", []byte("http-attack-xyz acme-only"))
	if resp.StatusCode != 200 {
		t.Fatalf("acme scan: %d %s", resp.StatusCode, body)
	}
	sr = scanResponse{}
	json.Unmarshal(body, &sr)
	if len(sr.Matches) != 1 {
		t.Fatalf("acme scan must hit only its own rule: %+v", sr)
	}
	// 25 bytes spent of a 64-byte burst at 1 B/s: the next scan breaks
	// the budget.
	if resp, _ = postBytes(t, ts.URL+"/v1/scan?tenant=acme&port=80", bytes.Repeat([]byte("x"), 64)); resp.StatusCode != 429 {
		t.Fatalf("over-quota scan: want 429, got %d", resp.StatusCode)
	}
	if resp, _ := get("/v1/tenants/acme"); resp.StatusCode != 200 {
		t.Fatalf("tenant detail: %d", resp.StatusCode)
	}
	var acme *Tenant
	if acme = srv.Tenant("acme"); acme.rejected.Load() != 1 {
		t.Fatalf("quota rejections = %d, want 1", acme.rejected.Load())
	}

	// Tenant names that would break Prometheus labels are rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+`/v1/tenants/bad"name`, nil)
	resp2, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 409 {
		t.Fatalf(`tenant "bad\"name": want 409, got %d`, resp2.StatusCode)
	}

	// Metrics render validly with traffic on the books.
	_, body = get("/metrics")
	checkPromText(t, string(body))
	if !strings.Contains(string(body), `vpatch_alerts_total{tenant="default"} 1`) {
		t.Fatalf("metrics missing default tenant alert count:\n%s", body)
	}
	for _, fam := range []string{
		"vpatch_arena_chunks_in_use", "vpatch_arena_chunks_peak",
		"vpatch_arena_pooled_bytes", "vpatch_arena_overflow_total",
	} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("metrics missing arena gauge %s:\n%s", fam, body)
		}
	}

	// Delete drains the named tenant.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/tenants/acme", nil)
	resp2, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || !strings.Contains(string(out), `"drained":true`) {
		t.Fatalf("tenant delete: %d %s", resp2.StatusCode, out)
	}

	// Drain: residuals reported, data plane gated, health still up.
	resp, body = postBytes(t, ts.URL+"/drain", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	var rep DrainReport
	if err := json.Unmarshal(body, &rep); err != nil || !rep.Clean {
		t.Fatalf("drain report %s (err %v)", body, err)
	}
	if d := rep.Tenants["default"]; d.Alerts != 1 || d.FlowsClosed != 1 {
		t.Fatalf("default drain tally %+v, want 1 alert and 1 closed flow", rep.Tenants["default"])
	}
	if resp, _ := postBytes(t, ts.URL+"/v1/scan?port=80", []byte("x")); resp.StatusCode != 503 {
		t.Fatalf("scan while draining: want 503, got %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 503 {
		t.Fatalf("readyz while draining: want 503, got %d", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
}

// TestReloadProperty is the hot-swap acceptance property: under
// concurrent ingestion with repeated rule reloads, every complete flow
// carrying a pattern produces exactly one alert — none lost to a swap,
// none duplicated by the drain of a retired generation — and /metrics
// stays valid and monotonic throughout.
func TestReloadProperty(t *testing.T) {
	type flowAlerts struct {
		sync.Mutex
		n map[netsim.FlowKey]int
	}
	seen := &flowAlerts{n: make(map[netsim.FlowKey]int)}
	srv := New(Config{OnAlert: func(_ string, _ uint64, a ids.Alert) {
		seen.Lock()
		seen.n[a.Flow]++
		seen.Unlock()
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Both databases contain the sentinel pattern, so a flow matches
	// exactly once no matter which generation scans it.
	blobs := [][]byte{
		ruleBlob(t, "http-attack-xyz", "gen-even-filler"),
		ruleBlob(t, "http-attack-xyz", "gen-odd-filler", "second-odd-rule"),
	}
	if resp, body := postBytes(t, ts.URL+"/v1/tenants/default/rules", blobs[0]); resp.StatusCode != 200 {
		t.Fatalf("initial rules: %d %s", resp.StatusCode, body)
	}

	const (
		workers      = 4
		flowsPerReq  = 8
		reqPerWorker = 25
		swaps        = 6
	)
	var gens sync.Map // generation number -> struct{}
	var wg sync.WaitGroup
	var sent atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < reqPerWorker; r++ {
				var enc []byte
				for f := 0; f < flowsPerReq; f++ {
					k := netsim.FlowKey{
						SrcIP:   uint32(w)<<20 | uint32(r)<<8 | uint32(f),
						DstIP:   0xC0A80001,
						SrcPort: uint16(40000 + w),
						DstPort: 80,
					}
					payload := fmt.Sprintf("w%d r%d f%d padding http-attack-xyz trailing bytes", w, r, f)
					for _, s := range flowSegments(k, []byte(payload)) {
						enc = AppendSegment(enc, s)
					}
				}
				resp, body := postBytes(t, ts.URL+"/v1/stream?flush=1", enc)
				if resp.StatusCode != 200 {
					t.Errorf("stream: %d %s", resp.StatusCode, body)
					return
				}
				var str streamResponse
				if err := json.Unmarshal(body, &str); err != nil {
					t.Error(err)
					return
				}
				gens.Store(str.Generation, struct{}{})
				sent.Add(flowsPerReq)
			}
		}(w)
	}

	// Swapper: six hot reloads while the workers stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			time.Sleep(3 * time.Millisecond)
			resp, body := postBytes(t, ts.URL+"/v1/tenants/default/rules", blobs[i%2])
			if resp.StatusCode != 200 {
				t.Errorf("swap %d: %d %s", i, resp.StatusCode, body)
			}
		}
	}()

	// Scraper: /metrics must stay valid and the alert counter monotonic
	// while generations come and go.
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var prev float64
		for {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			checkPromText(t, string(body))
			v, ok := promValue(string(body), `vpatch_alerts_total{tenant="default"}`)
			if ok && v < prev {
				t.Errorf("vpatch_alerts_total went backwards: %v after %v", v, prev)
				return
			}
			if ok {
				prev = v
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-scraperDone
	if t.Failed() {
		t.FailNow()
	}

	rep := srv.Drain(10 * time.Second)
	if !rep.Clean {
		t.Fatalf("dirty drain: %+v", rep)
	}

	want := int(sent.Load())
	seen.Lock()
	defer seen.Unlock()
	total := 0
	for k, n := range seen.n {
		total += n
		if n != 1 {
			t.Errorf("flow %+v alerted %d times, want exactly 1", k, n)
		}
	}
	if len(seen.n) != want || total != want {
		t.Fatalf("alerts: %d flows / %d total, want %d/%d (lost or duplicated across swaps)",
			len(seen.n), total, want, want)
	}
	if rep.Tenants[DefaultTenant].Alerts != uint64(want) {
		t.Fatalf("drain tally %d alerts, want %d", rep.Tenants[DefaultTenant].Alerts, want)
	}
	nGens := 0
	gens.Range(func(k, _ any) bool { nGens++; return true })
	if nGens < 2 {
		t.Fatalf("traffic only ever saw %d generation(s); swap concurrency not exercised", nGens)
	}
	gen, _, _, _ := srv.Tenant(DefaultTenant).generationInfo()
	if gen != 0 { // tenant was shut down by Drain
		t.Fatalf("post-drain generation = %d, want 0", gen)
	}
}

func TestIngestTCP(t *testing.T) {
	srv := New(Config{})
	if _, err := srv.CreateTenant(DefaultTenant, TenantConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tenant(DefaultTenant).Reload(ruleBlob(t, "http-attack-xyz")); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ingestDone := make(chan error, 1)
	go func() { ingestDone <- srv.ServeIngest(ln) }()

	conn, err := DialIngest(ln.Addr().String(), DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	const flows = 10
	for i := 0; i < flows; i++ {
		k := netsim.FlowKey{SrcIP: uint32(1000 + i), DstIP: 7, SrcPort: uint16(i + 1), DstPort: 80}
		payload := fmt.Sprintf("tcp flow %d carries http-attack-xyz onward", i)
		if _, err := conn.Write(EncodeSegments(flowSegments(k, []byte(payload)))); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	// A second connection naming an unknown tenant is dropped without
	// disturbing the first tenant's pipeline.
	if c2, err := DialIngest(ln.Addr().String(), "ghost"); err == nil {
		c2.Write([]byte{0, 0, 0, 26})
		c2.Close()
	}

	// A finished feed (clean EOF) triggers a flush, so the alerts become
	// visible without closing the pipeline; wait for that, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Tenant(DefaultTenant).alerts.Load() < flows && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Tenant(DefaultTenant).alerts.Load(); got != flows {
		t.Fatalf("alerts after feed EOF = %d, want %d", got, flows)
	}
	rep := srv.Drain(10 * time.Second)
	if err := <-ingestDone; err != nil {
		t.Fatalf("ServeIngest: %v", err)
	}
	if got := rep.Tenants[DefaultTenant].Alerts; got != flows {
		t.Fatalf("alerts = %d, want %d", got, flows)
	}
	if !rep.Clean {
		t.Fatalf("dirty drain: %+v", rep)
	}
}

// checkPromText validates Prometheus text exposition 0.0.4 shape: every
// sample belongs to a declared family, values parse, and histogram
// bucket series are cumulative.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}
	lastBucket := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("metrics line %d: bad comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				types[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line %d: no value in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("metrics line %d: bad value %q", ln+1, valStr)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("metrics line %d: unbalanced labels in %q", ln+1, series)
			}
			name = series[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && types[f] == "histogram" {
				family = f
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("metrics line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		if typ == "counter" && val < 0 {
			t.Fatalf("metrics line %d: negative counter %q", ln+1, line)
		}
		if strings.HasSuffix(name, "_bucket") && typ == "histogram" {
			key := series[:strings.Index(series, "le=")]
			if val < lastBucket[key] {
				t.Fatalf("metrics line %d: histogram %q not cumulative", ln+1, series)
			}
			lastBucket[key] = val
		}
	}
	if len(types) == 0 {
		t.Fatal("metrics exposition is empty")
	}
}

// promValue extracts one sample's value by its exact series name.
func promValue(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			return v, err == nil
		}
	}
	return 0, false
}

// ruleSemBlob compiles Snort-lite rule lines with full rule semantics
// into a serialized .vpdb blob.
func ruleSemBlob(t testing.TB, ruleText string) []byte {
	t.Helper()
	rset, err := vpatch.ParseRuleSet(strings.NewReader(ruleText), vpatch.RuleParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ids.NewRuleEngine(rset, vpatch.Options{}, func(ids.Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteDB(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAlertStream exercises the rule tier end to end over the daemon:
// a rule-conditioned database hot-loads, a matching flow streams in,
// and the alert surfaces on GET /v1/alerts (buffered and follow=1)
// with rule identity and on /metrics via the verifier counters.
func TestAlertStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	db := ruleSemBlob(t, `alert tcp any any -> any 80 (msg:"admin token"; `+
		`content:"admin"; nocase; content:"token="; distance:0; within:200; `+
		`pcre:"/[a-f0-9]{8}/"; sid:1001;)`+"\n")
	resp, body := postBytes(t, ts.URL+"/v1/tenants/default/rules", db)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rules upload: %d %s", resp.StatusCode, body)
	}
	var up struct {
		Rules int `json:"rules"`
	}
	if err := json.Unmarshal(body, &up); err != nil || up.Rules != 1 {
		t.Fatalf("rules upload reply %s: want rules=1", body)
	}

	// A live follower opened before any alert exists.
	fresp, err := http.Get(ts.URL + "/v1/alerts?follow=1&tenant=default")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	type lineOrErr struct {
		rec AlertRecord
		err error
	}
	lines := make(chan lineOrErr, 16)
	go func() {
		dec := json.NewDecoder(fresp.Body)
		for {
			var rec AlertRecord
			if err := dec.Decode(&rec); err != nil {
				lines <- lineOrErr{err: err}
				return
			}
			lines <- lineOrErr{rec: rec}
		}
	}()

	k := netsim.FlowKey{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 40001, DstPort: 80}
	segs := flowSegments(k, []byte("GET /aDmIn HTTP/1.1\r\nCookie: token=deadbeef\r\n\r\n"))
	resp, body = postBytes(t, ts.URL+"/v1/stream?flush=1", EncodeSegments(segs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	var str streamResponse
	if err := json.Unmarshal(body, &str); err != nil || str.AlertsTotal != 1 {
		t.Fatalf("stream reply %s: want alerts_total=1", body)
	}

	checkRec := func(rec AlertRecord) {
		t.Helper()
		if rec.Tenant != "default" || rec.SID != 1001 || rec.Msg != "admin token" ||
			rec.Rule != 0 || rec.Pattern != -1 ||
			rec.SrcIP != "10.0.0.1" || rec.DstPort != 80 {
			t.Fatalf("alert record %+v: wrong identity", rec)
		}
	}
	select {
	case l := <-lines:
		if l.err != nil {
			t.Fatalf("follow stream: %v", l.err)
		}
		checkRec(l.rec)
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream: no alert within 5s")
	}

	// The buffered (non-follow) view replays the same record.
	resp, body = func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/alerts?tenant=default&limit=10")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, b
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts: %d %s", resp.StatusCode, body)
	}
	var recs []AlertRecord
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var rec AlertRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("alerts body %q: %v", body, err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 1 {
		t.Fatalf("buffered alerts: got %d records, want 1 (%s)", len(recs), body)
	}
	checkRec(recs[0])

	// Verifier counters surface on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	checkPromText(t, text)
	for series, min := range map[string]float64{
		`vpatch_rule_alerts_total{tenant="default"}`:   1,
		`vpatch_verifier_runs_total{tenant="default"}`: 1,
		`vpatch_alert_stream_subscribers`:              1,
	} {
		if v, ok := promValue(text, series); !ok || v < min {
			t.Errorf("metrics: %s = %v (present %v), want >= %v", series, v, ok, min)
		}
	}
}
