package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
	"vpatch/internal/traffic"
)

// The rule-tier overhead sweep: the experiment behind the
// prefilter-then-verify design. The same traffic volume is scanned by
// a literal-only pipeline (the paper's configuration) and by the full
// rule tier (clause evaluation plus the anchored lazy-DFA regex
// verifier) while the density of injected anchor literals sweeps from
// 0% to ~10% of traffic bytes. Because the verifier runs only at
// literal-hit anchors, its cost must scale with the hit rate and
// vanish at 0% — this sweep measures exactly that, and the CI bench
// gate pins the clean-traffic overhead.

// RuleSweepRow is one anchor-hit-rate cell.
type RuleSweepRow struct {
	// HitRatePct is the injected anchor literals' share of traffic
	// bytes, in percent (0 = clean traffic, the deployment-dominant
	// case).
	HitRatePct float64 `json:"hit_rate_pct"`

	// Anchors counts prefilter literal hits; VerifierRuns and
	// RuleAlerts are the rule tier's own counters on the same traffic.
	Anchors      uint64 `json:"anchors"`
	VerifierRuns uint64 `json:"verifier_runs"`
	RuleAlerts   uint64 `json:"rule_alerts"`

	// LiteralGbps is the literal-only pipeline's throughput over the
	// same prefilter literals; RuleGbps is the full rule tier's.
	LiteralGbps float64 `json:"literal_gbps"`
	RuleGbps    float64 `json:"rule_gbps"`

	// Overhead is LiteralGbps / RuleGbps (1.0 = free verification).
	Overhead float64 `json:"verify_overhead"`
}

// ruleSweepRules is the synthetic rule set: every rule is one
// high-entropy content anchor plus a short regex tail, half of the
// injected sites verifying and half rejecting, so both verifier exits
// are on the measured path.
const ruleSweepRules = 16

func ruleSweepRuleText() string {
	var b strings.Builder
	for i := 0; i < ruleSweepRules; i++ {
		fmt.Fprintf(&b, "alert tcp any any -> any any (msg:\"sweep %d\"; "+
			"content:\"VPSWEEP%02dQZ\"; pcre:\"/[a-f]{4}/\"; sid:%d;)\n", i, i, 9000+i)
	}
	return b.String()
}

// injectAnchors overwrites random sites of data with the sweep
// literals plus a 4-byte tail until about hitPct percent of the bytes
// belong to injected anchors. Half the tails satisfy the rules' regex.
func injectAnchors(data []byte, hitPct float64, seed int64) {
	const siteLen = 11 + 4 // literal + tail
	n := int(hitPct / 100 * float64(len(data)) / siteLen)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(data) - siteLen)
		site := data[pos : pos+siteLen]
		copy(site, fmt.Sprintf("VPSWEEP%02dQZ", rng.Intn(ruleSweepRules)))
		tail := "zzzz" // rejects at the first DFA step
		if rng.Intn(2) == 0 {
			tail = "beef" // verifies
		}
		copy(site[11:], tail)
	}
}

// ruleSweepFeed drives one engine over the traffic as a single
// in-order flow and returns the wall-clock nanoseconds.
func ruleSweepFeed(eng *ids.Engine, data []byte, flow uint16) int64 {
	const mtu = 1460
	key := netsim.FlowKey{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: flow, DstPort: 9999}
	t0 := time.Now()
	seq := uint32(0)
	for off := 0; off < len(data); off += mtu {
		end := off + mtu
		if end > len(data) {
			end = len(data)
		}
		seg := netsim.Segment{Flow: key, Seq: seq, Payload: data[off:end]}
		if end == len(data) {
			seg.Flags = netsim.FlagFIN
		}
		eng.HandleSegment(seg)
		seq += uint32(end - off)
	}
	eng.Flush()
	return time.Since(t0).Nanoseconds()
}

// RuleSweep measures verify overhead versus the literal-only pipeline
// at each anchor-hit rate (percent of traffic bytes covered by
// injected anchor literals; nil = 0%, 1%, 5%, 10%).
func RuleSweep(cfg Config, opt vpatch.Options, hitRatesPct []float64) ([]RuleSweepRow, error) {
	cfg = cfg.withDefaults()
	if hitRatesPct == nil {
		hitRatesPct = []float64{0, 1, 5, 10}
	}
	rset, err := vpatch.ParseRuleSet(strings.NewReader(ruleSweepRuleText()), vpatch.RuleParseOptions{})
	if err != nil {
		return nil, err
	}

	var rows []RuleSweepRow
	for _, pct := range hitRatesPct {
		data := traffic.Random(cfg.TrafficBytes, cfg.Seed)
		injectAnchors(data, pct, cfg.Seed+int64(pct*1000))
		row := RuleSweepRow{HitRatePct: pct}

		// Both pipelines prefilter the same literals; only the rule
		// engine runs clause evaluation and the anchored verifier.
		sink := func(ids.Alert) {}
		lit, err := ids.NewEngine(rset.Lits, opt, sink)
		if err != nil {
			return nil, err
		}
		rul, err := ids.NewRuleEngine(rset, opt, sink)
		if err != nil {
			return nil, err
		}

		// Wall clock: un-instrumented runs, best of Repeats, one fresh
		// flow per repeat so per-flow rule state never carries over.
		for r := 0; r < cfg.Repeats; r++ {
			ns := ruleSweepFeed(lit, data, uint16(1000+r))
			if g := metrics.Throughput(uint64(len(data)), ns); g > row.LiteralGbps {
				row.LiteralGbps = g
			}
			ns = ruleSweepFeed(rul, data, uint16(2000+r))
			if g := metrics.Throughput(uint64(len(data)), ns); g > row.RuleGbps {
				row.RuleGbps = g
			}
		}
		// One instrumented pass for the event counters.
		var c vpatch.Counters
		rul.SetCounters(&c)
		ruleSweepFeed(rul, data, 3000)
		row.Anchors = c.Matches
		row.VerifierRuns = c.VerifierRuns
		row.RuleAlerts = c.RuleAlerts
		if row.RuleGbps > 0 {
			row.Overhead = row.LiteralGbps / row.RuleGbps
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintRuleSweep renders the sweep as an aligned text table.
func PrintRuleSweep(w io.Writer, title string, rows []RuleSweepRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%8s %10s %10s %8s %12s %10s %9s\n",
		"hit_pct", "anchors", "verif_runs", "alerts", "literal_gbps", "rule_gbps", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.1f %10d %10d %8d %12.3f %10.3f %9.2f\n",
			r.HitRatePct, r.Anchors, r.VerifierRuns, r.RuleAlerts,
			r.LiteralGbps, r.RuleGbps, r.Overhead)
	}
}

// WriteRuleSweepCSV exports the rule sweep.
func WriteRuleSweepCSV(dir, name string, rows []RuleSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			ftoa(r.HitRatePct), fmt.Sprint(r.Anchors), fmt.Sprint(r.VerifierRuns),
			fmt.Sprint(r.RuleAlerts), ftoa(r.LiteralGbps), ftoa(r.RuleGbps), ftoa(r.Overhead),
		})
	}
	return writeCSV(dir, name,
		[]string{"hit_rate_pct", "anchors", "verifier_runs", "rule_alerts",
			"literal_gbps", "rule_gbps", "verify_overhead"}, out)
}
