package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"vpatch/internal/core"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// The packet-size sweep: serial per-packet V-PATCH scans versus one
// lane-per-packet ScanBatch call over the same packets, across packet
// sizes. This is the experiment behind the batch scan path — the
// paper's Fig. 5b shows V-PATCH's filtering round degrading on small
// inputs (sub-register tails, per-call setup, empty lanes), and real
// NIDS traffic is overwhelmingly small packets. The sweep reports
// wall-clock throughput of both modes plus the two lane metrics:
// vector coverage of the serial scan (fraction of positions filtered in
// full W-lane blocks — collapses as packets shrink) and lane occupancy
// of the batched scan (stays ~1.0 at every size, by lane refill).

// BatchSweepRow is one packet size of the sweep.
type BatchSweepRow struct {
	// Label names the row ("64", "IMIX", ...); PacketBytes is the fixed
	// packet size, or 0 for the IMIX mix.
	Label       string `json:"label"`
	PacketBytes int    `json:"packet_bytes"`
	Packets     int    `json:"packets"`
	Batch       int    `json:"batch"` // buffers per ScanBatch call

	SerialGbps float64 `json:"serial_gbps"`
	BatchGbps  float64 `json:"batch_gbps"`
	Speedup    float64 `json:"speedup"` // batch over serial, wall-clock

	// SerialVectorCoverage is VectorIters*W/BytesScanned of the serial
	// per-packet scans: the fraction of positions the serial filtering
	// round handles in full vector blocks rather than scalar tail.
	SerialVectorCoverage float64 `json:"serial_vector_coverage"`
	// BatchLaneOccupancy is Counters.BatchLaneFrac of the batched scan.
	BatchLaneOccupancy float64 `json:"batch_lane_occupancy"`
}

// BatchSweep measures serial vs batched V-PATCH over packets of each
// given size (size 0 = the SimpleIMIX mix), batch buffers per ScanBatch
// call, at vector width `width` (0 = 8).
func BatchSweep(cfg Config, set *patterns.Set, sizes []int, batch, width int) []BatchSweepRow {
	cfg = cfg.withDefaults()
	if batch <= 0 {
		batch = 32
	}
	if width == 0 {
		width = 8
	}
	vp := core.NewVPatch(set, core.VOptions{Width: width})

	rows := make([]BatchSweepRow, 0, len(sizes))
	for _, size := range sizes {
		var pkts [][]byte
		row := BatchSweepRow{PacketBytes: size, Batch: batch}
		if size == 0 {
			row.Label = "IMIX"
			n := cfg.TrafficBytes / int(traffic.MeanSize(traffic.SimpleIMIX))
			pkts = traffic.Packets(traffic.ISCXDay2, traffic.SimpleIMIX, n, cfg.Seed, set)
		} else {
			row.Label = strconv.Itoa(size)
			n := cfg.TrafficBytes / size
			if n < batch {
				n = batch
			}
			pkts = traffic.FixedPackets(traffic.ISCXDay2, size, n, cfg.Seed, set)
		}
		row.Packets = len(pkts)
		total := uint64(0)
		for _, p := range pkts {
			total += uint64(len(p))
		}

		// Wall clock, best of Repeats, un-instrumented (both modes take
		// their fused paths, as production scans would).
		for r := 0; r < cfg.Repeats; r++ {
			t0 := time.Now()
			for _, p := range pkts {
				vp.Scan(p, nil, nil)
			}
			if g := metrics.Throughput(total, time.Since(t0).Nanoseconds()); g > row.SerialGbps {
				row.SerialGbps = g
			}
			t0 = time.Now()
			for lo := 0; lo < len(pkts); lo += batch {
				hi := lo + batch
				if hi > len(pkts) {
					hi = len(pkts)
				}
				vp.ScanBatch(pkts[lo:hi], nil, nil)
			}
			if g := metrics.Throughput(total, time.Since(t0).Nanoseconds()); g > row.BatchGbps {
				row.BatchGbps = g
			}
		}
		if row.SerialGbps > 0 {
			row.Speedup = row.BatchGbps / row.SerialGbps
		}

		// Lane metrics from instrumented runs (vector-engine paths).
		var cs metrics.Counters
		for _, p := range pkts {
			vp.Scan(p, &cs, nil)
		}
		if cs.BytesScanned > 0 {
			row.SerialVectorCoverage = float64(cs.VectorIters) * float64(width) / float64(cs.BytesScanned)
		}
		var cb metrics.Counters
		for lo := 0; lo < len(pkts); lo += batch {
			hi := lo + batch
			if hi > len(pkts) {
				hi = len(pkts)
			}
			vp.ScanBatch(pkts[lo:hi], &cb, nil)
		}
		row.BatchLaneOccupancy = cb.BatchLaneFrac(width)

		rows = append(rows, row)
	}
	return rows
}

// PrintBatchSweep renders the sweep as an aligned table.
func PrintBatchSweep(w io.Writer, title string, rows []BatchSweepRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %8s %9s %7s %12s %12s %9s %14s %14s\n",
		"pkt", "packets", "batch", "serial Gbps", "batch Gbps", "speedup", "serial vec cov", "batch lane occ")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8s %9d %7d %12.3f %12.3f %8.2fx %14.3f %14.3f\n",
			r.Label, r.Packets, r.Batch, r.SerialGbps, r.BatchGbps, r.Speedup,
			r.SerialVectorCoverage, r.BatchLaneOccupancy)
	}
}

// WriteBatchSweepCSV exports the sweep.
func WriteBatchSweepCSV(dir, name string, rows []BatchSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label, strconv.Itoa(r.Packets), strconv.Itoa(r.Batch),
			ftoa(r.SerialGbps), ftoa(r.BatchGbps), ftoa(r.Speedup),
			ftoa(r.SerialVectorCoverage), ftoa(r.BatchLaneOccupancy),
		})
	}
	return writeCSV(dir, name,
		[]string{"packet", "packets", "batch", "serial_gbps", "batch_gbps", "speedup",
			"serial_vector_coverage", "batch_lane_occupancy"}, out)
}
