package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every figure can be written as a plotting-ready file, so
// the paper's charts can be regenerated with any plotting tool.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteThroughputCSV exports Fig 4 / Fig 7 rows.
func WriteThroughputCSV(dir, name string, rows []FigThroughputRow) error {
	out := make([][]string, 0, len(rows)*5)
	for _, row := range rows {
		for i, cell := range row.Cells {
			out = append(out, []string{
				row.Dataset, cell.Kind.String(),
				ftoa(cell.WallGbps), ftoa(cell.ModelGbps), ftoa(row.SpeedupVsDFC(i)),
			})
		}
	}
	return writeCSV(dir, name,
		[]string{"dataset", "algorithm", "wall_gbps", "model_gbps", "speedup_vs_dfc"}, out)
}

// WriteFig5aCSV exports the pattern-count sweep.
func WriteFig5aCSV(dir, name string, pts []Fig5aPoint) error {
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			strconv.Itoa(p.Patterns),
			ftoa(p.SPatch.ModelGbps), ftoa(p.VPatch.ModelGbps),
			ftoa(p.ModelSpeedup), ftoa(p.WallSpeedup),
		})
	}
	return writeCSV(dir, name,
		[]string{"patterns", "spatch_gbps", "vpatch_gbps", "model_speedup", "wall_speedup"}, out)
}

// WriteFig5bCSV exports the phase-balance/occupancy sweep.
func WriteFig5bCSV(dir, name string, pts []Fig5bPoint) error {
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			strconv.Itoa(p.Patterns), ftoa(p.FilterTimeFrac), ftoa(p.UsefulLaneFrac),
		})
	}
	return writeCSV(dir, name,
		[]string{"patterns", "filter_time_frac", "useful_lane_frac"}, out)
}

// WriteFig5cCSV exports the match-density sweep.
func WriteFig5cCSV(dir, name string, pts []Fig5cPoint) error {
	out := make([][]string, 0, len(pts))
	for _, p := range pts {
		out = append(out, []string{
			ftoa(p.MatchFrac),
			ftoa(p.SPatch.ModelGbps), ftoa(p.VPatch.ModelGbps),
			ftoa(p.ModelSpeedup), ftoa(p.WallSpeedup),
		})
	}
	return writeCSV(dir, name,
		[]string{"match_frac", "spatch_gbps", "vpatch_gbps", "model_speedup", "wall_speedup"}, out)
}

// WriteFig6CSV exports the filtering-only cells.
func WriteFig6CSV(dir, name string, cells []Fig6Cell) error {
	out := make([][]string, 0, len(cells))
	for _, c := range cells {
		out = append(out, []string{c.Dataset, c.Variant, ftoa(c.WallGbps), ftoa(c.ModelGbps)})
	}
	return writeCSV(dir, name,
		[]string{"dataset", "variant", "wall_gbps", "model_gbps"}, out)
}
