package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/arena"
	"vpatch/internal/metrics"
	"vpatch/internal/netsim"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// The ingest sweep: end-to-end dispatcher throughput of the recycled
// capture path, per-segment channel sends versus batched slab handoff,
// across segment sizes. Unlike the scan-level sweeps this measures the
// full pipeline — arena rent, ownership transfer, shard handoff,
// reassembly, scan — the way a capture loop drives it, so the number
// it reports is segments per second at the dispatcher boundary. At
// 64-byte segments the per-segment path is dominated by channel
// operations; the batched path pays them once per slab.

// IngestSweepRow is one segment size of the sweep.
type IngestSweepRow struct {
	// Label names the row ("64", "IMIX", ...); PacketBytes is the fixed
	// payload size, or 0 for the IMIX mix.
	Label       string `json:"label"`
	PacketBytes int    `json:"packet_bytes"`
	Segments    int    `json:"segments"`
	Shards      int    `json:"shards"`
	Batch       int    `json:"batch"` // segments per HandleBatch call

	PerSegmentSegsPerSec float64 `json:"per_segment_segs_per_sec"`
	BatchedSegsPerSec    float64 `json:"batched_segs_per_sec"`
	PerSegmentGbps       float64 `json:"per_segment_gbps"`
	BatchedGbps          float64 `json:"batched_gbps"`
	// BatchedSpeedup is batched over per-segment, wall-clock (the ratio
	// the bench-regression gate pins).
	BatchedSpeedup float64 `json:"batched_speedup_vs_per_segment"`
}

// ingestFlows is how many concurrent flows the simulated capture loop
// round-robins across — enough that shard fan-out and flow-table
// pressure are realistic, small enough that every flow stays resident.
const ingestFlows = 256

// IngestSweep measures per-segment vs batched dispatch over segments of
// each given payload size (size 0 = the SimpleIMIX mix) through an
// n-shard pipeline (shards 0 = one per core). Each timed run simulates
// a capture loop: rent an arena chunk, fill it with the next payload,
// hand the owned segment to the dispatcher; Close (worker drain) is
// inside the timed region so queue depth cannot flatter either mode.
// Best of cfg.Repeats, over a shared arena so steady-state runs recycle
// rather than allocate.
func IngestSweep(cfg Config, set *patterns.Set, sizes []int, shards, batch int) []IngestSweepRow {
	cfg = cfg.withDefaults()
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if batch <= 0 {
		batch = ids.DefaultDispatchBatch
	}
	drop := func(ids.Alert) {}
	eng, err := ids.NewEngine(set, vpatch.Options{}, drop)
	if err != nil {
		panic(err) // generated sets always compile
	}
	limits := netsim.Limits{MaxFlows: 4 * ingestFlows}

	rows := make([]IngestSweepRow, 0, len(sizes))
	for _, size := range sizes {
		row := IngestSweepRow{PacketBytes: size, Shards: shards, Batch: batch}
		var pkts [][]byte
		if size == 0 {
			row.Label = "IMIX"
			n := cfg.TrafficBytes / int(traffic.MeanSize(traffic.SimpleIMIX))
			pkts = traffic.Packets(traffic.ISCXDay2, traffic.SimpleIMIX, n, cfg.Seed, set)
		} else {
			row.Label = strconv.Itoa(size)
			n := cfg.TrafficBytes / size
			if n < batch {
				n = batch
			}
			pkts = traffic.FixedPackets(traffic.ISCXDay2, size, n, cfg.Seed, set)
		}
		row.Segments = len(pkts)
		total := uint64(0)
		for _, p := range pkts {
			total += uint64(len(p))
		}

		// One arena per row, shared across repeats and modes: the first
		// run grows the chunk pool to the in-flight plateau, later runs
		// recycle — the steady state the row reports.
		a := arena.New(arena.Config{})
		run := func(batched bool) time.Duration {
			d := eng.NewDispatcher(shards, limits, drop)
			d.SetArena(a)
			seqs := make([]uint32, ingestFlows)
			var slab []netsim.Segment
			if batched {
				slab = make([]netsim.Segment, 0, batch)
			}
			t0 := time.Now()
			for i, p := range pkts {
				f := i % ingestFlows
				b := a.Rent(len(p))
				data := b.Data()[:len(p)]
				copy(data, p)
				var seg netsim.Segment
				seg.Flow = netsim.FlowKey{SrcIP: 0x0a000001 + uint32(f), DstIP: 0xc0a80001, SrcPort: 40000, DstPort: 80}
				seg.Seq = seqs[f]
				seg.Payload = data
				seg.SetOwned(b)
				seqs[f] += uint32(len(p))
				if !batched {
					d.Handle(seg)
					continue
				}
				slab = append(slab, seg)
				if len(slab) == cap(slab) {
					d.HandleBatch(slab)
					slab = slab[:0]
				}
			}
			if len(slab) > 0 {
				d.HandleBatch(slab)
			}
			d.Close()
			return time.Since(t0)
		}

		for r := 0; r < cfg.Repeats; r++ {
			if el := run(false); el > 0 {
				if sps := float64(len(pkts)) / el.Seconds(); sps > row.PerSegmentSegsPerSec {
					row.PerSegmentSegsPerSec = sps
					row.PerSegmentGbps = metrics.Throughput(total, el.Nanoseconds())
				}
			}
			if el := run(true); el > 0 {
				if sps := float64(len(pkts)) / el.Seconds(); sps > row.BatchedSegsPerSec {
					row.BatchedSegsPerSec = sps
					row.BatchedGbps = metrics.Throughput(total, el.Nanoseconds())
				}
			}
		}
		if row.PerSegmentSegsPerSec > 0 {
			row.BatchedSpeedup = row.BatchedSegsPerSec / row.PerSegmentSegsPerSec
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintIngestSweep renders the sweep as an aligned table.
func PrintIngestSweep(w io.Writer, title string, rows []IngestSweepRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %8s %9s %7s %6s %14s %14s %10s %10s %9s\n",
		"seg", "segments", "shards", "batch", "per-seg seg/s", "batched seg/s", "per Gbps", "bat Gbps", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8s %9d %7d %6d %14.0f %14.0f %10.3f %10.3f %8.2fx\n",
			r.Label, r.Segments, r.Shards, r.Batch,
			r.PerSegmentSegsPerSec, r.BatchedSegsPerSec,
			r.PerSegmentGbps, r.BatchedGbps, r.BatchedSpeedup)
	}
}

// WriteIngestSweepCSV exports the sweep.
func WriteIngestSweepCSV(dir, name string, rows []IngestSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label, strconv.Itoa(r.Segments), strconv.Itoa(r.Shards), strconv.Itoa(r.Batch),
			ftoa(r.PerSegmentSegsPerSec), ftoa(r.BatchedSegsPerSec),
			ftoa(r.PerSegmentGbps), ftoa(r.BatchedGbps), ftoa(r.BatchedSpeedup),
		})
	}
	return writeCSV(dir, name,
		[]string{"segment", "segments", "shards", "batch",
			"per_segment_segs_per_sec", "batched_segs_per_sec",
			"per_segment_gbps", "batched_gbps", "batched_speedup"}, out)
}
