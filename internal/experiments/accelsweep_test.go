package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The sweep's structural claims are deterministic (counter-based); the
// wall-clock columns are only sanity-checked for presence, never for
// magnitude, so the test is immune to machine noise.
func TestAccelSweepShape(t *testing.T) {
	set := testSet(t)
	rows := AccelSweep(testCfg, set, []float64{0, 1.0}, []int{1514, 64 << 10}, 8)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	bySize := map[int]map[float64]AccelSweepRow{}
	for _, r := range rows {
		if r.PlainGbps <= 0 || r.AccelGbps <= 0 {
			t.Fatalf("empty throughput cell: %+v", r)
		}
		if bySize[r.BufBytes] == nil {
			bySize[r.BufBytes] = map[float64]AccelSweepRow{}
		}
		bySize[r.BufBytes][r.MatchFrac] = r
	}
	for size, cells := range bySize {
		clean, dense := cells[0], cells[1.0]
		// Clean random traffic against the 2K web set: the union bitmap
		// rejects ~94% of windows, so the skip ratio must be high and
		// skipping must clear real runs.
		if clean.SkipFrac < 0.5 {
			t.Errorf("size %d: clean skip fraction %.3f, want > 0.5", size, clean.SkipFrac)
		}
		if clean.AccelRuns == 0 {
			t.Errorf("size %d: clean traffic produced no skip runs", size)
		}
		// Density collapses the skip ratio — the Fig.-5c-style story.
		if dense.SkipFrac >= clean.SkipFrac {
			t.Errorf("size %d: skip fraction did not fall with density (%.3f -> %.3f)",
				size, clean.SkipFrac, dense.SkipFrac)
		}
	}
}

func TestAccelSweepPrintAndCSV(t *testing.T) {
	set := testSet(t)
	cfg := Config{TrafficBytes: 64 << 10, Seed: 1, Repeats: 1}
	rows := AccelSweep(cfg, set, []float64{0}, []int{64 << 10}, 8)
	var buf bytes.Buffer
	PrintAccelSweep(&buf, "accel sweep", rows)
	if !strings.Contains(buf.String(), "skip_frac") {
		t.Fatalf("print output missing columns:\n%s", buf.String())
	}
	dir := t.TempDir()
	if err := WriteAccelSweepCSV(dir, "accel.csv", rows); err != nil {
		t.Fatal(err)
	}
}
