package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vpatch/internal/costmodel"
	"vpatch/internal/patterns"
)

var testCfg = Config{TrafficBytes: 512 << 10, Seed: 1, Repeats: 1}

func testSet(t *testing.T) *patterns.Set {
	t.Helper()
	return patterns.GenerateS1(1).WebSubset()
}

func TestDatasetsOrderAndSize(t *testing.T) {
	ds := Datasets(testCfg, nil)
	names := []string{"ISCX day2", "ISCX day6", "DARPA 2000", "random"}
	if len(ds) != 4 {
		t.Fatalf("%d datasets", len(ds))
	}
	for i, d := range ds {
		if d.Name != names[i] {
			t.Fatalf("dataset %d = %q, want %q (paper order)", i, d.Name, names[i])
		}
		if len(d.Data) != testCfg.TrafficBytes {
			t.Fatalf("%s: %d bytes", d.Name, len(d.Data))
		}
		if d.Real == (d.Name == "random") {
			t.Fatalf("%s: Real flag wrong", d.Name)
		}
	}
}

func TestBuildAlgosOrder(t *testing.T) {
	algos := BuildAlgos(patterns.FromStrings("abcd", "xy"), 8)
	want := []costmodel.Kind{
		costmodel.KindAhoCorasick, costmodel.KindDFC, costmodel.KindVectorDFC,
		costmodel.KindSPatch, costmodel.KindVPatch,
	}
	if len(algos) != len(want) {
		t.Fatalf("%d algos", len(algos))
	}
	for i, a := range algos {
		if a.Kind != want[i] {
			t.Fatalf("algo %d = %v, want %v (paper order)", i, a.Kind, want[i])
		}
	}
	if algos[0].DFABytes == 0 {
		t.Fatal("AC missing automaton size")
	}
	if algos[4].Width != 8 {
		t.Fatal("V-PATCH width not recorded")
	}
}

// The headline result (Fig 4a): on realistic traffic under the Haswell
// model, V-PATCH beats S-PATCH beats DFC, and V-PATCH's margin over DFC
// is at least ~1.5x (paper: up to 1.86x).
func TestFig4ShapeHaswell(t *testing.T) {
	rows := FigThroughput(testCfg, testSet(t), costmodel.Haswell, 8)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		g := map[costmodel.Kind]float64{}
		for _, cell := range row.Cells {
			if cell.ModelGbps <= 0 {
				t.Fatalf("%s/%v: non-positive modeled throughput", row.Dataset, cell.Kind)
			}
			if cell.Counters.Matches == 0 {
				t.Fatalf("%s/%v: no matches counted", row.Dataset, cell.Kind)
			}
			g[cell.Kind] = cell.ModelGbps
		}
		// All algorithms must agree on the match count (correctness).
		first := row.Cells[0].Counters.Matches
		for _, cell := range row.Cells[1:] {
			if cell.Counters.Matches != first {
				t.Fatalf("%s: %v found %d matches, %v found %d", row.Dataset,
					row.Cells[0].Kind, first, cell.Kind, cell.Counters.Matches)
			}
		}
		if row.Dataset == "random" {
			// Random data: DFC shines, S-PATCH falls below it (paper).
			if g[costmodel.KindSPatch] >= g[costmodel.KindDFC] {
				t.Errorf("random: S-PATCH %.2f >= DFC %.2f (paper has it below)",
					g[costmodel.KindSPatch], g[costmodel.KindDFC])
			}
			continue
		}
		if g[costmodel.KindVPatch] <= g[costmodel.KindSPatch] {
			t.Errorf("%s: V-PATCH %.2f <= S-PATCH %.2f", row.Dataset,
				g[costmodel.KindVPatch], g[costmodel.KindSPatch])
		}
		if g[costmodel.KindSPatch] <= g[costmodel.KindDFC] {
			t.Errorf("%s: S-PATCH %.2f <= DFC %.2f", row.Dataset,
				g[costmodel.KindSPatch], g[costmodel.KindDFC])
		}
		if ratio := g[costmodel.KindVPatch] / g[costmodel.KindDFC]; ratio < 1.5 {
			t.Errorf("%s: V-PATCH only %.2fx DFC (paper: ~1.8x)", row.Dataset, ratio)
		}
	}
}

// Fig 7 shape: on the Phi model (no L3, in-order, W=16) AC catches up
// with DFC on realistic traces, and V-PATCH's speedup exceeds Haswell's
// (paper: 3.6x vs 1.8x).
func TestFig7ShapeXeonPhi(t *testing.T) {
	set := testSet(t)
	phi := FigThroughput(testCfg, set, costmodel.XeonPhi, 16)
	hw := FigThroughput(testCfg, set, costmodel.Haswell, 8)
	for i, row := range phi {
		g := map[costmodel.Kind]float64{}
		for _, cell := range row.Cells {
			g[cell.Kind] = cell.ModelGbps
		}
		if !strings.Contains(row.Dataset, "random") {
			if g[costmodel.KindAhoCorasick] < 0.9*g[costmodel.KindDFC] {
				t.Errorf("Phi %s: AC %.3f far below DFC %.3f (paper: AC >= DFC on Phi)",
					row.Dataset, g[costmodel.KindAhoCorasick], g[costmodel.KindDFC])
			}
			phiSpeedup := g[costmodel.KindVPatch] / g[costmodel.KindDFC]
			var hwG map[costmodel.Kind]float64 = map[costmodel.Kind]float64{}
			for _, cell := range hw[i].Cells {
				hwG[cell.Kind] = cell.ModelGbps
			}
			hwSpeedup := hwG[costmodel.KindVPatch] / hwG[costmodel.KindDFC]
			if phiSpeedup <= hwSpeedup {
				t.Errorf("%s: Phi V-PATCH speedup %.2f <= Haswell %.2f (paper: 3.6x vs 1.8x)",
					row.Dataset, phiSpeedup, hwSpeedup)
			}
			if phiSpeedup < 2.0 {
				t.Errorf("%s: Phi V-PATCH speedup only %.2f", row.Dataset, phiSpeedup)
			}
		}
		// Absolute Phi throughput must be far below Haswell (1.1 GHz
		// in-order core).
		if g[costmodel.KindDFC] > 1.0 {
			t.Errorf("Phi DFC %.2f Gbps implausibly high", g[costmodel.KindDFC])
		}
	}
}

func TestSpeedupVsDFCIsOneForDFC(t *testing.T) {
	rows := FigThroughput(testCfg, testSet(t), costmodel.Haswell, 8)
	for _, row := range rows {
		for i, cell := range row.Cells {
			if cell.Kind == costmodel.KindDFC {
				if s := row.SpeedupVsDFC(i); s < 0.999 || s > 1.001 {
					t.Fatalf("DFC speedup vs itself = %v", s)
				}
			}
		}
	}
}

func TestFig5aSweep(t *testing.T) {
	full := patterns.GenerateS2(1)
	pts := Fig5a(testCfg, full, []int{1000, 5000}, costmodel.Haswell, 8)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.ModelSpeedup <= 1.0 {
			t.Errorf("%d patterns: V-PATCH model speedup %.2f <= 1", p.Patterns, p.ModelSpeedup)
		}
	}
	// Throughput decreases with more patterns (paper Fig 5a).
	if pts[1].SPatch.ModelGbps >= pts[0].SPatch.ModelGbps {
		t.Errorf("S-PATCH throughput did not drop with 5x patterns: %.2f -> %.2f",
			pts[0].SPatch.ModelGbps, pts[1].SPatch.ModelGbps)
	}
}

func TestFig5bSweep(t *testing.T) {
	full := patterns.GenerateS2(1)
	pts := Fig5b(testCfg, full, []int{1000, 10000}, 8)
	for _, p := range pts {
		if p.FilterTimeFrac <= 0 || p.FilterTimeFrac > 1 {
			t.Fatalf("%d patterns: filter time fraction %v", p.Patterns, p.FilterTimeFrac)
		}
		if p.UsefulLaneFrac <= 0 || p.UsefulLaneFrac > 1 {
			t.Fatalf("%d patterns: useful lane fraction %v", p.Patterns, p.UsefulLaneFrac)
		}
	}
	// Paper Fig 5b: with more patterns, verification grows (filtering
	// fraction falls) and vector occupancy rises.
	if pts[1].UsefulLaneFrac <= pts[0].UsefulLaneFrac {
		t.Errorf("useful lanes did not rise with patterns: %.3f -> %.3f",
			pts[0].UsefulLaneFrac, pts[1].UsefulLaneFrac)
	}
	if pts[1].FilterTimeFrac >= pts[0].FilterTimeFrac {
		t.Errorf("filtering fraction did not fall with patterns: %.3f -> %.3f",
			pts[0].FilterTimeFrac, pts[1].FilterTimeFrac)
	}
}

func TestFig5cSweep(t *testing.T) {
	set := patterns.GenerateS2(1).Subset(2000, 1)
	pts := Fig5c(testCfg, set, []float64{0, 0.6}, costmodel.Haswell, 8)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.SPatch.ModelGbps <= 0 || p.VPatch.ModelGbps <= 0 {
			t.Fatal("non-positive throughput")
		}
	}
	// More matches -> lower absolute throughput (verification load).
	if pts[1].SPatch.ModelGbps >= pts[0].SPatch.ModelGbps {
		t.Errorf("S-PATCH did not slow down with matches: %.2f -> %.2f",
			pts[0].SPatch.ModelGbps, pts[1].SPatch.ModelGbps)
	}
}

func TestFig6VariantsAndShape(t *testing.T) {
	cells := Fig6(testCfg, testSet(t), costmodel.Haswell, 8)
	// 3 realistic datasets x 3 variants.
	if len(cells) != 9 {
		t.Fatalf("%d cells", len(cells))
	}
	byKey := map[string]Fig6Cell{}
	for _, c := range cells {
		byKey[c.Dataset+"/"+c.Variant] = c
	}
	for _, ds := range []string{"ISCX day2", "ISCX day6", "DARPA 2000"} {
		scalar := byKey[ds+"/S-PATCH-filtering"].ModelGbps
		withStores := byKey[ds+"/V-PATCH-filtering+stores"].ModelGbps
		noStores := byKey[ds+"/V-PATCH-filtering"].ModelGbps
		if scalar <= 0 || withStores <= 0 || noStores <= 0 {
			t.Fatalf("%s: non-positive cell", ds)
		}
		if withStores <= scalar {
			t.Errorf("%s: vector filtering %.2f <= scalar %.2f", ds, withStores, scalar)
		}
		if noStores < withStores {
			t.Errorf("%s: removing stores slowed filtering: %.2f < %.2f", ds, noStores, withStores)
		}
	}
}

func TestPrinters(t *testing.T) {
	set := testSet(t)
	var buf bytes.Buffer
	rows := FigThroughput(testCfg, set, costmodel.Haswell, 8)
	PrintThroughputRows(&buf, "Fig test", rows)
	out := buf.String()
	for _, want := range []string{"Fig test", "ISCX day2", "V-PATCH", "speedup_vs_dfc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	PrintFig5a(&buf, Fig5a(testCfg, set, []int{500}, costmodel.Haswell, 8))
	if !strings.Contains(buf.String(), "patterns") {
		t.Fatal("Fig5a printer broken")
	}
	buf.Reset()
	PrintFig5b(&buf, Fig5b(testCfg, set, []int{500}, 8))
	if !strings.Contains(buf.String(), "useful_lanes") {
		t.Fatal("Fig5b printer broken")
	}
	buf.Reset()
	PrintFig5c(&buf, Fig5c(testCfg, set.Subset(300, 1), []float64{0.1}, costmodel.Haswell, 8))
	if !strings.Contains(buf.String(), "match_frac") {
		t.Fatal("Fig5c printer broken")
	}
	buf.Reset()
	PrintFig6(&buf, "Fig 6 test", Fig6(testCfg, set.Subset(300, 1), costmodel.Haswell, 8))
	if !strings.Contains(buf.String(), "vs_scalar") {
		t.Fatal("Fig6 printer broken")
	}
}

func TestCSVExports(t *testing.T) {
	dir := t.TempDir()
	set := testSet(t).Subset(400, 1)
	rows := FigThroughput(testCfg, set, costmodel.Haswell, 8)
	if err := WriteThroughputCSV(dir, "fig4a.csv", rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig5aCSV(dir, "fig5a.csv", Fig5a(testCfg, set, []int{200}, costmodel.Haswell, 8)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig5bCSV(dir, "fig5b.csv", Fig5b(testCfg, set, []int{200}, 8)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig5cCSV(dir, "fig5c.csv", Fig5c(testCfg, set, []float64{0.1}, costmodel.Haswell, 8)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig6CSV(dir, "fig6.csv", Fig6(testCfg, set, costmodel.Haswell, 8)); err != nil {
		t.Fatal(err)
	}
	for name, wantRows := range map[string]int{
		"fig4a.csv": 4*5 + 1, "fig5a.csv": 2, "fig5b.csv": 2, "fig5c.csv": 2, "fig6.csv": 10,
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != wantRows {
			t.Errorf("%s has %d lines, want %d", name, lines, wantRows)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.TrafficBytes != 4<<20 || c.Repeats != 3 || c.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
