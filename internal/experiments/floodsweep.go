package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"vpatch"
	"vpatch/ids"
	"vpatch/internal/metrics"
	"vpatch/internal/resil"
	"vpatch/internal/traffic"
)

// The match-flood adversarial sweep: the experiment behind the verifier
// budget. A match-flood attacker inverts the prefilter economics by
// packing traffic with anchor literals whose tails always fail
// verification — every site buys a verifier run (and its lazy-DFA state
// construction) that can never alert. The sweep scans the same traffic
// volume with verifier budgets disarmed and armed as the injected
// anchor-site density rises from clean traffic to attack levels,
// reporting both throughputs, the budgets-on/off ratio, and the armed
// run's degradation counters. Two numbers matter: at 0% the ratio is
// the budget bookkeeping's clean-traffic overhead (the CI bench gate
// pins it ≤1.05x), and at attack densities the armed pipeline's
// throughput floor is what a tenant keeps while under flood.

// FloodSweepRow is one anchor-site-density cell.
type FloodSweepRow struct {
	// FloodPct is the injected flood sites' share of traffic bytes, in
	// percent (0 = clean traffic, the deployment-dominant case).
	FloodPct float64 `json:"flood_pct"`

	// Anchors counts prefilter literal hits and VerifierRuns the
	// verifications they bought, both from the disarmed pipeline — the
	// work a budget-less deployment performs for the attacker.
	Anchors      uint64 `json:"anchors"`
	VerifierRuns uint64 `json:"verifier_runs"`

	// BaseGbps is throughput with budgets disarmed; BudgetGbps with the
	// per-flow verifier budget armed.
	BaseGbps   float64 `json:"base_gbps"`
	BudgetGbps float64 `json:"budget_gbps"`

	// BudgetOverhead is BaseGbps / BudgetGbps: >1 means arming the
	// budget cost throughput, <1 means the budget's literal-only
	// degradation outran the disarmed pipeline's flooded verifier. The
	// bench gate pins the FloodPct=0 cell.
	BudgetOverhead float64 `json:"budget_overhead"`

	// DegradedFlows and BudgetExhausted are the armed run's degradation
	// counters (flows demoted to literal-only; charges denied).
	DegradedFlows   uint64 `json:"degraded_flows"`
	BudgetExhausted uint64 `json:"budget_exhausted"`
}

// injectFloodSites overwrites random sites of data with sweep anchors
// followed by always-rejecting tails until about floodPct percent of
// the bytes belong to injected sites — pure match-flood, unlike
// injectAnchors' half-verifying mix: every site prices a verifier run,
// none ever alerts.
func injectFloodSites(data []byte, floodPct float64, seed int64) {
	const siteLen = 11 + 4 // literal + rejecting tail
	n := int(floodPct / 100 * float64(len(data)) / siteLen)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(data) - siteLen)
		site := data[pos : pos+siteLen]
		copy(site, fmt.Sprintf("VPSWEEP%02dQZ", rng.Intn(ruleSweepRules)))
		copy(site[11:], "zzzz") // rejects at the first DFA step
	}
}

// floodSweepBudget sizes the per-flow budget from the price so the
// sweep is deterministic across platforms: enough cycles for ~2000
// verifier runs per flow — generous for any clean flow the sweep's
// traffic produces, exhausted within the first few percent of an
// attack flow's flood sites.
func floodSweepBudget() resil.VerifierBudget {
	price := resil.DefaultPrice()
	return resil.VerifierBudget{
		PerFlow: price.Cost(2000, 2000, 4000),
		Price:   price,
	}
}

// FloodSweep measures budgets-on versus budgets-off throughput at each
// flood-site density (percent of traffic bytes covered by injected
// always-rejecting anchor sites; nil = 0%, 5%, 20%, 40%).
func FloodSweep(cfg Config, opt vpatch.Options, floodPcts []float64) ([]FloodSweepRow, error) {
	cfg = cfg.withDefaults()
	if floodPcts == nil {
		floodPcts = []float64{0, 5, 20, 40}
	}
	rset, err := vpatch.ParseRuleSet(strings.NewReader(ruleSweepRuleText()), vpatch.RuleParseOptions{})
	if err != nil {
		return nil, err
	}
	budget := floodSweepBudget()

	var rows []FloodSweepRow
	for _, pct := range floodPcts {
		data := traffic.Random(cfg.TrafficBytes, cfg.Seed)
		injectFloodSites(data, pct, cfg.Seed+int64(pct*1000))
		row := FloodSweepRow{FloodPct: pct}

		sink := func(ids.Alert) {}
		base, err := ids.NewRuleEngine(rset, opt, sink)
		if err != nil {
			return nil, err
		}
		armed, err := ids.NewRuleEngine(rset, opt, sink)
		if err != nil {
			return nil, err
		}
		armed.SetVerifierBudget(budget)

		// Wall clock: un-instrumented runs, best of Repeats, one fresh
		// flow per repeat so rule state and flow budgets never carry
		// over between repeats. The clean cell gets extra repeats: at
		// zero hits both pipelines do identical work, so its ratio is
		// pure timer noise — and it is the cell the bench gate pins
		// against an absolute ceiling.
		reps := cfg.Repeats
		if pct == 0 && reps < 9 {
			reps = 9
		}
		for r := 0; r < reps; r++ {
			ns := ruleSweepFeed(base, data, uint16(1000+r))
			if g := metrics.Throughput(uint64(len(data)), ns); g > row.BaseGbps {
				row.BaseGbps = g
			}
			ns = ruleSweepFeed(armed, data, uint16(2000+r))
			if g := metrics.Throughput(uint64(len(data)), ns); g > row.BudgetGbps {
				row.BudgetGbps = g
			}
		}
		// Instrumented passes for the event counters: the disarmed
		// pipeline's flood bill, the armed pipeline's degradations.
		var c vpatch.Counters
		base.SetCounters(&c)
		ruleSweepFeed(base, data, 3000)
		row.Anchors = c.Matches
		row.VerifierRuns = c.VerifierRuns
		var ca vpatch.Counters
		armed.SetCounters(&ca)
		ruleSweepFeed(armed, data, 3001)
		row.DegradedFlows = ca.DegradedFlows
		row.BudgetExhausted = ca.VerifierBudgetExhausted
		if row.BudgetGbps > 0 {
			row.BudgetOverhead = row.BaseGbps / row.BudgetGbps
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFloodSweep renders the sweep as an aligned text table.
func PrintFloodSweep(w io.Writer, title string, rows []FloodSweepRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%9s %10s %10s %10s %12s %9s %9s %10s\n",
		"flood_pct", "anchors", "verif_runs", "base_gbps", "budget_gbps", "overhead", "degraded", "exhausted")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.1f %10d %10d %10.3f %12.3f %9.2f %9d %10d\n",
			r.FloodPct, r.Anchors, r.VerifierRuns, r.BaseGbps, r.BudgetGbps,
			r.BudgetOverhead, r.DegradedFlows, r.BudgetExhausted)
	}
}

// WriteFloodSweepCSV exports the flood sweep.
func WriteFloodSweepCSV(dir, name string, rows []FloodSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			ftoa(r.FloodPct), fmt.Sprint(r.Anchors), fmt.Sprint(r.VerifierRuns),
			ftoa(r.BaseGbps), ftoa(r.BudgetGbps), ftoa(r.BudgetOverhead),
			fmt.Sprint(r.DegradedFlows), fmt.Sprint(r.BudgetExhausted),
		})
	}
	return writeCSV(dir, name,
		[]string{"flood_pct", "anchors", "verifier_runs", "base_gbps",
			"budget_gbps", "budget_overhead", "degraded_flows", "budget_exhausted"}, out)
}
