// Package experiments regenerates every figure of the paper's evaluation
// (§V). Each FigNN function builds the figure's rule sets and traffic,
// runs the matchers, and returns the same rows/series the paper plots —
// both wall-clock throughput of this Go implementation and cost-model
// throughput on the paper's Haswell and Xeon-Phi testbeds (the modeled
// numbers are the ones comparable to the paper's bars; see DESIGN.md).
package experiments

import (
	"fmt"
	"io"
	"time"

	"vpatch/internal/ahocorasick"
	"vpatch/internal/core"
	"vpatch/internal/costmodel"
	"vpatch/internal/dfc"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// Config controls workload sizes so the full suite can run at paper scale
// or be smoke-tested quickly.
type Config struct {
	// TrafficBytes per dataset (default 4 MB; the paper uses 0.3-1 GB —
	// throughput is size-independent beyond cache-warming effects).
	TrafficBytes int
	// Seed drives all generators.
	Seed int64
	// Repeats for wall-clock timing; the best (max throughput) run is
	// reported, standard practice for eliminating scheduler noise.
	Repeats int
}

func (c Config) withDefaults() Config {
	if c.TrafficBytes == 0 {
		c.TrafficBytes = 4 << 20
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Datasets returns the four evaluation inputs in the paper's order:
// ISCX day2, ISCX day6, DARPA 2000, random. set seeds attack injection.
func Datasets(cfg Config, set *patterns.Set) []Dataset {
	cfg = cfg.withDefaults()
	var out []Dataset
	for _, p := range traffic.Profiles {
		out = append(out, Dataset{
			Name: p.Name,
			Data: traffic.Synthesize(p, cfg.TrafficBytes, cfg.Seed, set),
			Real: true,
		})
	}
	out = append(out, Dataset{
		Name: "random",
		Data: traffic.Random(cfg.TrafficBytes, cfg.Seed),
	})
	return out
}

// Dataset is one evaluation input.
type Dataset struct {
	Name string
	Data []byte
	Real bool // realistic trace (vs synthetic random)
}

// Algo couples a matcher with the metadata the cost model needs.
type Algo struct {
	Kind costmodel.Kind
	Scan func(input []byte, c *metrics.Counters)

	FilterBytes int
	HTBytes     int
	DFABytes    int
	Width       int // vector lanes of the measured implementation
}

// BuildAlgos compiles the paper's five algorithms for a pattern set.
// width selects the vector lane count for the vectorized pair (0 = 8).
//
// The figure reproductions deliberately build the matchers *without*
// the skip-loop acceleration layer: the paper's algorithms pay a probe
// per position, and both the wall-clock and the modeled bars are meant
// to reproduce that design. The acceleration layer has its own
// experiment (AccelSweep) and benchmarks (BenchmarkAccel*).
func BuildAlgos(set *patterns.Set, width int) []Algo {
	if width == 0 {
		width = 8
	}
	ac := ahocorasick.Build(set, ahocorasick.Options{})
	d := dfc.Build(set).WithoutAccel()
	vd := dfc.BuildVector(set, width)
	sp := core.NewSPatch(set, core.Options{NoAccel: true})
	vp := core.NewVPatch(set, core.VOptions{Width: width, NoAccel: true})
	htBytes := d.Verifier().MemoryFootprint()
	return []Algo{
		{
			Kind:     costmodel.KindAhoCorasick,
			Scan:     func(in []byte, c *metrics.Counters) { ac.Scan(in, c, nil) },
			DFABytes: ac.MemoryFootprint(),
		},
		{
			Kind:        costmodel.KindDFC,
			Scan:        func(in []byte, c *metrics.Counters) { d.Scan(in, c, nil) },
			FilterBytes: d.FilterSizeBytes(),
			HTBytes:     htBytes,
		},
		{
			Kind:        costmodel.KindVectorDFC,
			Scan:        func(in []byte, c *metrics.Counters) { vd.Scan(in, c, nil) },
			FilterBytes: d.FilterSizeBytes(),
			HTBytes:     htBytes,
			Width:       width,
		},
		{
			Kind:        costmodel.KindSPatch,
			Scan:        func(in []byte, c *metrics.Counters) { sp.Scan(in, c, nil) },
			FilterBytes: sp.FilterSizeBytes(),
			HTBytes:     htBytes,
		},
		{
			Kind:        costmodel.KindVPatch,
			Scan:        func(in []byte, c *metrics.Counters) { vp.Scan(in, c, nil) },
			FilterBytes: vp.FilterSizeBytes(),
			HTBytes:     htBytes,
			Width:       width,
		},
	}
}

// Measurement is one (algorithm, dataset) cell of a figure.
type Measurement struct {
	Kind      costmodel.Kind
	Dataset   string
	WallGbps  float64
	ModelGbps float64
	Counters  metrics.Counters
}

// Measure produces wall-clock and modeled throughput for one algorithm on
// one input.
func Measure(cfg Config, a Algo, platform costmodel.Platform, data []byte) Measurement {
	cfg = cfg.withDefaults()
	// Wall clock: un-instrumented scans, best of Repeats.
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		t0 := time.Now()
		a.Scan(data, nil)
		if g := metrics.Throughput(uint64(len(data)), time.Since(t0).Nanoseconds()); g > best {
			best = g
		}
	}
	// Instrumented scan feeds the cost model.
	var c metrics.Counters
	a.Scan(data, &c)
	res := costmodel.Estimate(platform, costmodel.Inputs{
		Kind: a.Kind, Counters: &c,
		DFABytes: a.DFABytes, FilterBytes: a.FilterBytes, HTBytes: a.HTBytes,
		VectorWidth: a.Width,
	})
	return Measurement{Kind: a.Kind, WallGbps: best, ModelGbps: res.Gbps, Counters: c}
}

// FigThroughput is the Fig 4 / Fig 7 experiment: all five algorithms over
// all four datasets on one platform. Rows come back grouped by dataset in
// the paper's order, with speedups relative to DFC per dataset.
type FigThroughputRow struct {
	Dataset string
	Cells   []Measurement
}

// SpeedupVsDFC returns the modeled speedup of cell i relative to the
// dataset's DFC cell (the number printed above the paper's bars).
func (r *FigThroughputRow) SpeedupVsDFC(i int) float64 {
	var dfcG float64
	for _, c := range r.Cells {
		if c.Kind == costmodel.KindDFC {
			dfcG = c.ModelGbps
		}
	}
	if dfcG == 0 {
		return 0
	}
	return r.Cells[i].ModelGbps / dfcG
}

// FigThroughput runs the Fig 4 (Haswell, width 8) or Fig 7 (Phi, width
// 16) experiment for one pattern set.
func FigThroughput(cfg Config, set *patterns.Set, platform costmodel.Platform, width int) []FigThroughputRow {
	cfg = cfg.withDefaults()
	algos := BuildAlgos(set, width)
	var rows []FigThroughputRow
	for _, ds := range Datasets(cfg, set) {
		row := FigThroughputRow{Dataset: ds.Name}
		for _, a := range algos {
			m := Measure(cfg, a, platform, ds.Data)
			m.Dataset = ds.Name
			row.Cells = append(row.Cells, m)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig5aPoint is one x-position of Fig 5a: S-PATCH and V-PATCH throughput
// at a pattern count, plus the vectorization speedup.
type Fig5aPoint struct {
	Patterns     int
	SPatch       Measurement
	VPatch       Measurement
	ModelSpeedup float64
	WallSpeedup  float64
}

// Fig5a sweeps the number of patterns (random subsets of the full S2 set,
// as in the paper) and measures S-PATCH vs V-PATCH.
func Fig5a(cfg Config, full *patterns.Set, counts []int, platform costmodel.Platform, width int) []Fig5aPoint {
	cfg = cfg.withDefaults()
	var out []Fig5aPoint
	for _, n := range counts {
		sub := full.Subset(n, cfg.Seed)
		data := traffic.Synthesize(traffic.ISCXDay2, cfg.TrafficBytes, cfg.Seed, sub)
		sp := core.NewSPatch(sub, core.Options{NoAccel: true})
		vp := core.NewVPatch(sub, core.VOptions{Width: width, NoAccel: true})
		ht := dfc.Build(sub).Verifier().MemoryFootprint()
		aS := Algo{Kind: costmodel.KindSPatch,
			Scan:        func(in []byte, c *metrics.Counters) { sp.Scan(in, c, nil) },
			FilterBytes: sp.FilterSizeBytes(), HTBytes: ht}
		aV := Algo{Kind: costmodel.KindVPatch,
			Scan:        func(in []byte, c *metrics.Counters) { vp.Scan(in, c, nil) },
			FilterBytes: vp.FilterSizeBytes(), HTBytes: ht, Width: width}
		mS := Measure(cfg, aS, platform, data)
		mV := Measure(cfg, aV, platform, data)
		pt := Fig5aPoint{Patterns: sub.Len(), SPatch: mS, VPatch: mV}
		if mS.ModelGbps > 0 {
			pt.ModelSpeedup = mV.ModelGbps / mS.ModelGbps
		}
		if mS.WallGbps > 0 {
			pt.WallSpeedup = mV.WallGbps / mS.WallGbps
		}
		out = append(out, pt)
	}
	return out
}

// Fig5bPoint is one x-position of Fig 5b: the filtering-to-total time
// ratio (left axis) and the useful-lane fraction in the vector register
// when filter 3 runs (right axis).
type Fig5bPoint struct {
	Patterns       int
	FilterTimeFrac float64
	UsefulLaneFrac float64
}

// Fig5b sweeps pattern count and reports V-PATCH's phase balance and
// vector-occupancy statistics.
func Fig5b(cfg Config, full *patterns.Set, counts []int, width int) []Fig5bPoint {
	cfg = cfg.withDefaults()
	var out []Fig5bPoint
	for _, n := range counts {
		sub := full.Subset(n, cfg.Seed)
		data := traffic.Synthesize(traffic.ISCXDay2, cfg.TrafficBytes, cfg.Seed, sub)
		// ForceEngine: lane-occupancy accounting needs the explicit
		// vector path; phase times come from the same run.
		vp := core.NewVPatch(sub, core.VOptions{Width: width, ForceEngine: true})
		var c metrics.Counters
		vp.Scan(data, &c, nil)
		out = append(out, Fig5bPoint{
			Patterns:       sub.Len(),
			FilterTimeFrac: c.FilteringTimeFrac(),
			UsefulLaneFrac: c.UsefulLaneFrac(width),
		})
	}
	return out
}

// Fig5cPoint is one x-position of Fig 5c: throughput and speedup as the
// fraction of matching input grows.
type Fig5cPoint struct {
	MatchFrac    float64
	SPatch       Measurement
	VPatch       Measurement
	ModelSpeedup float64
	WallSpeedup  float64
}

// Fig5c keeps the ruleset fixed (2,000 patterns, as in the paper) and
// sweeps the fraction of the input covered by injected matches.
func Fig5c(cfg Config, set *patterns.Set, fracs []float64, platform costmodel.Platform, width int) []Fig5cPoint {
	cfg = cfg.withDefaults()
	sp := core.NewSPatch(set, core.Options{NoAccel: true})
	vp := core.NewVPatch(set, core.VOptions{Width: width, NoAccel: true})
	ht := dfc.Build(set).Verifier().MemoryFootprint()
	aS := Algo{Kind: costmodel.KindSPatch,
		Scan:        func(in []byte, c *metrics.Counters) { sp.Scan(in, c, nil) },
		FilterBytes: sp.FilterSizeBytes(), HTBytes: ht}
	aV := Algo{Kind: costmodel.KindVPatch,
		Scan:        func(in []byte, c *metrics.Counters) { vp.Scan(in, c, nil) },
		FilterBytes: vp.FilterSizeBytes(), HTBytes: ht, Width: width}
	var out []Fig5cPoint
	for _, f := range fracs {
		data := traffic.Random(cfg.TrafficBytes, cfg.Seed)
		traffic.InjectMatches(data, set, f, cfg.Seed+int64(f*1000))
		mS := Measure(cfg, aS, platform, data)
		mV := Measure(cfg, aV, platform, data)
		pt := Fig5cPoint{MatchFrac: f, SPatch: mS, VPatch: mV}
		if mS.ModelGbps > 0 {
			pt.ModelSpeedup = mV.ModelGbps / mS.ModelGbps
		}
		if mS.WallGbps > 0 {
			pt.WallSpeedup = mV.WallGbps / mS.WallGbps
		}
		out = append(out, pt)
	}
	return out
}

// Fig6Cell is one (variant, dataset) bar of Fig 6: filtering-phase-only
// throughput.
type Fig6Cell struct {
	Variant   string // "S-PATCH-filtering", "V-PATCH-filtering+stores", "V-PATCH-filtering"
	Dataset   string
	WallGbps  float64
	ModelGbps float64
}

// Fig6 measures the filtering rounds in isolation over the realistic
// datasets for one pattern set (the paper repeats it for 2K, 9K and the
// full 20K sets).
func Fig6(cfg Config, set *patterns.Set, platform costmodel.Platform, width int) []Fig6Cell {
	cfg = cfg.withDefaults()
	sp := core.NewSPatch(set, core.Options{NoAccel: true})
	vp := core.NewVPatch(set, core.VOptions{Width: width, NoAccel: true})
	variants := []struct {
		name string
		kind costmodel.Kind
		run  func(in []byte, c *metrics.Counters)
	}{
		{"S-PATCH-filtering", costmodel.KindSPatch,
			func(in []byte, c *metrics.Counters) { sp.FilterOnly(in, c) }},
		{"V-PATCH-filtering+stores", costmodel.KindVPatch,
			func(in []byte, c *metrics.Counters) { vp.FilterOnly(in, c, true) }},
		{"V-PATCH-filtering", costmodel.KindVPatch,
			func(in []byte, c *metrics.Counters) { vp.FilterOnly(in, c, false) }},
	}
	var out []Fig6Cell
	for _, ds := range Datasets(cfg, set) {
		if !ds.Real {
			continue // Fig 6 uses the realistic traces only
		}
		for _, v := range variants {
			best := 0.0
			for r := 0; r < cfg.Repeats; r++ {
				t0 := time.Now()
				v.run(ds.Data, nil)
				if g := metrics.Throughput(uint64(len(ds.Data)), time.Since(t0).Nanoseconds()); g > best {
					best = g
				}
			}
			var c metrics.Counters
			v.run(ds.Data, &c)
			if v.name == "V-PATCH-filtering" {
				// No-store variant: remove the store cost from the model
				// by zeroing candidate counts.
				c.ShortCandidates, c.LongCandidates = 0, 0
			}
			res := costmodel.Estimate(platform, costmodel.Inputs{
				Kind: v.kind, Counters: &c,
				FilterBytes: vp.FilterSizeBytes(), HTBytes: 4 << 20, VectorWidth: width,
			})
			out = append(out, Fig6Cell{Variant: v.name, Dataset: ds.Name,
				WallGbps: best, ModelGbps: res.Gbps})
		}
	}
	return out
}

// PrintThroughputRows renders Fig 4 / Fig 7 rows as an aligned text table.
func PrintThroughputRows(w io.Writer, title string, rows []FigThroughputRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-14s %10s %11s %14s\n",
		"dataset", "algorithm", "wall_gbps", "model_gbps", "speedup_vs_dfc")
	for _, row := range rows {
		for i, cell := range row.Cells {
			fmt.Fprintf(w, "%-12s %-14s %10.3f %11.3f %14.2f\n",
				row.Dataset, cell.Kind, cell.WallGbps, cell.ModelGbps, row.SpeedupVsDFC(i))
		}
	}
}

// PrintFig5a renders the Fig 5a series.
func PrintFig5a(w io.Writer, pts []Fig5aPoint) {
	fmt.Fprintf(w, "Fig 5a: throughput vs number of patterns\n")
	fmt.Fprintf(w, "%9s %14s %14s %13s %12s\n",
		"patterns", "spatch_gbps", "vpatch_gbps", "model_spdup", "wall_spdup")
	for _, p := range pts {
		fmt.Fprintf(w, "%9d %14.3f %14.3f %13.2f %12.2f\n",
			p.Patterns, p.SPatch.ModelGbps, p.VPatch.ModelGbps, p.ModelSpeedup, p.WallSpeedup)
	}
}

// PrintFig5b renders the Fig 5b series.
func PrintFig5b(w io.Writer, pts []Fig5bPoint) {
	fmt.Fprintf(w, "Fig 5b: phase balance and vector occupancy vs number of patterns\n")
	fmt.Fprintf(w, "%9s %22s %20s\n", "patterns", "filter_time/total(%)", "useful_lanes(%)")
	for _, p := range pts {
		fmt.Fprintf(w, "%9d %22.1f %20.1f\n",
			p.Patterns, p.FilterTimeFrac*100, p.UsefulLaneFrac*100)
	}
}

// PrintFig5c renders the Fig 5c series.
func PrintFig5c(w io.Writer, pts []Fig5cPoint) {
	fmt.Fprintf(w, "Fig 5c: speedup vs fraction of matching input\n")
	fmt.Fprintf(w, "%10s %14s %14s %13s %12s\n",
		"match_frac", "spatch_gbps", "vpatch_gbps", "model_spdup", "wall_spdup")
	for _, p := range pts {
		fmt.Fprintf(w, "%10.0f%% %13.3f %14.3f %13.2f %12.2f\n",
			p.MatchFrac*100, p.SPatch.ModelGbps, p.VPatch.ModelGbps, p.ModelSpeedup, p.WallSpeedup)
	}
}

// PrintFig6 renders Fig 6 cells, grouped per dataset with the S-PATCH
// baseline normalized to 1.0 (as the paper annotates its bars).
func PrintFig6(w io.Writer, title string, cells []Fig6Cell) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-26s %10s %11s %9s\n",
		"dataset", "variant", "wall_gbps", "model_gbps", "vs_scalar")
	base := map[string]float64{}
	for _, c := range cells {
		if c.Variant == "S-PATCH-filtering" {
			base[c.Dataset] = c.ModelGbps
		}
	}
	for _, c := range cells {
		rel := 0.0
		if b := base[c.Dataset]; b > 0 {
			rel = c.ModelGbps / b
		}
		fmt.Fprintf(w, "%-12s %-26s %10.3f %11.3f %9.2f\n",
			c.Dataset, c.Variant, c.WallGbps, c.ModelGbps, rel)
	}
}
