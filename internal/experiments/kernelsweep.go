package experiments

import (
	"fmt"
	"io"
	"time"

	"vpatch/internal/core"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
	"vpatch/internal/vec"
)

// The kernel A/B sweep: the experiment behind the native extract
// kernels. Every requested kernel scans the same two inputs — clean
// uniform-random traffic (the filtering round's best case and the
// dominant case in deployment) and a realistic ISCX-like trace — and
// reports filtering-round and full-scan wall-clock throughput plus the
// speedup over the SWAR reference kernel on the same traffic. This is
// the paper's §VI claim (the filtering round maps onto hardware
// gather/shuffle/movemask) measured directly, and the quantity the CI
// bench gate pins.

// KernelSweepRow is one (kernel, traffic) cell.
type KernelSweepRow struct {
	// Kernel is the resolved extract kernel ("avx2", "ssse3", "swar").
	Kernel string `json:"kernel"`
	// Traffic names the input: "clean-random" or "iscx-day2".
	Traffic string `json:"traffic"`

	// FilterGbps is filtering-round-only throughput (candidate stores
	// included); ScanGbps is full scan throughput (filter + verify).
	FilterGbps float64 `json:"filter_gbps"`
	ScanGbps   float64 `json:"scan_gbps"`

	// Speedups relative to the SWAR row on the same traffic (1.0 for
	// the SWAR rows themselves; 0 when no SWAR baseline was measured).
	FilterSpeedup float64 `json:"filter_speedup_vs_swar"`
	ScanSpeedup   float64 `json:"scan_speedup_vs_swar"`
}

// KernelSweep measures each kernel's V-PATCH filtering-round and full
// scan throughput at vector width `width` (0 = 8). Kernels that are
// unavailable on the host are skipped. The SWAR kernel is always
// prepended as the speedup baseline.
func KernelSweep(cfg Config, set *patterns.Set, width int, kernels []vec.KernelID) []KernelSweepRow {
	cfg = cfg.withDefaults()
	if width == 0 {
		width = 8
	}
	traffics := []struct {
		name string
		data []byte
	}{
		{"clean-random", traffic.Random(cfg.TrafficBytes, cfg.Seed)},
		{"iscx-day2", traffic.Synthesize(traffic.ISCXDay2, cfg.TrafficBytes, cfg.Seed, set)},
	}
	// SWAR first, once, so every run carries its own baseline.
	run := []vec.KernelID{vec.KernelSWAR}
	for _, k := range kernels {
		if k != vec.KernelSWAR && vec.Available(k) {
			run = append(run, k)
		}
	}
	var rows []KernelSweepRow
	for _, k := range run {
		vp := core.NewVPatch(set, core.VOptions{Width: width, ForceKernel: k})
		for _, tr := range traffics {
			row := KernelSweepRow{Kernel: vp.KernelInfo(), Traffic: tr.name}
			for r := 0; r < cfg.Repeats; r++ {
				t0 := time.Now()
				vp.FilterOnly(tr.data, nil, true)
				if g := metrics.Throughput(uint64(len(tr.data)), time.Since(t0).Nanoseconds()); g > row.FilterGbps {
					row.FilterGbps = g
				}
				t0 = time.Now()
				vp.Scan(tr.data, nil, nil)
				if g := metrics.Throughput(uint64(len(tr.data)), time.Since(t0).Nanoseconds()); g > row.ScanGbps {
					row.ScanGbps = g
				}
			}
			rows = append(rows, row)
		}
	}
	base := map[string]KernelSweepRow{}
	for _, r := range rows {
		if r.Kernel == vec.KernelSWAR.String() {
			base[r.Traffic] = r
		}
	}
	for i := range rows {
		if b, ok := base[rows[i].Traffic]; ok {
			if b.FilterGbps > 0 {
				rows[i].FilterSpeedup = rows[i].FilterGbps / b.FilterGbps
			}
			if b.ScanGbps > 0 {
				rows[i].ScanSpeedup = rows[i].ScanGbps / b.ScanGbps
			}
		}
	}
	return rows
}

// PrintKernelSweep renders the sweep as an aligned text table.
func PrintKernelSweep(w io.Writer, title string, rows []KernelSweepRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %-14s %12s %10s %14s %12s\n",
		"kernel", "traffic", "filter_gbps", "scan_gbps", "filter_vs_swar", "scan_vs_swar")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-14s %12.3f %10.3f %14.2f %12.2f\n",
			r.Kernel, r.Traffic, r.FilterGbps, r.ScanGbps, r.FilterSpeedup, r.ScanSpeedup)
	}
}

// WriteKernelSweepCSV exports the kernel sweep.
func WriteKernelSweepCSV(dir, name string, rows []KernelSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Kernel, r.Traffic, ftoa(r.FilterGbps), ftoa(r.ScanGbps),
			ftoa(r.FilterSpeedup), ftoa(r.ScanSpeedup),
		})
	}
	return writeCSV(dir, name,
		[]string{"kernel", "traffic", "filter_gbps", "scan_gbps",
			"filter_speedup_vs_swar", "scan_speedup_vs_swar"}, out)
}
