package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"vpatch/internal/core"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
	"vpatch/internal/traffic"
)

// The acceleration density sweep: the experiment behind the hot-path
// skip-loop layer. Match fraction (how much of the input is covered by
// injected pattern occurrences) sweeps 0-100% while the buffer size
// sweeps packet-sized to chunk-sized, and each cell measures the
// accelerated fused kernels against the plain ones plus the skip ratio
// an instrumented run reports. The sweep demonstrates the two claims
// the layer makes: a large win on clean traffic (low match fraction —
// the dominant case in deployment), and graceful degradation at high
// density where the span governor and the compile-time density check
// bound the overhead instead of letting the skip loop thrash.

// AccelSweepRow is one (match fraction, buffer size) cell.
type AccelSweepRow struct {
	// MatchFrac is the fraction of input bytes covered by injected
	// matches; BufBytes the scan-call granularity.
	MatchFrac float64
	BufBytes  int

	PlainGbps float64
	AccelGbps float64
	Speedup   float64 // accelerated over plain, wall clock

	// SkipFrac is the fraction of scanned bytes the accelerator
	// skipped without probing (instrumented run); AccelRuns counts
	// skip invocations that cleared a run of at least 8 bytes.
	SkipFrac  float64
	AccelRuns uint64
}

// AccelSweep measures accelerated vs plain V-PATCH over random traffic
// with matchFracs of injected matches, scanned in buffers of each of
// bufSizes bytes, at vector width `width` (0 = 8).
func AccelSweep(cfg Config, set *patterns.Set, matchFracs []float64, bufSizes []int, width int) []AccelSweepRow {
	cfg = cfg.withDefaults()
	if width == 0 {
		width = 8
	}
	accel := core.NewVPatch(set, core.VOptions{Width: width})
	plain := core.NewVPatch(set, core.VOptions{Width: width, NoAccel: true})

	var rows []AccelSweepRow
	for _, frac := range matchFracs {
		data := traffic.Random(cfg.TrafficBytes, cfg.Seed)
		traffic.InjectMatches(data, set, frac, cfg.Seed+int64(frac*1000))
		for _, size := range bufSizes {
			row := AccelSweepRow{MatchFrac: frac, BufBytes: size}
			var bufs [][]byte
			for lo := 0; lo < len(data); lo += size {
				hi := lo + size
				if hi > len(data) {
					hi = len(data)
				}
				bufs = append(bufs, data[lo:hi])
			}
			for r := 0; r < cfg.Repeats; r++ {
				t0 := time.Now()
				for _, b := range bufs {
					accel.Scan(b, nil, nil)
				}
				if g := metrics.Throughput(uint64(len(data)), time.Since(t0).Nanoseconds()); g > row.AccelGbps {
					row.AccelGbps = g
				}
				t0 = time.Now()
				for _, b := range bufs {
					plain.Scan(b, nil, nil)
				}
				if g := metrics.Throughput(uint64(len(data)), time.Since(t0).Nanoseconds()); g > row.PlainGbps {
					row.PlainGbps = g
				}
			}
			if row.PlainGbps > 0 {
				row.Speedup = row.AccelGbps / row.PlainGbps
			}
			// Skip ratio from an instrumented run (the engine-path skip
			// uses the same table and predicate as the fused kernels).
			var c metrics.Counters
			for _, b := range bufs {
				accel.Scan(b, &c, nil)
			}
			row.SkipFrac = c.SkipFrac()
			row.AccelRuns = c.AccelRuns
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintAccelSweep renders the sweep as an aligned table.
func PrintAccelSweep(w io.Writer, title string, rows []AccelSweepRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %10s %9s %12s %12s %9s %10s %10s\n",
		"match_frac", "buf", "plain Gbps", "accel Gbps", "speedup", "skip_frac", "accel_runs")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9.0f%% %9d %12.3f %12.3f %8.2fx %10.3f %10d\n",
			r.MatchFrac*100, r.BufBytes, r.PlainGbps, r.AccelGbps, r.Speedup,
			r.SkipFrac, r.AccelRuns)
	}
}

// WriteAccelSweepCSV exports the sweep.
func WriteAccelSweepCSV(dir, name string, rows []AccelSweepRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			ftoa(r.MatchFrac), strconv.Itoa(r.BufBytes),
			ftoa(r.PlainGbps), ftoa(r.AccelGbps), ftoa(r.Speedup),
			ftoa(r.SkipFrac), strconv.FormatUint(r.AccelRuns, 10),
		})
	}
	return writeCSV(dir, name,
		[]string{"match_frac", "buf_bytes", "plain_gbps", "accel_gbps", "speedup",
			"skip_frac", "accel_runs"}, out)
}
