package arena

import (
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {128, 128},
		{1000, 1024}, {1024, 1024}, {1025, 2048},
		{1 << 20, 1 << 20},
	}
	a := New(Config{})
	for _, c := range cases {
		b := a.Rent(c.n)
		if b.Cap() != c.wantCap {
			t.Errorf("Rent(%d): cap %d, want %d", c.n, b.Cap(), c.wantCap)
		}
		b.Release()
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after releasing everything", st.InUse)
	}
}

func TestRecycleReusesChunk(t *testing.T) {
	a := New(Config{})
	b1 := a.Rent(512)
	p1 := &b1.Data()[0]
	b1.Release()
	b2 := a.Rent(400) // same 512 class
	if &b2.Data()[0] != p1 {
		t.Error("recycled rent did not reuse the pooled chunk")
	}
	b2.Release()
	if st := a.Stats(); st.PooledBytes != 512 {
		t.Errorf("PooledBytes = %d, want 512", st.PooledBytes)
	}
}

func TestCapOverflow(t *testing.T) {
	a := New(Config{MaxBytes: 2048})
	b1, b2 := a.Rent(1024), a.Rent(1024) // fills the cap
	b3 := a.Rent(1024)                   // must overflow to heap
	st := a.Stats()
	if st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", st.Overflows)
	}
	if st.PooledBytes != 2048 {
		t.Fatalf("PooledBytes = %d, want 2048 (cap)", st.PooledBytes)
	}
	if st.InUse != 3 || st.Peak != 3 {
		t.Fatalf("InUse/Peak = %d/%d, want 3/3", st.InUse, st.Peak)
	}
	// Overflow chunks still round-trip through Release.
	for _, b := range []*Buf{b1, b2, b3} {
		b.Release()
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after release", st.InUse)
	}
	// Oversized rents always overflow, never pool.
	big := a.Rent(MaxChunk + 1)
	if big.Cap() != MaxChunk+1 {
		t.Fatalf("oversize rent cap = %d", big.Cap())
	}
	big.Release()
	if st := a.Stats(); st.PooledBytes > 2048 {
		t.Fatalf("PooledBytes %d exceeded cap", st.PooledBytes)
	}
}

func TestRetainRelease(t *testing.T) {
	a := New(Config{})
	b := a.Rent(64)
	b.Retain()
	b.Release()
	if st := a.Stats(); st.InUse != 1 {
		t.Fatalf("InUse = %d with one live ref", st.InUse)
	}
	b.Release()
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after final release", st.InUse)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := New(Config{})
	b := a.Rent(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	a := New(Config{})
	b := a.Rent(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("retain-after-release did not panic")
		}
	}()
	b.Retain()
}

func TestLocalCacheRoundTrip(t *testing.T) {
	a := New(Config{})
	l := a.NewLocal()
	// Fill beyond localCap to force a spill to the spine.
	bufs := make([]*Buf, 0, localCap+8)
	for i := 0; i < localCap+8; i++ {
		bufs = append(bufs, l.Rent(256))
	}
	for _, b := range bufs {
		l.Release(b)
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after local releases", st.InUse)
	}
	// Local rents should drain the cache without touching new memory.
	before := a.Stats().PooledBytes
	for i := 0; i < localCap; i++ {
		b := l.Rent(256)
		defer l.Release(b)
	}
	if after := a.Stats().PooledBytes; after != before {
		t.Fatalf("local re-rent grew pool %d -> %d", before, after)
	}
}

// TestArenaConcurrentRentRelease is the race-pinned stress: goroutines
// hammer Rent/Retain/Release on the shared spine and through Locals,
// with cross-goroutine releases of owned chunks.
func TestArenaConcurrentRentRelease(t *testing.T) {
	a := New(Config{MaxBytes: 1 << 20})
	const workers = 8
	const iters = 2000
	handoff := make(chan *Buf, 64)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			l := a.NewLocal()
			for i := 0; i < iters; i++ {
				n := 64 << uint((i+w)%6)
				b := l.Rent(n)
				b.Data()[0] = byte(i)
				if i%7 == 0 {
					// Transfer ownership to another goroutine.
					b.Retain()
					select {
					case handoff <- b:
					default:
						b.Release()
					}
				}
				l.Release(b)
				select {
				case o := <-handoff:
					o.Release()
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	close(handoff)
	for b := range handoff {
		b.Release()
	}
	if st := a.Stats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after stress, want 0", st.InUse)
	}
}
