// Package arena provides a power-of-two size-class pool of recycled
// []byte chunks for the zero-alloc ingest path.
//
// The pool is organised as a shared "spine" (one mutex-guarded free
// list per size class) fronted by optional per-goroutine Local caches.
// Chunks are refcounted Bufs: the capture loop rents a chunk, fills it
// with a segment payload, and ownership transfers down the pipeline
// (dispatcher -> shard -> reassembler); whoever drops the last
// reference returns the chunk to the pool. A hard byte cap bounds the
// memory the arena will retain — rents beyond the cap are served by
// one-shot heap allocations ("overflow") that the GC reclaims, so the
// pipeline degrades to the old allocation behaviour instead of
// blocking. Gauges (chunks in use, peak, overflow count, pooled bytes)
// are exported for /metrics.
package arena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits..maxClassBits cover 64 B .. 1 MiB, matching the
	// serve wire format's MaxSegmentBytes upper bound.
	minClassBits = 6
	maxClassBits = 20
	numClasses   = maxClassBits - minClassBits + 1

	// MinChunk and MaxChunk bound the pooled chunk sizes. Rents
	// larger than MaxChunk always overflow to the heap.
	MinChunk = 1 << minClassBits
	MaxChunk = 1 << maxClassBits

	// DefaultMaxBytes caps the memory the default arena retains.
	DefaultMaxBytes = 64 << 20

	// localCap is the per-class Local cache depth; half is spilled
	// back to the spine when it fills.
	localCap = 32
)

// Config parameterises New.
type Config struct {
	// MaxBytes is the hard cap on bytes of pooled chunks the arena
	// will allocate and retain. 0 means DefaultMaxBytes.
	MaxBytes int64
}

// Arena is a refcounted, size-classed chunk pool. Safe for concurrent
// use by any number of goroutines.
type Arena struct {
	classes  [numClasses]class
	maxBytes int64

	pooledBytes atomic.Int64  // bytes of chunks allocated under the cap
	inUse       atomic.Int64  // rented and not yet fully released
	peak        atomic.Int64  // high-water mark of inUse
	overflows   atomic.Uint64 // rents served by one-shot heap allocs
}

type class struct {
	mu   sync.Mutex
	free []*Buf
}

// Buf is one refcounted chunk. The zero value is invalid; obtain Bufs
// from Arena.Rent or Local.Rent. Release may be called from any
// goroutine.
type Buf struct {
	a    *Arena
	data []byte
	cls  int32 // size-class index, -1 for overflow (heap) chunks
	refs atomic.Int32
}

// Data returns the chunk's full backing slice (len == capacity of the
// size class). Callers slice it down to the payload they filled.
func (b *Buf) Data() []byte { return b.data }

// Cap returns the chunk capacity in bytes.
func (b *Buf) Cap() int { return len(b.data) }

// Retain adds a reference. It panics if the buffer was already fully
// released — retaining a dead chunk is always a caller bug.
func (b *Buf) Retain() {
	if v := b.refs.Add(1); v <= 1 {
		panic(fmt.Sprintf("arena: Retain on released buffer (refs=%d)", v))
	}
}

// Release drops one reference; the last release returns the chunk to
// the pool. Releasing more times than the chunk was rented/retained
// panics.
func (b *Buf) Release() {
	v := b.refs.Add(-1)
	if v < 0 {
		panic(fmt.Sprintf("arena: double release (refs=%d)", v))
	}
	if v == 0 {
		b.a.reclaim(b, nil)
	}
}

// New builds an arena with the given config.
func New(cfg Config) *Arena {
	a := &Arena{maxBytes: cfg.MaxBytes}
	if a.maxBytes <= 0 {
		a.maxBytes = DefaultMaxBytes
	}
	return a
}

var (
	sharedOnce sync.Once
	sharedA    *Arena
)

// Shared returns the process-wide arena used by default throughout the
// ingest path (dispatcher defensive copies, serve frame reads, shard
// reassemblers).
func Shared() *Arena {
	sharedOnce.Do(func() { sharedA = New(Config{}) })
	return sharedA
}

// classFor returns the size-class index for an n-byte rent, or -1 when
// n exceeds MaxChunk and must overflow.
func classFor(n int) int {
	if n <= MinChunk {
		return 0
	}
	if n > MaxChunk {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Rent returns a chunk with capacity >= n (n <= 0 rents the smallest
// class). The chunk starts with one reference.
func (a *Arena) Rent(n int) *Buf {
	cls := classFor(n)
	if cls < 0 {
		return a.overflow(n)
	}
	c := &a.classes[cls]
	c.mu.Lock()
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		c.mu.Unlock()
		b.refs.Store(1)
		a.noteRent()
		return b
	}
	c.mu.Unlock()
	return a.allocClass(cls)
}

// allocClass allocates a fresh pooled chunk for a class if the cap
// allows, else overflows.
func (a *Arena) allocClass(cls int) *Buf {
	size := int64(1) << (cls + minClassBits)
	for {
		cur := a.pooledBytes.Load()
		if cur+size > a.maxBytes {
			return a.overflow(int(size))
		}
		if a.pooledBytes.CompareAndSwap(cur, cur+size) {
			break
		}
	}
	b := &Buf{a: a, data: make([]byte, size), cls: int32(cls)}
	b.refs.Store(1)
	a.noteRent()
	return b
}

// overflow serves a rent with a one-shot heap chunk the GC reclaims.
func (a *Arena) overflow(n int) *Buf {
	if n < MinChunk {
		n = MinChunk
	}
	a.overflows.Add(1)
	b := &Buf{a: a, data: make([]byte, n), cls: -1}
	b.refs.Store(1)
	a.noteRent()
	return b
}

func (a *Arena) noteRent() {
	v := a.inUse.Add(1)
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// reclaim returns a dead chunk to the spine (or to l's cache when
// called from a Local). Overflow chunks are dropped for the GC.
func (a *Arena) reclaim(b *Buf, l *Local) {
	a.inUse.Add(-1)
	if b.cls < 0 {
		return
	}
	if l != nil {
		q := &l.cache[b.cls]
		if len(*q) < localCap {
			*q = append(*q, b)
			return
		}
		// Cache full: spill half back to the spine, keep the rest.
		spill := (*q)[localCap/2:]
		c := &a.classes[b.cls]
		c.mu.Lock()
		c.free = append(c.free, spill...)
		c.mu.Unlock()
		for i := range spill {
			spill[i] = nil
		}
		*q = append((*q)[:localCap/2], b)
		return
	}
	c := &a.classes[b.cls]
	c.mu.Lock()
	c.free = append(c.free, b)
	c.mu.Unlock()
}

// Stats is a point-in-time snapshot of the arena gauges.
type Stats struct {
	InUse       int64  // chunks rented and not yet released
	Peak        int64  // high-water mark of InUse
	PooledBytes int64  // bytes of chunks allocated under the cap
	Overflows   uint64 // rents served by one-shot heap allocations
}

// Stats returns the current gauge values.
func (a *Arena) Stats() Stats {
	return Stats{
		InUse:       a.inUse.Load(),
		Peak:        a.peak.Load(),
		PooledBytes: a.pooledBytes.Load(),
		Overflows:   a.overflows.Load(),
	}
}

// Local is a single-goroutine cache over the arena spine: rent and
// release hit a private free list and only touch the shared mutex on
// refill/spill. A Local must not be used concurrently; the Bufs it
// returns may still be released from any goroutine.
type Local struct {
	a     *Arena
	cache [numClasses][]*Buf
}

// NewLocal returns an empty per-goroutine cache over a.
func (a *Arena) NewLocal() *Local { return &Local{a: a} }

// Arena returns the arena this Local fronts.
func (l *Local) Arena() *Arena { return l.a }

// Rent is Arena.Rent via the local cache.
func (l *Local) Rent(n int) *Buf {
	cls := classFor(n)
	if cls < 0 {
		return l.a.overflow(n)
	}
	q := &l.cache[cls]
	if k := len(*q); k > 0 {
		b := (*q)[k-1]
		(*q)[k-1] = nil
		*q = (*q)[:k-1]
		b.refs.Store(1)
		l.a.noteRent()
		return b
	}
	return l.a.Rent(n)
}

// Release drops one reference like Buf.Release, but a final release of
// a pooled chunk lands in the local cache instead of the spine. Only
// the Local's owner goroutine may call it.
func (l *Local) Release(b *Buf) {
	v := b.refs.Add(-1)
	if v < 0 {
		panic(fmt.Sprintf("arena: double release (refs=%d)", v))
	}
	if v == 0 {
		b.a.reclaim(b, l)
	}
}
