package cpu

// cpuid executes CPUID with EAX=eaxArg, ECX=ecxArg.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (the OS-enabled extended state mask); only valid
// when CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

const (
	// CPUID.1:ECX bits.
	cpuidSSSE3   = 1 << 9
	cpuidOSXSAVE = 1 << 27
	cpuidAVX     = 1 << 28
	// CPUID.(7,0):EBX bits.
	cpuidAVX2 = 1 << 5
	// XCR0 bits 1 (SSE state) and 2 (AVX/YMM state).
	xcr0SSE = 1 << 1
	xcr0AVX = 1 << 2
)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	HasSSSE3 = ecx1&cpuidSSSE3 != 0

	// AVX2 needs the CPU feature bit, AVX, and the OS actually saving
	// YMM state across context switches (OSXSAVE + XCR0 SSE|AVX bits).
	osAVX := false
	if ecx1&cpuidOSXSAVE != 0 && ecx1&cpuidAVX != 0 {
		lo, _ := xgetbv()
		osAVX = lo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	}
	if osAVX && maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		HasAVX2 = ebx7&cpuidAVX2 != 0
	}
}
