package cpu

import (
	"runtime"
	"testing"
)

// TestProbe exercises the init-time probe: it cannot assert specific
// features (the test must pass on any host), but it can assert the
// implications the dispatch logic relies on.
func TestProbe(t *testing.T) {
	t.Logf("GOARCH=%s HasAVX2=%v HasSSSE3=%v", runtime.GOARCH, HasAVX2, HasSSSE3)
	if runtime.GOARCH != "amd64" && (HasAVX2 || HasSSSE3) {
		t.Fatalf("non-amd64 build reports amd64 features (avx2=%v ssse3=%v)", HasAVX2, HasSSSE3)
	}
	if HasAVX2 && !HasSSSE3 {
		// Every AVX2-capable processor implements SSSE3; a probe that
		// disagrees mis-decoded CPUID.
		t.Fatalf("probe reports AVX2 without SSSE3")
	}
}
