// Package cpu probes the host processor for the vector instruction-set
// extensions the native filtering kernels need (internal/vec's amd64
// assembly). The probe runs once at init via CPUID/XGETBV on amd64; on
// every other architecture the feature flags are constant false and the
// engines stay on the portable SWAR kernels.
//
// The package deliberately mirrors the runtime's internal/cpu shape (a
// handful of exported booleans, filled in by an arch-specific init)
// instead of importing golang.org/x/sys/cpu: the engine needs exactly
// two bits, and keeping the probe in-tree keeps the module free of
// dependencies.
package cpu

var (
	// HasAVX2 reports AVX2 support *and* operating-system YMM state
	// saving (XGETBV), so kernels may execute 256-bit instructions.
	HasAVX2 bool

	// HasSSSE3 reports SSSE3 support (PSHUFB et al.). Baseline on every
	// 64-bit x86 CPU since ~2006, but probed rather than assumed: GOAMD64
	// defaults to v1, which guarantees only SSE2.
	HasSSSE3 bool
)
