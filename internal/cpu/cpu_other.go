//go:build !amd64

package cpu

// Non-amd64 builds have no native kernels; the flags stay false and the
// engines select the portable SWAR path.
