package rules

import (
	"bytes"
	"regexp"
	"strings"

	"vpatch/internal/patterns"
	"vpatch/internal/rules/redfa"
)

// The naive reference evaluator: the executable specification the
// streaming evaluator is property-tested against. It sees the flow's
// fully reassembled stream at once and does everything the slow,
// obvious way — a scalar scan for every clause occurrence, a direct
// walk over the clause chain, and Go's regexp package for the regex
// tail (anchored as `^(?:expr)` on the window slice, the mapping the
// redfa cross-check tests established). No prefilter, no incremental
// state, no pruning.

// RefAlert is one alert from the reference evaluator.
type RefAlert struct {
	Rule      int32
	StreamOff int64
}

// RefEval evaluates every applicable rule of set over one flow's full
// reassembled stream. Alerts are returned in rule-ID order, one per
// rule at most, with the same stream offset the streaming evaluator
// must report: the final-clause match start of the first (lowest
// anchor) completion whose regex tail verifies.
func RefEval(set *Set, stream []byte, proto patterns.Protocol) []RefAlert {
	var out []RefAlert
	folded := patterns.Fold(stream)
	for ri := range set.Rules {
		r := &set.Rules[ri]
		if r.Proto != patterns.ProtoGeneric && r.Proto != proto {
			continue
		}
		if off, ok := refRule(set, r, stream, folded); ok {
			out = append(out, RefAlert{Rule: r.ID, StreamOff: off})
		}
	}
	return out
}

// refRule evaluates one rule, returning the alert offset if it fires.
func refRule(set *Set, r *Rule, stream, folded []byte) (int64, bool) {
	var prevEnds []int64
	var finals [][2]int64
	last := len(r.Clauses) - 1
	for k := range r.Clauses {
		cl := &r.Clauses[k]
		var ends []int64
		for _, se := range refOccurrences(cl, stream, folded) {
			s, e := se[0], se[1]
			if k == 0 {
				if s < cl.Offset {
					continue
				}
				if cl.HasDepth && e > cl.Offset+cl.Depth {
					continue
				}
			} else {
				ok := false
				for _, p := range prevEnds {
					if p <= s-cl.Distance && (!cl.HasWithin || e <= p+cl.Within) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			if k == last {
				finals = append(finals, se)
			} else {
				ends = append(ends, e)
			}
		}
		prevEnds = ends
	}
	if len(finals) == 0 {
		return 0, false
	}
	if r.Regex == nil {
		return finals[0][0], true
	}
	re := refRegexp(r.Regex)
	for _, se := range finals {
		e := se[1]
		wend := e + set.Window
		if wend > int64(len(stream)) {
			wend = int64(len(stream))
		}
		if re.Match(stream[e:wend]) {
			return se[0], true
		}
	}
	return 0, false
}

// refOccurrences lists every (possibly overlapping) occurrence of a
// clause's content in the stream, as (start, end) offset pairs in
// ascending order.
func refOccurrences(cl *Clause, stream, folded []byte) [][2]int64 {
	hay := stream
	if cl.Nocase {
		hay = folded // cl.Data is stored folded
	}
	var out [][2]int64
	n := len(cl.Data)
	for i := 0; i+n <= len(hay); i++ {
		if bytes.Equal(hay[i:i+n], cl.Data) {
			out = append(out, [2]int64{int64(i), int64(i + n)})
		}
	}
	return out
}

// refRegexp maps a redfa program onto Go's regexp engine: anchored at
// the window start, (?s) because redfa's `.` matches any byte, (?i)
// when the /i flag was given. Agreement holds on ASCII streams (Go
// regexp is rune-based); the redfa cross-check tests pin this mapping.
func refRegexp(p *redfa.Prog) *regexp.Regexp {
	mode := "(?s)"
	if strings.ContainsRune(p.Flags(), 'i') {
		mode = "(?is)"
	}
	return regexp.MustCompile(mode + "^(?:" + p.Source() + ")")
}
