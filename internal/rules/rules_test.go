package rules

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"vpatch/internal/dbfmt"
	"vpatch/internal/metrics"
	"vpatch/internal/patterns"
)

func TestParseAndCompile(t *testing.T) {
	set, err := ParseRules(strings.NewReader(`
# comment
alert tcp any any -> any 80 (msg:"admin probe"; content:"GET /"; offset:0; depth:64; content:"admin"; nocase; distance:0; within:200; pcre:"/token=[0-9a-f]{8,32}/i"; sid:1001; rev:3; classtype:web-application-attack;)
alert tcp any any -> any 53 (msg:"plain"; content:"abc"; sid:2;)
`), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rules) != 2 {
		t.Fatalf("got %d rules", len(set.Rules))
	}
	r := &set.Rules[0]
	if r.SID != 1001 || r.Msg != "admin probe" || r.Proto != patterns.ProtoHTTP {
		t.Fatalf("rule 0 header fields: %+v", r)
	}
	if len(r.Clauses) != 2 {
		t.Fatalf("rule 0 clauses: %d", len(r.Clauses))
	}
	c0, c1 := &r.Clauses[0], &r.Clauses[1]
	if string(c0.Data) != "GET /" || c0.Offset != 0 || !c0.HasDepth || c0.Depth != 64 || c0.Nocase {
		t.Fatalf("clause 0: %+v", c0)
	}
	if string(c1.Data) != "admin" || !c1.Nocase || c1.Distance != 0 || !c1.HasWithin || c1.Within != 200 {
		t.Fatalf("clause 1: %+v", c1)
	}
	if r.Regex == nil || r.Regex.Source() != "token=[0-9a-f]{8,32}" || r.Regex.Flags() != "i" {
		t.Fatalf("rule 0 regex: %+v", r.Regex)
	}
	if set.Rules[1].Regex != nil || set.Rules[1].Proto != patterns.ProtoDNS {
		t.Fatalf("rule 1: %+v", set.Rules[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`alert tcp any any -> any 80 (msg:"no content"; sid:1;)`,
		`alert tcp any any -> any 80 (content:!"neg"; sid:1;)`,
		`alert tcp any any -> any 80 (content:"a"; content:"b"; offset:3;)`,
		`alert tcp any any -> any 80 (content:"a"; distance:3;)`,
		`alert tcp any any -> any 80 (content:"a"; within:3;)`,
		`alert tcp any any -> any 80 (nocase; content:"a";)`,
		`alert tcp any any -> any 80 (content:"a"; offset:-1;)`,
		`alert tcp any any -> any 80 (pcre:"/x/"; content:"a";)`,
		`alert tcp any any -> any 80 (content:"a"; pcre:"/x/"; pcre:"/y/";)`,
		`alert tcp any any -> any 80 (content:"a"; pcre:"/x(/";)`,
		`alert tcp any any -> any 80 (content:"a"; pcre:"noslash";)`,
		`alert tcp any any -> any 80 (content:"unterminated)`,
		`alert tcp any any -> any 80 content:"a";`,
		`alert tcp any any -> any 80 (content:"";)`,
	}
	for _, line := range bad {
		if _, err := ParseRuleString(line); err == nil {
			t.Errorf("no error for %s", line)
		}
	}
}

func TestCompileFolding(t *testing.T) {
	set, err := ParseRules(strings.NewReader(`
alert tcp any any -> any 80 (content:"Admin"; nocase; sid:1;)
alert tcp any any -> any 53 (content:"aDmIn"; nocase; sid:2;)
alert tcp any any -> any 25 (content:"admin"; sid:3;)
alert tcp any any -> any 21 (content:"Admin"; sid:4;)
`), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One folded nocase literal shared by all four rules: rules 1/2 use it
	// directly, rules 3/4 ride it with exact re-verification.
	if n := set.Lits.Len(); n != 1 {
		t.Fatalf("got %d literals, want 1 shared folded literal", n)
	}
	p := set.Lits.Pattern(0)
	if !p.Nocase || string(p.Data) != "admin" {
		t.Fatalf("literal: %+v", p)
	}
	if p.Proto != patterns.ProtoGeneric {
		t.Fatalf("shared literal proto = %v, want Generic", p.Proto)
	}
	for ri, wantExact := range []bool{false, false, true, true} {
		cl := &set.Rules[ri].Clauses[0]
		if cl.Exact != wantExact {
			t.Errorf("rule %d Exact = %v, want %v", ri, cl.Exact, wantExact)
		}
	}
	if string(set.Rules[3].Clauses[0].Data) != "Admin" {
		t.Errorf("exact clause must keep its exact bytes")
	}
	if got := len(set.Postings(0)); got != 4 {
		t.Errorf("postings on shared literal = %d, want 4", got)
	}
}

// runEval drives the streaming evaluator the way the ids pipeline does:
// the stream arrives as segments cut at the given points, each buffer
// re-exposing the last maxLitLen-1 bytes as carry, hits delivered per
// buffer sorted by end with carry duplicates (end inside the previous
// coverage) skipped. Returns rule ID -> alert stream offset.
func runEval(t *testing.T, set *Set, stream []byte, proto patterns.Protocol, cuts []int, c *metrics.Counters) map[int32]int64 {
	t.Helper()
	ev := NewEval(set)
	fs := NewFlowState(proto)
	alerts := map[int32]int64{}
	emit := func(rule int32, off int64) {
		if _, dup := alerts[rule]; dup {
			t.Fatalf("rule %d alerted twice", rule)
		}
		alerts[rule] = off
	}
	carry := 0
	for _, p := range set.Lits.Patterns() {
		if len(p.Data)-1 > carry {
			carry = len(p.Data) - 1
		}
	}
	folded := patterns.Fold(stream)
	prevEnd := 0
	for _, cut := range cuts {
		base := prevEnd - carry
		if base < 0 {
			base = 0
		}
		buf := stream[base:cut]
		ev.FeedBuffer(fs, buf, int64(base), c, emit)
		type hit struct {
			lit  int32
			s, e int
		}
		var hits []hit
		for id := int32(0); id < int32(set.Lits.Len()); id++ {
			p := set.Lits.Pattern(id)
			// Group membership: the flow's group holds its protocol's
			// literals plus the generic ones.
			if p.Proto != patterns.ProtoGeneric && p.Proto != proto {
				continue
			}
			hay := stream
			if p.Nocase {
				hay = folded
			}
			for i := base; i+len(p.Data) <= cut; i++ {
				if e := i + len(p.Data); e > prevEnd && bytes.Equal(hay[i:e], p.Data) {
					hits = append(hits, hit{id, i, e})
				}
			}
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a].e < hits[b].e })
		for _, h := range hits {
			ev.OnHit(fs, h.lit, int64(h.s), int64(h.e), buf, int64(base), c, emit)
		}
		prevEnd = cut
	}
	ev.FinishFlow(fs, c, emit)
	return alerts
}

func refAlertMap(set *Set, stream []byte, proto patterns.Protocol) map[int32]int64 {
	out := map[int32]int64{}
	for _, a := range RefEval(set, stream, proto) {
		out[a.Rule] = a.StreamOff
	}
	return out
}

func diffAlerts(t *testing.T, want, got map[int32]int64, ctx string) {
	t.Helper()
	for r, off := range want {
		if g, ok := got[r]; !ok {
			t.Errorf("%s: rule %d: reference alerts at %d, evaluator silent", ctx, r, off)
		} else if g != off {
			t.Errorf("%s: rule %d: reference offset %d, evaluator %d", ctx, r, off, g)
		}
	}
	for r, off := range got {
		if _, ok := want[r]; !ok {
			t.Errorf("%s: rule %d: evaluator alerts at %d, reference silent", ctx, r, off)
		}
	}
}

func TestClauseSpanAcrossSegments(t *testing.T) {
	set, err := ParseRuleString(
		`alert tcp any any -> any 80 (content:"abc"; content:"def"; distance:2; within:10; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	//           0123456789012
	stream := []byte("xabcxxxdefxxx")
	want := refAlertMap(set, stream, patterns.ProtoHTTP)
	if len(want) != 1 || want[0] != 7 {
		t.Fatalf("reference sanity: %v", want)
	}
	// Cut between the two clause matches, and mid-"def".
	for _, cuts := range [][]int{{5, 13}, {8, 13}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}} {
		got := runEval(t, set, stream, patterns.ProtoHTTP, cuts, nil)
		diffAlerts(t, want, got, fmt.Sprintf("cuts %v", cuts))
	}
	// Violations: too close (distance) and too far (within) must not fire.
	for _, s := range []string{"xabcdefxxxxxx", "xabcxxxxxxxxxxxxxxxxdef"} {
		if got := runEval(t, set, []byte(s), patterns.ProtoHTTP, []int{len(s)}, nil); len(got) != 0 {
			t.Errorf("stream %q: unwanted alerts %v", s, got)
		}
	}
}

func TestRegexPendingAcrossSegments(t *testing.T) {
	set, err := ParseRuleString(
		`alert tcp any any -> any 80 (content:"key="; pcre:"/[0-9]{4};/"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	stream := []byte("xxkey=1234;yy")
	want := refAlertMap(set, stream, patterns.ProtoHTTP)
	if len(want) != 1 || want[0] != 2 {
		t.Fatalf("reference sanity: %v", want)
	}
	// Every cut position, including ones splitting the digits the
	// verifier is mid-way through.
	for cut := 1; cut < len(stream); cut++ {
		var c metrics.Counters
		got := runEval(t, set, stream, patterns.ProtoHTTP, []int{cut, len(stream)}, &c)
		diffAlerts(t, want, got, fmt.Sprintf("cut %d", cut))
		if c.VerifierRuns != 1 {
			t.Errorf("cut %d: VerifierRuns = %d, want 1", cut, c.VerifierRuns)
		}
	}
	// Regex that never completes: no alert, still exactly one run.
	var c metrics.Counters
	got := runEval(t, set, []byte("xxkey=12ab"), patterns.ProtoHTTP, []int{7, 10}, &c)
	if len(got) != 0 || c.VerifierRuns != 1 || c.RuleAlerts != 0 {
		t.Errorf("non-matching tail: alerts %v, counters %+v", got, c)
	}
}

func TestVerifierOnlyAtAnchors(t *testing.T) {
	set, err := ParseRuleString(
		`alert tcp any any -> any 80 (content:"needle"; pcre:"/[a-z]+/"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	// The regex matches essentially anywhere, but without a literal
	// anchor the verifier must never start.
	var c metrics.Counters
	stream := bytes.Repeat([]byte("lowercase text without the magic word "), 20)
	got := runEval(t, set, stream, patterns.ProtoHTTP, []int{100, len(stream)}, &c)
	if len(got) != 0 {
		t.Fatalf("unwanted alerts: %v", got)
	}
	if c.VerifierRuns != 0 || c.VerifierStates != 0 {
		t.Fatalf("verifier ran without an anchor: %+v", c)
	}
	// With anchors present: runs are bounded by the anchor count. The
	// first anchor is followed by '!' (rejected), the second by "abc".
	stream = []byte("xx needle! needleabc")
	c = metrics.Counters{}
	got = runEval(t, set, stream, patterns.ProtoHTTP, []int{len(stream)}, &c)
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("want alert at 11, got %v", got)
	}
	if c.VerifierRuns != 2 {
		t.Fatalf("VerifierRuns = %d, want 2 (one per anchor)", c.VerifierRuns)
	}
	if c.RuleAlerts != 1 {
		t.Fatalf("RuleAlerts = %d", c.RuleAlerts)
	}
}

// ruleGen generates random-but-valid rule lines over a tiny alphabet so
// literal hits, clause overlaps and shared folded literals are common.
type ruleGen struct{ rng *rand.Rand }

func (g ruleGen) content() string {
	words := []string{"ab", "ba", "abc", "AB", "aB", "ca", "cab", "bc"}
	return words[g.rng.Intn(len(words))]
}

func (g ruleGen) rule(sid int) string {
	ports := []string{"80", "53", "any"}
	var b strings.Builder
	fmt.Fprintf(&b, "alert tcp any any -> any %s (msg:\"r%d\"; ", ports[g.rng.Intn(len(ports))], sid)
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "content:%q; ", g.content())
		if g.rng.Intn(3) == 0 {
			b.WriteString("nocase; ")
		}
		if i == 0 {
			if g.rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "offset:%d; ", g.rng.Intn(6))
			}
			if g.rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "depth:%d; ", 1+g.rng.Intn(40))
			}
		} else {
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "distance:%d; ", g.rng.Intn(5))
			}
			if g.rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "within:%d; ", 1+g.rng.Intn(20))
			}
		}
	}
	if g.rng.Intn(2) == 0 {
		pool := []string{"/a+b/", "/[ab]{2,4}/i", "/a.b/", "/(a|b)b*a/", "/ab|ba/", "/c[abc]*a/", "/b{3}/"}
		fmt.Fprintf(&b, "pcre:\"%s\"; ", pool[g.rng.Intn(len(pool))])
	}
	fmt.Fprintf(&b, "sid:%d;)", sid)
	return b.String()
}

// TestEvalAgainstReferenceProperty is the package-local property test:
// random rule sets against random streams delivered in random segments
// must produce exactly the reference's alerts. (The ids-level test
// re-runs this through the real engines and reassembler.)
func TestEvalAgainstReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	g := ruleGen{rng: rng}
	protos := []patterns.Protocol{patterns.ProtoGeneric, patterns.ProtoHTTP, patterns.ProtoDNS}
	alphabet := []byte("abcx")
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		var lines []string
		for s := 0; s < 1+rng.Intn(4); s++ {
			lines = append(lines, g.rule(s+1))
		}
		window := []int64{0, 4, 16, 64}[rng.Intn(4)]
		set, err := ParseRules(strings.NewReader(strings.Join(lines, "\n")), ParseOptions{Window: window})
		if err != nil {
			t.Fatalf("iter %d: parse: %v\n%s", it, err, strings.Join(lines, "\n"))
		}
		stream := make([]byte, rng.Intn(200))
		for i := range stream {
			stream[i] = alphabet[rng.Intn(len(alphabet))]
		}
		// Sprinkle case variation so nocase folding matters.
		for i := range stream {
			if rng.Intn(4) == 0 {
				stream[i] = stream[i] &^ 0x20
			}
		}
		var cuts []int
		pos := 0
		for pos < len(stream) {
			pos += 1 + rng.Intn(40)
			if pos > len(stream) {
				pos = len(stream)
			}
			cuts = append(cuts, pos)
		}
		proto := protos[rng.Intn(len(protos))]
		var c metrics.Counters
		got := runEval(t, set, stream, proto, cuts, &c)
		want := refAlertMap(set, stream, proto)
		diffAlerts(t, want, got, fmt.Sprintf("iter %d proto %v window %d cuts %v stream %q rules\n%s",
			it, proto, window, cuts, stream, strings.Join(lines, "\n")))
		if t.Failed() {
			t.FailNow()
		}
		if uint64(len(got)) != c.RuleAlerts {
			t.Fatalf("iter %d: RuleAlerts counter %d != %d alerts", it, c.RuleAlerts, len(got))
		}
	}
}

func TestRuleDBRoundTrip(t *testing.T) {
	set, err := ParseRules(strings.NewReader(`
alert tcp any any -> any 80 (msg:"a"; content:"GET /"; offset:1; depth:100; content:"Admin"; nocase; distance:2; within:64; pcre:"/tok=[a-f]{2,8}/i"; sid:10;)
alert udp any any -> any 53 (msg:"b"; content:"abc"; sid:11;)
alert tcp any any -> any 80 (msg:"c"; content:"admin"; sid:12;)
`), ParseOptions{Window: 128})
	if err != nil {
		t.Fatal(err)
	}
	var e dbfmt.Encoder
	set.Encode(&e)
	payload := append([]byte(nil), e.Bytes()...)

	got, err := DecodeSet(payload, set.Lits)
	if err != nil {
		t.Fatal(err)
	}
	var e2 dbfmt.Encoder
	got.Encode(&e2)
	if !bytes.Equal(payload, e2.Bytes()) {
		t.Fatal("re-encode is not byte-identical")
	}
	// Behavioral identity on a stream that exercises every rule.
	stream := []byte("xGET / aDmIn tok=abcd abc admin")
	for _, proto := range []patterns.Protocol{patterns.ProtoHTTP, patterns.ProtoDNS} {
		want := refAlertMap(set, stream, proto)
		have := refAlertMap(got, stream, proto)
		diffAlerts(t, want, have, fmt.Sprintf("decoded set, proto %v", proto))
	}
	if got.Window != 128 || len(got.Rules) != 3 || got.Rules[0].Msg != "a" || got.Rules[0].SID != 10 {
		t.Fatalf("decoded set fields: %+v", got)
	}
}

func TestDecodeSetCorrupt(t *testing.T) {
	set, err := ParseRuleString(
		`alert tcp any any -> any 80 (content:"GET"; content:"admin"; nocase; distance:1; within:30; pcre:"/a+/"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	var e dbfmt.Encoder
	set.Encode(&e)
	payload := e.Bytes()
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeSet(payload[:cut], set.Lits); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(payload); i++ {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xFF
		// Must not panic; errors (or a differently-valid decode) are fine.
		DecodeSet(mut, set.Lits)
	}
}

func FuzzRuleParse(f *testing.F) {
	f.Add(`alert tcp any any -> any 80 (content:"GET /"; nocase; sid:1;)`)
	f.Add(`alert tcp any any -> any 80 (content:"a"; content:"b"; distance:1; within:9; pcre:"/a[bc]{1,3}d/i"; sid:2;)`)
	f.Add(`alert tcp any any -> any 80 (content:"|0D 0A|esc\"q\\uote|FF|"; offset:3; depth:64; msg:"m\"s;g";)`)
	f.Add("content:\"a\x00b\"")
	f.Fuzz(func(t *testing.T, line string) {
		set, err := ParseRules(strings.NewReader(line), ParseOptions{})
		if err != nil {
			return
		}
		// A parsed set must be internally consistent enough to encode,
		// decode and evaluate without panicking.
		var e dbfmt.Encoder
		set.Encode(&e)
		if _, err := DecodeSet(e.Bytes(), set.Lits); err != nil {
			t.Fatalf("self-encoded set does not decode: %v", err)
		}
		ev := NewEval(set)
		fs := NewFlowState(patterns.ProtoHTTP)
		data := []byte(line)
		ev.FeedBuffer(fs, data, 0, nil, func(int32, int64) {})
		for id := int32(0); id < int32(set.Lits.Len()); id++ {
			p := set.Lits.Pattern(id)
			if n := len(p.Data); n <= len(data) {
				ev.OnHit(fs, id, 0, int64(n), data, 0, nil, func(int32, int64) {})
			}
		}
		ev.FinishFlow(fs, nil, func(int32, int64) {})
	})
}

func FuzzRuleDB(f *testing.F) {
	set, err := ParseRuleString(
		`alert tcp any any -> any 80 (content:"GET"; content:"admin"; nocase; distance:1; within:30; pcre:"/ab?c+[de]{1,4}/i"; sid:7;)`)
	if err != nil {
		f.Fatal(err)
	}
	var e dbfmt.Encoder
	set.Encode(&e)
	f.Add(e.Bytes())
	f.Add([]byte{})
	lits := set.Lits
	f.Fuzz(func(t *testing.T, payload []byte) {
		// Must error or succeed — never panic, never alert differently
		// from its own re-encode.
		got, err := DecodeSet(payload, lits)
		if err != nil {
			return
		}
		var e2 dbfmt.Encoder
		got.Encode(&e2)
		if _, err := DecodeSet(e2.Bytes(), lits); err != nil {
			t.Fatalf("decoded set does not re-decode: %v", err)
		}
	})
}
