// Package rules is the rule-semantics tier above the literal matchers:
// compiled rules whose ordered content clauses (offset/depth/distance/
// within, nocase) and optional regex tails are evaluated over the
// literal-hit streams the multi-pattern engines produce. The engines
// stay pure prefilters — every byte of traffic is still scanned only
// by V-PATCH and friends — and this layer decides which literal hits
// actually complete a rule.
//
// Compilation is case-folded: every nocase content becomes one folded
// literal in the prefilter set, and a case-sensitive content whose
// folded form is already compiled nocase reuses that literal (the
// exact bytes are re-verified against the payload span at evaluation
// time) instead of near-duplicating filter entries. Each literal keeps
// a postings list of the (rule, clause) positions it anchors.
//
// Clause semantics (documented contract, shared by the evaluator, the
// naive reference, and the README's rule-language section; offsets are
// absolute positions in the flow's reassembled stream):
//
//   - clause 0: the match must start at or after `offset` (default 0),
//     and when `depth` is given must end within offset+depth.
//   - clause k>0: the match must start at least `distance` bytes
//     (default 0) after the end of the clause k-1 match, and when
//     `within` is given must end within `within` bytes of that end.
//   - the regex tail, when present, runs anchored at the end of the
//     final clause match, over at most Window bytes of the stream.
//
// A rule alerts at most once per flow; the alert's stream offset is
// the start of the final clause match of the first (lowest-anchor)
// completion whose regex tail verifies.
package rules

import (
	"fmt"

	"vpatch/internal/patterns"
	"vpatch/internal/rules/redfa"
)

// DefaultWindow is how many stream bytes past its anchor a regex tail
// may examine — the verification byte budget.
const DefaultWindow = 512

// maxClauses bounds the clauses of one rule (and the decoder's trust
// in clause counts).
const maxClauses = 64

// Clause is one compiled content condition.
type Clause struct {
	// Lit is the prefilter literal the clause anchors on (an ID in the
	// owning Set's Lits).
	Lit int32
	// Data is the content's exact bytes as written (folded when Nocase).
	Data []byte
	// Nocase requests case-insensitive matching.
	Nocase bool
	// Exact marks a case-sensitive clause riding a shared nocase
	// literal: the prefilter hit is case-insensitive, so the evaluator
	// re-compares Data against the payload span byte for byte.
	Exact bool

	// Clause 0 constraints (absolute stream offsets).
	Offset   int64
	Depth    int64 // meaningful iff HasDepth
	HasDepth bool

	// Clause k>0 constraints (relative to the previous clause's end).
	Distance  int64
	Within    int64 // meaningful iff HasWithin
	HasWithin bool
}

// Rule is one compiled rule.
type Rule struct {
	// ID is the rule's index within its Set; alerts carry it.
	ID int32
	// SID is the rule file's sid option (0 when absent).
	SID int64
	// Msg is the rule's message text.
	Msg string
	// Proto is the traffic class from the rule header; the rule only
	// applies to flows classified to it (Generic applies to every flow).
	Proto patterns.Protocol
	// Clauses are the ordered content conditions (at least one).
	Clauses []Clause
	// Regex is the optional verifier tail (nil = none).
	Regex *redfa.Prog
}

// Posting locates one clause position a literal anchors.
type Posting struct {
	Rule   int32
	Clause int32
}

// Set is a compiled rule set: the rules, the case-folded prefilter
// literal set the engines compile from, and the literal->clause
// postings the evaluator walks. Immutable once built.
type Set struct {
	Rules []Rule
	// Lits is the prefilter literal set. Each literal's Proto is the
	// single protocol of the rules referencing it, or Generic when
	// shared, so the ids group builder places it exactly where its
	// rules' flows are scanned.
	Lits *patterns.Set
	// Window is the regex verification byte budget per anchor.
	Window int64

	post [][]Posting
}

// Postings returns the (rule, clause) positions literal lit anchors.
func (s *Set) Postings(lit int32) []Posting {
	if int(lit) >= len(s.post) {
		return nil
	}
	return s.post[lit]
}

// HasRegex reports whether any rule carries a regex tail.
func (s *Set) HasRegex() bool {
	for i := range s.Rules {
		if s.Rules[i].Regex != nil {
			return true
		}
	}
	return false
}

// parsedClause is the parser's pre-compilation clause form.
type parsedClause struct {
	data   []byte
	nocase bool

	offset   int64
	depth    int64
	hasDepth bool

	distance  int64
	within    int64
	hasWithin bool
}

// parsedRule is the parser's pre-compilation rule form.
type parsedRule struct {
	sid     int64
	msg     string
	proto   patterns.Protocol
	clauses []parsedClause
	regex   string // "/expr/flags" source, empty = none
}

// compile builds the Set from parsed rules: fold nocase literals into
// the prefilter set first, then resolve case-sensitive clauses against
// them, assign literal protocols, and build the postings lists.
func compile(prs []parsedRule, window int64) (*Set, error) {
	if window <= 0 {
		window = DefaultWindow
	}
	s := &Set{Lits: patterns.NewSet(), Window: window}

	// Pass 1: nocase literals, folded once.
	for _, pr := range prs {
		for _, pc := range pr.clauses {
			if pc.nocase {
				s.Lits.Add(pc.data, true, pr.proto)
			}
		}
	}
	// Pass 2: build rules; case-sensitive clauses reuse a folded nocase
	// literal when one exists, else get their own case-sensitive one.
	litProto := map[int32]patterns.Protocol{}
	noteProto := func(lit int32, proto patterns.Protocol) {
		if have, ok := litProto[lit]; !ok {
			litProto[lit] = proto
		} else if have != proto {
			litProto[lit] = patterns.ProtoGeneric
		}
	}
	for _, pr := range prs {
		r := Rule{
			ID:    int32(len(s.Rules)),
			SID:   pr.sid,
			Msg:   pr.msg,
			Proto: pr.proto,
		}
		for ci, pc := range pr.clauses {
			cl := Clause{
				Nocase:    pc.nocase,
				Offset:    pc.offset,
				Depth:     pc.depth,
				HasDepth:  pc.hasDepth,
				Distance:  pc.distance,
				Within:    pc.within,
				HasWithin: pc.hasWithin,
			}
			switch {
			case pc.nocase:
				cl.Data = patterns.Fold(pc.data)
				cl.Lit = s.Lits.Add(pc.data, true, pr.proto)
			default:
				cl.Data = append([]byte(nil), pc.data...)
				if id, ok := s.Lits.Lookup(pc.data, true); ok {
					cl.Lit = id
					cl.Exact = true
				} else {
					cl.Lit = s.Lits.Add(pc.data, false, pr.proto)
				}
			}
			if cl.Lit < 0 {
				return nil, fmt.Errorf("rules: rule %d clause %d: empty content", r.ID, ci)
			}
			noteProto(cl.Lit, pr.proto)
			r.Clauses = append(r.Clauses, cl)
		}
		if pr.regex != "" {
			expr, flags, err := splitPCRE(pr.regex)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %d: %w", r.ID, err)
			}
			prog, err := redfa.Compile(expr, flags)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %d: %w", r.ID, err)
			}
			r.Regex = prog
		}
		s.Rules = append(s.Rules, r)
	}
	// A literal shared across protocols must live in the generic group
	// so every referencing rule's flows are scanned against it.
	pats := s.Lits.Patterns()
	for lit, proto := range litProto {
		pats[lit].Proto = proto
	}
	s.buildPostings()
	return s, nil
}

// buildPostings fills the literal->clause postings lists.
func (s *Set) buildPostings() {
	s.post = make([][]Posting, s.Lits.Len())
	for ri := range s.Rules {
		r := &s.Rules[ri]
		for ci := range r.Clauses {
			lit := r.Clauses[ci].Lit
			s.post[lit] = append(s.post[lit], Posting{Rule: r.ID, Clause: int32(ci)})
		}
	}
}

// splitPCRE splits a Snort pcre value "/expr/flags" into parts. The
// delimiter is the final unescaped-irrelevant slash: expressions may
// contain escaped slashes.
func splitPCRE(v string) (expr, flags string, err error) {
	if len(v) < 2 || v[0] != '/' {
		return "", "", fmt.Errorf("pcre value %q must look like /expr/flags", v)
	}
	end := -1
	for i := len(v) - 1; i > 0; i-- {
		if v[i] == '/' {
			end = i
			break
		}
	}
	if end <= 0 {
		return "", "", fmt.Errorf("pcre value %q has no closing slash", v)
	}
	return v[1:end], v[end+1:], nil
}
