package rules

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vpatch/internal/patterns"
)

// The Snort-lite rule syntax (the documented subset; see the README's
// "Rule language" section). One rule per non-comment line:
//
//	alert tcp any any -> any 80 (msg:"admin probe"; \
//	    content:"GET /"; offset:0; depth:64; \
//	    content:"admin"; nocase; distance:0; within:200; \
//	    pcre:"/token=[0-9a-f]{8,32}/i"; sid:1001;)
//
// Recognized pieces:
//
//   - The header classifies the rule's traffic class by its ports
//     through the shared patterns.ServicePorts table (same as the
//     literal-only parser), so a rule lands in exactly the ids group
//     its flows are scanned against.
//   - content:"..." with the full Snort escape/hex-block syntax; each
//     content becomes one ordered clause. Negated contents (!"...")
//     are rejected — absence conditions have no prefilter anchor.
//   - Modifiers apply to the preceding content: nocase; offset/depth
//     (first content only — absolute stream positions); distance/
//     within (later contents only — relative to the previous clause).
//   - pcre:"/expr/flags" — at most one, compiled by redfa (see its
//     accepted subset); requires at least one content clause, because
//     the verifier only ever runs at literal-hit anchors.
//   - msg:"..." and sid:N are captured; rev, classtype, reference,
//     priority, metadata, fast_pattern, http_* and any other options
//     are accepted and ignored, so real feed lines parse.
//
// A rule must contain at least one content clause.

// ParseOptions controls rule-set parsing and compilation.
type ParseOptions struct {
	// Window overrides the regex verification byte budget per anchor
	// (0 = DefaultWindow).
	Window int64
}

// ParseRules reads a Snort-lite rule stream and compiles it into a
// rule Set (including the case-folded prefilter literal set).
func ParseRules(r io.Reader, opt ParseOptions) (*Set, error) {
	var prs []parsedRule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pr, err := parseRuleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
		}
		prs = append(prs, pr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return compile(prs, opt.Window)
}

// ParseRuleString compiles a single rule line (tests, tools).
func ParseRuleString(line string) (*Set, error) {
	return ParseRules(strings.NewReader(line), ParseOptions{})
}

// parseRuleLine parses one rule into its pre-compilation form.
func parseRuleLine(line string) (parsedRule, error) {
	pr := parsedRule{proto: patterns.ProtoFromHeader(line)}
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return pr, fmt.Errorf("rule has no (options) body")
	}
	opts, err := splitOptions(line[open+1 : close_])
	if err != nil {
		return pr, err
	}
	sawPCRE := false
	for _, o := range opts {
		key, val := o.key, o.val
		switch key {
		case "content":
			pc, err := parseContentOption(val)
			if err != nil {
				return pr, err
			}
			pr.clauses = append(pr.clauses, pc)
			if len(pr.clauses) > maxClauses {
				return pr, fmt.Errorf("rule exceeds %d content clauses", maxClauses)
			}
			if sawPCRE {
				return pr, fmt.Errorf("content after pcre is not supported (the regex tail must come last)")
			}
		case "nocase":
			cl, err := lastClause(&pr)
			if err != nil {
				return pr, err
			}
			cl.nocase = true
		case "offset", "depth":
			cl, err := lastClause(&pr)
			if err != nil {
				return pr, err
			}
			if len(pr.clauses) != 1 {
				return pr, fmt.Errorf("%s applies to the first content only (use distance/within on later contents)", key)
			}
			n, err := parseBound(key, val)
			if err != nil {
				return pr, err
			}
			if key == "offset" {
				cl.offset = n
			} else {
				cl.depth, cl.hasDepth = n, true
			}
		case "distance", "within":
			cl, err := lastClause(&pr)
			if err != nil {
				return pr, err
			}
			if len(pr.clauses) == 1 {
				return pr, fmt.Errorf("%s applies to later contents only (use offset/depth on the first)", key)
			}
			n, err := parseBound(key, val)
			if err != nil {
				return pr, err
			}
			if key == "distance" {
				cl.distance = n
			} else {
				cl.within, cl.hasWithin = n, true
			}
		case "pcre":
			if sawPCRE {
				return pr, fmt.Errorf("at most one pcre option per rule")
			}
			if len(pr.clauses) == 0 {
				return pr, fmt.Errorf("pcre requires a preceding content clause (the verifier never scans standalone)")
			}
			// The quoted pcre body is taken raw (no escape resolution):
			// backslashes inside it are regex escapes, not rule-file ones.
			v := strings.TrimSpace(val)
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return pr, fmt.Errorf("pcre value %q is not quoted", val)
			}
			pr.regex = v[1 : len(v)-1]
			sawPCRE = true
		case "msg":
			v, err := unquote(val)
			if err != nil {
				return pr, fmt.Errorf("msg: %w", err)
			}
			pr.msg = v
		case "sid":
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil || n < 0 {
				return pr, fmt.Errorf("bad sid %q", val)
			}
			pr.sid = n
		default:
			// Unknown options (rev, classtype, fast_pattern, http_uri, ...)
			// are accepted and ignored so real feed lines parse.
		}
	}
	if len(pr.clauses) == 0 {
		return pr, fmt.Errorf("rule has no content clause")
	}
	return pr, nil
}

// lastClause returns the clause a modifier applies to.
func lastClause(pr *parsedRule) (*parsedClause, error) {
	if len(pr.clauses) == 0 {
		return nil, fmt.Errorf("modifier before any content")
	}
	return &pr.clauses[len(pr.clauses)-1], nil
}

// parseBound parses a non-negative clause bound.
func parseBound(key, val string) (int64, error) {
	n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil || n < 0 || n > 1<<30 {
		return 0, fmt.Errorf("bad %s %q (want 0..2^30)", key, val)
	}
	return n, nil
}

// parseContentOption decodes one content value: optional negation (an
// error here), then a quoted Snort content body.
func parseContentOption(val string) (parsedClause, error) {
	var pc parsedClause
	v := strings.TrimSpace(val)
	if strings.HasPrefix(v, "!") {
		return pc, fmt.Errorf("negated content is not supported by the rule tier (no prefilter anchor)")
	}
	if !strings.HasPrefix(v, "\"") {
		return pc, fmt.Errorf("content option without quoted string")
	}
	data, consumed, err := patterns.DecodeContent(v[1:])
	if err != nil {
		return pc, err
	}
	if rest := strings.TrimSpace(v[1+consumed:]); rest != "" {
		return pc, fmt.Errorf("trailing junk %q after content string", rest)
	}
	if len(data) == 0 {
		return pc, fmt.Errorf("empty content")
	}
	pc.data = data
	return pc, nil
}

// option is one semicolon-separated rule option.
type option struct {
	key, val string
}

// splitOptions splits a rule's option body on semicolons outside
// quoted strings, then each token at its first colon outside quotes.
func splitOptions(body string) ([]option, error) {
	var out []option
	var tok strings.Builder
	inQuote := false
	flush := func() error {
		t := strings.TrimSpace(tok.String())
		tok.Reset()
		if t == "" {
			return nil
		}
		colon := -1
		q := false
		for i := 0; i < len(t); i++ {
			switch t[i] {
			case '"':
				q = !q
			case '\\':
				if q {
					i++
				}
			case ':':
				if !q {
					colon = i
				}
			}
			if colon >= 0 {
				break
			}
		}
		if colon < 0 {
			out = append(out, option{key: t})
		} else {
			out = append(out, option{key: strings.TrimSpace(t[:colon]), val: strings.TrimSpace(t[colon+1:])})
		}
		return nil
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch c {
		case '"':
			inQuote = !inQuote
			tok.WriteByte(c)
		case '\\':
			tok.WriteByte(c)
			if inQuote && i+1 < len(body) {
				i++
				tok.WriteByte(body[i])
			}
		case ';':
			if inQuote {
				tok.WriteByte(c)
			} else if err := flush(); err != nil {
				return nil, err
			}
		default:
			tok.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quoted string in options")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// unquote strips the surrounding quotes of an option value and
// resolves \" and \\ escapes (msg and pcre values).
func unquote(val string) (string, error) {
	v := strings.TrimSpace(val)
	if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
		return "", fmt.Errorf("value %q is not quoted", val)
	}
	v = v[1 : len(v)-1]
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) && (v[i+1] == '"' || v[i+1] == '\\') {
			i++
		}
		b.WriteByte(v[i])
	}
	return b.String(), nil
}
